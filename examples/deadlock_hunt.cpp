// Deadlock hunt: a routing misconfiguration creates a cyclic buffer
// dependency (CBD) inside one fat-tree pod; a micro-burst then locks the
// cycle into a PFC deadlock. Hawkeye's polling packets chase the PFC
// causality around the loop, and the provenance analysis names the CBD,
// the deadlock type (initiator in/out of loop) and the initiating flow —
// the §2.1/Figure 1(c) scenario end-to-end.
//
//   $ ./deadlock_hunt [seed]
// A second pass repeats the hunt over a hostile telemetry substrate (15%
// of polling packets vanish at every switch) to show the self-healing
// pipeline: re-polls close the coverage gap and the verdict carries an
// explicit confidence score.
#include <cstdio>
#include <cstdlib>

#include "diagnosis/diagnosis.hpp"
#include "eval/testbed.hpp"
#include "fault/fault.hpp"
#include "provenance/builder.hpp"
#include "workload/scenario.hpp"

using namespace hawkeye;

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1;

  sim::Rng rng(seed);
  workload::ScenarioSpec spec;
  {
    const net::FatTree probe = net::build_fat_tree(4);
    const net::Routing probe_routing(probe.topo);
    spec = workload::make_scenario(diagnosis::AnomalyType::kInLoopDeadlock,
                                   probe, probe_routing, rng);
  }

  std::printf("crafted routing misconfiguration (%zu overrides):\n",
              spec.overrides.size());
  for (const auto& ov : spec.overrides) {
    std::printf("  SW%d: traffic to H%d forced out port %d\n", ov.sw, ov.dst,
                ov.port);
  }
  std::printf("latent CBD:");
  for (const auto& p : spec.truth.loop_ports) {
    std::printf(" %s", net::to_string(p).c_str());
  }
  std::printf("\nburst initiator fires at %.0f us\n\n",
              static_cast<double>(spec.anomaly_start) / 1e3);

  eval::Testbed::Options opts;
  if (spec.xoff_bytes) opts.switch_cfg.pfc_xoff_bytes = *spec.xoff_bytes;
  if (spec.xon_bytes) opts.switch_cfg.pfc_xon_bytes = *spec.xon_bytes;
  eval::Testbed tb(opts);
  tb.install(spec);
  tb.run_for(spec.duration);

  // The loop flows freeze: show their stalled state.
  std::printf("flow progress at end of trace:\n");
  for (const net::NodeId h : tb.ft.hosts) {
    for (const auto& st : tb.host(h).flow_stats()) {
      if (st.complete()) continue;
      std::printf("  %-24s sent=%-6u acked=%-6u STALLED (last ack %.0f us)\n",
                  st.tuple.to_string().c_str(), st.pkts_sent, st.pkts_acked,
                  static_cast<double>(st.last_ack) / 1e3);
    }
  }

  // Diagnose the victim's episode (the most complete collection).
  const collect::Episode* ep = nullptr;
  for (const auto id : tb.collector.episode_order()) {
    const collect::Episode* cand = tb.collector.episode(id);
    if (cand->victim == spec.victim &&
        cand->triggered_at >= spec.anomaly_start &&
        (ep == nullptr || cand->reports.size() > ep->reports.size())) {
      ep = cand;
    }
  }
  if (ep == nullptr) {
    std::printf("\nno diagnosis episode; try another seed\n");
    return 1;
  }

  const auto g = provenance::build_provenance(*ep, tb.ft.topo);
  const auto dx = diagnosis::diagnose(g, tb.ft.topo, tb.routing, spec.victim);
  std::printf("\ndiagnosis: %s\n", std::string(to_string(dx.type)).c_str());
  if (!dx.loop_ports.empty()) {
    std::printf("  detected CBD:");
    for (const auto& p : dx.loop_ports) {
      std::printf(" %s", net::to_string(p).c_str());
    }
    std::printf("\n  -> check routing configuration on these switches\n");
  }
  std::printf("  initial congestion: %s\n",
              net::to_string(dx.initial_port).c_str());
  for (const auto& f : dx.root_cause_flows) {
    std::printf("  initiating flow: %s\n", f.to_string().c_str());
  }
  std::printf("\nexpected: %s initiated by %s\n",
              std::string(to_string(spec.truth.type)).c_str(),
              spec.truth.root_cause_flows.empty()
                  ? "?"
                  : spec.truth.root_cause_flows[0].to_string().c_str());

  // ---- Second pass: same hunt, hostile substrate ----
  std::printf("\n=== re-running with 15%% polling-packet loss injected ===\n");
  eval::Testbed::Options fopts = opts;
  fopts.agent_cfg.max_repolls = 3;  // enable the self-healing re-poll loop
  eval::Testbed ftb(fopts);
  workload::ScenarioSpec fspec = spec;
  fspec.faults = fault::FaultPlan::uniform_poll_loss(0.15, seed);
  ftb.install(fspec);
  ftb.run_for(fspec.duration + sim::ms(4));

  const collect::Episode* fep = nullptr;
  for (const auto id : ftb.collector.episode_order()) {
    const collect::Episode* cand = ftb.collector.episode(id);
    if (cand->victim == fspec.victim &&
        cand->triggered_at >= fspec.anomaly_start &&
        (fep == nullptr || cand->reports.size() > fep->reports.size())) {
      fep = cand;
    }
  }
  std::printf("fault injector: %llu polls dropped\n",
              static_cast<unsigned long long>(ftb.faults->polls_dropped()));
  if (fep == nullptr) {
    std::printf("no episode survived the faults for this seed\n");
  } else {
    const auto fg = provenance::build_provenance(*fep, ftb.ft.topo);
    auto fdx =
        diagnosis::diagnose(fg, ftb.ft.topo, ftb.routing, fspec.victim);
    fdx.confidence = diagnosis::collection_confidence(
        fep->coverage(), fep->failed_collections, fep->stale_epochs_rejected,
        fep->repolls);
    std::printf(
        "self-healed verdict: %s (coverage %.0f%%, %u re-polls, "
        "confidence %.2f%s)\n",
        std::string(to_string(fdx.type)).c_str(), fep->coverage() * 100,
        fep->repolls, fdx.confidence, fep->degraded ? ", DEGRADED" : "");
  }
  return dx.type == spec.truth.type ? 0 : 1;
}
