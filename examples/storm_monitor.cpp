// Storm monitor: multi-tenant "diagnosis as a service". Two unrelated
// anomalies hit the fabric in sequence — a malfunctioning NIC injects a
// PFC storm, and later an incast burst hits another pod. The always-on
// detection agents open one episode per complaining tenant flow; the
// analyzer attributes each to its own root cause (§3.4: "HAWKEYE can
// easily support multiple NPAs concurrently").
//
// A second pass replays both incidents over a faulty substrate (polling
// loss + switch-CPU DMA failures) to show the per-episode health report
// an operator would see from the self-healing pipeline.
//
//   $ ./storm_monitor
#include <cstdio>
#include <map>

#include "diagnosis/diagnosis.hpp"
#include "eval/testbed.hpp"
#include "fault/fault.hpp"
#include "provenance/builder.hpp"
#include "workload/scenario.hpp"

using namespace hawkeye;

namespace {

/// Both tenants' traffic plus the two staged incidents.
void build_traffic(eval::Testbed& tb) {
  // Tenant A: storage traffic into host 2 (pod 0).
  tb.add_flow({tb.ft.hosts[13], tb.ft.hosts[2], 100, 4791, 40'000'000,
               sim::us(10), true, 40.0});
  // Tenant B: training traffic into host 10 (pod 2).
  tb.add_flow({tb.ft.hosts[5], tb.ft.hosts[10], 200, 4791, 40'000'000,
               sim::us(10), true, 15.0});

  // Incident 1 (t=400us): host 2's NIC malfunctions and floods PAUSE
  // frames for 600 us — tenant A's flow stalls behind the storm.
  tb.host(tb.ft.hosts[2]).inject_pfc(sim::us(400), sim::us(1000),
                                     sim::us(50), 65535);

  // Incident 2 (t=1600us): a 4-to-1 incast micro-burst slams host 10's
  // ToR port — tenant B suffers classic PFC backpressure.
  for (int i = 0; i < 4; ++i) {
    tb.add_flow({tb.ft.hosts[static_cast<size_t>(12 + i >= 16 ? 0 : 12 + i)],
                 tb.ft.hosts[10], static_cast<std::uint16_t>(2000 + i), 4791,
                 600'000, sim::us(1600) + i * sim::us(1), false, 0});
  }
}

}  // namespace

int main() {
  eval::Testbed tb;
  build_traffic(tb);
  tb.run_for(sim::ms(3));

  std::printf("episodes opened by the detection agents:\n");
  std::map<std::string, int> seen;
  for (const auto id : tb.collector.episode_order()) {
    const collect::Episode* ep = tb.collector.episode(id);
    // One report per complaining flow; skip re-triggers of the same victim.
    if (seen[ep->victim.to_string()]++ > 0) continue;
    const auto g = provenance::build_provenance(*ep, tb.ft.topo);
    const auto dx =
        diagnosis::diagnose(g, tb.ft.topo, tb.routing, ep->victim);
    std::printf("\n[%7.0f us] victim %s (%zu switches collected)\n",
                static_cast<double>(ep->triggered_at) / 1e3,
                ep->victim.to_string().c_str(), ep->reports.size());
    std::printf("  verdict: %s\n", std::string(to_string(dx.type)).c_str());
    std::printf("  %s\n", dx.narrative.c_str());
    if (dx.injecting_peer != net::kInvalidNode) {
      std::printf("  -> ticket to host team: H%d is injecting PFC\n",
                  dx.injecting_peer);
    }
    for (const auto& f : dx.root_cause_flows) {
      std::printf("  -> contributing flow %s\n", f.to_string().c_str());
    }
  }
  std::printf("\nexpected: tenant A's complaint -> pfc-storm at H2;\n"
              "          tenant B's complaint -> micro-burst incast.\n");

  // ---- Second pass: the same incidents on a faulty substrate ----
  std::printf("\n=== replay with 10%% polling loss + 20%% DMA failures ===\n");
  eval::Testbed::Options fopts;
  fopts.agent_cfg.max_repolls = 3;
  eval::Testbed ftb(fopts);
  fault::FaultPlan plan = fault::FaultPlan::uniform_poll_loss(0.10, 7);
  fault::DmaFaultSpec dma;
  dma.fail_prob = 0.20;
  plan.dma_faults.push_back(dma);
  ftb.install_faults(plan);
  build_traffic(ftb);
  ftb.run_for(sim::ms(3) + sim::ms(4));

  std::printf("injected: %llu polls dropped, %llu DMA reads failed\n",
              static_cast<unsigned long long>(ftb.faults->polls_dropped()),
              static_cast<unsigned long long>(ftb.faults->dma_failed()));
  std::map<std::string, int> fseen;
  for (const auto id : ftb.collector.episode_order()) {
    const collect::Episode* ep = ftb.collector.episode(id);
    if (fseen[ep->victim.to_string()]++ > 0) continue;
    const auto g = provenance::build_provenance(*ep, ftb.ft.topo);
    const auto dx =
        diagnosis::diagnose(g, ftb.ft.topo, ftb.routing, ep->victim);
    const double conf = diagnosis::collection_confidence(
        ep->coverage(), ep->failed_collections, ep->stale_epochs_rejected,
        ep->repolls);
    std::printf(
        "victim %s: %s (coverage %.0f%%, %u re-polls, %u failed DMAs, "
        "confidence %.2f%s)\n",
        ep->victim.to_string().c_str(), std::string(to_string(dx.type)).c_str(),
        ep->coverage() * 100, ep->repolls, ep->failed_collections, conf,
        ep->degraded ? ", DEGRADED" : "");
  }
  return 0;
}
