// Quickstart: simulate an incast micro-burst on a 100 Gbps fat-tree,
// let Hawkeye detect the victim flow's degradation, trace the PFC
// causality in-band, and print the provenance graph plus the diagnosis.
//
//   $ ./quickstart [seed]
//
// This is the smallest end-to-end tour of the public API:
//   workload::make_scenario -> eval::Testbed -> provenance -> diagnosis.
#include <cstdio>
#include <cstdlib>

#include "diagnosis/analyzer.hpp"
#include "eval/testbed.hpp"
#include "workload/scenario.hpp"

using namespace hawkeye;

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;

  // 1. Craft an incast-burst anomaly trace on a (k=4) fat-tree.
  sim::Rng rng(seed);
  workload::ScenarioSpec spec;
  {
    const net::FatTree probe = net::build_fat_tree(4);
    const net::Routing probe_routing(probe.topo);
    spec = workload::make_scenario(diagnosis::AnomalyType::kMicroBurstIncast,
                                   probe, probe_routing, rng);
  }
  std::printf("scenario: %s, victim flow %s, anomaly at %.0f us\n",
              spec.name.c_str(), spec.victim.to_string().c_str(),
              static_cast<double>(spec.anomaly_start) / 1000.0);

  // 2. Wire up the simulated fabric with the Hawkeye stack installed.
  eval::Testbed tb;
  tb.install(spec);
  for (const auto& f :
       workload::background_flows(tb.ft, rng, 0.1, sim::us(5), sim::ms(2))) {
    tb.add_flow(f);
  }

  // 3. Run the trace.
  tb.run_for(spec.duration);
  std::printf("simulated %llu events, %llu drops\n",
              static_cast<unsigned long long>(tb.simu.executed_events()),
              static_cast<unsigned long long>(tb.net.drops()));

  // 4. Grab the victim's diagnosis episode.
  const collect::Episode* ep = nullptr;
  for (const std::uint64_t id : tb.collector.episode_order()) {
    const collect::Episode* cand = tb.collector.episode(id);
    if (cand != nullptr && cand->victim == spec.victim) {
      ep = cand;
      break;
    }
  }
  if (ep == nullptr) {
    std::printf("no episode triggered for the victim — try another seed\n");
    return 1;
  }
  std::printf("episode: %zu switches collected, %lld telemetry bytes, "
              "%llu polling packets\n",
              ep->reports.size(),
              static_cast<long long>(ep->telemetry_bytes),
              static_cast<unsigned long long>(ep->polling_packets));

  // 5. One-call analysis: provenance graph + signature diagnosis +
  //    contention-cause classification + (for deadlocks) CBD fixes.
  const diagnosis::Analyzer analyzer(tb.ft.topo, tb.routing);
  const diagnosis::AnalysisReport rep = analyzer.analyze(*ep);
  std::printf("%s\n", rep.graph.to_string().c_str());
  std::printf("%s", rep.summary.c_str());
  std::printf("ground truth: %s with %zu burst flows\n",
              std::string(to_string(spec.truth.type)).c_str(),
              spec.truth.root_cause_flows.size());
  return rep.dx.type == spec.truth.type ? 0 : 1;
}
