// Custom topology: Hawkeye is not tied to the fat-tree — this example
// builds a 2-tier leaf-spine fabric by hand with the raw Topology API,
// wires up switches/hosts/telemetry manually (no Testbed convenience),
// runs an incast, and diagnoses it. This is the lowest-level tour of the
// public API: Topology -> Routing -> Network -> Switch/Host ->
// Collector/agents -> provenance -> diagnosis.
//
//   $ ./custom_topology
#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "collect/collector.hpp"
#include "collect/detection_agent.hpp"
#include "collect/switch_agent.hpp"
#include "device/host.hpp"
#include "device/switch.hpp"
#include "diagnosis/diagnosis.hpp"
#include "provenance/builder.hpp"

using namespace hawkeye;

int main() {
  // ---- 1. Topology: 4 leaves x 2 spines, 3 hosts per leaf, 100 Gbps ----
  net::Topology topo;
  std::vector<net::NodeId> hosts, leaves, spines;
  for (int l = 0; l < 4; ++l) {
    for (int h = 0; h < 3; ++h) hosts.push_back(topo.add_node(net::NodeKind::kHost));
  }
  for (int l = 0; l < 4; ++l) {
    leaves.push_back(topo.add_node(net::NodeKind::kSwitch, "Leaf" + std::to_string(l)));
  }
  for (int s = 0; s < 2; ++s) {
    spines.push_back(topo.add_node(net::NodeKind::kSwitch, "Spine" + std::to_string(s)));
  }
  for (int l = 0; l < 4; ++l) {
    for (int h = 0; h < 3; ++h) {
      topo.connect(hosts[static_cast<size_t>(3 * l + h)], leaves[static_cast<size_t>(l)]);
    }
    for (int s = 0; s < 2; ++s) {
      topo.connect(leaves[static_cast<size_t>(l)], spines[static_cast<size_t>(s)]);
    }
  }

  // ---- 2. Routing + simulation fabric ----
  net::Routing routing(topo);
  sim::Simulator simu;
  device::Network network(simu, topo);

  device::SwitchConfig sw_cfg;  // defaults: PFC Xoff 64K/Xon 32K, ECN, DCQCN
  std::vector<std::unique_ptr<device::Switch>> switches;
  std::vector<std::unique_ptr<device::Host>> host_devs;

  // ---- 3. Hawkeye stack ----
  collect::Collector collector;
  collect::HawkeyeSwitchAgent sw_agent(collector);
  for (const net::NodeId sw : topo.switches()) {
    switches.push_back(std::make_unique<device::Switch>(network, routing, sw, sw_cfg));
    switches.back()->set_polling_handler(&sw_agent);
    collector.register_switch(*switches.back());
  }
  collect::DetectionAgent::Config agent_cfg;
  agent_cfg.threshold_factor = 3.0;
  collect::DetectionAgent agent(network, routing, collector, agent_cfg);
  for (const net::NodeId h : topo.hosts()) {
    host_devs.push_back(std::make_unique<device::Host>(network, h));
    agent.attach(*host_devs.back());
  }
  agent.start();

  auto host_at = [&](net::NodeId id) -> device::Host& {
    for (auto& h : host_devs) {
      if (h->id() == id) return *h;
    }
    throw std::runtime_error("no host");
  };

  // ---- 4. Workload: a victim flow + 5:1 incast into leaf 0 ----
  const net::NodeId victim_src = hosts[11], victim_dst = hosts[1];
  const std::uint64_t vid = host_at(victim_src).add_flow(
      {victim_src, victim_dst, 900, 4791, 20'000'000, sim::us(5), true, 0});
  (void)vid;
  // Steer at least part of the incast through the spine the victim uses,
  // so the PFC backpressure provably crosses the victim path (ECMP hashes
  // are deterministic, so we can pick source ports accordingly).
  net::FiveTuple vt;
  vt.src_ip = net::Topology::ip_of(victim_src);
  vt.dst_ip = net::Topology::ip_of(victim_dst);
  vt.src_port = 900;
  vt.dst_port = 4791;
  net::PortRef victim_spine_hop;  // spine egress toward leaf 0
  for (const auto& hop : routing.path_of(vt)) {
    if (std::find(spines.begin(), spines.end(), hop.node) != spines.end()) {
      victim_spine_hop = hop;
    }
  }
  const net::NodeId sink = hosts[0];
  for (int i = 0; i < 5; ++i) {
    const net::NodeId bsrc = hosts[static_cast<size_t>(3 + i)];
    std::uint16_t sp = static_cast<std::uint16_t>(2000 + 40 * i);
    for (std::uint16_t probe = sp; probe < sp + 32; ++probe) {
      net::FiveTuple bt;
      bt.src_ip = net::Topology::ip_of(bsrc);
      bt.dst_ip = net::Topology::ip_of(sink);
      bt.src_port = probe;
      bt.dst_port = 4791;
      const auto path = routing.path_of(bt);
      if (std::find(path.begin(), path.end(), victim_spine_hop) !=
          path.end()) {
        sp = probe;
        break;
      }
    }
    host_at(bsrc).add_flow({bsrc, sink, sp, 4791, 500'000,
                            sim::us(300) + i * sim::us(1), false, 0});
  }

  simu.run_until(sim::ms(2));
  std::printf("leaf-spine fabric: %zu nodes, %zu links, %llu events, %llu drops\n",
              topo.node_count(), topo.link_count(),
              static_cast<unsigned long long>(simu.executed_events()),
              static_cast<unsigned long long>(network.drops()));

  // ---- 5. Diagnose the victim's complaint ----
  const net::FiveTuple victim = vt;
  const collect::Episode* ep = nullptr;
  for (const auto id : collector.episode_order()) {
    const collect::Episode* cand = collector.episode(id);
    if (cand->victim == victim && ep == nullptr) ep = cand;
  }
  if (ep == nullptr) {
    std::printf("victim flow never complained — nothing to diagnose\n");
    return 1;
  }
  const auto graph = provenance::build_provenance(*ep, topo);
  const auto dx = diagnosis::diagnose(graph, topo, routing, victim);
  std::printf("victim %s: %s\n", victim.to_string().c_str(),
              std::string(to_string(dx.type)).c_str());
  std::printf("  %s\n", dx.narrative.c_str());
  std::printf("  initial congestion at %s (%s side)\n",
              net::to_string(dx.initial_port).c_str(),
              topo.name(dx.initial_port.node).c_str());
  for (const auto& f : dx.root_cause_flows) {
    std::printf("  root-cause flow %s\n", f.to_string().c_str());
  }
  return 0;
}
