#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "device/network.hpp"
#include "device/switch.hpp"

namespace hawkeye::baselines {

/// Model of the industrial PFC watchdog (paper §2.3): the switch control
/// plane polls each port's PFC pause state on a fixed period and raises an
/// alarm when a port has been continuously paused for several polls.
///
/// Its two documented shortcomings are reproduced faithfully:
///  * the polling period is coarse (hundreds of ms in production; our
///    benches sweep it down to tens of µs), so transient pause episodes
///    slip between polls ("may miss massive transient PFC congestion");
///  * it sees only port state on one switch — no victim flows, no root
///    cause, no spreading path; correlating alarms across switches is
///    left to the operator.
class PfcWatchdog {
 public:
  struct Config {
    sim::Time poll_period = sim::ms(100);
    /// Alarm after this many consecutive polls in the paused state (the
    /// production watchdog's storm-mitigation trigger).
    int consecutive_paused_polls = 2;
  };

  struct Alarm {
    sim::Time raised_at = 0;
    net::PortRef port;
    int consecutive_polls = 0;
  };

  PfcWatchdog(device::Network& net, Config cfg) : net_(net), cfg_(cfg) {}

  void watch(device::Switch& sw) { switches_.push_back(&sw); }

  /// Begin the periodic polling (idempotent).
  void start();

  const std::vector<Alarm>& alarms() const { return alarms_; }
  std::uint64_t polls_performed() const { return polls_; }

  /// First alarm at or after `t`; -1 if none.
  sim::Time first_alarm_after(sim::Time t) const;

 private:
  void poll();

  device::Network& net_;
  Config cfg_;
  std::vector<device::Switch*> switches_;
  std::unordered_map<net::PortRef, int> consecutive_;
  std::unordered_map<net::PortRef, bool> alarmed_;
  std::vector<Alarm> alarms_;
  std::uint64_t polls_ = 0;
  bool running_ = false;
};

}  // namespace hawkeye::baselines
