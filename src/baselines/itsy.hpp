#pragma once

#include <cstdint>
#include <vector>

#include "device/network.hpp"
#include "device/switch.hpp"

namespace hawkeye::baselines {

/// Model of ITSY-style in-data-plane PFC deadlock detection (paper §2.3):
/// when a port stays paused, a probe walks the pause dependency — from a
/// paused egress port to the downstream switch's paused egress ports that
/// received its traffic (tracked there with a single *presence bit* per
/// port pair, not a byte meter) — and reports a deadlock when the walk
/// revisits its origin.
///
/// Reproduced limitations: detects only loops (non-loop backpressure and
/// storms are ignored) and names only the cycle's ports — no victim flows,
/// no initiator, no root cause.
class ItsyDetector {
 public:
  struct Config {
    sim::Time probe_period = sim::us(100);
    int max_hops = 16;
  };

  struct LoopReport {
    sim::Time detected_at = 0;
    std::vector<net::PortRef> loop_ports;
  };

  ItsyDetector(device::Network& net, Config cfg) : net_(net), cfg_(cfg) {}

  void watch(device::Switch& sw) { switches_.push_back(&sw); }
  void start();

  const std::vector<LoopReport>& loops() const { return loops_; }
  std::uint64_t probes_sent() const { return probes_; }

 private:
  void probe_round();
  device::Switch* switch_at(net::NodeId id) const;
  /// Paused egress ports of `sw` that recently carried traffic arriving on
  /// `in_port` (the ITSY next-hop set, presence-bit granularity).
  std::vector<net::PortId> next_hops(device::Switch& sw, net::PortId in_port,
                                     sim::Time now) const;

  device::Network& net_;
  Config cfg_;
  std::vector<device::Switch*> switches_;
  std::vector<LoopReport> loops_;
  bool reported_ = false;  // one loop report per detector (dedup)
  std::uint64_t probes_ = 0;
  bool running_ = false;
};

}  // namespace hawkeye::baselines
