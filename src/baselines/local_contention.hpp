#pragma once

#include "collect/episode.hpp"
#include "diagnosis/diagnosis.hpp"
#include "net/routing.hpp"

namespace hawkeye::baselines {

/// The flow-interaction diagnosis paradigm of pre-RDMA systems (SpiderMon,
/// NetSight, Trumpet-style analyses, §2.3): find the most congested queue
/// on the victim flow's path and blame the flows sharing it. No PFC
/// vocabulary — paused packets are indistinguishable from contention, and
/// root causes hops away (or off the victim path) are structurally
/// unreachable. Used by the Fig 8 baseline comparison.
diagnosis::DiagnosisResult diagnose_local_contention(
    const collect::Episode& episode, const net::Topology& topo,
    const net::Routing& routing, const net::FiveTuple& victim,
    const diagnosis::DiagnosisConfig& cfg = {});

/// --- Overhead models (Fig 9) ---

/// SpiderMon: 36 B per flow record, collected on victim-path switches.
inline constexpr std::int32_t kSpiderMonFlowRecordBytes = 36;
/// SpiderMon: 16-bit cumulative-delay header on every data packet.
inline constexpr std::int32_t kSpiderMonHeaderBytes = 2;
/// NetSight: ~15 B postcard per packet per switch hop.
inline constexpr std::int32_t kNetSightPostcardBytes = 15;

/// Telemetry bytes a SpiderMon collection would ship for this episode
/// (per-flow records on the collected switches).
std::int64_t spidermon_telemetry_bytes(const collect::Episode& episode);

/// NetSight processing bytes: every postcard of the monitored interval.
std::int64_t netsight_telemetry_bytes(std::uint64_t data_packet_hops);

}  // namespace hawkeye::baselines
