#include "baselines/local_contention.hpp"

#include <algorithm>
#include <map>

namespace hawkeye::baselines {

using collect::Episode;
using diagnosis::AnomalyType;
using diagnosis::DiagnosisConfig;
using diagnosis::DiagnosisResult;
using net::FiveTuple;
using net::PortRef;

DiagnosisResult diagnose_local_contention(const Episode& ep,
                                          const net::Topology& topo,
                                          const net::Routing& routing,
                                          const FiveTuple& victim,
                                          const DiagnosisConfig& cfg) {
  (void)topo;
  DiagnosisResult res;

  // Most congested victim-path queue by observed average depth; PFC-paused
  // enqueues inflate the depth like any other (no PFC visibility).
  PortRef worst;
  double worst_depth = 0;
  std::map<PortRef, std::map<FiveTuple, std::uint64_t>> flows_at;
  std::map<PortRef, std::pair<double, std::uint64_t>> depth_at;  // sum, cnt

  for (const auto& [sw, rep] : ep.reports) {
    for (const auto& er : rep.epochs) {
      for (const auto& pr : er.ports) {
        auto& d = depth_at[{sw, pr.port}];
        d.first += static_cast<double>(pr.qdepth_pkts_sum);
        d.second += pr.pkt_cnt;
      }
      for (const auto& fr : er.flows) {
        flows_at[{sw, fr.egress_port}][fr.flow] += fr.pkt_cnt;
        // Flow-only view (no port records): approximate depth from flows.
        auto& d = depth_at[{sw, fr.egress_port}];
        if (d.second == 0) {
          d.first += static_cast<double>(fr.qdepth_pkts_sum);
          d.second += fr.pkt_cnt;
        }
      }
    }
  }

  for (const PortRef& hop : routing.path_of(victim)) {
    const auto it = depth_at.find(hop);
    if (it == depth_at.end() || it->second.second == 0) continue;
    const double avg = it->second.first / static_cast<double>(it->second.second);
    if (avg > worst_depth) {
      worst_depth = avg;
      worst = hop;
    }
  }
  if (!worst.valid() || worst_depth < 1.0) return res;  // nothing congested

  // Contributors: largest byte shares in the congested queue, excluding
  // the complaining victim itself.
  const auto fit = flows_at.find(worst);
  if (fit == flows_at.end()) return res;
  std::uint64_t max_cnt = 0;
  for (const auto& [flow, cnt] : fit->second) {
    if (flow == victim) continue;
    max_cnt = std::max(max_cnt, cnt);
  }
  if (max_cnt == 0) return res;
  std::vector<std::pair<std::uint64_t, FiveTuple>> ranked;
  for (const auto& [flow, cnt] : fit->second) {
    if (flow == victim) continue;
    if (static_cast<double>(cnt) >=
        cfg.contention_share * static_cast<double>(max_cnt)) {
      ranked.push_back({cnt, flow});
    }
  }
  std::sort(ranked.rbegin(), ranked.rend());

  res.type = AnomalyType::kNormalContention;  // the only case it knows
  res.initial_port = worst;
  for (const auto& [cnt, flow] : ranked) res.root_cause_flows.push_back(flow);
  res.narrative = "local flow interaction at " + net::to_string(worst);
  return res;
}

std::int64_t spidermon_telemetry_bytes(const Episode& ep) {
  std::int64_t flows = 0;
  for (const auto& [sw, rep] : ep.reports) {
    for (const auto& er : rep.epochs) {
      flows += static_cast<std::int64_t>(er.flows.size());
    }
    flows += static_cast<std::int64_t>(rep.evicted.size());
  }
  return flows * kSpiderMonFlowRecordBytes;
}

std::int64_t netsight_telemetry_bytes(std::uint64_t data_packet_hops) {
  return static_cast<std::int64_t>(data_packet_hops) * kNetSightPostcardBytes;
}

}  // namespace hawkeye::baselines
