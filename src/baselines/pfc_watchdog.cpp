#include "baselines/pfc_watchdog.hpp"

namespace hawkeye::baselines {

void PfcWatchdog::start() {
  if (running_) return;
  running_ = true;
  net_.simu().schedule(cfg_.poll_period, [this]() { poll(); });
}

void PfcWatchdog::poll() {
  const sim::Time now = net_.simu().now();
  ++polls_;
  for (device::Switch* sw : switches_) {
    for (net::PortId p = 0; p < sw->port_count(); ++p) {
      const net::PortRef ref{sw->id(), p};
      if (sw->telemetry().port_paused(p, now)) {
        const int streak = ++consecutive_[ref];
        if (streak >= cfg_.consecutive_paused_polls && !alarmed_[ref]) {
          alarmed_[ref] = true;
          alarms_.push_back({now, ref, streak});
        }
      } else {
        consecutive_[ref] = 0;
        alarmed_[ref] = false;
      }
    }
  }
  net_.simu().schedule(cfg_.poll_period, [this]() { poll(); });
}

sim::Time PfcWatchdog::first_alarm_after(sim::Time t) const {
  for (const Alarm& a : alarms_) {
    if (a.raised_at >= t) return a.raised_at;
  }
  return -1;
}

}  // namespace hawkeye::baselines
