#include "baselines/itsy.hpp"

#include <algorithm>

namespace hawkeye::baselines {

void ItsyDetector::start() {
  if (running_) return;
  running_ = true;
  net_.simu().schedule(cfg_.probe_period, [this]() { probe_round(); });
}

device::Switch* ItsyDetector::switch_at(net::NodeId id) const {
  for (device::Switch* sw : switches_) {
    if (sw->id() == id) return sw;
  }
  return nullptr;
}

std::vector<net::PortId> ItsyDetector::next_hops(device::Switch& sw,
                                                 net::PortId in_port,
                                                 sim::Time now) const {
  std::vector<net::PortId> out;
  for (const net::PortId p : sw.telemetry().causal_out_ports(in_port, now)) {
    if (sw.telemetry().port_paused(p, now)) out.push_back(p);
  }
  return out;
}

void ItsyDetector::probe_round() {
  const sim::Time now = net_.simu().now();
  if (!reported_) {
    for (device::Switch* origin : switches_) {
      for (net::PortId p0 = 0; p0 < origin->port_count() && !reported_; ++p0) {
        if (!origin->telemetry().port_paused(p0, now)) continue;
        // Walk the pause dependency chain from (origin, p0).
        ++probes_;
        std::vector<net::PortRef> path{{origin->id(), p0}};
        net::PortRef cur{origin->id(), p0};
        for (int hop = 0; hop < cfg_.max_hops; ++hop) {
          const net::PortRef peer = net_.topo().peer(cur);
          if (!peer.valid() || !net_.topo().is_switch(peer.node)) break;
          device::Switch* next_sw = switch_at(peer.node);
          if (next_sw == nullptr) break;
          const auto hops = next_hops(*next_sw, peer.port, now);
          if (hops.empty()) break;
          cur = {peer.node, hops.front()};  // probes follow one branch
          const auto it = std::find(path.begin(), path.end(), cur);
          if (it != path.end()) {
            loops_.push_back({now, std::vector<net::PortRef>(it, path.end())});
            reported_ = true;
            break;
          }
          path.push_back(cur);
        }
      }
      if (reported_) break;
    }
  }
  net_.simu().schedule(cfg_.probe_period, [this]() { probe_round(); });
}

}  // namespace hawkeye::baselines
