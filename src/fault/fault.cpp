#include "fault/fault.hpp"

#include <algorithm>
#include <limits>

namespace hawkeye::fault {

namespace {
bool covers(net::NodeId spec_sw, net::NodeId sw, sim::Time start,
            sim::Time stop, sim::Time now) {
  if (spec_sw != net::kInvalidNode && spec_sw != sw) return false;
  if (now < start) return false;
  return stop < 0 || now < stop;
}

bool window_ok(sim::Time start, sim::Time stop) {
  return start >= 0 && (stop < 0 || stop > start);
}

bool prob_ok(double p) { return p >= 0.0 && p <= 1.0; }

/// Open-ended flap trains (stop < 0) are materialized out to this horizon;
/// evaluation traces run a few milliseconds, so one simulated second covers
/// every run while keeping the precomputed schedule small.
constexpr sim::Time kFlapHorizon = 1'000 * sim::kMillisecond;
/// Backstop on pathological period/horizon combinations.
constexpr std::size_t kMaxWindowsPerSpec = 1 << 16;

/// Site salts for the counter-hash draws — one per fault family so the
/// same (attrs, now) never aliases across families.
enum Site : std::uint64_t {
  kSitePoll = 1,
  kSiteDma = 2,
  kSitePfc = 3,
  kSiteJitterChance = 4,
  kSiteJitterMag = 5,
  kSiteCrc = 6,
};

/// Stable identity of a frame on the wire for the CRC draw: every scheduled
/// attribute that distinguishes concurrent frames on one link, none that
/// depend on execution order — so the corruption verdict is fixed the
/// moment the frame is sent, identical under 1-shard and N-shard runs.
std::uint64_t frame_identity(const net::Packet& pkt) {
  std::uint64_t h = pkt.flow_id;
  h ^= pkt.probe_id * 0x9e3779b97f4a7c15ull;
  h ^= static_cast<std::uint64_t>(pkt.seq) << 32;
  h ^= static_cast<std::uint64_t>(pkt.kind) << 8;
  h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(pkt.size_bytes));
  return h;
}

std::uint64_t mix64(std::uint64_t x) {
  // splitmix64 finalizer — full avalanche, so consecutive times and
  // adjacent node ids decorrelate completely.
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Stateless uniform in [0, 1): hash of (seed, site, a, b, t). Replaces the
/// old sequential-Rng stream so a draw's value never depends on how many
/// draws other events made before it — the property that keeps fault
/// verdicts identical between 1-shard and N-shard executions.
double u01(std::uint64_t seed, std::uint64_t site, std::uint64_t a,
           std::uint64_t b, std::uint64_t t) {
  std::uint64_t h = mix64(seed ^ mix64(site));
  h = mix64(h ^ a);
  h = mix64(h ^ b);
  h = mix64(h ^ t);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}
}  // namespace

FaultPlan FaultPlan::uniform_poll_loss(double drop_prob, std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  PollFaultSpec spec;
  spec.drop_prob = drop_prob;
  plan.poll_faults.push_back(spec);
  return plan;
}

FaultPlan FaultPlan::uniform_pfc_loss(double loss_prob, std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  PfcFrameFaultSpec spec;
  spec.loss_prob = loss_prob;
  plan.pfc_faults.push_back(spec);
  return plan;
}

std::string FaultPlan::validate() const {
  for (const PollFaultSpec& s : poll_faults) {
    if (!window_ok(s.start, s.stop)) return "poll fault: empty/inverted window";
    if (!prob_ok(s.drop_prob) || !prob_ok(s.duplicate_prob) ||
        !prob_ok(s.delay_prob) ||
        s.drop_prob + s.duplicate_prob + s.delay_prob > 1.0) {
      return "poll fault: probabilities out of range";
    }
  }
  for (const DmaFaultSpec& s : dma_faults) {
    if (!window_ok(s.start, s.stop)) return "dma fault: empty/inverted window";
    if (!prob_ok(s.fail_prob) || !prob_ok(s.stale_prob) ||
        s.fail_prob + s.stale_prob > 1.0) {
      return "dma fault: probabilities out of range";
    }
  }
  for (const AgentBlackout& b : blackouts) {
    if (!window_ok(b.start, b.stop)) return "blackout: empty/inverted window";
  }
  for (const LinkFlapSpec& s : link_flaps) {
    if (!window_ok(s.start, s.stop)) {
      return "link flap: empty/inverted window";
    }
    // Both endpoints invalid is a placeholder the runner binds later;
    // exactly one bound endpoint can only be a mistake.
    if ((s.node_a == net::kInvalidNode) != (s.node_b == net::kInvalidNode)) {
      return "link flap: half-bound endpoints";
    }
    if (s.down_ns <= 0) return "link flap: non-positive down_ns";
    if (s.period_ns != 0 && s.period_ns < s.down_ns) {
      return "link flap: period shorter than down time";
    }
    if (s.jitter < 0 || s.jitter > 1) return "link flap: jitter out of [0,1]";
    if (s.holddown_ns < 0) return "link flap: negative reconvergence hold-down";
    if (s.holddown_ns == 0 && s.restore_holddown_ns >= 0) {
      return "link flap: restore hold-down set while reconvergence disabled";
    }
  }
  for (const PfcFrameFaultSpec& s : pfc_faults) {
    if (!window_ok(s.start, s.stop)) {
      return "pfc frame fault: empty/inverted window";
    }
    if (!prob_ok(s.loss_prob) || !prob_ok(s.delay_prob) ||
        s.loss_prob + s.delay_prob > 1.0) {
      return "pfc frame fault: probabilities out of range";
    }
  }
  if (!prob_ok(rtt_jitter.prob) || rtt_jitter.magnitude < 0) {
    return "rtt jitter: parameters out of range";
  }
  for (const DegradedLinkSpec& s : degraded_links) {
    if (!window_ok(s.start, s.stop)) {
      return "degraded link: empty/inverted window";
    }
    // Both endpoints invalid is a placeholder the runner binds later;
    // exactly one bound endpoint can only be a mistake.
    if ((s.node_a == net::kInvalidNode) != (s.node_b == net::kInvalidNode)) {
      return "degraded link: half-bound endpoints";
    }
    if (s.ber < 0 || s.ber > 1) return "degraded link: ber out of [0,1]";
  }
  for (const LinkSpeedMismatchSpec& s : speed_mismatches) {
    if (!window_ok(s.start, s.stop)) {
      return "speed mismatch: empty/inverted window";
    }
    if ((s.node_a == net::kInvalidNode) != (s.node_b == net::kInvalidNode)) {
      return "speed mismatch: half-bound endpoints";
    }
    if (s.gbps <= 0) return "speed mismatch: non-positive gbps";
  }
  for (const HostPcieBottleneckSpec& s : pcie_bottlenecks) {
    if (!window_ok(s.start, s.stop)) {
      return "pcie bottleneck: empty/inverted window";
    }
    if (s.drain_gbps <= 0) return "pcie bottleneck: non-positive drain_gbps";
  }
  for (const OversubscribedDownlinkSpec& s : oversub_downlinks) {
    if (!window_ok(s.start, s.stop)) {
      return "oversubscribed downlink: empty/inverted window";
    }
    if (s.factor <= 0 || s.factor >= 1) {
      return "oversubscribed downlink: factor out of (0,1)";
    }
  }

  // --- Same-site overlapping windows ---
  // Spec lookup is first-match-wins (poll_spec / dma_spec / the degraded
  // and rate-override scans): a later spec covering the same site during an
  // overlapping window silently never fires there, so its parameters are
  // dead weight that *looks* installed. Reject the ambiguity; adjacent
  // half-open windows ([a,b) then [b,c)) remain fine. Windows with
  // stop < 0 extend to the end of the run; wildcard sites (kInvalidNode
  // switch/host, kInvalidPort port, both-placeholder link endpoints)
  // conflict with every site their family could match.
  const auto overlap = [](sim::Time s1, sim::Time e1, sim::Time s2,
                          sim::Time e2) {
    const sim::Time inf = std::numeric_limits<sim::Time>::max();
    return std::max(s1, s2) < std::min(e1 < 0 ? inf : e1, e2 < 0 ? inf : e2);
  };
  const auto nodes_alias = [](net::NodeId a, net::NodeId b) {
    return a == net::kInvalidNode || b == net::kInvalidNode || a == b;
  };
  const auto links_alias = [](net::NodeId a1, net::NodeId b1, net::NodeId a2,
                              net::NodeId b2) {
    return std::minmax(a1, b1) == std::minmax(a2, b2);
  };
  for (std::size_t i = 0; i < poll_faults.size(); ++i) {
    for (std::size_t j = i + 1; j < poll_faults.size(); ++j) {
      const PollFaultSpec& a = poll_faults[i];
      const PollFaultSpec& b = poll_faults[j];
      if (nodes_alias(a.sw, b.sw) && overlap(a.start, a.stop, b.start, b.stop)) {
        return "poll fault: overlapping windows for the same switch";
      }
    }
  }
  for (std::size_t i = 0; i < dma_faults.size(); ++i) {
    for (std::size_t j = i + 1; j < dma_faults.size(); ++j) {
      const DmaFaultSpec& a = dma_faults[i];
      const DmaFaultSpec& b = dma_faults[j];
      if (nodes_alias(a.sw, b.sw) && overlap(a.start, a.stop, b.start, b.stop)) {
        return "dma fault: overlapping windows for the same switch";
      }
    }
  }
  for (std::size_t i = 0; i < blackouts.size(); ++i) {
    for (std::size_t j = i + 1; j < blackouts.size(); ++j) {
      const AgentBlackout& a = blackouts[i];
      const AgentBlackout& b = blackouts[j];
      if (nodes_alias(a.sw, b.sw) && overlap(a.start, a.stop, b.start, b.stop)) {
        return "blackout: overlapping windows for the same switch";
      }
    }
  }
  for (std::size_t i = 0; i < link_flaps.size(); ++i) {
    for (std::size_t j = i + 1; j < link_flaps.size(); ++j) {
      const LinkFlapSpec& a = link_flaps[i];
      const LinkFlapSpec& b = link_flaps[j];
      if (links_alias(a.node_a, a.node_b, b.node_a, b.node_b) &&
          overlap(a.start, a.stop, b.start, b.stop)) {
        return "link flap: overlapping windows for the same link";
      }
    }
  }
  for (std::size_t i = 0; i < pfc_faults.size(); ++i) {
    for (std::size_t j = i + 1; j < pfc_faults.size(); ++j) {
      const PfcFrameFaultSpec& a = pfc_faults[i];
      const PfcFrameFaultSpec& b = pfc_faults[j];
      const bool port_aliases = a.port == net::kInvalidPort ||
                                b.port == net::kInvalidPort ||
                                a.port == b.port;
      if (nodes_alias(a.sw, b.sw) && port_aliases &&
          overlap(a.start, a.stop, b.start, b.stop)) {
        return "pfc frame fault: overlapping windows for the same port";
      }
    }
  }
  for (std::size_t i = 0; i < degraded_links.size(); ++i) {
    for (std::size_t j = i + 1; j < degraded_links.size(); ++j) {
      const DegradedLinkSpec& a = degraded_links[i];
      const DegradedLinkSpec& b = degraded_links[j];
      if (links_alias(a.node_a, a.node_b, b.node_a, b.node_b) &&
          overlap(a.start, a.stop, b.start, b.stop)) {
        return "degraded link: overlapping windows for the same link";
      }
    }
  }
  for (std::size_t i = 0; i < speed_mismatches.size(); ++i) {
    for (std::size_t j = i + 1; j < speed_mismatches.size(); ++j) {
      const LinkSpeedMismatchSpec& a = speed_mismatches[i];
      const LinkSpeedMismatchSpec& b = speed_mismatches[j];
      if (links_alias(a.node_a, a.node_b, b.node_a, b.node_b) &&
          overlap(a.start, a.stop, b.start, b.stop)) {
        return "speed mismatch: overlapping windows for the same link";
      }
    }
  }
  for (std::size_t i = 0; i < pcie_bottlenecks.size(); ++i) {
    for (std::size_t j = i + 1; j < pcie_bottlenecks.size(); ++j) {
      const HostPcieBottleneckSpec& a = pcie_bottlenecks[i];
      const HostPcieBottleneckSpec& b = pcie_bottlenecks[j];
      if (nodes_alias(a.host, b.host) &&
          overlap(a.start, a.stop, b.start, b.stop)) {
        return "pcie bottleneck: overlapping windows for the same host";
      }
    }
  }
  for (std::size_t i = 0; i < oversub_downlinks.size(); ++i) {
    for (std::size_t j = i + 1; j < oversub_downlinks.size(); ++j) {
      const OversubscribedDownlinkSpec& a = oversub_downlinks[i];
      const OversubscribedDownlinkSpec& b = oversub_downlinks[j];
      if (nodes_alias(a.sw, b.sw) &&
          overlap(a.start, a.stop, b.start, b.stop)) {
        return "oversubscribed downlink: overlapping windows for the same "
               "switch";
      }
    }
  }
  return {};
}

const PollFaultSpec* FaultInjector::poll_spec(net::NodeId sw,
                                              sim::Time now) const {
  for (const PollFaultSpec& s : plan_.poll_faults) {
    if (covers(s.sw, sw, s.start, s.stop, now)) return &s;
  }
  return nullptr;
}

const DmaFaultSpec* FaultInjector::dma_spec(net::NodeId sw,
                                            sim::Time now) const {
  for (const DmaFaultSpec& s : plan_.dma_faults) {
    if (covers(s.sw, sw, s.start, s.stop, now)) return &s;
  }
  return nullptr;
}

PollVerdict FaultInjector::on_polling(net::NodeId sw,
                                      const net::FiveTuple& victim,
                                      sim::Time now) {
  const PollFaultSpec* s = poll_spec(sw, now);
  if (s == nullptr) return {};
  // One variate decides the (mutually exclusive) outcome. The draw is a
  // pure function of (seed, switch, victim, arrival time), so the verdict
  // is fixed the moment the arrival is scheduled — independent of what any
  // other event draws.
  const double u = u01(plan_.seed, kSitePoll,
                       static_cast<std::uint64_t>(sw), victim.hash(),
                       static_cast<std::uint64_t>(now));
  if (u < s->drop_prob) {
    std::lock_guard<std::mutex> lk(mu_);
    ++polls_dropped_;
    ++victim_faults_[victim];
    return {PollAction::kDrop, 0};
  }
  if (u < s->drop_prob + s->duplicate_prob) {
    std::lock_guard<std::mutex> lk(mu_);
    ++polls_duplicated_;
    return {PollAction::kDuplicate, s->delay_ns};
  }
  if (u < s->drop_prob + s->duplicate_prob + s->delay_prob) {
    std::lock_guard<std::mutex> lk(mu_);
    ++polls_delayed_;
    ++victim_faults_[victim];
    return {PollAction::kDelay, s->delay_ns};
  }
  return {};
}

bool FaultInjector::agent_down(net::NodeId sw, sim::Time now) const {
  for (const AgentBlackout& b : plan_.blackouts) {
    if (covers(b.sw, sw, b.start, b.stop, now)) return true;
  }
  return false;
}

void FaultInjector::note_blackout_drop(const net::FiveTuple& victim) {
  std::lock_guard<std::mutex> lk(mu_);
  ++blackout_drops_;
  ++victim_faults_[victim];
}

DmaVerdict FaultInjector::on_dma(net::NodeId sw, sim::Time now) {
  const DmaFaultSpec* s = dma_spec(sw, now);
  if (s == nullptr) return {};
  const double u = u01(plan_.seed, kSiteDma, static_cast<std::uint64_t>(sw),
                       0, static_cast<std::uint64_t>(now));
  if (u < s->fail_prob) {
    std::lock_guard<std::mutex> lk(mu_);
    ++dma_failed_;
    return {true, 0};
  }
  if (u < s->fail_prob + s->stale_prob) {
    std::lock_guard<std::mutex> lk(mu_);
    ++dma_stale_;
    return {false, s->extra_delay};
  }
  return {};
}

sim::Time FaultInjector::jitter_rtt(sim::Time rtt, const net::FiveTuple& flow,
                                    sim::Time now) {
  if (plan_.rtt_jitter.prob <= 0) return rtt;
  const std::uint64_t t = static_cast<std::uint64_t>(now);
  if (u01(plan_.seed, kSiteJitterChance, flow.hash(),
          static_cast<std::uint64_t>(rtt), t) >= plan_.rtt_jitter.prob) {
    return rtt;
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    ++rtt_jittered_;
  }
  const double factor =
      1.0 + plan_.rtt_jitter.magnitude *
                u01(plan_.seed, kSiteJitterMag, flow.hash(),
                    static_cast<std::uint64_t>(rtt), t);
  return static_cast<sim::Time>(static_cast<double>(rtt) * factor);
}

std::uint32_t FaultInjector::faults_for(const net::FiveTuple& victim) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = victim_faults_.find(victim);
  return it == victim_faults_.end() ? 0 : it->second;
}

void FaultInjector::build_flap_schedule() {
  if (plan_.link_flaps.empty()) return;
  // A dedicated generator fixes the whole flap schedule up front: runtime
  // link_down() queries are then pure lookups, and the event-ordered stream
  // behind rng_ never sees a link fault — so adding a flap to a plan does
  // not perturb the draw sequence of its poll/DMA/PFC faults.
  sim::Rng gen(plan_.seed ^ 0xf1a9'f1a9'f1a9'f1a9ull);
  for (const LinkFlapSpec& s : plan_.link_flaps) {
    if (s.node_a == net::kInvalidNode || s.node_b == net::kInvalidNode) {
      continue;  // unbound placeholder — inert
    }
    FlapSchedule sched;
    sched.a = s.node_a;
    sched.b = s.node_b;
    sched.holddown_ns = s.holddown_ns;
    sched.restore_holddown_ns = s.restore_holddown();
    if (s.period_ns <= 0) {
      sim::Time t1 = s.start + s.down_ns;
      if (s.stop >= 0) t1 = std::min(t1, s.stop);
      if (t1 > s.start) sched.windows.push_back({s.start, t1});
    } else {
      const sim::Time horizon = s.stop < 0 ? kFlapHorizon : s.stop;
      const sim::Time slack = s.period_ns - s.down_ns;
      for (sim::Time t = s.start;
           t < horizon && sched.windows.size() < kMaxWindowsPerSpec;
           t += s.period_ns) {
        sim::Time off = 0;
        if (s.jitter > 0 && slack > 0) {
          off = static_cast<sim::Time>(gen.uniform_real(
              0.0, s.jitter * static_cast<double>(slack)));
        }
        const sim::Time t0 = t + off;
        const sim::Time t1 = std::min(t0 + s.down_ns, horizon);
        if (t1 > t0) sched.windows.push_back({t0, t1});
      }
    }
    if (!sched.windows.empty()) flaps_.push_back(std::move(sched));
  }
}

const FaultInjector::DownWindow* FaultInjector::down_window(
    net::NodeId a, net::NodeId b, sim::Time now) const {
  for (const FlapSchedule& f : flaps_) {
    const bool match =
        (f.a == a && f.b == b) || (f.a == b && f.b == a);
    if (!match) continue;
    // First window ending after `now`; covers `now` iff it already started.
    const auto it = std::upper_bound(
        f.windows.begin(), f.windows.end(), now,
        [](sim::Time t, const DownWindow& w) { return t < w.t1; });
    if (it != f.windows.end() && it->t0 <= now) return &*it;
  }
  return nullptr;
}

bool FaultInjector::link_down(net::NodeId a, net::NodeId b,
                              sim::Time now) const {
  return down_window(a, b, now) != nullptr;
}

sim::Time FaultInjector::link_down_until(net::NodeId a, net::NodeId b,
                                         sim::Time now) const {
  const DownWindow* w = down_window(a, b, now);
  return w == nullptr ? now : w->t1;
}

void FaultInjector::note_link_drop(net::NodeId a, net::NodeId b,
                                   const net::Packet& pkt, sim::Time now) {
  std::lock_guard<std::mutex> lk(mu_);
  ++link_drops_;
  if (pkt.kind == net::PacketKind::kPolling) ++victim_faults_[pkt.victim];
  if (!links_hit_sorted_contains(a, b)) {
    links_hit_insert_sorted(a, b);
  }
  note_dataplane_fault_locked(now);
}

void FaultInjector::note_link_hit(net::NodeId a, net::NodeId b) {
  std::lock_guard<std::mutex> lk(mu_);
  if (!links_hit_sorted_contains(a, b)) links_hit_insert_sorted(a, b);
}

bool FaultInjector::links_hit_sorted_contains(net::NodeId a,
                                              net::NodeId b) const {
  const auto key = std::minmax(a, b);
  const std::pair<net::NodeId, net::NodeId> p{key.first, key.second};
  return std::binary_search(links_hit_.begin(), links_hit_.end(), p);
}

void FaultInjector::links_hit_insert_sorted(net::NodeId a, net::NodeId b) {
  // Endpoint-normalized and kept sorted, so the recorded set (and its
  // iteration order downstream) is independent of which shard noticed a
  // link's first hit first.
  const auto key = std::minmax(a, b);
  const std::pair<net::NodeId, net::NodeId> p{key.first, key.second};
  links_hit_.insert(
      std::lower_bound(links_hit_.begin(), links_hit_.end(), p), p);
}

bool FaultInjector::link_hit(net::NodeId a, net::NodeId b) const {
  std::lock_guard<std::mutex> lk(mu_);
  return links_hit_sorted_contains(a, b);
}

PfcVerdict FaultInjector::on_pfc_frame(net::NodeId from, net::PortId port,
                                       std::uint32_t quanta, sim::Time now) {
  const PfcFrameFaultSpec* spec = nullptr;
  for (const PfcFrameFaultSpec& s : plan_.pfc_faults) {
    if (s.sw != net::kInvalidNode && s.sw != from) continue;
    if (s.port != net::kInvalidPort && s.port != port) continue;
    if (now < s.start || (s.stop >= 0 && now >= s.stop)) continue;
    if (quanta > 0 ? !s.affect_pause : !s.affect_resume) continue;
    spec = &s;
    break;
  }
  if (spec == nullptr) return {};
  // Same one-variate discipline as on_polling: one draw per covered frame,
  // mutually exclusive outcomes, loss wins over delay.
  const double u = u01(
      plan_.seed, kSitePfc,
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(from)) << 16) ^
          static_cast<std::uint64_t>(static_cast<std::uint16_t>(port)),
      quanta, static_cast<std::uint64_t>(now));
  if (u < spec->loss_prob) {
    std::lock_guard<std::mutex> lk(mu_);
    if (quanta > 0) {
      ++pfc_pause_lost_;
      ++pause_lost_by_[from];
    } else {
      ++pfc_resume_lost_;
    }
    note_dataplane_fault_locked(now);
    return {true, 0};
  }
  if (u < spec->loss_prob + spec->delay_prob) {
    std::lock_guard<std::mutex> lk(mu_);
    ++pfc_frames_delayed_;
    note_dataplane_fault_locked(now);
    return {false, spec->delay_ns};
  }
  return {};
}

std::uint64_t FaultInjector::pause_frames_lost(net::NodeId sw) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = pause_lost_by_.find(sw);
  return it == pause_lost_by_.end() ? 0 : it->second;
}

const DegradedLinkSpec* FaultInjector::degraded_spec(net::NodeId a,
                                                     net::NodeId b,
                                                     sim::Time now) const {
  for (const DegradedLinkSpec& s : plan_.degraded_links) {
    if (s.node_a == net::kInvalidNode || s.node_b == net::kInvalidNode) {
      continue;  // unbound placeholder — inert
    }
    const bool match = (s.node_a == a && s.node_b == b) ||
                       (s.node_a == b && s.node_b == a);
    if (!match) continue;
    if (now < s.start || (s.stop >= 0 && now >= s.stop)) continue;
    return &s;
  }
  return nullptr;
}

bool FaultInjector::on_wire_crc(net::NodeId a, net::NodeId b,
                                const net::Packet& pkt, sim::Time now) {
  const DegradedLinkSpec* s = degraded_spec(a, b, now);
  if (s == nullptr) return false;
  const double bits = static_cast<double>(pkt.size_bytes) * 8.0;
  const double p = std::min(1.0, s->ber * bits);
  if (p <= 0) return false;
  // One draw per frame, keyed by (link, frame identity, send time): the
  // verdict is a pure function of scheduled attributes, so a frame's fate
  // is fixed when it is sent — identical across shard counts.
  const double u = u01(plan_.seed, kSiteCrc, link_key(a, b),
                       frame_identity(pkt), static_cast<std::uint64_t>(now));
  if (u >= p) return false;
  std::lock_guard<std::mutex> lk(mu_);
  ++crc_drops_;
  ++crc_by_link_[link_key(a, b)];
  if (pkt.kind == net::PacketKind::kPolling) ++victim_faults_[pkt.victim];
  if (!links_hit_sorted_contains(a, b)) links_hit_insert_sorted(a, b);
  note_dataplane_fault_locked(now);
  return true;
}

std::uint64_t FaultInjector::crc_errors(net::NodeId a, net::NodeId b) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = crc_by_link_.find(link_key(a, b));
  return it == crc_by_link_.end() ? 0 : it->second;
}

std::vector<std::pair<std::pair<net::NodeId, net::NodeId>, std::uint64_t>>
FaultInjector::crc_links() const {
  std::vector<std::pair<std::pair<net::NodeId, net::NodeId>, std::uint64_t>>
      out;
  {
    std::lock_guard<std::mutex> lk(mu_);
    out.reserve(crc_by_link_.size());
    for (const auto& [key, count] : crc_by_link_) {
      out.push_back({{static_cast<net::NodeId>(key >> 32),
                      static_cast<net::NodeId>(key & 0xffffffffu)},
                     count});
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

void FaultInjector::build_rate_overrides() {
  for (const LinkSpeedMismatchSpec& s : plan_.speed_mismatches) {
    if (s.node_a == net::kInvalidNode || s.node_b == net::kInvalidNode) {
      continue;  // unbound placeholder — inert until the runner binds it
    }
    rate_overrides_.push_back(
        {s.node_a, s.node_b, s.gbps, s.start, s.stop, false});
  }
}

void FaultInjector::bind_rate_override(net::NodeId a, net::NodeId b,
                                       double gbps, sim::Time start,
                                       sim::Time stop, bool oversub) {
  rate_overrides_.push_back({a, b, gbps, start, stop, oversub});
}

double FaultInjector::link_gbps(net::NodeId a, net::NodeId b, double nominal,
                                sim::Time now) const {
  for (const RateOverride& o : rate_overrides_) {
    const bool match = (o.a == a && o.b == b) || (o.a == b && o.b == a);
    if (!match) continue;
    if (now < o.start || (o.stop >= 0 && now >= o.stop)) continue;
    return o.gbps;
  }
  return nominal;
}

void FaultInjector::note_rate_limited(net::NodeId a, net::NodeId b,
                                      sim::Time now) {
  std::lock_guard<std::mutex> lk(mu_);
  ++rate_limited_pkts_;
  ++rate_limited_by_link_[link_key(a, b)];
  if (!links_hit_sorted_contains(a, b)) links_hit_insert_sorted(a, b);
  note_dataplane_fault_locked(now);
}

std::uint64_t FaultInjector::rate_limited_pkts(net::NodeId a,
                                               net::NodeId b) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = rate_limited_by_link_.find(link_key(a, b));
  return it == rate_limited_by_link_.end() ? 0 : it->second;
}

double FaultInjector::host_drain_gbps(net::NodeId host, sim::Time now) const {
  for (const HostPcieBottleneckSpec& s : plan_.pcie_bottlenecks) {
    if (covers(s.host, host, s.start, s.stop, now)) return s.drain_gbps;
  }
  return 0;
}

void FaultInjector::note_host_drain_delay(net::NodeId host,
                                          sim::Time backlog_ns,
                                          sim::Time now) {
  std::lock_guard<std::mutex> lk(mu_);
  ++host_drain_delayed_;
  ++drain_delayed_by_host_[host];
  sim::Time& hw = drain_backlog_by_host_[host];
  hw = std::max(hw, backlog_ns);
  note_dataplane_fault_locked(now);
}

std::uint64_t FaultInjector::host_drain_delayed(net::NodeId host) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = drain_delayed_by_host_.find(host);
  return it == drain_delayed_by_host_.end() ? 0 : it->second;
}

sim::Time FaultInjector::host_drain_max_backlog(net::NodeId host) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = drain_backlog_by_host_.find(host);
  return it == drain_backlog_by_host_.end() ? 0 : it->second;
}

void FaultInjector::note_dataplane_fault_locked(sim::Time now) {
  if (first_dataplane_fault_ < 0 || now < first_dataplane_fault_) {
    first_dataplane_fault_ = now;
  }
  last_dataplane_fault_ = std::max(last_dataplane_fault_, now);
}

void FaultInjector::note_dataplane_fault(sim::Time now) {
  std::lock_guard<std::mutex> lk(mu_);
  note_dataplane_fault_locked(now);
}

}  // namespace hawkeye::fault
