#include "fault/fault.hpp"

namespace hawkeye::fault {

namespace {
bool covers(net::NodeId spec_sw, net::NodeId sw, sim::Time start,
            sim::Time stop, sim::Time now) {
  if (spec_sw != net::kInvalidNode && spec_sw != sw) return false;
  if (now < start) return false;
  return stop < 0 || now < stop;
}
}  // namespace

FaultPlan FaultPlan::uniform_poll_loss(double drop_prob, std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  PollFaultSpec spec;
  spec.drop_prob = drop_prob;
  plan.poll_faults.push_back(spec);
  return plan;
}

const PollFaultSpec* FaultInjector::poll_spec(net::NodeId sw,
                                              sim::Time now) const {
  for (const PollFaultSpec& s : plan_.poll_faults) {
    if (covers(s.sw, sw, s.start, s.stop, now)) return &s;
  }
  return nullptr;
}

const DmaFaultSpec* FaultInjector::dma_spec(net::NodeId sw,
                                            sim::Time now) const {
  for (const DmaFaultSpec& s : plan_.dma_faults) {
    if (covers(s.sw, sw, s.start, s.stop, now)) return &s;
  }
  return nullptr;
}

PollVerdict FaultInjector::on_polling(net::NodeId sw,
                                      const net::FiveTuple& victim,
                                      sim::Time now) {
  const PollFaultSpec* s = poll_spec(sw, now);
  if (s == nullptr) return {};
  // One variate decides the (mutually exclusive) outcome, so the draw
  // count per arrival is fixed and the stream stays aligned across runs.
  const double u = rng_.uniform_real(0.0, 1.0);
  if (u < s->drop_prob) {
    ++polls_dropped_;
    ++victim_faults_[victim];
    return {PollAction::kDrop, 0};
  }
  if (u < s->drop_prob + s->duplicate_prob) {
    ++polls_duplicated_;
    return {PollAction::kDuplicate, s->delay_ns};
  }
  if (u < s->drop_prob + s->duplicate_prob + s->delay_prob) {
    ++polls_delayed_;
    ++victim_faults_[victim];
    return {PollAction::kDelay, s->delay_ns};
  }
  return {};
}

bool FaultInjector::agent_down(net::NodeId sw, sim::Time now) const {
  for (const AgentBlackout& b : plan_.blackouts) {
    if (b.sw == sw && now >= b.start && now < b.stop) return true;
  }
  return false;
}

void FaultInjector::note_blackout_drop(const net::FiveTuple& victim) {
  ++blackout_drops_;
  ++victim_faults_[victim];
}

DmaVerdict FaultInjector::on_dma(net::NodeId sw, sim::Time now) {
  const DmaFaultSpec* s = dma_spec(sw, now);
  if (s == nullptr) return {};
  const double u = rng_.uniform_real(0.0, 1.0);
  if (u < s->fail_prob) {
    ++dma_failed_;
    return {true, 0};
  }
  if (u < s->fail_prob + s->stale_prob) {
    ++dma_stale_;
    return {false, s->extra_delay};
  }
  return {};
}

sim::Time FaultInjector::jitter_rtt(sim::Time rtt) {
  if (plan_.rtt_jitter.prob <= 0) return rtt;
  if (!rng_.chance(plan_.rtt_jitter.prob)) return rtt;
  ++rtt_jittered_;
  const double factor =
      1.0 + rng_.uniform_real(0.0, plan_.rtt_jitter.magnitude);
  return static_cast<sim::Time>(static_cast<double>(rtt) * factor);
}

std::uint32_t FaultInjector::faults_for(const net::FiveTuple& victim) const {
  const auto it = victim_faults_.find(victim);
  return it == victim_faults_.end() ? 0 : it->second;
}

}  // namespace hawkeye::fault
