#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/packet.hpp"
#include "net/types.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace hawkeye::fault {

/// Deterministic fault-injection substrate for the collection pipeline.
///
/// Hawkeye's own telemetry path is best-effort by design: polling packets
/// ride a droppable class, switch CPUs can be too overloaded to finish a
/// DMA snapshot, and per-switch agents crash and restart. Collie (NSDI'22)
/// showed the diagnostic stack itself is a major anomaly source; this
/// module lets the evaluation inject exactly those failures while keeping
/// runs reproducible — every probabilistic decision is a stateless
/// counter-hash of (plan seed, fault site, the event's stable attributes,
/// simulated time). No draw depends on how many draws happened before it,
/// so a fixed FaultPlan yields the same fault trace regardless of event
/// *execution* order: sweeps stay deterministic under eval::run_sweep's
/// thread pool AND a sharded simulator's parallel rounds produce the same
/// verdicts as the single-calendar run. Accounting is mutex-guarded and
/// commutative (sums, min/max, sorted sets), so the recorded totals are
/// exact under concurrency as well.
///
/// All hooks are reached through a nullable FaultInjector pointer on the
/// device/collect objects: with no injector installed the fault paths cost
/// one branch and draw no randomness, so fault-free runs are byte-identical
/// to a build without this module.

/// Faults on polling packets (and their PFC-causality clones) arriving at
/// a switch. Probabilities are per polling-packet arrival; at most one
/// action fires per arrival (drop wins over duplicate over delay).
struct PollFaultSpec {
  /// Target switch; net::kInvalidNode means every switch.
  net::NodeId sw = net::kInvalidNode;
  double drop_prob = 0;
  double duplicate_prob = 0;
  double delay_prob = 0;
  /// Extra latency applied when the delay fault fires.
  sim::Time delay_ns = sim::us(100);
  /// Active window [start, stop); stop < 0 means until the end of the run.
  sim::Time start = 0;
  sim::Time stop = -1;
};

/// Faults on the controller-assisted register snapshot (switch-CPU DMA,
/// paper §3.4). `fail` models an overloaded CPU never completing the read;
/// `stale` models the read completing late — by then the epoch ring has
/// been partially recycled, which the Collector detects via epoch IDs and
/// rejects (ring-overwrite guard).
struct DmaFaultSpec {
  net::NodeId sw = net::kInvalidNode;  // kInvalidNode => every switch
  double fail_prob = 0;
  double stale_prob = 0;
  /// Extra snapshot latency when the stale fault fires.
  sim::Time extra_delay = sim::ms(1);
  sim::Time start = 0;
  sim::Time stop = -1;
};

/// A HawkeyeSwitchAgent outage (agent crash/restart): during [start, stop)
/// the switch behaves like a non-Hawkeye switch and drops polling packets.
/// kInvalidNode blacks out every agent; stop < 0 means until the end of the
/// run — the same window sentinel as every other spec (a default-constructed
/// blackout is therefore permanently active, not silently inert).
struct AgentBlackout {
  net::NodeId sw = net::kInvalidNode;
  sim::Time start = 0;
  sim::Time stop = -1;
};

/// A physical link flapping: the link is dead during one or more down
/// windows inside [start, stop). In-flight packets on the link are dropped,
/// the transmitters on both ends stall, and routing keeps forwarding into
/// the dead port — no reconvergence, because the resulting black hole /
/// backpressure IS the anomaly Hawkeye should diagnose (Collie NSDI'22).
///
/// `period_ns == 0` gives a single outage of `down_ns` at `start`. With a
/// period, the link goes down once per period for `down_ns`; `jitter > 0`
/// shifts each outage by a seeded-uniform offset within its period (a
/// random flap train). The whole schedule is precomputed at injector
/// construction from the plan seed, so runtime queries are pure and the
/// event-ordered fault stream is untouched.
///
/// Leaving both endpoints at kInvalidNode marks the spec as a placeholder:
/// the evaluation runner binds it to a link on the crafted victim's path
/// once the scenario (and hence the victim route) is known.
struct LinkFlapSpec {
  net::NodeId node_a = net::kInvalidNode;
  net::NodeId node_b = net::kInvalidNode;
  sim::Time start = 0;
  sim::Time stop = -1;     // < 0 => flap train runs to the end of the run
  sim::Time down_ns = sim::us(100);
  sim::Time period_ns = 0; // 0 => single outage at `start`
  double jitter = 0;       // fraction of the idle gap randomized, [0, 1]

  /// Routing reconvergence hold-down (PR 4). 0 keeps routing frozen — the
  /// pre-reconvergence behaviour, byte-identical to PR 3 runs. A positive
  /// value means: `holddown_ns` after the link goes down, the two endpoint
  /// switches withdraw the dead port from their ECMP candidate sets
  /// (net::Routing::disable_port); outages shorter than the hold-down never
  /// reconverge, exactly like a real hold-down/dampening timer.
  sim::Time holddown_ns = 0;
  /// Hold-down before the port is restored after link-up; < 0 (default)
  /// means "same as holddown_ns". Ignored while holddown_ns == 0.
  sim::Time restore_holddown_ns = -1;

  bool reconverges() const { return holddown_ns > 0; }
  sim::Time restore_holddown() const {
    return restore_holddown_ns < 0 ? holddown_ns : restore_holddown_ns;
  }
};

/// Per-port probabilistic loss/delay of PFC pause/resume frames on the
/// wire (Mittal et al., SIGCOMM'18: corrupted pause signaling). A lost
/// RESUME leaves the paused peer frozen until its pause quanta age out; a
/// lost PAUSE lets the upstream keep transmitting into a full ingress,
/// whose overflow drops are accounted under DropReason::kPfcLoss so
/// losslessness assertions can tell injected signal loss from model bugs.
struct PfcFrameFaultSpec {
  /// Device that SENT the frame; kInvalidNode matches every sender.
  net::NodeId sw = net::kInvalidNode;
  /// Port the frame left from; kInvalidPort matches every port.
  net::PortId port = net::kInvalidPort;
  double loss_prob = 0;
  double delay_prob = 0;
  sim::Time delay_ns = sim::us(20);
  bool affect_pause = true;   // quanta > 0 frames
  bool affect_resume = true;  // quanta == 0 frames
  sim::Time start = 0;
  sim::Time stop = -1;
};

/// Noise on the RTT samples feeding the DetectionAgent (flaky host timer /
/// congested PCIe — the detector's own sensor misbehaving). Each sample is
/// inflated with probability `prob` by a factor in [1, 1 + magnitude].
struct RttJitterSpec {
  double prob = 0;
  double magnitude = 0;
};

struct FaultPlan {
  std::uint64_t seed = 1;
  std::vector<PollFaultSpec> poll_faults;
  std::vector<DmaFaultSpec> dma_faults;
  std::vector<AgentBlackout> blackouts;
  std::vector<LinkFlapSpec> link_flaps;
  std::vector<PfcFrameFaultSpec> pfc_faults;
  RttJitterSpec rtt_jitter;

  bool enabled() const {
    return !poll_faults.empty() || !dma_faults.empty() ||
           !blackouts.empty() || !link_flaps.empty() ||
           !pfc_faults.empty() || rtt_jitter.prob > 0;
  }

  /// True if the plan reaches below the telemetry layer into the fabric
  /// (link flaps / PFC frame faults) — the data-plane robustness axes.
  bool dataplane_enabled() const {
    return !link_flaps.empty() || !pfc_faults.empty();
  }

  /// Structural sanity check: empty string when the plan is installable,
  /// otherwise a description of the first problem (inverted/empty window,
  /// out-of-range probability, half-bound flap endpoints...). Testbed
  /// installation rejects invalid plans so a window typo fails loudly
  /// instead of silently never firing.
  std::string validate() const;

  /// Convenience: uniform polling-packet loss at every switch (the
  /// robustness sweep's primary axis).
  static FaultPlan uniform_poll_loss(double drop_prob, std::uint64_t seed);

  /// Convenience: uniform PFC pause/resume loss on every port (the
  /// data-plane robustness sweep's primary axis).
  static FaultPlan uniform_pfc_loss(double loss_prob, std::uint64_t seed);
};

enum class PollAction : std::uint8_t { kDeliver, kDrop, kDuplicate, kDelay };

struct PollVerdict {
  PollAction action = PollAction::kDeliver;
  sim::Time delay_ns = 0;
};

struct DmaVerdict {
  bool failed = false;
  sim::Time extra_delay = 0;
};

struct PfcVerdict {
  bool dropped = false;
  sim::Time extra_delay = 0;
};

class FaultInjector {
 public:
  struct DownWindow {
    sim::Time t0 = 0;
    sim::Time t1 = 0;
  };
  /// The precomputed outage windows of one bound LinkFlapSpec, plus the
  /// spec's reconvergence hold-downs — everything the reconvergence driver
  /// (device::Network::schedule_reconvergence) needs to arm its routing
  /// withdraw/restore events up front.
  struct FlapSchedule {
    net::NodeId a = net::kInvalidNode;
    net::NodeId b = net::kInvalidNode;
    std::vector<DownWindow> windows;  // sorted, non-overlapping
    sim::Time holddown_ns = 0;        // 0 => routing stays frozen
    sim::Time restore_holddown_ns = 0;
  };

  explicit FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {
    build_flap_schedule();
  }

  const FaultPlan& plan() const { return plan_; }

  /// A polling packet for `victim` arrived at switch `sw`. Draws at most
  /// one uniform variate when a spec covers (sw, now).
  PollVerdict on_polling(net::NodeId sw, const net::FiveTuple& victim,
                         sim::Time now);

  /// Is the switch's Hawkeye agent blacked out at `now`? (No randomness.)
  bool agent_down(net::NodeId sw, sim::Time now) const;

  /// Record a polling packet lost to a blackout (per-victim accounting).
  void note_blackout_drop(const net::FiveTuple& victim);

  /// The switch CPU was asked for a register snapshot at `now`.
  DmaVerdict on_dma(net::NodeId sw, sim::Time now);

  /// Pass an RTT sample through the jitter model (identity when disabled).
  /// The flow and the sample time key the draw, so jitter on one sample is
  /// independent of every other sample yet reproducible run-to-run.
  sim::Time jitter_rtt(sim::Time rtt, const net::FiveTuple& flow,
                       sim::Time now);

  /// Any link-flap windows scheduled? Lets the switch transmit path skip
  /// the peer lookup entirely when only collection faults are configured.
  bool has_link_faults() const { return !flaps_.empty(); }

  /// Is the (a, b) link dead at `now`? Endpoint order is irrelevant; pure
  /// (no randomness — the schedule was fixed at construction).
  bool link_down(net::NodeId a, net::NodeId b, sim::Time now) const;

  /// End of the down window covering `now` on link (a, b); `now` if the
  /// link is up. Switches use it to arm their transmitter wake-up.
  sim::Time link_down_until(net::NodeId a, net::NodeId b,
                            sim::Time now) const;

  /// A packet died on the dead (a, b) link (send- or arrival-edge).
  /// Polling packets count toward the victim's collection-fault tally like
  /// any other substrate hit; every loss stamps the data-plane fault epoch
  /// and marks the link as having actually bitten (link_hit).
  void note_link_drop(net::NodeId a, net::NodeId b, const net::Packet& pkt,
                      sim::Time now);

  /// A transmitter found its egress link (a, b) dead and stalled (once per
  /// port per outage) — impact truth even when nothing was in flight to
  /// drop.
  void note_link_stall(net::NodeId a, net::NodeId b, sim::Time now) {
    note_link_hit(a, b);
    note_dataplane_fault(now);
  }

  /// Did the (a, b) flap ever actually bite (drop or stall) during the
  /// run? Endpoint order is irrelevant. A schedule that never intersected
  /// live traffic returns false — the basis for victim-path-aware fault
  /// attribution in the benches.
  bool link_hit(net::NodeId a, net::NodeId b) const;

  /// Links whose injected flaps actually bit, as endpoint-normalized
  /// (min, max) pairs in sorted order — deterministic regardless of which
  /// execution thread recorded each hit first. Take a copy for thread
  /// safety; by the time benches read this the run has quiesced anyway.
  std::vector<std::pair<net::NodeId, net::NodeId>> links_hit() const {
    std::lock_guard<std::mutex> lk(mu_);
    return links_hit_;
  }

  /// Precomputed flap schedules (bound specs only), with their hold-downs.
  const std::vector<FlapSchedule>& flap_schedules() const { return flaps_; }

  /// True when any bound flap spec asks for routing reconvergence.
  bool reconvergence_enabled() const {
    for (const FlapSchedule& f : flaps_) {
      if (f.holddown_ns > 0) return true;
    }
    return false;
  }

  /// A PFC frame with `quanta` left (`from`, `port`). Draws at most one
  /// uniform variate when a spec covers it; loss wins over delay.
  PfcVerdict on_pfc_frame(net::NodeId from, net::PortId port,
                          std::uint32_t quanta, sim::Time now);

  /// PAUSE frames sent by `sw` that the injector ate. Non-zero means an
  /// ingress overflow at `sw` is the expected consequence of injected
  /// signal loss, not a headroom bug — the switch uses this to pick the
  /// drop reason.
  std::uint64_t pause_frames_lost(net::NodeId sw) const;

  /// Injected data-plane ground truth: did any fabric-level fault actually
  /// bite (drop, stall, eaten/delayed PFC frame), and when. Benches score
  /// wrong verdicts against this window instead of calling them silent
  /// misses. -1 until the first fault fires.
  bool dataplane_fault_fired() const {
    return first_dataplane_fault() >= 0;
  }
  sim::Time first_dataplane_fault() const {
    std::lock_guard<std::mutex> lk(mu_);
    return first_dataplane_fault_;
  }
  sim::Time last_dataplane_fault() const {
    std::lock_guard<std::mutex> lk(mu_);
    return last_dataplane_fault_;
  }

  /// Collection faults (drops, blackout losses) observed for this victim's
  /// polling packets — the per-episode "was my telemetry substrate hit"
  /// signal behind degraded-mode verdicts.
  std::uint32_t faults_for(const net::FiveTuple& victim) const;

  std::uint64_t polls_dropped() const { return read(polls_dropped_); }
  std::uint64_t polls_duplicated() const { return read(polls_duplicated_); }
  std::uint64_t polls_delayed() const { return read(polls_delayed_); }
  std::uint64_t blackout_drops() const { return read(blackout_drops_); }
  std::uint64_t dma_failed() const { return read(dma_failed_); }
  std::uint64_t dma_stale() const { return read(dma_stale_); }
  std::uint64_t rtt_jittered() const { return read(rtt_jittered_); }
  std::uint64_t link_drops() const { return read(link_drops_); }
  std::uint64_t pfc_pause_lost() const { return read(pfc_pause_lost_); }
  std::uint64_t pfc_resume_lost() const { return read(pfc_resume_lost_); }
  std::uint64_t pfc_frames_delayed() const {
    return read(pfc_frames_delayed_);
  }

 private:
  const PollFaultSpec* poll_spec(net::NodeId sw, sim::Time now) const;
  const DmaFaultSpec* dma_spec(net::NodeId sw, sim::Time now) const;
  void build_flap_schedule();
  const DownWindow* down_window(net::NodeId a, net::NodeId b,
                                sim::Time now) const;
  void note_dataplane_fault_locked(sim::Time now);
  void note_dataplane_fault(sim::Time now);
  void note_link_hit(net::NodeId a, net::NodeId b);
  bool links_hit_sorted_contains(net::NodeId a, net::NodeId b) const;
  void links_hit_insert_sorted(net::NodeId a, net::NodeId b);
  std::uint64_t read(const std::uint64_t& counter) const {
    std::lock_guard<std::mutex> lk(mu_);
    return counter;
  }

  FaultPlan plan_;
  std::vector<FlapSchedule> flaps_;
  /// Guards every mutable accounting field below. Fault hooks can fire
  /// concurrently from a sharded simulator's worker threads; all updates
  /// are commutative (sums, min/max, sorted-set insert) so the totals are
  /// exact regardless of interleaving. The verdict draws themselves are
  /// stateless hashes and take no lock.
  mutable std::mutex mu_;
  std::vector<std::pair<net::NodeId, net::NodeId>> links_hit_;
  std::unordered_map<net::FiveTuple, std::uint32_t> victim_faults_;
  std::unordered_map<net::NodeId, std::uint64_t> pause_lost_by_;
  std::uint64_t polls_dropped_ = 0;
  std::uint64_t polls_duplicated_ = 0;
  std::uint64_t polls_delayed_ = 0;
  std::uint64_t blackout_drops_ = 0;
  std::uint64_t dma_failed_ = 0;
  std::uint64_t dma_stale_ = 0;
  std::uint64_t rtt_jittered_ = 0;
  std::uint64_t link_drops_ = 0;
  std::uint64_t pfc_pause_lost_ = 0;
  std::uint64_t pfc_resume_lost_ = 0;
  std::uint64_t pfc_frames_delayed_ = 0;
  sim::Time first_dataplane_fault_ = -1;
  sim::Time last_dataplane_fault_ = -1;
};

}  // namespace hawkeye::fault
