#pragma once

#include <algorithm>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/packet.hpp"
#include "net/types.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace hawkeye::fault {

/// Deterministic fault-injection substrate for the collection pipeline.
///
/// Hawkeye's own telemetry path is best-effort by design: polling packets
/// ride a droppable class, switch CPUs can be too overloaded to finish a
/// DMA snapshot, and per-switch agents crash and restart. Collie (NSDI'22)
/// showed the diagnostic stack itself is a major anomaly source; this
/// module lets the evaluation inject exactly those failures while keeping
/// runs reproducible — every probabilistic decision is a stateless
/// counter-hash of (plan seed, fault site, the event's stable attributes,
/// simulated time). No draw depends on how many draws happened before it,
/// so a fixed FaultPlan yields the same fault trace regardless of event
/// *execution* order: sweeps stay deterministic under eval::run_sweep's
/// thread pool AND a sharded simulator's parallel rounds produce the same
/// verdicts as the single-calendar run. Accounting is mutex-guarded and
/// commutative (sums, min/max, sorted sets), so the recorded totals are
/// exact under concurrency as well.
///
/// All hooks are reached through a nullable FaultInjector pointer on the
/// device/collect objects: with no injector installed the fault paths cost
/// one branch and draw no randomness, so fault-free runs are byte-identical
/// to a build without this module.

/// Faults on polling packets (and their PFC-causality clones) arriving at
/// a switch. Probabilities are per polling-packet arrival; at most one
/// action fires per arrival (drop wins over duplicate over delay).
struct PollFaultSpec {
  /// Target switch; net::kInvalidNode means every switch.
  net::NodeId sw = net::kInvalidNode;
  double drop_prob = 0;
  double duplicate_prob = 0;
  double delay_prob = 0;
  /// Extra latency applied when the delay fault fires.
  sim::Time delay_ns = sim::us(100);
  /// Active window [start, stop); stop < 0 means until the end of the run.
  sim::Time start = 0;
  sim::Time stop = -1;
};

/// Faults on the controller-assisted register snapshot (switch-CPU DMA,
/// paper §3.4). `fail` models an overloaded CPU never completing the read;
/// `stale` models the read completing late — by then the epoch ring has
/// been partially recycled, which the Collector detects via epoch IDs and
/// rejects (ring-overwrite guard).
struct DmaFaultSpec {
  net::NodeId sw = net::kInvalidNode;  // kInvalidNode => every switch
  double fail_prob = 0;
  double stale_prob = 0;
  /// Extra snapshot latency when the stale fault fires.
  sim::Time extra_delay = sim::ms(1);
  sim::Time start = 0;
  sim::Time stop = -1;
};

/// A HawkeyeSwitchAgent outage (agent crash/restart): during [start, stop)
/// the switch behaves like a non-Hawkeye switch and drops polling packets.
/// kInvalidNode blacks out every agent; stop < 0 means until the end of the
/// run — the same window sentinel as every other spec (a default-constructed
/// blackout is therefore permanently active, not silently inert).
struct AgentBlackout {
  net::NodeId sw = net::kInvalidNode;
  sim::Time start = 0;
  sim::Time stop = -1;
};

/// A physical link flapping: the link is dead during one or more down
/// windows inside [start, stop). In-flight packets on the link are dropped,
/// the transmitters on both ends stall, and routing keeps forwarding into
/// the dead port — no reconvergence, because the resulting black hole /
/// backpressure IS the anomaly Hawkeye should diagnose (Collie NSDI'22).
///
/// `period_ns == 0` gives a single outage of `down_ns` at `start`. With a
/// period, the link goes down once per period for `down_ns`; `jitter > 0`
/// shifts each outage by a seeded-uniform offset within its period (a
/// random flap train). The whole schedule is precomputed at injector
/// construction from the plan seed, so runtime queries are pure and the
/// event-ordered fault stream is untouched.
///
/// Leaving both endpoints at kInvalidNode marks the spec as a placeholder:
/// the evaluation runner binds it to a link on the crafted victim's path
/// once the scenario (and hence the victim route) is known.
struct LinkFlapSpec {
  net::NodeId node_a = net::kInvalidNode;
  net::NodeId node_b = net::kInvalidNode;
  sim::Time start = 0;
  sim::Time stop = -1;     // < 0 => flap train runs to the end of the run
  sim::Time down_ns = sim::us(100);
  sim::Time period_ns = 0; // 0 => single outage at `start`
  double jitter = 0;       // fraction of the idle gap randomized, [0, 1]

  /// Routing reconvergence hold-down (PR 4). 0 keeps routing frozen — the
  /// pre-reconvergence behaviour, byte-identical to PR 3 runs. A positive
  /// value means: `holddown_ns` after the link goes down, the two endpoint
  /// switches withdraw the dead port from their ECMP candidate sets
  /// (net::Routing::disable_port); outages shorter than the hold-down never
  /// reconverge, exactly like a real hold-down/dampening timer.
  sim::Time holddown_ns = 0;
  /// Hold-down before the port is restored after link-up; < 0 (default)
  /// means "same as holddown_ns". Ignored while holddown_ns == 0.
  sim::Time restore_holddown_ns = -1;

  bool reconverges() const { return holddown_ns > 0; }
  sim::Time restore_holddown() const {
    return restore_holddown_ns < 0 ? holddown_ns : restore_holddown_ns;
  }
};

/// Per-port probabilistic loss/delay of PFC pause/resume frames on the
/// wire (Mittal et al., SIGCOMM'18: corrupted pause signaling). A lost
/// RESUME leaves the paused peer frozen until its pause quanta age out; a
/// lost PAUSE lets the upstream keep transmitting into a full ingress,
/// whose overflow drops are accounted under DropReason::kPfcLoss so
/// losslessness assertions can tell injected signal loss from model bugs.
struct PfcFrameFaultSpec {
  /// Device that SENT the frame; kInvalidNode matches every sender.
  net::NodeId sw = net::kInvalidNode;
  /// Port the frame left from; kInvalidPort matches every port.
  net::PortId port = net::kInvalidPort;
  double loss_prob = 0;
  double delay_prob = 0;
  sim::Time delay_ns = sim::us(20);
  bool affect_pause = true;   // quanta > 0 frames
  bool affect_resume = true;  // quanta == 0 frames
  sim::Time start = 0;
  sim::Time stop = -1;
};

/// Noise on the RTT samples feeding the DetectionAgent (flaky host timer /
/// congested PCIe — the detector's own sensor misbehaving). Each sample is
/// inflated with probability `prob` by a factor in [1, 1 + magnitude].
struct RttJitterSpec {
  double prob = 0;
  double magnitude = 0;
};

/// Fleet-ops fault class 1 — a degraded cable (net_sanitizer's "bad cable"):
/// a raw bit-error rate on one link. Every frame crossing the link draws a
/// seeded per-packet corruption verdict with probability
/// min(1, ber * frame_bits); a corrupted frame fails its FCS check at the
/// receiving MAC and is dropped (DropReason::kCrc), which the sender's
/// go-back-N recovery then repairs with retransmits — so congestion
/// provenance appears on the path *without* a matching incast fan-in, the
/// Table-2 signature row for this class. The per-link CRC counters the
/// injector keeps are the modeled MAC FCS error registers an operator's
/// fleet-health pipeline would export.
///
/// Leaving both endpoints at kInvalidNode marks a placeholder the runner
/// binds to a link on the crafted victim's path (same contract as
/// LinkFlapSpec).
struct DegradedLinkSpec {
  net::NodeId node_a = net::kInvalidNode;
  net::NodeId node_b = net::kInvalidNode;
  /// Raw bit-error rate; a 1000 B MTU frame is corrupted with probability
  /// min(1, ber * 8000). RDMA fabrics alarm around 1e-12; injectable rates
  /// here are orders of magnitude higher so a ms-scale run shows the
  /// signature.
  double ber = 0;
  sim::Time start = 0;
  sim::Time stop = -1;
};

/// Fleet-ops fault class 2 — link-speed mismatch: one link negotiated at a
/// lower rate than the fabric's nominal speed (a 25G optic in a 100G
/// fabric). Serialization on the link runs at `gbps` while routing, the
/// detector's RTT baselines and every capacity assumption still use the
/// nominal topology speed — exactly the misconfiguration semantics: the
/// fabric *thinks* the link is fast. The resulting persistent single-port
/// serialization bottleneck (stable across episodes, no CRC errors, no
/// incast fan-in) is this class's Table-2 signature.
///
/// Both endpoints kInvalidNode = placeholder bound by the runner.
struct LinkSpeedMismatchSpec {
  net::NodeId node_a = net::kInvalidNode;
  net::NodeId node_b = net::kInvalidNode;
  double gbps = 25.0;  // negotiated (actual) speed, below nominal
  sim::Time start = 0;
  sim::Time stop = -1;
};

/// Fleet-ops fault class 3 — host-side PCIe bottleneck: the receiving NIC
/// can only DMA toward host memory at `drain_gbps`. Arriving data queues in
/// a drain FIFO and the ACK leaves only when the DMA completes, so senders
/// see RTT inflate with the backlog while *no* switch pauses and no queue
/// builds in the fabric — the host looks like a pure victim with no paused
/// upstream, this class's Table-2 signature. Entirely deterministic (a rate
/// cap, no randomness).
struct HostPcieBottleneckSpec {
  net::NodeId host = net::kInvalidNode;  // kInvalidNode => every host
  double drain_gbps = 8.0;               // well under a 100G line rate
  sim::Time start = 0;
  sim::Time stop = -1;
};

/// Fleet-ops fault class 4 — oversubscribed down-links: the down-links of
/// `sw` (an aggregation or edge switch; kInvalidNode = every aggregation
/// switch) run at `factor` of their nominal capacity. Unlike a single
/// speed-mismatched port, a whole tier of sibling down-links is reduced, so
/// fan-in traffic shows *sustained multi-flow contention on down-links* —
/// the Table-2 signature separating oversubscription from a lone bad optic.
/// The testbed expands this topology-level spec into per-link rate
/// overrides once it knows the fabric's tier structure.
struct OversubscribedDownlinkSpec {
  net::NodeId sw = net::kInvalidNode;
  double factor = 0.5;  // fraction of nominal capacity, in (0, 1)
  sim::Time start = 0;
  sim::Time stop = -1;
};

struct FaultPlan {
  std::uint64_t seed = 1;
  std::vector<PollFaultSpec> poll_faults;
  std::vector<DmaFaultSpec> dma_faults;
  std::vector<AgentBlackout> blackouts;
  std::vector<LinkFlapSpec> link_flaps;
  std::vector<PfcFrameFaultSpec> pfc_faults;
  RttJitterSpec rtt_jitter;
  // Fleet-ops fault classes (net_sanitizer's field pathologies).
  std::vector<DegradedLinkSpec> degraded_links;
  std::vector<LinkSpeedMismatchSpec> speed_mismatches;
  std::vector<HostPcieBottleneckSpec> pcie_bottlenecks;
  std::vector<OversubscribedDownlinkSpec> oversub_downlinks;

  bool enabled() const {
    return !poll_faults.empty() || !dma_faults.empty() ||
           !blackouts.empty() || !link_flaps.empty() ||
           !pfc_faults.empty() || rtt_jitter.prob > 0 || fleet_enabled();
  }

  /// True if the plan reaches below the telemetry layer into the fabric
  /// (link flaps / PFC frame faults / fleet-ops classes) — the data-plane
  /// robustness axes.
  bool dataplane_enabled() const {
    return !link_flaps.empty() || !pfc_faults.empty() || fleet_enabled();
  }

  /// True if any fleet-ops fault class (degraded link, speed mismatch,
  /// PCIe bottleneck, oversubscription) is configured.
  bool fleet_enabled() const {
    return !degraded_links.empty() || !speed_mismatches.empty() ||
           !pcie_bottlenecks.empty() || !oversub_downlinks.empty();
  }

  /// Structural sanity check: empty string when the plan is installable,
  /// otherwise a description of the first problem (inverted/empty window,
  /// out-of-range probability, half-bound flap endpoints...). Testbed
  /// installation rejects invalid plans so a window typo fails loudly
  /// instead of silently never firing.
  std::string validate() const;

  /// Convenience: uniform polling-packet loss at every switch (the
  /// robustness sweep's primary axis).
  static FaultPlan uniform_poll_loss(double drop_prob, std::uint64_t seed);

  /// Convenience: uniform PFC pause/resume loss on every port (the
  /// data-plane robustness sweep's primary axis).
  static FaultPlan uniform_pfc_loss(double loss_prob, std::uint64_t seed);
};

enum class PollAction : std::uint8_t { kDeliver, kDrop, kDuplicate, kDelay };

struct PollVerdict {
  PollAction action = PollAction::kDeliver;
  sim::Time delay_ns = 0;
};

struct DmaVerdict {
  bool failed = false;
  sim::Time extra_delay = 0;
};

struct PfcVerdict {
  bool dropped = false;
  sim::Time extra_delay = 0;
};

class FaultInjector {
 public:
  struct DownWindow {
    sim::Time t0 = 0;
    sim::Time t1 = 0;
  };
  /// The precomputed outage windows of one bound LinkFlapSpec, plus the
  /// spec's reconvergence hold-downs — everything the reconvergence driver
  /// (device::Network::schedule_reconvergence) needs to arm its routing
  /// withdraw/restore events up front.
  struct FlapSchedule {
    net::NodeId a = net::kInvalidNode;
    net::NodeId b = net::kInvalidNode;
    std::vector<DownWindow> windows;  // sorted, non-overlapping
    sim::Time holddown_ns = 0;        // 0 => routing stays frozen
    sim::Time restore_holddown_ns = 0;
  };

  explicit FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {
    build_flap_schedule();
    build_rate_overrides();
  }

  const FaultPlan& plan() const { return plan_; }

  /// A polling packet for `victim` arrived at switch `sw`. Draws at most
  /// one uniform variate when a spec covers (sw, now).
  PollVerdict on_polling(net::NodeId sw, const net::FiveTuple& victim,
                         sim::Time now);

  /// Is the switch's Hawkeye agent blacked out at `now`? (No randomness.)
  bool agent_down(net::NodeId sw, sim::Time now) const;

  /// Record a polling packet lost to a blackout (per-victim accounting).
  void note_blackout_drop(const net::FiveTuple& victim);

  /// The switch CPU was asked for a register snapshot at `now`.
  DmaVerdict on_dma(net::NodeId sw, sim::Time now);

  /// Pass an RTT sample through the jitter model (identity when disabled).
  /// The flow and the sample time key the draw, so jitter on one sample is
  /// independent of every other sample yet reproducible run-to-run.
  sim::Time jitter_rtt(sim::Time rtt, const net::FiveTuple& flow,
                       sim::Time now);

  /// Any link-flap windows scheduled? Lets the switch transmit path skip
  /// the peer lookup entirely when only collection faults are configured.
  bool has_link_faults() const { return !flaps_.empty(); }

  /// Is the (a, b) link dead at `now`? Endpoint order is irrelevant; pure
  /// (no randomness — the schedule was fixed at construction).
  bool link_down(net::NodeId a, net::NodeId b, sim::Time now) const;

  /// End of the down window covering `now` on link (a, b); `now` if the
  /// link is up. Switches use it to arm their transmitter wake-up.
  sim::Time link_down_until(net::NodeId a, net::NodeId b,
                            sim::Time now) const;

  /// A packet died on the dead (a, b) link (send- or arrival-edge).
  /// Polling packets count toward the victim's collection-fault tally like
  /// any other substrate hit; every loss stamps the data-plane fault epoch
  /// and marks the link as having actually bitten (link_hit).
  void note_link_drop(net::NodeId a, net::NodeId b, const net::Packet& pkt,
                      sim::Time now);

  /// A transmitter found its egress link (a, b) dead and stalled (once per
  /// port per outage) — impact truth even when nothing was in flight to
  /// drop.
  void note_link_stall(net::NodeId a, net::NodeId b, sim::Time now) {
    note_link_hit(a, b);
    note_dataplane_fault(now);
  }

  /// Did the (a, b) flap ever actually bite (drop or stall) during the
  /// run? Endpoint order is irrelevant. A schedule that never intersected
  /// live traffic returns false — the basis for victim-path-aware fault
  /// attribution in the benches.
  bool link_hit(net::NodeId a, net::NodeId b) const;

  /// Links whose injected flaps actually bit, as endpoint-normalized
  /// (min, max) pairs in sorted order — deterministic regardless of which
  /// execution thread recorded each hit first. Take a copy for thread
  /// safety; by the time benches read this the run has quiesced anyway.
  std::vector<std::pair<net::NodeId, net::NodeId>> links_hit() const {
    std::lock_guard<std::mutex> lk(mu_);
    return links_hit_;
  }

  /// Precomputed flap schedules (bound specs only), with their hold-downs.
  const std::vector<FlapSchedule>& flap_schedules() const { return flaps_; }

  /// True when any bound flap spec asks for routing reconvergence.
  bool reconvergence_enabled() const {
    for (const FlapSchedule& f : flaps_) {
      if (f.holddown_ns > 0) return true;
    }
    return false;
  }

  /// A PFC frame with `quanta` left (`from`, `port`). Draws at most one
  /// uniform variate when a spec covers it; loss wins over delay.
  PfcVerdict on_pfc_frame(net::NodeId from, net::PortId port,
                          std::uint32_t quanta, sim::Time now);

  /// PAUSE frames sent by `sw` that the injector ate. Non-zero means an
  /// ingress overflow at `sw` is the expected consequence of injected
  /// signal loss, not a headroom bug — the switch uses this to pick the
  /// drop reason.
  std::uint64_t pause_frames_lost(net::NodeId sw) const;

  // --- Fleet-ops fault class 1: degraded link (BER -> CRC drops) ---

  /// Any degraded-link specs bound? Lets the wire path skip the spec scan
  /// entirely in plans without this class.
  bool has_degraded_links() const {
    for (const DegradedLinkSpec& s : plan_.degraded_links) {
      if (s.node_a != net::kInvalidNode && s.node_b != net::kInvalidNode) {
        return true;
      }
    }
    return false;
  }

  /// A frame is crossing the (a, b) wire at `now`. Draws one uniform
  /// variate when a degraded-link spec covers the link; true means the
  /// frame was corrupted and fails its FCS check (caller drops it as
  /// DropReason::kCrc). Accounting (total + per-link MAC CRC counters,
  /// victim tally for polling frames, data-plane fault epoch) happens here.
  bool on_wire_crc(net::NodeId a, net::NodeId b, const net::Packet& pkt,
                   sim::Time now);

  /// Modeled MAC FCS error counter of the (a, b) link (endpoint order
  /// irrelevant) — what an operator's fleet-health pipeline exports.
  std::uint64_t crc_errors(net::NodeId a, net::NodeId b) const;
  std::uint64_t crc_drops() const { return read(crc_drops_); }
  /// Every link with a non-zero CRC counter, endpoint-normalized and
  /// sorted (deterministic under sharded execution).
  std::vector<std::pair<std::pair<net::NodeId, net::NodeId>, std::uint64_t>>
  crc_links() const;

  // --- Fleet-ops classes 2 + 4: per-link rate overrides ---

  /// A resolved "this wire actually runs at `gbps`" entry: either a bound
  /// LinkSpeedMismatchSpec, or one down-link of an expanded
  /// OversubscribedDownlinkSpec (Testbed::install_faults knows the tier
  /// structure and calls bind_rate_override per down-link). Setup-time
  /// only — the vector is immutable once the simulation starts, so
  /// link_gbps() takes no lock.
  struct RateOverride {
    net::NodeId a = net::kInvalidNode;
    net::NodeId b = net::kInvalidNode;
    double gbps = 0;
    sim::Time start = 0;
    sim::Time stop = -1;
    bool oversub = false;  // came from an OversubscribedDownlinkSpec
  };

  /// Register a rate override (setup-time only, before the run starts).
  void bind_rate_override(net::NodeId a, net::NodeId b, double gbps,
                          sim::Time start, sim::Time stop, bool oversub);

  bool has_rate_overrides() const { return !rate_overrides_.empty(); }

  /// Actual serialization rate of the (a, b) wire at `now`; `nominal` when
  /// no override covers it. Pure (no randomness, no lock).
  double link_gbps(net::NodeId a, net::NodeId b, double nominal,
                   sim::Time now) const;

  /// A frame was serialized on (a, b) below the nominal rate — impact
  /// truth plus the "observed slow serializations" evidence counter.
  void note_rate_limited(net::NodeId a, net::NodeId b, sim::Time now);

  std::uint64_t rate_limited_pkts() const { return read(rate_limited_pkts_); }
  std::uint64_t rate_limited_pkts(net::NodeId a, net::NodeId b) const;

  /// The installed overrides (for evidence assembly: nominal vs negotiated
  /// speed per link). Immutable after setup.
  const std::vector<RateOverride>& rate_overrides() const {
    return rate_overrides_;
  }

  // --- Fleet-ops fault class 3: host PCIe drain cap ---

  bool has_host_faults() const { return !plan_.pcie_bottlenecks.empty(); }

  /// Ingress drain cap of `host` at `now`; 0 when uncapped. Pure.
  double host_drain_gbps(net::NodeId host, sim::Time now) const;

  /// An arriving frame at `host` waited `backlog_ns` behind the capped
  /// drain FIFO before its ACK could leave.
  void note_host_drain_delay(net::NodeId host, sim::Time backlog_ns,
                             sim::Time now);

  std::uint64_t host_drain_delayed() const {
    return read(host_drain_delayed_);
  }
  std::uint64_t host_drain_delayed(net::NodeId host) const;
  /// Largest drain-FIFO wait observed at `host` (modeled NIC DMA backlog
  /// high-water counter).
  sim::Time host_drain_max_backlog(net::NodeId host) const;

  /// Injected data-plane ground truth: did any fabric-level fault actually
  /// bite (drop, stall, eaten/delayed PFC frame), and when. Benches score
  /// wrong verdicts against this window instead of calling them silent
  /// misses. -1 until the first fault fires.
  bool dataplane_fault_fired() const {
    return first_dataplane_fault() >= 0;
  }
  sim::Time first_dataplane_fault() const {
    std::lock_guard<std::mutex> lk(mu_);
    return first_dataplane_fault_;
  }
  sim::Time last_dataplane_fault() const {
    std::lock_guard<std::mutex> lk(mu_);
    return last_dataplane_fault_;
  }

  /// Collection faults (drops, blackout losses) observed for this victim's
  /// polling packets — the per-episode "was my telemetry substrate hit"
  /// signal behind degraded-mode verdicts.
  std::uint32_t faults_for(const net::FiveTuple& victim) const;

  std::uint64_t polls_dropped() const { return read(polls_dropped_); }
  std::uint64_t polls_duplicated() const { return read(polls_duplicated_); }
  std::uint64_t polls_delayed() const { return read(polls_delayed_); }
  std::uint64_t blackout_drops() const { return read(blackout_drops_); }
  std::uint64_t dma_failed() const { return read(dma_failed_); }
  std::uint64_t dma_stale() const { return read(dma_stale_); }
  std::uint64_t rtt_jittered() const { return read(rtt_jittered_); }
  std::uint64_t link_drops() const { return read(link_drops_); }
  std::uint64_t pfc_pause_lost() const { return read(pfc_pause_lost_); }
  std::uint64_t pfc_resume_lost() const { return read(pfc_resume_lost_); }
  std::uint64_t pfc_frames_delayed() const {
    return read(pfc_frames_delayed_);
  }

 private:
  const PollFaultSpec* poll_spec(net::NodeId sw, sim::Time now) const;
  const DmaFaultSpec* dma_spec(net::NodeId sw, sim::Time now) const;
  void build_flap_schedule();
  void build_rate_overrides();
  const DownWindow* down_window(net::NodeId a, net::NodeId b,
                                sim::Time now) const;
  void note_dataplane_fault_locked(sim::Time now);
  void note_dataplane_fault(sim::Time now);
  void note_link_hit(net::NodeId a, net::NodeId b);
  bool links_hit_sorted_contains(net::NodeId a, net::NodeId b) const;
  void links_hit_insert_sorted(net::NodeId a, net::NodeId b);
  std::uint64_t read(const std::uint64_t& counter) const {
    std::lock_guard<std::mutex> lk(mu_);
    return counter;
  }

  const DegradedLinkSpec* degraded_spec(net::NodeId a, net::NodeId b,
                                        sim::Time now) const;
  /// Endpoint-normalized 64-bit key for per-link maps.
  static std::uint64_t link_key(net::NodeId a, net::NodeId b) {
    const auto mm = std::minmax(a, b);
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(mm.first))
            << 32) |
           static_cast<std::uint32_t>(mm.second);
  }

  FaultPlan plan_;
  std::vector<FlapSchedule> flaps_;
  std::vector<RateOverride> rate_overrides_;  // immutable once running
  /// Guards every mutable accounting field below. Fault hooks can fire
  /// concurrently from a sharded simulator's worker threads; all updates
  /// are commutative (sums, min/max, sorted-set insert) so the totals are
  /// exact regardless of interleaving. The verdict draws themselves are
  /// stateless hashes and take no lock.
  mutable std::mutex mu_;
  std::vector<std::pair<net::NodeId, net::NodeId>> links_hit_;
  std::unordered_map<net::FiveTuple, std::uint32_t> victim_faults_;
  std::unordered_map<net::NodeId, std::uint64_t> pause_lost_by_;
  std::uint64_t polls_dropped_ = 0;
  std::uint64_t polls_duplicated_ = 0;
  std::uint64_t polls_delayed_ = 0;
  std::uint64_t blackout_drops_ = 0;
  std::uint64_t dma_failed_ = 0;
  std::uint64_t dma_stale_ = 0;
  std::uint64_t rtt_jittered_ = 0;
  std::uint64_t link_drops_ = 0;
  std::uint64_t pfc_pause_lost_ = 0;
  std::uint64_t pfc_resume_lost_ = 0;
  std::uint64_t pfc_frames_delayed_ = 0;
  std::uint64_t crc_drops_ = 0;
  std::uint64_t rate_limited_pkts_ = 0;
  std::uint64_t host_drain_delayed_ = 0;
  std::unordered_map<std::uint64_t, std::uint64_t> crc_by_link_;
  std::unordered_map<std::uint64_t, std::uint64_t> rate_limited_by_link_;
  std::unordered_map<net::NodeId, std::uint64_t> drain_delayed_by_host_;
  std::unordered_map<net::NodeId, sim::Time> drain_backlog_by_host_;
  sim::Time first_dataplane_fault_ = -1;
  sim::Time last_dataplane_fault_ = -1;
};

}  // namespace hawkeye::fault
