#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/types.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace hawkeye::fault {

/// Deterministic fault-injection substrate for the collection pipeline.
///
/// Hawkeye's own telemetry path is best-effort by design: polling packets
/// ride a droppable class, switch CPUs can be too overloaded to finish a
/// DMA snapshot, and per-switch agents crash and restart. Collie (NSDI'22)
/// showed the diagnostic stack itself is a major anomaly source; this
/// module lets the evaluation inject exactly those failures while keeping
/// runs reproducible — every probabilistic decision is drawn from one
/// sim::Rng seeded by the plan, and decisions happen in simulator event
/// order, so a fixed FaultPlan yields the same trace twice and sweeps
/// stay deterministic under eval::run_sweep's thread pool.
///
/// All hooks are reached through a nullable FaultInjector pointer on the
/// device/collect objects: with no injector installed the fault paths cost
/// one branch and draw no randomness, so fault-free runs are byte-identical
/// to a build without this module.

/// Faults on polling packets (and their PFC-causality clones) arriving at
/// a switch. Probabilities are per polling-packet arrival; at most one
/// action fires per arrival (drop wins over duplicate over delay).
struct PollFaultSpec {
  /// Target switch; net::kInvalidNode means every switch.
  net::NodeId sw = net::kInvalidNode;
  double drop_prob = 0;
  double duplicate_prob = 0;
  double delay_prob = 0;
  /// Extra latency applied when the delay fault fires.
  sim::Time delay_ns = sim::us(100);
  /// Active window [start, stop); stop < 0 means until the end of the run.
  sim::Time start = 0;
  sim::Time stop = -1;
};

/// Faults on the controller-assisted register snapshot (switch-CPU DMA,
/// paper §3.4). `fail` models an overloaded CPU never completing the read;
/// `stale` models the read completing late — by then the epoch ring has
/// been partially recycled, which the Collector detects via epoch IDs and
/// rejects (ring-overwrite guard).
struct DmaFaultSpec {
  net::NodeId sw = net::kInvalidNode;  // kInvalidNode => every switch
  double fail_prob = 0;
  double stale_prob = 0;
  /// Extra snapshot latency when the stale fault fires.
  sim::Time extra_delay = sim::ms(1);
  sim::Time start = 0;
  sim::Time stop = -1;
};

/// A HawkeyeSwitchAgent outage (agent crash/restart): during [start, stop)
/// the switch behaves like a non-Hawkeye switch and drops polling packets.
struct AgentBlackout {
  net::NodeId sw = net::kInvalidNode;
  sim::Time start = 0;
  sim::Time stop = 0;
};

/// Noise on the RTT samples feeding the DetectionAgent (flaky host timer /
/// congested PCIe — the detector's own sensor misbehaving). Each sample is
/// inflated with probability `prob` by a factor in [1, 1 + magnitude].
struct RttJitterSpec {
  double prob = 0;
  double magnitude = 0;
};

struct FaultPlan {
  std::uint64_t seed = 1;
  std::vector<PollFaultSpec> poll_faults;
  std::vector<DmaFaultSpec> dma_faults;
  std::vector<AgentBlackout> blackouts;
  RttJitterSpec rtt_jitter;

  bool enabled() const {
    return !poll_faults.empty() || !dma_faults.empty() ||
           !blackouts.empty() || rtt_jitter.prob > 0;
  }

  /// Convenience: uniform polling-packet loss at every switch (the
  /// robustness sweep's primary axis).
  static FaultPlan uniform_poll_loss(double drop_prob, std::uint64_t seed);
};

enum class PollAction : std::uint8_t { kDeliver, kDrop, kDuplicate, kDelay };

struct PollVerdict {
  PollAction action = PollAction::kDeliver;
  sim::Time delay_ns = 0;
};

struct DmaVerdict {
  bool failed = false;
  sim::Time extra_delay = 0;
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan)
      : plan_(std::move(plan)), rng_(plan_.seed) {}

  const FaultPlan& plan() const { return plan_; }

  /// A polling packet for `victim` arrived at switch `sw`. Draws at most
  /// one uniform variate when a spec covers (sw, now).
  PollVerdict on_polling(net::NodeId sw, const net::FiveTuple& victim,
                         sim::Time now);

  /// Is the switch's Hawkeye agent blacked out at `now`? (No randomness.)
  bool agent_down(net::NodeId sw, sim::Time now) const;

  /// Record a polling packet lost to a blackout (per-victim accounting).
  void note_blackout_drop(const net::FiveTuple& victim);

  /// The switch CPU was asked for a register snapshot at `now`.
  DmaVerdict on_dma(net::NodeId sw, sim::Time now);

  /// Pass an RTT sample through the jitter model (identity when disabled).
  sim::Time jitter_rtt(sim::Time rtt);

  /// Collection faults (drops, blackout losses) observed for this victim's
  /// polling packets — the per-episode "was my telemetry substrate hit"
  /// signal behind degraded-mode verdicts.
  std::uint32_t faults_for(const net::FiveTuple& victim) const;

  std::uint64_t polls_dropped() const { return polls_dropped_; }
  std::uint64_t polls_duplicated() const { return polls_duplicated_; }
  std::uint64_t polls_delayed() const { return polls_delayed_; }
  std::uint64_t blackout_drops() const { return blackout_drops_; }
  std::uint64_t dma_failed() const { return dma_failed_; }
  std::uint64_t dma_stale() const { return dma_stale_; }
  std::uint64_t rtt_jittered() const { return rtt_jittered_; }

 private:
  const PollFaultSpec* poll_spec(net::NodeId sw, sim::Time now) const;
  const DmaFaultSpec* dma_spec(net::NodeId sw, sim::Time now) const;

  FaultPlan plan_;
  sim::Rng rng_;
  std::unordered_map<net::FiveTuple, std::uint32_t> victim_faults_;
  std::uint64_t polls_dropped_ = 0;
  std::uint64_t polls_duplicated_ = 0;
  std::uint64_t polls_delayed_ = 0;
  std::uint64_t blackout_drops_ = 0;
  std::uint64_t dma_failed_ = 0;
  std::uint64_t dma_stale_ = 0;
  std::uint64_t rtt_jittered_ = 0;
};

}  // namespace hawkeye::fault
