#include "sim/simulator.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

namespace hawkeye::sim {

thread_local Simulator::ExecCtx* Simulator::tls_ctx_ = nullptr;

/// Persistent worker pool for parallel rounds. Workers block on a round
/// generation counter; the main thread publishes a horizon, wakes them, and
/// waits for the drain count to hit zero. The mutex acquire/release pairs
/// give every round a happens-before edge in both directions, so all
/// per-shard state written by a worker is visible to the barrier (and vice
/// versa) without any other synchronization.
struct Simulator::Pool {
  enum class Task { kDrain, kFlush };
  std::vector<std::thread> threads;
  std::mutex m;
  std::condition_variable cv_work;
  std::condition_variable cv_done;
  std::uint64_t gen = 0;
  int remaining = 0;
  Time cap = 0;
  Task task = Task::kDrain;
  bool quit = false;
};

Simulator::Simulator() = default;

Simulator::~Simulator() {
  if (pool_ != nullptr) {
    {
      std::lock_guard<std::mutex> lk(pool_->m);
      pool_->quit = true;
    }
    pool_->cv_work.notify_all();
    for (std::thread& t : pool_->threads) t.join();
  }
}

void Simulator::configure_shards(int device_shards, Time min_lookahead) {
  assert(shards_.empty() && "configure_shards must be called once");
  assert(calendar_.empty() && executed_ == 0 && next_seq_ == 0 &&
         "configure_shards must precede all scheduling");
  if (device_shards <= 1) return;  // keep the seed single-calendar path
  assert(min_lookahead >= 0);
  lookahead_ = min_lookahead;
  shards_.reserve(static_cast<std::size_t>(device_shards) + 1);
  for (int s = 0; s < device_shards + 1; ++s) {
    shards_.push_back(std::make_unique<Shard>());
    shards_.back()->out.resize(static_cast<std::size_t>(device_shards) + 1);
  }
  setup_shard_ = control_shard();
}

int Simulator::current_shard() const {
  const ExecCtx* c = tls_ctx_;
  if (c != nullptr) return c->shard;
  return sharded() ? setup_shard_ : 0;
}

void Simulator::schedule_at_on(int shard, Time at, Action fn) {
  if (!sharded()) {
    if (at < now_) at = now_;
    calendar_.push(at, next_seq_++, std::move(fn));
    return;
  }
  ExecCtx* c = tls_ctx_;
  if (c == nullptr) {
    // Setup (pre-run, single-threaded): children of the pseudo-root rank 0
    // in call order — the same total order the seed's monotone seq gives.
    if (at < now_) at = now_;
    const int tgt = shard >= 0 ? shard : setup_shard_;
    assert(setup_child_ <= kChildMask && "too many setup-time schedules");
    shards_[static_cast<std::size_t>(tgt)]->cal.push(at, setup_child_++,
                                                     std::move(fn));
    return;
  }
  Shard& cur = *shards_[static_cast<std::size_t>(c->shard)];
  if (at < cur.now) at = cur.now;
  const int tgt = shard >= 0 ? shard : c->shard;
  assert(c->child < c->child_cap && "defer_control closures may schedule at most once");
  assert(c->child <= kChildMask && "per-event child-index overflow");
  if (!c->parallel) {
    // Exclusive context (sequential window, barrier, step): the parent's
    // global rank is already known, so the canonical class-0 key is direct.
    const std::uint64_t seq = (c->parent << kChildBits) | c->child++;
    shards_[static_cast<std::size_t>(tgt)]->cal.push(at, seq, std::move(fn));
    return;
  }
  if (tgt == c->shard && at < c->cap) {
    // Intra-round self-schedule: class-1 key. Only compared against this
    // round's keys on this shard, where local index order == rank order.
    const std::uint64_t seq = kClass1Bit |
                              (static_cast<std::uint64_t>(c->lidx) << kChildBits) |
                              c->child++;
    cur.cal.push(at, seq, std::move(fn));
    return;
  }
  // Cross-shard or post-horizon: defer to the round barrier, which resolves
  // the parent's global rank and pushes the canonical class-0 key.
  cur.out[static_cast<std::size_t>(tgt)].push_back(
      DefSched{at, c->lidx, c->child++, std::move(fn)});
}

void Simulator::defer_control(Action fn) {
  ExecCtx* c = tls_ctx_;
  if (!sharded() || c == nullptr || !c->parallel) {
    fn();  // every exclusive context runs the closure inline
    return;
  }
  shards_[static_cast<std::size_t>(c->shard)]->ctl.push_back(
      DefCtl{c->lidx, c->child++, std::move(fn)});
}

bool Simulator::step() {
  if (sharded()) return step_sharded();
  if (!calendar_.prepare_head()) return false;
  EventCalendar::Event ev = calendar_.pop_head();
  now_ = ev.at;
  ev.fn();
  ++executed_;
  return true;
}

void Simulator::run_until(Time until) {
  if (!sharded()) {
    while (calendar_.prepare_head() && calendar_.head().at <= until) step();
    return;
  }
  run_until_sharded(until);
}

std::size_t Simulator::pending() const {
  if (!sharded()) return calendar_.size();
  std::size_t total = 0;
  for (const auto& sh : shards_) total += sh->cal.size();
  return total;
}

std::vector<std::uint64_t> Simulator::per_shard_executed() const {
  std::vector<std::uint64_t> out;
  out.reserve(shards_.size());
  for (const auto& sh : shards_) out.push_back(sh->executed);
  return out;
}

std::vector<double> Simulator::per_shard_busy() const {
  std::vector<double> out;
  out.reserve(shards_.size());
  for (const auto& sh : shards_) out.push_back(sh->busy);
  return out;
}

std::uint64_t Simulator::executed_events() const {
  if (!sharded()) return executed_;
  std::uint64_t total = 0;
  for (const auto& sh : shards_) total += sh->executed;
  return total;
}

void Simulator::run_until_sharded(Time until) {
  const int n = shard_count();
  for (;;) {
    Time tmin = std::numeric_limits<Time>::max();
    for (int s = 0; s < n; ++s) {
      Shard& sh = *shards_[static_cast<std::size_t>(s)];
      if (sh.cal.prepare_head()) tmin = std::min(tmin, sh.cal.head().at);
    }
    if (tmin == std::numeric_limits<Time>::max() || tmin > until) break;
    // Conservative horizon: every cross-shard schedule issued by an event
    // at t >= tmin lands at >= tmin + lookahead, so events strictly below
    // the horizon are causally closed per shard.
    const Time horizon =
        lookahead_ > 0 ? tmin + lookahead_ : tmin + 1;  // L==0: {tmin} only
    const Time cap = std::min(horizon, until == std::numeric_limits<Time>::max()
                                           ? until
                                           : until + 1);
    Shard& ctl = *shards_[static_cast<std::size_t>(control_shard())];
    Time tctl = std::numeric_limits<Time>::max();
    if (ctl.cal.prepare_head()) tctl = ctl.cal.head().at;
    if (lookahead_ == 0 || tctl == tmin) {
      // A control event sits at the frontier (or there is no lookahead):
      // give it exclusive access, but only for its own timestamp — the rest
      // of the window resumes in parallel on the next iteration. Narrower
      // windows are always conservative-safe.
      const auto t0 = std::chrono::steady_clock::now();
      run_sequential_window(std::min(cap, tmin + 1));
      stats_.sequential_seconds +=
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      ++stats_.sequential_windows;
    } else if (tctl < cap) {
      // Control event inside the window but not at the frontier: run the
      // parallel round up to it, then handle it next iteration.
      run_parallel_round(tctl);
      ++stats_.parallel_rounds;
    } else {
      run_parallel_round(cap);
      ++stats_.parallel_rounds;
    }
  }
}

/// Drain every calendar below `cap` single-threaded, in the global
/// canonical (time, seq) order (all pending keys are class 0 at round
/// boundaries, so plain seq comparison IS the canonical comparison). Ranks
/// are assigned inline and children get direct class-0 keys, so control
/// events may touch any shard's state and schedule anywhere.
void Simulator::run_sequential_window(Time cap) {
  const int n = shard_count();
  ExecCtx ctx;
  ctx.parallel = false;
  tls_ctx_ = &ctx;
  for (;;) {
    int best = -1;
    Time bat = 0;
    std::uint64_t bseq = 0;
    for (int s = 0; s < n; ++s) {
      Shard& sh = *shards_[static_cast<std::size_t>(s)];
      if (!sh.cal.prepare_head()) continue;
      const EventCalendar::Event& h = sh.cal.head();
      if (h.at >= cap) continue;
      if (best < 0 || h.at < bat || (h.at == bat && h.seq < bseq)) {
        best = s;
        bat = h.at;
        bseq = h.seq;
      }
    }
    if (best < 0) break;
    Shard& sh = *shards_[static_cast<std::size_t>(best)];
    EventCalendar::Event ev = sh.cal.pop_head();
    sh.now = ev.at;
    if (ev.at > now_) now_ = ev.at;
    ctx.shard = best;
    ctx.parent = next_rank_++;
    ctx.child = 0;
    ev.fn();
    ++sh.executed;
    ++stats_.sequential_events;
  }
  tls_ctx_ = nullptr;
  run_round_hooks();
}

bool Simulator::step_sharded() {
  const int n = shard_count();
  int best = -1;
  Time bat = 0;
  std::uint64_t bseq = 0;
  for (int s = 0; s < n; ++s) {
    Shard& sh = *shards_[static_cast<std::size_t>(s)];
    if (!sh.cal.prepare_head()) continue;
    const EventCalendar::Event& h = sh.cal.head();
    if (best < 0 || h.at < bat || (h.at == bat && h.seq < bseq)) {
      best = s;
      bat = h.at;
      bseq = h.seq;
    }
  }
  if (best < 0) return false;
  Shard& sh = *shards_[static_cast<std::size_t>(best)];
  EventCalendar::Event ev = sh.cal.pop_head();
  sh.now = ev.at;
  if (ev.at > now_) now_ = ev.at;
  ExecCtx ctx;
  ctx.parallel = false;
  ctx.shard = best;
  ctx.parent = next_rank_++;
  tls_ctx_ = &ctx;
  ev.fn();
  tls_ctx_ = nullptr;
  ++sh.executed;
  run_round_hooks();
  return true;
}

void Simulator::ensure_pool() {
  if (pool_ != nullptr) return;
  pool_ = std::make_unique<Pool>();
  const int workers = device_count();
  pool_->threads.reserve(static_cast<std::size_t>(workers));
  for (int s = 0; s < workers; ++s) {
    pool_->threads.emplace_back([this, s] {
      std::uint64_t seen = 0;
      for (;;) {
        Time cap;
        Pool::Task task;
        {
          std::unique_lock<std::mutex> lk(pool_->m);
          pool_->cv_work.wait(
              lk, [&] { return pool_->quit || pool_->gen != seen; });
          if (pool_->quit) return;
          seen = pool_->gen;
          cap = pool_->cap;
          task = pool_->task;
        }
        if (task == Pool::Task::kDrain) {
          drain_shard(s, cap);
        } else {
          flush_target(s);
        }
        {
          std::lock_guard<std::mutex> lk(pool_->m);
          if (--pool_->remaining == 0) pool_->cv_done.notify_one();
        }
      }
    });
  }
}

void Simulator::run_parallel_round(Time cap) {
  ensure_pool();
  const int workers = device_count();
  for (int s = 0; s < workers; ++s)
    shards_[static_cast<std::size_t>(s)]->round_busy = 0;
  const auto t0 = std::chrono::steady_clock::now();
  {
    std::unique_lock<std::mutex> lk(pool_->m);
    pool_->cap = cap;
    pool_->task = Pool::Task::kDrain;
    pool_->remaining = workers;
    ++pool_->gen;
    pool_->cv_work.notify_all();
    pool_->cv_done.wait(lk, [&] { return pool_->remaining == 0; });
  }
  double mx = 0;
  for (int s = 0; s < workers; ++s)
    mx = std::max(mx, shards_[static_cast<std::size_t>(s)]->round_busy);
  stats_.round_max_seconds += mx;
  const auto t1 = std::chrono::steady_clock::now();
  round_barrier();
  const auto t2 = std::chrono::steady_clock::now();
  stats_.drain_seconds += std::chrono::duration<double>(t1 - t0).count();
  stats_.barrier_seconds += std::chrono::duration<double>(t2 - t1).count();
}

/// Worker body: drain the shard's own calendar below the horizon, recording
/// each executed event's canonical parentage for the barrier merge.
void Simulator::drain_shard(int s, Time cap) {
  Shard& sh = *shards_[static_cast<std::size_t>(s)];
  const auto t0 = std::chrono::steady_clock::now();
  ExecCtx ctx;
  ctx.shard = s;
  ctx.parallel = true;
  ctx.cap = cap;
  tls_ctx_ = &ctx;
  while (sh.cal.prepare_head() && sh.cal.head().at < cap) {
    EventCalendar::Event ev = sh.cal.pop_head();
    sh.now = ev.at;
    ctx.lidx = static_cast<std::uint32_t>(sh.recs.size());
    ctx.child = 0;
    const bool cls1 = (ev.seq & kClass1Bit) != 0;
    sh.recs.push_back(Rec{ev.at, (ev.seq >> kChildBits) & kParentMask,
                          static_cast<std::uint32_t>(ev.seq & kChildMask),
                          cls1});
    ev.fn();
    ++sh.executed;
  }
  sh.round_busy =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  sh.busy += sh.round_busy;
  tls_ctx_ = nullptr;
}

/// Flush every shard's outbox bucket for calendar `t` into `t`'s calendar,
/// resolving each deferred schedule's parent rank to its canonical class-0
/// key. Runs on the worker owning `t` (main thread for the control shard):
/// the destination calendar is touched by exactly one thread, the source
/// rank_of/outbox vectors are read-only by then, and every key is globally
/// unique so insertion order cannot affect pop order.
void Simulator::flush_target(int t) {
  Shard& dst = *shards_[static_cast<std::size_t>(t)];
  const int n = shard_count();
  for (int s = 0; s < n; ++s) {
    Shard& src = *shards_[static_cast<std::size_t>(s)];
    std::vector<DefSched>& box = src.out[static_cast<std::size_t>(t)];
    for (DefSched& d : box) {
      const std::uint64_t rank = src.rank_of[d.lidx];
      assert(rank <= kParentMask && "global rank overflow");
      dst.cal.push(d.at, (rank << kChildBits) | d.child, std::move(d.fn));
    }
    box.clear();
  }
}

/// Round barrier (main thread coordinates, workers quiescent or flushing):
///  1. k-way merge of the per-shard executed-record streams under the
///     canonical (time, parent rank, child index) order, assigning global
///     ranks in merge order. A class-1 record's parent rank is always
///     resolved before the record surfaces, because the parent precedes it
///     in the same shard's stream. The merge walks a cursor min-heap —
///     each stream head's key is resolved once, when it enters the heap.
///  2. deferred control closures, in canonical parent order;
///  3. deferred schedules: resolve parent ranks, push class-0 keys into the
///     target calendars (the deterministic mailbox merge — calendar keys,
///     not arrival order, define the final ordering). Parallel: each worker
///     flushes the buckets destined for its own calendar.
///  4. round hooks, staging reset.
void Simulator::round_barrier() {
  const auto barrier_t0 = std::chrono::steady_clock::now();
  const int n = shard_count();
  // 1. Canonical rank merge. Cursor = one shard stream's next record with
  // its parent rank pre-resolved; min-heap ordered by (at, parent, child).
  struct Cur {
    Time at;
    std::uint64_t par;
    std::uint32_t child;
    int s;
  };
  const auto cur_later = [](const Cur& a, const Cur& b) {
    if (a.at != b.at) return a.at > b.at;
    if (a.par != b.par) return a.par > b.par;
    return a.child > b.child;
  };
  std::vector<Cur> heap;
  heap.reserve(static_cast<std::size_t>(n));
  std::vector<std::size_t> idx(static_cast<std::size_t>(n), 0);
  const auto load = [&](int s) {
    Shard& sh = *shards_[static_cast<std::size_t>(s)];
    const std::size_t i = idx[static_cast<std::size_t>(s)];
    if (i >= sh.recs.size()) return;
    const Rec& r = sh.recs[i];
    const std::uint64_t p =
        r.cls1 ? sh.rank_of[static_cast<std::size_t>(r.parent)] : r.parent;
    heap.push_back(Cur{r.at, p, r.child, s});
    std::push_heap(heap.begin(), heap.end(), cur_later);
  };
  for (int s = 0; s < n; ++s) load(s);
  Time last_at = now_;
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), cur_later);
    Cur cur = heap.back();
    heap.pop_back();
    // Run fast path: keep draining the winning stream while its next record
    // still precedes every other stream's head (bursts cluster per shard,
    // so runs are common) — no heap traffic until the stream loses.
    for (;;) {
      Shard& sh = *shards_[static_cast<std::size_t>(cur.s)];
      sh.rank_of.push_back(next_rank_++);
      const std::size_t i = ++idx[static_cast<std::size_t>(cur.s)];
      ++stats_.merged_records;
      if (cur.at > last_at) last_at = cur.at;
      if (i >= sh.recs.size()) break;
      const Rec& r = sh.recs[i];
      const Cur nxt{r.at,
                    r.cls1 ? sh.rank_of[static_cast<std::size_t>(r.parent)]
                           : r.parent,
                    r.child, cur.s};
      if (heap.empty() || cur_later(heap.front(), nxt)) {
        cur = nxt;
        continue;
      }
      heap.push_back(nxt);
      std::push_heap(heap.begin(), heap.end(), cur_later);
      break;
    }
  }
  now_ = last_at;
  // 2. Deferred control closures, ordered by (parent rank, reserved child).
  struct CtlRef {
    std::uint64_t rank;
    std::uint32_t child;
    int shard;
    std::size_t i;
  };
  std::vector<CtlRef> ctls;
  for (int s = 0; s < n; ++s) {
    Shard& sh = *shards_[static_cast<std::size_t>(s)];
    for (std::size_t i = 0; i < sh.ctl.size(); ++i) {
      ctls.push_back(CtlRef{sh.rank_of[sh.ctl[i].lidx], sh.ctl[i].child, s, i});
    }
  }
  std::sort(ctls.begin(), ctls.end(), [](const CtlRef& a, const CtlRef& b) {
    return a.rank != b.rank ? a.rank < b.rank : a.child < b.child;
  });
  for (const CtlRef& ref : ctls) {
    Shard& sh = *shards_[static_cast<std::size_t>(ref.shard)];
    DefCtl& d = sh.ctl[ref.i];
    ExecCtx ctx;
    ctx.parallel = false;
    ctx.shard = ref.shard;
    ctx.parent = ref.rank;
    ctx.child = d.child;
    ctx.child_cap = d.child + 1;  // at most one schedule, on the reserved key
    tls_ctx_ = &ctx;
    d.fn();
    tls_ctx_ = nullptr;
  }
  // 3. Mailbox flush. Worker t pushes every bucket destined for calendar t
  // into its own calendar; the main thread takes the control calendar.
  bool any_out = false;
  for (int s = 0; s < n; ++s) {
    Shard& sh = *shards_[static_cast<std::size_t>(s)];
    stats_.deferred_controls += sh.ctl.size();
    for (const auto& box : sh.out) {
      stats_.deferred_schedules += box.size();
      if (!box.empty()) any_out = true;
    }
  }
  stats_.merge_seconds +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    barrier_t0)
          .count();
  const auto flush_t0 = std::chrono::steady_clock::now();
  if (any_out) {
    std::unique_lock<std::mutex> lk(pool_->m);
    pool_->task = Pool::Task::kFlush;
    pool_->remaining = device_count();
    ++pool_->gen;
    pool_->cv_work.notify_all();
    lk.unlock();
    flush_target(control_shard());
    lk.lock();
    pool_->cv_done.wait(lk, [&] { return pool_->remaining == 0; });
  }
  stats_.flush_seconds +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    flush_t0)
          .count();
  for (int s = 0; s < n; ++s) {
    Shard& sh = *shards_[static_cast<std::size_t>(s)];
    sh.recs.clear();
    sh.ctl.clear();
    sh.rank_of.clear();
  }
  run_round_hooks();
}

void Simulator::run_round_hooks() {
  for (const std::function<void()>& h : round_hooks_) h();
}

}  // namespace hawkeye::sim
