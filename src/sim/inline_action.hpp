#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace hawkeye::sim {

/// Move-only type-erased callback with a small-buffer optimization sized
/// for the simulator's hot-path closures.
///
/// Contract:
///  - Captures up to kInlineBytes (40) that are nothrow-move-constructible
///    and at most pointer-aligned live inside the action itself:
///    scheduling one performs no heap allocation. 40 is deliberate: with
///    the 8-byte ops pointer the action is 48 bytes, so a calendar Event
///    (8-byte time + 8-byte seq + action) is exactly one 64-byte cache
///    line — bucket drains touch the minimum number of lines per event.
///  - Larger (or over-aligned, or throwing-move) callables still work but
///    fall back to a single heap allocation, exactly like std::function.
///    `is_inline()` exposes which path was taken so tests and benches can
///    assert the hot closures stay inline.
///  - Unlike std::function, the callable is never copied (InlineAction is
///    move-only and accepts move-only callables such as lambdas capturing
///    a std::unique_ptr).
///
/// Every scheduling call site in src/device and src/collect is audited to
/// capture at most a handful of pointers/ints so it fits the buffer; see
/// the static_asserts next to those lambdas and DESIGN.md §"Simulator core".
class InlineAction {
 public:
  static constexpr std::size_t kInlineBytes = 40;

  InlineAction() = default;

  template <typename F,
            typename Fn = std::remove_cvref_t<F>,
            typename = std::enable_if_t<!std::is_same_v<Fn, InlineAction> &&
                                        std::is_invocable_r_v<void, Fn&>>>
  InlineAction(F&& f) {  // NOLINT(google-explicit-constructor)
    if constexpr (fits_inline<Fn>()) {
      if constexpr (std::is_trivially_copyable_v<Fn> &&
                    sizeof(Fn) < kInlineBytes) {
        // Trivial payloads relocate via a fixed kInlineBytes memcpy; zero
        // the tail once here so those copies never read indeterminate
        // bytes. Paid once per schedule, not per move.
        std::memset(buf_ + sizeof(Fn), 0, kInlineBytes - sizeof(Fn));
      }
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &kOps<Fn, /*Inline=*/true>;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &kOps<Fn, /*Inline=*/false>;
    }
  }

  InlineAction(InlineAction&& o) noexcept { steal(o); }
  InlineAction& operator=(InlineAction&& o) noexcept {
    if (this != &o) {
      reset();
      steal(o);
    }
    return *this;
  }
  InlineAction(const InlineAction&) = delete;
  InlineAction& operator=(const InlineAction&) = delete;
  ~InlineAction() { reset(); }

  void operator()() { ops_->call(buf_); }

  explicit operator bool() const { return ops_ != nullptr; }

  /// True when the callable lives in the inline buffer (or the action is
  /// empty); false means the heap fallback was taken.
  bool is_inline() const { return ops_ == nullptr || ops_->inline_storage; }

  /// Whether a callable of type Fn qualifies for inline storage.
  template <typename Fn>
  static constexpr bool fits_inline() {
    return sizeof(Fn) <= kInlineBytes && alignof(Fn) <= alignof(void*) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

 private:
  struct Ops {
    void (*call)(void*);
    /// Move-construct the payload into dst and end src's lifetime. The
    /// source action's ops_ is nulled by the caller, so destroy() is never
    /// invoked on a relocated-from buffer.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void*) noexcept;
    bool inline_storage;
    /// Trivially-copyable inline payload: relocation is a fixed-size
    /// memcpy and destruction is a no-op, so moves skip the indirect
    /// call entirely. True for every pointer/int-capturing closure the
    /// simulator schedules — the event-queue hot path.
    bool trivial;
  };

  template <typename Fn, bool Inline>
  struct OpsImpl {
    static Fn* payload(void* p) {
      if constexpr (Inline) {
        return std::launder(reinterpret_cast<Fn*>(p));
      } else {
        return *std::launder(reinterpret_cast<Fn**>(p));
      }
    }
    static void call(void* p) { (*payload(p))(); }
    static void relocate(void* dst, void* src) noexcept {
      if constexpr (Inline) {
        Fn* s = payload(src);
        ::new (dst) Fn(std::move(*s));
        s->~Fn();
      } else {
        // Only the owning pointer moves; the heap payload stays put.
        std::memcpy(dst, src, sizeof(Fn*));
      }
    }
    static void destroy(void* p) noexcept {
      if constexpr (Inline) {
        payload(p)->~Fn();
      } else {
        delete payload(p);
      }
    }
  };

  template <typename Fn, bool Inline>
  static constexpr Ops kOps{&OpsImpl<Fn, Inline>::call,
                            &OpsImpl<Fn, Inline>::relocate,
                            &OpsImpl<Fn, Inline>::destroy, Inline,
                            Inline && std::is_trivially_copyable_v<Fn>};

  void steal(InlineAction& o) noexcept {
    ops_ = o.ops_;
    if (ops_ != nullptr) {
      if (ops_->trivial) {
        // Copying the whole buffer (rather than sizeof(Fn), unknown here)
        // keeps this a branchless fixed-size copy the compiler inlines.
        std::memcpy(buf_, o.buf_, kInlineBytes);
      } else {
        ops_->relocate(buf_, o.buf_);
      }
    }
    o.ops_ = nullptr;
  }
  void reset() noexcept {
    if (ops_ != nullptr) {
      if (!ops_->trivial) ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  const Ops* ops_ = nullptr;
  alignas(void*) std::byte buf_[kInlineBytes];
};

}  // namespace hawkeye::sim
