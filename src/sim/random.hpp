#pragma once

#include <cstdint>
#include <random>

namespace hawkeye::sim {

/// Deterministic random source for workload generation and scenario
/// crafting. Every experiment seeds its own instance so traces are
/// reproducible run-to-run (the paper crafts 100 traces per scenario; we
/// do the same with seeds 0..99).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Uniform real in [lo, hi).
  double uniform_real(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Exponential inter-arrival with the given mean (for Poisson arrivals).
  double exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  /// Bernoulli draw.
  bool chance(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace hawkeye::sim
