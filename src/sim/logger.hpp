#pragma once

#include <cstdio>
#include <string>
#include <utility>

namespace hawkeye::sim {

/// Minimal leveled logger. Simulation runs are silent by default; examples
/// and benches raise the level for narration. Not thread-safe by design —
/// the simulator is single-threaded.
enum class LogLevel { kSilent = 0, kInfo = 1, kDebug = 2 };

class Logger {
 public:
  static LogLevel& level() {
    static LogLevel lvl = LogLevel::kSilent;
    return lvl;
  }

  template <typename... Args>
  static void info(const char* fmt, Args&&... args) {
    if (level() >= LogLevel::kInfo) print(fmt, std::forward<Args>(args)...);
  }

  template <typename... Args>
  static void debug(const char* fmt, Args&&... args) {
    if (level() >= LogLevel::kDebug) print(fmt, std::forward<Args>(args)...);
  }

 private:
  template <typename... Args>
  static void print(const char* fmt, Args&&... args) {
    if constexpr (sizeof...(Args) == 0) {
      std::fputs(fmt, stderr);
    } else {
      std::fprintf(stderr, fmt, std::forward<Args>(args)...);
    }
    std::fputc('\n', stderr);
  }
};

}  // namespace hawkeye::sim
