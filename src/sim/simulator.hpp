#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "sim/calendar_queue.hpp"
#include "sim/inline_action.hpp"
#include "sim/time.hpp"

namespace hawkeye::sim {

/// Packet-level discrete-event simulator core.
///
/// Default mode is the seed's single-threaded calendar of (time, sequence,
/// closure) events: ties are broken by insertion order so the simulation is
/// fully deterministic, which the evaluation harness relies on for
/// reproducible precision/recall numbers (and the parallel sweep runner
/// relies on for thread-count independence).
///
/// `configure_shards(N, L)` with N > 1 switches the simulator into
/// *intra-run* parallel mode (PR 6): N device shards plus one control shard,
/// each owning its own EventCalendar, drained by a persistent worker pool in
/// conservative rounds bounded by the lookahead horizon
/// `H = min pending time + L` (L = the minimum cross-shard scheduling
/// latency, in practice the minimum link delay). Cross-shard and
/// post-horizon schedules are deferred into per-shard outboxes (the
/// "mailboxes") and merged at the round barrier under the canonical
/// (time, seq) total order, so N-shard execution is **bitwise identical**
/// to 1-shard execution. See DESIGN.md §12 for the correctness argument.
///
/// Canonical-order encoding: the seed's global `next_seq_++` tie-breaker is
/// equivalent to ordering same-time events lexicographically by
/// (rank of the scheduling parent event, per-parent child index), where
/// "rank" is the global execution rank (setup-time schedules are children
/// of a pseudo-root with rank 0, in setup-call order). Sharded mode packs
/// exactly that pair into the existing 64-bit seq so the EventCalendar is
/// reused unchanged:
///   class 0 (cross-round):  seq =            rank(parent) << 21 | child
///   class 1 (intra-round):  seq = 1 << 63 | local_parent_idx << 21 | child
/// Class-1 keys are only ever compared against keys of the same round on
/// the same shard, where local execution index order coincides with rank
/// order; the class bit places intra-round children after all cross-round
/// events of the same timestamp, which matches the seed order because an
/// intra-round parent always ranks after every pre-round parent.
///
/// The hot path stays allocation-free: closures are stored in the event
/// itself (sim::InlineAction, 40-byte small-buffer optimization) and events
/// live in bucketed calendar queues. Events are moved, never copied.
class Simulator {
 public:
  using Action = InlineAction;

  /// seq bit layout for sharded mode (see class comment).
  static constexpr int kChildBits = 21;
  static constexpr std::uint64_t kChildMask = (std::uint64_t{1} << kChildBits) - 1;
  static constexpr std::uint64_t kParentMask = (std::uint64_t{1} << 42) - 1;
  static constexpr std::uint64_t kClass1Bit = std::uint64_t{1} << 63;

  Simulator();
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  // ---- Sharding control (no-op for the default single-shard mode) ----

  /// Partition the run into `device_shards` spatial shards plus one control
  /// shard. Must be called before anything is scheduled. `min_lookahead` is
  /// a lower bound on every cross-shard scheduling delay (the minimum link
  /// latency); 0 degrades every round to sequential at-minimum execution,
  /// which is always correct but serial. `device_shards <= 1` keeps the
  /// seed's single-calendar fast path.
  void configure_shards(int device_shards, Time min_lookahead);

  bool sharded() const { return !shards_.empty(); }
  /// Number of device shards (1 when unsharded).
  int device_count() const { return sharded() ? shard_count() - 1 : 1; }
  /// Calendar index of the control shard: events that touch global state
  /// (scans over all devices, routing mutation, collection fan-out) are
  /// scheduled here; any round whose window contains a control event runs
  /// single-threaded, giving those events exclusive access to everything.
  int control_shard() const { return sharded() ? shard_count() - 1 : 0; }
  /// Shard of the currently-executing event; setup shard (or 0) outside.
  int current_shard() const;
  Time min_lookahead() const { return lookahead_; }

  /// Route setup-time (pre-run) schedules issued inside `f` to `shard`.
  /// Setup schedules are children of the pseudo-root rank 0 in call order,
  /// matching the seed's monotone seq assignment.
  template <typename F>
  void with_setup_shard(int shard, F&& f) {
    const int prev = setup_shard_;
    setup_shard_ = shard;
    std::forward<F>(f)();
    setup_shard_ = prev;
  }

  /// Run `fn` with exclusive access to all simulation state. Inside a
  /// parallel round the closure is deferred to the round barrier, where all
  /// deferred closures execute single-threaded in canonical parent order;
  /// in every exclusive context (unsharded, sequential window, setup) it
  /// runs inline. The closure must capture any event-time values it needs
  /// (now() at barrier time is not the deferring event's time) and may
  /// perform at most one schedule call.
  void defer_control(Action fn);

  /// `hook` runs single-threaded at the end of every round (after deferred
  /// control closures and mailbox merges). Used by subsystems to reset
  /// per-round staging state (e.g. the collector's pending-dedup sets).
  void add_round_hook(std::function<void()> hook) {
    round_hooks_.push_back(std::move(hook));
  }

  // ---- Scheduling ----

  /// Current simulation time: the executing event's time on its shard, the
  /// global clock outside of events.
  Time now() const {
    const ExecCtx* c = tls_ctx_;
    if (c != nullptr && sharded()) return shards_[c->shard]->now;
    return now_;
  }

  /// Schedule `fn` to run `delay` ns from now on the current shard.
  /// Negative delays clamp to 0.
  void schedule(Time delay, Action fn) {
    schedule_at_on(-1, now() + (delay < 0 ? 0 : delay), std::move(fn));
  }

  /// Schedule `fn` at an absolute time (>= now) on the current shard.
  void schedule_at(Time at, Action fn) {
    schedule_at_on(-1, at, std::move(fn));
  }

  /// Cross-shard variants: `shard` is the calendar index that must execute
  /// `fn` (the shard owning the device the closure touches, or
  /// control_shard() for global-state events). Cross-shard delays must be
  /// >= min_lookahead() for parallel rounds to preserve canonical order.
  void schedule_on(int shard, Time delay, Action fn) {
    schedule_at_on(shard, now() + (delay < 0 ? 0 : delay), std::move(fn));
  }
  void schedule_at_on(int shard, Time at, Action fn);

  // ---- Execution ----

  /// Run one event (globally earliest, in canonical order); returns false
  /// if all calendars are empty. In sharded mode this is the sequential
  /// path: correct for any event, with exclusive state access.
  bool step();

  /// Run until the calendars drain or `until` is passed (events scheduled
  /// beyond `until` remain queued and `now()` stops at the last executed
  /// event's time). An event at exactly `until` still fires.
  void run_until(Time until);

  /// Drain every calendar.
  void run() { run_until(std::numeric_limits<Time>::max() - 1); }

  bool empty() const { return pending() == 0; }
  std::size_t pending() const;
  std::uint64_t executed_events() const;

  /// Sharded-mode execution profile: where wall-clock went (parallel worker
  /// drains vs the serial barrier vs sequential windows) and how much work
  /// crossed the round boundary. All zeros when unsharded. The benches use
  /// this to report shard-scaling efficiency next to raw wall-clock.
  struct ShardStats {
    std::uint64_t parallel_rounds = 0;
    std::uint64_t sequential_windows = 0;
    std::uint64_t sequential_events = 0;  // events run inside seq windows
    std::uint64_t merged_records = 0;     // events rank-merged at barriers
    std::uint64_t deferred_schedules = 0; // mailbox entries
    std::uint64_t deferred_controls = 0;
    double drain_seconds = 0;      // workers executing (parallel phase)
    double round_max_seconds = 0;  // sum over rounds of slowest worker
    double barrier_seconds = 0;    // rank merge + controls + mailbox flush
    double merge_seconds = 0;      // serial part: rank merge + controls
    double flush_seconds = 0;      // parallelizable part: mailbox flush
    double sequential_seconds = 0; // serial: sequential windows
  };
  const ShardStats& shard_stats() const { return stats_; }
  /// Events executed per shard (device shards then control); empty when
  /// unsharded. Exposes partition balance to the benches.
  std::vector<std::uint64_t> per_shard_executed() const;
  /// Summed worker-side drain seconds per shard (parallel rounds only).
  std::vector<double> per_shard_busy() const;

 private:
  // ---- Sharded-mode internals ----

  /// Executed-event record for the round barrier's canonical rank merge.
  struct Rec {
    Time at;
    std::uint64_t parent;  // class 0: parent rank; class 1: parent local idx
    std::uint32_t child;   // child index under that parent
    bool cls1;
  };
  /// A schedule deferred to the round barrier (cross-shard or >= horizon).
  /// The destination calendar is the outbox bucket it sits in.
  struct DefSched {
    Time at;
    std::uint32_t lidx;   // deferring (parent) event's local record index
    std::uint32_t child;  // child index reserved under that parent
    Action fn;
  };
  /// A control closure deferred to the round barrier.
  struct DefCtl {
    std::uint32_t lidx;
    std::uint32_t child;
    Action fn;
  };
  /// One shard: calendar + clock + per-round staging. Only the owning
  /// worker touches it during a parallel round; the main thread touches it
  /// only between rounds (the pool mutex orders the two).
  struct alignas(64) Shard {
    EventCalendar cal;
    Time now = 0;
    std::uint64_t executed = 0;
    double busy = 0;  // worker-side drain time, summed over rounds
    double round_busy = 0;  // this round's drain time
    std::vector<Rec> recs;               // this round's executed events
    /// Deferred schedules, bucketed by destination calendar so the barrier
    /// flush parallelizes: worker t drains every shard's bucket t into its
    /// own calendar (per-(src,dst) mailboxes).
    std::vector<std::vector<DefSched>> out;
    std::vector<DefCtl> ctl;             // deferred control closures
    std::vector<std::uint64_t> rank_of;  // round-local idx -> global rank
  };
  /// Per-thread execution context; null outside event execution.
  struct ExecCtx {
    int shard = 0;
    bool parallel = false;    // inside a parallel worker round
    std::uint64_t parent = 0; // class-0 parent rank (exclusive contexts)
    std::uint32_t lidx = 0;   // parallel: executing event's record index
    std::uint32_t child = 0;  // next child index
    std::uint32_t child_cap = std::numeric_limits<std::uint32_t>::max();
    Time cap = 0;             // horizon for intra-round (class 1) children
  };

  int shard_count() const { return static_cast<int>(shards_.size()); }
  void run_until_sharded(Time until);
  void run_sequential_window(Time cap);
  void run_parallel_round(Time cap);
  void drain_shard(int s, Time cap);
  void flush_target(int t);
  void round_barrier();
  void run_round_hooks();
  bool step_sharded();
  void ensure_pool();

  static thread_local ExecCtx* tls_ctx_;

  // Single-shard (seed) state.
  EventCalendar calendar_;
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;

  // Sharded state (empty when unsharded).
  std::vector<std::unique_ptr<Shard>> shards_;
  Time lookahead_ = 0;
  int setup_shard_ = 0;
  std::uint64_t setup_child_ = 0;  // pseudo-root's next child index
  std::uint64_t next_rank_ = 1;    // 0 is the setup pseudo-root
  std::vector<std::function<void()>> round_hooks_;
  ShardStats stats_;

  struct Pool;
  std::unique_ptr<Pool> pool_;
};

}  // namespace hawkeye::sim
