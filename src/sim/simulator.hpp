#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/time.hpp"

namespace hawkeye::sim {

/// Packet-level discrete-event simulator core.
///
/// A single-threaded calendar of (time, sequence, closure) events. Ties are
/// broken by insertion order so the simulation is fully deterministic,
/// which the evaluation harness relies on for reproducible precision/recall
/// numbers.
class Simulator {
 public:
  using Action = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time.
  Time now() const { return now_; }

  /// Schedule `fn` to run `delay` ns from now. Negative delays clamp to 0.
  void schedule(Time delay, Action fn) {
    schedule_at(now_ + (delay < 0 ? 0 : delay), std::move(fn));
  }

  /// Schedule `fn` at an absolute time (>= now).
  void schedule_at(Time at, Action fn) {
    if (at < now_) at = now_;
    heap_.push(Event{at, next_seq_++, std::move(fn)});
  }

  /// Run one event; returns false if the calendar is empty.
  bool step() {
    if (heap_.empty()) return false;
    // priority_queue::top is const; the closure is moved out via const_cast,
    // which is safe because the element is popped immediately after.
    Event& ev = const_cast<Event&>(heap_.top());
    now_ = ev.at;
    Action fn = std::move(ev.fn);
    heap_.pop();
    fn();
    ++executed_;
    return true;
  }

  /// Run until the calendar drains or `until` is passed (events scheduled
  /// beyond `until` remain queued and `now()` stops at the last executed
  /// event's time).
  void run_until(Time until) {
    while (!heap_.empty() && heap_.top().at <= until) step();
  }

  /// Drain the whole calendar.
  void run() {
    while (step()) {
    }
  }

  bool empty() const { return heap_.empty(); }
  std::size_t pending() const { return heap_.size(); }
  std::uint64_t executed_events() const { return executed_; }

 private:
  struct Event {
    Time at;
    std::uint64_t seq;
    Action fn;
    bool operator>(const Event& o) const {
      return at != o.at ? at > o.at : seq > o.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> heap_;
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace hawkeye::sim
