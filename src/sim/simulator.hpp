#pragma once

#include <cstdint>
#include <utility>

#include "sim/calendar_queue.hpp"
#include "sim/inline_action.hpp"
#include "sim/time.hpp"

namespace hawkeye::sim {

/// Packet-level discrete-event simulator core.
///
/// A single-threaded calendar of (time, sequence, closure) events. Ties are
/// broken by insertion order so the simulation is fully deterministic,
/// which the evaluation harness relies on for reproducible precision/recall
/// numbers (and the parallel sweep runner relies on for thread-count
/// independence).
///
/// The hot path is allocation-free: closures are stored in the event itself
/// (sim::InlineAction, 40-byte small-buffer optimization — every device/
/// collect scheduling site is audited to fit) and events live in a bucketed
/// calendar queue (sim::EventCalendar) instead of one global binary heap.
/// Events are moved, never copied (see SimulatorTest.EventsAreNeverCopied).
class Simulator {
 public:
  using Action = InlineAction;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time.
  Time now() const { return now_; }

  /// Schedule `fn` to run `delay` ns from now. Negative delays clamp to 0.
  void schedule(Time delay, Action fn) {
    schedule_at(now_ + (delay < 0 ? 0 : delay), std::move(fn));
  }

  /// Schedule `fn` at an absolute time (>= now).
  void schedule_at(Time at, Action fn) {
    if (at < now_) at = now_;
    calendar_.push(at, next_seq_++, std::move(fn));
  }

  /// Run one event; returns false if the calendar is empty.
  bool step() {
    if (!calendar_.prepare_head()) return false;
    EventCalendar::Event ev = calendar_.pop_head();
    now_ = ev.at;
    ev.fn();
    ++executed_;
    return true;
  }

  /// Run until the calendar drains or `until` is passed (events scheduled
  /// beyond `until` remain queued and `now()` stops at the last executed
  /// event's time). An event at exactly `until` still fires.
  void run_until(Time until) {
    while (calendar_.prepare_head() && calendar_.head().at <= until) step();
  }

  /// Drain the whole calendar.
  void run() {
    while (step()) {
    }
  }

  bool empty() const { return calendar_.empty(); }
  std::size_t pending() const { return calendar_.size(); }
  std::uint64_t executed_events() const { return executed_; }

 private:
  EventCalendar calendar_;
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace hawkeye::sim
