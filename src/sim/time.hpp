#pragma once

#include <cstdint>

namespace hawkeye::sim {

/// Simulation time in nanoseconds. All timestamps in the simulator and in
/// the Hawkeye telemetry layer use this unit; the paper's Tofino pipeline
/// likewise assigns each enqueued packet a 48-bit nanosecond timestamp.
using Time = std::int64_t;

inline constexpr Time kNanosecond = 1;
inline constexpr Time kMicrosecond = 1'000;
inline constexpr Time kMillisecond = 1'000'000;
inline constexpr Time kSecond = 1'000'000'000;

/// Convenience literals: 5 * kMicrosecond reads fine, but these help in
/// scenario tables.
constexpr Time ns(std::int64_t v) { return v; }
constexpr Time us(std::int64_t v) { return v * kMicrosecond; }
constexpr Time ms(std::int64_t v) { return v * kMillisecond; }

/// Time needed to serialize `bytes` onto a link of `gbps` gigabits/s.
constexpr Time serialization_ns(std::int64_t bytes, double gbps) {
  // bytes * 8 bits / (gbps * 1e9 bits/s) seconds -> ns
  return static_cast<Time>(static_cast<double>(bytes) * 8.0 / gbps);
}

}  // namespace hawkeye::sim
