#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <vector>

#include "sim/inline_action.hpp"
#include "sim/time.hpp"

namespace hawkeye::sim {

/// Hierarchical bucket calendar for simulator events, replacing the seed's
/// global `std::priority_queue`. Events land in fixed-width time buckets
/// (a classic timing wheel) so the steady-state cost per event is a
/// push_back + one batch-sorted key instead of an O(log n) sift through a
/// calendar holding the entire pending set.
///
/// Structure (near → far):
///  - the *drain tier* — the events of the bucket currently being drained.
///    Events sit still in an arena (`cur_slots_`, one 64-byte cache line
///    each); 24-byte (time, seq, slot) keys do all the ordering. When the
///    frontier advances to a bucket, its keys are sorted ONCE
///    (`drain_keys_`) and popped by bumping `drain_idx_` — no per-pop
///    sifting. Only events scheduled into the already-active bucket while
///    it drains (rare: zero-delay and sub-bucket-width self-reschedules) go
///    through a small binary heap (`late_keys_`); the head is whichever
///    lane's key is earlier. All pending events with a bucket index
///    <= `base_bucket_` live in this tier.
///  - `wheel_`     — kBucketCount vectors of unordered events covering the
///    next kBucketCount * kBucketWidthNs nanoseconds after `base_bucket_`.
///    A 1-bit-per-bucket occupancy bitmap makes skipping empty buckets a
///    countr_zero scan instead of a pointer chase.
///  - `far_`       — unordered overflow for events beyond the wheel horizon
///    (retransmit timeouts, far-future flow starts). Migrated into the
///    wheel when the drain frontier approaches them.
///
/// Determinism: pop order is *exactly* ascending (time, insertion seq) —
/// the same total order the seed heap used — because draining a bucket
/// first partitions out precisely the events of that absolute bucket and
/// then key-orders them by (time, seq); late same-bucket arrivals always
/// carry a (time, seq) no earlier than the last pop (simulation time and
/// seq are monotonic), so the two-lane merge preserves the total order.
/// Buckets only group events; they never reorder them. The evaluation
/// harness depends on this for bit-identical precision/recall numbers.
class EventCalendar {
 public:
  /// One scheduled event — exactly one 64-byte cache line (8-byte time +
  /// 8-byte seq + 48-byte InlineAction). Move-only; the calendar never
  /// copies events — see SimulatorTest.EventsAreNeverCopied.
  struct Event {
    Time at = 0;
    std::uint64_t seq = 0;
    InlineAction fn;
  };

  static constexpr int kBucketWidthShift = 6;   // 64 ns buckets
  static constexpr int kBucketCountLog2 = 14;   // 16384 buckets, ~1.05 ms span
  static constexpr std::int64_t kBucketCount = std::int64_t{1}
                                               << kBucketCountLog2;
  static constexpr std::int64_t kBucketMask = kBucketCount - 1;
  static constexpr Time kBucketWidthNs = Time{1} << kBucketWidthShift;

  EventCalendar() : wheel_(static_cast<std::size_t>(kBucketCount)) {}
  EventCalendar(const EventCalendar&) = delete;
  EventCalendar& operator=(const EventCalendar&) = delete;

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  void push(Time at, std::uint64_t seq, InlineAction fn) {
    const std::int64_t b = bucket_of(at);
    if (b <= base_bucket_) {
      late_keys_.push_back(
          Key{at, seq, static_cast<std::uint32_t>(cur_slots_.size())});
      cur_slots_.push_back(Event{at, seq, std::move(fn)});
      std::push_heap(late_keys_.begin(), late_keys_.end(), key_later);
    } else if (b < base_bucket_ + kBucketCount) {
      wheel_[static_cast<std::size_t>(b & kBucketMask)].push_back(
          Event{at, seq, std::move(fn)});
      mark_occupied(b);
      ++wheel_count_;
    } else {
      if (far_.empty() || b < far_min_bucket_) far_min_bucket_ = b;
      far_.push_back(Event{at, seq, std::move(fn)});
    }
    ++size_;
  }

  /// Advance the drain frontier (without executing anything) until the
  /// earliest pending event sits at the head. Returns false when drained.
  bool prepare_head() {
    while (drain_idx_ == drain_keys_.size() && late_keys_.empty()) {
      if (size_ == 0) return false;
      drain_keys_.clear();
      drain_idx_ = 0;
      cur_slots_.clear();
      const std::int64_t wheel_next = next_wheel_bucket();
      const bool have_far = !far_.empty();
      // Jump to the earlier of (next occupied wheel bucket, earliest far
      // bucket). When both land on the same bucket — a migrated retransmit
      // timeout sharing a bucket with queued traffic — BOTH sources must
      // drain together, or the wheel's share would fire out of
      // (time, seq) order behind the far share.
      const std::int64_t target =
          wheel_next >= 0 && (!have_far || wheel_next <= far_min_bucket_)
              ? wheel_next
              : far_min_bucket_;
      base_bucket_ = target;
      if (wheel_next == target) take_bucket(target);
      if (have_far && far_min_bucket_ <= target) migrate_far();
      std::sort(drain_keys_.begin(), drain_keys_.end(), key_earlier);
    }
    return true;
  }

  /// Earliest pending event; only valid after prepare_head() returned true.
  const Event& head() const { return cur_slots_[peek_slot()]; }

  /// Remove and return the earliest pending event (prepare_head() first).
  Event pop_head() {
    std::uint32_t slot;
    if (late_head_wins()) {
      std::pop_heap(late_keys_.begin(), late_keys_.end(), key_later);
      slot = late_keys_.back().slot;
      late_keys_.pop_back();
    } else {
      slot = drain_keys_[drain_idx_++].slot;
    }
    Event ev = std::move(cur_slots_[slot]);
    // Reclaim the arena (all remaining slots are moved-from husks) so a
    // push/pop ping-pong within one bucket can't grow it unboundedly.
    if (drain_idx_ == drain_keys_.size() && late_keys_.empty()) {
      drain_keys_.clear();
      drain_idx_ = 0;
      cur_slots_.clear();
    }
    --size_;
    return ev;
  }

 private:
  /// Drain-tier entry: the (time, seq) sort key plus the event's arena
  /// index. Trivially copyable by design — ordering shuffles these 24-byte
  /// PODs, never the cache-line events.
  struct Key {
    Time at;
    std::uint64_t seq;
    std::uint32_t slot;
  };
  /// Ascending (time, seq) — the batch-sort order of `drain_keys_`.
  static bool key_earlier(const Key& a, const Key& b) {
    return a.at != b.at ? a.at < b.at : a.seq < b.seq;
  }
  /// Min-heap comparator for `late_keys_`: `a` fires after `b`.
  static bool key_later(const Key& a, const Key& b) {
    return a.at != b.at ? a.at > b.at : a.seq > b.seq;
  }

  /// True when the late-arrival heap holds the earliest pending key.
  bool late_head_wins() const {
    return !late_keys_.empty() &&
           (drain_idx_ == drain_keys_.size() ||
            key_later(drain_keys_[drain_idx_], late_keys_.front()));
  }
  std::uint32_t peek_slot() const {
    return late_head_wins() ? late_keys_.front().slot
                            : drain_keys_[drain_idx_].slot;
  }

  static constexpr std::int64_t bucket_of(Time at) {
    return at >> kBucketWidthShift;
  }

  void mark_occupied(std::int64_t b) {
    const auto m = static_cast<std::uint64_t>(b & kBucketMask);
    occupied_[m >> 6] |= std::uint64_t{1} << (m & 63);
  }
  void clear_occupied(std::int64_t b) {
    const auto m = static_cast<std::uint64_t>(b & kBucketMask);
    occupied_[m >> 6] &= ~(std::uint64_t{1} << (m & 63));
  }

  /// Append an event to the drain arena with its key (unsorted —
  /// prepare_head() sorts the batch once after a frontier advance).
  void stage(Event&& ev) {
    drain_keys_.push_back(
        Key{ev.at, ev.seq, static_cast<std::uint32_t>(cur_slots_.size())});
    cur_slots_.push_back(std::move(ev));
  }

  /// Absolute bucket of the next non-empty wheel slot after base_bucket_,
  /// or -1. Every wheel event lies in (base_bucket_, base_bucket_ +
  /// kBucketCount), so the masked slot maps back to a unique absolute
  /// bucket.
  std::int64_t next_wheel_bucket() const {
    if (wheel_count_ == 0) return -1;
    const std::int64_t start = base_bucket_ + 1;
    // Scan the occupancy bitmap as a circular kBucketCount-bit word
    // starting at start's slot; `off` is the distance from `start`.
    std::int64_t off = 0;
    while (off < kBucketCount) {
      const auto slot =
          static_cast<std::uint64_t>((start + off) & kBucketMask);
      const std::uint64_t word = occupied_[slot >> 6] >> (slot & 63);
      if (word != 0) {
        off += std::countr_zero(word);
        return off < kBucketCount ? start + off : -1;
      }
      off += 64 - static_cast<std::int64_t>(slot & 63);
    }
    return -1;
  }

  /// Move the events of absolute bucket `b` into the drain tier; events of
  /// the same masked slot but a later wheel revolution stay behind. In the
  /// overwhelmingly common single-revolution case the bucket vector is
  /// *swapped in* as the drain arena — zero per-event moves; vector
  /// capacities recycle between the wheel slot and the arena.
  void take_bucket(std::int64_t b) {
    auto& vec = wheel_[static_cast<std::size_t>(b & kBucketMask)];
    bool stale = false;
    for (const Event& ev : vec) {
      if (bucket_of(ev.at) != b) {
        stale = true;
        break;
      }
    }
    if (!stale) {
      wheel_count_ -= vec.size();
      if (cur_slots_.empty()) {
        cur_slots_.swap(vec);
      } else {  // arena pre-seeded by a same-bucket far migration
        for (Event& ev : vec) cur_slots_.push_back(std::move(ev));
        vec.clear();
      }
      drain_keys_.reserve(cur_slots_.size());
      for (std::uint32_t i = 0; i < cur_slots_.size(); ++i) {
        drain_keys_.push_back(Key{cur_slots_[i].at, cur_slots_[i].seq, i});
      }
      clear_occupied(b);
      return;
    }
    std::size_t kept = 0;
    for (Event& ev : vec) {
      if (bucket_of(ev.at) == b) {
        stage(std::move(ev));
        --wheel_count_;
      } else {
        vec[kept++] = std::move(ev);
      }
    }
    vec.resize(kept);
    if (vec.empty()) clear_occupied(b);
  }

  /// Pull far-future events that now fall inside the wheel horizon (or the
  /// active bucket) after base_bucket_ moved.
  void migrate_far() {
    std::size_t kept = 0;
    std::int64_t new_min = -1;
    for (Event& ev : far_) {
      const std::int64_t b = bucket_of(ev.at);
      if (b <= base_bucket_) {
        stage(std::move(ev));
      } else if (b < base_bucket_ + kBucketCount) {
        wheel_[static_cast<std::size_t>(b & kBucketMask)].push_back(
            std::move(ev));
        mark_occupied(b);
        ++wheel_count_;
      } else {
        if (new_min < 0 || b < new_min) new_min = b;
        far_[kept++] = std::move(ev);
      }
    }
    far_.resize(kept);
    far_min_bucket_ = new_min;
  }

  std::vector<std::vector<Event>> wheel_;
  std::array<std::uint64_t, static_cast<std::size_t>(kBucketCount / 64)>
      occupied_{};
  std::vector<Key> drain_keys_;  // sorted batch of the active bucket's keys
  std::size_t drain_idx_ = 0;    // next unpopped index into drain_keys_
  std::vector<Key> late_keys_;   // min-heap: pushes into the active bucket
  std::vector<Event> cur_slots_; // drain arena: buckets <= base_bucket_
  std::vector<Event> far_;       // events beyond the wheel horizon
  std::int64_t base_bucket_ = 0;
  std::int64_t far_min_bucket_ = -1;
  std::size_t wheel_count_ = 0;  // events currently in wheel_ buckets
  std::size_t size_ = 0;         // total pending events
};

}  // namespace hawkeye::sim
