#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "telemetry/report.hpp"

namespace hawkeye::telemetry::wire {

/// Binary wire format for controller -> analyzer telemetry reports — what
/// the CPU poller actually puts inside the MTU-sized report packets after
/// zero-filtering. Fixed-width little-endian fields, one section per
/// record type:
///
///   [report header] [#epochs] { [epoch header] [#flows] flows...
///                               [#ports] ports... [#meters] meters... }*
///   [#port-status] status... [#evicted] evicted...
///
/// The format exists so the collection path is testable end-to-end (encode
/// on the switch CPU, decode at the analyzer, byte-identical semantics)
/// and so the Fig 9/14 size accounting reflects real bytes.
std::vector<std::uint8_t> encode(const SwitchTelemetryReport& report);

/// Decode; std::nullopt on any truncation or framing error.
std::optional<SwitchTelemetryReport> decode(
    const std::vector<std::uint8_t>& bytes);

}  // namespace hawkeye::telemetry::wire
