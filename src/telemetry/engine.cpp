#include "telemetry/engine.hpp"

#include <algorithm>

namespace hawkeye::telemetry {

int epoch_shift_for(sim::Time approx_epoch_ns) {
  int shift = 10;
  while ((sim::Time{1} << (shift + 1)) <= approx_epoch_ns && shift < 30) {
    ++shift;
  }
  // Pick the closer of 2^shift and 2^(shift+1).
  const sim::Time lo = sim::Time{1} << shift;
  const sim::Time hi = sim::Time{1} << (shift + 1);
  return (approx_epoch_ns - lo <= hi - approx_epoch_ns) ? shift : shift + 1;
}

TelemetryEngine::TelemetryEngine(net::NodeId sw, std::int32_t port_count,
                                 TelemetryConfig cfg)
    : sw_(sw), port_count_(port_count), cfg_(cfg) {
  ring_.resize(static_cast<size_t>(cfg_.epoch.epoch_count()));
  for (auto& e : ring_) {
    e.flows.resize(cfg_.mode == TelemetryMode::kPortOnly ? 0 : cfg_.flow_slots);
    e.ports.resize(static_cast<size_t>(port_count_));
    e.meter.assign(static_cast<size_t>(port_count_) *
                       static_cast<size_t>(port_count_),
                   0);
  }
  pause_until_.assign(static_cast<size_t>(port_count_), 0);
  pfc_frames_seen_.assign(static_cast<size_t>(port_count_), 0);
}

void TelemetryEngine::reset_epoch(Epoch& e, std::uint64_t id,
                                  sim::Time start) {
  e.id = id;
  e.start = start;
  e.live = true;
  for (auto& s : e.flows) s = FlowSlot{};
  for (auto& p : e.ports) {
    const auto port = p.port;
    p = PortRecord{};
    p.port = port;
  }
  std::fill(e.meter.begin(), e.meter.end(), 0);
}

TelemetryEngine::Epoch& TelemetryEngine::locate_epoch(sim::Time ts) {
  const int idx = cfg_.epoch.index_of(ts);
  Epoch& e = ring_[static_cast<size_t>(idx)];
  const std::uint64_t id = cfg_.epoch.id_of(ts);
  if (!e.live || e.id != id) {
    reset_epoch(e, id, cfg_.epoch.epoch_start(ts));
    for (std::int32_t p = 0; p < port_count_; ++p) {
      e.ports[static_cast<size_t>(p)].port = p;
    }
  }
  return e;
}

const TelemetryEngine::Epoch* TelemetryEngine::peek_epoch(sim::Time ts) const {
  if (ts < 0) return nullptr;
  const int idx = cfg_.epoch.index_of(ts);
  const Epoch& e = ring_[static_cast<size_t>(idx)];
  if (!e.live || e.id != cfg_.epoch.id_of(ts)) return nullptr;
  return &e;
}

void TelemetryEngine::on_enqueue(const net::Packet& pkt, net::PortId in_port,
                                 net::PortId out_port, std::int64_t qlen_pkts,
                                 bool port_paused, sim::Time now) {
  if (cfg_.mode == TelemetryMode::kOff) return;
  if (pkt.kind != net::PacketKind::kData) return;
  Epoch& e = locate_epoch(now);

  if (cfg_.mode != TelemetryMode::kFlowOnly) {
    // Port-level telemetry, updated per incoming packet like the flow data.
    PortRecord& pr = e.ports[static_cast<size_t>(out_port)];
    pr.pkt_cnt += 1;
    pr.qdepth_pkts_sum += static_cast<std::uint64_t>(qlen_pkts);
    if (port_paused) pr.paused_cnt += 1;
    // Causality meter (Figure 3): traffic volume in_port -> out_port.
    if (in_port >= 0) {
      auto& m = e.meter[static_cast<size_t>(in_port) *
                            static_cast<size_t>(port_count_) +
                        static_cast<size_t>(out_port)];
      m = cfg_.one_bit_meter ? 1
                             : m + static_cast<std::uint64_t>(pkt.size_bytes);
    }
  }

  if (cfg_.mode != TelemetryMode::kPortOnly && !e.flows.empty()) {
    // Flow table: hash-indexed slot, XOR 5-tuple match, evict on mismatch.
    const std::size_t slot_idx =
        static_cast<std::size_t>(pkt.flow.hash() % cfg_.flow_slots);
    FlowSlot& slot = e.flows[slot_idx];
    if (slot.occupied && !(slot.flow == pkt.flow)) {
      if (evict_sink_) {
        FlowRecord rec;
        rec.flow = slot.flow;
        rec.pkt_cnt = slot.pkt_cnt;
        rec.paused_cnt = slot.paused_cnt;
        rec.qdepth_pkts_sum = slot.qdepth_pkts_sum;
        rec.egress_port = slot.egress_port;
        rec.epoch_start = e.start;
        evict_sink_(rec);
      }
      slot = FlowSlot{};
    }
    if (!slot.occupied) {
      slot.occupied = true;
      slot.flow = pkt.flow;
      slot.egress_port = out_port;
    }
    slot.pkt_cnt += 1;
    if (port_paused) {
      slot.paused_cnt += 1;
    } else {
      // Contention replay (Algorithm 1) excludes paused packets, so the
      // queue-depth accumulator only integrates non-paused enqueues.
      slot.qdepth_pkts_sum += static_cast<std::uint64_t>(qlen_pkts);
    }
  }
}

void TelemetryEngine::on_transmit(const net::Packet& pkt, net::PortId out_port,
                                  sim::Time now) {
  if (cfg_.mode == TelemetryMode::kOff ||
      cfg_.mode == TelemetryMode::kFlowOnly) {
    return;
  }
  if (pkt.kind != net::PacketKind::kData) return;
  Epoch& e = locate_epoch(now);
  e.ports[static_cast<size_t>(out_port)].tx_bytes +=
      static_cast<std::uint64_t>(pkt.size_bytes);
}

void TelemetryEngine::on_pfc_frame(net::PortId port, std::uint32_t quanta,
                                   sim::Time pause_until, sim::Time now) {
  (void)now;
  if (port < 0 || port >= port_count_) return;
  ++pfc_frames_seen_[static_cast<size_t>(port)];
  pause_until_[static_cast<size_t>(port)] = quanta == 0 ? 0 : pause_until;
}

std::uint64_t TelemetryEngine::pfc_frames_seen(net::PortId port) const {
  if (port < 0 || port >= port_count_) return 0;
  return pfc_frames_seen_[static_cast<size_t>(port)];
}

bool TelemetryEngine::port_paused(net::PortId port, sim::Time now) const {
  if (port < 0 || port >= port_count_) return false;
  return pause_until_[static_cast<size_t>(port)] > now;
}

sim::Time TelemetryEngine::pause_deadline(net::PortId port) const {
  if (port < 0 || port >= port_count_) return 0;
  return pause_until_[static_cast<size_t>(port)];
}

// The line-rate polling checks scan every live epoch in the ring, exactly
// like the hardware reads its register arrays: a frozen deadlock stops all
// data traffic, so the evidence lives in older epochs that are never
// overwritten (epochs reset lazily, on the first enqueue of a new period).

std::uint64_t TelemetryEngine::recent_paused_count(net::PortId port,
                                                   sim::Time now) const {
  (void)now;
  if (cfg_.mode == TelemetryMode::kFlowOnly) return 0;
  std::uint64_t total = 0;
  for (const Epoch& e : ring_) {
    if (e.live) total += e.ports[static_cast<size_t>(port)].paused_cnt;
  }
  return total;
}

std::uint64_t TelemetryEngine::recent_flow_paused_count(
    const net::FiveTuple& flow, sim::Time now) const {
  (void)now;
  if (cfg_.mode == TelemetryMode::kPortOnly || cfg_.flow_slots == 0) return 0;
  std::uint64_t total = 0;
  for (const Epoch& e : ring_) {
    if (!e.live) continue;
    const FlowSlot& slot =
        e.flows[static_cast<size_t>(flow.hash() % cfg_.flow_slots)];
    if (slot.occupied && slot.flow == flow) total += slot.paused_cnt;
  }
  return total;
}

std::vector<net::PortId> TelemetryEngine::causal_out_ports(
    net::PortId in_port, sim::Time now) const {
  (void)now;
  std::vector<net::PortId> out;
  if (cfg_.mode == TelemetryMode::kFlowOnly || in_port < 0) return out;
  for (net::PortId p = 0; p < port_count_; ++p) {
    std::uint64_t bytes = 0;
    for (const Epoch& e : ring_) {
      if (!e.live) continue;
      bytes += e.meter[static_cast<size_t>(in_port) *
                           static_cast<size_t>(port_count_) +
                       static_cast<size_t>(p)];
    }
    if (bytes > 0) out.push_back(p);
  }
  return out;
}

SwitchTelemetryReport TelemetryEngine::snapshot(
    sim::Time now,
    const std::function<std::int64_t(net::PortId)>& queue_pkts) const {
  SwitchTelemetryReport rep;
  rep.sw = sw_;
  rep.collected_at = now;
  for (const Epoch& e : ring_) {
    if (!e.live) continue;
    EpochRecord er;
    er.epoch_id = e.id;
    er.start = e.start;
    for (const FlowSlot& s : e.flows) {
      if (!s.occupied || s.pkt_cnt == 0) continue;
      FlowRecord rec;
      rec.flow = s.flow;
      rec.pkt_cnt = s.pkt_cnt;
      rec.paused_cnt = s.paused_cnt;
      rec.qdepth_pkts_sum = s.qdepth_pkts_sum;
      rec.egress_port = s.egress_port;
      er.flows.push_back(rec);
    }
    for (const PortRecord& p : e.ports) {
      if (!p.zero()) er.ports.push_back(p);
    }
    for (net::PortId i = 0; i < port_count_; ++i) {
      for (net::PortId o = 0; o < port_count_; ++o) {
        const std::uint64_t b = e.meter[static_cast<size_t>(i) *
                                            static_cast<size_t>(port_count_) +
                                        static_cast<size_t>(o)];
        if (b > 0) er.meters.push_back({i, o, b});
      }
    }
    rep.epochs.push_back(std::move(er));
  }
  for (net::PortId p = 0; p < port_count_; ++p) {
    const std::int64_t qlen = queue_pkts ? queue_pkts(p) : 0;
    if (port_paused(p, now) || qlen > 0) {
      rep.port_status.push_back(
          {p, port_paused(p, now), pause_until_[static_cast<size_t>(p)], qlen});
    }
  }
  std::sort(rep.epochs.begin(), rep.epochs.end(),
            [](const EpochRecord& a, const EpochRecord& b) {
              return a.start < b.start;
            });
  return rep;
}

std::int64_t TelemetryEngine::raw_dump_bytes() const {
  std::int64_t per_epoch =
      static_cast<std::int64_t>(cfg_.mode == TelemetryMode::kPortOnly
                                    ? 0
                                    : cfg_.flow_slots) *
          kFlowRecordBytes +
      (cfg_.mode == TelemetryMode::kFlowOnly
           ? 0
           : static_cast<std::int64_t>(port_count_) * kPortRecordBytes +
                 static_cast<std::int64_t>(port_count_) * port_count_ *
                     kMeterRecordBytes) +
      kEpochHeaderBytes;
  return kReportHeaderBytes + per_epoch * cfg_.epoch.epoch_count();
}

void merge_report(SwitchTelemetryReport& dst,
                  const SwitchTelemetryReport& src) {
  const bool src_newer = src.collected_at > dst.collected_at;
  for (const EpochRecord& se : src.epochs) {
    EpochRecord* match = nullptr;
    for (EpochRecord& de : dst.epochs) {
      if (de.start == se.start) {
        match = &de;
        break;
      }
    }
    if (match == nullptr) {
      dst.epochs.push_back(se);
    } else if (src_newer) {
      *match = se;  // later view of the same epoch supersedes
    }
  }
  std::sort(dst.epochs.begin(), dst.epochs.end(),
            [](const EpochRecord& a, const EpochRecord& b) {
              return a.start < b.start;
            });
  for (const PortStatusRecord& sp : src.port_status) {
    PortStatusRecord* match = nullptr;
    for (PortStatusRecord& dp : dst.port_status) {
      if (dp.port == sp.port) {
        match = &dp;
        break;
      }
    }
    if (match == nullptr) {
      dst.port_status.push_back(sp);
    } else {
      match->paused_now = match->paused_now || sp.paused_now;
      match->pause_deadline = std::max(match->pause_deadline, sp.pause_deadline);
      match->queue_pkts = std::max(match->queue_pkts, sp.queue_pkts);
    }
  }
  // The controller's evicted-slot store is cumulative, so the newer
  // snapshot's copy is a superset — take it wholesale.
  if (src_newer) {
    dst.evicted = src.evicted;
    dst.collected_at = src.collected_at;
  }
}

std::int64_t serialized_bytes(const SwitchTelemetryReport& r) {
  std::int64_t bytes = kReportHeaderBytes;
  for (const auto& e : r.epochs) {
    bytes += kEpochHeaderBytes;
    bytes += static_cast<std::int64_t>(e.flows.size()) * kFlowRecordBytes;
    bytes += static_cast<std::int64_t>(e.ports.size()) * kPortRecordBytes;
    bytes += static_cast<std::int64_t>(e.meters.size()) * kMeterRecordBytes;
  }
  bytes += static_cast<std::int64_t>(r.port_status.size()) * kPortStatusBytes;
  bytes += static_cast<std::int64_t>(r.evicted.size()) * (kFlowRecordBytes + 8);
  return bytes;
}

}  // namespace hawkeye::telemetry
