#include "telemetry/wire.hpp"

#include <cstring>

namespace hawkeye::telemetry::wire {

namespace {

class Writer {
 public:
  template <typename T>
  void put(T v) {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::size_t at = out_.size();
    out_.resize(at + sizeof(T));
    std::memcpy(out_.data() + at, &v, sizeof(T));
  }
  std::vector<std::uint8_t> take() { return std::move(out_); }

 private:
  std::vector<std::uint8_t> out_;
};

class Reader {
 public:
  explicit Reader(const std::vector<std::uint8_t>& in) : in_(in) {}

  template <typename T>
  bool get(T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (at_ + sizeof(T) > in_.size()) return false;
    std::memcpy(&v, in_.data() + at_, sizeof(T));
    at_ += sizeof(T);
    return true;
  }
  bool done() const { return at_ == in_.size(); }

 private:
  const std::vector<std::uint8_t>& in_;
  std::size_t at_ = 0;
};

constexpr std::uint16_t kMagic = 0x4b48;  // "HK"
constexpr std::uint8_t kVersion = 1;

void put_flow(Writer& w, const FlowRecord& fr, bool with_epoch) {
  w.put(fr.flow.src_ip);
  w.put(fr.flow.dst_ip);
  w.put(fr.flow.src_port);
  w.put(fr.flow.dst_port);
  w.put(fr.flow.protocol);
  w.put(fr.pkt_cnt);
  w.put(fr.paused_cnt);
  w.put(static_cast<std::uint32_t>(fr.qdepth_pkts_sum));
  w.put(static_cast<std::int16_t>(fr.egress_port));
  if (with_epoch) w.put(fr.epoch_start);  // only evicted records need it
}

bool get_flow(Reader& r, FlowRecord& fr, bool with_epoch) {
  std::uint32_t qsum = 0;
  std::int16_t port = 0;
  if (!r.get(fr.flow.src_ip) || !r.get(fr.flow.dst_ip) ||
      !r.get(fr.flow.src_port) || !r.get(fr.flow.dst_port) ||
      !r.get(fr.flow.protocol) || !r.get(fr.pkt_cnt) ||
      !r.get(fr.paused_cnt) || !r.get(qsum) || !r.get(port)) {
    return false;
  }
  if (with_epoch && !r.get(fr.epoch_start)) return false;
  fr.qdepth_pkts_sum = qsum;
  fr.egress_port = port;
  return true;
}

}  // namespace

std::vector<std::uint8_t> encode(const SwitchTelemetryReport& rep) {
  Writer w;
  w.put(kMagic);
  w.put(kVersion);
  w.put(rep.sw);
  w.put(rep.collected_at);
  w.put(static_cast<std::uint16_t>(rep.epochs.size()));
  for (const EpochRecord& e : rep.epochs) {
    w.put(e.epoch_id);
    w.put(e.start);
    w.put(static_cast<std::uint16_t>(e.flows.size()));
    for (const FlowRecord& fr : e.flows) put_flow(w, fr, false);
    w.put(static_cast<std::uint16_t>(e.ports.size()));
    for (const PortRecord& pr : e.ports) {
      w.put(static_cast<std::int16_t>(pr.port));
      w.put(pr.pkt_cnt);
      w.put(pr.paused_cnt);
      w.put(static_cast<std::uint32_t>(pr.qdepth_pkts_sum));
      w.put(pr.tx_bytes);
    }
    w.put(static_cast<std::uint16_t>(e.meters.size()));
    for (const MeterRecord& m : e.meters) {
      w.put(static_cast<std::int16_t>(m.in_port));
      w.put(static_cast<std::int16_t>(m.out_port));
      w.put(static_cast<std::uint32_t>(m.bytes));
    }
  }
  w.put(static_cast<std::uint16_t>(rep.port_status.size()));
  for (const PortStatusRecord& ps : rep.port_status) {
    w.put(static_cast<std::int16_t>(ps.port));
    w.put(static_cast<std::uint8_t>(ps.paused_now ? 1 : 0));
    w.put(ps.pause_deadline);
    w.put(static_cast<std::uint32_t>(ps.queue_pkts));
  }
  w.put(static_cast<std::uint16_t>(rep.evicted.size()));
  for (const FlowRecord& fr : rep.evicted) put_flow(w, fr, true);
  return w.take();
}

std::optional<SwitchTelemetryReport> decode(
    const std::vector<std::uint8_t>& bytes) {
  Reader r(bytes);
  std::uint16_t magic = 0;
  std::uint8_t version = 0;
  SwitchTelemetryReport rep;
  if (!r.get(magic) || magic != kMagic) return std::nullopt;
  if (!r.get(version) || version != kVersion) return std::nullopt;
  std::uint16_t n_epochs = 0;
  if (!r.get(rep.sw) || !r.get(rep.collected_at) || !r.get(n_epochs)) {
    return std::nullopt;
  }
  rep.epochs.resize(n_epochs);
  for (EpochRecord& e : rep.epochs) {
    std::uint16_t n = 0;
    if (!r.get(e.epoch_id) || !r.get(e.start) || !r.get(n)) return std::nullopt;
    e.flows.resize(n);
    for (FlowRecord& fr : e.flows) {
      if (!get_flow(r, fr, false)) return std::nullopt;
    }
    if (!r.get(n)) return std::nullopt;
    e.ports.resize(n);
    for (PortRecord& pr : e.ports) {
      std::int16_t port = 0;
      std::uint32_t qsum = 0;
      if (!r.get(port) || !r.get(pr.pkt_cnt) || !r.get(pr.paused_cnt) ||
          !r.get(qsum) || !r.get(pr.tx_bytes)) {
        return std::nullopt;
      }
      pr.port = port;
      pr.qdepth_pkts_sum = qsum;
    }
    if (!r.get(n)) return std::nullopt;
    e.meters.resize(n);
    for (MeterRecord& m : e.meters) {
      std::int16_t in = 0, out = 0;
      std::uint32_t b = 0;
      if (!r.get(in) || !r.get(out) || !r.get(b)) return std::nullopt;
      m.in_port = in;
      m.out_port = out;
      m.bytes = b;
    }
  }
  std::uint16_t n = 0;
  if (!r.get(n)) return std::nullopt;
  rep.port_status.resize(n);
  for (PortStatusRecord& ps : rep.port_status) {
    std::int16_t port = 0;
    std::uint8_t paused = 0;
    std::uint32_t q = 0;
    if (!r.get(port) || !r.get(paused) || !r.get(ps.pause_deadline) ||
        !r.get(q)) {
      return std::nullopt;
    }
    ps.port = port;
    ps.paused_now = paused != 0;
    ps.queue_pkts = q;
  }
  if (!r.get(n)) return std::nullopt;
  rep.evicted.resize(n);
  for (FlowRecord& fr : rep.evicted) {
    if (!get_flow(r, fr, true)) return std::nullopt;
  }
  if (!r.done()) return std::nullopt;  // trailing garbage
  return rep;
}

}  // namespace hawkeye::telemetry::wire
