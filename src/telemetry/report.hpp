#pragma once

#include <cstdint>
#include <vector>

#include "net/types.hpp"
#include "sim/time.hpp"

namespace hawkeye::telemetry {

/// One flow-table slot as exported to the controller/analyzer.
struct FlowRecord {
  net::FiveTuple flow;
  std::uint32_t pkt_cnt = 0;
  std::uint32_t paused_cnt = 0;        // packets enqueued while port paused
  std::uint64_t qdepth_pkts_sum = 0;   // Σ queue length (pkts) at enqueue,
                                       // over non-paused enqueues only
  net::PortId egress_port = net::kInvalidPort;
  sim::Time epoch_start = -1;  // set on evicted records (controller store)

  bool zero() const { return pkt_cnt == 0; }
};

/// Per-port counters for one epoch.
struct PortRecord {
  net::PortId port = net::kInvalidPort;
  std::uint32_t pkt_cnt = 0;
  std::uint32_t paused_cnt = 0;
  std::uint64_t qdepth_pkts_sum = 0;  // over all enqueues (incl. paused)
  std::uint64_t tx_bytes = 0;

  bool zero() const { return pkt_cnt == 0 && paused_cnt == 0; }
};

/// One port-pair causality meter entry: bytes that entered on `in_port`
/// and left via `out_port` during the epoch (paper Figure 3).
struct MeterRecord {
  net::PortId in_port = net::kInvalidPort;
  net::PortId out_port = net::kInvalidPort;
  std::uint64_t bytes = 0;
};

struct EpochRecord {
  std::uint64_t epoch_id = 0;
  sim::Time start = 0;  // wall-clock start of the epoch
  std::vector<FlowRecord> flows;
  std::vector<PortRecord> ports;
  std::vector<MeterRecord> meters;
};

/// Snapshot of the per-port PFC status register (Figure 3 "Port Status"):
/// essential for frozen deadlocks, where a fully paused port sees no new
/// enqueues and therefore accumulates no paused-packet counts.
struct PortStatusRecord {
  net::PortId port = net::kInvalidPort;
  bool paused_now = false;
  sim::Time pause_deadline = 0;
  std::int64_t queue_pkts = 0;  // instantaneous occupancy at collection
};

/// Everything one switch hands to the analyzer for a diagnosis episode.
struct SwitchTelemetryReport {
  net::NodeId sw = net::kInvalidNode;
  sim::Time collected_at = 0;
  std::vector<EpochRecord> epochs;
  std::vector<PortStatusRecord> port_status;  // paused ports at collection
  std::vector<FlowRecord> evicted;  // slots displaced by hash collisions
};

/// Serialized wire sizes (bytes) used for overhead accounting (Fig 9a/14).
/// Tuple(13) + counters; matches the order-of-magnitude of the paper's
/// SpiderMon comparison (36 B per flow record there).
inline constexpr std::int32_t kFlowRecordBytes = 27;   // tuple(13)+cnt(4)+paused(4)+qsum(4)+port(2)
inline constexpr std::int32_t kPortRecordBytes = 22;   // port(2)+cnt(4)+paused(4)+qsum(4)+tx(8)
inline constexpr std::int32_t kMeterRecordBytes = 8;   // in(2)+out(2)+bytes(4)
inline constexpr std::int32_t kPortStatusBytes = 15;   // port(2)+flag(1)+deadline(8)+queue(4)
inline constexpr std::int32_t kEpochHeaderBytes = 22;  // id(8)+start(8)+3 counts
inline constexpr std::int32_t kReportHeaderBytes = 19; // magic+ver+sw+ts+counts

std::int64_t serialized_bytes(const SwitchTelemetryReport& r);

/// Analyzer-side union of two snapshots of the SAME switch taken at
/// different times (a persistent anomaly is collected repeatedly): epochs
/// are keyed by their wall-clock start and the later snapshot of an epoch
/// wins (its counters are a superset); port PFC status is OR-ed. This lets
/// the analyzer combine early snapshots (dense causality meters) with late
/// ones (settled deadlock pause state).
void merge_report(SwitchTelemetryReport& dst, const SwitchTelemetryReport& src);

}  // namespace hawkeye::telemetry
