#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/packet.hpp"
#include "net/types.hpp"
#include "telemetry/epoch.hpp"
#include "telemetry/report.hpp"

namespace hawkeye::telemetry {

/// Which parts of the telemetry a switch records. `kFull` is Hawkeye;
/// the reduced modes implement the Fig 10 ablation baselines
/// ("port-level only" and "flow-level only" telemetry systems).
enum class TelemetryMode : std::uint8_t {
  kFull,      // flow tables + port tables + causality meter (Hawkeye)
  kPortOnly,  // port tables + causality meter, no flow tables
  kFlowOnly,  // flow tables only, no port tables / meter
  kOff,       // plain switch, nothing recorded
};

struct TelemetryConfig {
  EpochConfig epoch;
  std::uint32_t flow_slots = 4096;  // per-epoch flow table size (paper §4.5)
  TelemetryMode mode = TelemetryMode::kFull;
  /// Model ITSY's 1-bit port-pair presence instead of a byte meter
  /// (ablation of the Figure 3 design choice).
  bool one_bit_meter = false;
};

/// Per-switch Hawkeye telemetry engine (paper §3.3) — the software twin of
/// the Tofino egress-pipeline registers.
///
/// The owning switch invokes:
///  * `on_enqueue` for every data packet admitted to an egress queue,
///    passing the queue depth seen at enqueue and whether the egress port
///    was PFC-paused at that instant ("paused packet" classification);
///  * `on_pfc_frame` when a PAUSE/RESUME arrives for one of its egress
///    ports (updates the PFC status register, Figure 6 red path);
///  * `on_transmit` when a packet leaves, to feed the port byte counters.
///
/// All state lives in an epoch ring buffer indexed by timestamp bits; an
/// epoch is lazily reset when a packet with a newer epoch ID lands in its
/// slot (wrap-around rule from §3.3).
class TelemetryEngine {
 public:
  using EvictSink = std::function<void(const FlowRecord&)>;

  TelemetryEngine(net::NodeId sw, std::int32_t port_count,
                  TelemetryConfig cfg);

  const TelemetryConfig& config() const { return cfg_; }
  net::NodeId switch_id() const { return sw_; }

  /// Flow slots displaced by XOR-mismatch evictions are pushed to the
  /// controller through this sink (paper: "the existing entry will be
  /// evicted and stored at the controller").
  void set_evict_sink(EvictSink sink) { evict_sink_ = std::move(sink); }

  void on_enqueue(const net::Packet& pkt, net::PortId in_port,
                  net::PortId out_port, std::int64_t qlen_pkts,
                  bool port_paused, sim::Time now);

  void on_transmit(const net::Packet& pkt, net::PortId out_port,
                   sim::Time now);

  /// PFC frame received on `port` (i.e. our egress toward that peer is
  /// being paused/resumed). Records the remaining pause deadline.
  void on_pfc_frame(net::PortId port, std::uint32_t quanta,
                    sim::Time pause_until, sim::Time now);

  /// PFC status register: is the egress port paused right now?
  bool port_paused(net::PortId port, sim::Time now) const;
  sim::Time pause_deadline(net::PortId port) const;

  /// Status-register update count for `port` (PAUSE + RESUME frames seen).
  /// Lost frames never reach here, so the gap between a peer's
  /// pause_frames_sent() and this counter is exactly the injected loss —
  /// the observable the PFC-fault tests assert on.
  std::uint64_t pfc_frames_seen(net::PortId port) const;

  /// Paused-packet count for `port` in the epoch containing `now` plus the
  /// previous epoch — the line-rate check the polling pipeline performs
  /// ("checks the number of paused packets on the egress pipeline").
  std::uint64_t recent_paused_count(net::PortId port, sim::Time now) const;

  /// Same check narrowed to one flow (victim-path PFC detection).
  std::uint64_t recent_flow_paused_count(const net::FiveTuple& flow,
                                         sim::Time now) const;

  /// Egress ports with recent causal traffic from `in_port`
  /// (meter[in][out] > 0 in the epoch of `now` or the one before):
  /// the Figure 3 lookup driving polling multicast pruning.
  std::vector<net::PortId> causal_out_ports(net::PortId in_port,
                                            sim::Time now) const;

  /// Export every live epoch (zero slots skipped; raw sizes are derived by
  /// the controller from `config()` for the Fig 14 accounting).
  /// `queue_pkts(port)` supplies the instantaneous egress occupancy for the
  /// port-status records (frozen deadlock queues are invisible to the
  /// enqueue-time depth averages); pass nullptr to skip.
  SwitchTelemetryReport snapshot(
      sim::Time now,
      const std::function<std::int64_t(net::PortId)>& queue_pkts = {}) const;

  /// Raw (unfiltered) register footprint in bytes, for the "data-plane
  /// packet generation" comparison of Fig 14.
  std::int64_t raw_dump_bytes() const;

 private:
  struct FlowSlot {
    net::FiveTuple flow;
    std::uint32_t pkt_cnt = 0;
    std::uint32_t paused_cnt = 0;
    std::uint64_t qdepth_pkts_sum = 0;
    net::PortId egress_port = net::kInvalidPort;
    bool occupied = false;
  };

  struct Epoch {
    std::uint64_t id = ~0ull;
    sim::Time start = 0;
    bool live = false;
    std::vector<FlowSlot> flows;
    std::vector<PortRecord> ports;
    std::vector<std::uint64_t> meter;  // [in * port_count + out] bytes
  };

  Epoch& locate_epoch(sim::Time ts);
  const Epoch* peek_epoch(sim::Time ts) const;
  void reset_epoch(Epoch& e, std::uint64_t id, sim::Time start);

  net::NodeId sw_;
  std::int32_t port_count_;
  TelemetryConfig cfg_;
  std::vector<Epoch> ring_;
  std::vector<sim::Time> pause_until_;  // PFC status register per port
  std::vector<std::uint64_t> pfc_frames_seen_;
  EvictSink evict_sink_;
};

}  // namespace hawkeye::telemetry
