#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace hawkeye::telemetry {

/// Epoch demarcation by timestamp bit selection (paper §3.3, Figure 4).
///
/// Programmable switches stamp each enqueued packet with a 48-bit
/// nanosecond timestamp. Hawkeye picks `index_bits` bits starting at
/// `epoch_shift` to index the epoch ring buffer, and the `id_bits` bits
/// above those as the epoch ID used to detect ring wrap-around. An epoch
/// therefore spans 2^epoch_shift ns; the paper's "1 ms" epoch is
/// 2^20 ns ≈ 1.05 ms, and the evaluated range 100 µs – 2 ms maps to
/// shifts 17..21.
struct EpochConfig {
  // Defaults favour fine-grained epochs (131 µs x 8): transient bursts
  // dominate their own epoch, which is what makes contributor attribution
  // accurate (§4.2 — precision falls as the epoch grows).
  int epoch_shift = 17;  // epoch size = 2^epoch_shift ns (~131 us)
  int index_bits = 3;    // ring of 2^index_bits epochs
  int id_bits = 8;       // wrap-around discriminator

  sim::Time epoch_ns() const { return sim::Time{1} << epoch_shift; }
  int epoch_count() const { return 1 << index_bits; }

  /// Ring-buffer slot for a timestamp: timestamp[shift+index_bits-1 : shift].
  int index_of(sim::Time ts) const {
    return static_cast<int>((static_cast<std::uint64_t>(ts) >> epoch_shift) &
                            ((1u << index_bits) - 1));
  }

  /// Epoch ID: the `id_bits` bits above the index bits.
  std::uint64_t id_of(sim::Time ts) const {
    return (static_cast<std::uint64_t>(ts) >> (epoch_shift + index_bits)) &
           ((1ull << id_bits) - 1);
  }

  /// Start time of the epoch containing `ts`.
  sim::Time epoch_start(sim::Time ts) const {
    return ts & ~((sim::Time{1} << epoch_shift) - 1);
  }
};

/// An epoch shift approximating a human-friendly duration; used by the
/// parameter-sweep benches so "100us" selects 2^17 ns etc.
int epoch_shift_for(sim::Time approx_epoch_ns);

}  // namespace hawkeye::telemetry
