#include "telemetry/resource_model.hpp"

#include <algorithm>

namespace hawkeye::telemetry {

namespace {
// Register widths of the P4 structures (§3.3): a flow slot keeps the
// 13-byte 5-tuple plus 32-bit packet/paused counters and a 32-bit
// queue-depth accumulator; port slots keep three 32-bit counters; the
// causality meter is one 32-bit cell per port pair; the PFC status
// register keeps a 48-bit deadline per port.
constexpr std::int64_t kFlowSlotBytes = 13 + 4 + 4 + 4;
constexpr std::int64_t kPortSlotBytes = 4 + 4 + 4;
constexpr std::int64_t kMeterCellBytes = 4;
constexpr std::int64_t kPfcStatusBytes = 8;
}  // namespace

std::int64_t flow_telemetry_bytes(const TelemetryConfig& cfg) {
  if (cfg.mode == TelemetryMode::kPortOnly) return 0;
  return static_cast<std::int64_t>(cfg.flow_slots) * kFlowSlotBytes *
         cfg.epoch.epoch_count();
}

std::int64_t port_telemetry_bytes(const TelemetryConfig& cfg, int ports) {
  if (cfg.mode == TelemetryMode::kFlowOnly) return 0;
  return static_cast<std::int64_t>(ports) * kPortSlotBytes *
         cfg.epoch.epoch_count();
}

std::int64_t causality_structure_bytes(const TelemetryConfig& cfg, int ports) {
  if (cfg.mode == TelemetryMode::kFlowOnly) return 0;
  const std::int64_t meter_cell = cfg.one_bit_meter ? 1 : kMeterCellBytes;
  // Meter is per epoch; PFC status registers are a single array.
  return static_cast<std::int64_t>(ports) * ports * meter_cell *
             cfg.epoch.epoch_count() +
         static_cast<std::int64_t>(ports) * kPfcStatusBytes;
}

std::int64_t total_switch_memory_bytes(const TelemetryConfig& cfg, int ports) {
  return flow_telemetry_bytes(cfg) + port_telemetry_bytes(cfg, ports) +
         causality_structure_bytes(cfg, ports);
}

TofinoResourceUsage estimate_resources(const TelemetryConfig& cfg, int ports,
                                       const TofinoBudget& budget) {
  TofinoResourceUsage u;
  u.sram_bytes = total_switch_memory_bytes(cfg, ports);
  const double total_sram =
      static_cast<double>(budget.sram_bytes_per_stage) * budget.stages;
  u.sram_pct = 100.0 * static_cast<double>(u.sram_bytes) / total_sram;

  // The polling forwarding logic uses a handful of exact-match tables
  // (victim 5-tuple dedup, port maps); only the dedup table wants TCAM-ish
  // wildcarding. Modelled as a small constant share.
  u.tcam_pct = 2.1;

  // PHV: polling header (flag + 5-tuple + probe id ~ 20 B), PFC metadata,
  // epoch index/id fields, telemetry scratch — on top of standard L2/L3.
  const int phv_bits_used = (20 + 8 + 6 + 16) * 8;
  u.phv_pct = 100.0 * phv_bits_used / budget.phv_bits;

  // Stage usage: epoch indexing (1), flow table key match + counters (2),
  // port counters + meter (2), PFC status (1), polling logic (2).
  const int stages_used = 8;
  u.stages_pct = 100.0 * stages_used / budget.stages;

  u.vliw_pct = 100.0 * 38 / (budget.vliw_slots_per_stage * budget.stages);
  u.hash_bits_pct = 14.6;  // 5-tuple hash + ECMP reuse
  (void)ports;
  return u;
}

}  // namespace hawkeye::telemetry
