#pragma once

#include <cstdint>

#include "telemetry/engine.hpp"

namespace hawkeye::telemetry {

/// Static model of the Tofino footprint of the Hawkeye P4 program
/// (~2500 LoC per the paper §3.6), used to regenerate Fig 13. We cannot run
/// the Tofino compiler here, so the model counts the structures §3.3
/// describes — per-epoch flow tables, port tables, port-pair meters, PFC
/// status registers, polling-forwarding tables — against Tofino-1 budgets.
struct TofinoBudget {
  // Tofino-1: 12 MAU stages, 80 SRAM blocks x 16 KiB per stage, 24 TCAM
  // blocks per stage, ~4 Kb PHV.
  int stages = 12;
  std::int64_t sram_bytes_per_stage = 80ll * 16 * 1024;
  int tcam_blocks_per_stage = 24;
  int phv_bits = 4096;
  int vliw_slots_per_stage = 32;
};

struct TofinoResourceUsage {
  double sram_pct = 0;      // of total pipeline SRAM
  double tcam_pct = 0;
  double phv_pct = 0;
  double stages_pct = 0;    // pipeline stages occupied
  double vliw_pct = 0;      // ALU instruction slots
  double hash_bits_pct = 0; // hash distribution units
  std::int64_t sram_bytes = 0;
};

/// Bytes of switch memory the telemetry occupies: the Fig 13(b) curves.
/// Flow telemetry grows O(#flows x #epochs); the PFC causality structure
/// and port-level telemetry are constant in the flow count (bounded by the
/// port count), which is the property the paper highlights.
std::int64_t flow_telemetry_bytes(const TelemetryConfig& cfg);
std::int64_t port_telemetry_bytes(const TelemetryConfig& cfg, int ports);
std::int64_t causality_structure_bytes(const TelemetryConfig& cfg, int ports);
std::int64_t total_switch_memory_bytes(const TelemetryConfig& cfg, int ports);

TofinoResourceUsage estimate_resources(const TelemetryConfig& cfg, int ports,
                                       const TofinoBudget& budget = {});

}  // namespace hawkeye::telemetry
