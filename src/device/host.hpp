#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "device/network.hpp"
#include "net/packet.hpp"
#include "sim/time.hpp"

namespace hawkeye::device {

/// Which end-to-end congestion control the RNIC runs. The paper's point
/// (§1/§2): whatever the CC, PFC cannot be fully eliminated — the
/// bench_cc_ablation experiment quantifies that on this substrate.
enum class CcAlgorithm {
  kNone,   // fixed-rate senders (crafted bursts behave like this anyway)
  kDcqcn,  // ECN/CNP driven (Zhu et al., SIGCOMM'15) — the default
  kTimely, // RTT-gradient driven (Mittal et al., SIGCOMM'15)
};

/// Rate-control knobs, simplified to the behaviours that matter for PFC
/// studies: line-rate start, multiplicative decrease on congestion
/// feedback, timer/gradient-driven recovery.
struct DcqcnParams {
  bool enabled = true;
  CcAlgorithm algo = CcAlgorithm::kDcqcn;

  // --- DCQCN ---
  double g = 1.0 / 256.0;            // alpha EWMA gain
  sim::Time timer_ns = 55'000;       // rate-increase / alpha-decay period
  int fast_recovery_rounds = 5;
  double additive_increase_gbps = 5.0;
  sim::Time cnp_pacing_ns = 50'000;  // receiver-side min CNP spacing

  // --- loss recovery (go-back-N; RoCEv2 RC semantics) ---
  sim::Time nack_pacing_ns = 30'000;  // receiver-side min NACK spacing
  sim::Time retransmit_timeout_ns = 500'000;  // tail-loss RTO

  // --- TIMELY ---
  sim::Time timely_t_low = 40'000;   // below: additive increase
  sim::Time timely_t_high = 150'000; // above: multiplicative decrease
  double timely_beta = 0.8;
  double timely_add_gbps = 10.0;
};

struct FlowSpec {
  net::NodeId src = net::kInvalidNode;
  net::NodeId dst = net::kInvalidNode;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 4791;
  std::int64_t bytes = 0;
  sim::Time start = 0;
  bool cc_enabled = true;  // false => constant-rate (crafted bursts)
  /// 0 => NIC line rate. Crafted scenario flows use this to model
  /// application-limited senders (e.g. loop flows kept below link capacity).
  double rate_cap_gbps = 0;
  /// Lossless class the flow rides (802.1Qbb priority; PFC is per class).
  net::TrafficClass tclass = net::TrafficClass::kData;
};

/// The 5-tuple a FlowSpec will materialize as (deterministic, usable for
/// ground truth before any Host object exists).
net::FiveTuple tuple_of(const FlowSpec& spec);

struct FlowStats {
  net::FiveTuple tuple;
  std::uint64_t flow_id = 0;
  std::int64_t bytes = 0;
  sim::Time start = 0;
  sim::Time finish = -1;  // -1 while running
  std::uint32_t pkts_sent = 0;
  std::uint32_t pkts_acked = 0;
  std::uint32_t retx_pkts = 0;  // go-back-N rewound segments (RNIC counter)
  sim::Time min_rtt = 0;
  sim::Time max_rtt = 0;
  sim::Time last_send = -1;  // for stall (deadlock) detection
  sim::Time last_ack = -1;
  bool complete() const { return finish >= 0; }
  sim::Time fct() const { return complete() ? finish - start : -1; }
};

/// Host + RNIC model: paces each QP/flow at its DCQCN rate through a single
/// uplink serializer, honours PFC PAUSE on the uplink, acknowledges every
/// received segment (echoing the tx timestamp so senders measure RTT), and
/// emits CNPs for CE-marked arrivals. Can also *inject* PFC frames to model
/// the malfunctioning-NIC / slow-receiver storms of §2.1.
class Host : public Device {
 public:
  using RttCallback = std::function<void(
      const net::FiveTuple& flow, sim::Time rtt, sim::Time now)>;

  Host(Network& net, net::NodeId id, DcqcnParams cc = {});

  void receive(net::Packet pkt, net::PortId in_port) override;

  /// Register a flow; transmission begins at spec.start. Returns flow id.
  std::uint64_t add_flow(const FlowSpec& spec);

  /// Called with every RTT sample measured from returning ACKs — the hook
  /// the Hawkeye detection agent (paper §3.4) attaches to.
  void set_rtt_callback(RttCallback cb) { rtt_cb_ = std::move(cb); }

  /// Install the fault-injection substrate (nullptr => fault-free). Hosts
  /// consume two fleet-ops fault classes: the PCIe ingress drain cap
  /// (HostPcieBottleneckSpec — arriving data queues behind a capped DMA
  /// engine and ACKs leave only on completion) and per-link rate overrides
  /// on the uplink (a speed-mismatched or oversubscribed ToR down-link is
  /// negotiated slow on the host side too). Without an injector both paths
  /// cost one null check and draw no randomness.
  void set_fault_injector(fault::FaultInjector* f) { faults_ = f; }

  /// Continuously emit PAUSE frames on the uplink between [start, stop)
  /// every `period` ns — the host PFC injection behind PFC storms and
  /// initiator-out-of-loop deadlocks.
  void inject_pfc(sim::Time start, sim::Time stop, sim::Time period,
                  std::uint32_t quanta, int data_class = 0);

  const std::vector<FlowStats>& flow_stats() const { return stats_; }
  std::uint64_t retransmissions() const { return retransmissions_; }
  /// True if any (or the given) data class of the uplink is PAUSEd.
  bool uplink_paused() const;
  bool uplink_paused(int data_class) const;
  std::uint64_t pfc_frames_injected() const { return pfc_injected_; }

  double line_rate_gbps() const { return line_gbps_; }

 private:
  struct FlowState {
    net::FiveTuple tuple;
    std::uint64_t id = 0;
    std::int64_t total_bytes = 0;
    std::int64_t sent_bytes = 0;
    std::uint32_t next_seq = 0;
    std::uint32_t total_pkts = 0;
    bool cc_enabled = true;
    net::TrafficClass tclass = net::TrafficClass::kData;
    bool started = false;
    bool done_sending = false;
    double limit_gbps = 0;  // per-flow ceiling (<= NIC line rate)
    // congestion-control state
    double rate_gbps = 0;
    sim::Time prev_rtt = 0;  // TIMELY gradient reference
    double target_gbps = 0;
    double alpha = 1.0;
    int recovery_stage = 0;
    bool timer_armed = false;
    bool cnp_seen_this_period = false;
    sim::Time next_allowed = 0;  // pacing gate for the next segment
    bool rto_armed = false;      // tail-loss retransmit timer pending
  };

  void start_flow(std::size_t idx);
  void try_send();
  void schedule_wake(sim::Time at);
  void send_segment(FlowState& f);
  void on_ack(const net::Packet& ack);
  void on_cnp(const net::Packet& cnp);
  void on_data(const net::Packet& data);
  void on_nack(const net::Packet& nack);
  void rewind_flow(FlowState& f, std::uint32_t to_seq);
  void arm_rto(std::uint64_t flow_id);
  void dcqcn_timer(std::uint64_t flow_id);
  void timely_update(FlowState& f, sim::Time rtt);
  FlowState* flow_by_id(std::uint64_t id);
  /// Negotiated uplink rate at `now` (rate override when one covers the
  /// host's access link, the nominal speed otherwise).
  double effective_line_gbps(sim::Time now) const;

  Network& net_;
  DcqcnParams cc_;
  double line_gbps_;
  net::NodeId uplink_peer_ = net::kInvalidNode;
  fault::FaultInjector* faults_ = nullptr;
  /// PCIe drain FIFO: the simulated time the capped DMA engine becomes
  /// idle. Only advances while a HostPcieBottleneckSpec covers this host.
  sim::Time drain_busy_until_ = 0;
  std::vector<FlowState> flows_;
  std::vector<FlowStats> stats_;
  std::unordered_map<std::uint64_t, std::size_t> flow_index_;
  std::size_t rr_cursor_ = 0;

  bool tx_busy_ = false;
  std::array<sim::Time, net::kMaxDataClasses> paused_until_{};
  sim::Time next_wake_ = -1;

  std::unordered_map<std::uint64_t, sim::Time> last_cnp_;   // per remote flow
  std::unordered_map<std::uint64_t, std::uint32_t> rx_expected_;  // receiver GBN
  std::unordered_map<std::uint64_t, sim::Time> last_nack_;
  RttCallback rtt_cb_;
  std::uint64_t pfc_injected_ = 0;
  std::uint64_t retransmissions_ = 0;
};

}  // namespace hawkeye::device
