#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <memory>
#include <vector>

#include "net/packet.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"

namespace hawkeye::fault {
class FaultInjector;
}

namespace hawkeye::net {
class Routing;
}

namespace hawkeye::device {

/// Anything attached to a topology node: Switch or Host.
class Device {
 public:
  explicit Device(net::NodeId id) : id_(id) {}
  virtual ~Device() = default;
  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  net::NodeId id() const { return id_; }

  /// A packet fully arrived on `in_port`.
  virtual void receive(net::Packet pkt, net::PortId in_port) = 0;

  /// Routing reconvergence withdrew egress `port` on this device (the link
  /// behind it was declared dead after hold-down). Real hardware drops the
  /// packets queued on a downed port; devices that buffer per egress
  /// override this to flush those queues — releasing the buffer (and any
  /// PFC backpressure it generated) so rerouted traffic can flow. The
  /// default is a no-op.
  virtual void on_port_withdrawn(net::PortId port) { (void)port; }

 private:
  net::NodeId id_;
};

/// Why a packet was dropped. The fabric is lossless for data by design, so
/// the reasons matter: polling packets ride a droppable class and their
/// loss is intentional (non-Hawkeye switch, useless flag, injected fault),
/// while a data or headroom drop is a genuine pathology. Keeping them
/// apart lets the losslessness property test and the robustness sweep
/// assert on exactly the class they care about.
enum class DropReason : std::uint8_t {
  kData = 0,   // data/control packet with no route or no device
  kPolling,    // polling packet discarded (by design or injected fault)
  kHeadroom,   // shared buffer exhausted: PFC headroom misconfiguration
  kLinkDown,   // injected link flap ate the packet on the wire
  kPfcLoss,    // ingress overflow caused by an injected lost PAUSE frame
  kCrc,        // injected degraded-link BER corrupted the frame (FCS fail)
};
inline constexpr std::size_t kDropReasonCount = 6;

/// Record of a PFC event, logged network-wide. The evaluation harness
/// derives the *ground-truth* PFC spreading path (and hence the causal
/// switch set for Fig 11) from this trace; Hawkeye itself never reads it.
struct PfcEvent {
  sim::Time t = 0;
  net::NodeId node = net::kInvalidNode;  // device that SENT the frame
  net::PortId port = net::kInvalidPort;  // port it was sent out of
  std::uint32_t quanta = 0;              // 0 => RESUME
  bool host_injected = false;            // true for storm-style injection
};

/// Glue between devices and the topology: looks up link properties and
/// schedules packet arrival at the peer after serialization + propagation.
/// Also hosts the global drop/PFC accounting used by tests and benches.
class Network {
 public:
  Network(sim::Simulator& simu, const net::Topology& topo)
      : simu_(simu),
        topo_(topo),
        devices_(topo.node_count(), nullptr),
        pfc_traces_(1),
        slabs_(1),
        counters_(1) {}

  sim::Simulator& simu() { return simu_; }
  const net::Topology& topo() const { return topo_; }

  /// Install the node -> shard partition (sharded simulator mode). One slab
  /// and one PFC-trace lane per calendar (device shards + control) so the
  /// per-hop hot path stays lock-free: each lane is only ever touched by
  /// the shard that owns it.
  void set_shard_map(std::vector<int> node_shard) {
    node_shard_ = std::move(node_shard);
    const std::size_t lanes =
        static_cast<std::size_t>(simu_.control_shard()) + 1;
    slabs_.resize(std::max<std::size_t>(1, lanes));
    pfc_traces_.resize(std::max<std::size_t>(1, lanes));
    counters_.resize(std::max<std::size_t>(1, lanes));
  }
  /// Shard owning `n`'s device (0 when unsharded).
  int shard_of(net::NodeId n) const {
    return node_shard_.empty() ? 0
                               : node_shard_[static_cast<std::size_t>(n)];
  }

  void attach(Device* dev) { devices_.at(static_cast<size_t>(dev->id())) = dev; }
  Device* device(net::NodeId n) const {
    return devices_.at(static_cast<size_t>(n));
  }

  /// Install the fault-injection substrate (nullptr => fault-free). Link
  /// flaps and PFC frame faults act here, on the wire itself; without an
  /// injector the delivery path costs one null check and draws nothing.
  void set_fault_injector(fault::FaultInjector* f) { faults_ = f; }

  /// Arm routing-reconvergence events for every injected link-flap window
  /// whose spec enables a hold-down: `holddown_ns` into an outage the two
  /// endpoint switches withdraw the dead port from `routing`'s ECMP
  /// candidate sets, and `restore_holddown_ns` after the link comes back
  /// they restore it. All events are scheduled up front from the injector's
  /// precomputed flap schedule, so the simulation stream stays
  /// deterministic; specs with hold-down 0 (the default) arm nothing and
  /// the run is byte-identical to frozen-routing behaviour. Call once,
  /// after set_fault_injector, before the simulation starts.
  void schedule_reconvergence(net::Routing& routing);

  /// Ship `pkt` out of (from, port). `ser_ns` is the serialization time the
  /// sender already accounted for; the packet lands at the peer after
  /// serialization + link propagation.
  void deliver(net::NodeId from, net::PortId port, net::Packet pkt,
               sim::Time ser_ns);

  /// Link feeding (node, port); throws if unwired.
  const net::LinkSpec& link_at(net::NodeId node, net::PortId port) const;

  /// Allocate a network-unique flow id. Per-Network (not process-global)
  /// so concurrent sweep runs never share state and a run's ids do not
  /// depend on what ran before it in the same process. Atomic because
  /// baselines may allocate at runtime; all testbed flows allocate at
  /// setup time, so ids are shard-count independent.
  std::uint64_t alloc_flow_id() {
    return next_flow_id_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Logged from the emitting device's shard into a per-shard lane (no
  /// cross-shard contention on the hot PFC path).
  void log_pfc(const PfcEvent& ev) {
    pfc_traces_[static_cast<std::size_t>(simu_.current_shard())].push_back(ev);
  }
  /// Merged trace, time-sorted (stable across same-time events within one
  /// lane; cross-lane same-time order is lane order — the ground-truth
  /// consumers only aggregate per (node, port), never order-compare).
  std::vector<PfcEvent> pfc_trace() const {
    if (pfc_traces_.size() == 1) return pfc_traces_[0];
    std::vector<PfcEvent> merged;
    std::size_t total = 0;
    for (const auto& lane : pfc_traces_) total += lane.size();
    merged.reserve(total);
    for (const auto& lane : pfc_traces_) {
      merged.insert(merged.end(), lane.begin(), lane.end());
    }
    std::stable_sort(
        merged.begin(), merged.end(),
        [](const PfcEvent& a, const PfcEvent& b) { return a.t < b.t; });
    return merged;
  }

  void count_drop(DropReason reason) {
    ++counters_[static_cast<std::size_t>(simu_.current_shard())]
          .drops[static_cast<std::size_t>(reason)];
  }
  /// Total drops across every reason (legacy aggregate).
  std::uint64_t drops() const {
    std::uint64_t total = 0;
    for (std::size_t r = 0; r < kDropReasonCount; ++r) {
      total += drops(static_cast<DropReason>(r));
    }
    return total;
  }
  std::uint64_t drops(DropReason reason) const {
    std::uint64_t total = 0;
    for (const CounterLane& lane : counters_) {
      total += lane.drops[static_cast<std::size_t>(reason)];
    }
    return total;
  }
  /// Pathological drops only — what "lossless" must keep at zero even
  /// while polling packets are being intentionally discarded. Injected
  /// data-plane faults (kLinkDown, kPfcLoss) are excluded: those losses
  /// are the experiment, not a model bug.
  std::uint64_t data_drops() const {
    return drops(DropReason::kData) + drops(DropReason::kHeadroom);
  }
  std::uint64_t polling_drops() const { return drops(DropReason::kPolling); }
  std::uint64_t link_down_drops() const {
    return drops(DropReason::kLinkDown);
  }
  std::uint64_t pfc_loss_drops() const { return drops(DropReason::kPfcLoss); }
  std::uint64_t crc_drops() const { return drops(DropReason::kCrc); }

  void count_data_hop(std::int32_t bytes) {
    CounterLane& lane = counters_[static_cast<std::size_t>(simu_.current_shard())];
    ++lane.data_hops;
    lane.data_hop_bytes += static_cast<std::uint64_t>(bytes);
  }
  /// Total (packet, switch-hop) pairs — NetSight postcard accounting.
  std::uint64_t data_hops() const {
    std::uint64_t total = 0;
    for (const CounterLane& lane : counters_) total += lane.data_hops;
    return total;
  }
  std::uint64_t data_hop_bytes() const {
    std::uint64_t total = 0;
    for (const CounterLane& lane : counters_) total += lane.data_hop_bytes;
    return total;
  }

 private:
  /// Per-shard in-flight packet arena. The slab exists so the same-shard
  /// delivery closure captures a 4-byte slot index instead of the whole
  /// ~96-byte net::Packet — keeping the per-hop event inside
  /// sim::InlineAction's inline buffer (no heap allocation per packet hop).
  /// Slots are recycled through a free list, so a slab grows only to its
  /// shard's in-flight high-water mark. Cross-shard hops (pod boundary)
  /// instead carry the packet by value inside the deferred closure, so no
  /// slab is ever touched from a foreign shard.
  struct Slab {
    std::vector<net::Packet> in_flight;
    std::vector<std::uint32_t> free_slots;
  };
  std::uint32_t park_packet(Slab& slab, net::Packet&& pkt) {
    if (slab.free_slots.empty()) {
      slab.in_flight.push_back(std::move(pkt));
      return static_cast<std::uint32_t>(slab.in_flight.size() - 1);
    }
    const std::uint32_t slot = slab.free_slots.back();
    slab.free_slots.pop_back();
    slab.in_flight[slot] = std::move(pkt);
    return slot;
  }
  net::Packet unpark_packet(Slab& slab, std::uint32_t slot) {
    net::Packet pkt = std::move(slab.in_flight[slot]);
    slab.free_slots.push_back(slot);
    return pkt;
  }

  sim::Simulator& simu_;
  const net::Topology& topo_;
  fault::FaultInjector* faults_ = nullptr;
  std::vector<Device*> devices_;
  std::vector<int> node_shard_;             // empty => unsharded
  std::vector<std::vector<PfcEvent>> pfc_traces_;  // one lane per shard
  std::vector<Slab> slabs_;                 // one arena per shard
  std::atomic<std::uint64_t> next_flow_id_{1};
  /// Per-shard hop/drop accounting lane — one cache line each, touched only
  /// by the owning shard's worker on the per-hop hot path (an atomic here
  /// would ping-pong one line between every core on every hop). Readers sum
  /// the lanes between rounds, where the pool barrier orders the memory.
  struct alignas(64) CounterLane {
    std::uint64_t data_hops = 0;
    std::uint64_t data_hop_bytes = 0;
    std::array<std::uint64_t, kDropReasonCount> drops{};
  };
  std::vector<CounterLane> counters_;
};

}  // namespace hawkeye::device
