#include "device/network.hpp"

#include <stdexcept>

#include "fault/fault.hpp"
#include "net/routing.hpp"

namespace hawkeye::device {

const net::LinkSpec& Network::link_at(net::NodeId node,
                                      net::PortId port) const {
  const std::int64_t lid = topo_.link_of(node, port);
  if (lid < 0) throw std::out_of_range("Network::link_at: unwired port");
  return topo_.link(static_cast<std::size_t>(lid));
}

void Network::deliver(net::NodeId from, net::PortId port, net::Packet pkt,
                      sim::Time ser_ns) {
  const DropReason reason = pkt.kind == net::PacketKind::kPolling
                                ? DropReason::kPolling
                                : DropReason::kData;
  const net::PortRef peer = topo_.peer(from, port);
  if (!peer.valid()) {
    count_drop(reason);
    return;
  }
  const net::LinkSpec& link = link_at(from, port);
  Device* dst = device(peer.node);
  if (dst == nullptr) {
    count_drop(reason);
    return;
  }
  if (faults_ != nullptr) {
    // Send-edge of an injected link flap: the wire is dead, everything on
    // it (data, control, PFC frames alike) dies with it.
    if (faults_->link_down(from, peer.node, simu_.now())) {
      count_drop(DropReason::kLinkDown);
      faults_->note_link_drop(from, peer.node, pkt, simu_.now());
      return;
    }
    if (pkt.kind == net::PacketKind::kPfc) {
      // Lost/delayed pause signaling. An eaten frame is counted by the
      // injector itself (pfc_pause_lost / pfc_resume_lost); the network's
      // kPfcLoss reason is reserved for the ingress-overflow drops the
      // loss later induces at the switch.
      const fault::PfcVerdict v =
          faults_->on_pfc_frame(from, port, pkt.pause_quanta, simu_.now());
      if (v.dropped) return;
      ser_ns += v.extra_delay;
    } else if (faults_->has_degraded_links() &&
               faults_->on_wire_crc(from, peer.node, pkt, simu_.now())) {
      // Degraded-link BER corrupted the frame on the wire: the receiving
      // MAC fails the FCS check and discards it. PFC frames are exempt —
      // corrupted pause signaling is PfcFrameFaultSpec's axis, keeping the
      // two fault classes orthogonal.
      count_drop(DropReason::kCrc);
      return;
    }
  }
  const int dst_shard = shard_of(peer.node);
  if (simu_.sharded() && dst_shard != simu_.current_shard()) {
    // Pod-boundary hop: the arrival must execute on the destination's
    // shard, so the packet travels by value inside the deferred closure
    // (InlineAction's heap fallback — off the per-shard hot path) and the
    // simulator's mailbox merge assigns its canonical key at the round
    // barrier. The link delay (>= the configured lookahead) guarantees the
    // arrival lands beyond the current horizon.
    auto arrive_remote = [this, dst, p = std::move(pkt), in = peer.port,
                          from]() mutable {
      if (faults_ != nullptr &&
          faults_->link_down(from, dst->id(), simu_.now())) {
        count_drop(DropReason::kLinkDown);
        faults_->note_link_drop(from, dst->id(), p, simu_.now());
        return;
      }
      dst->receive(std::move(p), in);
    };
    simu_.schedule_on(dst_shard, ser_ns + link.delay_ns,
                      std::move(arrive_remote));
    return;
  }
  // Same-shard hop: the packet is parked in the shard's slab so the arrival
  // closure captures only {this, dst, slot, slab, in_port, from} — small
  // enough for the simulator's inline event storage. This is the hottest
  // event in every run (one per packet per hop); the static_assert keeps it
  // allocation-free.
  const auto slab = static_cast<std::uint32_t>(simu_.current_shard());
  const std::uint32_t slot = park_packet(slabs_[slab], std::move(pkt));
  auto arrive = [this, dst, slot, slab, in = peer.port, from]() {
    net::Packet p = unpark_packet(slabs_[slab], slot);
    // Arrival-edge of a flap: the link died while the packet was in flight.
    if (faults_ != nullptr &&
        faults_->link_down(from, dst->id(), simu_.now())) {
      count_drop(DropReason::kLinkDown);
      faults_->note_link_drop(from, dst->id(), p, simu_.now());
      return;
    }
    dst->receive(std::move(p), in);
  };
  static_assert(sim::InlineAction::fits_inline<decltype(arrive)>(),
                "packet-arrival closure must stay inside the event SBO");
  simu_.schedule(ser_ns + link.delay_ns, std::move(arrive));
}

void Network::schedule_reconvergence(net::Routing& routing) {
  if (faults_ == nullptr) return;
  net::Routing* rt = &routing;
  for (const fault::FaultInjector::FlapSchedule& f :
       faults_->flap_schedules()) {
    if (f.holddown_ns <= 0) continue;  // frozen routing for this spec
    const net::PortId pa = topo_.port_towards(f.a, f.b);
    const net::PortId pb = topo_.port_towards(f.b, f.a);
    if (pa == net::kInvalidPort || pb == net::kInvalidPort) continue;
    for (const fault::FaultInjector::DownWindow& w : f.windows) {
      // An outage shorter than the hold-down never reconverges — the timer
      // is the dampening filter that keeps micro-flaps from churning paths.
      const sim::Time withdraw_at = w.t0 + f.holddown_ns;
      if (withdraw_at < w.t1) {
        auto withdraw = [this, rt, a = f.a, b = f.b, pa, pb]() {
          // Guard against window overlap after the restore hold-down: only
          // withdraw if the wire is actually (still) dead right now.
          if (!faults_->link_down(a, b, simu_.now())) return;
          rt->disable_port(a, pa);
          rt->disable_port(b, pb);
          // Flush what is queued on the dead egresses — a withdrawn port's
          // frozen FIFO would otherwise hold its buffer (and the PFC
          // cascade it caused) until the physical link heals.
          if (Device* d = device(a)) d->on_port_withdrawn(pa);
          if (Device* d = device(b)) d->on_port_withdrawn(pb);
        };
        static_assert(sim::InlineAction::fits_inline<decltype(withdraw)>(),
                      "reconvergence closure must stay inside the event SBO");
        // Routing mutation + cross-device queue flushes touch state on
        // every shard: run on the control shard, whose events force the
        // whole lookahead window sequential (exclusive access).
        simu_.schedule_at_on(simu_.control_shard(), withdraw_at,
                             std::move(withdraw));
      }
      auto restore = [this, rt, a = f.a, b = f.b, pa, pb]() {
        if (faults_->link_down(a, b, simu_.now())) return;  // down again
        rt->enable_port(a, pa);
        rt->enable_port(b, pb);
      };
      static_assert(sim::InlineAction::fits_inline<decltype(restore)>(),
                    "reconvergence closure must stay inside the event SBO");
      simu_.schedule_at_on(simu_.control_shard(),
                           w.t1 + f.restore_holddown_ns, std::move(restore));
    }
  }
}

}  // namespace hawkeye::device
