#include "device/network.hpp"

#include <stdexcept>

namespace hawkeye::device {

const net::LinkSpec& Network::link_at(net::NodeId node,
                                      net::PortId port) const {
  const std::int64_t lid = topo_.link_of(node, port);
  if (lid < 0) throw std::out_of_range("Network::link_at: unwired port");
  return topo_.link(static_cast<std::size_t>(lid));
}

void Network::deliver(net::NodeId from, net::PortId port, net::Packet pkt,
                      sim::Time ser_ns) {
  const DropReason reason = pkt.kind == net::PacketKind::kPolling
                                ? DropReason::kPolling
                                : DropReason::kData;
  const net::PortRef peer = topo_.peer(from, port);
  if (!peer.valid()) {
    count_drop(reason);
    return;
  }
  const net::LinkSpec& link = link_at(from, port);
  Device* dst = device(peer.node);
  if (dst == nullptr) {
    count_drop(reason);
    return;
  }
  // The packet is parked in the slab so the arrival closure captures only
  // {this, dst, slot, in_port} — small enough for the simulator's inline
  // event storage. This is the hottest event in every run (one per packet
  // per hop); the static_assert keeps it allocation-free.
  const std::uint32_t slot = park_packet(std::move(pkt));
  auto arrive = [this, dst, slot, in = peer.port]() {
    dst->receive(unpark_packet(slot), in);
  };
  static_assert(sim::InlineAction::fits_inline<decltype(arrive)>(),
                "packet-arrival closure must stay inside the event SBO");
  simu_.schedule(ser_ns + link.delay_ns, std::move(arrive));
}

}  // namespace hawkeye::device
