#include "device/network.hpp"

#include <stdexcept>

namespace hawkeye::device {

const net::LinkSpec& Network::link_at(net::NodeId node,
                                      net::PortId port) const {
  const std::int64_t lid = topo_.link_of(node, port);
  if (lid < 0) throw std::out_of_range("Network::link_at: unwired port");
  return topo_.link(static_cast<std::size_t>(lid));
}

void Network::deliver(net::NodeId from, net::PortId port, net::Packet pkt,
                      sim::Time ser_ns) {
  const net::PortRef peer = topo_.peer(from, port);
  if (!peer.valid()) {
    count_drop();
    return;
  }
  const net::LinkSpec& link = link_at(from, port);
  Device* dst = device(peer.node);
  if (dst == nullptr) {
    count_drop();
    return;
  }
  simu_.schedule(ser_ns + link.delay_ns,
                 [dst, pkt = std::move(pkt), in = peer.port]() mutable {
                   dst->receive(std::move(pkt), in);
                 });
}

}  // namespace hawkeye::device
