#include "device/switch.hpp"

#include <algorithm>

#include "sim/logger.hpp"

namespace hawkeye::device {

using net::Packet;
using net::PacketKind;
using net::PortId;
using net::TrafficClass;
using sim::Time;

Switch::Switch(Network& net, const net::Routing& routing, net::NodeId id,
               SwitchConfig cfg)
    : Device(id),
      net_(net),
      routing_(routing),
      cfg_(cfg),
      port_count_(net.topo().port_count(id)),
      ports_(static_cast<size_t>(port_count_)),
      telemetry_(std::make_unique<telemetry::TelemetryEngine>(
          id, port_count_, cfg.telemetry)),
      rng_(static_cast<std::uint64_t>(id) * 7919 + 13) {
  cfg_.data_classes =
      std::clamp(cfg_.data_classes, 1, net::kMaxDataClasses);
  for (Port& p : ports_) {
    p.cls.resize(static_cast<size_t>(cfg_.data_classes));
  }
  net_.attach(this);
}

int Switch::class_of(const Packet& pkt) const {
  const int ci = net::data_class_index(pkt.tclass);
  // Packets of classes beyond the configured count share the last class.
  return std::clamp(ci, 0, cfg_.data_classes - 1);
}

bool Switch::egress_paused(PortId port) const {
  for (int ci = 0; ci < cfg_.data_classes; ++ci) {
    if (egress_paused(port, ci)) return true;
  }
  return false;
}

bool Switch::egress_paused(PortId port, int data_class) const {
  return ports_[static_cast<size_t>(port)]
             .cls[static_cast<size_t>(data_class)]
             .paused_until > net_.simu().now();
}

std::int64_t Switch::ingress_bytes(PortId in_port) const {
  std::int64_t total = 0;
  for (const ClassState& cs : ports_[static_cast<size_t>(in_port)].cls) {
    total += cs.ingress_bytes;
  }
  return total;
}

std::int64_t Switch::queue_bytes(PortId port) const {
  std::int64_t total = 0;
  for (const ClassState& cs : ports_[static_cast<size_t>(port)].cls) {
    total += cs.bytes;
  }
  return total;
}

std::int64_t Switch::queue_pkts(PortId port) const {
  std::int64_t total = 0;
  for (const ClassState& cs : ports_[static_cast<size_t>(port)].cls) {
    total += static_cast<std::int64_t>(cs.queue.size());
  }
  return total;
}

void Switch::receive(Packet pkt, PortId in_port) {
  switch (pkt.kind) {
    case PacketKind::kPfc:
      handle_pfc_frame(pkt, in_port);
      return;
    case PacketKind::kPolling:
      if (faults_ != nullptr) {
        const fault::PollVerdict v =
            faults_->on_polling(id(), pkt.victim, net_.simu().now());
        switch (v.action) {
          case fault::PollAction::kDrop:
            net_.count_drop(DropReason::kPolling);
            return;
          case fault::PollAction::kDelay: {
            // Re-inject into the agent path after the injected latency.
            // The closure captures the whole packet, so it takes
            // InlineAction's heap fallback — acceptable off the hot path.
            net_.simu().schedule(
                v.delay_ns, [this, p = std::move(pkt), in_port]() mutable {
                  handle_polling(std::move(p), in_port);
                });
            return;
          }
          case fault::PollAction::kDuplicate:
            net_.simu().schedule(v.delay_ns,
                                 [this, p = pkt, in_port]() mutable {
                                   handle_polling(std::move(p), in_port);
                                 });
            break;  // the original is still delivered below
          case fault::PollAction::kDeliver:
            break;
        }
      }
      handle_polling(std::move(pkt), in_port);
      return;
    case PacketKind::kData:
      net_.count_data_hop(pkt.size_bytes);
      [[fallthrough]];
    case PacketKind::kAck:
    case PacketKind::kCnp:
    case PacketKind::kNack:
    case PacketKind::kReport: {
      const PortId out = routing_.egress_port(id(), pkt.flow);
      if (out == net::kInvalidPort) {
        net_.count_drop(DropReason::kData);
        return;
      }
      enqueue(std::move(pkt), in_port, out);
      return;
    }
  }
}

void Switch::on_port_withdrawn(PortId port_id) {
  if (port_id < 0 || port_id >= port_count_) return;
  Port& port = ports_[static_cast<size_t>(port_id)];
  const Time now = net_.simu().now();
  const net::PortRef peer = net_.topo().peer(id(), port_id);
  const auto drop = [&](const Queued& q) {
    net_.count_drop(DropReason::kLinkDown);
    if (faults_ != nullptr && peer.valid()) {
      faults_->note_link_drop(id(), peer.node, q.pkt, now);
    }
  };
  for (const Queued& q : port.control) drop(q);
  port.control.clear();
  for (int ci = 0; ci < cfg_.data_classes; ++ci) {
    ClassState& cs = port.cls[static_cast<size_t>(ci)];
    while (!cs.queue.empty()) {
      const Queued q = std::move(cs.queue.front());
      cs.queue.pop_front();
      cs.bytes -= q.pkt.size_bytes;
      buffered_bytes_ -= q.pkt.size_bytes;
      if (q.in_port >= 0) {
        ClassState& ing = ports_[static_cast<size_t>(q.in_port)]
                              .cls[static_cast<size_t>(ci)];
        ing.ingress_bytes -= q.pkt.size_bytes;
        maybe_resume(q.in_port, ci);
      }
      drop(q);
    }
  }
}

void Switch::handle_polling(Packet pkt, PortId in_port) {
  if (faults_ != nullptr && faults_->agent_down(id(), net_.simu().now())) {
    // Agent blackout: the switch behaves like a non-Hawkeye switch.
    faults_->note_blackout_drop(pkt.victim);
    net_.count_drop(DropReason::kPolling);
    return;
  }
  if (polling_handler_ != nullptr) {
    polling_handler_->on_polling(*this, pkt, in_port);
  } else {
    net_.count_drop(DropReason::kPolling);  // non-Hawkeye switch
  }
}

double Switch::effective_gbps(net::PortId port, const net::LinkSpec& link,
                              sim::Time now) const {
  if (faults_ == nullptr || !faults_->has_rate_overrides()) return link.gbps;
  const net::PortRef peer = net_.topo().peer(id(), port);
  if (!peer.valid()) return link.gbps;
  return faults_->link_gbps(id(), peer.node, link.gbps, now);
}

bool Switch::ecn_mark(std::int64_t qbytes) {
  if (qbytes <= cfg_.ecn_kmin_bytes) return false;
  if (qbytes >= cfg_.ecn_kmax_bytes) return true;
  const double p = cfg_.ecn_pmax *
                   static_cast<double>(qbytes - cfg_.ecn_kmin_bytes) /
                   static_cast<double>(cfg_.ecn_kmax_bytes - cfg_.ecn_kmin_bytes);
  return rng_.chance(p);
}

void Switch::enqueue(Packet pkt, PortId in_port, PortId out_port) {
  Port& port = ports_[static_cast<size_t>(out_port)];
  const Time now = net_.simu().now();

  if (pkt.kind == PacketKind::kData) {
    if (buffered_bytes_ + pkt.size_bytes > cfg_.buffer_bytes) {
      // Shared buffer exhausted. With an injector that ate one of OUR
      // PAUSE frames the upstream legitimately kept transmitting into the
      // full ingress — attribute the overflow to the injected signal loss
      // so losslessness assertions still catch genuine headroom bugs.
      const bool injected_pfc_loss =
          faults_ != nullptr && faults_->pause_frames_lost(id()) > 0;
      net_.count_drop(injected_pfc_loss ? DropReason::kPfcLoss
                                        : DropReason::kHeadroom);
      return;
    }
    const int ci = class_of(pkt);
    ClassState& cs = port.cls[static_cast<size_t>(ci)];
    const bool paused = egress_paused(out_port, ci);
    if (ecn_mark(cs.bytes)) pkt.ecn_ce = true;

    telemetry_->on_enqueue(pkt, in_port, out_port,
                           static_cast<std::int64_t>(cs.queue.size()), paused,
                           now);

    cs.queue.push_back({std::move(pkt), in_port, now});
    const std::int32_t size = cs.queue.back().pkt.size_bytes;
    cs.bytes += size;
    buffered_bytes_ += size;
    if (in_port >= 0) {
      ClassState& ing =
          ports_[static_cast<size_t>(in_port)].cls[static_cast<size_t>(ci)];
      ing.ingress_bytes += size;
      if (!ing.pausing_upstream && ing.ingress_bytes >= cfg_.pfc_xoff_bytes) {
        ing.pausing_upstream = true;
        send_pause(in_port, ci, cfg_.pause_quanta);
      }
    }
  } else {
    port.control.push_back({std::move(pkt), in_port, now});
  }
  try_transmit(out_port);
}

void Switch::send_control(PortId port, Packet pkt) {
  if (port < 0 || port >= port_count_) return;
  enqueue(std::move(pkt), net::kInvalidPort, port);
}

void Switch::try_transmit(PortId port_id) {
  Port& port = ports_[static_cast<size_t>(port_id)];
  if (port.tx_busy) return;
  const Time now = net_.simu().now();

  if (faults_ != nullptr && faults_->has_link_faults()) {
    // Injected link outage: the PHY is dead, so the transmitter stalls and
    // the queue builds — the head packet is NOT popped and dropped, because
    // a real MAC holds its FIFO while the link renegotiates. Backpressure
    // (PFC toward our ingresses) follows from the growing queue as usual.
    const net::PortRef peer = net_.topo().peer(id(), port_id);
    if (peer.valid() && faults_->link_down(id(), peer.node, now)) {
      if (!port.down_wake_armed) {
        port.down_wake_armed = true;
        faults_->note_link_stall(id(), peer.node, now);
        const Time up_at = faults_->link_down_until(id(), peer.node, now);
        auto wake = [this, port_id]() {
          ports_[static_cast<size_t>(port_id)].down_wake_armed = false;
          try_transmit(port_id);
        };
        static_assert(sim::InlineAction::fits_inline<decltype(wake)>());
        net_.simu().schedule_at(up_at, std::move(wake));
      }
      return;
    }
  }

  // Control first, then data classes in strict priority order, skipping
  // PFC-paused classes (pause is per 802.1Qbb priority).
  Queued q;
  bool found = false;
  if (!port.control.empty()) {
    q = std::move(port.control.front());
    port.control.pop_front();
    found = true;
  } else {
    for (int ci = 0; ci < cfg_.data_classes && !found; ++ci) {
      ClassState& cs = port.cls[static_cast<size_t>(ci)];
      if (cs.queue.empty() || cs.paused_until > now) continue;
      q = std::move(cs.queue.front());
      cs.queue.pop_front();
      cs.bytes -= q.pkt.size_bytes;
      buffered_bytes_ -= q.pkt.size_bytes;
      if (q.in_port >= 0) {
        ClassState& ing = ports_[static_cast<size_t>(q.in_port)]
                              .cls[static_cast<size_t>(ci)];
        ing.ingress_bytes -= q.pkt.size_bytes;
        maybe_resume(q.in_port, ci);
      }
      found = true;
    }
  }
  if (!found) return;  // nothing eligible (empty, or all data classes paused)

  const net::LinkSpec& link = net_.link_at(id(), port_id);
  const double gbps = effective_gbps(port_id, link, now);
  if (gbps < link.gbps) {
    // Injected speed mismatch / oversubscription actually bit: this frame
    // serializes below the fabric's nominal rate.
    const net::PortRef peer = net_.topo().peer(id(), port_id);
    faults_->note_rate_limited(id(), peer.node, now);
  }
  const Time ser = sim::serialization_ns(q.pkt.size_bytes, gbps);
  port.tx_busy = true;
  telemetry_->on_transmit(q.pkt, port_id, now);
  finish_transmit(port_id, std::move(q), ser);
}

void Switch::finish_transmit(PortId port_id, Queued&& q, Time ser) {
  net_.deliver(id(), port_id, std::move(q.pkt), ser);
  auto wake = [this, port_id]() {
    Port& port = ports_[static_cast<size_t>(port_id)];
    port.tx_busy = false;
    try_transmit(port_id);
  };
  static_assert(sim::InlineAction::fits_inline<decltype(wake)>());
  net_.simu().schedule(ser, std::move(wake));
}

void Switch::handle_pfc_frame(const Packet& pkt, PortId in_port) {
  // A PAUSE from the peer on `in_port` freezes OUR egress toward it, for
  // the priority named in the frame.
  Port& port = ports_[static_cast<size_t>(in_port)];
  const int ci = std::clamp(
      net::data_class_index(static_cast<TrafficClass>(pkt.pfc_priority)), 0,
      cfg_.data_classes - 1);
  ClassState& cs = port.cls[static_cast<size_t>(ci)];
  const Time now = net_.simu().now();
  const net::LinkSpec& link = net_.link_at(id(), in_port);
  if (pkt.pause_quanta == 0) {
    cs.paused_until = 0;  // RESUME
  } else {
    // Pause quanta are defined in units of the link's *negotiated* speed
    // (802.3x: one quantum = 512 bit times), so a rate override stretches
    // the pause duration too.
    const double quantum_ns =
        net::kPauseQuantumBits / effective_gbps(in_port, link, now);
    cs.paused_until = now + static_cast<Time>(quantum_ns * pkt.pause_quanta);
    // Wake the transmitter when the pause ages out (RESUME also wakes it).
    net_.simu().schedule_at(cs.paused_until,
                            [this, in_port]() { try_transmit(in_port); });
  }
  // The telemetry PFC status register tracks the port's most restrictive
  // pause across classes (the paper's per-port status bit).
  Time max_until = 0;
  for (const ClassState& c : port.cls) {
    max_until = std::max(max_until, c.paused_until);
  }
  telemetry_->on_pfc_frame(in_port, pkt.pause_quanta, max_until, now);
  if (pkt.pause_quanta == 0) try_transmit(in_port);
}

void Switch::send_pause(PortId in_port, int data_class, std::uint32_t quanta) {
  // PFC frames are MAC-level control traffic: modelled as bypassing the
  // egress serializer (highest priority, 64 B) so backpressure still
  // propagates when the data path is saturated or wedged (deadlock).
  const net::LinkSpec& link = net_.link_at(id(), in_port);
  const Time ser = sim::serialization_ns(
      net::kPfcFrameBytes, effective_gbps(in_port, link, net_.simu().now()));
  ++pause_frames_sent_;
  net_.log_pfc({net_.simu().now(), id(), in_port, quanta, false});
  net_.deliver(id(), in_port,
               net::make_pfc(static_cast<std::uint8_t>(
                                 static_cast<int>(TrafficClass::kData) +
                                 data_class),
                             quanta),
               ser);
  if (quanta > 0) {
    const double quantum_ns = net::kPauseQuantumBits /
                              effective_gbps(in_port, link, net_.simu().now());
    const Time refresh = static_cast<Time>(
        quantum_ns * quanta * cfg_.pause_refresh_fraction);
    net_.simu().schedule(std::max<Time>(refresh, 1000),
                         [this, in_port, data_class]() {
                           refresh_pause(in_port, data_class);
                         });
  }
}

void Switch::refresh_pause(PortId in_port, int data_class) {
  ClassState& ing = ports_[static_cast<size_t>(in_port)]
                        .cls[static_cast<size_t>(data_class)];
  if (!ing.pausing_upstream) return;
  // Still above Xon? Keep the upstream paused (802.1Qbb re-advertisement).
  if (ing.ingress_bytes > cfg_.pfc_xon_bytes) {
    send_pause(in_port, data_class, cfg_.pause_quanta);
  } else {
    ing.pausing_upstream = false;
    send_pause(in_port, data_class, 0);
  }
}

void Switch::maybe_resume(PortId in_port, int data_class) {
  ClassState& ing = ports_[static_cast<size_t>(in_port)]
                        .cls[static_cast<size_t>(data_class)];
  if (ing.pausing_upstream && ing.ingress_bytes <= cfg_.pfc_xon_bytes) {
    ing.pausing_upstream = false;
    send_pause(in_port, data_class, 0);  // RESUME
  }
}

}  // namespace hawkeye::device
