#include "device/host.hpp"

#include <algorithm>
#include <cmath>

#include "fault/fault.hpp"
#include "net/topology.hpp"
#include "sim/logger.hpp"

namespace hawkeye::device {

using net::Packet;
using net::PacketKind;
using sim::Time;

net::FiveTuple tuple_of(const FlowSpec& spec) {
  net::FiveTuple t;
  t.src_ip = net::Topology::ip_of(spec.src);
  t.dst_ip = net::Topology::ip_of(spec.dst);
  t.src_port = spec.src_port;
  t.dst_port = spec.dst_port;
  return t;
}

Host::Host(Network& net, net::NodeId id, DcqcnParams cc)
    : Device(id), net_(net), cc_(cc) {
  line_gbps_ = net.link_at(id, 0).gbps;
  uplink_peer_ = net.topo().peer(id, 0).node;
  net_.attach(this);
}

double Host::effective_line_gbps(Time now) const {
  if (faults_ == nullptr || !faults_->has_rate_overrides() ||
      uplink_peer_ == net::kInvalidNode) {
    return line_gbps_;
  }
  return faults_->link_gbps(id(), uplink_peer_, line_gbps_, now);
}

bool Host::uplink_paused() const {
  for (int ci = 0; ci < net::kMaxDataClasses; ++ci) {
    if (uplink_paused(ci)) return true;
  }
  return false;
}

bool Host::uplink_paused(int data_class) const {
  return paused_until_[static_cast<size_t>(data_class)] > net_.simu().now();
}

std::uint64_t Host::add_flow(const FlowSpec& spec) {
  FlowState f;
  f.tuple.src_ip = net::Topology::ip_of(spec.src);
  f.tuple.dst_ip = net::Topology::ip_of(spec.dst);
  f.tuple.src_port = spec.src_port;
  f.tuple.dst_port = spec.dst_port;
  // Flow ids are allocated per Network so independent runs (e.g. parallel
  // sweep workers) never touch shared state.
  f.id = net_.alloc_flow_id();
  f.total_bytes = spec.bytes;
  f.total_pkts = static_cast<std::uint32_t>(
      (spec.bytes + net::kMtuBytes - 1) / net::kMtuBytes);
  f.cc_enabled = spec.cc_enabled && cc_.enabled;
  f.tclass = net::is_data_class(spec.tclass) ? spec.tclass
                                             : net::TrafficClass::kData;
  f.limit_gbps = spec.rate_cap_gbps > 0
                     ? std::min(spec.rate_cap_gbps, line_gbps_)
                     : line_gbps_;
  f.rate_gbps = f.limit_gbps;  // RDMA transports start at line rate
  f.target_gbps = f.limit_gbps;
  f.next_allowed = spec.start;

  FlowStats st;
  st.tuple = f.tuple;
  st.flow_id = f.id;
  st.bytes = spec.bytes;
  st.start = spec.start;

  const std::size_t idx = flows_.size();
  flows_.push_back(f);
  stats_.push_back(st);
  flow_index_[f.id] = idx;

  net_.simu().schedule_at(spec.start, [this, idx]() { start_flow(idx); });
  return f.id;
}

void Host::start_flow(std::size_t idx) {
  flows_[idx].started = true;
  try_send();
}

void Host::schedule_wake(Time at) {
  const Time now = net_.simu().now();
  if (at <= now) at = now;
  if (next_wake_ >= now && next_wake_ <= at) return;  // earlier wake pending
  next_wake_ = at;
  net_.simu().schedule_at(at, [this, at]() {
    if (next_wake_ == at) next_wake_ = -1;
    try_send();
  });
}

void Host::try_send() {
  if (tx_busy_) return;
  const Time now = net_.simu().now();

  // Round-robin over flows that are started, unfinished, pace-eligible and
  // whose lossless class is not PAUSEd on the uplink.
  const std::size_t n = flows_.size();
  std::size_t chosen = n;
  Time earliest = -1;
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t i = (rr_cursor_ + k) % n;
    FlowState& f = flows_[i];
    if (!f.started || f.done_sending) continue;
    const Time class_pause =
        paused_until_[static_cast<size_t>(net::data_class_index(f.tclass))];
    const Time gate = std::max(f.next_allowed, class_pause);
    if (gate <= now) {
      chosen = i;
      break;
    }
    if (earliest < 0 || gate < earliest) earliest = gate;
  }
  if (chosen == n) {
    if (earliest >= 0) schedule_wake(earliest);
    return;
  }
  rr_cursor_ = (chosen + 1) % n;
  send_segment(flows_[chosen]);
}

void Host::send_segment(FlowState& f) {
  const Time now = net_.simu().now();
  const std::int64_t remaining = f.total_bytes - f.sent_bytes;
  const std::int32_t payload = static_cast<std::int32_t>(
      std::min<std::int64_t>(remaining, net::kMtuBytes));
  const bool last = remaining <= net::kMtuBytes;

  Packet pkt = net::make_data_packet(f.tuple, f.id, f.next_seq, payload, last, now);
  pkt.tclass = f.tclass;
  f.next_seq += 1;
  f.sent_bytes += payload;
  if (last) {
    f.done_sending = true;
    arm_rto(f.id);  // recover if the tail of the flow gets dropped
  }
  FlowStats& st = stats_[flow_index_[f.id]];
  st.pkts_sent += 1;
  st.last_send = now;

  // Serialization runs at the uplink's *negotiated* rate (a rate override
  // slows the wire); pacing below still thinks in nominal terms — the NIC
  // configuration believes the fabric speed, which is the misconfiguration.
  const Time ser = sim::serialization_ns(pkt.size_bytes,
                                         effective_line_gbps(now));
  // Pacing: the next segment of this flow may start once the current one
  // would have been serialized at the flow's DCQCN rate.
  const double rate = std::max(f.rate_gbps, 0.05);  // floor: 50 Mbps
  f.next_allowed = now + static_cast<Time>(
                             static_cast<double>(pkt.size_bytes) * 8.0 / rate);

  tx_busy_ = true;
  net_.deliver(id(), 0, std::move(pkt), ser);
  net_.simu().schedule(ser, [this]() {
    tx_busy_ = false;
    try_send();
  });
}

void Host::receive(Packet pkt, net::PortId in_port) {
  (void)in_port;
  const Time now = net_.simu().now();
  switch (pkt.kind) {
    case PacketKind::kPfc: {
      const int ci = std::clamp(
          net::data_class_index(
              static_cast<net::TrafficClass>(pkt.pfc_priority)),
          0, net::kMaxDataClasses - 1);
      if (pkt.pause_quanta == 0) {
        paused_until_[static_cast<size_t>(ci)] = 0;
        try_send();
      } else {
        const double quantum_ns =
            net::kPauseQuantumBits / effective_line_gbps(now);
        paused_until_[static_cast<size_t>(ci)] =
            now + static_cast<Time>(quantum_ns * pkt.pause_quanta);
        schedule_wake(paused_until_[static_cast<size_t>(ci)]);
      }
      return;
    }
    case PacketKind::kData:
      on_data(pkt);
      return;
    case PacketKind::kAck:
      on_ack(pkt);
      return;
    case PacketKind::kCnp:
      on_cnp(pkt);
      return;
    case PacketKind::kNack:
      on_nack(pkt);
      return;
    case PacketKind::kPolling:
    case PacketKind::kReport:
      return;  // sink: analyzers model these out-of-band
  }
}

void Host::on_data(const Packet& data) {
  const Time now = net_.simu().now();

  // Go-back-N receiver: deliver only the in-order prefix. A gap means an
  // upstream drop (only possible when PFC headroom was misconfigured) —
  // discard the out-of-order segment and NACK the expected sequence.
  std::uint32_t& expected = rx_expected_[data.flow_id];
  if (data.seq > expected) {
    Time& last = last_nack_[data.flow_id];
    if (last == 0 || now - last >= cc_.nack_pacing_ns) {
      last = now;
      Packet nack = net::make_nack(data, expected);
      net_.deliver(id(), 0, std::move(nack),
                   sim::serialization_ns(net::kNackBytes, line_gbps_));
    }
    return;
  }
  if (data.seq < expected) return;  // duplicate of a delivered segment
  expected = data.seq + 1;

  // Injected PCIe bottleneck: the segment must clear the capped DMA drain
  // before its ACK (the RDMA completion) can leave. The drain FIFO serves
  // at drain_gbps, so under sustained line-rate arrival the backlog — and
  // with it the sender-visible RTT — grows without any switch pausing:
  // the host becomes a pure victim with no paused upstream.
  Time drain_wait = 0;
  if (faults_ != nullptr && faults_->has_host_faults()) {
    const double drain = faults_->host_drain_gbps(id(), now);
    if (drain > 0) {
      const Time service = static_cast<Time>(
          static_cast<double>(data.size_bytes) * 8.0 / drain);
      const Time backlog = std::max<Time>(drain_busy_until_ - now, 0);
      drain_busy_until_ = now + backlog + service;
      drain_wait = backlog + service;
      faults_->note_host_drain_delay(id(), backlog, now);
    }
  }

  // Per-segment acknowledgement, echoing the tx timestamp.
  Packet ack = net::make_ack(data, now);
  const Time ser = sim::serialization_ns(ack.size_bytes, line_gbps_);
  // control class skips pacing; drain_wait defers the ACK to DMA completion
  net_.deliver(id(), 0, std::move(ack), ser + drain_wait);

  if (data.ecn_ce) {
    Time& last = last_cnp_[data.flow_id];
    if (last == 0 || now - last >= cc_.cnp_pacing_ns) {
      last = now;
      Packet cnp = net::make_cnp(data);
      const Time cser = sim::serialization_ns(cnp.size_bytes, line_gbps_);
      net_.deliver(id(), 0, std::move(cnp), cser);
    }
  }
}

void Host::on_ack(const Packet& ack) {
  FlowState* f = flow_by_id(ack.flow_id);
  if (f == nullptr) return;
  const Time now = net_.simu().now();
  const Time rtt = now - ack.tx_time;

  FlowStats& st = stats_[flow_index_[f->id]];
  st.pkts_acked += 1;
  st.last_ack = now;
  if (st.min_rtt == 0 || rtt < st.min_rtt) st.min_rtt = rtt;
  st.max_rtt = std::max(st.max_rtt, rtt);
  if (ack.last_of_flow && st.finish < 0) st.finish = now;

  if (f->cc_enabled && cc_.algo == CcAlgorithm::kTimely) {
    timely_update(*f, rtt);
  }
  if (rtt_cb_) rtt_cb_(f->tuple, rtt, now);
}

void Host::timely_update(FlowState& f, Time rtt) {
  // Simplified TIMELY: outside the [t_low, t_high] band the absolute RTT
  // decides; inside it the normalized gradient does.
  const Time prev = f.prev_rtt == 0 ? rtt : f.prev_rtt;
  f.prev_rtt = rtt;
  if (rtt < cc_.timely_t_low) {
    f.rate_gbps = std::min(f.limit_gbps, f.rate_gbps + cc_.timely_add_gbps);
    return;
  }
  if (rtt > cc_.timely_t_high) {
    f.rate_gbps = std::max(
        0.05, f.rate_gbps *
                  (1.0 - cc_.timely_beta *
                             (1.0 - static_cast<double>(cc_.timely_t_high) /
                                        static_cast<double>(rtt))));
    return;
  }
  const double gradient =
      static_cast<double>(rtt - prev) /
      static_cast<double>(std::max<Time>(cc_.timely_t_low, 1));
  if (gradient <= 0) {
    f.rate_gbps = std::min(f.limit_gbps, f.rate_gbps + cc_.timely_add_gbps);
  } else {
    f.rate_gbps =
        std::max(0.05, f.rate_gbps * (1.0 - cc_.timely_beta *
                                                std::min(1.0, gradient)));
  }
}

void Host::on_nack(const Packet& nack) {
  FlowState* f = flow_by_id(nack.flow_id);
  if (f == nullptr) return;
  // Go-back-N: resume transmission from the receiver's expected sequence
  // (ignore stale NACKs for data we already rewound past).
  if (nack.seq < f->next_seq) rewind_flow(*f, nack.seq);
}

void Host::rewind_flow(FlowState& f, std::uint32_t to_seq) {
  const std::uint32_t delivered =
      stats_[flow_index_[f.id]].pkts_acked;
  to_seq = std::max(to_seq, delivered);  // never re-send delivered prefix
  if (to_seq >= f.next_seq) return;
  retransmissions_ += f.next_seq - to_seq;
  stats_[flow_index_[f.id]].retx_pkts += f.next_seq - to_seq;
  f.next_seq = to_seq;
  f.sent_bytes = static_cast<std::int64_t>(to_seq) * net::kMtuBytes;
  if (f.sent_bytes > f.total_bytes) f.sent_bytes = f.total_bytes;
  f.done_sending = false;
  try_send();
}

void Host::arm_rto(std::uint64_t flow_id) {
  FlowState* f = flow_by_id(flow_id);
  if (f == nullptr || f->rto_armed) return;
  f->rto_armed = true;
  net_.simu().schedule(cc_.retransmit_timeout_ns, [this, flow_id]() {
    FlowState* fs = flow_by_id(flow_id);
    if (fs == nullptr) return;
    fs->rto_armed = false;
    FlowStats& st = stats_[flow_index_[fs->id]];
    if (st.complete()) return;
    if (fs->done_sending && st.pkts_acked < fs->total_pkts) {
      // Tail loss: the final segments (or their ACKs) vanished.
      rewind_flow(*fs, st.pkts_acked);
    }
    if (!st.complete()) arm_rto(flow_id);
  });
}

void Host::on_cnp(const Packet& cnp) {
  FlowState* f = flow_by_id(cnp.flow_id);
  if (f == nullptr || !f->cc_enabled) return;
  if (cc_.algo != CcAlgorithm::kDcqcn) return;  // CNPs drive DCQCN only
  // DCQCN multiplicative decrease.
  f->target_gbps = f->rate_gbps;
  f->alpha = (1 - cc_.g) * f->alpha + cc_.g;
  f->rate_gbps = std::max(0.05, f->rate_gbps * (1 - f->alpha / 2));
  f->recovery_stage = 0;
  f->cnp_seen_this_period = true;
  if (!f->timer_armed) {
    f->timer_armed = true;
    const std::uint64_t fid = f->id;
    net_.simu().schedule(cc_.timer_ns, [this, fid]() { dcqcn_timer(fid); });
  }
}

void Host::dcqcn_timer(std::uint64_t flow_id) {
  FlowState* f = flow_by_id(flow_id);
  if (f == nullptr || f->done_sending) return;
  if (!f->cnp_seen_this_period) {
    f->alpha *= (1 - cc_.g);
    if (f->recovery_stage < cc_.fast_recovery_rounds) {
      f->recovery_stage += 1;  // fast recovery toward target
    } else {
      f->target_gbps =
          std::min(f->limit_gbps, f->target_gbps + cc_.additive_increase_gbps);
    }
    f->rate_gbps = std::min(f->limit_gbps, (f->rate_gbps + f->target_gbps) / 2);
  }
  f->cnp_seen_this_period = false;
  if (f->rate_gbps < f->limit_gbps * 0.999) {
    net_.simu().schedule(cc_.timer_ns,
                         [this, flow_id]() { dcqcn_timer(flow_id); });
  } else {
    f->timer_armed = false;
  }
}

void Host::inject_pfc(Time start, Time stop, Time period,
                      std::uint32_t quanta, int data_class) {
  auto tick = [this, start, stop, period, quanta, data_class]() {
    if (start >= stop) return;
    ++pfc_injected_;
    net_.log_pfc({net_.simu().now(), id(), 0, quanta, true});
    const Time ser = sim::serialization_ns(net::kPfcFrameBytes, line_gbps_);
    net_.deliver(id(), 0,
                 net::make_pfc(static_cast<std::uint8_t>(
                                   static_cast<int>(net::TrafficClass::kData) +
                                   data_class),
                               quanta),
                 ser);
    inject_pfc(start + period, stop, period, quanta, data_class);
  };
  // Widest capture list a device schedules (40 bytes) — must stay inline.
  static_assert(sim::InlineAction::fits_inline<decltype(tick)>());
  net_.simu().schedule_at(start, std::move(tick));
}

Host::FlowState* Host::flow_by_id(std::uint64_t id) {
  const auto it = flow_index_.find(id);
  return it == flow_index_.end() ? nullptr : &flows_[it->second];
}

}  // namespace hawkeye::device
