#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "device/network.hpp"
#include "fault/fault.hpp"
#include "net/packet.hpp"
#include "net/routing.hpp"
#include "sim/random.hpp"
#include "telemetry/engine.hpp"

namespace hawkeye::device {

class Switch;

/// Installed by the collect module: receives Hawkeye polling packets so the
/// in-data-plane causality analysis (paper §3.4, Figure 6) can decide where
/// to forward them and mirror them to the switch CPU. Switches without a
/// handler drop polling packets (non-Hawkeye switch).
class PollingHandler {
 public:
  virtual ~PollingHandler() = default;
  virtual void on_polling(Switch& sw, const net::Packet& pkt,
                          net::PortId in_port) = 0;
};

struct SwitchConfig {
  /// Number of lossless data classes (802.1Qbb priorities kData..kData+n-1).
  /// PFC state, queues and ingress accounting are all per class.
  int data_classes = 1;
  /// Per-(ingress port, class) PFC thresholds, bytes.
  std::int64_t pfc_xoff_bytes = 64 * 1024;
  std::int64_t pfc_xon_bytes = 32 * 1024;
  /// Pause duration advertised in PAUSE frames (802.1Qbb quanta).
  std::uint32_t pause_quanta = 65535;
  /// Re-advertise PAUSE while still above Xon (fraction of pause time).
  double pause_refresh_fraction = 0.5;

  /// DCQCN-style ECN marking thresholds on egress data queues, bytes.
  std::int64_t ecn_kmin_bytes = 64 * 1024;
  std::int64_t ecn_kmax_bytes = 256 * 1024;
  double ecn_pmax = 0.2;

  /// Shared buffer capacity; generous so PFC (not drops) bounds occupancy.
  std::int64_t buffer_bytes = 32ll * 1024 * 1024;

  telemetry::TelemetryConfig telemetry;
};

/// Output-queued lossless switch with per-ingress-port PFC accounting —
/// the same abstraction level as the HPCC/NS-3 switch model the paper
/// simulates on.
///
/// Two egress FIFOs per port: a control class (ACK/CNP/polling — never
/// paused) with strict priority over the lossless data class. PFC PAUSE is
/// generated toward an upstream port when the bytes buffered from that
/// ingress exceed Xoff, and RESUME when they fall below Xon; PAUSE state
/// received from a downstream peer freezes the data FIFO of that egress
/// port. Every enqueue/transmit feeds the Hawkeye TelemetryEngine.
class Switch : public Device {
 public:
  Switch(Network& net, const net::Routing& routing, net::NodeId id,
         SwitchConfig cfg);

  void receive(net::Packet pkt, net::PortId in_port) override;

  /// Reconvergence flush: drop everything queued on the withdrawn egress as
  /// link-down losses and rewind the buffer/ingress accounting, sending
  /// RESUME where an ingress falls back below Xon. Without this the dead
  /// port's frozen FIFO keeps the PFC cascade pinned and rerouted traffic
  /// upstream never un-pauses.
  void on_port_withdrawn(net::PortId port) override;

  void set_polling_handler(PollingHandler* h) { polling_handler_ = h; }

  /// Install the fault-injection substrate (nullptr => fault-free; the
  /// polling receive path then costs a single null check and draws no
  /// randomness, keeping fault-off runs byte-identical).
  void set_fault_injector(fault::FaultInjector* f) { faults_ = f; }

  telemetry::TelemetryEngine& telemetry() { return *telemetry_; }
  const telemetry::TelemetryEngine& telemetry() const { return *telemetry_; }

  const net::Routing& routing() const { return routing_; }
  Network& network() { return net_; }
  const SwitchConfig& config() const { return cfg_; }
  std::int32_t port_count() const { return port_count_; }

  /// Inject a control-class packet (polling forward, report) out `port`.
  void send_control(net::PortId port, net::Packet pkt);

  /// True if any data class of egress `port` is PAUSEd by the peer.
  bool egress_paused(net::PortId port) const;
  /// True if the given data class of egress `port` is PAUSEd.
  bool egress_paused(net::PortId port, int data_class) const;

  /// Bytes buffered that arrived via `in_port` (all classes).
  std::int64_t ingress_bytes(net::PortId in_port) const;

  std::int64_t queue_bytes(net::PortId port) const;
  std::int64_t queue_pkts(net::PortId port) const;
  std::int64_t buffered_bytes() const { return buffered_bytes_; }
  std::uint64_t pause_frames_sent() const { return pause_frames_sent_; }

 private:
  struct Queued {
    net::Packet pkt;
    net::PortId in_port = net::kInvalidPort;
    sim::Time enqueued_at = 0;
  };
  struct ClassState {
    std::deque<Queued> queue;
    std::int64_t bytes = 0;
    sim::Time paused_until = 0;     // set by received PAUSE frames
    bool pausing_upstream = false;  // (as ingress) we PAUSEd our peer
    std::int64_t ingress_bytes = 0;  // buffered bytes that arrived here
  };
  struct Port {
    std::deque<Queued> control;
    std::vector<ClassState> cls;  // one per data class
    bool tx_busy = false;
    /// A wake-up is armed for the end of the current injected link outage
    /// (keeps one event per outage per port, not one per blocked attempt).
    bool down_wake_armed = false;
  };

  int class_of(const net::Packet& pkt) const;
  void handle_polling(net::Packet pkt, net::PortId in_port);
  void enqueue(net::Packet pkt, net::PortId in_port, net::PortId out_port);
  void try_transmit(net::PortId port);
  void finish_transmit(net::PortId port, Queued&& q, sim::Time ser);
  void handle_pfc_frame(const net::Packet& pkt, net::PortId in_port);
  void send_pause(net::PortId in_port, int data_class, std::uint32_t quanta);
  void refresh_pause(net::PortId in_port, int data_class);
  void maybe_resume(net::PortId in_port, int data_class);
  bool ecn_mark(std::int64_t qbytes);
  /// Negotiated rate of the link behind `port`: the injected per-link rate
  /// override (speed mismatch / oversubscription) when one covers it, the
  /// nominal topology speed otherwise. One branch in fault-free runs.
  double effective_gbps(net::PortId port, const net::LinkSpec& link,
                        sim::Time now) const;

  Network& net_;
  const net::Routing& routing_;
  SwitchConfig cfg_;
  std::int32_t port_count_;
  std::vector<Port> ports_;
  std::int64_t buffered_bytes_ = 0;
  std::uint64_t pause_frames_sent_ = 0;
  std::unique_ptr<telemetry::TelemetryEngine> telemetry_;
  PollingHandler* polling_handler_ = nullptr;
  fault::FaultInjector* faults_ = nullptr;
  sim::Rng rng_;
};

}  // namespace hawkeye::device
