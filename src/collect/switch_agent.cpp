#include "collect/switch_agent.hpp"

#include "sim/logger.hpp"

namespace hawkeye::collect {

using net::Packet;
using net::PollingFlag;
using net::PortId;

namespace {
std::uint64_t dedup_key(net::NodeId sw, const net::FiveTuple& victim) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(sw)) << 32) ^
         (victim.hash() & 0xffffffffull);
}

PollingFlag combine(bool victim_bit, bool pfc_bit) {
  return static_cast<PollingFlag>((victim_bit ? 0b01 : 0) |
                                  (pfc_bit ? 0b10 : 0));
}
}  // namespace

void HawkeyeSwitchAgent::forward(device::Switch& sw, Packet pkt, PortId out,
                                 PollingFlag flag) {
  pkt.poll_flag = flag;
  pkt.poll_hops += 1;
  collector_.count_polling_packet(pkt.probe_id, pkt.size_bytes);
  sw.send_control(out, std::move(pkt));
}

void HawkeyeSwitchAgent::prune_dedup(Lane& lane, sim::Time now) {
  for (auto it = lane.begin(); it != lane.end();) {
    if (now - it->second.at >= cfg_.poll_dedup_interval) {
      it = lane.erase(it);
    } else {
      ++it;
    }
  }
}

HawkeyeSwitchAgent::Lane& HawkeyeSwitchAgent::lane_of(device::Switch& sw) {
  if (lanes_.size() == 1) return lanes_[0];
  return lanes_[static_cast<std::size_t>(sw.network().shard_of(sw.id()))];
}

void HawkeyeSwitchAgent::on_polling(device::Switch& sw, const Packet& pkt,
                                    PortId in_port) {
  if (pkt.poll_flag == PollingFlag::kUseless) {
    // Table 1 flag 00: dropped by design at the first Hawkeye switch.
    sw.network().count_drop(device::DropReason::kPolling);
    return;
  }
  const sim::Time now = sw.network().simu().now();

  // Per-victim dedup: drops re-polls within the interval and terminates
  // multicast loops on deadlock cycles.
  const std::uint64_t key = dedup_key(sw.id(), pkt.victim);
  const auto flag_bits = static_cast<std::uint8_t>(pkt.poll_flag);
  Lane& lane = lane_of(sw);
  // Bound the dedup state before taking a reference into it.
  if (lane.size() >= cfg_.dedup_cache_cap) prune_dedup(lane, now);
  Seen& seen = lane[key];
  if (seen.at != 0 && now - seen.at < cfg_.poll_dedup_interval &&
      (flag_bits & ~seen.flags) == 0) {
    sim::Logger::debug("poll sw%d victim=%s dedup-drop", sw.id(),
                       pkt.victim.to_string().c_str());
    return;
  }
  if (seen.at == 0 || now - seen.at >= cfg_.poll_dedup_interval) {
    seen.flags = 0;  // stale scope: a fresh diagnosis round
  }
  seen.at = now;
  seen.flags |= flag_bits;
  sim::Logger::debug("poll sw%d in=%d flag=%d hops=%d victim=%s", sw.id(),
                     in_port, static_cast<int>(pkt.poll_flag), pkt.poll_hops,
                     pkt.victim.to_string().c_str());

  // Mirror to the switch CPU: asynchronous telemetry collection starts.
  collector_.collect_from(sw, pkt.probe_id, now);

  if (pkt.poll_hops >= cfg_.hop_limit) return;
  const auto& tele = sw.telemetry();
  const net::Topology& topo = sw.network().topo();

  // --- PFC causality multicast (flag 1x) ---
  if (net::traces_pfc_causality(pkt.poll_flag) && cfg_.trace_pfc_causality &&
      in_port >= 0) {
    std::vector<PortId> cands = tele.causal_out_ports(in_port, now);
    if (cands.empty()) {
      // The causality meters for this ingress have aged out of the epoch
      // ring (a long-frozen deadlock stops all traffic while background
      // churn recycles the epochs). Fall back to pause-status-directed
      // tracing: any egress still held down by PFC is causally suspect.
      for (PortId p = 0; p < sw.port_count(); ++p) {
        if (tele.port_paused(p, now)) cands.push_back(p);
      }
    }
    for (const PortId out : cands) {
      if (out == in_port) continue;
      const bool paused =
          tele.recent_paused_count(out, now) > 0 || tele.port_paused(out, now);
      if (!paused) continue;  // initial congestion point — recursion ends
      const net::PortRef peer = topo.peer(sw.id(), out);
      if (!peer.valid() || topo.is_host(peer.node)) continue;  // host end
      forward(sw, pkt, out, PollingFlag::kPfcCausality);
    }
  }

  // --- victim-path unicast (flag x1) ---
  if (net::traces_victim_path(pkt.poll_flag)) {
    const PortId out = sw.routing().egress_port(sw.id(), pkt.victim);
    if (out != net::kInvalidPort) {
      const bool victim_paused =
          tele.recent_flow_paused_count(pkt.victim, now) > 0 ||
          tele.recent_paused_count(out, now) > 0 ||
          tele.port_paused(out, now);
      const bool pfc_bit = victim_paused && cfg_.trace_pfc_causality;
      forward(sw, pkt, out, combine(true, pfc_bit));
    }
  }
}

}  // namespace hawkeye::collect
