#pragma once

#include <atomic>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "collect/episode.hpp"
#include "device/switch.hpp"
#include "fault/fault.hpp"
#include "sim/simulator.hpp"

namespace hawkeye::collect {

/// Controller-assisted telemetry collection (paper §3.4). One logical
/// object models every per-switch CPU: when a switch mirrors a polling
/// packet, the controller snapshots the telemetry registers (BF_Runtime
/// REGISTER_SYNC DMA in the paper), filters zero-value slots, batches
/// records into MTU-sized report packets and attributes the data to the
/// triggering episode. Collections on one switch are rate-limited so
/// concurrent polling packets do not duplicate data.
///
/// Sharded-simulation contract: all per-switch state (last collect time,
/// cached report, evicted records) is NodeId-indexed and only ever touched
/// from the shard that owns that switch, so the snapshot hot path stays
/// lock-free. Episode state is shared across shards, so every episode
/// mutation goes through Simulator::defer_control — executed inline in
/// exclusive contexts (unsharded runs, sequential windows, barriers) and
/// deferred to the deterministic round barrier during parallel rounds.
class Collector {
 public:
  struct Config {
    sim::Time switch_collect_interval = sim::us(400);
    std::int32_t report_mtu_bytes = net::kReportMtuBytes;
    /// Data-plane export alternative is bounded by PHV capacity (~200 B
    /// per generated packet) — the Fig 14(b) comparison.
    std::int32_t dataplane_phv_bytes = 192;
    /// Measured CPU poll cost (§4.5): ~40 ms per epoch of 64 ports x 4096
    /// flows (80 ms for 2 epochs, 120 ms for 4). Latency accounting only.
    sim::Time dma_per_epoch = sim::ms(40);
    /// The registers keep counting while the CPU sets up the DMA read; the
    /// exported snapshot therefore reflects the switch state a little
    /// *after* the mirror, not the instant of the polling packet. This
    /// grace window lets a just-detected anomaly finish developing in the
    /// telemetry before the analyzer reads it.
    sim::Time snapshot_delay = sim::us(150);
  };

  Collector() : Collector(Config{}) {}
  explicit Collector(const Config& cfg) : cfg_(cfg) {}

  /// With a simulator attached, register snapshots happen
  /// `config().snapshot_delay` after the mirror (asynchronous CPU read);
  /// without one they are taken synchronously (unit-test convenience).
  /// On a sharded simulator this also arms the per-round dedup lanes.
  void attach_simulator(sim::Simulator& simu);

  /// Install the fault-injection substrate (nullptr => fault-free). DMA
  /// snapshot failures and stale reads are decided here, at the point the
  /// paper's BF_Runtime REGISTER_SYNC would run.
  void set_fault_injector(fault::FaultInjector* f) { faults_ = f; }

  const Config& config() const { return cfg_; }

  /// Wire a switch in: installs the flow-eviction sink and remembers the
  /// pointer for full-network polling.
  void register_switch(device::Switch& sw);

  /// Begin an episode (called by the detection agent on trigger; exclusive
  /// context only — callers defer through the control lane when sharded).
  Episode& open_episode(std::uint64_t probe_id, const net::FiveTuple& victim,
                        sim::Time now);

  /// Switch `sw` mirrored a polling packet of `probe_id`: snapshot its
  /// telemetry into the episode unless collected recently.
  void collect_from(device::Switch& sw, std::uint64_t probe_id, sim::Time now);

  /// Full-polling baseline: snapshot every registered switch.
  void collect_all(std::uint64_t probe_id, sim::Time now);

  /// Self-healing repair path: snapshot ONLY the expected switches the
  /// episode has not heard from yet. Strictly targeted — an episode with
  /// no expectation has, by definition, nothing missing, so the re-poll
  /// round is a no-op instead of degenerating into a full-fabric dump
  /// (which would wreck the Fig 9 re-poll byte accounting).
  void collect_missing(std::uint64_t probe_id, sim::Time now);

  /// Polling-packet accounting (invoked by agents when they emit one).
  void count_polling_packet(std::uint64_t probe_id, std::int32_t bytes);

  Episode* episode(std::uint64_t probe_id);
  const std::vector<std::uint64_t>& episode_order() const { return order_; }

  /// Switch-CPU snapshot attempts issued (before dedup/fault filtering) —
  /// the "how many DMA reads did healing really cost" observable the
  /// targeted-re-poll tests assert on.
  std::uint64_t snapshot_requests() const {
    return snapshot_requests_.load(std::memory_order_relaxed);
  }

 private:
  /// `mirror` is when the polling packet was mirrored to the CPU; the
  /// snapshot runs later (`now`). Epoch records that *started* after
  /// `mirror` + grace can only exist because the ring recycled a slot while
  /// the DMA was in flight — they are rejected as stale.
  void do_collect(device::Switch& sw, std::uint64_t probe_id, sim::Time now,
                  sim::Time mirror);

  /// True if a commit for (probe, sw) is already staged on the current
  /// shard's lane this round (parallel rounds only). Records when absent.
  bool stage_pending(std::uint64_t probe_id, net::NodeId id);

  Config cfg_;
  sim::Simulator* simu_ = nullptr;
  fault::FaultInjector* faults_ = nullptr;
  std::unordered_map<std::uint64_t, Episode> episodes_;
  std::vector<std::uint64_t> order_;
  std::vector<device::Switch*> switches_;
  std::atomic<std::uint64_t> snapshot_requests_{0};
  // Per-switch snapshot cache, NodeId-indexed (only the owning shard reads
  // or writes slot `id`, so no synchronization is needed). last_collect_
  // uses -1 as the "never collected" sentinel.
  std::vector<sim::Time> last_collect_;
  std::vector<telemetry::SwitchTelemetryReport> last_report_;
  std::vector<std::vector<telemetry::FlowRecord>> evicted_;
  // Per-shard (probe, switch) commits staged this round; cleared by the
  // round hook. Empty (and unused) on unsharded simulators, where
  // defer_control commits inline and has_report alone dedups.
  std::vector<std::vector<std::pair<std::uint64_t, net::NodeId>>> pending_;
};

}  // namespace hawkeye::collect
