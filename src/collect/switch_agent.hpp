#pragma once

#include <cstdint>
#include <unordered_map>

#include "collect/collector.hpp"
#include "device/switch.hpp"

namespace hawkeye::collect {

/// The in-data-plane half of Hawkeye collection (paper §3.4, Figure 6):
/// receives polling packets, mirrors them to the switch CPU (Collector) and
/// performs the line-rate PFC causality analysis that decides which
/// neighbours the polling packet propagates to.
///
/// * flag 01 (victim path): unicast along the victim flow's route; if the
///   victim is PFC-paused at this hop's egress, the high flag bit is set so
///   the downstream switch analyzes its PFC causality.
/// * flag 1x (PFC causality): multicast-prune over the Figure 3 causality
///   structure — for every egress port with recent traffic from the polling
///   packet's ingress port AND PFC pause activity, emit a 10-flagged clone.
///   Ports feeding hosts or showing no pause terminate the recursion (host
///   injection or initial flow contention, respectively — both already
///   captured by this switch's mirrored telemetry).
///
/// Per-victim dedup bounds the work and, critically, terminates the
/// multicast when the PFC spreading path is a deadlock cycle.
class HawkeyeSwitchAgent : public device::PollingHandler {
 public:
  struct Config {
    sim::Time poll_dedup_interval = sim::us(500);
    std::int32_t hop_limit = 32;
    /// false => the "victim-only" baseline of §4.2/§4.3: polling packets
    /// never leave the victim flow path.
    bool trace_pfc_causality = true;
    /// Dedup-state bound: once the map holds this many (switch, victim)
    /// entries, entries older than `poll_dedup_interval` are evicted before
    /// inserting. Stale entries are semantically absent (a fresh round
    /// resets their scope anyway), so pruning never changes behaviour; it
    /// only stops a long-lived agent from growing without bound.
    std::size_t dedup_cache_cap = std::size_t{1} << 16;
  };

  explicit HawkeyeSwitchAgent(Collector& collector)
      : HawkeyeSwitchAgent(collector, Config{}) {}
  HawkeyeSwitchAgent(Collector& collector, const Config& cfg)
      : collector_(collector), cfg_(cfg) {}

  void on_polling(device::Switch& sw, const net::Packet& pkt,
                  net::PortId in_port) override;

  /// Live dedup-cache entries (tests assert the bound holds).
  std::size_t dedup_entries() const { return last_seen_.size(); }

 private:
  void forward(device::Switch& sw, net::Packet pkt, net::PortId out,
               net::PollingFlag flag);
  void prune_dedup(sim::Time now);

  Collector& collector_;
  Config cfg_;
  struct Seen {
    sim::Time at = 0;
    std::uint8_t flags = 0;  // union of flag bits already processed
  };
  /// (switch, victim-tuple-hash) -> last polling time + scope. A packet is
  /// deduplicated only if every tracing bit it carries was already handled
  /// here recently — a victim-path packet must not be dropped because a
  /// PFC-causality clone raced ahead of it.
  std::unordered_map<std::uint64_t, Seen> last_seen_;
};

}  // namespace hawkeye::collect
