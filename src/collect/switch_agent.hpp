#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "collect/collector.hpp"
#include "device/switch.hpp"

namespace hawkeye::collect {

/// The in-data-plane half of Hawkeye collection (paper §3.4, Figure 6):
/// receives polling packets, mirrors them to the switch CPU (Collector) and
/// performs the line-rate PFC causality analysis that decides which
/// neighbours the polling packet propagates to.
///
/// * flag 01 (victim path): unicast along the victim flow's route; if the
///   victim is PFC-paused at this hop's egress, the high flag bit is set so
///   the downstream switch analyzes its PFC causality.
/// * flag 1x (PFC causality): multicast-prune over the Figure 3 causality
///   structure — for every egress port with recent traffic from the polling
///   packet's ingress port AND PFC pause activity, emit a 10-flagged clone.
///   Ports feeding hosts or showing no pause terminate the recursion (host
///   injection or initial flow contention, respectively — both already
///   captured by this switch's mirrored telemetry).
///
/// Per-victim dedup bounds the work and, critically, terminates the
/// multicast when the PFC spreading path is a deadlock cycle.
///
/// Sharded-simulation contract: the dedup map is split into per-shard
/// lanes indexed by the *switch's* owning shard — on_polling for a switch
/// executes either on that shard (normal packet arrival) or inside an
/// exclusive window (control-shard injected probes), so each lane is
/// single-threaded. Call prepare() once, after the simulator is sharded
/// and before the run, to size the lanes; unsharded runs keep one lane.
class HawkeyeSwitchAgent : public device::PollingHandler {
 public:
  struct Config {
    sim::Time poll_dedup_interval = sim::us(500);
    std::int32_t hop_limit = 32;
    /// false => the "victim-only" baseline of §4.2/§4.3: polling packets
    /// never leave the victim flow path.
    bool trace_pfc_causality = true;
    /// Dedup-state bound: once a lane holds this many (switch, victim)
    /// entries, entries older than `poll_dedup_interval` are evicted before
    /// inserting. Stale entries are semantically absent (a fresh round
    /// resets their scope anyway), so pruning never changes behaviour; it
    /// only stops a long-lived agent from growing without bound.
    std::size_t dedup_cache_cap = std::size_t{1} << 16;
  };

  explicit HawkeyeSwitchAgent(Collector& collector)
      : HawkeyeSwitchAgent(collector, Config{}) {}
  HawkeyeSwitchAgent(Collector& collector, const Config& cfg)
      : collector_(collector), cfg_(cfg), lanes_(1) {}

  /// Pre-size the dedup lanes for a sharded run (one per calendar). Lazy
  /// growth would be a cross-thread resize race, so it is explicit.
  void prepare(std::size_t lanes) {
    lanes_.resize(std::max<std::size_t>(1, lanes));
  }

  void on_polling(device::Switch& sw, const net::Packet& pkt,
                  net::PortId in_port) override;

  /// Live dedup-cache entries summed over lanes (tests assert the bound
  /// holds per lane).
  std::size_t dedup_entries() const {
    std::size_t n = 0;
    for (const auto& lane : lanes_) n += lane.size();
    return n;
  }

 private:
  struct Seen {
    sim::Time at = 0;
    std::uint8_t flags = 0;  // union of flag bits already processed
  };
  /// (switch, victim-tuple-hash) -> last polling time + scope. A packet is
  /// deduplicated only if every tracing bit it carries was already handled
  /// here recently — a victim-path packet must not be dropped because a
  /// PFC-causality clone raced ahead of it.
  using Lane = std::unordered_map<std::uint64_t, Seen>;

  void forward(device::Switch& sw, net::Packet pkt, net::PortId out,
               net::PollingFlag flag);
  void prune_dedup(Lane& lane, sim::Time now);
  Lane& lane_of(device::Switch& sw);

  Collector& collector_;
  Config cfg_;
  std::vector<Lane> lanes_;
};

}  // namespace hawkeye::collect
