#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "net/types.hpp"
#include "sim/time.hpp"
#include "telemetry/report.hpp"

namespace hawkeye::collect {

/// One diagnosis episode: everything gathered between a detection-agent
/// trigger and the offline analysis. Also carries the overhead accounting
/// the Fig 9/11/14 benches report.
struct Episode {
  std::uint64_t probe_id = 0;
  net::FiveTuple victim;
  sim::Time triggered_at = 0;

  /// Telemetry reports keyed by switch. Stored as a NodeId-sorted flat
  /// vector instead of a node-based map: episode merge and coverage checks
  /// iterate this container on the hot path, and the sorted order keeps
  /// iteration deterministic (the old std::map contract).
  using ReportEntry = std::pair<net::NodeId, telemetry::SwitchTelemetryReport>;
  std::vector<ReportEntry> reports;

  bool has_report(net::NodeId id) const { return find_report(id) != nullptr; }
  const telemetry::SwitchTelemetryReport* find_report(net::NodeId id) const {
    const auto it = lower_bound_report(id);
    return it != reports.end() && it->first == id ? &it->second : nullptr;
  }
  /// Insert `rep` for `id` unless present; returns false on duplicate.
  bool put_report(net::NodeId id, telemetry::SwitchTelemetryReport rep) {
    const auto it = lower_bound_report(id);
    if (it != reports.end() && it->first == id) return false;
    reports.insert(it, ReportEntry{id, std::move(rep)});
    return true;
  }
  /// Mutable entry for `id`, default-inserted if absent (the old
  /// map::operator[] shape, used by fixtures and the episode merge).
  telemetry::SwitchTelemetryReport& report_ref(net::NodeId id) {
    auto it = lower_bound_report(id);
    if (it == reports.end() || it->first != id) {
      it = reports.insert(it, ReportEntry{id, {}});
    }
    return it->second;
  }

  // --- collection-health tracking (self-healing pipeline) ---
  /// Switches the collection is expected to hear from: the victim route's
  /// switch set, filled in at trigger time. Coverage below 100% after the
  /// retry budget is what marks an episode degraded.
  std::vector<net::NodeId> expected_switches;
  /// net::Routing::epoch() at the moment expected_switches was derived.
  /// When routing reconverges mid-episode the epochs diverge and the
  /// detection agent re-derives the contract against the new path.
  std::uint64_t routing_epoch = 0;
  /// The victim's route changed (routing reconverged) while this episode
  /// was being collected — its expected-hop set was re-derived at least
  /// once, and hop-level evidence may span two paths.
  bool path_churned = false;
  std::uint32_t repolls = 0;            // self-healing re-poll rounds issued
  std::uint32_t failed_collections = 0; // DMA snapshots that never completed
  std::uint32_t stale_epochs_rejected = 0;  // ring-overwrite records dropped
  /// Set when the retry budget is exhausted with coverage still incomplete;
  /// the diagnosis for this episode is best-effort.
  bool degraded = false;

  // --- overhead accounting ---
  std::uint64_t polling_packets = 0;   // polling packets forwarded in-band
  std::int64_t polling_bytes = 0;
  std::int64_t telemetry_bytes = 0;    // zero-filtered, serialized
  std::int64_t raw_telemetry_bytes = 0;  // full register dump equivalent
  std::uint64_t report_packets = 0;      // MTU-batched CPU reports
  std::uint64_t dataplane_report_packets = 0;  // PHV-limited dp export
  sim::Time collection_latency = 0;    // modelled CPU DMA latency

  /// Expected switches that actually reported.
  std::size_t covered_expected() const {
    std::size_t n = 0;
    for (const net::NodeId id : expected_switches) {
      if (has_report(id)) ++n;
    }
    return n;
  }
  /// Fraction of the expected hops covered; 1.0 when nothing was expected
  /// (pre-trigger episodes, unit tests without routing).
  double coverage() const {
    if (expected_switches.empty()) return 1.0;
    return static_cast<double>(covered_expected()) /
           static_cast<double>(expected_switches.size());
  }
  bool coverage_complete() const {
    return covered_expected() == expected_switches.size();
  }

  std::vector<net::NodeId> collected_switches() const {
    std::vector<net::NodeId> out;
    out.reserve(reports.size());
    for (const auto& [sw, rep] : reports) out.push_back(sw);
    return out;
  }

 private:
  std::vector<ReportEntry>::const_iterator lower_bound_report(
      net::NodeId id) const {
    return std::lower_bound(
        reports.begin(), reports.end(), id,
        [](const ReportEntry& e, net::NodeId key) { return e.first < key; });
  }
  std::vector<ReportEntry>::iterator lower_bound_report(net::NodeId id) {
    return std::lower_bound(
        reports.begin(), reports.end(), id,
        [](const ReportEntry& e, net::NodeId key) { return e.first < key; });
  }
};

}  // namespace hawkeye::collect
