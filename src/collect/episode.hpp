#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "net/types.hpp"
#include "sim/time.hpp"
#include "telemetry/report.hpp"

namespace hawkeye::collect {

/// One diagnosis episode: everything gathered between a detection-agent
/// trigger and the offline analysis. Also carries the overhead accounting
/// the Fig 9/11/14 benches report.
struct Episode {
  std::uint64_t probe_id = 0;
  net::FiveTuple victim;
  sim::Time triggered_at = 0;

  /// Telemetry reports keyed by switch (ordered for determinism).
  std::map<net::NodeId, telemetry::SwitchTelemetryReport> reports;

  // --- overhead accounting ---
  std::uint64_t polling_packets = 0;   // polling packets forwarded in-band
  std::int64_t polling_bytes = 0;
  std::int64_t telemetry_bytes = 0;    // zero-filtered, serialized
  std::int64_t raw_telemetry_bytes = 0;  // full register dump equivalent
  std::uint64_t report_packets = 0;      // MTU-batched CPU reports
  std::uint64_t dataplane_report_packets = 0;  // PHV-limited dp export
  sim::Time collection_latency = 0;    // modelled CPU DMA latency

  std::vector<net::NodeId> collected_switches() const {
    std::vector<net::NodeId> out;
    out.reserve(reports.size());
    for (const auto& [sw, rep] : reports) out.push_back(sw);
    return out;
  }
};

}  // namespace hawkeye::collect
