#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "collect/collector.hpp"
#include "device/host.hpp"
#include "net/routing.hpp"

namespace hawkeye::collect {

/// Host-based anomaly-driven detection agent (paper §3.4; BlueField-3 PCC
/// prototype in §3.6). Monitors per-flow RTT samples from the host RNIC;
/// when a sample exceeds `threshold_factor` x the flow's unloaded baseline
/// RTT — or when an active flow stops receiving ACKs entirely (the deadlock
/// case, where no RTT sample can exist) — it emits a polling packet
/// carrying the victim 5-tuple and opens a diagnosis episode.
///
/// Sharded-simulation contract: one logical agent object still models the
/// per-host agents, but its mutable caches are split into per-shard lanes
/// (a host's RTT callback runs on that host's shard) and probe ids are
/// allocated per source host — (node+1) << 32 | per-host counter — so ids
/// are unique without cross-shard coordination and independent of shard
/// count. Episode bookkeeping is shared state and goes through
/// Simulator::defer_control; the periodic stall scan and the coverage
/// checks run as control-shard events (exclusive access by construction).
class DetectionAgent {
 public:
  struct Config {
    /// Detection threshold as a multiple of baseline RTT (the paper sweeps
    /// 200%–500%, i.e. factors 2.0–5.0).
    double threshold_factor = 3.0;
    /// Re-trigger suppression per victim flow.
    sim::Time flow_dedup_interval = sim::us(400);
    /// Period of the ACK-stall scan (deadlock/storm detection).
    sim::Time stall_scan_period = sim::us(50);
    /// A flow is stalled when unACKed for threshold_factor x baseline RTT,
    /// but at least this long (guards tiny-RTT flows).
    sim::Time min_stall = sim::us(40);
    /// Fabric-scale trigger calibration: benign-congestion allowance per
    /// route hop (ns), ADDED to the factor x baseline test. The baseline is
    /// pure propagation + serialization, so on a large fabric — long paths,
    /// many flows per core link — transient background queueing alone
    /// inflates RTT past a small multiple of it: each extra hop is another
    /// independent chance of landing behind a benign burst, and the noise
    /// floor grows with hop count while the baseline's multiple does not.
    /// A genuine anomaly still clears the calibrated threshold by an order
    /// of magnitude (a paused or incast-saturated port holds packets for
    /// hundreds of microseconds). 0 (the default) disables calibration:
    /// the test is exactly the paper's factor x baseline and fault-free
    /// traces stay byte-identical.
    sim::Time hop_noise_headroom = 0;
    /// true => full-polling baseline: no polling packets; the controller
    /// snapshots every switch on trigger.
    bool full_polling = false;

    /// Retransmission-counter trigger (fleet-ops detection): during the
    /// stall scan, a flow whose RNIC retransmit counter grew by at least
    /// this many packets since the previous scan opens an episode. NACK
    /// -driven go-back-N recovers a corrupting link within ~1 RTT, so a
    /// degraded cable often shows neither an RTT spike nor an ACK stall —
    /// the retransmit counter is the only host-visible symptom. 0 (the
    /// default) disables the check entirely: no cache is touched and
    /// fault-free traces stay byte-identical.
    std::uint32_t retx_trigger_pkts = 0;

    /// Self-healing collection: after a trigger, check expected-hop
    /// coverage `repoll_timeout` later; while incomplete, re-poll with the
    /// timeout doubling per round (capped), up to `max_repolls` rounds.
    /// An episode still short of full coverage when the budget runs out is
    /// marked `degraded`. 0 disables the check entirely — no extra events
    /// are scheduled, keeping fault-free runs byte-identical.
    std::uint32_t max_repolls = 0;
    /// First coverage-check delay. Must exceed the switch agents'
    /// poll_dedup_interval, or the re-poll is dedup-dropped at the covered
    /// prefix of the path before it can reach the gap.
    sim::Time repoll_timeout = sim::us(600);
    sim::Time repoll_backoff_cap = sim::ms(2);
    /// Re-poll rounds inject the probe at the first uncovered hop instead
    /// of resending the whole victim-path probe from the source NIC — the
    /// covered prefix is not re-traversed, so re-poll bytes scale with the
    /// gap, not the path (Fig 9 metric). false restores the PR 2 behaviour
    /// (full-path resend), kept for A/B measurement.
    bool targeted_repoll = true;

    /// Bounds for the per-flow trigger-dedup and baseline-RTT caches: the
    /// agent outlives any single episode, so without a cap a long-running
    /// host with ephemeral ports grows these maps forever. Applied per
    /// shard lane (the unsharded runs have exactly one lane).
    std::size_t trigger_cache_cap = std::size_t{1} << 16;
    std::size_t baseline_cache_cap = std::size_t{1} << 16;
  };

  using TriggerHook =
      std::function<void(const net::FiveTuple&, std::uint64_t probe_id,
                         sim::Time now)>;

  DetectionAgent(device::Network& net, const net::Routing& routing,
                 Collector& collector, Config cfg);

  /// Attach to a host: subscribes to its RTT samples and includes its flows
  /// in the stall scan. (One logical agent object models the per-host
  /// agents; state is keyed per flow.)
  void attach(device::Host& host);

  /// Start the periodic stall scan (idempotent). The scan reads every
  /// host's flow table, so on a sharded simulator it runs as a
  /// control-shard event.
  void start();

  void set_trigger_hook(TriggerHook hook) { hook_ = std::move(hook); }

  /// Install the fault-injection substrate (nullptr => fault-free). The
  /// agent only consumes RTT jitter; everything else acts on the fabric.
  void set_fault_injector(fault::FaultInjector* f) { faults_ = f; }

  /// Cache sizes summed over shard lanes (tests assert the bounds hold).
  std::size_t trigger_cache_entries() const {
    std::size_t n = 0;
    for (const Lane& l : lanes_) n += l.last_trigger.size();
    return n;
  }
  std::size_t baseline_cache_entries() const {
    std::size_t n = 0;
    for (const Lane& l : lanes_) n += l.baseline_cache.size();
    return n;
  }

  /// Unloaded baseline RTT of a flow: propagation + store-and-forward
  /// serialization along its route, both directions.
  sim::Time baseline_rtt(const net::FiveTuple& flow) const;

  /// The calibrated trigger threshold for a flow: threshold_factor x
  /// baseline RTT plus the fabric-scale noise headroom (hop_noise_headroom
  /// x one-way hop count). With headroom 0 this is exactly the paper's
  /// factor x baseline test. Exposed for calibration unit tests.
  sim::Time trigger_threshold(const net::FiveTuple& flow) const;

  std::uint64_t triggers() const {
    return triggers_.load(std::memory_order_relaxed);
  }

 private:
  /// Per-shard mutable caches. The baseline cache is pure memoization and
  /// is indexed by the *executing* shard; the trigger-dedup map is indexed
  /// by the victim source host's shard so the RTT path and the (exclusive)
  /// stall scan agree on which lane owns a flow.
  /// Memoized unloaded-RTT baseline plus the one-way hop count it was
  /// derived from (the hop count scales the noise-headroom calibration).
  struct Baseline {
    sim::Time rtt = 0;
    std::uint32_t hops = 0;
  };

  struct Lane {
    std::unordered_map<net::FiveTuple, sim::Time> last_trigger;
    std::unordered_map<net::FiveTuple, Baseline> baseline_cache;
    /// Routing epoch the baseline cache was filled under; a mismatch with
    /// routing_.epoch() (reconvergence happened) flushes the cache.
    std::uint64_t baseline_epoch = 0;
  };

  Baseline baseline(const net::FiveTuple& flow) const;
  void on_rtt(const net::FiveTuple& flow, sim::Time rtt, sim::Time now);
  void stall_scan();
  void trigger(const net::FiveTuple& victim, sim::Time now);
  /// Shard-count-independent probe id: (src host node + 1) << 32 | per-host
  /// sequence number. `src` may be kInvalidNode (unit tests); those draws
  /// use the overflow slot past the last real node.
  std::uint64_t alloc_probe_id(net::NodeId src);
  std::size_t trigger_lane(net::NodeId src) const;
  void emit_poll(const net::FiveTuple& victim, std::uint64_t probe_id);
  void emit_targeted_poll(const Episode& ep, std::uint64_t probe_id);
  void schedule_coverage_check(std::uint64_t probe_id, std::uint32_t attempt,
                               sim::Time timeout);
  void coverage_check(std::uint64_t probe_id, std::uint32_t attempt,
                      sim::Time timeout);

  device::Network& net_;
  const net::Routing& routing_;
  Collector& collector_;
  Config cfg_;
  std::vector<device::Host*> hosts_;
  mutable std::vector<Lane> lanes_;
  /// Last-seen per-flow retransmit counters (retx_trigger_pkts > 0 only).
  /// Touched exclusively by the control-shard stall scan.
  std::unordered_map<net::FiveTuple, std::uint32_t> retx_seen_;
  std::vector<std::uint64_t> probe_seq_;  // per source host, +1 overflow slot
  TriggerHook hook_;
  fault::FaultInjector* faults_ = nullptr;
  std::atomic<std::uint64_t> triggers_{0};
  bool scanning_ = false;
};

}  // namespace hawkeye::collect
