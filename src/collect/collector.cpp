#include "collect/collector.hpp"

#include <algorithm>

namespace hawkeye::collect {

void Collector::attach_simulator(sim::Simulator& simu) {
  simu_ = &simu;
  if (simu.sharded()) {
    pending_.assign(static_cast<std::size_t>(simu.control_shard()) + 1, {});
    simu.add_round_hook([this] {
      for (auto& lane : pending_) lane.clear();
    });
  }
}

void Collector::register_switch(device::Switch& sw) {
  switches_.push_back(&sw);
  const net::NodeId id = sw.id();
  const auto need = static_cast<std::size_t>(id) + 1;
  if (last_collect_.size() < need) {
    last_collect_.resize(need, sim::Time{-1});
    last_report_.resize(need);
    evicted_.resize(need);
  }
  sw.telemetry().set_evict_sink([this, id](const telemetry::FlowRecord& rec) {
    evicted_[static_cast<std::size_t>(id)].push_back(rec);
  });
}

Episode& Collector::open_episode(std::uint64_t probe_id,
                                 const net::FiveTuple& victim, sim::Time now) {
  Episode& ep = episodes_[probe_id];
  if (ep.probe_id == 0) {
    ep.probe_id = probe_id;
    ep.victim = victim;
    ep.triggered_at = now;
    order_.push_back(probe_id);
  }
  return ep;
}

void Collector::collect_from(device::Switch& sw, std::uint64_t probe_id,
                             sim::Time now) {
  snapshot_requests_.fetch_add(1, std::memory_order_relaxed);
  sim::Time delay = cfg_.snapshot_delay;
  if (faults_ != nullptr) {
    const fault::DmaVerdict v = faults_->on_dma(sw.id(), now);
    if (v.failed) {
      // The REGISTER_SYNC never completes; the episode will notice the
      // missing hop in its coverage check and re-poll. Episode bookkeeping
      // is shared across shards, so it lands on the control lane.
      if (simu_ != nullptr) {
        simu_->defer_control([this, probe_id] {
          if (Episode* ep = episode(probe_id)) ++ep->failed_collections;
        });
      } else if (Episode* ep = episode(probe_id)) {
        ++ep->failed_collections;
      }
      return;
    }
    delay += v.extra_delay;  // stale read: snapshot lands late
  }
  if (simu_ != nullptr && delay > 0) {
    auto snapshot = [this, &sw, probe_id, mirror = now]() {
      do_collect(sw, probe_id, simu_->now(), mirror);
    };
    static_assert(sim::InlineAction::fits_inline<decltype(snapshot)>());
    simu_->schedule(delay, std::move(snapshot));
    return;
  }
  do_collect(sw, probe_id, now, now);
}

bool Collector::stage_pending(std::uint64_t probe_id, net::NodeId id) {
  if (pending_.empty()) return false;  // unsharded: inline commits dedup
  auto& lane = pending_[static_cast<std::size_t>(simu_->current_shard())];
  for (const auto& [p, n] : lane) {
    if (p == probe_id && n == id) return true;
  }
  lane.emplace_back(probe_id, id);
  return false;
}

void Collector::do_collect(device::Switch& sw, std::uint64_t probe_id,
                           sim::Time now, sim::Time mirror) {
  // Read phase — runs on the switch's own shard. Episode reads are safe
  // during parallel rounds (all episode writes happen at barriers); the
  // per-switch cache below is shard-local by construction.
  Episode* ep = episode(probe_id);
  if (ep == nullptr) return;

  const net::NodeId id = sw.id();
  const auto idx = static_cast<std::size_t>(id);
  if (ep->has_report(id)) return;  // already in this episode
  if (stage_pending(probe_id, id)) return;  // committing this round already

  telemetry::SwitchTelemetryReport rep;
  if (last_collect_[idx] >= 0 &&
      now - last_collect_[idx] < cfg_.switch_collect_interval) {
    // Duplicate-collection suppression (paper §3.4): a concurrent episode
    // already polled this switch — share its snapshot instead of issuing a
    // second CPU read.
    rep = last_report_[idx];
  } else {
    last_collect_[idx] = now;
    rep = sw.telemetry().snapshot(
        now, [&sw](net::PortId p) { return sw.queue_pkts(p); });
    if (!evicted_[idx].empty()) {
      rep.evicted = evicted_[idx];
    }
    last_report_[idx] = rep;
  }

  // Ring-overwrite rejection: an epoch that STARTED after the snapshot
  // could legitimately reflect the mirror instant means the data plane
  // recycled that ring slot while the (delayed) DMA was in flight. Its
  // counters describe post-anomaly traffic, so attributing them to this
  // episode would poison the diagnosis. The grace window admits the normal
  // asynchronous-snapshot skew plus one epoch of drift; in a fault-free run
  // nothing exceeds it.
  const sim::Time stale_limit = mirror + cfg_.snapshot_delay +
                                sw.config().telemetry.epoch.epoch_ns();
  std::uint32_t stale_rejected = 0;
  for (auto it = rep.epochs.begin(); it != rep.epochs.end();) {
    if (it->start > stale_limit) {
      ++stale_rejected;
      it = rep.epochs.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = rep.evicted.begin(); it != rep.evicted.end();) {
    if (it->epoch_start > stale_limit) {
      ++stale_rejected;
      it = rep.evicted.erase(it);
    } else {
      ++it;
    }
  }

  const std::int64_t filtered = telemetry::serialized_bytes(rep);
  const std::int64_t raw = sw.telemetry().raw_dump_bytes();
  const sim::Time dma_latency =
      cfg_.dma_per_epoch * static_cast<sim::Time>(std::max<std::size_t>(
                               rep.epochs.size(), 1));

  // Commit phase — episode mutation, staged to the deterministic barrier
  // when sharded (inline otherwise).
  auto commit = [this, probe_id, id, stale_rejected, filtered, raw,
                 dma_latency, rep = std::move(rep)]() mutable {
    Episode* e = episode(probe_id);
    if (e == nullptr) return;
    if (!e->put_report(id, std::move(rep))) return;
    e->stale_epochs_rejected += stale_rejected;
    e->telemetry_bytes += filtered;
    e->raw_telemetry_bytes += raw;
    e->report_packets += static_cast<std::uint64_t>(
        (filtered + cfg_.report_mtu_bytes - 1) / cfg_.report_mtu_bytes);
    e->dataplane_report_packets += static_cast<std::uint64_t>(
        (raw + cfg_.dataplane_phv_bytes - 1) / cfg_.dataplane_phv_bytes);
    // Per-switch CPU polls run in parallel (asynchronous, triggered within
    // an end-to-end delay of each other), so episode latency is the max.
    e->collection_latency = std::max(e->collection_latency, dma_latency);
  };
  if (simu_ != nullptr) {
    simu_->defer_control(std::move(commit));
  } else {
    commit();
  }
}

void Collector::collect_all(std::uint64_t probe_id, sim::Time now) {
  for (device::Switch* sw : switches_) collect_from(*sw, probe_id, now);
}

void Collector::collect_missing(std::uint64_t probe_id, sim::Time now) {
  Episode* ep = episode(probe_id);
  if (ep == nullptr) return;
  for (device::Switch* sw : switches_) {
    bool expected = false;
    for (const net::NodeId id : ep->expected_switches) {
      if (id == sw->id()) {
        expected = true;
        break;
      }
    }
    if (expected && !ep->has_report(sw->id())) {
      collect_from(*sw, probe_id, now);
    }
  }
}

void Collector::count_polling_packet(std::uint64_t probe_id,
                                     std::int32_t bytes) {
  auto bump = [this, probe_id, bytes] {
    if (Episode* ep = episode(probe_id)) {
      ep->polling_packets += 1;
      ep->polling_bytes += bytes;
    }
  };
  if (simu_ != nullptr) {
    simu_->defer_control(std::move(bump));
  } else {
    bump();
  }
}

Episode* Collector::episode(std::uint64_t probe_id) {
  const auto it = episodes_.find(probe_id);
  return it == episodes_.end() ? nullptr : &it->second;
}

}  // namespace hawkeye::collect
