#include "collect/collector.hpp"

#include <algorithm>

namespace hawkeye::collect {

void Collector::register_switch(device::Switch& sw) {
  switches_.push_back(&sw);
  const net::NodeId id = sw.id();
  sw.telemetry().set_evict_sink([this, id](const telemetry::FlowRecord& rec) {
    evicted_[id].push_back(rec);
  });
}

Episode& Collector::open_episode(std::uint64_t probe_id,
                                 const net::FiveTuple& victim, sim::Time now) {
  Episode& ep = episodes_[probe_id];
  if (ep.probe_id == 0) {
    ep.probe_id = probe_id;
    ep.victim = victim;
    ep.triggered_at = now;
    order_.push_back(probe_id);
  }
  return ep;
}

void Collector::collect_from(device::Switch& sw, std::uint64_t probe_id,
                             sim::Time now) {
  ++snapshot_requests_;
  sim::Time delay = cfg_.snapshot_delay;
  if (faults_ != nullptr) {
    const fault::DmaVerdict v = faults_->on_dma(sw.id(), now);
    if (v.failed) {
      // The REGISTER_SYNC never completes; the episode will notice the
      // missing hop in its coverage check and re-poll.
      if (Episode* ep = episode(probe_id)) ++ep->failed_collections;
      return;
    }
    delay += v.extra_delay;  // stale read: snapshot lands late
  }
  if (simu_ != nullptr && delay > 0) {
    auto snapshot = [this, &sw, probe_id, mirror = now]() {
      do_collect(sw, probe_id, simu_->now(), mirror);
    };
    static_assert(sim::InlineAction::fits_inline<decltype(snapshot)>());
    simu_->schedule(delay, std::move(snapshot));
    return;
  }
  do_collect(sw, probe_id, now, now);
}

void Collector::do_collect(device::Switch& sw, std::uint64_t probe_id,
                           sim::Time now, sim::Time mirror) {
  Episode* ep = episode(probe_id);
  if (ep == nullptr) return;

  const net::NodeId id = sw.id();
  if (ep->reports.count(id) > 0) return;  // already in this episode

  telemetry::SwitchTelemetryReport rep;
  if (const auto it = last_collect_.find(id);
      it != last_collect_.end() &&
      now - it->second < cfg_.switch_collect_interval) {
    // Duplicate-collection suppression (paper §3.4): a concurrent episode
    // already polled this switch — share its snapshot instead of issuing a
    // second CPU read.
    rep = last_report_[id];
  } else {
    last_collect_[id] = now;
    rep = sw.telemetry().snapshot(
        now, [&sw](net::PortId p) { return sw.queue_pkts(p); });
    if (const auto ev = evicted_.find(id); ev != evicted_.end()) {
      rep.evicted = ev->second;
    }
    last_report_[id] = rep;
  }

  // Ring-overwrite rejection: an epoch that STARTED after the snapshot
  // could legitimately reflect the mirror instant means the data plane
  // recycled that ring slot while the (delayed) DMA was in flight. Its
  // counters describe post-anomaly traffic, so attributing them to this
  // episode would poison the diagnosis. The grace window admits the normal
  // asynchronous-snapshot skew plus one epoch of drift; in a fault-free run
  // nothing exceeds it.
  const sim::Time stale_limit = mirror + cfg_.snapshot_delay +
                                sw.config().telemetry.epoch.epoch_ns();
  for (auto it = rep.epochs.begin(); it != rep.epochs.end();) {
    if (it->start > stale_limit) {
      ++ep->stale_epochs_rejected;
      it = rep.epochs.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = rep.evicted.begin(); it != rep.evicted.end();) {
    if (it->epoch_start > stale_limit) {
      ++ep->stale_epochs_rejected;
      it = rep.evicted.erase(it);
    } else {
      ++it;
    }
  }

  const std::int64_t filtered = telemetry::serialized_bytes(rep);
  const std::int64_t raw = sw.telemetry().raw_dump_bytes();
  ep->telemetry_bytes += filtered;
  ep->raw_telemetry_bytes += raw;
  ep->report_packets += static_cast<std::uint64_t>(
      (filtered + cfg_.report_mtu_bytes - 1) / cfg_.report_mtu_bytes);
  ep->dataplane_report_packets += static_cast<std::uint64_t>(
      (raw + cfg_.dataplane_phv_bytes - 1) / cfg_.dataplane_phv_bytes);
  // Per-switch CPU polls run in parallel (asynchronous, triggered within an
  // end-to-end delay of each other), so the episode latency is the max.
  ep->collection_latency =
      std::max(ep->collection_latency,
               cfg_.dma_per_epoch *
                   static_cast<sim::Time>(std::max<std::size_t>(
                       rep.epochs.size(), 1)));
  ep->reports[id] = std::move(rep);
}

void Collector::collect_all(std::uint64_t probe_id, sim::Time now) {
  for (device::Switch* sw : switches_) collect_from(*sw, probe_id, now);
}

void Collector::collect_missing(std::uint64_t probe_id, sim::Time now) {
  Episode* ep = episode(probe_id);
  if (ep == nullptr) return;
  for (device::Switch* sw : switches_) {
    bool expected = false;
    for (const net::NodeId id : ep->expected_switches) {
      if (id == sw->id()) {
        expected = true;
        break;
      }
    }
    if (expected && ep->reports.count(sw->id()) == 0) {
      collect_from(*sw, probe_id, now);
    }
  }
}

void Collector::count_polling_packet(std::uint64_t probe_id,
                                     std::int32_t bytes) {
  if (Episode* ep = episode(probe_id)) {
    ep->polling_packets += 1;
    ep->polling_bytes += bytes;
  }
}

Episode* Collector::episode(std::uint64_t probe_id) {
  const auto it = episodes_.find(probe_id);
  return it == episodes_.end() ? nullptr : &it->second;
}

}  // namespace hawkeye::collect
