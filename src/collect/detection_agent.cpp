#include "collect/detection_agent.hpp"

#include <algorithm>

#include "net/packet.hpp"

namespace hawkeye::collect {

using sim::Time;

DetectionAgent::DetectionAgent(device::Network& net,
                               const net::Routing& routing,
                               Collector& collector, Config cfg)
    : net_(net), routing_(routing), collector_(collector), cfg_(cfg) {}

void DetectionAgent::attach(device::Host& host) {
  hosts_.push_back(&host);
  host.set_rtt_callback(
      [this](const net::FiveTuple& flow, Time rtt, Time now) {
        on_rtt(flow, rtt, now);
      });
}

void DetectionAgent::start() {
  if (scanning_) return;
  scanning_ = true;
  net_.simu().schedule(cfg_.stall_scan_period, [this]() { stall_scan(); });
}

Time DetectionAgent::baseline_rtt(const net::FiveTuple& flow) const {
  if (const auto it = baseline_cache_.find(flow);
      it != baseline_cache_.end()) {
    return it->second;
  }
  Time one_way = 0;
  for (const net::PortRef& hop : routing_.path_of(flow)) {
    const std::int64_t lid = net_.topo().link_of(hop.node, hop.port);
    if (lid < 0) continue;
    const net::LinkSpec& link = net_.topo().link(static_cast<size_t>(lid));
    one_way += link.delay_ns +
               sim::serialization_ns(net::kMtuBytes + net::kHeaderBytes,
                                     link.gbps);
  }
  const Time rtt = std::max<Time>(2 * one_way, sim::us(1));
  baseline_cache_[flow] = rtt;
  return rtt;
}

void DetectionAgent::on_rtt(const net::FiveTuple& flow, Time rtt, Time now) {
  if (rtt > static_cast<Time>(cfg_.threshold_factor *
                              static_cast<double>(baseline_rtt(flow)))) {
    trigger(flow, now);
  }
}

void DetectionAgent::stall_scan() {
  const Time now = net_.simu().now();
  for (device::Host* host : hosts_) {
    for (const device::FlowStats& st : host->flow_stats()) {
      if (st.complete() || st.pkts_sent == 0) continue;
      if (st.pkts_acked >= st.pkts_sent) continue;
      const Time last_progress = std::max(st.last_ack, st.start);
      const Time stall_after = std::max<Time>(
          static_cast<Time>(cfg_.threshold_factor *
                            static_cast<double>(baseline_rtt(st.tuple))),
          cfg_.min_stall);
      if (now - last_progress > stall_after) trigger(st.tuple, now);
    }
  }
  net_.simu().schedule(cfg_.stall_scan_period, [this]() { stall_scan(); });
}

void DetectionAgent::trigger(const net::FiveTuple& victim, Time now) {
  if (const auto it = last_trigger_.find(victim);
      it != last_trigger_.end() && now - it->second < cfg_.flow_dedup_interval) {
    return;
  }
  last_trigger_[victim] = now;

  const std::uint64_t probe_id = next_probe_id_++;
  collector_.open_episode(probe_id, victim, now);
  if (hook_) hook_(victim, probe_id, now);

  if (cfg_.full_polling) {
    // Baseline: no in-band tracing; the controller dumps every switch.
    collector_.collect_all(probe_id, now);
    return;
  }

  // Emit the polling packet from the victim's source host NIC, on the
  // control class so PFC cannot pause it.
  const net::NodeId src = net::Topology::node_of_ip(victim.src_ip);
  if (src < 0) return;
  net::Packet poll =
      net::make_polling(victim, probe_id, net::PollingFlag::kVictimPath);
  collector_.count_polling_packet(probe_id, poll.size_bytes);
  const net::LinkSpec& up = net_.link_at(src, 0);
  net_.deliver(src, 0, std::move(poll),
               sim::serialization_ns(net::kPollingBytes, up.gbps));
}

}  // namespace hawkeye::collect
