#include "collect/detection_agent.hpp"

#include <algorithm>

#include "net/packet.hpp"

namespace hawkeye::collect {

using sim::Time;

DetectionAgent::DetectionAgent(device::Network& net,
                               const net::Routing& routing,
                               Collector& collector, Config cfg)
    : net_(net),
      routing_(routing),
      collector_(collector),
      cfg_(cfg),
      lanes_(net.simu().sharded()
                 ? static_cast<std::size_t>(net.simu().control_shard()) + 1
                 : 1),
      probe_seq_(net.topo().node_count() + 1, 0) {}

void DetectionAgent::attach(device::Host& host) {
  hosts_.push_back(&host);
  host.set_rtt_callback(
      [this](const net::FiveTuple& flow, Time rtt, Time now) {
        on_rtt(flow, rtt, now);
      });
}

void DetectionAgent::start() {
  if (scanning_) return;
  scanning_ = true;
  // The scan walks every host's flow table: control-shard event, so the
  // whole lookahead window it lands in runs sequentially (exclusive).
  net_.simu().schedule_at_on(net_.simu().control_shard(),
                             net_.simu().now() + cfg_.stall_scan_period,
                             [this]() { stall_scan(); });
}

std::size_t DetectionAgent::trigger_lane(net::NodeId src) const {
  if (lanes_.size() == 1 || src < 0) return 0;
  return static_cast<std::size_t>(net_.shard_of(src));
}

std::uint64_t DetectionAgent::alloc_probe_id(net::NodeId src) {
  const std::size_t slot = src < 0 ? probe_seq_.size() - 1
                                   : static_cast<std::size_t>(src);
  const std::uint64_t seq = ++probe_seq_[slot];
  return (static_cast<std::uint64_t>(slot + 1) << 32) | seq;
}

DetectionAgent::Baseline DetectionAgent::baseline(
    const net::FiveTuple& flow) const {
  Lane& lane = lanes_[lanes_.size() == 1
                          ? 0
                          : static_cast<std::size_t>(
                                net_.simu().current_shard())];
  // Baselines are a function of the flow's current route; a routing epoch
  // bump (reconvergence after a link flap) invalidates every memoized
  // value. Epoch 0 runs never take this branch, so the fault-free event
  // stream is untouched.
  if (routing_.epoch() != lane.baseline_epoch) {
    lane.baseline_cache.clear();
    lane.baseline_epoch = routing_.epoch();
  }
  if (const auto it = lane.baseline_cache.find(flow);
      it != lane.baseline_cache.end()) {
    return it->second;
  }
  // The cache is pure memoization of a deterministic function of topology
  // and route, so dropping it wholesale at the cap only costs recomputation.
  if (lane.baseline_cache.size() >= cfg_.baseline_cache_cap) {
    lane.baseline_cache.clear();
  }
  Baseline b;
  Time one_way = 0;
  for (const net::PortRef& hop : routing_.path_of(flow)) {
    const std::int64_t lid = net_.topo().link_of(hop.node, hop.port);
    if (lid < 0) continue;
    const net::LinkSpec& link = net_.topo().link(static_cast<size_t>(lid));
    one_way += link.delay_ns +
               sim::serialization_ns(net::kMtuBytes + net::kHeaderBytes,
                                     link.gbps);
    ++b.hops;
  }
  b.rtt = std::max<Time>(2 * one_way, sim::us(1));
  lane.baseline_cache[flow] = b;
  return b;
}

Time DetectionAgent::baseline_rtt(const net::FiveTuple& flow) const {
  return baseline(flow).rtt;
}

Time DetectionAgent::trigger_threshold(const net::FiveTuple& flow) const {
  const Baseline b = baseline(flow);
  return static_cast<Time>(cfg_.threshold_factor *
                           static_cast<double>(b.rtt)) +
         cfg_.hop_noise_headroom * static_cast<Time>(b.hops);
}

void DetectionAgent::on_rtt(const net::FiveTuple& flow, Time rtt, Time now) {
  if (faults_ != nullptr) rtt = faults_->jitter_rtt(rtt, flow, now);
  if (rtt > trigger_threshold(flow)) trigger(flow, now);
}

void DetectionAgent::stall_scan() {
  const Time now = net_.simu().now();
  for (device::Host* host : hosts_) {
    for (const device::FlowStats& st : host->flow_stats()) {
      if (st.complete() || st.pkts_sent == 0) continue;
      if (st.pkts_acked >= st.pkts_sent) continue;
      const Time last_progress = std::max(st.last_ack, st.start);
      // Same calibrated threshold as the RTT path: with headroom 0 this is
      // exactly factor x baseline (the pre-calibration stall test).
      const Time stall_after =
          std::max<Time>(trigger_threshold(st.tuple), cfg_.min_stall);
      if (now - last_progress > stall_after) trigger(st.tuple, now);
      if (cfg_.retx_trigger_pkts > 0 && st.retx_pkts > 0) {
        if (retx_seen_.size() >= cfg_.trigger_cache_cap) retx_seen_.clear();
        std::uint32_t& seen = retx_seen_[st.tuple];
        if (st.retx_pkts >= seen + cfg_.retx_trigger_pkts) {
          trigger(st.tuple, now);
        }
        seen = st.retx_pkts;
      }
    }
  }
  net_.simu().schedule(cfg_.stall_scan_period, [this]() { stall_scan(); });
}

void DetectionAgent::trigger(const net::FiveTuple& victim, Time now) {
  const net::NodeId src = net::Topology::node_of_ip(victim.src_ip);
  Lane& lane = lanes_[trigger_lane(src)];
  if (const auto it = lane.last_trigger.find(victim);
      it != lane.last_trigger.end() &&
      now - it->second < cfg_.flow_dedup_interval) {
    return;
  }
  // Entries past the dedup interval are semantically absent (the find above
  // treats them as expired), so age-pruning at the cap changes nothing.
  if (lane.last_trigger.size() >= cfg_.trigger_cache_cap) {
    for (auto it = lane.last_trigger.begin();
         it != lane.last_trigger.end();) {
      if (now - it->second >= cfg_.flow_dedup_interval) {
        it = lane.last_trigger.erase(it);
      } else {
        ++it;
      }
    }
  }
  lane.last_trigger[victim] = now;

  const std::uint64_t probe_id = alloc_probe_id(src);
  triggers_.fetch_add(1, std::memory_order_relaxed);
  // Episode state is shared across shards: open it (and derive the
  // coverage contract) on the control lane. The deferred closure runs
  // inline when the context is already exclusive, so unsharded runs are
  // byte-identical to the pre-shard behaviour.
  net_.simu().defer_control([this, victim, probe_id, now]() {
    Episode& ep = collector_.open_episode(probe_id, victim, now);
    // The victim route is the coverage contract: these are the switches the
    // collection must hear from for the diagnosis to be trustworthy. The
    // routing epoch is stamped alongside so a mid-episode reconvergence is
    // detectable (the coverage check re-derives the contract on mismatch).
    ep.expected_switches = routing_.switches_on_path(victim);
    ep.routing_epoch = routing_.epoch();
    if (hook_) hook_(victim, probe_id, now);
  });

  if (cfg_.max_repolls > 0) {
    schedule_coverage_check(probe_id, 0, cfg_.repoll_timeout);
  }

  if (cfg_.full_polling) {
    // Baseline: no in-band tracing; the controller dumps every switch.
    collector_.collect_all(probe_id, now);
    return;
  }
  emit_poll(victim, probe_id);
}

void DetectionAgent::emit_poll(const net::FiveTuple& victim,
                               std::uint64_t probe_id) {
  // Emit the polling packet from the victim's source host NIC, on the
  // control class so PFC cannot pause it.
  const net::NodeId src = net::Topology::node_of_ip(victim.src_ip);
  if (src < 0) return;
  net::Packet poll =
      net::make_polling(victim, probe_id, net::PollingFlag::kVictimPath);
  collector_.count_polling_packet(probe_id, poll.size_bytes);
  const net::LinkSpec& up = net_.link_at(src, 0);
  net_.deliver(src, 0, std::move(poll),
               sim::serialization_ns(net::kPollingBytes, up.gbps));
}

void DetectionAgent::emit_targeted_poll(const Episode& ep,
                                        std::uint64_t probe_id) {
  // Walk the coverage contract in path order: the probe is injected on the
  // link feeding the FIRST silent hop, from its (covered) upstream
  // neighbour — or the source host when the gap starts at hop one. From
  // there the normal victim-path forwarding covers the rest of the gap.
  // Entering via the real upstream link keeps the in_port (and thus the
  // switch's PFC-causality analysis) identical to a first-round probe.
  net::NodeId target = net::kInvalidNode;
  net::NodeId upstream = net::Topology::node_of_ip(ep.victim.src_ip);
  for (const net::NodeId sw : ep.expected_switches) {
    if (!ep.has_report(sw)) {
      target = sw;
      break;
    }
    upstream = sw;
  }
  if (target == net::kInvalidNode) return;  // fully covered — nothing to do
  const net::PortId out =
      upstream < 0 ? net::kInvalidPort : net_.topo().port_towards(upstream,
                                                                  target);
  if (out == net::kInvalidPort) {
    // No per-hop route information (expectation not path-adjacent): fall
    // back to the full victim-path probe rather than heal nothing.
    emit_poll(ep.victim, probe_id);
    return;
  }
  net::Packet poll =
      net::make_polling(ep.victim, probe_id, net::PollingFlag::kVictimPath);
  collector_.count_polling_packet(probe_id, poll.size_bytes);
  net_.deliver(upstream, out, std::move(poll),
               sim::serialization_ns(net::kPollingBytes,
                                     net_.link_at(upstream, out).gbps));
}

void DetectionAgent::schedule_coverage_check(std::uint64_t probe_id,
                                             std::uint32_t attempt,
                                             Time timeout) {
  // Coverage checks mutate episode state and may inject re-polls from
  // arbitrary fabric nodes: control-shard events (exclusive windows).
  net_.simu().schedule_at_on(net_.simu().control_shard(),
                             net_.simu().now() + timeout,
                             [this, probe_id, attempt, timeout]() {
                               coverage_check(probe_id, attempt, timeout);
                             });
}

void DetectionAgent::coverage_check(std::uint64_t probe_id,
                                    std::uint32_t attempt, Time timeout) {
  Episode* ep = collector_.episode(probe_id);
  if (ep == nullptr) return;
  // Routing reconverged since the contract was derived: the victim now
  // takes (or may take) a different path, so coverage of the OLD hop set
  // is no longer what makes the diagnosis trustworthy. Re-derive against
  // the live table; reports already gathered from former hops are kept as
  // extra evidence, and the episode is flagged as path-churned.
  if (routing_.epoch() != ep->routing_epoch) {
    ep->expected_switches = routing_.switches_on_path(ep->victim);
    ep->routing_epoch = routing_.epoch();
    ep->path_churned = true;
  }
  if (ep->coverage_complete()) return;
  if (attempt >= cfg_.max_repolls) {
    // Retry budget exhausted with hops still silent: the diagnosis can
    // proceed, but only as an explicitly degraded best-effort verdict.
    ep->degraded = true;
    return;
  }
  ++ep->repolls;
  const Time now = net_.simu().now();
  if (cfg_.full_polling) {
    collector_.collect_missing(probe_id, now);
  } else if (cfg_.targeted_repoll) {
    emit_targeted_poll(*ep, probe_id);
  } else {
    emit_poll(ep->victim, probe_id);
  }
  schedule_coverage_check(probe_id, attempt + 1,
                          std::min(timeout * 2, cfg_.repoll_backoff_cap));
}

}  // namespace hawkeye::collect
