#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "device/host.hpp"
#include "diagnosis/anomaly_type.hpp"
#include "fault/fault.hpp"
#include "net/routing.hpp"
#include "net/topology.hpp"
#include "sim/random.hpp"

namespace hawkeye::workload {

/// Routing misconfiguration to install before the run (deadlock CBDs).
struct RouteOverride {
  net::NodeId sw = net::kInvalidNode;
  net::NodeId dst = net::kInvalidNode;
  net::PortId port = net::kInvalidPort;
};

/// Host-side PFC injection (malfunctioning NIC / slow receiver).
struct PfcInjectionSpec {
  net::NodeId host = net::kInvalidNode;
  sim::Time start = 0;
  sim::Time stop = 0;
  sim::Time period = 50'000;
  std::uint32_t quanta = 65535;
};

/// What the diagnosis *should* report for the crafted trace.
struct GroundTruth {
  diagnosis::AnomalyType type = diagnosis::AnomalyType::kNone;
  std::vector<net::FiveTuple> root_cause_flows;
  net::NodeId injecting_host = net::kInvalidNode;
  std::vector<net::PortRef> loop_ports;  // expected CBD, empty if none
  /// Ports where the initial flow contention happens (empty for pure
  /// injection anomalies). Background flows that cross one of these during
  /// the anomaly window are genuine co-contributors: the evaluation treats
  /// them as acceptable root causes alongside the crafted culprits.
  std::vector<net::PortRef> congestion_ports;
  /// Expected fine-grained contention cause (kUnknown = not scored).
  diagnosis::ContentionCause expected_cause =
      diagnosis::ContentionCause::kUnknown;
};

/// A fully-specified anomaly trace: crafted flows, misconfigurations,
/// injections and the expected diagnosis. The evaluation Runner installs it
/// on a fresh simulation (paper §4.1: "for each anomaly scenario, we craft
/// 100 traffic traces ... with different link load").
struct ScenarioSpec {
  std::string name;
  diagnosis::AnomalyType type = diagnosis::AnomalyType::kNone;
  std::vector<device::FlowSpec> flows;
  net::FiveTuple victim;
  sim::Time anomaly_start = 0;
  sim::Time duration = 2 * sim::kMillisecond;
  std::vector<RouteOverride> overrides;
  std::vector<PfcInjectionSpec> injections;
  GroundTruth truth;
  /// Scenario-specific PFC threshold (normal contention uses deep headroom
  /// so queues can build without PAUSE — see DESIGN.md).
  std::optional<std::int64_t> xoff_bytes;
  std::optional<std::int64_t> xon_bytes;
  /// Collection-pipeline faults to inject during this trace (robustness
  /// evaluation). Unset/disabled => the fault hooks are never installed and
  /// the run is byte-identical to a fault-free build.
  std::optional<fault::FaultPlan> faults;
};

/// Crafts one trace of the given anomaly type on a fat-tree. `routing` must
/// be the default (override-free) table; crafting uses it to pick paths.
ScenarioSpec make_incast_burst(const net::FatTree& ft,
                               const net::Routing& routing, sim::Rng& rng);
ScenarioSpec make_pfc_storm(const net::FatTree& ft,
                            const net::Routing& routing, sim::Rng& rng);
ScenarioSpec make_inloop_deadlock(const net::FatTree& ft,
                                  const net::Routing& routing, sim::Rng& rng);
ScenarioSpec make_outofloop_deadlock(const net::FatTree& ft,
                                     const net::Routing& routing,
                                     sim::Rng& rng, bool by_injection);
ScenarioSpec make_normal_contention(const net::FatTree& ft,
                                    const net::Routing& routing,
                                    sim::Rng& rng);

/// Benign trace (AnomalyType::kNone): a healthy victim transfer plus a few
/// light, uncorrelated peers — nothing congests, nothing should trigger.
/// The false-alarm probe of the misdiagnosis hunter: any asserted verdict
/// on this trace is a silent-wrong find by construction.
ScenarioSpec make_benign(const net::FatTree& ft, const net::Routing& routing,
                         sim::Rng& rng);

/// Extension scenario (§2.1's "slow receiver issues caused by buffer
/// exhaustion on the NIC"): the receiver NIC intermittently PAUSEs its
/// uplink with short quanta instead of flooding it — throughput halves and
/// victims see repeated spikes. Ground truth is still host PFC injection
/// (a PFC storm in Table 2's taxonomy).
ScenarioSpec make_slow_receiver(const net::FatTree& ft,
                                const net::Routing& routing, sim::Rng& rng);

/// Extension scenario (§3.5.2's load-imbalance root cause): several flows
/// hash onto the same ECMP uplink while its sibling idles; the victim
/// shares the hot uplink. Type-wise this is plain contention; the
/// fine-grained cause is kEcmpImbalance.
ScenarioSpec make_ecmp_imbalance(const net::FatTree& ft,
                                 const net::Routing& routing, sim::Rng& rng);

/// Path-churn scenario (PR 4): a normal-contention trace whose victim path
/// additionally crosses a flapping link. The flap train is bound directly
/// to the middle link of the victim's (inter-pod) route, so every outage
/// black-holes the victim until it either heals or — with `holddown > 0` —
/// routing reconverges around it and the victim's path churns mid-episode.
/// `holddown == 0` keeps routing frozen (the PR 3 behaviour); the diagnosis
/// accuracy gap between the two modes is what bench_path_churn measures.
ScenarioSpec make_path_churn(const net::FatTree& ft,
                             const net::Routing& routing, sim::Rng& rng,
                             sim::Time flap_period = sim::us(500),
                             sim::Time holddown = 0);

// ---- Fleet-ops fault scenarios (net_sanitizer's field pathologies) ----

/// Traffic pattern riding a fleet-fault scenario. Beyond the crafted
/// victim-plus-feeders shape of paper §4.1, the fleet bench exercises the
/// two application patterns net_sanitizer ships: a client/server RPC
/// exchange (small requests, larger responses) and an all-to-all shuffle.
/// The fault signature must survive realistic traffic, not just crafted
/// silence.
enum class FleetWorkload {
  kCrafted = 0,       // §4.1 shape: victim + whatever background_flows adds
  kRpcClientServer,   // request/response mesh around the victim's server
  kAllToAll,          // shuffle among a host group containing the victim
};

std::string_view to_string(FleetWorkload w);

/// Client/server RPC pattern: `clients` hosts issue Poisson-spaced requests
/// (2-16 KB) to `server`, each answered by a larger (32-256 KB) response
/// after a short service time. Rates are modest so the pattern itself never
/// congests a healthy fabric.
std::vector<device::FlowSpec> rpc_client_server_flows(
    const net::FatTree& ft, sim::Rng& rng, net::NodeId server, int clients,
    sim::Time start, sim::Time stop);

/// All-to-all shuffle: every ordered pair in `group` exchanges one shard
/// (150-250 KB), starts jittered, per-flow rate capped to a fair NIC share
/// so the shuffle is feasible on a healthy fabric.
std::vector<device::FlowSpec> all_to_all_flows(
    const net::FatTree& ft, sim::Rng& rng,
    const std::vector<net::NodeId>& group, sim::Time start);

/// Fleet fault class 1 — degraded link: a BER-injected cable on the middle
/// link of the victim's path corrupts frames (CRC drops + go-back-N
/// retransmits). Congestion provenance without incast fan-in; diagnosis
/// must report kDegradedLink at the erroring link.
ScenarioSpec make_degraded_link(const net::FatTree& ft,
                                const net::Routing& routing, sim::Rng& rng,
                                FleetWorkload w = FleetWorkload::kCrafted,
                                double severity = 1.0);

/// Fleet fault class 2 — link-speed mismatch: the middle victim-path link
/// negotiated 25 G in a 100 G fabric, a persistent single-port
/// serialization bottleneck (clean FCS, no fan-in).
ScenarioSpec make_speed_mismatch(const net::FatTree& ft,
                                 const net::Routing& routing, sim::Rng& rng,
                                 FleetWorkload w = FleetWorkload::kCrafted,
                                 double severity = 1.0);

/// Fleet fault class 3 — host PCIe bottleneck: the victim's destination
/// NIC drains toward host memory far below line rate; RTT inflates with
/// the DMA backlog while no switch pauses (pure victim).
ScenarioSpec make_pcie_bottleneck(const net::FatTree& ft,
                                  const net::Routing& routing, sim::Rng& rng,
                                  FleetWorkload w = FleetWorkload::kCrafted,
                                  double severity = 1.0);

/// Fleet fault class 4 — oversubscribed down-links: every down-link of the
/// aggregation switch the victim enters its destination pod through runs
/// at half capacity; fan-in traffic shows sustained multi-flow contention
/// on the reduced tier.
ScenarioSpec make_oversubscribed_downlink(
    const net::FatTree& ft, const net::Routing& routing, sim::Rng& rng,
    FleetWorkload w = FleetWorkload::kCrafted, double severity = 1.0);

/// Dispatch for the four fleet classes with an explicit traffic pattern
/// and defect severity. `severity` scales the injected defect (1.0 = the
/// class default), monotone per class and chosen so the defect stays a
/// genuine anomaly for any severity in (0, ~4]: the BER scales linearly,
/// the mis-negotiated rate decays geometrically from nominal, the PCIe
/// drain cap falls linearly below the victim's arrival rate, and the
/// oversubscription factor is raised to the severity-th power.
ScenarioSpec make_fleet_scenario(diagnosis::AnomalyType type, FleetWorkload w,
                                 const net::FatTree& ft,
                                 const net::Routing& routing, sim::Rng& rng,
                                 double severity = 1.0);

/// Dispatch by anomaly type.
ScenarioSpec make_scenario(diagnosis::AnomalyType type,
                           const net::FatTree& ft,
                           const net::Routing& routing, sim::Rng& rng);

/// Background load: Poisson arrivals, long-tailed sizes, random src/dst
/// pairs, scaled so offered load ≈ `load` of aggregate host bandwidth.
/// Returns the generated specs (they are also appended to `out`).
std::vector<device::FlowSpec> background_flows(const net::FatTree& ft,
                                               sim::Rng& rng, double load,
                                               sim::Time start,
                                               sim::Time stop);

}  // namespace hawkeye::workload
