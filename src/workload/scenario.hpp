#pragma once

#include <optional>
#include <string>
#include <vector>

#include "device/host.hpp"
#include "diagnosis/anomaly_type.hpp"
#include "fault/fault.hpp"
#include "net/routing.hpp"
#include "net/topology.hpp"
#include "sim/random.hpp"

namespace hawkeye::workload {

/// Routing misconfiguration to install before the run (deadlock CBDs).
struct RouteOverride {
  net::NodeId sw = net::kInvalidNode;
  net::NodeId dst = net::kInvalidNode;
  net::PortId port = net::kInvalidPort;
};

/// Host-side PFC injection (malfunctioning NIC / slow receiver).
struct PfcInjectionSpec {
  net::NodeId host = net::kInvalidNode;
  sim::Time start = 0;
  sim::Time stop = 0;
  sim::Time period = 50'000;
  std::uint32_t quanta = 65535;
};

/// What the diagnosis *should* report for the crafted trace.
struct GroundTruth {
  diagnosis::AnomalyType type = diagnosis::AnomalyType::kNone;
  std::vector<net::FiveTuple> root_cause_flows;
  net::NodeId injecting_host = net::kInvalidNode;
  std::vector<net::PortRef> loop_ports;  // expected CBD, empty if none
  /// Ports where the initial flow contention happens (empty for pure
  /// injection anomalies). Background flows that cross one of these during
  /// the anomaly window are genuine co-contributors: the evaluation treats
  /// them as acceptable root causes alongside the crafted culprits.
  std::vector<net::PortRef> congestion_ports;
  /// Expected fine-grained contention cause (kUnknown = not scored).
  diagnosis::ContentionCause expected_cause =
      diagnosis::ContentionCause::kUnknown;
};

/// A fully-specified anomaly trace: crafted flows, misconfigurations,
/// injections and the expected diagnosis. The evaluation Runner installs it
/// on a fresh simulation (paper §4.1: "for each anomaly scenario, we craft
/// 100 traffic traces ... with different link load").
struct ScenarioSpec {
  std::string name;
  diagnosis::AnomalyType type = diagnosis::AnomalyType::kNone;
  std::vector<device::FlowSpec> flows;
  net::FiveTuple victim;
  sim::Time anomaly_start = 0;
  sim::Time duration = 2 * sim::kMillisecond;
  std::vector<RouteOverride> overrides;
  std::vector<PfcInjectionSpec> injections;
  GroundTruth truth;
  /// Scenario-specific PFC threshold (normal contention uses deep headroom
  /// so queues can build without PAUSE — see DESIGN.md).
  std::optional<std::int64_t> xoff_bytes;
  std::optional<std::int64_t> xon_bytes;
  /// Collection-pipeline faults to inject during this trace (robustness
  /// evaluation). Unset/disabled => the fault hooks are never installed and
  /// the run is byte-identical to a fault-free build.
  std::optional<fault::FaultPlan> faults;
};

/// Crafts one trace of the given anomaly type on a fat-tree. `routing` must
/// be the default (override-free) table; crafting uses it to pick paths.
ScenarioSpec make_incast_burst(const net::FatTree& ft,
                               const net::Routing& routing, sim::Rng& rng);
ScenarioSpec make_pfc_storm(const net::FatTree& ft,
                            const net::Routing& routing, sim::Rng& rng);
ScenarioSpec make_inloop_deadlock(const net::FatTree& ft,
                                  const net::Routing& routing, sim::Rng& rng);
ScenarioSpec make_outofloop_deadlock(const net::FatTree& ft,
                                     const net::Routing& routing,
                                     sim::Rng& rng, bool by_injection);
ScenarioSpec make_normal_contention(const net::FatTree& ft,
                                    const net::Routing& routing,
                                    sim::Rng& rng);

/// Extension scenario (§2.1's "slow receiver issues caused by buffer
/// exhaustion on the NIC"): the receiver NIC intermittently PAUSEs its
/// uplink with short quanta instead of flooding it — throughput halves and
/// victims see repeated spikes. Ground truth is still host PFC injection
/// (a PFC storm in Table 2's taxonomy).
ScenarioSpec make_slow_receiver(const net::FatTree& ft,
                                const net::Routing& routing, sim::Rng& rng);

/// Extension scenario (§3.5.2's load-imbalance root cause): several flows
/// hash onto the same ECMP uplink while its sibling idles; the victim
/// shares the hot uplink. Type-wise this is plain contention; the
/// fine-grained cause is kEcmpImbalance.
ScenarioSpec make_ecmp_imbalance(const net::FatTree& ft,
                                 const net::Routing& routing, sim::Rng& rng);

/// Path-churn scenario (PR 4): a normal-contention trace whose victim path
/// additionally crosses a flapping link. The flap train is bound directly
/// to the middle link of the victim's (inter-pod) route, so every outage
/// black-holes the victim until it either heals or — with `holddown > 0` —
/// routing reconverges around it and the victim's path churns mid-episode.
/// `holddown == 0` keeps routing frozen (the PR 3 behaviour); the diagnosis
/// accuracy gap between the two modes is what bench_path_churn measures.
ScenarioSpec make_path_churn(const net::FatTree& ft,
                             const net::Routing& routing, sim::Rng& rng,
                             sim::Time flap_period = sim::us(500),
                             sim::Time holddown = 0);

/// Dispatch by anomaly type.
ScenarioSpec make_scenario(diagnosis::AnomalyType type,
                           const net::FatTree& ft,
                           const net::Routing& routing, sim::Rng& rng);

/// Background load: Poisson arrivals, long-tailed sizes, random src/dst
/// pairs, scaled so offered load ≈ `load` of aggregate host bandwidth.
/// Returns the generated specs (they are also appended to `out`).
std::vector<device::FlowSpec> background_flows(const net::FatTree& ft,
                                               sim::Rng& rng, double load,
                                               sim::Time start,
                                               sim::Time stop);

}  // namespace hawkeye::workload
