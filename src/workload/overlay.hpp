#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"
#include "workload/scenario.hpp"

namespace hawkeye::workload {

/// Deterministic post-crafting mutations of a ScenarioSpec — the workload
/// half of the misdiagnosis hunter's search space (tools/hunt_misdiagnosis,
/// DESIGN.md §15). A scenario factory crafts the anomaly from (type, seed);
/// the overlay then perturbs the crafted trace *without touching the RNG
/// stream*: every knob is an explicit value, so (RunConfig, overlay) is a
/// complete, replayable description of a mutated run and two applications
/// of the same overlay are byte-identical.
///
/// Ground-truth protection: the victim flow and the crafted root-cause
/// flows are never dropped (removing them would invalidate the scenario's
/// GroundTruth, turning every verdict into noise), and the victim is never
/// size/rate-scaled. Everything else — feeder flows, background shape,
/// arrival offsets, fault windows and rates — is fair game: those are
/// exactly the perturbations that expose brittle diagnosis rules while the
/// anomaly itself stays real.
struct ScenarioOverlay {
  /// Indices into the crafted spec.flows to remove, pre-mutation order.
  /// Out-of-range and protected (victim / root-cause) indices are skipped,
  /// so a shrinking loop can propose aggressive chunks safely.
  std::vector<std::uint32_t> drop_flows;
  /// Multiply every non-victim flow's bytes (clamped to >= 1 MTU).
  double size_scale = 1.0;
  /// Multiply every non-victim flow's rate cap where one is set.
  double rate_scale = 1.0;
  /// Flow i's start is shifted by i * stride (victim excluded) — staggers
  /// the crafted burst without re-drawing arrivals.
  sim::Time arrival_stride_ns = 0;
  /// Added to the trace duration (clamped so the run still covers the
  /// anomaly onset plus one detection interval).
  sim::Time duration_add_ns = 0;
  /// Scale every probabilistic rate in the scenario's installed FaultPlan
  /// (poll drop/dup/delay, DMA fail/stale, PFC loss/delay, BER). Applied
  /// after run_one merges cfg-level faults into the spec, renormalized so
  /// per-spec probability sums stay <= 1.
  double fault_rate_scale = 1.0;
  /// Scale every bounded fault window's length (start fixed, stop pulled
  /// in; unbounded stop < 0 windows and flap down_ns shrink too).
  double fault_window_scale = 1.0;

  bool enabled() const {
    return !drop_flows.empty() || size_scale != 1.0 || rate_scale != 1.0 ||
           arrival_stride_ns != 0 || duration_add_ns != 0 ||
           fault_rate_scale != 1.0 || fault_window_scale != 1.0;
  }

  /// Empty string when applicable, else the first problem (non-positive
  /// scale factors and the like). Mirrors fault::FaultPlan::validate.
  std::string validate() const;
};

/// Apply the overlay to a freshly crafted spec (identity when disabled).
/// Deterministic, draws no randomness; see ScenarioOverlay for the
/// ground-truth protection rules.
void apply_overlay(ScenarioSpec& spec, const ScenarioOverlay& o);

}  // namespace hawkeye::workload
