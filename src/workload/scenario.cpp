#include "workload/scenario.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

#include "workload/flow_size.hpp"

namespace hawkeye::workload {

using device::FlowSpec;
using device::tuple_of;
using diagnosis::AnomalyType;
using net::FatTree;
using net::NodeId;
using net::PortId;
using net::PortRef;
using net::Routing;
using sim::Rng;
using sim::Time;

namespace {

int half_of(const FatTree& ft) { return ft.k / 2; }

int pod_of_host(const FatTree& ft, NodeId host) {
  const int half = half_of(ft);
  return static_cast<int>(host) / (half * half);
}

/// Hosts attached to edge switch index `e` (index into ft.edges).
std::vector<NodeId> hosts_of_edge(const FatTree& ft, int e) {
  const int half = half_of(ft);
  std::vector<NodeId> out;
  for (int h = 0; h < half; ++h) {
    out.push_back(ft.hosts[static_cast<size_t>(e * half + h)]);
  }
  return out;
}

NodeId tor_of(const FatTree& ft, NodeId host) {
  return ft.topo.peer(host, 0).node;
}

NodeId random_host(const FatTree& ft, Rng& rng,
                   const std::vector<NodeId>& exclude,
                   int exclude_pod = -1) {
  for (int tries = 0; tries < 1000; ++tries) {
    const NodeId h = ft.hosts[static_cast<size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(ft.hosts.size()) - 1))];
    if (exclude_pod >= 0 && pod_of_host(ft, h) == exclude_pod) continue;
    if (std::find(exclude.begin(), exclude.end(), h) != exclude.end()) continue;
    return h;
  }
  throw std::runtime_error("random_host: exhausted candidates");
}

/// Finds a source port such that the flow src->dst traverses `via` (an
/// egress PortRef), exploiting deterministic ECMP hashing. Crafting-time
/// only; returns 0 on failure.
std::uint16_t force_path_through(const Routing& routing, NodeId src,
                                 NodeId dst, PortRef via,
                                 std::uint16_t base_port) {
  for (std::uint16_t sp = base_port; sp < base_port + 512; ++sp) {
    net::FiveTuple t;
    t.src_ip = net::Topology::ip_of(src);
    t.dst_ip = net::Topology::ip_of(dst);
    t.src_port = sp;
    t.dst_port = 4791;
    const auto path = routing.path_of(t);
    if (std::find(path.begin(), path.end(), via) != path.end()) return sp;
  }
  return 0;
}

/// Same, but matching any hop on the given node.
std::uint16_t force_path_through_node(const Routing& routing, NodeId src,
                                      NodeId dst, NodeId node,
                                      std::uint16_t base_port) {
  for (std::uint16_t sp = base_port; sp < base_port + 512; ++sp) {
    net::FiveTuple t;
    t.src_ip = net::Topology::ip_of(src);
    t.dst_ip = net::Topology::ip_of(dst);
    t.src_port = sp;
    t.dst_port = 4791;
    for (const auto& hop : routing.path_of(t)) {
      if (hop.node == node) return sp;
    }
  }
  return 0;
}

PortId port_to(const FatTree& ft, NodeId from, NodeId to) {
  const PortId p = ft.topo.port_towards(from, to);
  if (p == net::kInvalidPort) {
    throw std::runtime_error("port_to: nodes not adjacent");
  }
  return p;
}

/// The four intra-pod switches and loop egress ports of the crafted CBD:
/// E1 -> A1 -> E2 -> A2 -> E1 (all links exist in a fat-tree pod).
struct LoopPlan {
  NodeId e1, e2, a1, a2;
  std::vector<PortRef> loop_ports;  // paused egress ports forming the cycle
  std::vector<NodeId> he1, he2;     // hosts under e1 / e2
};

LoopPlan plan_loop(const FatTree& ft, int pod) {
  const int half = half_of(ft);
  LoopPlan lp;
  lp.e1 = ft.edges[static_cast<size_t>(pod * half + 0)];
  lp.e2 = ft.edges[static_cast<size_t>(pod * half + 1)];
  lp.a1 = ft.aggs[static_cast<size_t>(pod * half + 0)];
  lp.a2 = ft.aggs[static_cast<size_t>(pod * half + 1)];
  lp.he1 = hosts_of_edge(ft, pod * half + 0);
  lp.he2 = hosts_of_edge(ft, pod * half + 1);
  lp.loop_ports = {
      {lp.e1, port_to(ft, lp.e1, lp.a1)},  // L0
      {lp.a1, port_to(ft, lp.a1, lp.e2)},  // L1
      {lp.e2, port_to(ft, lp.e2, lp.a2)},  // L2
      {lp.a2, port_to(ft, lp.a2, lp.e1)},  // L3
  };
  return lp;
}

/// The four flows that establish the cyclic buffer dependency; each spans
/// two consecutive loop links, kept well below link capacity so the CBD is
/// latent until an initiator congests it (paper §2.1, Figure 1(c)/(d)).
void add_loop_flows(ScenarioSpec& spec, const FatTree& ft, const LoopPlan& lp,
                    NodeId x, NodeId y, Time start) {
  // Three loop flows share the busiest loop links (L0, L2): 28 G each keeps
  // them under capacity while accumulating Xoff (64 KB) within ~10 us once
  // the next link pauses — fast enough for the CBD to lock before the
  // initiator's pause cycle releases.
  const double kLoopGbps = 26.0;
  const std::int64_t kLoopBytes = 100'000'000;

  // F1: he1[0] -> he2[0] over L0,L1.
  spec.flows.push_back({lp.he1[0], lp.he2[0], 101, 4791, kLoopBytes, start,
                        false, kLoopGbps});
  spec.overrides.push_back({lp.e1, lp.he2[0], port_to(ft, lp.e1, lp.a1)});

  // F2: he2[1] -> he1[1] over L2,L3.
  spec.flows.push_back({lp.he2[1], lp.he1[1], 102, 4791, kLoopBytes, start,
                        false, kLoopGbps});
  spec.overrides.push_back({lp.e2, lp.he1[1], port_to(ft, lp.e2, lp.a2)});

  // F3: he1[1] -> X over L0?,L1,L2 (valley-routed down A1 -> E2 -> up A2).
  spec.flows.push_back({lp.he1[1], x, 103, 4791, kLoopBytes, start, false,
                        kLoopGbps});
  spec.overrides.push_back({lp.e1, x, port_to(ft, lp.e1, lp.a1)});
  spec.overrides.push_back({lp.a1, x, port_to(ft, lp.a1, lp.e2)});
  spec.overrides.push_back({lp.e2, x, port_to(ft, lp.e2, lp.a2)});

  // F4: he2[0] -> Y over L2?,L3,L0 (valley-routed down A2 -> E1 -> up A1).
  spec.flows.push_back({lp.he2[0], y, 104, 4791, kLoopBytes, start, false,
                        kLoopGbps});
  spec.overrides.push_back({lp.e2, y, port_to(ft, lp.e2, lp.a2)});
  spec.overrides.push_back({lp.a2, y, port_to(ft, lp.a2, lp.e1)});
  spec.overrides.push_back({lp.e1, y, port_to(ft, lp.e1, lp.a1)});
}

}  // namespace

ScenarioSpec make_incast_burst(const FatTree& ft, const Routing& routing,
                               Rng& rng) {
  ScenarioSpec spec;
  spec.name = "incast-burst";
  spec.type = AnomalyType::kMicroBurstIncast;
  spec.anomaly_start = sim::us(300) + rng.uniform_int(0, sim::us(200));
  spec.duration = sim::ms(2);

  // Burst sink B, victim destination W = B's ToR sibling.
  const NodeId b = random_host(ft, rng, {});
  const NodeId e_b = tor_of(ft, b);
  NodeId w = net::kInvalidNode;
  for (PortId p = 0; p < ft.topo.port_count(e_b); ++p) {
    const PortRef pr = ft.topo.peer(e_b, p);
    if (ft.topo.is_host(pr.node) && pr.node != b) {
      w = pr.node;
      break;
    }
  }
  const NodeId v = random_host(ft, rng, {b, w}, pod_of_host(ft, b));

  FlowSpec victim{v, w, static_cast<std::uint16_t>(rng.uniform_int(100, 999)),
                  4791, 40'000'000, sim::us(10), true, 0};
  spec.victim = tuple_of(victim);
  spec.flows.push_back(victim);

  // Agg switch through which the victim enters B's pod.
  NodeId a_v = net::kInvalidNode;
  for (const auto& hop : routing.path_of(spec.victim)) {
    if (ft.topo.is_switch(hop.node) &&
        ft.topo.peer(hop.node, hop.port).node == e_b) {
      a_v = hop.node;
      break;
    }
  }
  const PortRef via{a_v, port_to(ft, a_v, e_b)};

  // Four synchronized line-rate micro-bursts into B, two of them steered
  // through the victim's agg so the backpressure provably crosses the
  // victim path (paper Figure 1(a)). More than two would bottleneck the
  // incast at the agg downlink instead of the sink port.
  std::vector<NodeId> used{b, w, v};
  for (int i = 0; i < 4; ++i) {
    const NodeId src = random_host(ft, rng, used, pod_of_host(ft, b));
    used.push_back(src);
    std::uint16_t sp =
        static_cast<std::uint16_t>(2000 + 100 * i);
    if (i < 2) {
      const std::uint16_t forced =
          force_path_through(routing, src, b, via, sp);
      if (forced != 0) sp = forced;
    }
    FlowSpec burst{src, b, sp, 4791,
                   500'000 + rng.uniform_int(0, 300'000),
                   spec.anomaly_start + rng.uniform_int(0, sim::us(3)), false,
                   0};
    spec.flows.push_back(burst);
    spec.truth.root_cause_flows.push_back(tuple_of(burst));
  }

  spec.truth.type = spec.type;
  spec.truth.congestion_ports = {{e_b, port_to(ft, e_b, b)}};
  return spec;
}

ScenarioSpec make_pfc_storm(const FatTree& ft, const Routing& routing,
                            Rng& rng) {
  (void)routing;
  ScenarioSpec spec;
  spec.name = "pfc-storm";
  spec.type = AnomalyType::kPfcStorm;
  // The injection start is randomized across a full 1 ms epoch grid so the
  // separation between the pre-anomaly contention blip and the injection
  // depends on epoch size the way §4.2 describes (small epochs always
  // separate the events; 1-2 ms epochs increasingly conflate them).
  spec.anomaly_start = sim::us(800) + rng.uniform_int(0, sim::us(1000));
  spec.duration = sim::ms(3);

  const NodeId h = random_host(ft, rng, {});
  const NodeId v = random_host(ft, rng, {h}, pod_of_host(ft, h));

  // Victim and feeder are rate-capped so the pre-injection fabric is
  // uncongested (40 + 30 < 100 G): every pause observed afterwards is the
  // storm's, not startup incast.
  FlowSpec victim{v, h, static_cast<std::uint16_t>(rng.uniform_int(100, 999)),
                  4791, 40'000'000, sim::us(10), true, 40.0};
  spec.victim = tuple_of(victim);
  spec.flows.push_back(victim);

  // A second feeder widens the storm's blast radius.
  const NodeId f = random_host(ft, rng, {h, v});
  spec.flows.push_back({f, h, 2100, 4791, 20'000'000, sim::us(20), true, 30.0});

  // A small contention blip that ends well before the injection: short
  // epochs separate the two events, a 2 ms epoch conflates them and can
  // mis-attribute the storm to flow contention (the failure mode §4.2
  // describes for long epochs). 25 G keeps it below the port's spare
  // capacity, so it queues briefly without tripping PFC itself.
  const NodeId m1 = random_host(ft, rng, {h, v, f});
  spec.flows.push_back({m1, h, 2200, 4791, 200'000,
                        spec.anomaly_start - sim::us(600), false, 45.0});

  spec.injections.push_back({h, spec.anomaly_start,
                             spec.anomaly_start + sim::us(800), sim::us(50),
                             65535});
  spec.truth.type = spec.type;
  spec.truth.injecting_host = h;
  return spec;
}

ScenarioSpec make_inloop_deadlock(const FatTree& ft, const Routing& routing,
                                  Rng& rng) {
  ScenarioSpec spec;
  spec.name = "in-loop-deadlock";
  spec.type = AnomalyType::kInLoopDeadlock;
  spec.anomaly_start = sim::us(400) + rng.uniform_int(0, sim::us(200));
  spec.duration = sim::ms(2);

  // Shallow PFC headroom (32 K / 8 K): the pause chain around the CBD
  // completes well inside the initiator's lifetime and the stuck bytes at
  // each hop stay above Xon, so the lock is permanent — the paper's
  // "short-duration flow contention (<1 ms) leads to persistent deadlock".
  spec.xoff_bytes = 32 * 1024;
  spec.xon_bytes = 8 * 1024;
  const int pod = static_cast<int>(rng.uniform_int(0, ft.k - 1));
  const LoopPlan lp = plan_loop(ft, pod);
  const NodeId x = random_host(ft, rng, {}, pod);
  const NodeId y = random_host(ft, rng, {x}, pod);
  add_loop_flows(spec, ft, lp, x, y, sim::us(30));
  spec.victim = tuple_of(spec.flows[0]);  // F1 stalls once the CBD locks

  // Initiator inside the loop: a remote burst is valley-routed into the
  // pod by a routing misconfiguration — core -> A1 -> E2 -> A2 -> core —
  // so it rides the loop links L1 and L2 and the contention point is the
  // loop port E2->A2 (L2) itself (Figure 1(c)'s "SW2.P2 encounters
  // micro-bursts"). Because the burst shares E2's ingress-from-A1 with
  // loop flow F3, that ingress reaches Xoff and PFC chases the CBD around;
  // the lock persists long after the burst drains.
  //
  // The burst must enter the pod through a core attached to A1 (the a=0
  // agg group, i.e. cores[0..k/2)).
  const int half = half_of(ft);
  const NodeId entry_core = ft.cores[0];
  NodeId bsrc = net::kInvalidNode;
  NodeId x2 = net::kInvalidNode;
  std::uint16_t bsp = 0;
  for (int tries = 0; tries < 64 && bsp == 0; ++tries) {
    bsrc = random_host(ft, rng, {x, y}, pod);
    x2 = random_host(ft, rng, {x, y, bsrc}, pod);
    if (pod_of_host(ft, x2) == pod_of_host(ft, bsrc)) continue;
    bsp = force_path_through_node(routing, bsrc, x2, entry_core, 3001);
  }
  FlowSpec burst{bsrc, x2, bsp != 0 ? bsp : static_cast<std::uint16_t>(3001),
                 4791, 2'000'000 + rng.uniform_int(0, 500'000),
                 spec.anomaly_start, false, 40.0};
  spec.overrides.push_back({entry_core, x2, port_to(ft, entry_core, lp.a1)});
  spec.overrides.push_back({lp.a1, x2, port_to(ft, lp.a1, lp.e2)});
  spec.overrides.push_back({lp.e2, x2, port_to(ft, lp.e2, lp.a2)});
  spec.flows.push_back(burst);
  spec.truth.root_cause_flows.push_back(tuple_of(burst));
  (void)half;

  spec.truth.type = spec.type;
  spec.truth.loop_ports = lp.loop_ports;
  spec.truth.congestion_ports = lp.loop_ports;
  return spec;
}

ScenarioSpec make_outofloop_deadlock(const FatTree& ft, const Routing& routing,
                                     Rng& rng, bool by_injection) {
  ScenarioSpec spec;
  spec.name = by_injection ? "out-of-loop-deadlock-injection"
                           : "out-of-loop-deadlock-contention";
  spec.type = by_injection ? AnomalyType::kOutOfLoopDeadlockInjection
                           : AnomalyType::kOutOfLoopDeadlockContention;
  spec.anomaly_start = sim::us(400) + rng.uniform_int(0, sim::us(200));
  spec.duration = sim::ms(2);

  // Same shallow PFC headroom as the in-loop scenario (see comment there).
  spec.xoff_bytes = 32 * 1024;
  spec.xon_bytes = 8 * 1024;
  const int pod = static_cast<int>(rng.uniform_int(0, ft.k - 1));
  const LoopPlan lp = plan_loop(ft, pod);
  const NodeId x = random_host(ft, rng, {}, pod);
  const NodeId y = random_host(ft, rng, {x}, pod);
  add_loop_flows(spec, ft, lp, x, y, sim::us(30));

  // Feeder into the loop: remote host -> he2[1] steered through L1 (A1->E2)
  // so the out-of-loop congestion back-pressures the CBD.
  const PortRef l1 = lp.loop_ports[1];
  const NodeId sink = lp.he2[1];
  const NodeId r = random_host(ft, rng, {x, y}, pod);
  const std::uint16_t rsp =
      force_path_through(routing, r, sink, l1, 4000);
  // 30 G keeps L1 (feeder + burst-via-A1 + two 26 G loop flows) under
  // 100 G pre-anomaly: the loop links must carry no standing contention of
  // their own, or the initiator would look in-loop.
  FlowSpec feeder{r, sink, rsp != 0 ? rsp : static_cast<std::uint16_t>(4000),
                  4791, 100'000'000, sim::us(40), false, 30.0};
  spec.flows.push_back(feeder);
  spec.victim = tuple_of(feeder);

  if (by_injection) {
    // Malfunctioning NIC at the sink keeps PAUSEing its ToR (Figure 1(d)).
    spec.injections.push_back({sink, spec.anomaly_start,
                               spec.anomaly_start + sim::us(800), sim::us(50),
                               65535});
    spec.truth.injecting_host = sink;
  } else {
    // Incast bursts into the sink from two extra directions besides the
    // feeder; rate caps keep every loop link under capacity so the only
    // contention point is the sink port E2 -> he2[1], outside the CBD.
    const NodeId b1 = random_host(ft, rng, {x, y, r}, pod);
    const std::uint16_t b1sp = force_path_through(routing, b1, sink, l1, 4200);
    // Not a ground-truth root cause: once L1 pauses, this 20 G burst is
    // throttled by the loop and contributes little to the sink congestion;
    // it exists to keep causal traffic flowing on L1 during the buildup.
    FlowSpec via_a1{b1, sink, b1sp != 0 ? b1sp : static_cast<std::uint16_t>(4200),
                    4791, 900'000 + rng.uniform_int(0, 300'000),
                    spec.anomaly_start + sim::us(1), false, 15.0};
    spec.flows.push_back(via_a1);

    const NodeId b2 = random_host(ft, rng, {x, y, r, b1}, pod);
    const PortRef a2_down{lp.a2, port_to(ft, lp.a2, lp.e2)};
    const std::uint16_t b2sp =
        force_path_through(routing, b2, sink, a2_down, 4300);
    FlowSpec via_a2{b2, sink, b2sp != 0 ? b2sp : static_cast<std::uint16_t>(4300),
                    4791, 2'000'000 + rng.uniform_int(0, 500'000),
                    spec.anomaly_start + sim::us(2), false, 90.0};
    spec.flows.push_back(via_a2);
    spec.truth.root_cause_flows.push_back(tuple_of(via_a2));

    const NodeId b3 = random_host(ft, rng, {x, y, r, b1, b2}, pod);
    const std::uint16_t b3sp =
        force_path_through(routing, b3, sink, a2_down, 4400);
    FlowSpec via_a2b{b3, sink,
                     b3sp != 0 ? b3sp : static_cast<std::uint16_t>(4400), 4791,
                     1'800'000 + rng.uniform_int(0, 500'000),
                     spec.anomaly_start + sim::us(3), false, 80.0};
    spec.flows.push_back(via_a2b);
    spec.truth.root_cause_flows.push_back(tuple_of(via_a2b));
    spec.truth.congestion_ports = {{lp.e2, port_to(ft, lp.e2, sink)}};
  }

  spec.truth.type = spec.type;
  spec.truth.loop_ports = lp.loop_ports;
  return spec;
}

ScenarioSpec make_normal_contention(const FatTree& ft, const Routing& routing,
                                    Rng& rng) {
  (void)routing;
  ScenarioSpec spec;
  spec.name = "normal-contention";
  spec.type = AnomalyType::kNormalContention;
  spec.anomaly_start = sim::us(300) + rng.uniform_int(0, sim::us(200));
  spec.duration = sim::ms(2);
  // Deep PFC headroom: queues build without PAUSE, the regime where RDMA
  // congestion degenerates to traditional contention (§3.5.2).
  spec.xoff_bytes = 8 * 1024 * 1024;
  spec.xon_bytes = 4 * 1024 * 1024;

  const NodeId w = random_host(ft, rng, {});
  const NodeId v = random_host(ft, rng, {w}, pod_of_host(ft, w));
  // Application-limited victim: persists through the contention window
  // without dominating the queue's packet share.
  FlowSpec victim{v, w, static_cast<std::uint16_t>(rng.uniform_int(100, 999)),
                  4791, 2'000'000, sim::us(10), true, 25.0};
  spec.victim = tuple_of(victim);
  spec.flows.push_back(victim);

  std::vector<NodeId> used{w, v};
  for (int i = 0; i < 3; ++i) {
    const NodeId src = random_host(ft, rng, used);
    used.push_back(src);
    FlowSpec big{src, w, static_cast<std::uint16_t>(5000 + 10 * i), 4791,
                 4'000'000 + rng.uniform_int(0, 500'000),
                 spec.anomaly_start + rng.uniform_int(0, sim::us(5)), false,
                 40.0};
    spec.flows.push_back(big);
    spec.truth.root_cause_flows.push_back(tuple_of(big));
  }
  spec.truth.type = spec.type;
  spec.truth.congestion_ports = {{tor_of(ft, w), port_to(ft, tor_of(ft, w), w)}};
  return spec;
}

ScenarioSpec make_slow_receiver(const FatTree& ft, const Routing& routing,
                                Rng& rng) {
  // Same shape as the storm but with a duty-cycled injection: short pause
  // quanta (~20 us each) re-armed every 40 us, i.e. the NIC drains between
  // pauses like a back-pressured slow receiver rather than a dead one.
  ScenarioSpec spec = make_pfc_storm(ft, routing, rng);
  spec.name = "slow-receiver";
  spec.injections.clear();
  const NodeId h = spec.truth.injecting_host;
  // 4096 quanta at 100 Gbps ~ 21 us of pause per 40 us period.
  spec.injections.push_back({h, spec.anomaly_start,
                             spec.anomaly_start + sim::us(1000), sim::us(40),
                             4096});
  return spec;
}

ScenarioSpec make_ecmp_imbalance(const FatTree& ft, const Routing& routing,
                                 Rng& rng) {
  ScenarioSpec spec;
  spec.name = "ecmp-imbalance";
  spec.type = AnomalyType::kNormalContention;
  spec.anomaly_start = sim::us(300) + rng.uniform_int(0, sim::us(200));
  spec.duration = sim::ms(2);
  // Deep PFC headroom, as in the normal-contention scenario: the skewed
  // uplink queues without pausing anyone.
  spec.xoff_bytes = 8 * 1024 * 1024;
  spec.xon_bytes = 4 * 1024 * 1024;

  // Pick a source edge and its "hot" uplink; every crafted flow is
  // steered onto it by source-port selection while the sibling idles.
  const NodeId vsrc = random_host(ft, rng, {});
  const NodeId e_src = tor_of(ft, vsrc);
  const int pod = pod_of_host(ft, vsrc);
  const NodeId a_hot = ft.aggs[static_cast<size_t>(pod * half_of(ft))];
  const PortRef hot{e_src, port_to(ft, e_src, a_hot)};

  const NodeId vdst = random_host(ft, rng, {vsrc}, pod);
  const std::uint16_t vsp = force_path_through(routing, vsrc, vdst, hot, 500);
  FlowSpec victim{vsrc, vdst, vsp != 0 ? vsp : static_cast<std::uint16_t>(500),
                  4791, 3'000'000, sim::us(10), true, 25.0};
  spec.victim = tuple_of(victim);
  spec.flows.push_back(victim);

  // Sibling host's flows all hash onto the hot uplink (the imbalance).
  const NodeId h1 = [&] {
    for (const NodeId h : hosts_of_edge(
             ft, static_cast<int>(std::find(ft.edges.begin(), ft.edges.end(),
                                            e_src) -
                                  ft.edges.begin()))) {
      if (h != vsrc) return h;
    }
    return vsrc;
  }();
  // Three skewed flows (two from the sibling host, one sharing the
  // victim's NIC) all hash onto the hot uplink: 49+49+60 G against its
  // 100 G while the other agg uplink idles.
  std::vector<NodeId> used{vsrc, vdst, h1};
  for (int i = 0; i < 3; ++i) {
    const NodeId src = i < 2 ? h1 : vsrc;
    const double cap = i < 2 ? 49.0 : 60.0;
    const NodeId dst = random_host(ft, rng, used, pod);
    used.push_back(dst);
    const std::uint16_t sp = force_path_through(
        routing, src, dst, hot, static_cast<std::uint16_t>(6000 + 100 * i));
    FlowSpec skewed{src, dst, sp != 0 ? sp : static_cast<std::uint16_t>(6000),
                    4791, 5'000'000 + rng.uniform_int(0, 500'000),
                    spec.anomaly_start + rng.uniform_int(0, sim::us(5)), false,
                    cap};
    spec.flows.push_back(skewed);
    spec.truth.root_cause_flows.push_back(tuple_of(skewed));
  }

  spec.truth.type = spec.type;
  spec.truth.congestion_ports = {hot};
  spec.truth.expected_cause = diagnosis::ContentionCause::kEcmpImbalance;
  return spec;
}

ScenarioSpec make_path_churn(const FatTree& ft, const Routing& routing,
                             Rng& rng, Time flap_period, Time holddown) {
  ScenarioSpec spec = make_normal_contention(ft, routing, rng);
  spec.name = holddown > 0 ? "path-churn-reconverge" : "path-churn-frozen";

  // The victim is inter-pod by construction (normal contention picks v and
  // w in different pods), so its route has edge->agg->core->agg->edge hops
  // and every switch keeps an ECMP alternative when one port is withdrawn.
  const std::vector<NodeId> sws = routing.switches_on_path(spec.victim);
  if (sws.size() < 2) {
    throw std::runtime_error("make_path_churn: victim path too short");
  }
  fault::LinkFlapSpec lf;
  lf.node_a = sws[sws.size() / 2 - 1];
  lf.node_b = sws[sws.size() / 2];
  // Flap train across the whole contention window: outages of half the
  // period, jittered, starting with the anomaly so the black hole and the
  // crafted contention overlap in the collected telemetry.
  lf.start = spec.anomaly_start;
  lf.stop = spec.duration;
  lf.period_ns = flap_period;
  lf.down_ns = flap_period / 2;
  lf.jitter = 0.5;
  lf.holddown_ns = holddown;

  fault::FaultPlan plan;
  plan.seed = static_cast<std::uint64_t>(
      rng.uniform_int(1, std::numeric_limits<std::int64_t>::max() - 1));
  plan.link_flaps.push_back(lf);
  spec.faults = plan;
  return spec;
}

// ---- Fleet-ops fault scenarios ----

namespace {

std::uint64_t draw_plan_seed(Rng& rng) {
  return static_cast<std::uint64_t>(
      rng.uniform_int(1, std::numeric_limits<std::int64_t>::max() - 1));
}

/// The middle link of the victim's (switch-level) path — far enough from
/// both ends that the fault's symptoms cross several telemetry hops. Same
/// canonical target the runner uses for placeholder flap binding.
std::pair<NodeId, NodeId> middle_victim_link(const Routing& routing,
                                             const ScenarioSpec& spec) {
  const std::vector<NodeId> sws = routing.switches_on_path(spec.victim);
  if (sws.size() < 2) {
    throw std::runtime_error("fleet scenario: victim path too short");
  }
  return {sws[sws.size() / 2 - 1], sws[sws.size() / 2]};
}

/// Layer the selected net_sanitizer traffic pattern over a fleet-fault
/// scenario. kCrafted leaves the spec alone (the runner's background_flows
/// provide ambient load); the RPC mesh centers on the victim's destination
/// (it plays the server), the shuffle group contains both victim endpoints
/// so pattern traffic genuinely shares the faulted element.
void add_fleet_workload(ScenarioSpec& spec, const FatTree& ft, Rng& rng,
                        FleetWorkload w, NodeId vsrc, NodeId vdst) {
  switch (w) {
    case FleetWorkload::kCrafted:
      return;
    case FleetWorkload::kRpcClientServer: {
      for (const FlowSpec& f : rpc_client_server_flows(
               ft, rng, vdst, 3, sim::us(20), spec.duration - sim::us(200))) {
        spec.flows.push_back(f);
      }
      spec.name += "-rpc";
      return;
    }
    case FleetWorkload::kAllToAll: {
      std::vector<NodeId> group{vsrc, vdst};
      while (group.size() < 5) group.push_back(random_host(ft, rng, group));
      for (const FlowSpec& f : all_to_all_flows(ft, rng, group, sim::us(50))) {
        spec.flows.push_back(f);
      }
      spec.name += "-a2a";
      return;
    }
  }
}

}  // namespace

std::string_view to_string(FleetWorkload w) {
  switch (w) {
    case FleetWorkload::kCrafted: return "crafted";
    case FleetWorkload::kRpcClientServer: return "rpc";
    case FleetWorkload::kAllToAll: return "all-to-all";
  }
  return "?";
}

std::vector<device::FlowSpec> rpc_client_server_flows(
    const FatTree& ft, Rng& rng, NodeId server, int clients, Time start,
    Time stop) {
  std::vector<FlowSpec> out;
  std::vector<NodeId> used{server};
  std::uint16_t sport = 26000;
  for (int c = 0; c < clients; ++c) {
    const NodeId cl = random_host(ft, rng, used);
    used.push_back(cl);
    double t = static_cast<double>(start + rng.uniform_int(0, sim::us(40)));
    while (t < static_cast<double>(stop)) {
      const std::int64_t req = 2'000 + rng.uniform_int(0, 14'000);
      const std::int64_t resp = 32'000 + rng.uniform_int(0, 224'000);
      out.push_back({cl, server, sport++, 4791, req, static_cast<Time>(t),
                     true, 0});
      // The response leaves after a short service time; 30 G keeps the
      // server's response fan-out from congesting its own uplink.
      out.push_back({server, cl, sport++, 4791, resp,
                     static_cast<Time>(t) + sim::us(20), true, 30.0});
      t += rng.exponential(static_cast<double>(sim::us(150)));
    }
  }
  return out;
}

std::vector<device::FlowSpec> all_to_all_flows(
    const FatTree& ft, Rng& rng, const std::vector<NodeId>& group,
    Time start) {
  std::vector<FlowSpec> out;
  if (group.size() < 2) return out;
  const double line_gbps = ft.topo.link(0).gbps;
  // A fair NIC share per peer (with 20% slack) keeps the healthy shuffle
  // congestion-free: the fault, not the pattern, must be the anomaly.
  const double cap =
      line_gbps / static_cast<double>(group.size() - 1) * 0.8;
  std::uint16_t sport = 27000;
  for (std::size_t i = 0; i < group.size(); ++i) {
    for (std::size_t j = 0; j < group.size(); ++j) {
      if (i == j) continue;
      out.push_back({group[i], group[j], sport++, 4791,
                     150'000 + rng.uniform_int(0, 100'000),
                     start + rng.uniform_int(0, sim::us(30)), true, cap});
    }
  }
  return out;
}

ScenarioSpec make_degraded_link(const FatTree& ft, const Routing& routing,
                                Rng& rng, FleetWorkload w, double severity) {
  ScenarioSpec spec;
  spec.name = "degraded-link";
  spec.type = AnomalyType::kDegradedLink;
  spec.anomaly_start = sim::us(300) + rng.uniform_int(0, sim::us(200));
  spec.duration = sim::ms(2);

  const NodeId v = random_host(ft, rng, {});
  const NodeId dst = random_host(ft, rng, {v}, pod_of_host(ft, v));
  FlowSpec victim{v, dst,
                  static_cast<std::uint16_t>(rng.uniform_int(100, 999)), 4791,
                  40'000'000, sim::us(10), true, 0};
  spec.victim = tuple_of(victim);
  spec.flows.push_back(victim);

  const auto [la, lb] = middle_victim_link(routing, spec);
  fault::FaultPlan plan;
  plan.seed = draw_plan_seed(rng);
  fault::DegradedLinkSpec dl;
  dl.node_a = la;
  dl.node_b = lb;
  // ~16% per-MTU-frame corruption: enough consecutive go-back-N failures
  // and tail-loss RTOs inside the trace that the stall scan fires within a
  // few hundred microseconds of onset. (A bad cable does not heal: the
  // window runs to the end of the trace.)
  dl.ber = 2e-5 * severity;
  dl.start = spec.anomaly_start;
  dl.stop = -1;
  plan.degraded_links.push_back(dl);
  spec.faults = plan;

  spec.truth.type = spec.type;
  spec.truth.congestion_ports = {{la, port_to(ft, la, lb)},
                                 {lb, port_to(ft, lb, la)}};
  add_fleet_workload(spec, ft, rng, w, v, dst);
  return spec;
}

ScenarioSpec make_speed_mismatch(const FatTree& ft, const Routing& routing,
                                 Rng& rng, FleetWorkload w, double severity) {
  ScenarioSpec spec;
  spec.name = "link-speed-mismatch";
  spec.type = AnomalyType::kLinkSpeedMismatch;
  spec.anomaly_start = sim::us(300) + rng.uniform_int(0, sim::us(200));
  spec.duration = sim::ms(2);
  // Deep PFC headroom (the normal-contention convention): the standing
  // queue at the quarter-speed hop builds in the switch buffer and shows
  // up as end-to-end RTT. With default shallow thresholds the mismatch
  // backpressures hop-by-hop to the sender NIC, where today's RTT probe
  // (measured from wire departure) cannot see it.
  spec.xoff_bytes = 8 * 1024 * 1024;
  spec.xon_bytes = 4 * 1024 * 1024;

  const NodeId v = random_host(ft, rng, {});
  const NodeId dst = random_host(ft, rng, {v}, pod_of_host(ft, v));
  // The victim starts with the anomaly window: a line-rate flow hitting a
  // quarter-speed hop queues immediately, which IS the symptom onset (the
  // link itself has been mis-negotiated since boot).
  FlowSpec victim{v, dst,
                  static_cast<std::uint16_t>(rng.uniform_int(100, 999)), 4791,
                  40'000'000, spec.anomaly_start, true, 0};
  spec.victim = tuple_of(victim);
  spec.flows.push_back(victim);

  const auto [la, lb] = middle_victim_link(routing, spec);
  fault::FaultPlan plan;
  plan.seed = draw_plan_seed(rng);
  fault::LinkSpeedMismatchSpec sm;
  sm.node_a = la;
  sm.node_b = lb;
  // Geometric decay from nominal: x0.5 severity negotiates half rate,
  // the default a quarter, x2 a sixteenth — always reduced, never zero.
  sm.gbps = ft.topo.link(0).gbps * std::pow(0.25, severity);
  sm.start = 0;  // negotiated slow since boot
  sm.stop = -1;
  plan.speed_mismatches.push_back(sm);
  spec.faults = plan;

  spec.truth.type = spec.type;
  spec.truth.congestion_ports = {{la, port_to(ft, la, lb)},
                                 {lb, port_to(ft, lb, la)}};
  add_fleet_workload(spec, ft, rng, w, v, dst);
  return spec;
}

ScenarioSpec make_pcie_bottleneck(const FatTree& ft, const Routing& routing,
                                  Rng& rng, FleetWorkload w, double severity) {
  (void)routing;
  ScenarioSpec spec;
  spec.name = "host-pcie-bottleneck";
  spec.type = AnomalyType::kHostPcieBottleneck;
  spec.anomaly_start = sim::us(300) + rng.uniform_int(0, sim::us(200));
  spec.duration = sim::ms(2);

  const NodeId v = random_host(ft, rng, {});
  const NodeId dst = random_host(ft, rng, {v}, pod_of_host(ft, v));
  // Application-paced at 30 G: comfortably above the capped drain so the
  // DMA backlog grows without bound, but far below fabric capacity — the
  // sender's go-back-N rewinds (spurious, from drain-delayed ACKs) never
  // congest a switch, keeping the "nobody paused, still slow" signature
  // clean. A line-rate victim would turn its own RTO storm into genuine
  // fabric congestion and present as incast instead.
  FlowSpec victim{v, dst,
                  static_cast<std::uint16_t>(rng.uniform_int(100, 999)), 4791,
                  40'000'000, sim::us(10), true, 30.0};
  spec.victim = tuple_of(victim);
  spec.flows.push_back(victim);

  fault::FaultPlan plan;
  plan.seed = draw_plan_seed(rng);
  fault::HostPcieBottleneckSpec hb;
  hb.host = dst;
  // The drain cap falls linearly below the victim's 30 G arrival rate
  // (10 G deficit per unit severity, floored at 2 G): the DMA backlog (and
  // with it every ACK's delay) grows steadily for ANY severity > 0 — RTT
  // blows through the detection threshold shortly after onset, with zero
  // fabric queueing.
  hb.drain_gbps = std::max(2.0, 30.0 - 10.0 * severity);
  hb.start = spec.anomaly_start;
  hb.stop = -1;
  plan.pcie_bottlenecks.push_back(hb);
  spec.faults = plan;

  spec.truth.type = spec.type;
  spec.truth.injecting_host = dst;
  add_fleet_workload(spec, ft, rng, w, v, dst);
  return spec;
}

ScenarioSpec make_oversubscribed_downlink(const FatTree& ft,
                                          const Routing& routing, Rng& rng,
                                          FleetWorkload w, double severity) {
  ScenarioSpec spec;
  spec.name = "oversubscribed-downlink";
  spec.type = AnomalyType::kOversubscribedDownlink;
  spec.anomaly_start = sim::us(300) + rng.uniform_int(0, sim::us(200));
  spec.duration = sim::ms(2);
  // Deep PFC headroom (the normal-contention convention): a capacity
  // shortfall is classic congestion — the standing queue on the reduced
  // down-link must show up as end-to-end RTT at ANY severity, not only
  // when the reduction is harsh enough to drive a shallow buffer to Xoff.
  spec.xoff_bytes = 8 * 1024 * 1024;
  spec.xon_bytes = 4 * 1024 * 1024;

  const NodeId dst = random_host(ft, rng, {});
  const NodeId e_dst = tor_of(ft, dst);
  const int pod = pod_of_host(ft, dst);
  const NodeId v = random_host(ft, rng, {dst}, pod);
  // Application-limited victim: 25 G fits the halved (50 G) down-link on
  // its own, so the pre-contention fabric is healthy even though the tier
  // has been oversubscribed since boot.
  FlowSpec victim{v, dst,
                  static_cast<std::uint16_t>(rng.uniform_int(100, 999)), 4791,
                  6'000'000, sim::us(10), true, 25.0};
  spec.victim = tuple_of(victim);
  spec.flows.push_back(victim);

  // The aggregation switch the victim enters the destination pod through;
  // every one of its down-links is reduced by the spec.
  NodeId a_v = net::kInvalidNode;
  for (const auto& hop : routing.path_of(spec.victim)) {
    if (ft.topo.is_switch(hop.node) &&
        ft.topo.peer(hop.node, hop.port).node == e_dst) {
      a_v = hop.node;
      break;
    }
  }
  if (a_v == net::kInvalidNode) {
    throw std::runtime_error(
        "make_oversubscribed_downlink: no agg hop toward the dst ToR");
  }
  const PortRef via{a_v, port_to(ft, a_v, e_dst)};

  fault::FaultPlan plan;
  plan.seed = draw_plan_seed(rng);
  fault::OversubscribedDownlinkSpec os;
  os.sw = a_v;
  // 0.5^severity of nominal capacity: stays in (0, 1) for any positive
  // severity, halved at the default.
  os.factor = std::pow(0.5, severity);
  os.start = 0;  // tier-wide misprovisioning, present since boot
  os.stop = -1;
  plan.oversub_downlinks.push_back(os);
  spec.faults = plan;

  // Two remote senders into the ToR sibling of the victim's destination,
  // steered through the same reduced down-link: 25 + 30 + 30 G against its
  // halved 50 G is sustained multi-flow contention, while a healthy 100 G
  // link would carry all three without queueing.
  NodeId sibling = net::kInvalidNode;
  for (PortId p = 0; p < ft.topo.port_count(e_dst); ++p) {
    const PortRef pr = ft.topo.peer(e_dst, p);
    if (ft.topo.is_host(pr.node) && pr.node != dst) {
      sibling = pr.node;
      break;
    }
  }
  std::vector<NodeId> used{dst, v, sibling};
  for (int i = 0; i < 2; ++i) {
    const NodeId src = random_host(ft, rng, used, pod);
    used.push_back(src);
    std::uint16_t sp = static_cast<std::uint16_t>(7000 + 100 * i);
    const std::uint16_t forced =
        force_path_through(routing, src, sibling, via, sp);
    if (forced != 0) sp = forced;
    FlowSpec feeder{src, sibling, sp, 4791,
                    8'000'000 + rng.uniform_int(0, 500'000),
                    spec.anomaly_start + rng.uniform_int(0, sim::us(5)), false,
                    30.0};
    spec.flows.push_back(feeder);
    spec.truth.root_cause_flows.push_back(tuple_of(feeder));
  }

  spec.truth.type = spec.type;
  spec.truth.congestion_ports = {via};
  add_fleet_workload(spec, ft, rng, w, v, dst);
  return spec;
}

ScenarioSpec make_benign(const FatTree& ft, const Routing& routing,
                         Rng& rng) {
  (void)routing;
  ScenarioSpec spec;
  spec.name = "benign";
  spec.type = AnomalyType::kNone;
  // No anomaly ever starts; the onset marker only anchors scoring math.
  spec.anomaly_start = sim::us(500);
  spec.duration = sim::ms(2);

  const NodeId src = random_host(ft, rng, {});
  const NodeId dst = random_host(ft, rng, {src}, pod_of_host(ft, src));
  FlowSpec victim{src, dst,
                  static_cast<std::uint16_t>(rng.uniform_int(100, 999)), 4791,
                  10'000'000, sim::us(10), true, 0};
  spec.victim = tuple_of(victim);
  spec.flows.push_back(victim);

  // A handful of light cross-fabric peers: enough concurrent traffic that a
  // trigger-happy detector has something to mis-blame, far too little to
  // congest any port (each is rate-capped well under line rate and the
  // pairs are disjoint).
  std::vector<NodeId> used{src, dst};
  for (int i = 0; i < 3; ++i) {
    const NodeId a = random_host(ft, rng, used);
    used.push_back(a);
    const NodeId b = random_host(ft, rng, used);
    used.push_back(b);
    FlowSpec peer{a, b, static_cast<std::uint16_t>(3000 + 100 * i), 4791,
                  1'000'000 + rng.uniform_int(0, 1'000'000),
                  sim::us(rng.uniform_int(20, 400)), true, 20.0};
    spec.flows.push_back(peer);
  }

  spec.truth.type = AnomalyType::kNone;
  return spec;
}

ScenarioSpec make_fleet_scenario(AnomalyType type, FleetWorkload w,
                                 const FatTree& ft, const Routing& routing,
                                 Rng& rng, double severity) {
  switch (type) {
    case AnomalyType::kDegradedLink:
      return make_degraded_link(ft, routing, rng, w, severity);
    case AnomalyType::kLinkSpeedMismatch:
      return make_speed_mismatch(ft, routing, rng, w, severity);
    case AnomalyType::kHostPcieBottleneck:
      return make_pcie_bottleneck(ft, routing, rng, w, severity);
    case AnomalyType::kOversubscribedDownlink:
      return make_oversubscribed_downlink(ft, routing, rng, w, severity);
    default:
      break;
  }
  throw std::invalid_argument("make_fleet_scenario: not a fleet fault type");
}

ScenarioSpec make_scenario(AnomalyType type, const FatTree& ft,
                           const Routing& routing, Rng& rng) {
  switch (type) {
    case AnomalyType::kMicroBurstIncast:
      return make_incast_burst(ft, routing, rng);
    case AnomalyType::kPfcStorm:
      return make_pfc_storm(ft, routing, rng);
    case AnomalyType::kInLoopDeadlock:
      return make_inloop_deadlock(ft, routing, rng);
    case AnomalyType::kOutOfLoopDeadlockContention:
      return make_outofloop_deadlock(ft, routing, rng, false);
    case AnomalyType::kOutOfLoopDeadlockInjection:
      return make_outofloop_deadlock(ft, routing, rng, true);
    case AnomalyType::kNormalContention:
      return make_normal_contention(ft, routing, rng);
    case AnomalyType::kDegradedLink:
    case AnomalyType::kLinkSpeedMismatch:
    case AnomalyType::kHostPcieBottleneck:
    case AnomalyType::kOversubscribedDownlink:
      return make_fleet_scenario(type, FleetWorkload::kCrafted, ft, routing,
                                 rng);
    case AnomalyType::kNone:
      return make_benign(ft, routing, rng);
  }
  throw std::invalid_argument("make_scenario: unsupported type");
}

std::vector<device::FlowSpec> background_flows(const FatTree& ft, Rng& rng,
                                               double load, Time start,
                                               Time stop) {
  std::vector<FlowSpec> out;
  if (load <= 0) return out;
  const FlowSizeDistribution dist = FlowSizeDistribution::roce_longtail();
  // Long 100 MB+ flows cannot complete inside millisecond traces; clamp to
  // 2 MB so the Poisson arrival rate stays meaningful while keeping the
  // mice-heavy shape (DESIGN.md, substitutions).
  constexpr std::int64_t kCap = 2'000'000;
  const double line_gbps = ft.topo.link(0).gbps;
  const double agg_bits_per_ns =
      load * static_cast<double>(ft.hosts.size()) * line_gbps;
  // Estimate the truncated mean by sampling.
  double mean = 0;
  {
    sim::Rng probe(12345);
    for (int i = 0; i < 2000; ++i) {
      mean += static_cast<double>(std::min(dist.sample(probe), kCap));
    }
    mean /= 2000;
  }
  const double mean_gap_ns = mean * 8.0 / agg_bits_per_ns;

  double t = static_cast<double>(start);
  std::uint16_t sport = 20000;
  while (true) {
    t += rng.exponential(mean_gap_ns);
    if (t >= static_cast<double>(stop)) break;
    const NodeId src = random_host(ft, rng, {});
    const NodeId dst = random_host(ft, rng, {src});
    out.push_back({src, dst, sport++, 4791,
                   std::min(dist.sample(rng), kCap),
                   static_cast<Time>(t), true, 0});
  }
  return out;
}

}  // namespace hawkeye::workload
