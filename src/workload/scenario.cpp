#include "workload/scenario.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <stdexcept>

#include "workload/flow_size.hpp"

namespace hawkeye::workload {

using device::FlowSpec;
using device::tuple_of;
using diagnosis::AnomalyType;
using net::FatTree;
using net::NodeId;
using net::PortId;
using net::PortRef;
using net::Routing;
using sim::Rng;
using sim::Time;

namespace {

int half_of(const FatTree& ft) { return ft.k / 2; }

int pod_of_host(const FatTree& ft, NodeId host) {
  const int half = half_of(ft);
  return static_cast<int>(host) / (half * half);
}

/// Hosts attached to edge switch index `e` (index into ft.edges).
std::vector<NodeId> hosts_of_edge(const FatTree& ft, int e) {
  const int half = half_of(ft);
  std::vector<NodeId> out;
  for (int h = 0; h < half; ++h) {
    out.push_back(ft.hosts[static_cast<size_t>(e * half + h)]);
  }
  return out;
}

NodeId tor_of(const FatTree& ft, NodeId host) {
  return ft.topo.peer(host, 0).node;
}

NodeId random_host(const FatTree& ft, Rng& rng,
                   const std::vector<NodeId>& exclude,
                   int exclude_pod = -1) {
  for (int tries = 0; tries < 1000; ++tries) {
    const NodeId h = ft.hosts[static_cast<size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(ft.hosts.size()) - 1))];
    if (exclude_pod >= 0 && pod_of_host(ft, h) == exclude_pod) continue;
    if (std::find(exclude.begin(), exclude.end(), h) != exclude.end()) continue;
    return h;
  }
  throw std::runtime_error("random_host: exhausted candidates");
}

/// Finds a source port such that the flow src->dst traverses `via` (an
/// egress PortRef), exploiting deterministic ECMP hashing. Crafting-time
/// only; returns 0 on failure.
std::uint16_t force_path_through(const Routing& routing, NodeId src,
                                 NodeId dst, PortRef via,
                                 std::uint16_t base_port) {
  for (std::uint16_t sp = base_port; sp < base_port + 512; ++sp) {
    net::FiveTuple t;
    t.src_ip = net::Topology::ip_of(src);
    t.dst_ip = net::Topology::ip_of(dst);
    t.src_port = sp;
    t.dst_port = 4791;
    const auto path = routing.path_of(t);
    if (std::find(path.begin(), path.end(), via) != path.end()) return sp;
  }
  return 0;
}

/// Same, but matching any hop on the given node.
std::uint16_t force_path_through_node(const Routing& routing, NodeId src,
                                      NodeId dst, NodeId node,
                                      std::uint16_t base_port) {
  for (std::uint16_t sp = base_port; sp < base_port + 512; ++sp) {
    net::FiveTuple t;
    t.src_ip = net::Topology::ip_of(src);
    t.dst_ip = net::Topology::ip_of(dst);
    t.src_port = sp;
    t.dst_port = 4791;
    for (const auto& hop : routing.path_of(t)) {
      if (hop.node == node) return sp;
    }
  }
  return 0;
}

PortId port_to(const FatTree& ft, NodeId from, NodeId to) {
  const PortId p = ft.topo.port_towards(from, to);
  if (p == net::kInvalidPort) {
    throw std::runtime_error("port_to: nodes not adjacent");
  }
  return p;
}

/// The four intra-pod switches and loop egress ports of the crafted CBD:
/// E1 -> A1 -> E2 -> A2 -> E1 (all links exist in a fat-tree pod).
struct LoopPlan {
  NodeId e1, e2, a1, a2;
  std::vector<PortRef> loop_ports;  // paused egress ports forming the cycle
  std::vector<NodeId> he1, he2;     // hosts under e1 / e2
};

LoopPlan plan_loop(const FatTree& ft, int pod) {
  const int half = half_of(ft);
  LoopPlan lp;
  lp.e1 = ft.edges[static_cast<size_t>(pod * half + 0)];
  lp.e2 = ft.edges[static_cast<size_t>(pod * half + 1)];
  lp.a1 = ft.aggs[static_cast<size_t>(pod * half + 0)];
  lp.a2 = ft.aggs[static_cast<size_t>(pod * half + 1)];
  lp.he1 = hosts_of_edge(ft, pod * half + 0);
  lp.he2 = hosts_of_edge(ft, pod * half + 1);
  lp.loop_ports = {
      {lp.e1, port_to(ft, lp.e1, lp.a1)},  // L0
      {lp.a1, port_to(ft, lp.a1, lp.e2)},  // L1
      {lp.e2, port_to(ft, lp.e2, lp.a2)},  // L2
      {lp.a2, port_to(ft, lp.a2, lp.e1)},  // L3
  };
  return lp;
}

/// The four flows that establish the cyclic buffer dependency; each spans
/// two consecutive loop links, kept well below link capacity so the CBD is
/// latent until an initiator congests it (paper §2.1, Figure 1(c)/(d)).
void add_loop_flows(ScenarioSpec& spec, const FatTree& ft, const LoopPlan& lp,
                    NodeId x, NodeId y, Time start) {
  // Three loop flows share the busiest loop links (L0, L2): 28 G each keeps
  // them under capacity while accumulating Xoff (64 KB) within ~10 us once
  // the next link pauses — fast enough for the CBD to lock before the
  // initiator's pause cycle releases.
  const double kLoopGbps = 26.0;
  const std::int64_t kLoopBytes = 100'000'000;

  // F1: he1[0] -> he2[0] over L0,L1.
  spec.flows.push_back({lp.he1[0], lp.he2[0], 101, 4791, kLoopBytes, start,
                        false, kLoopGbps});
  spec.overrides.push_back({lp.e1, lp.he2[0], port_to(ft, lp.e1, lp.a1)});

  // F2: he2[1] -> he1[1] over L2,L3.
  spec.flows.push_back({lp.he2[1], lp.he1[1], 102, 4791, kLoopBytes, start,
                        false, kLoopGbps});
  spec.overrides.push_back({lp.e2, lp.he1[1], port_to(ft, lp.e2, lp.a2)});

  // F3: he1[1] -> X over L0?,L1,L2 (valley-routed down A1 -> E2 -> up A2).
  spec.flows.push_back({lp.he1[1], x, 103, 4791, kLoopBytes, start, false,
                        kLoopGbps});
  spec.overrides.push_back({lp.e1, x, port_to(ft, lp.e1, lp.a1)});
  spec.overrides.push_back({lp.a1, x, port_to(ft, lp.a1, lp.e2)});
  spec.overrides.push_back({lp.e2, x, port_to(ft, lp.e2, lp.a2)});

  // F4: he2[0] -> Y over L2?,L3,L0 (valley-routed down A2 -> E1 -> up A1).
  spec.flows.push_back({lp.he2[0], y, 104, 4791, kLoopBytes, start, false,
                        kLoopGbps});
  spec.overrides.push_back({lp.e2, y, port_to(ft, lp.e2, lp.a2)});
  spec.overrides.push_back({lp.a2, y, port_to(ft, lp.a2, lp.e1)});
  spec.overrides.push_back({lp.e1, y, port_to(ft, lp.e1, lp.a1)});
}

}  // namespace

ScenarioSpec make_incast_burst(const FatTree& ft, const Routing& routing,
                               Rng& rng) {
  ScenarioSpec spec;
  spec.name = "incast-burst";
  spec.type = AnomalyType::kMicroBurstIncast;
  spec.anomaly_start = sim::us(300) + rng.uniform_int(0, sim::us(200));
  spec.duration = sim::ms(2);

  // Burst sink B, victim destination W = B's ToR sibling.
  const NodeId b = random_host(ft, rng, {});
  const NodeId e_b = tor_of(ft, b);
  NodeId w = net::kInvalidNode;
  for (PortId p = 0; p < ft.topo.port_count(e_b); ++p) {
    const PortRef pr = ft.topo.peer(e_b, p);
    if (ft.topo.is_host(pr.node) && pr.node != b) {
      w = pr.node;
      break;
    }
  }
  const NodeId v = random_host(ft, rng, {b, w}, pod_of_host(ft, b));

  FlowSpec victim{v, w, static_cast<std::uint16_t>(rng.uniform_int(100, 999)),
                  4791, 40'000'000, sim::us(10), true, 0};
  spec.victim = tuple_of(victim);
  spec.flows.push_back(victim);

  // Agg switch through which the victim enters B's pod.
  NodeId a_v = net::kInvalidNode;
  for (const auto& hop : routing.path_of(spec.victim)) {
    if (ft.topo.is_switch(hop.node) &&
        ft.topo.peer(hop.node, hop.port).node == e_b) {
      a_v = hop.node;
      break;
    }
  }
  const PortRef via{a_v, port_to(ft, a_v, e_b)};

  // Four synchronized line-rate micro-bursts into B, two of them steered
  // through the victim's agg so the backpressure provably crosses the
  // victim path (paper Figure 1(a)). More than two would bottleneck the
  // incast at the agg downlink instead of the sink port.
  std::vector<NodeId> used{b, w, v};
  for (int i = 0; i < 4; ++i) {
    const NodeId src = random_host(ft, rng, used, pod_of_host(ft, b));
    used.push_back(src);
    std::uint16_t sp =
        static_cast<std::uint16_t>(2000 + 100 * i);
    if (i < 2) {
      const std::uint16_t forced =
          force_path_through(routing, src, b, via, sp);
      if (forced != 0) sp = forced;
    }
    FlowSpec burst{src, b, sp, 4791,
                   500'000 + rng.uniform_int(0, 300'000),
                   spec.anomaly_start + rng.uniform_int(0, sim::us(3)), false,
                   0};
    spec.flows.push_back(burst);
    spec.truth.root_cause_flows.push_back(tuple_of(burst));
  }

  spec.truth.type = spec.type;
  spec.truth.congestion_ports = {{e_b, port_to(ft, e_b, b)}};
  return spec;
}

ScenarioSpec make_pfc_storm(const FatTree& ft, const Routing& routing,
                            Rng& rng) {
  (void)routing;
  ScenarioSpec spec;
  spec.name = "pfc-storm";
  spec.type = AnomalyType::kPfcStorm;
  // The injection start is randomized across a full 1 ms epoch grid so the
  // separation between the pre-anomaly contention blip and the injection
  // depends on epoch size the way §4.2 describes (small epochs always
  // separate the events; 1-2 ms epochs increasingly conflate them).
  spec.anomaly_start = sim::us(800) + rng.uniform_int(0, sim::us(1000));
  spec.duration = sim::ms(3);

  const NodeId h = random_host(ft, rng, {});
  const NodeId v = random_host(ft, rng, {h}, pod_of_host(ft, h));

  // Victim and feeder are rate-capped so the pre-injection fabric is
  // uncongested (40 + 30 < 100 G): every pause observed afterwards is the
  // storm's, not startup incast.
  FlowSpec victim{v, h, static_cast<std::uint16_t>(rng.uniform_int(100, 999)),
                  4791, 40'000'000, sim::us(10), true, 40.0};
  spec.victim = tuple_of(victim);
  spec.flows.push_back(victim);

  // A second feeder widens the storm's blast radius.
  const NodeId f = random_host(ft, rng, {h, v});
  spec.flows.push_back({f, h, 2100, 4791, 20'000'000, sim::us(20), true, 30.0});

  // A small contention blip that ends well before the injection: short
  // epochs separate the two events, a 2 ms epoch conflates them and can
  // mis-attribute the storm to flow contention (the failure mode §4.2
  // describes for long epochs). 25 G keeps it below the port's spare
  // capacity, so it queues briefly without tripping PFC itself.
  const NodeId m1 = random_host(ft, rng, {h, v, f});
  spec.flows.push_back({m1, h, 2200, 4791, 200'000,
                        spec.anomaly_start - sim::us(600), false, 45.0});

  spec.injections.push_back({h, spec.anomaly_start,
                             spec.anomaly_start + sim::us(800), sim::us(50),
                             65535});
  spec.truth.type = spec.type;
  spec.truth.injecting_host = h;
  return spec;
}

ScenarioSpec make_inloop_deadlock(const FatTree& ft, const Routing& routing,
                                  Rng& rng) {
  ScenarioSpec spec;
  spec.name = "in-loop-deadlock";
  spec.type = AnomalyType::kInLoopDeadlock;
  spec.anomaly_start = sim::us(400) + rng.uniform_int(0, sim::us(200));
  spec.duration = sim::ms(2);

  // Shallow PFC headroom (32 K / 8 K): the pause chain around the CBD
  // completes well inside the initiator's lifetime and the stuck bytes at
  // each hop stay above Xon, so the lock is permanent — the paper's
  // "short-duration flow contention (<1 ms) leads to persistent deadlock".
  spec.xoff_bytes = 32 * 1024;
  spec.xon_bytes = 8 * 1024;
  const int pod = static_cast<int>(rng.uniform_int(0, ft.k - 1));
  const LoopPlan lp = plan_loop(ft, pod);
  const NodeId x = random_host(ft, rng, {}, pod);
  const NodeId y = random_host(ft, rng, {x}, pod);
  add_loop_flows(spec, ft, lp, x, y, sim::us(30));
  spec.victim = tuple_of(spec.flows[0]);  // F1 stalls once the CBD locks

  // Initiator inside the loop: a remote burst is valley-routed into the
  // pod by a routing misconfiguration — core -> A1 -> E2 -> A2 -> core —
  // so it rides the loop links L1 and L2 and the contention point is the
  // loop port E2->A2 (L2) itself (Figure 1(c)'s "SW2.P2 encounters
  // micro-bursts"). Because the burst shares E2's ingress-from-A1 with
  // loop flow F3, that ingress reaches Xoff and PFC chases the CBD around;
  // the lock persists long after the burst drains.
  //
  // The burst must enter the pod through a core attached to A1 (the a=0
  // agg group, i.e. cores[0..k/2)).
  const int half = half_of(ft);
  const NodeId entry_core = ft.cores[0];
  NodeId bsrc = net::kInvalidNode;
  NodeId x2 = net::kInvalidNode;
  std::uint16_t bsp = 0;
  for (int tries = 0; tries < 64 && bsp == 0; ++tries) {
    bsrc = random_host(ft, rng, {x, y}, pod);
    x2 = random_host(ft, rng, {x, y, bsrc}, pod);
    if (pod_of_host(ft, x2) == pod_of_host(ft, bsrc)) continue;
    bsp = force_path_through_node(routing, bsrc, x2, entry_core, 3001);
  }
  FlowSpec burst{bsrc, x2, bsp != 0 ? bsp : static_cast<std::uint16_t>(3001),
                 4791, 2'000'000 + rng.uniform_int(0, 500'000),
                 spec.anomaly_start, false, 40.0};
  spec.overrides.push_back({entry_core, x2, port_to(ft, entry_core, lp.a1)});
  spec.overrides.push_back({lp.a1, x2, port_to(ft, lp.a1, lp.e2)});
  spec.overrides.push_back({lp.e2, x2, port_to(ft, lp.e2, lp.a2)});
  spec.flows.push_back(burst);
  spec.truth.root_cause_flows.push_back(tuple_of(burst));
  (void)half;

  spec.truth.type = spec.type;
  spec.truth.loop_ports = lp.loop_ports;
  spec.truth.congestion_ports = lp.loop_ports;
  return spec;
}

ScenarioSpec make_outofloop_deadlock(const FatTree& ft, const Routing& routing,
                                     Rng& rng, bool by_injection) {
  ScenarioSpec spec;
  spec.name = by_injection ? "out-of-loop-deadlock-injection"
                           : "out-of-loop-deadlock-contention";
  spec.type = by_injection ? AnomalyType::kOutOfLoopDeadlockInjection
                           : AnomalyType::kOutOfLoopDeadlockContention;
  spec.anomaly_start = sim::us(400) + rng.uniform_int(0, sim::us(200));
  spec.duration = sim::ms(2);

  // Same shallow PFC headroom as the in-loop scenario (see comment there).
  spec.xoff_bytes = 32 * 1024;
  spec.xon_bytes = 8 * 1024;
  const int pod = static_cast<int>(rng.uniform_int(0, ft.k - 1));
  const LoopPlan lp = plan_loop(ft, pod);
  const NodeId x = random_host(ft, rng, {}, pod);
  const NodeId y = random_host(ft, rng, {x}, pod);
  add_loop_flows(spec, ft, lp, x, y, sim::us(30));

  // Feeder into the loop: remote host -> he2[1] steered through L1 (A1->E2)
  // so the out-of-loop congestion back-pressures the CBD.
  const PortRef l1 = lp.loop_ports[1];
  const NodeId sink = lp.he2[1];
  const NodeId r = random_host(ft, rng, {x, y}, pod);
  const std::uint16_t rsp =
      force_path_through(routing, r, sink, l1, 4000);
  // 30 G keeps L1 (feeder + burst-via-A1 + two 26 G loop flows) under
  // 100 G pre-anomaly: the loop links must carry no standing contention of
  // their own, or the initiator would look in-loop.
  FlowSpec feeder{r, sink, rsp != 0 ? rsp : static_cast<std::uint16_t>(4000),
                  4791, 100'000'000, sim::us(40), false, 30.0};
  spec.flows.push_back(feeder);
  spec.victim = tuple_of(feeder);

  if (by_injection) {
    // Malfunctioning NIC at the sink keeps PAUSEing its ToR (Figure 1(d)).
    spec.injections.push_back({sink, spec.anomaly_start,
                               spec.anomaly_start + sim::us(800), sim::us(50),
                               65535});
    spec.truth.injecting_host = sink;
  } else {
    // Incast bursts into the sink from two extra directions besides the
    // feeder; rate caps keep every loop link under capacity so the only
    // contention point is the sink port E2 -> he2[1], outside the CBD.
    const NodeId b1 = random_host(ft, rng, {x, y, r}, pod);
    const std::uint16_t b1sp = force_path_through(routing, b1, sink, l1, 4200);
    // Not a ground-truth root cause: once L1 pauses, this 20 G burst is
    // throttled by the loop and contributes little to the sink congestion;
    // it exists to keep causal traffic flowing on L1 during the buildup.
    FlowSpec via_a1{b1, sink, b1sp != 0 ? b1sp : static_cast<std::uint16_t>(4200),
                    4791, 900'000 + rng.uniform_int(0, 300'000),
                    spec.anomaly_start + sim::us(1), false, 15.0};
    spec.flows.push_back(via_a1);

    const NodeId b2 = random_host(ft, rng, {x, y, r, b1}, pod);
    const PortRef a2_down{lp.a2, port_to(ft, lp.a2, lp.e2)};
    const std::uint16_t b2sp =
        force_path_through(routing, b2, sink, a2_down, 4300);
    FlowSpec via_a2{b2, sink, b2sp != 0 ? b2sp : static_cast<std::uint16_t>(4300),
                    4791, 2'000'000 + rng.uniform_int(0, 500'000),
                    spec.anomaly_start + sim::us(2), false, 90.0};
    spec.flows.push_back(via_a2);
    spec.truth.root_cause_flows.push_back(tuple_of(via_a2));

    const NodeId b3 = random_host(ft, rng, {x, y, r, b1, b2}, pod);
    const std::uint16_t b3sp =
        force_path_through(routing, b3, sink, a2_down, 4400);
    FlowSpec via_a2b{b3, sink,
                     b3sp != 0 ? b3sp : static_cast<std::uint16_t>(4400), 4791,
                     1'800'000 + rng.uniform_int(0, 500'000),
                     spec.anomaly_start + sim::us(3), false, 80.0};
    spec.flows.push_back(via_a2b);
    spec.truth.root_cause_flows.push_back(tuple_of(via_a2b));
    spec.truth.congestion_ports = {{lp.e2, port_to(ft, lp.e2, sink)}};
  }

  spec.truth.type = spec.type;
  spec.truth.loop_ports = lp.loop_ports;
  return spec;
}

ScenarioSpec make_normal_contention(const FatTree& ft, const Routing& routing,
                                    Rng& rng) {
  (void)routing;
  ScenarioSpec spec;
  spec.name = "normal-contention";
  spec.type = AnomalyType::kNormalContention;
  spec.anomaly_start = sim::us(300) + rng.uniform_int(0, sim::us(200));
  spec.duration = sim::ms(2);
  // Deep PFC headroom: queues build without PAUSE, the regime where RDMA
  // congestion degenerates to traditional contention (§3.5.2).
  spec.xoff_bytes = 8 * 1024 * 1024;
  spec.xon_bytes = 4 * 1024 * 1024;

  const NodeId w = random_host(ft, rng, {});
  const NodeId v = random_host(ft, rng, {w}, pod_of_host(ft, w));
  // Application-limited victim: persists through the contention window
  // without dominating the queue's packet share.
  FlowSpec victim{v, w, static_cast<std::uint16_t>(rng.uniform_int(100, 999)),
                  4791, 2'000'000, sim::us(10), true, 25.0};
  spec.victim = tuple_of(victim);
  spec.flows.push_back(victim);

  std::vector<NodeId> used{w, v};
  for (int i = 0; i < 3; ++i) {
    const NodeId src = random_host(ft, rng, used);
    used.push_back(src);
    FlowSpec big{src, w, static_cast<std::uint16_t>(5000 + 10 * i), 4791,
                 4'000'000 + rng.uniform_int(0, 500'000),
                 spec.anomaly_start + rng.uniform_int(0, sim::us(5)), false,
                 40.0};
    spec.flows.push_back(big);
    spec.truth.root_cause_flows.push_back(tuple_of(big));
  }
  spec.truth.type = spec.type;
  spec.truth.congestion_ports = {{tor_of(ft, w), port_to(ft, tor_of(ft, w), w)}};
  return spec;
}

ScenarioSpec make_slow_receiver(const FatTree& ft, const Routing& routing,
                                Rng& rng) {
  // Same shape as the storm but with a duty-cycled injection: short pause
  // quanta (~20 us each) re-armed every 40 us, i.e. the NIC drains between
  // pauses like a back-pressured slow receiver rather than a dead one.
  ScenarioSpec spec = make_pfc_storm(ft, routing, rng);
  spec.name = "slow-receiver";
  spec.injections.clear();
  const NodeId h = spec.truth.injecting_host;
  // 4096 quanta at 100 Gbps ~ 21 us of pause per 40 us period.
  spec.injections.push_back({h, spec.anomaly_start,
                             spec.anomaly_start + sim::us(1000), sim::us(40),
                             4096});
  return spec;
}

ScenarioSpec make_ecmp_imbalance(const FatTree& ft, const Routing& routing,
                                 Rng& rng) {
  ScenarioSpec spec;
  spec.name = "ecmp-imbalance";
  spec.type = AnomalyType::kNormalContention;
  spec.anomaly_start = sim::us(300) + rng.uniform_int(0, sim::us(200));
  spec.duration = sim::ms(2);
  // Deep PFC headroom, as in the normal-contention scenario: the skewed
  // uplink queues without pausing anyone.
  spec.xoff_bytes = 8 * 1024 * 1024;
  spec.xon_bytes = 4 * 1024 * 1024;

  // Pick a source edge and its "hot" uplink; every crafted flow is
  // steered onto it by source-port selection while the sibling idles.
  const NodeId vsrc = random_host(ft, rng, {});
  const NodeId e_src = tor_of(ft, vsrc);
  const int pod = pod_of_host(ft, vsrc);
  const NodeId a_hot = ft.aggs[static_cast<size_t>(pod * half_of(ft))];
  const PortRef hot{e_src, port_to(ft, e_src, a_hot)};

  const NodeId vdst = random_host(ft, rng, {vsrc}, pod);
  const std::uint16_t vsp = force_path_through(routing, vsrc, vdst, hot, 500);
  FlowSpec victim{vsrc, vdst, vsp != 0 ? vsp : static_cast<std::uint16_t>(500),
                  4791, 3'000'000, sim::us(10), true, 25.0};
  spec.victim = tuple_of(victim);
  spec.flows.push_back(victim);

  // Sibling host's flows all hash onto the hot uplink (the imbalance).
  const NodeId h1 = [&] {
    for (const NodeId h : hosts_of_edge(
             ft, static_cast<int>(std::find(ft.edges.begin(), ft.edges.end(),
                                            e_src) -
                                  ft.edges.begin()))) {
      if (h != vsrc) return h;
    }
    return vsrc;
  }();
  // Three skewed flows (two from the sibling host, one sharing the
  // victim's NIC) all hash onto the hot uplink: 49+49+60 G against its
  // 100 G while the other agg uplink idles.
  std::vector<NodeId> used{vsrc, vdst, h1};
  for (int i = 0; i < 3; ++i) {
    const NodeId src = i < 2 ? h1 : vsrc;
    const double cap = i < 2 ? 49.0 : 60.0;
    const NodeId dst = random_host(ft, rng, used, pod);
    used.push_back(dst);
    const std::uint16_t sp = force_path_through(
        routing, src, dst, hot, static_cast<std::uint16_t>(6000 + 100 * i));
    FlowSpec skewed{src, dst, sp != 0 ? sp : static_cast<std::uint16_t>(6000),
                    4791, 5'000'000 + rng.uniform_int(0, 500'000),
                    spec.anomaly_start + rng.uniform_int(0, sim::us(5)), false,
                    cap};
    spec.flows.push_back(skewed);
    spec.truth.root_cause_flows.push_back(tuple_of(skewed));
  }

  spec.truth.type = spec.type;
  spec.truth.congestion_ports = {hot};
  spec.truth.expected_cause = diagnosis::ContentionCause::kEcmpImbalance;
  return spec;
}

ScenarioSpec make_path_churn(const FatTree& ft, const Routing& routing,
                             Rng& rng, Time flap_period, Time holddown) {
  ScenarioSpec spec = make_normal_contention(ft, routing, rng);
  spec.name = holddown > 0 ? "path-churn-reconverge" : "path-churn-frozen";

  // The victim is inter-pod by construction (normal contention picks v and
  // w in different pods), so its route has edge->agg->core->agg->edge hops
  // and every switch keeps an ECMP alternative when one port is withdrawn.
  const std::vector<NodeId> sws = routing.switches_on_path(spec.victim);
  if (sws.size() < 2) {
    throw std::runtime_error("make_path_churn: victim path too short");
  }
  fault::LinkFlapSpec lf;
  lf.node_a = sws[sws.size() / 2 - 1];
  lf.node_b = sws[sws.size() / 2];
  // Flap train across the whole contention window: outages of half the
  // period, jittered, starting with the anomaly so the black hole and the
  // crafted contention overlap in the collected telemetry.
  lf.start = spec.anomaly_start;
  lf.stop = spec.duration;
  lf.period_ns = flap_period;
  lf.down_ns = flap_period / 2;
  lf.jitter = 0.5;
  lf.holddown_ns = holddown;

  fault::FaultPlan plan;
  plan.seed = static_cast<std::uint64_t>(
      rng.uniform_int(1, std::numeric_limits<std::int64_t>::max() - 1));
  plan.link_flaps.push_back(lf);
  spec.faults = plan;
  return spec;
}

ScenarioSpec make_scenario(AnomalyType type, const FatTree& ft,
                           const Routing& routing, Rng& rng) {
  switch (type) {
    case AnomalyType::kMicroBurstIncast:
      return make_incast_burst(ft, routing, rng);
    case AnomalyType::kPfcStorm:
      return make_pfc_storm(ft, routing, rng);
    case AnomalyType::kInLoopDeadlock:
      return make_inloop_deadlock(ft, routing, rng);
    case AnomalyType::kOutOfLoopDeadlockContention:
      return make_outofloop_deadlock(ft, routing, rng, false);
    case AnomalyType::kOutOfLoopDeadlockInjection:
      return make_outofloop_deadlock(ft, routing, rng, true);
    case AnomalyType::kNormalContention:
      return make_normal_contention(ft, routing, rng);
    case AnomalyType::kNone:
      break;
  }
  throw std::invalid_argument("make_scenario: unsupported type");
}

std::vector<device::FlowSpec> background_flows(const FatTree& ft, Rng& rng,
                                               double load, Time start,
                                               Time stop) {
  std::vector<FlowSpec> out;
  if (load <= 0) return out;
  const FlowSizeDistribution dist = FlowSizeDistribution::roce_longtail();
  // Long 100 MB+ flows cannot complete inside millisecond traces; clamp to
  // 2 MB so the Poisson arrival rate stays meaningful while keeping the
  // mice-heavy shape (DESIGN.md, substitutions).
  constexpr std::int64_t kCap = 2'000'000;
  const double line_gbps = ft.topo.link(0).gbps;
  const double agg_bits_per_ns =
      load * static_cast<double>(ft.hosts.size()) * line_gbps;
  // Estimate the truncated mean by sampling.
  double mean = 0;
  {
    sim::Rng probe(12345);
    for (int i = 0; i < 2000; ++i) {
      mean += static_cast<double>(std::min(dist.sample(probe), kCap));
    }
    mean /= 2000;
  }
  const double mean_gap_ns = mean * 8.0 / agg_bits_per_ns;

  double t = static_cast<double>(start);
  std::uint16_t sport = 20000;
  while (true) {
    t += rng.exponential(mean_gap_ns);
    if (t >= static_cast<double>(stop)) break;
    const NodeId src = random_host(ft, rng, {});
    const NodeId dst = random_host(ft, rng, {src});
    out.push_back({src, dst, sport++, 4791,
                   std::min(dist.sample(rng), kCap),
                   static_cast<Time>(t), true, 0});
  }
  return out;
}

}  // namespace hawkeye::workload
