#include "workload/overlay.hpp"

#include <algorithm>
#include <cmath>

namespace hawkeye::workload {

namespace {

using sim::Time;

Time scale_time(Time t, double s, Time floor_ns) {
  const double v = static_cast<double>(t) * s;
  return std::max(floor_ns, static_cast<Time>(std::llround(v)));
}

double clamp01(double p) { return std::min(1.0, std::max(0.0, p)); }

/// Scale a group of mutually-exclusive probabilities and renormalize so
/// their sum stays <= 1 (the injector draws one variate per site).
void scale_probs(double s, std::initializer_list<double*> ps) {
  double sum = 0;
  for (double* p : ps) {
    *p = clamp01(*p * s);
    sum += *p;
  }
  if (sum > 1.0) {
    for (double* p : ps) *p /= sum;
  }
}

void scale_window(Time start, Time& stop, double s) {
  if (stop < 0 || s == 1.0) return;  // unbounded windows keep their sentinel
  stop = start + scale_time(stop - start, s, 1);
}

void scale_fault_plan(fault::FaultPlan& plan, double rate_s, double win_s) {
  for (fault::PollFaultSpec& f : plan.poll_faults) {
    scale_probs(rate_s, {&f.drop_prob, &f.duplicate_prob, &f.delay_prob});
    scale_window(f.start, f.stop, win_s);
  }
  for (fault::DmaFaultSpec& f : plan.dma_faults) {
    scale_probs(rate_s, {&f.fail_prob, &f.stale_prob});
    scale_window(f.start, f.stop, win_s);
  }
  for (fault::AgentBlackout& f : plan.blackouts) {
    scale_window(f.start, f.stop, win_s);
  }
  for (fault::LinkFlapSpec& f : plan.link_flaps) {
    scale_window(f.start, f.stop, win_s);
    f.down_ns = scale_time(f.down_ns, win_s, 1);
    if (f.period_ns != 0 && f.period_ns < f.down_ns) f.down_ns = f.period_ns;
  }
  for (fault::PfcFrameFaultSpec& f : plan.pfc_faults) {
    scale_probs(rate_s, {&f.loss_prob, &f.delay_prob});
    scale_window(f.start, f.stop, win_s);
  }
  plan.rtt_jitter.prob = clamp01(plan.rtt_jitter.prob * rate_s);
  for (fault::DegradedLinkSpec& f : plan.degraded_links) {
    f.ber = clamp01(f.ber * rate_s);
    scale_window(f.start, f.stop, win_s);
  }
  for (fault::LinkSpeedMismatchSpec& f : plan.speed_mismatches) {
    scale_window(f.start, f.stop, win_s);
  }
  for (fault::HostPcieBottleneckSpec& f : plan.pcie_bottlenecks) {
    scale_window(f.start, f.stop, win_s);
  }
  for (fault::OversubscribedDownlinkSpec& f : plan.oversub_downlinks) {
    scale_window(f.start, f.stop, win_s);
  }
}

}  // namespace

std::string ScenarioOverlay::validate() const {
  if (size_scale <= 0) return "overlay: non-positive size_scale";
  if (rate_scale <= 0) return "overlay: non-positive rate_scale";
  if (arrival_stride_ns < 0) return "overlay: negative arrival_stride_ns";
  if (fault_rate_scale < 0) return "overlay: negative fault_rate_scale";
  if (fault_window_scale <= 0) {
    return "overlay: non-positive fault_window_scale";
  }
  return {};
}

void apply_overlay(ScenarioSpec& spec, const ScenarioOverlay& o) {
  if (!o.enabled()) return;

  const auto protected_tuple = [&](const net::FiveTuple& t) {
    if (t == spec.victim) return true;
    return std::find(spec.truth.root_cause_flows.begin(),
                     spec.truth.root_cause_flows.end(),
                     t) != spec.truth.root_cause_flows.end();
  };

  // Per-flow mutations keyed by the crafted (pre-drop) index so a case
  // file's indices stay meaningful regardless of which drops apply.
  constexpr std::int64_t kMtuBytes = 1000;
  for (std::size_t i = 0; i < spec.flows.size(); ++i) {
    device::FlowSpec& f = spec.flows[i];
    if (device::tuple_of(f) == spec.victim) continue;
    if (o.size_scale != 1.0) {
      f.bytes = std::max<std::int64_t>(
          kMtuBytes, static_cast<std::int64_t>(
                         std::llround(static_cast<double>(f.bytes) *
                                      o.size_scale)));
    }
    if (o.rate_scale != 1.0 && f.rate_cap_gbps > 0) {
      f.rate_cap_gbps *= o.rate_scale;
    }
    f.start += static_cast<sim::Time>(i) * o.arrival_stride_ns;
  }

  if (!o.drop_flows.empty()) {
    std::vector<std::uint32_t> idx = o.drop_flows;
    std::sort(idx.begin(), idx.end());
    idx.erase(std::unique(idx.begin(), idx.end()), idx.end());
    for (auto it = idx.rbegin(); it != idx.rend(); ++it) {
      if (*it >= spec.flows.size()) continue;
      if (protected_tuple(device::tuple_of(spec.flows[*it]))) continue;
      spec.flows.erase(spec.flows.begin() +
                       static_cast<std::ptrdiff_t>(*it));
    }
  }

  if (o.duration_add_ns != 0) {
    // Keep the run long enough to cover the onset plus one detection
    // interval — a trace cut before its own anomaly is not a scenario.
    const sim::Time floor_ns =
        std::max<sim::Time>(spec.anomaly_start + sim::us(200), sim::us(300));
    spec.duration = std::max(floor_ns, spec.duration + o.duration_add_ns);
  }

  if (spec.faults &&
      (o.fault_rate_scale != 1.0 || o.fault_window_scale != 1.0)) {
    scale_fault_plan(*spec.faults, o.fault_rate_scale, o.fault_window_scale);
  }
}

}  // namespace hawkeye::workload
