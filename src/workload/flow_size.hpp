#pragma once

#include <cstdint>
#include <vector>

#include "sim/random.hpp"

namespace hawkeye::workload {

/// Empirical long-tailed RoCEv2 flow-size distribution (paper §4.1, after
/// the Facebook datacenter study [Roy et al.]): ~80% of flows below 10 MB,
/// ~10% between 10 and 100 MB, ~10% between 100 and 300 MB. Within each
/// band, sizes are log-uniform, which reproduces the heavy mice-flow
/// population the paper calls out (§2.2).
class FlowSizeDistribution {
 public:
  struct Band {
    double cum_prob;       // upper cumulative probability of the band
    std::int64_t lo_bytes;
    std::int64_t hi_bytes;
  };

  /// The paper's distribution.
  static FlowSizeDistribution roce_longtail();

  /// A mice-heavy variant for stress tests (all flows < 1 MB).
  static FlowSizeDistribution mice_only();

  explicit FlowSizeDistribution(std::vector<Band> bands);

  std::int64_t sample(sim::Rng& rng) const;
  double mean_bytes() const { return mean_; }

 private:
  std::vector<Band> bands_;
  double mean_ = 0;
};

}  // namespace hawkeye::workload
