#include "workload/flow_size.hpp"

#include <cmath>
#include <stdexcept>

namespace hawkeye::workload {

FlowSizeDistribution FlowSizeDistribution::roce_longtail() {
  return FlowSizeDistribution({
      // 60% mice below 100 KB, 20% up to 10 MB (=> 80% < 10 MB),
      // 10% in 10–100 MB, 10% in 100–300 MB.
      {0.60, 1'000, 100'000},
      {0.80, 100'000, 10'000'000},
      {0.90, 10'000'000, 100'000'000},
      {1.00, 100'000'000, 300'000'000},
  });
}

FlowSizeDistribution FlowSizeDistribution::mice_only() {
  return FlowSizeDistribution({
      {0.80, 1'000, 64'000},
      {1.00, 64'000, 1'000'000},
  });
}

FlowSizeDistribution::FlowSizeDistribution(std::vector<Band> bands)
    : bands_(std::move(bands)) {
  if (bands_.empty() || bands_.back().cum_prob != 1.0) {
    throw std::invalid_argument("flow-size bands must end at cum_prob 1.0");
  }
  double prev = 0;
  for (const Band& b : bands_) {
    if (b.cum_prob <= prev || b.lo_bytes <= 0 || b.hi_bytes < b.lo_bytes) {
      throw std::invalid_argument("malformed flow-size band");
    }
    // Mean of a log-uniform on [lo, hi]: (hi - lo) / ln(hi / lo).
    const double lo = static_cast<double>(b.lo_bytes);
    const double hi = static_cast<double>(b.hi_bytes);
    const double band_mean =
        hi > lo ? (hi - lo) / std::log(hi / lo) : lo;
    mean_ += (b.cum_prob - prev) * band_mean;
    prev = b.cum_prob;
  }
}

std::int64_t FlowSizeDistribution::sample(sim::Rng& rng) const {
  const double u = rng.uniform_real(0.0, 1.0);
  for (const Band& b : bands_) {
    if (u <= b.cum_prob) {
      const double lo = std::log(static_cast<double>(b.lo_bytes));
      const double hi = std::log(static_cast<double>(b.hi_bytes));
      const double v = std::exp(rng.uniform_real(lo, hi));
      return static_cast<std::int64_t>(v);
    }
  }
  return bands_.back().hi_bytes;
}

}  // namespace hawkeye::workload
