#include "eval/testbed.hpp"

#include <stdexcept>

namespace hawkeye::eval {

namespace {
/// Spatial partition for sharded runs: whole pods (hosts + edge + agg
/// switches) stay together — every intra-pod hop is then shard-local and
/// only pod-boundary (agg<->core) hops cross a mailbox. Cores are dealt
/// round-robin.
std::vector<int> fat_tree_shard_map(const net::FatTree& ft, int shards) {
  std::vector<int> map(ft.topo.node_count(), 0);
  const auto pods = static_cast<std::size_t>(ft.k);
  const std::size_t hosts_per_pod = ft.hosts.size() / pods;
  const std::size_t sw_per_pod = ft.edges.size() / pods;  // k/2
  const auto s = static_cast<std::size_t>(shards);
  for (std::size_t i = 0; i < ft.hosts.size(); ++i) {
    map[static_cast<std::size_t>(ft.hosts[i])] =
        static_cast<int>((i / hosts_per_pod) % s);
  }
  for (std::size_t i = 0; i < ft.edges.size(); ++i) {
    map[static_cast<std::size_t>(ft.edges[i])] =
        static_cast<int>((i / sw_per_pod) % s);
  }
  for (std::size_t i = 0; i < ft.aggs.size(); ++i) {
    map[static_cast<std::size_t>(ft.aggs[i])] =
        static_cast<int>((i / sw_per_pod) % s);
  }
  for (std::size_t i = 0; i < ft.cores.size(); ++i) {
    map[static_cast<std::size_t>(ft.cores[i])] = static_cast<int>(i % s);
  }
  return map;
}
}  // namespace

Testbed::Testbed(const Options& opts)
    : ft(net::build_fat_tree(opts.fat_tree_k, opts.link_gbps,
                             opts.link_delay_ns)),
      routing(ft.topo),
      net(simu, ft.topo),
      collector(opts.collector_cfg) {
  if (opts.shards > 1) {
    // Must precede every schedule AND every agent construction (the agents
    // size their per-shard lanes from the simulator's shard layout).
    simu.configure_shards(opts.shards, opts.link_delay_ns);
    net.set_shard_map(fat_tree_shard_map(ft, opts.shards));
  }
  collector.attach_simulator(simu);
  switch_agent =
      std::make_unique<collect::HawkeyeSwitchAgent>(collector,
                                                    opts.switch_agent_cfg);
  switch_agent->prepare(
      simu.sharded() ? static_cast<std::size_t>(simu.control_shard()) + 1 : 1);
  for (const net::NodeId sw : ft.topo.switches()) {
    // Setup-time schedules from a device's constructor (telemetry epoch
    // refresh etc.) must land on the shard that owns the device.
    simu.with_setup_shard(net.shard_of(sw), [&] {
      switches_.push_back(
          std::make_unique<device::Switch>(net, routing, sw, opts.switch_cfg));
    });
    if (opts.install_hawkeye) {
      switches_.back()->set_polling_handler(switch_agent.get());
      collector.register_switch(*switches_.back());
    }
  }
  agent = std::make_unique<collect::DetectionAgent>(net, routing, collector,
                                                    opts.agent_cfg);
  for (const net::NodeId h : ft.topo.hosts()) {
    simu.with_setup_shard(net.shard_of(h), [&] {
      hosts_.push_back(std::make_unique<device::Host>(net, h, opts.dcqcn));
    });
    if (opts.install_hawkeye) agent->attach(*hosts_.back());
  }
  if (opts.install_hawkeye) agent->start();
  install_faults(opts.fault_plan);
}

void Testbed::install_faults(const fault::FaultPlan& plan) {
  if (!plan.enabled()) return;
  if (const std::string err = plan.validate(); !err.empty()) {
    throw std::invalid_argument("Testbed::install_faults: " + err);
  }
  faults = std::make_unique<fault::FaultInjector>(plan);
  // Expand topology-level oversubscription specs into per-link rate
  // overrides: the injector has no tier knowledge, the testbed does. The
  // down-links of an aggregation switch feed the pod's edge switches; the
  // down-links of an edge switch feed its hosts. kInvalidNode targets
  // every aggregation switch (the classic oversubscribed tier).
  for (const fault::OversubscribedDownlinkSpec& s : plan.oversub_downlinks) {
    const auto expand = [&](net::NodeId sw,
                            const std::vector<net::NodeId>& below) {
      for (const net::NodeId peer : below) {
        const net::PortId port = ft.topo.port_towards(sw, peer);
        if (port == net::kInvalidPort) continue;
        const std::int64_t lid = ft.topo.link_of(sw, port);
        if (lid < 0) continue;
        const double nominal =
            ft.topo.link(static_cast<std::size_t>(lid)).gbps;
        faults->bind_rate_override(sw, peer, nominal * s.factor, s.start,
                                   s.stop, /*oversub=*/true);
      }
    };
    for (const net::NodeId agg : ft.aggs) {
      if (s.sw == net::kInvalidNode || s.sw == agg) expand(agg, ft.edges);
    }
    for (const net::NodeId edge : ft.edges) {
      if (s.sw == edge) expand(edge, ft.hosts);
    }
  }
  net.set_fault_injector(faults.get());
  if (faults->reconvergence_enabled()) net.schedule_reconvergence(routing);
  for (auto& sw : switches_) sw->set_fault_injector(faults.get());
  for (auto& h : hosts_) h->set_fault_injector(faults.get());
  collector.set_fault_injector(faults.get());
  agent->set_fault_injector(faults.get());
}

device::Host& Testbed::host(net::NodeId id) {
  for (auto& h : hosts_) {
    if (h->id() == id) return *h;
  }
  throw std::out_of_range("Testbed::host: unknown host id");
}

device::Switch& Testbed::switch_at(net::NodeId id) {
  for (auto& s : switches_) {
    if (s->id() == id) return *s;
  }
  throw std::out_of_range("Testbed::switch_at: unknown switch id");
}

std::uint64_t Testbed::add_flow(const device::FlowSpec& spec) {
  // Flow-start events are setup-time schedules owned by the source host.
  std::uint64_t id = 0;
  simu.with_setup_shard(net.shard_of(spec.src),
                        [&] { id = host(spec.src).add_flow(spec); });
  return id;
}

void Testbed::install(const workload::ScenarioSpec& spec) {
  for (const auto& ov : spec.overrides) {
    routing.add_override(ov.sw, ov.dst, ov.port);
  }
  for (const auto& f : spec.flows) add_flow(f);
  for (const auto& inj : spec.injections) {
    simu.with_setup_shard(net.shard_of(inj.host), [&] {
      host(inj.host).inject_pfc(inj.start, inj.stop, inj.period, inj.quanta);
    });
  }
  if (spec.faults) install_faults(*spec.faults);
}

const device::FlowStats* Testbed::stats_of(const net::FiveTuple& tuple) const {
  for (const auto& h : hosts_) {
    for (const auto& st : h->flow_stats()) {
      if (st.tuple == tuple) return &st;
    }
  }
  return nullptr;
}

}  // namespace hawkeye::eval
