#include "eval/testbed.hpp"

#include <stdexcept>

namespace hawkeye::eval {

Testbed::Testbed(const Options& opts)
    : ft(net::build_fat_tree(opts.fat_tree_k, opts.link_gbps,
                             opts.link_delay_ns)),
      routing(ft.topo),
      net(simu, ft.topo),
      collector(opts.collector_cfg) {
  collector.attach_simulator(simu);
  switch_agent =
      std::make_unique<collect::HawkeyeSwitchAgent>(collector,
                                                    opts.switch_agent_cfg);
  for (const net::NodeId sw : ft.topo.switches()) {
    switches_.push_back(
        std::make_unique<device::Switch>(net, routing, sw, opts.switch_cfg));
    if (opts.install_hawkeye) {
      switches_.back()->set_polling_handler(switch_agent.get());
      collector.register_switch(*switches_.back());
    }
  }
  agent = std::make_unique<collect::DetectionAgent>(net, routing, collector,
                                                    opts.agent_cfg);
  for (const net::NodeId h : ft.topo.hosts()) {
    hosts_.push_back(std::make_unique<device::Host>(net, h, opts.dcqcn));
    if (opts.install_hawkeye) agent->attach(*hosts_.back());
  }
  if (opts.install_hawkeye) agent->start();
  install_faults(opts.fault_plan);
}

void Testbed::install_faults(const fault::FaultPlan& plan) {
  if (!plan.enabled()) return;
  if (const std::string err = plan.validate(); !err.empty()) {
    throw std::invalid_argument("Testbed::install_faults: " + err);
  }
  faults = std::make_unique<fault::FaultInjector>(plan);
  net.set_fault_injector(faults.get());
  if (faults->reconvergence_enabled()) net.schedule_reconvergence(routing);
  for (auto& sw : switches_) sw->set_fault_injector(faults.get());
  collector.set_fault_injector(faults.get());
  agent->set_fault_injector(faults.get());
}

device::Host& Testbed::host(net::NodeId id) {
  for (auto& h : hosts_) {
    if (h->id() == id) return *h;
  }
  throw std::out_of_range("Testbed::host: unknown host id");
}

device::Switch& Testbed::switch_at(net::NodeId id) {
  for (auto& s : switches_) {
    if (s->id() == id) return *s;
  }
  throw std::out_of_range("Testbed::switch_at: unknown switch id");
}

std::uint64_t Testbed::add_flow(const device::FlowSpec& spec) {
  return host(spec.src).add_flow(spec);
}

void Testbed::install(const workload::ScenarioSpec& spec) {
  for (const auto& ov : spec.overrides) {
    routing.add_override(ov.sw, ov.dst, ov.port);
  }
  for (const auto& f : spec.flows) add_flow(f);
  for (const auto& inj : spec.injections) {
    host(inj.host).inject_pfc(inj.start, inj.stop, inj.period, inj.quanta);
  }
  if (spec.faults) install_faults(*spec.faults);
}

const device::FlowStats* Testbed::stats_of(const net::FiveTuple& tuple) const {
  for (const auto& h : hosts_) {
    for (const auto& st : h->flow_stats()) {
      if (st.tuple == tuple) return &st;
    }
  }
  return nullptr;
}

}  // namespace hawkeye::eval
