#include "eval/scenario_io.hpp"

#include <cerrno>
#include <cstdlib>
#include <sstream>
#include <vector>

#include "eval/canonical.hpp"

namespace hawkeye::eval {

namespace {

using diagnosis::AnomalyType;
using workload::FleetWorkload;

constexpr AnomalyType kAllAnomalies[] = {
    AnomalyType::kNone,
    AnomalyType::kMicroBurstIncast,
    AnomalyType::kPfcStorm,
    AnomalyType::kInLoopDeadlock,
    AnomalyType::kOutOfLoopDeadlockContention,
    AnomalyType::kOutOfLoopDeadlockInjection,
    AnomalyType::kNormalContention,
    AnomalyType::kDegradedLink,
    AnomalyType::kLinkSpeedMismatch,
    AnomalyType::kHostPcieBottleneck,
    AnomalyType::kOversubscribedDownlink,
};
constexpr Method kAllMethods[] = {
    Method::kHawkeye,    Method::kFullPolling, Method::kVictimOnly,
    Method::kSpiderMon,  Method::kNetSight,
};
constexpr FleetWorkload kAllFleetWorkloads[] = {
    FleetWorkload::kCrafted,
    FleetWorkload::kRpcClientServer,
    FleetWorkload::kAllToAll,
};

std::string_view mode_name(telemetry::TelemetryMode m) {
  switch (m) {
    case telemetry::TelemetryMode::kFull: return "full";
    case telemetry::TelemetryMode::kPortOnly: return "port-only";
    case telemetry::TelemetryMode::kFlowOnly: return "flow-only";
    case telemetry::TelemetryMode::kOff: return "off";
  }
  return "?";
}

[[noreturn]] void fail(const std::string& line, const std::string& why) {
  throw std::invalid_argument("scenario_io: " + why + " in line \"" + line +
                              "\"");
}

std::int64_t to_i64(const std::string& line, const std::string& v) {
  errno = 0;
  char* end = nullptr;
  const long long r = std::strtoll(v.c_str(), &end, 10);
  if (end == v.c_str() || *end != '\0' || errno == ERANGE) {
    fail(line, "bad integer");
  }
  return r;
}

std::uint64_t to_u64(const std::string& line, const std::string& v) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long r = std::strtoull(v.c_str(), &end, 10);
  if (end == v.c_str() || *end != '\0' || errno == ERANGE ||
      (!v.empty() && v[0] == '-')) {
    fail(line, "bad unsigned integer");
  }
  return r;
}

double to_f(const std::string& line, const std::string& v) {
  errno = 0;
  char* end = nullptr;
  const double r = std::strtod(v.c_str(), &end);
  if (end == v.c_str() || *end != '\0' || errno == ERANGE) {
    fail(line, "bad number");
  }
  return r;
}

bool to_bool(const std::string& line, const std::string& v) {
  if (v == "0") return false;
  if (v == "1") return true;
  fail(line, "bad bool (want 0 or 1)");
}

net::NodeId to_node(const std::string& line, const std::string& v) {
  return static_cast<net::NodeId>(to_i64(line, v));
}

AnomalyType to_anomaly(const std::string& line, const std::string& v) {
  for (const AnomalyType t : kAllAnomalies) {
    if (diagnosis::to_string(t) == v) return t;
  }
  fail(line, "unknown anomaly type");
}

Method to_method(const std::string& line, const std::string& v) {
  for (const Method m : kAllMethods) {
    if (to_string(m) == v) return m;
  }
  fail(line, "unknown method");
}

FleetWorkload to_fleet_workload(const std::string& line,
                                const std::string& v) {
  for (const FleetWorkload w : kAllFleetWorkloads) {
    if (workload::to_string(w) == v) return w;
  }
  fail(line, "unknown fleet workload");
}

telemetry::TelemetryMode to_tele_mode(const std::string& line,
                                      const std::string& v) {
  for (const telemetry::TelemetryMode m :
       {telemetry::TelemetryMode::kFull, telemetry::TelemetryMode::kPortOnly,
        telemetry::TelemetryMode::kFlowOnly, telemetry::TelemetryMode::kOff}) {
    if (mode_name(m) == v) return m;
  }
  fail(line, "unknown telemetry mode");
}

std::vector<std::string> split(const std::string& s, char d) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (true) {
    const std::size_t next = s.find(d, pos);
    if (next == std::string::npos) {
      out.push_back(s.substr(pos));
      return out;
    }
    out.push_back(s.substr(pos, next - pos));
    pos = next + 1;
  }
}

/// Grow-on-demand spec access: the serializer emits indices in order, but
/// the parser tolerates any order so a hand-edited fixture stays valid.
template <typename V>
V& spec_at(std::vector<V>& v, const std::string& line,
           const std::string& idx) {
  const std::int64_t i = to_i64(line, idx);
  if (i < 0 || i > 4096) fail(line, "spec index out of range");
  if (v.size() <= static_cast<std::size_t>(i)) {
    v.resize(static_cast<std::size_t>(i) + 1);
  }
  return v[static_cast<std::size_t>(i)];
}

void parse_fault_key(fault::FaultPlan& fp, const std::string& line,
                     const std::vector<std::string>& key,
                     const std::string& val) {
  // key[0] == "faults"
  if (key.size() == 2 && key[1] == "seed") {
    fp.seed = to_u64(line, val);
    return;
  }
  if (key.size() == 3 && key[1] == "rtt_jitter") {
    if (key[2] == "prob") fp.rtt_jitter.prob = to_f(line, val);
    else if (key[2] == "magnitude") fp.rtt_jitter.magnitude = to_f(line, val);
    else fail(line, "unknown key");
    return;
  }
  if (key.size() != 4) fail(line, "unknown key");
  const std::string& list = key[1];
  const std::string& idx = key[2];
  const std::string& f = key[3];
  if (list == "poll") {
    fault::PollFaultSpec& s = spec_at(fp.poll_faults, line, idx);
    if (f == "sw") s.sw = to_node(line, val);
    else if (f == "drop_prob") s.drop_prob = to_f(line, val);
    else if (f == "duplicate_prob") s.duplicate_prob = to_f(line, val);
    else if (f == "delay_prob") s.delay_prob = to_f(line, val);
    else if (f == "delay_ns") s.delay_ns = to_i64(line, val);
    else if (f == "start") s.start = to_i64(line, val);
    else if (f == "stop") s.stop = to_i64(line, val);
    else fail(line, "unknown key");
  } else if (list == "dma") {
    fault::DmaFaultSpec& s = spec_at(fp.dma_faults, line, idx);
    if (f == "sw") s.sw = to_node(line, val);
    else if (f == "fail_prob") s.fail_prob = to_f(line, val);
    else if (f == "stale_prob") s.stale_prob = to_f(line, val);
    else if (f == "extra_delay") s.extra_delay = to_i64(line, val);
    else if (f == "start") s.start = to_i64(line, val);
    else if (f == "stop") s.stop = to_i64(line, val);
    else fail(line, "unknown key");
  } else if (list == "blackout") {
    fault::AgentBlackout& s = spec_at(fp.blackouts, line, idx);
    if (f == "sw") s.sw = to_node(line, val);
    else if (f == "start") s.start = to_i64(line, val);
    else if (f == "stop") s.stop = to_i64(line, val);
    else fail(line, "unknown key");
  } else if (list == "flap") {
    fault::LinkFlapSpec& s = spec_at(fp.link_flaps, line, idx);
    if (f == "node_a") s.node_a = to_node(line, val);
    else if (f == "node_b") s.node_b = to_node(line, val);
    else if (f == "start") s.start = to_i64(line, val);
    else if (f == "stop") s.stop = to_i64(line, val);
    else if (f == "down_ns") s.down_ns = to_i64(line, val);
    else if (f == "period_ns") s.period_ns = to_i64(line, val);
    else if (f == "jitter") s.jitter = to_f(line, val);
    else if (f == "holddown_ns") s.holddown_ns = to_i64(line, val);
    else if (f == "restore_holddown_ns") {
      s.restore_holddown_ns = to_i64(line, val);
    } else fail(line, "unknown key");
  } else if (list == "pfc") {
    fault::PfcFrameFaultSpec& s = spec_at(fp.pfc_faults, line, idx);
    if (f == "sw") s.sw = to_node(line, val);
    else if (f == "port") s.port = static_cast<net::PortId>(to_i64(line, val));
    else if (f == "loss_prob") s.loss_prob = to_f(line, val);
    else if (f == "delay_prob") s.delay_prob = to_f(line, val);
    else if (f == "delay_ns") s.delay_ns = to_i64(line, val);
    else if (f == "affect_pause") s.affect_pause = to_bool(line, val);
    else if (f == "affect_resume") s.affect_resume = to_bool(line, val);
    else if (f == "start") s.start = to_i64(line, val);
    else if (f == "stop") s.stop = to_i64(line, val);
    else fail(line, "unknown key");
  } else if (list == "degraded") {
    fault::DegradedLinkSpec& s = spec_at(fp.degraded_links, line, idx);
    if (f == "node_a") s.node_a = to_node(line, val);
    else if (f == "node_b") s.node_b = to_node(line, val);
    else if (f == "ber") s.ber = to_f(line, val);
    else if (f == "start") s.start = to_i64(line, val);
    else if (f == "stop") s.stop = to_i64(line, val);
    else fail(line, "unknown key");
  } else if (list == "speed") {
    fault::LinkSpeedMismatchSpec& s = spec_at(fp.speed_mismatches, line, idx);
    if (f == "node_a") s.node_a = to_node(line, val);
    else if (f == "node_b") s.node_b = to_node(line, val);
    else if (f == "gbps") s.gbps = to_f(line, val);
    else if (f == "start") s.start = to_i64(line, val);
    else if (f == "stop") s.stop = to_i64(line, val);
    else fail(line, "unknown key");
  } else if (list == "pcie") {
    fault::HostPcieBottleneckSpec& s = spec_at(fp.pcie_bottlenecks, line, idx);
    if (f == "host") s.host = to_node(line, val);
    else if (f == "drain_gbps") s.drain_gbps = to_f(line, val);
    else if (f == "start") s.start = to_i64(line, val);
    else if (f == "stop") s.stop = to_i64(line, val);
    else fail(line, "unknown key");
  } else if (list == "oversub") {
    fault::OversubscribedDownlinkSpec& s =
        spec_at(fp.oversub_downlinks, line, idx);
    if (f == "sw") s.sw = to_node(line, val);
    else if (f == "factor") s.factor = to_f(line, val);
    else if (f == "start") s.start = to_i64(line, val);
    else if (f == "stop") s.stop = to_i64(line, val);
    else fail(line, "unknown key");
  } else {
    fail(line, "unknown key");
  }
}

void parse_overlay_key(workload::ScenarioOverlay& o, const std::string& line,
                       const std::vector<std::string>& key,
                       const std::string& val) {
  if (key.size() != 2) fail(line, "unknown key");
  const std::string& f = key[1];
  if (f == "drop_flows") {
    o.drop_flows.clear();
    if (!val.empty()) {
      for (const std::string& tok : split(val, ',')) {
        const std::int64_t i = to_i64(line, tok);
        if (i < 0) fail(line, "negative flow index");
        o.drop_flows.push_back(static_cast<std::uint32_t>(i));
      }
    }
  } else if (f == "size_scale") o.size_scale = to_f(line, val);
  else if (f == "rate_scale") o.rate_scale = to_f(line, val);
  else if (f == "arrival_stride_ns") o.arrival_stride_ns = to_i64(line, val);
  else if (f == "duration_add_ns") o.duration_add_ns = to_i64(line, val);
  else if (f == "fault_rate_scale") o.fault_rate_scale = to_f(line, val);
  else if (f == "fault_window_scale") o.fault_window_scale = to_f(line, val);
  else fail(line, "unknown key");
}

}  // namespace

std::string serialize_case(const HuntCase& c) {
  std::ostringstream os;
  const auto put = [&os](const std::string& k, std::string_view v) {
    os << k << '=' << v << '\n';
  };
  const auto puti = [&os](const std::string& k, std::int64_t v) {
    os << k << '=' << v << '\n';
  };
  const auto putu = [&os](const std::string& k, std::uint64_t v) {
    os << k << '=' << v << '\n';
  };
  const auto putd = [&put](const std::string& k, double v) {
    put(k, canonical_double(v));
  };
  const RunConfig& cfg = c.cfg;

  os << "hawkeye-hunt-case v1\n";
  put("scenario", diagnosis::to_string(cfg.scenario));
  putu("seed", cfg.seed);
  put("method", to_string(cfg.method));
  puti("epoch_shift", cfg.epoch_shift);
  puti("epoch_index_bits", cfg.epoch_index_bits);
  putd("threshold_factor", cfg.threshold_factor);
  put("tele_mode", mode_name(cfg.tele_mode));
  puti("one_bit_meter", cfg.one_bit_meter ? 1 : 0);
  putd("background_load", cfg.background_load);
  puti("fat_tree_k", cfg.fat_tree_k);
  puti("shards", cfg.shards);
  puti("max_repolls", cfg.max_repolls);
  put("fleet_workload", workload::to_string(cfg.fleet_workload));
  putd("fleet_severity", cfg.fleet_severity);

  if (cfg.faults.enabled()) {
    const fault::FaultPlan& fp = cfg.faults;
    putu("faults.seed", fp.seed);
    for (std::size_t i = 0; i < fp.poll_faults.size(); ++i) {
      const std::string p = "faults.poll." + std::to_string(i) + ".";
      const fault::PollFaultSpec& s = fp.poll_faults[i];
      puti(p + "sw", s.sw);
      putd(p + "drop_prob", s.drop_prob);
      putd(p + "duplicate_prob", s.duplicate_prob);
      putd(p + "delay_prob", s.delay_prob);
      puti(p + "delay_ns", s.delay_ns);
      puti(p + "start", s.start);
      puti(p + "stop", s.stop);
    }
    for (std::size_t i = 0; i < fp.dma_faults.size(); ++i) {
      const std::string p = "faults.dma." + std::to_string(i) + ".";
      const fault::DmaFaultSpec& s = fp.dma_faults[i];
      puti(p + "sw", s.sw);
      putd(p + "fail_prob", s.fail_prob);
      putd(p + "stale_prob", s.stale_prob);
      puti(p + "extra_delay", s.extra_delay);
      puti(p + "start", s.start);
      puti(p + "stop", s.stop);
    }
    for (std::size_t i = 0; i < fp.blackouts.size(); ++i) {
      const std::string p = "faults.blackout." + std::to_string(i) + ".";
      const fault::AgentBlackout& s = fp.blackouts[i];
      puti(p + "sw", s.sw);
      puti(p + "start", s.start);
      puti(p + "stop", s.stop);
    }
    for (std::size_t i = 0; i < fp.link_flaps.size(); ++i) {
      const std::string p = "faults.flap." + std::to_string(i) + ".";
      const fault::LinkFlapSpec& s = fp.link_flaps[i];
      puti(p + "node_a", s.node_a);
      puti(p + "node_b", s.node_b);
      puti(p + "start", s.start);
      puti(p + "stop", s.stop);
      puti(p + "down_ns", s.down_ns);
      puti(p + "period_ns", s.period_ns);
      putd(p + "jitter", s.jitter);
      puti(p + "holddown_ns", s.holddown_ns);
      puti(p + "restore_holddown_ns", s.restore_holddown_ns);
    }
    for (std::size_t i = 0; i < fp.pfc_faults.size(); ++i) {
      const std::string p = "faults.pfc." + std::to_string(i) + ".";
      const fault::PfcFrameFaultSpec& s = fp.pfc_faults[i];
      puti(p + "sw", s.sw);
      puti(p + "port", s.port);
      putd(p + "loss_prob", s.loss_prob);
      putd(p + "delay_prob", s.delay_prob);
      puti(p + "delay_ns", s.delay_ns);
      puti(p + "affect_pause", s.affect_pause ? 1 : 0);
      puti(p + "affect_resume", s.affect_resume ? 1 : 0);
      puti(p + "start", s.start);
      puti(p + "stop", s.stop);
    }
    if (fp.rtt_jitter.prob != 0 || fp.rtt_jitter.magnitude != 0) {
      putd("faults.rtt_jitter.prob", fp.rtt_jitter.prob);
      putd("faults.rtt_jitter.magnitude", fp.rtt_jitter.magnitude);
    }
    for (std::size_t i = 0; i < fp.degraded_links.size(); ++i) {
      const std::string p = "faults.degraded." + std::to_string(i) + ".";
      const fault::DegradedLinkSpec& s = fp.degraded_links[i];
      puti(p + "node_a", s.node_a);
      puti(p + "node_b", s.node_b);
      putd(p + "ber", s.ber);
      puti(p + "start", s.start);
      puti(p + "stop", s.stop);
    }
    for (std::size_t i = 0; i < fp.speed_mismatches.size(); ++i) {
      const std::string p = "faults.speed." + std::to_string(i) + ".";
      const fault::LinkSpeedMismatchSpec& s = fp.speed_mismatches[i];
      puti(p + "node_a", s.node_a);
      puti(p + "node_b", s.node_b);
      putd(p + "gbps", s.gbps);
      puti(p + "start", s.start);
      puti(p + "stop", s.stop);
    }
    for (std::size_t i = 0; i < fp.pcie_bottlenecks.size(); ++i) {
      const std::string p = "faults.pcie." + std::to_string(i) + ".";
      const fault::HostPcieBottleneckSpec& s = fp.pcie_bottlenecks[i];
      puti(p + "host", s.host);
      putd(p + "drain_gbps", s.drain_gbps);
      puti(p + "start", s.start);
      puti(p + "stop", s.stop);
    }
    for (std::size_t i = 0; i < fp.oversub_downlinks.size(); ++i) {
      const std::string p = "faults.oversub." + std::to_string(i) + ".";
      const fault::OversubscribedDownlinkSpec& s = fp.oversub_downlinks[i];
      puti(p + "sw", s.sw);
      putd(p + "factor", s.factor);
      puti(p + "start", s.start);
      puti(p + "stop", s.stop);
    }
  }

  if (cfg.overlay.enabled()) {
    const workload::ScenarioOverlay& o = cfg.overlay;
    if (!o.drop_flows.empty()) {
      std::string v;
      for (std::size_t i = 0; i < o.drop_flows.size(); ++i) {
        if (i != 0) v += ',';
        v += std::to_string(o.drop_flows[i]);
      }
      put("overlay.drop_flows", v);
    }
    putd("overlay.size_scale", o.size_scale);
    putd("overlay.rate_scale", o.rate_scale);
    puti("overlay.arrival_stride_ns", o.arrival_stride_ns);
    puti("overlay.duration_add_ns", o.duration_add_ns);
    putd("overlay.fault_rate_scale", o.fault_rate_scale);
    putd("overlay.fault_window_scale", o.fault_window_scale);
  }

  if (!c.expected_class.empty()) {
    put("expected.class", c.expected_class);
    put("expected.verdict", diagnosis::to_string(c.expected_verdict));
    put("expected.truth", diagnosis::to_string(c.expected_truth));
  }
  if (!c.note.empty()) {
    std::string n = c.note;
    for (char& ch : n) {
      if (ch == '\n' || ch == '\r') ch = ' ';
    }
    put("note", n);
  }
  return os.str();
}

HuntCase parse_case(const std::string& text) {
  HuntCase c;
  std::istringstream in(text);
  std::string line;
  bool saw_magic = false;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    if (!saw_magic) {
      if (line != "hawkeye-hunt-case v1") {
        fail(line, "bad magic/version (want 'hawkeye-hunt-case v1')");
      }
      saw_magic = true;
      continue;
    }
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) fail(line, "missing '='");
    const std::string key = line.substr(0, eq);
    const std::string val = line.substr(eq + 1);
    RunConfig& cfg = c.cfg;
    if (key == "scenario") cfg.scenario = to_anomaly(line, val);
    else if (key == "seed") cfg.seed = to_u64(line, val);
    else if (key == "method") cfg.method = to_method(line, val);
    else if (key == "epoch_shift") {
      cfg.epoch_shift = static_cast<int>(to_i64(line, val));
    } else if (key == "epoch_index_bits") {
      cfg.epoch_index_bits = static_cast<int>(to_i64(line, val));
    } else if (key == "threshold_factor") {
      cfg.threshold_factor = to_f(line, val);
    } else if (key == "tele_mode") cfg.tele_mode = to_tele_mode(line, val);
    else if (key == "one_bit_meter") cfg.one_bit_meter = to_bool(line, val);
    else if (key == "background_load") {
      cfg.background_load = to_f(line, val);
    } else if (key == "fat_tree_k") {
      cfg.fat_tree_k = static_cast<int>(to_i64(line, val));
    } else if (key == "shards") {
      cfg.shards = static_cast<int>(to_i64(line, val));
    } else if (key == "max_repolls") {
      cfg.max_repolls = static_cast<std::uint32_t>(to_i64(line, val));
    } else if (key == "fleet_workload") {
      cfg.fleet_workload = to_fleet_workload(line, val);
    } else if (key == "fleet_severity") {
      cfg.fleet_severity = to_f(line, val);
    } else if (key == "expected.class") c.expected_class = val;
    else if (key == "expected.verdict") {
      c.expected_verdict = to_anomaly(line, val);
    } else if (key == "expected.truth") {
      c.expected_truth = to_anomaly(line, val);
    } else if (key == "note") c.note = val;
    else if (key.rfind("faults.", 0) == 0) {
      parse_fault_key(cfg.faults, line, split(key, '.'), val);
    } else if (key.rfind("overlay.", 0) == 0) {
      parse_overlay_key(cfg.overlay, line, split(key, '.'), val);
    } else {
      fail(line, "unknown key");
    }
  }
  if (!saw_magic) fail("<empty>", "missing magic line");
  // A parsed case must be installable: a corrupted fixture fails here, at
  // parse time, instead of deep inside Testbed::install_faults.
  if (c.cfg.faults.enabled()) {
    const std::string err = c.cfg.faults.validate();
    if (!err.empty()) fail(err, "invalid fault plan");
  }
  {
    const std::string err = c.cfg.overlay.validate();
    if (!err.empty()) fail(err, "invalid overlay");
  }
  return c;
}

std::uint64_t case_fingerprint(const HuntCase& c) {
  const std::string s = serialize_case(c);
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a 64
  for (const char ch : s) {
    h ^= static_cast<unsigned char>(ch);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace hawkeye::eval
