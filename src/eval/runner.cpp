#include "eval/runner.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "baselines/local_contention.hpp"
#include "eval/testbed.hpp"
#include "provenance/builder.hpp"
#include "sim/logger.hpp"

namespace hawkeye::eval {

using diagnosis::AnomalyType;
using net::FiveTuple;
using net::NodeId;

std::string_view to_string(Method m) {
  switch (m) {
    case Method::kHawkeye: return "hawkeye";
    case Method::kFullPolling: return "full-polling";
    case Method::kVictimOnly: return "victim-only";
    case Method::kSpiderMon: return "spidermon";
    case Method::kNetSight: return "netsight";
  }
  return "?";
}

namespace {

/// Root-cause attribution check. `acceptable` contains the crafted
/// culprits plus the background flows that genuinely joined the contention
/// (crossed a ground-truth congestion port with enough traffic in the
/// anomaly window). Correct attribution must blame at least one real
/// culprit, and at least half of the blamed flows must be real.
bool roots_match(const std::vector<FiveTuple>& reported,
                 const std::vector<FiveTuple>& acceptable) {
  if (acceptable.empty()) return true;
  if (reported.empty()) return false;
  std::size_t hit = 0;
  for (const auto& r : reported) {
    if (std::find(acceptable.begin(), acceptable.end(), r) !=
        acceptable.end()) {
      ++hit;
    }
  }
  return hit >= 1 && 2 * hit >= reported.size();
}

bool diagnosis_correct(const diagnosis::DiagnosisResult& dx,
                       const workload::GroundTruth& truth,
                       const std::vector<FiveTuple>& acceptable) {
  if (dx.type != truth.type) return false;
  switch (truth.type) {
    case AnomalyType::kPfcStorm:
    case AnomalyType::kOutOfLoopDeadlockInjection:
      return dx.injecting_peer == truth.injecting_host;
    case AnomalyType::kHostPcieBottleneck:
      // The pure-victim row: correctness is naming the drain-bound NIC.
      return dx.injecting_peer == truth.injecting_host;
    case AnomalyType::kDegradedLink:
    case AnomalyType::kLinkSpeedMismatch:
    case AnomalyType::kOversubscribedDownlink:
      // Link-rooted fleet rows: correctness is localizing the sick link
      // (either endpoint's egress port qualifies).
      if (truth.congestion_ports.empty()) return true;
      return std::find(truth.congestion_ports.begin(),
                       truth.congestion_ports.end(),
                       dx.initial_port) != truth.congestion_ports.end();
    default:
      return roots_match(dx.root_cause_flows, acceptable);
  }
}

/// Crafted culprits + background flows that contended at a ground-truth
/// congestion port during the anomaly (their packets are physically part
/// of the congestion the diagnosis attributes).
std::vector<FiveTuple> acceptable_roots(Testbed& tb,
                                        const workload::ScenarioSpec& spec) {
  std::vector<FiveTuple> out = spec.truth.root_cause_flows;
  if (spec.truth.congestion_ports.empty()) return out;
  // A background flow that, during the anomaly window, pushed real traffic
  // through a ground-truth congestion port — or contended anywhere on the
  // victim's own path — genuinely contributed to the victim's degradation
  // and is an acceptable (co-)root cause.
  std::vector<net::PortRef> hot_ports = spec.truth.congestion_ports;
  for (const net::PortRef& hop : tb.routing.path_of(spec.victim)) {
    if (tb.ft.topo.is_switch(hop.node)) hot_ports.push_back(hop);
  }
  const sim::Time w0 = spec.anomaly_start - sim::us(100);
  const sim::Time w1 = spec.anomaly_start + sim::us(500);
  for (const NodeId h : tb.ft.hosts) {
    for (const auto& st : tb.host(h).flow_stats()) {
      if (std::find(out.begin(), out.end(), st.tuple) != out.end()) continue;
      if (st.pkts_sent < 32) continue;  // too small to shape a queue
      const sim::Time end = st.complete() ? st.finish : w1;
      if (st.start > w1 || end < w0) continue;
      const auto path = tb.routing.path_of(st.tuple);
      for (const net::PortRef& cp : hot_ports) {
        if (std::find(path.begin(), path.end(), cp) != path.end()) {
          out.push_back(st.tuple);
          break;
        }
      }
    }
  }
  return out;
}

/// Ground-truth causally-relevant switches: the victim flow path plus the
/// CBD loop switches (the paper's observation: for non-deadlock anomalies
/// the PFC spreading path coincides with the victim path).
std::set<NodeId> causal_switches(const Testbed& tb,
                                 const workload::ScenarioSpec& spec) {
  std::set<NodeId> causal;
  for (const NodeId sw : tb.routing.switches_on_path(spec.victim)) {
    causal.insert(sw);
  }
  for (const net::PortRef& p : spec.truth.loop_ports) causal.insert(p.node);
  return causal;
}

}  // namespace

bool flap_hit_victim_path(
    const std::vector<std::pair<NodeId, NodeId>>& links_hit,
    const std::vector<net::PortRef>& victim_path, NodeId dst_host) {
  if (links_hit.empty() || victim_path.empty()) return false;
  // path_of lists the egress hops src-host-first; consecutive entries are
  // link endpoints, and dst_host closes the final hop.
  const auto on_path = [&](NodeId a, NodeId b) {
    for (std::size_t i = 0; i < victim_path.size(); ++i) {
      const NodeId u = victim_path[i].node;
      const NodeId v =
          i + 1 < victim_path.size() ? victim_path[i + 1].node : dst_host;
      if ((u == a && v == b) || (u == b && v == a)) return true;
    }
    return false;
  };
  for (const auto& [a, b] : links_hit) {
    if (on_path(a, b)) return true;
  }
  return false;
}

std::vector<ConfidenceCurve::Point> ConfidenceCurve::points(
    int buckets) const {
  std::vector<Point> out;
  if (buckets < 1) return out;
  for (int i = 0; i <= buckets; ++i) {
    Point p;
    p.threshold = static_cast<double>(i) / static_cast<double>(buckets);
    for (const auto& [conf, correct] : samples_) {
      if (conf >= p.threshold) {
        ++p.asserted;
        if (correct) ++p.correct;
      }
    }
    out.push_back(p);
  }
  return out;
}

workload::ScenarioSpec craft_scenario(const RunConfig& cfg, sim::Rng& rng) {
  // Scenario crafting needs default routing; build a probe topology first.
  const Testbed::Options defaults;
  const net::FatTree probe = net::build_fat_tree(
      cfg.fat_tree_k, defaults.link_gbps, defaults.link_delay_ns);
  net::Routing probe_routing(probe.topo);
  workload::ScenarioSpec spec =
      diagnosis::is_fleet_fault(cfg.scenario)
          ? workload::make_fleet_scenario(cfg.scenario, cfg.fleet_workload,
                                          probe, probe_routing, rng,
                                          cfg.fleet_severity)
          : workload::make_scenario(cfg.scenario, probe, probe_routing, rng);
  if (cfg.faults.enabled()) {
    // Mix the run seed into the injector seed so each sweep point sees an
    // independent (but reproducible) fault stream.
    fault::FaultPlan plan = cfg.faults;
    plan.seed = cfg.faults.seed ^ (cfg.seed * 0x9e3779b97f4a7c15ull);
    if (!plan.link_flaps.empty() || !plan.degraded_links.empty() ||
        !plan.speed_mismatches.empty()) {
      // Bind "hit a victim-path link" placeholders now that the crafted
      // victim (and so its routed path, overrides included) is known.
      // The middle victim-path link is the canonical target: far enough
      // from both ends that the fault's symptoms (black hole, CRC loss,
      // slow serialization) and any PFC backpressure are visible in the
      // collected telemetry.
      for (const auto& ov : spec.overrides) {
        probe_routing.add_override(ov.sw, ov.dst, ov.port);
      }
      const std::vector<NodeId> sws =
          probe_routing.switches_on_path(spec.victim);
      const auto bind_middle = [&](NodeId& a, NodeId& b) {
        if (a != net::kInvalidNode) return;
        if (sws.size() >= 2) {
          a = sws[sws.size() / 2 - 1];
          b = sws[sws.size() / 2];
        } else if (!sws.empty()) {
          a = net::Topology::node_of_ip(spec.victim.src_ip);
          b = sws.front();
        }
      };
      for (fault::LinkFlapSpec& lf : plan.link_flaps) {
        bind_middle(lf.node_a, lf.node_b);
      }
      for (fault::DegradedLinkSpec& dl : plan.degraded_links) {
        bind_middle(dl.node_a, dl.node_b);
      }
      for (fault::LinkSpeedMismatchSpec& sm : plan.speed_mismatches) {
        bind_middle(sm.node_a, sm.node_b);
      }
    }
    spec.faults = plan;
  }
  // Mutation hook (the hunter's workload axes): applied last so overlay
  // fault scaling sees the fully merged plan. Disabled overlays are a
  // strict no-op — fault-free traces stay byte-identical.
  if (cfg.overlay.enabled()) workload::apply_overlay(spec, cfg.overlay);
  return spec;
}

RunResult run_one(const RunConfig& cfg) {
  RunResult out;

  // ---- Craft the scenario on a default-routed fabric ----
  Testbed::Options opts;
  opts.fat_tree_k = cfg.fat_tree_k;
  opts.switch_cfg.telemetry.epoch.epoch_shift = cfg.epoch_shift;
  opts.switch_cfg.telemetry.epoch.index_bits = cfg.epoch_index_bits;
  opts.switch_cfg.telemetry.mode = cfg.tele_mode;
  opts.switch_cfg.telemetry.one_bit_meter = cfg.one_bit_meter;
  opts.agent_cfg.threshold_factor = cfg.threshold_factor;
  // Fabric-scale trigger calibration, detection half (bench_scalability's
  // k=16 cells): on large fabrics the paper's factor x baseline test sits
  // too close to the noise floor — the baseline is pure propagation +
  // serialization, and long paths cross many busy core links, so benign
  // transient queueing alone approaches the threshold while a genuine
  // anomaly still clears it. Credit a per-hop benign-queueing allowance
  // above k=8; paper-scale fabrics (k <= 8, where factor x baseline is
  // calibrated already) keep headroom 0 so their traces — and the
  // committed goldens — stay byte-identical. The evidence half of the
  // calibration (trigger-scoped provenance epochs) is below, at the
  // episode merge and the builder config.
  if (cfg.fat_tree_k > 8) {
    opts.agent_cfg.hop_noise_headroom = sim::us(1);
  }
  opts.agent_cfg.full_polling =
      cfg.method == Method::kFullPolling || cfg.method == Method::kNetSight;
  opts.switch_agent_cfg.trace_pfc_causality = cfg.method == Method::kHawkeye;
  // Full-polling-style methods snapshot every switch from the trigger event
  // itself — inherently global, so they keep the single-calendar path.
  opts.shards = opts.agent_cfg.full_polling ? 1 : cfg.shards;
  const bool faulty = cfg.faults.enabled();
  if (faulty) opts.agent_cfg.max_repolls = cfg.max_repolls;

  sim::Rng rng(cfg.seed);
  workload::ScenarioSpec spec = craft_scenario(cfg, rng);
  if (spec.xoff_bytes) opts.switch_cfg.pfc_xoff_bytes = *spec.xoff_bytes;
  if (spec.xon_bytes) opts.switch_cfg.pfc_xon_bytes = *spec.xon_bytes;

  // Fleet-ops faults crafted by the scenario itself (make_fleet_scenario)
  // arrive via spec.faults rather than cfg.faults; they deserve the same
  // self-healing collection budget — a CRC-degraded link eats polling
  // packets too.
  const bool scenario_fleet =
      spec.faults.has_value() && spec.faults->fleet_enabled();
  if (scenario_fleet) {
    opts.agent_cfg.max_repolls = cfg.max_repolls;
    // Fleet-ops detection reads the RNIC retransmit counter: NACK-driven
    // go-back-N repairs a corrupting link within ~1 RTT, so a degraded
    // cable often produces neither an RTT spike nor an ACK stall — only
    // the retransmit counter moves. Left off everywhere else so fault-free
    // traces (and the committed goldens) stay byte-identical.
    opts.agent_cfg.retx_trigger_pkts = 64;
  }

  Testbed tb(opts);
  tb.install(spec);
  // Install-time victim path, captured before any reconvergence can mutate
  // the tables: fault attribution must see every path the victim used, and
  // a run that ends inside a withdraw window reports the REROUTED path from
  // a post-run path_of.
  std::vector<net::PortRef> victim_path_install;
  if (faulty || scenario_fleet) {
    victim_path_install = tb.routing.path_of(spec.victim);
  }
  for (const auto& f : workload::background_flows(
           tb.ft, rng, cfg.background_load, sim::us(5),
           spec.duration - sim::us(100))) {
    tb.add_flow(f);
  }

  // ---- Simulate ----
  // Small margin so asynchronous CPU snapshots scheduled near the end of
  // the trace still complete. Fault-enabled runs get extra room: the
  // re-poll backoff chain and stale (delayed) DMA completions can land
  // several milliseconds after the trace proper.
  sim::Time margin = 2 * opts.collector_cfg.snapshot_delay;
  if (faulty || scenario_fleet) margin += sim::ms(4);
  tb.run_for(spec.duration + margin);
  out.scenario_name = spec.name;
  out.truth_type = spec.truth.type;
  out.sim_events = tb.simu.executed_events();
  out.shard_stats = tb.simu.shard_stats();
  out.drops = tb.net.data_drops();
  out.polling_drops = tb.net.polling_drops();
  out.pfc_loss_drops = tb.net.pfc_loss_drops();
  out.routing_epochs = tb.routing.epoch();
  if (tb.faults != nullptr) {
    // Injected data-plane truth — recorded before any early return so even
    // a never-triggered run carries its fault epoch for the benches.
    out.link_down_drops = tb.faults->link_drops();
    out.pfc_pause_lost = tb.faults->pfc_pause_lost();
    out.pfc_resume_lost = tb.faults->pfc_resume_lost();
    out.pfc_frames_delayed = tb.faults->pfc_frames_delayed();
    out.dataplane_fault_fired = tb.faults->dataplane_fault_fired();
    out.first_fault_at = tb.faults->first_dataplane_fault();
    out.last_fault_at = tb.faults->last_dataplane_fault();
    out.crc_drops = tb.faults->crc_drops();
    out.rate_limited_pkts = tb.faults->rate_limited_pkts();
    out.host_drain_delayed = tb.faults->host_drain_delayed();
    out.retransmissions =
        tb.host(net::Topology::node_of_ip(spec.victim.src_ip))
            .retransmissions();
    // Victim-path-aware attribution: a fired fault only excuses a wrong
    // verdict if it could have touched the victim. PFC frame faults are
    // spec'd per-port (usually port-global), so any firing counts; a link
    // flap counts only when a link that actually bit lies on the victim's
    // path — the install-time path OR the end-of-run path (they differ when
    // the horizon lands inside a reconvergence withdraw window, and the
    // victim genuinely used both).
    const bool pfc_fired = out.pfc_pause_lost > 0 || out.pfc_resume_lost > 0 ||
                           out.pfc_frames_delayed > 0;
    const NodeId victim_dst = net::Topology::node_of_ip(spec.victim.dst_ip);
    out.fault_on_victim_path =
        pfc_fired ||
        flap_hit_victim_path(tb.faults->links_hit(), victim_path_install,
                             victim_dst) ||
        flap_hit_victim_path(tb.faults->links_hit(),
                             tb.routing.path_of(spec.victim), victim_dst);
  }

  // ---- Locate and merge the victim's episodes ----
  // A persistent anomaly re-triggers once per dedup interval; the operator
  // aggregates every collection for the complaint. Merge the victim's
  // post-onset episodes: the earliest snapshot of each switch wins (it is
  // the densest view of the anomaly — ring epochs age out under background
  // churn), later episodes only widen coverage. Pre-onset triggers (noise
  // during buildup) are a last resort — their delayed snapshot usually
  // still covers the onset.
  collect::Episode merged;
  bool any = false;
  sim::Time first_trigger = -1;
  std::int64_t raw_per_switch = 0;
  for (const bool post_onset : {true, false}) {
    for (const std::uint64_t id : tb.collector.episode_order()) {
      const collect::Episode* cand = tb.collector.episode(id);
      if (cand == nullptr || !(cand->victim == spec.victim)) continue;
      if ((cand->triggered_at >= spec.anomaly_start) != post_onset) continue;
      if (!cand->reports.empty() && raw_per_switch == 0) {
        raw_per_switch = cand->raw_telemetry_bytes /
                         static_cast<std::int64_t>(cand->reports.size());
      }
      if (post_onset || !any) {
        if (!any) {
          merged.probe_id = cand->probe_id;
          merged.victim = cand->victim;
          merged.triggered_at = cand->triggered_at;
        }
        any = true;
        if (post_onset && first_trigger < 0) {
          first_trigger = cand->triggered_at;
        }
        merged.polling_packets += cand->polling_packets;
        merged.polling_bytes += cand->polling_bytes;
        merged.collection_latency =
            std::max(merged.collection_latency, cand->collection_latency);
        merged.repolls += cand->repolls;
        merged.failed_collections += cand->failed_collections;
        merged.stale_epochs_rejected += cand->stale_epochs_rejected;
        merged.degraded = merged.degraded || cand->degraded;
        merged.path_churned = merged.path_churned || cand->path_churned;
        merged.routing_epoch =
            std::max(merged.routing_epoch, cand->routing_epoch);
        // Stable union of the coverage contracts: episodes collected on
        // different sides of a reconvergence expect different hop sets, and
        // the merged diagnosis needs them all. Without churn every episode
        // carries the same set, so the union equals the old first-wins
        // value and golden traces are unaffected.
        for (const NodeId sw : cand->expected_switches) {
          if (std::find(merged.expected_switches.begin(),
                        merged.expected_switches.end(),
                        sw) == merged.expected_switches.end()) {
            merged.expected_switches.push_back(sw);
          }
        }
        for (const auto& [sw, rep] : cand->reports) {
          if (!merged.put_report(sw, rep)) {
            telemetry::merge_report(merged.report_ref(sw), rep);
          }
        }
      }
    }
    if (any && !merged.reports.empty()) break;  // post-onset data suffices
  }
  out.triggered = any;
  if (!any) {
    out.fn = true;
    if (tb.faults != nullptr) {
      // Detection itself never fired under injected faults: no telemetry
      // at all, so the (absent) verdict carries no confidence.
      out.degraded = true;
      out.collection_coverage = 0.0;
      out.confidence = 0.0;
    }
    return out;
  }
  // Recompute collection accounting over the merged report set.
  const collect::Collector::Config ccfg = opts.collector_cfg;
  for (const auto& [sw, rep] : merged.reports) {
    const std::int64_t bytes = telemetry::serialized_bytes(rep);
    merged.telemetry_bytes += bytes;
    merged.raw_telemetry_bytes += raw_per_switch;
    merged.report_packets += static_cast<std::uint64_t>(
        (bytes + ccfg.report_mtu_bytes - 1) / ccfg.report_mtu_bytes);
    merged.dataplane_report_packets += static_cast<std::uint64_t>(
        (raw_per_switch + ccfg.dataplane_phv_bytes - 1) /
        ccfg.dataplane_phv_bytes);
  }
  const collect::Episode* ep = &merged;
  out.detection_latency = (first_trigger >= 0 ? first_trigger
                                              : ep->triggered_at) -
                          spec.anomaly_start;

  // ---- Collection health ----
  out.collection_coverage = merged.coverage();
  out.path_churned = merged.path_churned;
  out.repolls = merged.repolls;
  out.failed_collections = merged.failed_collections;
  out.stale_epochs = merged.stale_epochs_rejected;
  out.degraded = merged.degraded || !merged.coverage_complete() ||
                 merged.failed_collections > 0 ||
                 merged.stale_epochs_rejected > 0;
  // Even with complete victim-path coverage the substrate may have eaten
  // off-path causality clones (deadlock tracing): ask the injector what it
  // did to this victim's polling packets.
  if (tb.faults != nullptr && tb.faults->faults_for(spec.victim) > 0) {
    out.degraded = true;
  }
  out.confidence = diagnosis::collection_confidence(
      out.collection_coverage, out.failed_collections, out.stale_epochs,
      out.repolls);

  // ---- Overhead accounting ----
  out.telemetry_bytes = ep->telemetry_bytes;
  out.raw_telemetry_bytes = ep->raw_telemetry_bytes;
  out.report_packets = ep->report_packets;
  out.dataplane_report_packets = ep->dataplane_report_packets;
  out.polling_packets = ep->polling_packets;
  switch (cfg.method) {
    case Method::kHawkeye:
    case Method::kVictimOnly:
      out.monitor_bw_bytes = ep->polling_bytes;
      break;
    case Method::kFullPolling:
      out.monitor_bw_bytes = 0;
      break;
    case Method::kSpiderMon: {
      std::uint64_t pkts = 0;
      for (const NodeId h : tb.ft.hosts) {
        for (const auto& st : tb.host(h).flow_stats()) pkts += st.pkts_sent;
      }
      out.monitor_bw_bytes =
          static_cast<std::int64_t>(pkts) * baselines::kSpiderMonHeaderBytes;
      out.telemetry_bytes = baselines::spidermon_telemetry_bytes(*ep);
      break;
    }
    case Method::kNetSight:
      out.monitor_bw_bytes =
          baselines::netsight_telemetry_bytes(tb.net.data_hops());
      out.telemetry_bytes =
          baselines::netsight_telemetry_bytes(tb.net.data_hops());
      break;
  }

  const std::set<NodeId> causal = causal_switches(tb, spec);
  out.causal_switches = causal.size();
  std::size_t covered = 0;
  for (const NodeId sw : ep->collected_switches()) {
    if (causal.count(sw)) ++covered;
  }
  out.collected_switches = ep->reports.size();
  out.collected = ep->collected_switches();
  out.causal_coverage =
      causal.empty() ? 1.0
                     : static_cast<double>(covered) /
                           static_cast<double>(causal.size());

  // ---- Diagnose ----
  diagnosis::DiagnosisConfig dcfg;
  dcfg.epoch_ns = opts.switch_cfg.telemetry.epoch.epoch_ns();
  // Ranking half of the fabric-scale calibration (§14), now on at every
  // size: with concurrent background congestion the busiest core port
  // out-masses the anomaly's initial point, so the terminal ranking
  // prefers Table-2 signature matches (DiagnosisConfig::signature_rank).
  // The misdiagnosis hunter reproduced the same core-port capture at k=4
  // under background_load >= 0.2 (tests/hunt_corpus); fault-free crafted
  // cells already rank their server-facing terminal first, so goldens are
  // unchanged.
  dcfg.signature_rank = true;
  if (cfg.method == Method::kSpiderMon || cfg.method == Method::kNetSight) {
    out.dx = baselines::diagnose_local_contention(*ep, tb.ft.topo, tb.routing,
                                                  spec.victim, dcfg);
  } else {
    provenance::BuilderConfig bcfg;
    bcfg.epoch_ns = opts.switch_cfg.telemetry.epoch.epoch_ns();
    // Evidence half of the fabric-scale calibration (§14): when the
    // pause-activity epoch filter saturates (some port is pausing
    // somewhere nearly always) the graph would aggregate every transient
    // hot spot the rings remember, and a long-dead core event can
    // out-mass the live anomaly at the terminal ranking. Scope the
    // anomaly epochs tightly around the first detection: the trigger's
    // own epoch plus one epoch of lookback covers the RTT excursion that
    // fired it, and nothing else. On above k=8 (saturation from scale
    // alone) and — since the misdiagnosis hunter reproduced the same
    // background-capture at k=4 — above the calibrated default background
    // load of 0.1 (saturation from load). At the default load the
    // deadlock cells rely on the wider evidence window (the loop's
    // contention mass accumulates across epochs), so the paper-scale
    // cells and every golden keep the unscoped selection.
    if (cfg.fat_tree_k > 8 || cfg.background_load > 0.1) {
      bcfg.trigger_scope_ns = bcfg.epoch_ns;
    }
    const provenance::ProvenanceGraph g =
        provenance::build_provenance(*ep, tb.ft.topo, bcfg);
    out.dx = diagnosis::diagnose(g, tb.ft.topo, tb.routing, spec.victim, dcfg);
    if (cfg.verbose) {
      sim::Logger::info("%s", g.to_string().c_str());
      sim::Logger::info("diagnosis: %s", out.dx.narrative.c_str());
    }
  }

  out.dx.confidence = out.confidence;

  // ---- Fleet-health refinement ----
  // Assemble the operator-visible fleet counters (MAC FCS registers,
  // negotiated port speeds, NIC DMA drain gauges) and let the fleet
  // signature rows rewrite the provenance verdict where one matches.
  // Baseline methods have no fleet-health pipeline — part of the
  // capability gap the comparison benches measure.
  if (tb.faults != nullptr && tb.faults->plan().fleet_enabled() &&
      cfg.method != Method::kSpiderMon && cfg.method != Method::kNetSight) {
    diagnosis::FleetEvidence& fev = out.fleet_evidence;
    const auto nominal_of = [&](NodeId a, NodeId b) {
      const net::PortId p = tb.ft.topo.port_towards(a, b);
      if (p == net::kInvalidPort) return 0.0;
      const std::int64_t lid = tb.ft.topo.link_of(a, p);
      return lid < 0 ? 0.0
                     : tb.ft.topo.link(static_cast<std::size_t>(lid)).gbps;
    };
    for (const fault::FaultInjector::RateOverride& ro :
         tb.faults->rate_overrides()) {
      diagnosis::LinkCounterEvidence l;
      l.node_a = ro.a;
      l.node_b = ro.b;
      l.nominal_gbps = nominal_of(ro.a, ro.b);
      l.actual_gbps =
          tb.faults->link_gbps(ro.a, ro.b, l.nominal_gbps, ep->triggered_at);
      l.slow_serializations = tb.faults->rate_limited_pkts(ro.a, ro.b);
      l.oversub_tier = ro.oversub;
      l.crc_errors = tb.faults->crc_errors(ro.a, ro.b);
      fev.links.push_back(l);
    }
    for (const auto& [link, errors] : tb.faults->crc_links()) {
      bool seen = false;
      for (const diagnosis::LinkCounterEvidence& l : fev.links) {
        if (std::minmax(l.node_a, l.node_b) ==
            std::minmax(link.first, link.second)) {
          seen = true;
          break;
        }
      }
      if (seen) continue;
      diagnosis::LinkCounterEvidence l;
      l.node_a = link.first;
      l.node_b = link.second;
      l.crc_errors = errors;
      l.nominal_gbps = l.actual_gbps = nominal_of(link.first, link.second);
      fev.links.push_back(l);
    }
    const NodeId fleet_dst = net::Topology::node_of_ip(spec.victim.dst_ip);
    std::vector<NodeId> drain_hosts{fleet_dst};
    for (const fault::HostPcieBottleneckSpec& s :
         tb.faults->plan().pcie_bottlenecks) {
      if (s.host != net::kInvalidNode &&
          std::find(drain_hosts.begin(), drain_hosts.end(), s.host) ==
              drain_hosts.end()) {
        drain_hosts.push_back(s.host);
      }
    }
    for (const NodeId h : drain_hosts) {
      const std::uint64_t delayed = tb.faults->host_drain_delayed(h);
      if (delayed == 0) continue;
      fev.hosts.push_back({h, delayed, tb.faults->host_drain_max_backlog(h)});
    }
    fev.sender_retransmissions = out.retransmissions;
    if (!fev.empty()) {
      out.dx = diagnosis::refine_fleet_verdict(out.dx, fev, tb.ft.topo,
                                               tb.routing, spec.victim);
      out.confidence = out.dx.confidence;
    }
  }

  // ---- Score ----
  if (!out.dx.detected()) {
    out.fn = true;
  } else if (diagnosis_correct(out.dx, spec.truth,
                               acceptable_roots(tb, spec))) {
    out.tp = true;
  } else {
    out.fp = true;
  }
  return out;
}

}  // namespace hawkeye::eval
