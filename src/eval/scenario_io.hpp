#pragma once

#include <string>

#include "eval/runner.hpp"

namespace hawkeye::eval {

/// Versioned, canonical text serialization of a hunted run configuration —
/// the replayable-counterexample format of tools/hunt_misdiagnosis
/// (DESIGN.md §15). One `key=value` line per field in a fixed order,
/// doubles printed with %.17g (round-trip exact, the golden-suite
/// convention), so `serialize(parse(serialize(x)))` is byte-identical to
/// `serialize(x)` and string equality of two serializations is value
/// equality of the underlying cases.
///
/// The payload is deliberately the *inputs* of a run — RunConfig plus its
/// ScenarioOverlay and FaultPlan — never the crafted ScenarioSpec: a case
/// file replays through the exact same eval::run_one path as every bench,
/// and stays valid as long as the (scenario, seed) factories stay
/// deterministic. The `expected.*` block records the verdict class and
/// diagnosis the hunter observed at find time; tests/hunt_corpus_test.cpp
/// replays every committed file and asserts those fields forever. When a
/// later PR fixes a pinned misdiagnosis, the fixture's expected fields are
/// updated in that PR (turning the file into a permanent regression test
/// for the fix) — corpus files are never silently deleted.
///
/// Format rules (v1):
///  - first line is exactly `hawkeye-hunt-case v1`;
///  - `#`-prefixed and blank lines are ignored on parse, never emitted;
///  - top-level RunConfig scalars are always emitted; the faults./overlay.
///    blocks only when enabled, but then with every field of every spec;
///  - unknown keys are a parse error — format drift fails loudly in CI
///    instead of silently dropping a mutation axis.
struct HuntCase {
  RunConfig cfg;
  /// Verdict class observed at find time (eval::to_string(HuntVerdictClass)
  /// vocabulary — "silent-wrong", "wrong-low-confidence", "missed-trigger",
  /// or "correct"/"excused" once a find has been fixed).
  std::string expected_class;
  /// Diagnosis type the replay must reproduce (kNone for missed triggers).
  diagnosis::AnomalyType expected_verdict = diagnosis::AnomalyType::kNone;
  /// Ground-truth type of the crafted scenario (redundant with
  /// cfg.scenario for every current factory, recorded so a future
  /// factory-behaviour change is caught as drift, not absorbed).
  diagnosis::AnomalyType expected_truth = diagnosis::AnomalyType::kNone;
  /// One-line triage note (newlines are replaced by spaces on serialize).
  std::string note;
};

/// Canonical text form of the case (see format rules above).
std::string serialize_case(const HuntCase& c);

/// Parse a serialized case. Throws std::invalid_argument with the
/// offending line on any structural problem: bad magic/version, malformed
/// or unknown key, unparsable value, or an invalid resulting FaultPlan /
/// overlay (validate() is consulted so a corrupted fixture cannot reach
/// the injector).
HuntCase parse_case(const std::string& text);

/// Stable content fingerprint of a case (FNV-1a over the serialization) —
/// the corpus filename suffix, so identical finds from different campaigns
/// collide into one file instead of accumulating duplicates.
std::uint64_t case_fingerprint(const HuntCase& c);

}  // namespace hawkeye::eval
