#pragma once

#include <memory>
#include <vector>

#include "collect/collector.hpp"
#include "collect/detection_agent.hpp"
#include "collect/switch_agent.hpp"
#include "device/host.hpp"
#include "device/switch.hpp"
#include "fault/fault.hpp"
#include "net/routing.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"
#include "workload/scenario.hpp"

namespace hawkeye::eval {

/// A fully-wired simulated RDMA fabric with the Hawkeye stack installed:
/// topology + routing + devices + telemetry + collection. Owns every
/// object; non-copyable and non-movable (devices hold references).
/// Examples and tests build small experiments directly on this.
class Testbed {
 public:
  struct Options {
    int fat_tree_k = 4;
    double link_gbps = 100.0;
    sim::Time link_delay_ns = 2'000;
    /// Device shards for intra-run parallel simulation (PR 6). 1 keeps the
    /// seed's single-calendar path (byte-identical to pre-shard builds);
    /// N > 1 partitions devices by pod (cores round-robin) onto N calendars
    /// plus a control calendar, with the link delay as the conservative
    /// lookahead. Results are bitwise identical for every shard count.
    int shards = 1;
    device::SwitchConfig switch_cfg;
    device::DcqcnParams dcqcn;
    collect::Collector::Config collector_cfg;
    collect::HawkeyeSwitchAgent::Config switch_agent_cfg;
    collect::DetectionAgent::Config agent_cfg;
    /// Install the Hawkeye polling/collection stack (false => plain fabric).
    bool install_hawkeye = true;
    /// Fault plan to install at construction; a disabled plan installs
    /// nothing (no injector object, hooks stay null).
    fault::FaultPlan fault_plan;
  };

  Testbed() : Testbed(Options{}) {}
  explicit Testbed(const Options& opts);
  Testbed(const Testbed&) = delete;
  Testbed& operator=(const Testbed&) = delete;

  /// Apply a crafted scenario: route overrides, crafted flows, injections,
  /// and the scenario's fault plan (if any).
  void install(const workload::ScenarioSpec& spec);

  /// Wire a fault injector into the network (link flaps, PFC frame
  /// faults), every switch, the collector and the detection agent.
  /// Disabled plans are a no-op; structurally invalid plans throw
  /// std::invalid_argument (FaultPlan::validate). Idempotent per plan;
  /// call before the simulation starts.
  void install_faults(const fault::FaultPlan& plan);

  /// Add one flow on its source host. Returns the flow id.
  std::uint64_t add_flow(const device::FlowSpec& spec);

  void run_for(sim::Time duration) { simu.run_until(duration); }

  device::Host& host(net::NodeId id);
  device::Switch& switch_at(net::NodeId id);

  /// Stats of a flow by tuple (nullptr if unknown).
  const device::FlowStats* stats_of(const net::FiveTuple& tuple) const;

  net::FatTree ft;
  net::Routing routing;
  sim::Simulator simu;
  device::Network net;
  collect::Collector collector;
  std::unique_ptr<collect::HawkeyeSwitchAgent> switch_agent;
  std::unique_ptr<collect::DetectionAgent> agent;
  /// Non-null only when an enabled fault plan was installed.
  std::unique_ptr<fault::FaultInjector> faults;

 private:
  std::vector<std::unique_ptr<device::Switch>> switches_;
  std::vector<std::unique_ptr<device::Host>> hosts_;
};

}  // namespace hawkeye::eval
