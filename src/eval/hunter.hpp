#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "eval/scenario_io.hpp"
#include "eval/sweep.hpp"

namespace hawkeye::eval {

/// How wrong a diagnosis was, ordered by operator pain (DESIGN.md §15).
/// The hunter maximizes this ordering: a confidently asserted wrong verdict
/// sends an operator to the wrong rack; a low-confidence wrong verdict at
/// least announces its own unreliability; a missed trigger is a gap, not a
/// lie. `kExcused` covers verdicts the robustness benches already
/// attribute to injected substrate damage (degraded collection for misses,
/// an on-victim-path data-plane fault for wrong verdicts) — hunting those
/// would rediscover the injector, not the diagnosis rules.
enum class HuntVerdictClass {
  kCorrect = 0,
  kExcused,
  kMissedTrigger,
  kWrongLowConfidence,
  kSilentWrong,
};

std::string_view to_string(HuntVerdictClass c);

/// Search-objective severity: correct/excused 0, missed 1, wrong-low 2,
/// silent-wrong 3. Anything >= 1 is a find.
int severity(HuntVerdictClass c);

/// Classify one scored run. `tau` is the assertion threshold separating
/// "silently wrong" (confidence >= tau: the operator would act on it) from
/// "wrong with low confidence". Truth kNone runs are scored fn by run_one's
/// convention when nothing triggers — on a benign trace only an asserted
/// wrong verdict (fp) counts against the diagnosis.
HuntVerdictClass classify_verdict(const RunResult& r, double tau = 0.9);

struct HuntOptions {
  std::uint64_t seed = 1;
  /// Trials sampled (shrinking evals are extra; see HuntReport::evals).
  int budget = 200;
  /// Trials evaluated per run_sweep call. Any batch/thread split yields an
  /// identical campaign: sampling is a pure function of (seed, trial index)
  /// and run_sweep returns results in input order.
  int batch = 16;
  int threads = 0;  ///< SweepOptions::threads.
  double tau = 0.9;
  bool shrink = true;
  int max_shrink_evals = 96;  ///< Per find.
  /// Fabric scales and shard counts sampled per trial.
  std::vector<int> ks = {4};
  std::vector<int> shard_choices = {1};
  /// Stop collecting after this many finds (sampling still runs to budget
  /// so the campaign log stays a pure function of seed + budget).
  int max_finds = 32;
  /// Keep only the first find per (truth, class, verdict) signature —
  /// distinct signatures are distinct model issues; duplicates shrink to
  /// near-identical corpus entries.
  bool dedupe_signatures = true;
  /// When non-empty, each find's shrunk case is written here as
  /// hunt-<class>-<truth>-<fingerprint16>.txt.
  std::string corpus_dir;
};

struct HuntFind {
  HuntCase shrunk;    ///< Minimized case, expected.* recorded at find time.
  HuntCase original;  ///< The raw sampled trial that failed.
  int trial = -1;
  int shrink_evals = 0;
  std::size_t flows_before = 0;  ///< Crafted flow count pre-shrink…
  std::size_t flows_after = 0;   ///< …and after overlay drops.
  std::string signature;         ///< truth/class/verdict dedupe key.
  std::string file;              ///< Corpus filename ("" if not written).
};

struct HuntReport {
  int trials = 0;
  int evals = 0;  ///< run_one executions, sampling + shrinking.
  int count_by_class[5] = {0, 0, 0, 0, 0};  ///< Indexed by HuntVerdictClass.
  std::vector<HuntFind> finds;
  /// Deterministic campaign log: same (options) => byte-identical log,
  /// regardless of threads or batch split. One line per non-correct trial,
  /// per shrink, per find, plus a summary tail.
  std::string log;
};

/// Run a seeded hunt campaign: sample `budget` configurations from the
/// joint (scenario, seed, workload, topology, fault-plan, overlay) space,
/// evaluate through run_sweep, classify, and delta-debug every find to a
/// minimal counterexample. Fully deterministic in `opts` (see HuntReport).
HuntReport run_hunt_campaign(const HuntOptions& opts);

/// Re-evaluate one case and compare against its recorded expectation.
struct ReplayOutcome {
  RunResult result;
  HuntVerdictClass observed = HuntVerdictClass::kCorrect;
  /// expected.class/verdict/truth all reproduced (class compared by
  /// string so fixtures can pin post-fix values like "correct").
  bool matches_expected = false;
  std::string detail;  ///< One line: observed vs expected.
};
ReplayOutcome replay_case(const HuntCase& c, double tau = 0.9);

}  // namespace hawkeye::eval
