#include "eval/hunter.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "eval/canonical.hpp"

namespace hawkeye::eval {

namespace {

using diagnosis::AnomalyType;

/// Every craftable scenario, benign traces included: a confident verdict on
/// a kNone trace is the purest silent-wrong find there is.
constexpr AnomalyType kScenarioPool[] = {
    AnomalyType::kMicroBurstIncast,
    AnomalyType::kPfcStorm,
    AnomalyType::kInLoopDeadlock,
    AnomalyType::kOutOfLoopDeadlockContention,
    AnomalyType::kOutOfLoopDeadlockInjection,
    AnomalyType::kNormalContention,
    AnomalyType::kDegradedLink,
    AnomalyType::kLinkSpeedMismatch,
    AnomalyType::kHostPcieBottleneck,
    AnomalyType::kOversubscribedDownlink,
    AnomalyType::kNone,
};

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

template <typename T>
T pick(sim::Rng& rng, std::initializer_list<T> xs) {
  const auto i = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(xs.size()) - 1));
  return *(xs.begin() + i);
}

template <typename T>
const T& pick_vec(sim::Rng& rng, const std::vector<T>& xs) {
  return xs[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(xs.size()) - 1))];
}

/// Sample a bounded-or-unbounded active window over the trace's hot region
/// (crafted anomalies start within a few hundred us of t=0).
void sample_window(sim::Rng& rng, sim::Time& start, sim::Time& stop) {
  start = sim::us(rng.uniform_int(50, 250));
  if (rng.chance(0.15)) {
    stop = -1;
  } else {
    stop = start + sim::us(rng.uniform_int(50, 300));
  }
}

/// Add one sampled fault spec of category `cat` to the plan. Categories are
/// sampled without replacement by the caller so no list ever holds two
/// specs (FaultPlan::validate rejects overlapping same-site windows).
void sample_fault(sim::Rng& rng, int cat, fault::FaultPlan& plan) {
  switch (cat) {
    case 0: {  // polling-packet faults, one action kind per spec
      fault::PollFaultSpec s;
      const int kind = static_cast<int>(rng.uniform_int(0, 2));
      if (kind == 0) s.drop_prob = rng.uniform_real(0.1, 0.9);
      else if (kind == 1) s.duplicate_prob = rng.uniform_real(0.1, 0.5);
      else {
        s.delay_prob = rng.uniform_real(0.2, 0.8);
        s.delay_ns = sim::us(rng.uniform_int(50, 500));
      }
      sample_window(rng, s.start, s.stop);
      plan.poll_faults.push_back(s);
      break;
    }
    case 1: {  // switch-CPU DMA faults
      fault::DmaFaultSpec s;
      s.fail_prob = rng.uniform_real(0.1, 0.7);
      s.stale_prob = rng.uniform_real(0.0, 1.0 - s.fail_prob);
      s.extra_delay = sim::ms(rng.uniform_int(1, 3));
      sample_window(rng, s.start, s.stop);
      plan.dma_faults.push_back(s);
      break;
    }
    case 2: {  // agent blackout
      fault::AgentBlackout s;
      sample_window(rng, s.start, s.stop);
      plan.blackouts.push_back(s);
      break;
    }
    case 3: {  // victim-path link flap (placeholder endpoints)
      fault::LinkFlapSpec s;
      sample_window(rng, s.start, s.stop);
      s.down_ns = sim::us(rng.uniform_int(5, 80));
      s.period_ns = rng.chance(0.5) ? 0 : sim::us(rng.uniform_int(100, 300));
      if (s.period_ns != 0 && s.period_ns < s.down_ns) {
        s.period_ns = 2 * s.down_ns;
      }
      s.jitter = rng.chance(0.5) ? 0.0 : rng.uniform_real(0.0, 0.5);
      s.holddown_ns = pick<sim::Time>(rng, {0, sim::us(50), sim::us(200)});
      plan.link_flaps.push_back(s);
      break;
    }
    case 4: {  // PFC frame loss/delay, port-global
      fault::PfcFrameFaultSpec s;
      s.loss_prob = rng.uniform_real(0.05, 0.6);
      if (rng.chance(0.3)) {
        s.delay_prob = rng.uniform_real(0.0, 1.0 - s.loss_prob);
        s.delay_ns = sim::us(rng.uniform_int(10, 100));
      }
      const int which = static_cast<int>(rng.uniform_int(0, 2));
      s.affect_pause = which != 1;
      s.affect_resume = which != 0;
      sample_window(rng, s.start, s.stop);
      plan.pfc_faults.push_back(s);
      break;
    }
    case 5: {  // detector sensor noise
      plan.rtt_jitter.prob = rng.uniform_real(0.05, 0.5);
      plan.rtt_jitter.magnitude = rng.uniform_real(0.5, 3.0);
      break;
    }
    default: {  // concurrent degraded cable on the victim path
      fault::DegradedLinkSpec s;
      s.ber = pick(rng, {1e-7, 1e-6, 5e-6});
      sample_window(rng, s.start, s.stop);
      plan.degraded_links.push_back(s);
      break;
    }
  }
}

/// Pure function of (campaign seed, trial index) — the determinism anchor:
/// any batch/thread split of the campaign samples identical configs.
RunConfig sample_trial(const HuntOptions& o, int trial) {
  sim::Rng rng(splitmix64(o.seed ^ (0x517cc1b727220a95ull +
                                    static_cast<std::uint64_t>(trial))));
  RunConfig cfg;
  cfg.scenario = kScenarioPool[static_cast<std::size_t>(
      rng.uniform_int(0, std::size(kScenarioPool) - 1))];
  cfg.seed = static_cast<std::uint64_t>(rng.uniform_int(1, 1000000));
  cfg.fat_tree_k = o.ks.empty() ? 4 : pick_vec(rng, o.ks);
  cfg.shards = o.shard_choices.empty() ? 1 : pick_vec(rng, o.shard_choices);
  cfg.background_load = pick(rng, {0.0, 0.05, 0.1, 0.2, 0.3});
  cfg.threshold_factor = pick(rng, {2.0, 3.0, 4.0});
  if (diagnosis::is_fleet_fault(cfg.scenario)) {
    cfg.fleet_workload = pick(rng, {workload::FleetWorkload::kCrafted,
                                    workload::FleetWorkload::kRpcClientServer,
                                    workload::FleetWorkload::kAllToAll});
    cfg.fleet_severity = rng.uniform_real(0.6, 3.0);
    // No cfg-level faults here: craft_scenario would replace the
    // fleet-crafted plan, severing the scenario from its ground truth.
  } else if (rng.chance(0.55)) {
    const int first = static_cast<int>(rng.uniform_int(0, 6));
    sample_fault(rng, first, cfg.faults);
    if (rng.chance(0.3)) {
      const int second = static_cast<int>(rng.uniform_int(0, 5));
      sample_fault(rng, second >= first ? second + 1 : second, cfg.faults);
    }
    cfg.faults.seed = static_cast<std::uint64_t>(rng.uniform_int(1, 1 << 20));
  }
  if (rng.chance(0.5)) {
    workload::ScenarioOverlay& ov = cfg.overlay;
    if (rng.chance(0.4)) {
      const int n = static_cast<int>(rng.uniform_int(1, 4));
      for (int i = 0; i < n; ++i) {
        ov.drop_flows.push_back(
            static_cast<std::uint32_t>(rng.uniform_int(0, 63)));
      }
    }
    ov.size_scale = pick(rng, {1.0, 1.0, 0.5, 2.0, 4.0});
    ov.rate_scale = pick(rng, {1.0, 1.0, 0.5, 2.0});
    ov.arrival_stride_ns = pick<sim::Time>(rng, {0, 0, 1000, 10000, 50000});
    ov.duration_add_ns = pick<sim::Time>(rng, {0, 0, sim::us(200)});
    if (cfg.faults.enabled() || diagnosis::is_fleet_fault(cfg.scenario)) {
      ov.fault_rate_scale = pick(rng, {1.0, 1.0, 0.5, 2.0});
      ov.fault_window_scale = pick(rng, {1.0, 1.0, 0.7});
    }
  }
  return cfg;
}

std::size_t crafted_flow_count(const RunConfig& cfg) {
  sim::Rng rng(cfg.seed);
  return craft_scenario(cfg, rng).flows.size();
}

std::string hex16(std::uint64_t v) {
  static const char* kDigits = "0123456789abcdef";
  std::string s(16, '0');
  for (int i = 15; i >= 0; --i) {
    s[static_cast<std::size_t>(i)] = kDigits[v & 0xf];
    v >>= 4;
  }
  return s;
}

/// Shrinking engine for one find: greedy delta-debugging over the config,
/// keeping a candidate iff the *same* misdiagnosis (verdict class and
/// diagnosed type) persists. Evals are sequential run_one calls — shrinking
/// is a tiny fraction of campaign cost and stays trivially deterministic.
class Shrinker {
 public:
  Shrinker(RunConfig cfg, HuntVerdictClass cls, AnomalyType dx_type,
           double tau, int max_evals)
      : cfg_(std::move(cfg)),
        cls_(cls),
        dx_type_(dx_type),
        tau_(tau),
        budget_(max_evals) {}

  int evals() const { return evals_; }
  const RunConfig& cfg() const { return cfg_; }

  void run() {
    // Structural passes first (cheap, large reductions), then flow
    // dropping, then numeric severity — classic ddmin ordering.
    try_set([](RunConfig& c) { c.shards = 1; });
    try_set([](RunConfig& c) { c.background_load = 0.0; });
    try_set([](RunConfig& c) { c.threshold_factor = 3.0; });
    shrink_fault_lists();
    shrink_overlay_scalars();
    shrink_flows();
    shrink_severity();
  }

 private:
  bool persists(const RunConfig& c) {
    if (evals_ >= budget_) return false;
    ++evals_;
    const RunResult r = run_one(c);
    return classify_verdict(r, tau_) == cls_ && r.dx.type == dx_type_;
  }

  template <typename F>
  bool try_set(F mutate) {
    RunConfig cand = cfg_;
    mutate(cand);
    if (serialize_case({cand}) == serialize_case({cfg_})) return false;
    if (!persists(cand)) return false;
    cfg_ = std::move(cand);
    return true;
  }

  void shrink_fault_lists() {
    const auto clear_each = [&](auto member) {
      try_set([&](RunConfig& c) { (c.faults.*member).clear(); });
    };
    clear_each(&fault::FaultPlan::poll_faults);
    clear_each(&fault::FaultPlan::dma_faults);
    clear_each(&fault::FaultPlan::blackouts);
    clear_each(&fault::FaultPlan::link_flaps);
    clear_each(&fault::FaultPlan::pfc_faults);
    try_set([](RunConfig& c) { c.faults.rtt_jitter = {}; });
    clear_each(&fault::FaultPlan::degraded_links);
  }

  void shrink_overlay_scalars() {
    try_set([](RunConfig& c) { c.overlay.size_scale = 1.0; });
    try_set([](RunConfig& c) { c.overlay.rate_scale = 1.0; });
    try_set([](RunConfig& c) { c.overlay.arrival_stride_ns = 0; });
    try_set([](RunConfig& c) { c.overlay.duration_add_ns = 0; });
    try_set([](RunConfig& c) { c.overlay.fault_rate_scale = 1.0; });
    try_set([](RunConfig& c) { c.overlay.fault_window_scale = 1.0; });
    try_set([](RunConfig& c) { c.overlay.drop_flows.clear(); });
  }

  void shrink_flows() {
    const std::size_t n = crafted_flow_count_pre_drop();
    if (n <= 2) return;
    std::vector<std::uint32_t> alive;
    for (std::uint32_t i = 0; i < n; ++i) {
      if (std::find(cfg_.overlay.drop_flows.begin(),
                    cfg_.overlay.drop_flows.end(),
                    i) == cfg_.overlay.drop_flows.end()) {
        alive.push_back(i);
      }
    }
    // Chunked greedy drop: halving chunk sizes, accept any chunk whose
    // removal keeps the misdiagnosis (protected flows are skipped inside
    // apply_overlay, so aggressive chunks are safe).
    for (std::size_t chunk = std::max<std::size_t>(1, alive.size() / 2);
         chunk >= 1 && evals_ < budget_; chunk /= 2) {
      for (std::size_t at = 0; at < alive.size() && evals_ < budget_;) {
        const std::size_t len = std::min(chunk, alive.size() - at);
        const bool kept = try_set([&](RunConfig& c) {
          c.overlay.drop_flows.insert(c.overlay.drop_flows.end(),
                                      alive.begin() +
                                          static_cast<std::ptrdiff_t>(at),
                                      alive.begin() +
                                          static_cast<std::ptrdiff_t>(at +
                                                                      len));
        });
        if (kept) {
          alive.erase(alive.begin() + static_cast<std::ptrdiff_t>(at),
                      alive.begin() + static_cast<std::ptrdiff_t>(at + len));
        } else {
          at += len;
        }
      }
      if (chunk == 1) break;
    }
  }

  void shrink_severity() {
    // Pull fault windows in and rates down while the find survives — the
    // committed counterexample should sit just past the misdiagnosis
    // boundary, not deep inside it.
    for (int round = 0; round < 2; ++round) {
      try_set([](RunConfig& c) {
        c.overlay.fault_window_scale *= 0.5;
      });
      try_set([](RunConfig& c) { c.overlay.fault_rate_scale *= 0.5; });
      try_set([](RunConfig& c) {
        c.fleet_severity = 1.0 + (c.fleet_severity - 1.0) * 0.5;
      });
    }
    try_set([](RunConfig& c) { c.fleet_severity = 1.0; });
  }

  std::size_t crafted_flow_count_pre_drop() {
    RunConfig c = cfg_;
    c.overlay.drop_flows.clear();
    return crafted_flow_count(c);
  }

  RunConfig cfg_;
  HuntVerdictClass cls_;
  AnomalyType dx_type_;
  double tau_;
  int budget_;
  int evals_ = 0;
};

}  // namespace

std::string_view to_string(HuntVerdictClass c) {
  switch (c) {
    case HuntVerdictClass::kCorrect: return "correct";
    case HuntVerdictClass::kExcused: return "excused";
    case HuntVerdictClass::kMissedTrigger: return "missed-trigger";
    case HuntVerdictClass::kWrongLowConfidence: return "wrong-low-confidence";
    case HuntVerdictClass::kSilentWrong: return "silent-wrong";
  }
  return "?";
}

int severity(HuntVerdictClass c) {
  switch (c) {
    case HuntVerdictClass::kCorrect:
    case HuntVerdictClass::kExcused: return 0;
    case HuntVerdictClass::kMissedTrigger: return 1;
    case HuntVerdictClass::kWrongLowConfidence: return 2;
    case HuntVerdictClass::kSilentWrong: return 3;
  }
  return 0;
}

namespace {

/// The asserted verdict names a defect class the campaign itself injected
/// at cfg level, and that defect demonstrably fired. Two real problems
/// coexist in such a run (the crafted anomaly and the injected fault);
/// blaming the injected one is attribution ambiguity, not a wrong
/// diagnosis — hunting it would rediscover the injector.
bool named_injected_defect(const RunResult& r) {
  switch (r.dx.type) {
    case AnomalyType::kDegradedLink: return r.crc_drops > 0;
    case AnomalyType::kLinkSpeedMismatch:
    case AnomalyType::kOversubscribedDownlink:
      return r.rate_limited_pkts > 0;
    case AnomalyType::kHostPcieBottleneck: return r.host_drain_delayed > 0;
    default: return false;
  }
}

}  // namespace

HuntVerdictClass classify_verdict(const RunResult& r, double tau) {
  if (r.truth_type == AnomalyType::kNone) {
    // Benign trace: run_one scores a quiet run fn by convention (nothing
    // triggered); only an asserted verdict is a diagnosis failure here —
    // unless it names an injected defect that really fired.
    if (!r.fp || named_injected_defect(r)) return HuntVerdictClass::kCorrect;
    return r.confidence >= tau ? HuntVerdictClass::kSilentWrong
                               : HuntVerdictClass::kWrongLowConfidence;
  }
  if (r.tp) return HuntVerdictClass::kCorrect;
  if (r.fn) {
    // The robustness benches attribute a miss to injected substrate damage
    // when collection was degraded or a data-plane fault fired.
    return (r.degraded || r.dataplane_fault_fired)
               ? HuntVerdictClass::kExcused
               : HuntVerdictClass::kMissedTrigger;
  }
  // fp: wrong verdict asserted. Excused when an injected data-plane fault
  // actually intersected the victim's path (victim-path-aware attribution,
  // same rule as bench_dataplane_robustness), or when the verdict names an
  // injected defect class that fired.
  if ((r.dataplane_fault_fired && r.fault_on_victim_path) ||
      named_injected_defect(r)) {
    return HuntVerdictClass::kExcused;
  }
  return r.confidence >= tau ? HuntVerdictClass::kSilentWrong
                             : HuntVerdictClass::kWrongLowConfidence;
}

HuntReport run_hunt_campaign(const HuntOptions& opts) {
  HuntReport rep;
  std::ostringstream log;
  std::string ks_str, sh_str;
  for (const int k : opts.ks) {
    ks_str += (ks_str.empty() ? "" : ",") + std::to_string(k);
  }
  for (const int s : opts.shard_choices) {
    sh_str += (sh_str.empty() ? "" : ",") + std::to_string(s);
  }
  log << "hunt seed=" << opts.seed << " budget=" << opts.budget
      << " tau=" << canonical_double(opts.tau) << " ks=" << ks_str
      << " shards=" << sh_str << '\n';

  std::vector<std::string> seen_signatures;
  std::vector<std::uint64_t> written_fps;
  const int batch = std::max(1, opts.batch);
  for (int base = 0; base < opts.budget; base += batch) {
    const int n = std::min(batch, opts.budget - base);
    std::vector<RunConfig> cfgs;
    cfgs.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      cfgs.push_back(sample_trial(opts, base + i));
    }
    SweepOptions sw;
    sw.threads = opts.threads;
    const std::vector<RunResult> results = run_sweep(cfgs, sw);
    rep.trials += n;
    rep.evals += n;
    for (int i = 0; i < n; ++i) {
      const int trial = base + i;
      const RunResult& r = results[static_cast<std::size_t>(i)];
      const HuntVerdictClass cls = classify_verdict(r, opts.tau);
      ++rep.count_by_class[static_cast<int>(cls)];
      if (cls == HuntVerdictClass::kCorrect) continue;
      log << "trial=" << trial << " scenario="
          << diagnosis::to_string(cfgs[static_cast<std::size_t>(i)].scenario)
          << " seed=" << cfgs[static_cast<std::size_t>(i)].seed
          << " k=" << cfgs[static_cast<std::size_t>(i)].fat_tree_k
          << " class=" << to_string(cls)
          << " verdict=" << diagnosis::to_string(r.dx.type)
          << " truth=" << diagnosis::to_string(r.truth_type)
          << " conf=" << canonical_double(r.confidence) << '\n';
      if (severity(cls) < 1) continue;
      if (static_cast<int>(rep.finds.size()) >= opts.max_finds) continue;
      const std::string sig =
          std::string(diagnosis::to_string(r.truth_type)) + "/" +
          std::string(to_string(cls)) + "/" +
          std::string(diagnosis::to_string(r.dx.type));
      if (opts.dedupe_signatures &&
          std::find(seen_signatures.begin(), seen_signatures.end(), sig) !=
              seen_signatures.end()) {
        continue;
      }
      seen_signatures.push_back(sig);

      HuntFind find;
      find.trial = trial;
      find.signature = sig;
      find.original.cfg = cfgs[static_cast<std::size_t>(i)];
      find.flows_before = crafted_flow_count(find.original.cfg);

      RunConfig shrunk_cfg = find.original.cfg;
      if (opts.shrink) {
        Shrinker sh(shrunk_cfg, cls, r.dx.type, opts.tau,
                    opts.max_shrink_evals);
        sh.run();
        shrunk_cfg = sh.cfg();
        rep.evals += sh.evals();
        find.shrink_evals = sh.evals();
      }
      find.flows_after = crafted_flow_count(shrunk_cfg);
      log << "shrunk trial=" << trial << " evals=" << find.shrink_evals
          << " flows=" << find.flows_before << "->" << find.flows_after
          << '\n';

      HuntCase hc;
      hc.cfg = shrunk_cfg;
      hc.expected_class = std::string(to_string(cls));
      hc.expected_verdict = r.dx.type;
      hc.expected_truth = r.truth_type;
      hc.note = "hunt seed=" + std::to_string(opts.seed) +
                " trial=" + std::to_string(trial) + " conf=" +
                canonical_double(r.confidence);
      find.shrunk = hc;
      find.original.expected_class = hc.expected_class;
      find.original.expected_verdict = hc.expected_verdict;
      find.original.expected_truth = hc.expected_truth;

      const std::uint64_t fp = case_fingerprint(hc);
      if (!opts.corpus_dir.empty() &&
          std::find(written_fps.begin(), written_fps.end(), fp) ==
              written_fps.end()) {
        written_fps.push_back(fp);
        std::filesystem::create_directories(opts.corpus_dir);
        find.file = "hunt-" + std::string(to_string(cls)) + "-" +
                    std::string(diagnosis::to_string(r.truth_type)) + "-" +
                    hex16(fp) + ".txt";
        std::ofstream out(std::filesystem::path(opts.corpus_dir) / find.file,
                          std::ios::binary);
        out << serialize_case(hc);
      }
      log << "find trial=" << trial << " sig=" << sig
          << (find.file.empty() ? "" : " file=" + find.file) << '\n';
      rep.finds.push_back(std::move(find));
    }
  }
  log << "summary trials=" << rep.trials << " evals=" << rep.evals
      << " correct=" << rep.count_by_class[0]
      << " excused=" << rep.count_by_class[1]
      << " missed=" << rep.count_by_class[2]
      << " wrong-low=" << rep.count_by_class[3]
      << " silent=" << rep.count_by_class[4]
      << " finds=" << rep.finds.size() << '\n';
  rep.log = log.str();
  return rep;
}

ReplayOutcome replay_case(const HuntCase& c, double tau) {
  ReplayOutcome out;
  out.result = run_one(c.cfg);
  out.observed = classify_verdict(out.result, tau);
  out.matches_expected =
      to_string(out.observed) == c.expected_class &&
      out.result.dx.type == c.expected_verdict &&
      out.result.truth_type == c.expected_truth;
  std::ostringstream d;
  d << "observed class=" << to_string(out.observed)
    << " verdict=" << diagnosis::to_string(out.result.dx.type)
    << " truth=" << diagnosis::to_string(out.result.truth_type)
    << " conf=" << canonical_double(out.result.confidence)
    << " | expected class=" << c.expected_class
    << " verdict=" << diagnosis::to_string(c.expected_verdict)
    << " truth=" << diagnosis::to_string(c.expected_truth);
  out.detail = d.str();
  return out;
}

}  // namespace hawkeye::eval
