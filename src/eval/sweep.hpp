#pragma once

#include <cstdint>
#include <vector>

#include "eval/runner.hpp"

namespace hawkeye::eval {

/// Parallel deterministic sweep runner.
///
/// Every paper figure is produced by sweeping run_one over seeds ×
/// scenarios × parameters. Each run is fully self-contained (its Testbed
/// owns the simulator, RNG state is seeded per run, and no mutable process
/// globals remain), so independent runs fan out across a thread pool.
/// Results are written into a slot per input config and returned in input
/// order, which makes aggregation deterministic: an N-thread sweep yields
/// bitwise-identical results to a 1-thread sweep of the same config list
/// (covered by tests/sweep_test.cpp).
struct SweepOptions {
  /// Worker threads; <= 0 means std::thread::hardware_concurrency().
  /// The HAWKEYE_SWEEP_THREADS environment variable, when set to a
  /// positive integer, overrides a non-positive value here.
  int threads = 0;
};

/// Expand one config into `n` configs with seeds seed0, seed0+1, ...
/// (the "n traces per point" pattern every figure bench uses).
std::vector<RunConfig> seed_sweep(RunConfig cfg, int n,
                                  std::uint64_t seed0 = 1);

/// Run every config through run_one, in parallel, and return the results
/// in input order.
std::vector<RunResult> run_sweep(const std::vector<RunConfig>& cfgs,
                                 const SweepOptions& opts = {});

/// Resolved worker-thread count for `opts` (env override applied).
int sweep_thread_count(const SweepOptions& opts, std::size_t jobs);

}  // namespace hawkeye::eval
