#include "eval/sweep.hpp"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

namespace hawkeye::eval {

std::vector<RunConfig> seed_sweep(RunConfig cfg, int n, std::uint64_t seed0) {
  std::vector<RunConfig> out;
  out.reserve(static_cast<std::size_t>(n > 0 ? n : 0));
  for (int i = 0; i < n; ++i) {
    cfg.seed = seed0 + static_cast<std::uint64_t>(i);
    out.push_back(cfg);
  }
  return out;
}

int sweep_thread_count(const SweepOptions& opts, std::size_t jobs) {
  int threads = opts.threads;
  if (threads <= 0) {
    if (const char* env = std::getenv("HAWKEYE_SWEEP_THREADS")) {
      threads = std::atoi(env);
    }
  }
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
  }
  if (threads <= 0) threads = 1;
  if (static_cast<std::size_t>(threads) > jobs) {
    threads = static_cast<int>(jobs);
  }
  return threads < 1 ? 1 : threads;
}

std::vector<RunResult> run_sweep(const std::vector<RunConfig>& cfgs,
                                 const SweepOptions& opts) {
  std::vector<RunResult> results(cfgs.size());
  if (cfgs.empty()) return results;

  const int threads = sweep_thread_count(opts, cfgs.size());
  if (threads == 1) {
    for (std::size_t i = 0; i < cfgs.size(); ++i) {
      results[i] = run_one(cfgs[i]);
    }
    return results;
  }

  // Work-stealing by atomic ticket: each worker claims the next config
  // index and writes into its private result slot, so no ordering decision
  // ever depends on thread scheduling.
  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mu;
  auto worker = [&]() {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= cfgs.size()) return;
      try {
        results[i] = run_one(cfgs[i]);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
  return results;
}

}  // namespace hawkeye::eval
