#pragma once

// Canonical textual form of a RunResult. One line per run, every field
// either integral or printed with %.17g (round-trip exact for IEEE
// doubles), so string equality here IS bit-equality of the underlying
// result. Shared by the golden-trace fixtures (tests/golden_test.cpp) and
// the shard-identity suite (tests/shard_identity_test.cpp): both pin the
// same serialization, so "N-shard output equals 1-shard output" and
// "output equals the committed fixture" are statements about the same
// bytes.

#include <cstdio>
#include <sstream>
#include <string>

#include "eval/runner.hpp"

namespace hawkeye::eval {

inline std::string canonical_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

inline std::string canonical_cell_key(diagnosis::AnomalyType scenario,
                                      std::uint64_t seed) {
  std::ostringstream os;
  os << diagnosis::to_string(scenario) << "/s" << seed;
  return os.str();
}

inline std::string canonical_line(diagnosis::AnomalyType scenario,
                                  std::uint64_t seed, const RunResult& r) {
  std::ostringstream os;
  os << canonical_cell_key(scenario, seed)                        //
     << " verdict=" << diagnosis::to_string(r.dx.type)            //
     << " triggered=" << r.triggered                              //
     << " tp=" << r.tp << " fp=" << r.fp << " fn=" << r.fn        //
     << " confidence=" << canonical_double(r.confidence)          //
     << " coverage=" << canonical_double(r.collection_coverage)   //
     << " causal_coverage=" << canonical_double(r.causal_coverage)//
     << " degraded=" << r.degraded                                //
     << " drops=" << r.drops                                      //
     << " polling_drops=" << r.polling_drops                      //
     << " link_down_drops=" << r.link_down_drops                  //
     << " pfc_loss_drops=" << r.pfc_loss_drops                    //
     << " dataplane_fault=" << r.dataplane_fault_fired            //
     << " fault_on_victim_path=" << r.fault_on_victim_path        //
     << " first_fault_at=" << r.first_fault_at                    //
     << " last_fault_at=" << r.last_fault_at                      //
     << " routing_epochs=" << r.routing_epochs                    //
     << " path_churned=" << r.path_churned                        //
     << " detection_latency=" << r.detection_latency              //
     << " collected=" << r.collected_switches                     //
     << " telemetry_bytes=" << r.telemetry_bytes                  //
     << " report_packets=" << r.report_packets                    //
     << " sim_events=" << r.sim_events;
  return os.str();
}

}  // namespace hawkeye::eval
