#pragma once

#include <cstdint>
#include <string>

#include "collect/episode.hpp"
#include "diagnosis/diagnosis.hpp"
#include "sim/simulator.hpp"
#include "telemetry/engine.hpp"
#include "workload/overlay.hpp"
#include "workload/scenario.hpp"

namespace hawkeye::eval {

/// Which diagnosis system handles the trace — Hawkeye plus the §4.2/§4.3
/// comparison baselines.
enum class Method {
  kHawkeye,      // victim path + PFC causality tracing, provenance diagnosis
  kFullPolling,  // collect every switch, provenance diagnosis
  kVictimOnly,   // victim path only, provenance diagnosis
  kSpiderMon,    // victim path, local flow-interaction diagnosis, no PFC
  kNetSight,     // per-packet postcards everywhere, local diagnosis, no PFC
};

std::string_view to_string(Method m);

struct RunConfig {
  diagnosis::AnomalyType scenario = diagnosis::AnomalyType::kMicroBurstIncast;
  std::uint64_t seed = 1;
  Method method = Method::kHawkeye;

  // Hawkeye parameters (the Fig 7 sweep axes).
  int epoch_shift = 17;          // epoch = 2^shift ns (~131 us)
  int epoch_index_bits = 3;      // ring of 8 epochs
  double threshold_factor = 3.0; // detection threshold, x baseline RTT

  // Telemetry ablations (Fig 10).
  telemetry::TelemetryMode tele_mode = telemetry::TelemetryMode::kFull;
  bool one_bit_meter = false;

  double background_load = 0.1;
  /// Fabric scale (k pods, k^2/4 core switches, k^3/4 hosts).
  int fat_tree_k = 4;
  /// Intra-run parallel simulation: device shards for the event calendar
  /// (1 = seed single-calendar path). Results are bitwise identical for
  /// every value — the sharded simulator executes the same canonical event
  /// order. Methods that fan collection out from a trigger event
  /// (full-polling, NetSight) are clamped to 1 shard: their trigger-time
  /// collect_all touches every switch from one event, which has no
  /// shard-local formulation.
  int shards = 1;
  bool verbose = false;

  /// Collection-pipeline faults (robustness sweep). Disabled by default;
  /// the injector seed is mixed with `seed` so every sweep point draws an
  /// independent fault stream.
  fault::FaultPlan faults;
  /// Self-healing retry budget, applied only when `faults` is enabled —
  /// fault-free runs keep the agent's default of 0 so no coverage-check
  /// events are ever scheduled and their traces stay byte-identical.
  std::uint32_t max_repolls = 3;

  /// Traffic pattern for the fleet-ops fault scenarios (ignored for every
  /// other scenario type): the crafted §4.1 shape, an RPC client/server
  /// mesh, or an all-to-all shuffle (bench_fleet_faults matrix axes).
  workload::FleetWorkload fleet_workload = workload::FleetWorkload::kCrafted;
  /// Severity of the injected fleet defect, 1.0 = the scenario's default
  /// (passed to make_fleet_scenario; see its doc for the per-class
  /// mapping — each is monotone and keeps the defect a genuine anomaly at
  /// any severity in the bench's sweep range). bench_fleet_faults sweeps
  /// this to show zero silently-wrong verdicts at every injected rate.
  double fleet_severity = 1.0;

  /// Post-crafting scenario mutations (the misdiagnosis hunter's workload
  /// axes — DESIGN.md §15). Disabled by default: apply_overlay is never
  /// called and the crafted trace is byte-identical to pre-overlay builds.
  workload::ScenarioOverlay overlay;
};

struct RunResult {
  std::string scenario_name;
  diagnosis::AnomalyType truth_type = diagnosis::AnomalyType::kNone;
  bool triggered = false;
  diagnosis::DiagnosisResult dx;
  bool tp = false, fp = false, fn = false;

  // Overheads (Fig 9 / 11 / 14).
  std::int64_t telemetry_bytes = 0;      // processing overhead, zero-filtered
  std::int64_t raw_telemetry_bytes = 0;  // unfiltered register dump
  std::uint64_t report_packets = 0;
  std::uint64_t dataplane_report_packets = 0;
  std::uint64_t polling_packets = 0;
  std::int64_t monitor_bw_bytes = 0;  // method's in-band monitoring traffic
  std::size_t collected_switches = 0;
  std::size_t causal_switches = 0;
  double causal_coverage = 0;
  sim::Time detection_latency = -1;  // trigger time - anomaly start

  std::vector<net::NodeId> collected;  // switches in the episode

  std::uint64_t sim_events = 0;
  /// Sharded-simulator execution profile (all zeros when shards == 1) —
  /// the benches report shard-scaling efficiency from this decomposition.
  sim::Simulator::ShardStats shard_stats;
  /// Pathological drops (data/headroom) — zero on a healthy PFC fabric
  /// even while polling packets are intentionally discarded.
  std::uint64_t drops = 0;
  std::uint64_t polling_drops = 0;

  // Collection health (robustness evaluation).
  double collection_coverage = 1.0;  // expected victim-path hops heard from
  double confidence = 1.0;           // verdict confidence (dx.confidence)
  bool degraded = false;             // telemetry substrate was hit
  std::uint32_t repolls = 0;
  std::uint32_t failed_collections = 0;
  std::uint32_t stale_epochs = 0;

  // Injected data-plane fault truth (bench_dataplane_robustness scores
  // verdicts against this: a wrong/missed verdict inside a fault epoch is
  // attributed, not silently wrong).
  std::uint64_t link_down_drops = 0;    // packets eaten by link flaps
  std::uint64_t pfc_pause_lost = 0;     // PAUSE frames eaten
  std::uint64_t pfc_resume_lost = 0;    // RESUME frames eaten
  std::uint64_t pfc_frames_delayed = 0;
  std::uint64_t pfc_loss_drops = 0;     // overflow drops induced by lost PAUSE
  bool dataplane_fault_fired = false;
  sim::Time first_fault_at = -1;
  sim::Time last_fault_at = -1;
  /// A fired data-plane fault actually intersected the victim's forwarding
  /// path (flapped link on the path, or PFC frame faults — which are
  /// port-global). Attribution of a wrong verdict to an injected fault is
  /// honest only when this holds; an off-path flap excusing a bad verdict
  /// would hide a real misclassification.
  bool fault_on_victim_path = false;

  // Routing reconvergence (PR 4).
  std::uint64_t routing_epochs = 0;  // final net::Routing::epoch()
  bool path_churned = false;         // victim episode spanned a reroute

  // Fleet-ops fault truth + evidence (bench_fleet_faults). The counters
  // are injector observables (modeled MAC FCS registers, slow
  // serializations, NIC DMA drain gauges); `fleet_evidence` is the
  // assembled fleet-health view handed to refine_fleet_verdict.
  std::uint64_t crc_drops = 0;
  std::uint64_t retransmissions = 0;      // victim sender's go-back-N count
  std::uint64_t rate_limited_pkts = 0;
  std::uint64_t host_drain_delayed = 0;
  diagnosis::FleetEvidence fleet_evidence;
};

/// Simulate one crafted trace end-to-end and score the diagnosis.
RunResult run_one(const RunConfig& cfg);

/// The crafting half of run_one, exposed as a mutation/shrinking hook for
/// the misdiagnosis hunter: dispatch the scenario factory for cfg.scenario,
/// merge + victim-path-bind cfg.faults, then apply cfg.overlay. `rng` must
/// be freshly seeded with cfg.seed; run_one continues the same stream into
/// background-flow generation, so crafting through this helper is
/// byte-identical to what run_one simulates.
workload::ScenarioSpec craft_scenario(const RunConfig& cfg, sim::Rng& rng);

/// Did any flapped link that actually bit (dropped or stalled traffic) lie
/// on the victim's forwarding path? `victim_path` is a net::Routing::path_of
/// answer (host NIC hop first); `dst_host` closes the final hop. Exposed for
/// unit testing of the benches' victim-path-aware fault attribution.
bool flap_hit_victim_path(
    const std::vector<std::pair<net::NodeId, net::NodeId>>& links_hit,
    const std::vector<net::PortRef>& victim_path, net::NodeId dst_host);

/// Precision / recall accumulator (paper §4.2 definitions).
struct PrecisionRecall {
  int tp = 0, fp = 0, fn = 0;
  void add(const RunResult& r) {
    tp += r.tp ? 1 : 0;
    fp += r.fp ? 1 : 0;
    fn += r.fn ? 1 : 0;
  }
  double precision() const {
    return tp + fp == 0 ? 0.0 : static_cast<double>(tp) / (tp + fp);
  }
  double recall() const {
    return tp + fn == 0 ? 0.0 : static_cast<double>(tp) / (tp + fn);
  }
};

/// Accuracy-vs-confidence-threshold curve accumulator. Feed every run's
/// (confidence, correct) pair; points() sweeps the assertion threshold τ
/// over equal-width buckets and reports, per τ, how many runs would still
/// assert a verdict (confidence >= τ) and how many of those are correct.
/// `asserted` is non-increasing in τ by construction — the monotonicity
/// the threshold-curve test pins down.
struct ConfidenceCurve {
  struct Point {
    double threshold = 0;
    int asserted = 0;  // runs with confidence >= threshold
    int correct = 0;   // of those, correct (tp) verdicts
    double accuracy() const {
      return asserted == 0 ? 1.0
                           : static_cast<double>(correct) /
                                 static_cast<double>(asserted);
    }
  };
  void add(double confidence, bool correct) {
    samples_.emplace_back(confidence, correct);
  }
  std::size_t size() const { return samples_.size(); }
  std::vector<Point> points(int buckets = 10) const;

 private:
  std::vector<std::pair<double, bool>> samples_;
};

}  // namespace hawkeye::eval
