#pragma once

#include <cstdint>
#include <string>

#include "collect/episode.hpp"
#include "diagnosis/diagnosis.hpp"
#include "telemetry/engine.hpp"
#include "workload/scenario.hpp"

namespace hawkeye::eval {

/// Which diagnosis system handles the trace — Hawkeye plus the §4.2/§4.3
/// comparison baselines.
enum class Method {
  kHawkeye,      // victim path + PFC causality tracing, provenance diagnosis
  kFullPolling,  // collect every switch, provenance diagnosis
  kVictimOnly,   // victim path only, provenance diagnosis
  kSpiderMon,    // victim path, local flow-interaction diagnosis, no PFC
  kNetSight,     // per-packet postcards everywhere, local diagnosis, no PFC
};

std::string_view to_string(Method m);

struct RunConfig {
  diagnosis::AnomalyType scenario = diagnosis::AnomalyType::kMicroBurstIncast;
  std::uint64_t seed = 1;
  Method method = Method::kHawkeye;

  // Hawkeye parameters (the Fig 7 sweep axes).
  int epoch_shift = 17;          // epoch = 2^shift ns (~131 us)
  int epoch_index_bits = 3;      // ring of 8 epochs
  double threshold_factor = 3.0; // detection threshold, x baseline RTT

  // Telemetry ablations (Fig 10).
  telemetry::TelemetryMode tele_mode = telemetry::TelemetryMode::kFull;
  bool one_bit_meter = false;

  double background_load = 0.1;
  /// Fabric scale (k pods, k^2/4 core switches, k^3/4 hosts).
  int fat_tree_k = 4;
  bool verbose = false;

  /// Collection-pipeline faults (robustness sweep). Disabled by default;
  /// the injector seed is mixed with `seed` so every sweep point draws an
  /// independent fault stream.
  fault::FaultPlan faults;
  /// Self-healing retry budget, applied only when `faults` is enabled —
  /// fault-free runs keep the agent's default of 0 so no coverage-check
  /// events are ever scheduled and their traces stay byte-identical.
  std::uint32_t max_repolls = 3;
};

struct RunResult {
  std::string scenario_name;
  diagnosis::AnomalyType truth_type = diagnosis::AnomalyType::kNone;
  bool triggered = false;
  diagnosis::DiagnosisResult dx;
  bool tp = false, fp = false, fn = false;

  // Overheads (Fig 9 / 11 / 14).
  std::int64_t telemetry_bytes = 0;      // processing overhead, zero-filtered
  std::int64_t raw_telemetry_bytes = 0;  // unfiltered register dump
  std::uint64_t report_packets = 0;
  std::uint64_t dataplane_report_packets = 0;
  std::uint64_t polling_packets = 0;
  std::int64_t monitor_bw_bytes = 0;  // method's in-band monitoring traffic
  std::size_t collected_switches = 0;
  std::size_t causal_switches = 0;
  double causal_coverage = 0;
  sim::Time detection_latency = -1;  // trigger time - anomaly start

  std::vector<net::NodeId> collected;  // switches in the episode

  std::uint64_t sim_events = 0;
  /// Pathological drops (data/headroom) — zero on a healthy PFC fabric
  /// even while polling packets are intentionally discarded.
  std::uint64_t drops = 0;
  std::uint64_t polling_drops = 0;

  // Collection health (robustness evaluation).
  double collection_coverage = 1.0;  // expected victim-path hops heard from
  double confidence = 1.0;           // verdict confidence (dx.confidence)
  bool degraded = false;             // telemetry substrate was hit
  std::uint32_t repolls = 0;
  std::uint32_t failed_collections = 0;
  std::uint32_t stale_epochs = 0;

  // Injected data-plane fault truth (bench_dataplane_robustness scores
  // verdicts against this: a wrong/missed verdict inside a fault epoch is
  // attributed, not silently wrong).
  std::uint64_t link_down_drops = 0;    // packets eaten by link flaps
  std::uint64_t pfc_pause_lost = 0;     // PAUSE frames eaten
  std::uint64_t pfc_resume_lost = 0;    // RESUME frames eaten
  std::uint64_t pfc_frames_delayed = 0;
  std::uint64_t pfc_loss_drops = 0;     // overflow drops induced by lost PAUSE
  bool dataplane_fault_fired = false;
  sim::Time first_fault_at = -1;
  sim::Time last_fault_at = -1;
};

/// Simulate one crafted trace end-to-end and score the diagnosis.
RunResult run_one(const RunConfig& cfg);

/// Precision / recall accumulator (paper §4.2 definitions).
struct PrecisionRecall {
  int tp = 0, fp = 0, fn = 0;
  void add(const RunResult& r) {
    tp += r.tp ? 1 : 0;
    fp += r.fp ? 1 : 0;
    fn += r.fn ? 1 : 0;
  }
  double precision() const {
    return tp + fp == 0 ? 0.0 : static_cast<double>(tp) / (tp + fp);
  }
  double recall() const {
    return tp + fn == 0 ? 0.0 : static_cast<double>(tp) / (tp + fn);
  }
};

}  // namespace hawkeye::eval
