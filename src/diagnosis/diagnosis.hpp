#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "diagnosis/anomaly_type.hpp"
#include "net/routing.hpp"
#include "net/topology.hpp"
#include "provenance/graph.hpp"
#include "sim/time.hpp"

namespace hawkeye::diagnosis {

struct DiagnosisConfig {
  /// Positive contributors below this fraction of the strongest
  /// contributor are treated as incidental, not root causes.
  double contention_share = 0.15;
  /// A port "has flow contention" only when the strongest contributor's
  /// net wait-for weight reaches this floor — incidental sub-packet
  /// waiting (e.g. the pre-injection sliver of a storm epoch) is noise.
  double min_contention = 1.0;
  /// burst-flow(f) predicate (Table 2): per-epoch goodput above this.
  double burst_rate_gbps = 25.0;
  /// Fabric-scale terminal ranking: prefer contention terminals matching
  /// the Table-2 incast signature (burst flows converging on a server
  /// -facing port) over generic mid-fabric contention, and only then rank
  /// by contention mass. On a large busy fabric the victim's PFC
  /// provenance reaches several genuinely congested ports at once, and
  /// the busiest core port out-masses the anomaly's initial point almost
  /// by construction — core links aggregate an entire pod's traffic. The
  /// signature tier encodes what raw mass cannot: an incast's defining
  /// evidence is WHERE the bursts converge, not how much total waiting
  /// piled up. false (the default) keeps the paper's pure mass ranking —
  /// small fabrics see one anomaly at a time, so verdicts are identical.
  bool signature_rank = false;
  sim::Time epoch_ns = sim::Time{1} << 20;
  std::int32_t mtu_bytes = 1000;
};

struct DiagnosisResult {
  AnomalyType type = AnomalyType::kNone;
  /// Flows identified as the anomaly's origin (bursts / contenders).
  std::vector<net::FiveTuple> root_cause_flows;
  /// Device believed to inject PFC (host at the end of the spreading path).
  net::NodeId injecting_peer = net::kInvalidNode;
  /// Initial congestion point (terminal of the PFC spreading path).
  net::PortRef initial_port;
  /// CBD cycle if a deadlock was found.
  std::vector<net::PortRef> loop_ports;
  /// Every port visited while tracing PFC causality.
  std::vector<net::PortRef> spreading_path;
  /// Flows paused at 2+ spreading-path ports (they propagate the PFC,
  /// like F2 in the paper's Figure 12(a)).
  std::vector<net::FiveTuple> spreading_flows;
  std::string narrative;
  /// How much the verdict can be trusted given the health of the telemetry
  /// it was computed from: 1.0 for a complete, fault-free collection,
  /// lower when hops were missing, snapshots failed or stale epochs were
  /// rejected. The diagnosis algorithm itself always emits its best-effort
  /// verdict; the caller scales this from collection health (see
  /// collection_confidence below).
  double confidence = 1.0;

  bool detected() const { return type != AnomalyType::kNone; }
};

/// Algorithm 2: trace the victim flow's PFC causality through the
/// provenance graph, match the Table 2 signatures and locate root causes.
DiagnosisResult diagnose(const provenance::ProvenanceGraph& g,
                         const net::Topology& topo,
                         const net::Routing& routing,
                         const net::FiveTuple& victim,
                         const DiagnosisConfig& cfg = {});

// ---- Fleet-ops fault signatures (Table 2 extension rows) ----
//
// Four anomaly classes rooted in component degradation rather than
// traffic: a degraded (CRC-erroring) link, a speed-mismatched link, a
// host whose PCIe drain is the bottleneck, and an oversubscribed
// down-link tier. Algorithm 2 alone cannot separate them from the
// classic rows — their *in-network* symptoms mimic congestion or look
// like nothing at all — but an operator's fleet-health pipeline exports
// exactly the counters that do: MAC FCS error registers, negotiated
// port speeds (the ethtool view) and NIC DMA backlog gauges.
// refine_fleet_verdict layers those counters over the provenance
// verdict and rewrites it when a fleet signature matches.

/// One link's fleet-health counters.
struct LinkCounterEvidence {
  net::NodeId node_a = net::kInvalidNode;
  net::NodeId node_b = net::kInvalidNode;
  /// MAC FCS error register delta over the run.
  std::uint64_t crc_errors = 0;
  /// Configured (expected) port speed vs the negotiated/actual one.
  double nominal_gbps = 0;
  double actual_gbps = 0;
  /// Frames observed serializing below the nominal rate.
  std::uint64_t slow_serializations = 0;
  /// The speed reduction came from a tier-wide (oversubscription) spec,
  /// not a lone port: set when several sibling down-links share it.
  bool oversub_tier = false;

  bool reduced(double ratio) const {
    return nominal_gbps > 0 && actual_gbps < ratio * nominal_gbps;
  }
};

/// One host NIC's fleet-health counters.
struct HostCounterEvidence {
  net::NodeId host = net::kInvalidNode;
  /// Frames whose ACK waited behind the capped DMA drain FIFO.
  std::uint64_t drain_delayed_pkts = 0;
  /// DMA backlog high-water mark (ns of queued drain work).
  sim::Time max_drain_backlog_ns = 0;
};

/// Everything the fleet-health pipeline knows about the fabric for one
/// episode. Empty evidence => refine_fleet_verdict is the identity.
struct FleetEvidence {
  std::vector<LinkCounterEvidence> links;
  std::vector<HostCounterEvidence> hosts;
  /// Go-back-N retransmissions issued by the victim's sender NIC.
  std::uint64_t sender_retransmissions = 0;

  bool empty() const { return links.empty() && hosts.empty(); }
};

/// Decision thresholds for the four fleet signature rows. Calibrated on
/// the bench_fleet_faults matrix (every fault class x workload cell must
/// produce its own verdict with zero silently-wrong cells).
struct FleetSignatureConfig {
  /// A link is "CRC-degraded" from this many FCS errors (a healthy run
  /// has exactly zero; a handful tolerates counter noise on real gear).
  std::uint64_t min_crc_errors = 3;
  /// A host is "drain-bound" from this many delayed frames.
  std::uint64_t min_drain_delayed = 16;
  /// actual/nominal below this ratio counts as a reduced-rate link.
  double reduced_rate_ratio = 0.9;
  /// Fan-in at/above this is a believable incast; below it, congestion
  /// provenance without fan-in points at a degraded component (mirrors
  /// ContentionCauseConfig::incast_min_sources).
  int incast_min_sources = 3;
  /// A DMA drain backlog at/above this overrides even a congestion-shaped
  /// incast verdict: the drain FIFO only backs up while arrival exceeds
  /// the PCIe cap, and no switch queue delays frames for anywhere near
  /// this long (xoff-bounded queues drain in single-digit microseconds).
  sim::Time min_drain_backlog_ns = 500'000;  // 500 us
  /// Confidence calibration: floor when the signature barely clears its
  /// thresholds, ceiling as the counter evidence saturates.
  double base_confidence = 0.60;
  double max_confidence = 0.95;
};

/// Rewrite the provenance verdict when a fleet-ops signature matches
/// (identity otherwise — in particular for empty evidence). The rules,
/// one Table-2 row per class:
///  - degraded link: a victim-path link shows FCS errors AND the sender
///    retransmitted, while the verdict is congestion-shaped (or traced
///    to the erroring link) *without* incast fan-in;
///  - link-speed mismatch: exactly one lone (non-tier) reduced-rate link
///    on the victim path, clean FCS, observed slow serializations;
///  - oversubscribed down-link: several sibling down-links reduced by a
///    tier-wide factor, one of them on the victim path, with multi-flow
///    contention in the verdict;
///  - host PCIe bottleneck: the victim's destination NIC shows DMA
///    drain backlog while NOTHING upstream paused (the no-PFC verdicts)
///    — the pure-victim row. An incast verdict also yields when the
///    measured backlog alone exceeds min_drain_backlog_ns.
/// Deadlock verdicts are never rewritten: a CBD is structural evidence
/// no counter can explain away. dx.confidence must already hold the
/// collection confidence; a rewrite multiplies in the signature
/// strength (monotone in the evidence, within [base, max]).
DiagnosisResult refine_fleet_verdict(DiagnosisResult dx,
                                     const FleetEvidence& evidence,
                                     const net::Topology& topo,
                                     const net::Routing& routing,
                                     const net::FiveTuple& victim,
                                     const FleetSignatureConfig& cfg = {});

/// Per-fault-class multiplicative discounts applied by
/// collection_confidence. The defaults are calibrated against the
/// robustness sweeps (tools/calibrate_confidence: poll-loss grid from
/// bench_robustness plus the PFC-loss/link-flap axes from
/// bench_dataplane_robustness): among the triples that maximize the AUC of
/// confidence as a correct-verdict ranker, the one with the lowest Brier
/// score — whose confidence best approximates P(correct) — wins. Method
/// and the calibration run are recorded in DESIGN.md §10. Ordering
/// invariant: a failed collection (evidence permanently missing) costs
/// more than a stale rejection (evidence discarded as untrustworthy),
/// which costs more than a re-poll that eventually delivered (evidence
/// merely late).
struct ConfidenceDiscounts {
  double failed_collection = 0.70;
  double stale_epoch = 0.90;
  double repoll = 0.98;
};

/// Confidence score for a verdict computed from possibly-degraded
/// telemetry. `coverage` is the fraction of expected hops that reported
/// (Episode::coverage()); the failure counters each shave a slice off the
/// remainder. Monotone: more faults never raise confidence. A clean
/// complete collection scores exactly 1.0.
double collection_confidence(double coverage, std::uint32_t failed_collections,
                             std::uint32_t stale_epochs_rejected,
                             std::uint32_t repolls,
                             const ConfidenceDiscounts& discounts = {});

}  // namespace hawkeye::diagnosis
