#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "diagnosis/anomaly_type.hpp"
#include "net/routing.hpp"
#include "net/topology.hpp"
#include "provenance/graph.hpp"
#include "sim/time.hpp"

namespace hawkeye::diagnosis {

struct DiagnosisConfig {
  /// Positive contributors below this fraction of the strongest
  /// contributor are treated as incidental, not root causes.
  double contention_share = 0.15;
  /// A port "has flow contention" only when the strongest contributor's
  /// net wait-for weight reaches this floor — incidental sub-packet
  /// waiting (e.g. the pre-injection sliver of a storm epoch) is noise.
  double min_contention = 1.0;
  /// burst-flow(f) predicate (Table 2): per-epoch goodput above this.
  double burst_rate_gbps = 25.0;
  sim::Time epoch_ns = sim::Time{1} << 20;
  std::int32_t mtu_bytes = 1000;
};

struct DiagnosisResult {
  AnomalyType type = AnomalyType::kNone;
  /// Flows identified as the anomaly's origin (bursts / contenders).
  std::vector<net::FiveTuple> root_cause_flows;
  /// Device believed to inject PFC (host at the end of the spreading path).
  net::NodeId injecting_peer = net::kInvalidNode;
  /// Initial congestion point (terminal of the PFC spreading path).
  net::PortRef initial_port;
  /// CBD cycle if a deadlock was found.
  std::vector<net::PortRef> loop_ports;
  /// Every port visited while tracing PFC causality.
  std::vector<net::PortRef> spreading_path;
  /// Flows paused at 2+ spreading-path ports (they propagate the PFC,
  /// like F2 in the paper's Figure 12(a)).
  std::vector<net::FiveTuple> spreading_flows;
  std::string narrative;
  /// How much the verdict can be trusted given the health of the telemetry
  /// it was computed from: 1.0 for a complete, fault-free collection,
  /// lower when hops were missing, snapshots failed or stale epochs were
  /// rejected. The diagnosis algorithm itself always emits its best-effort
  /// verdict; the caller scales this from collection health (see
  /// collection_confidence below).
  double confidence = 1.0;

  bool detected() const { return type != AnomalyType::kNone; }
};

/// Algorithm 2: trace the victim flow's PFC causality through the
/// provenance graph, match the Table 2 signatures and locate root causes.
DiagnosisResult diagnose(const provenance::ProvenanceGraph& g,
                         const net::Topology& topo,
                         const net::Routing& routing,
                         const net::FiveTuple& victim,
                         const DiagnosisConfig& cfg = {});

/// Per-fault-class multiplicative discounts applied by
/// collection_confidence. The defaults are calibrated against the
/// robustness sweeps (tools/calibrate_confidence: poll-loss grid from
/// bench_robustness plus the PFC-loss/link-flap axes from
/// bench_dataplane_robustness): among the triples that maximize the AUC of
/// confidence as a correct-verdict ranker, the one with the lowest Brier
/// score — whose confidence best approximates P(correct) — wins. Method
/// and the calibration run are recorded in DESIGN.md §10. Ordering
/// invariant: a failed collection (evidence permanently missing) costs
/// more than a stale rejection (evidence discarded as untrustworthy),
/// which costs more than a re-poll that eventually delivered (evidence
/// merely late).
struct ConfidenceDiscounts {
  double failed_collection = 0.70;
  double stale_epoch = 0.90;
  double repoll = 0.98;
};

/// Confidence score for a verdict computed from possibly-degraded
/// telemetry. `coverage` is the fraction of expected hops that reported
/// (Episode::coverage()); the failure counters each shave a slice off the
/// remainder. Monotone: more faults never raise confidence. A clean
/// complete collection scores exactly 1.0.
double collection_confidence(double coverage, std::uint32_t failed_collections,
                             std::uint32_t stale_epochs_rejected,
                             std::uint32_t repolls,
                             const ConfidenceDiscounts& discounts = {});

}  // namespace hawkeye::diagnosis
