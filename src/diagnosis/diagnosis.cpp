#include "diagnosis/diagnosis.hpp"

#include <algorithm>
#include <set>
#include <unordered_set>

namespace hawkeye::diagnosis {

using net::FiveTuple;
using net::NodeId;
using net::PortRef;
using provenance::ProvenanceGraph;

namespace {

/// Flow-contention analysis at a port (Algorithm 2, AnalyzeFlowContention):
/// positive port->flow edges are contributors; none means the congestion
/// was not built by local flows => PFC injection from the peer device.
struct ContentionVerdict {
  bool has_contention = false;
  std::vector<net::FiveTuple> contributors;
  bool any_burst = false;
};

ContentionVerdict analyze_contention(const ProvenanceGraph& g, int port_node,
                                     const DiagnosisConfig& cfg,
                                     int victim_node) {
  ContentionVerdict v;
  double max_pos = 0;
  for (const auto& e : g.port_flows(port_node)) {
    if (e.to == victim_node) continue;  // the complainant is never its own cause
    max_pos = std::max(max_pos, e.weight);
  }
  if (max_pos < cfg.min_contention) return v;
  v.has_contention = true;
  std::vector<std::pair<double, int>> pos;
  for (const auto& e : g.port_flows(port_node)) {
    if (e.to == victim_node) continue;
    if (e.weight > 0 && e.weight >= cfg.contention_share * max_pos) {
      pos.push_back({e.weight, e.to});
    }
  }
  std::sort(pos.rbegin(), pos.rend());
  for (const auto& [w, fn] : pos) {
    v.contributors.push_back(g.flow(fn));
    const auto& fi = g.flow_info(fn);
    const double bits = static_cast<double>(fi.pkt_cnt) * cfg.mtu_bytes * 8.0;
    const double dur_ns =
        static_cast<double>(std::max(fi.epochs_seen, 1)) *
        static_cast<double>(cfg.epoch_ns);
    if (bits / dur_ns >= cfg.burst_rate_gbps) v.any_burst = true;
  }
  return v;
}

/// DFS over port-level (PFC causality) edges with loop detection
/// (Algorithm 2, CheckPortNode). Explores strongest edges first.
struct Tracer {
  const ProvenanceGraph& g;
  const DiagnosisConfig& cfg;
  std::vector<int> stack;
  std::unordered_set<int> on_stack;
  std::unordered_set<int> visited;
  std::vector<int> terminals;          // out-degree-0 ports reached
  std::vector<std::vector<int>> loops; // cycles of port nodes
  std::vector<int> order;              // visit order (spreading path)

  void dfs(int p) {
    if (on_stack.count(p)) {
      // Extract the cycle from the current stack.
      std::vector<int> loop;
      bool in = false;
      for (const int q : stack) {
        if (q == p) in = true;
        if (in) loop.push_back(q);
      }
      loops.push_back(std::move(loop));
      return;
    }
    if (visited.count(p)) return;
    visited.insert(p);
    order.push_back(p);
    stack.push_back(p);
    on_stack.insert(p);

    auto edges = g.port_out(p);
    std::sort(edges.begin(), edges.end(),
              [](const auto& a, const auto& b) { return a.weight > b.weight; });
    if (edges.empty()) terminals.push_back(p);
    for (const auto& e : edges) dfs(e.to);

    on_stack.erase(p);
    stack.pop_back();
  }
};

void append_unique(std::vector<FiveTuple>& out, const FiveTuple& t) {
  if (std::find(out.begin(), out.end(), t) == out.end()) out.push_back(t);
}

}  // namespace

DiagnosisResult diagnose(const ProvenanceGraph& g, const net::Topology& topo,
                         const net::Routing& routing, const FiveTuple& victim,
                         const DiagnosisConfig& cfg) {
  DiagnosisResult res;

  // Victim-path ports where the victim flow was PFC-paused, in path order.
  const int vf = g.flow_node(victim);
  std::unordered_set<int> paused_ports;
  if (vf >= 0) {
    for (const auto& e : g.flow_ports(vf)) {
      if (e.weight > 0) paused_ports.insert(e.to);
    }
  }
  // Port-level paused evidence also counts when flow telemetry is absent
  // (port-only ablation): a victim-path port with paused packets.
  const auto victim_paused_at = [&](int pn) {
    return paused_ports.count(pn) > 0 ||
           // A port frozen by PFC at collection time pauses everything that
           // traverses it, even if the victim got no enqueue in recently.
           g.port_info(pn).paused_at_collection ||
           (vf < 0 && g.port_info(pn).paused_num > 0);
  };
  std::vector<int> start_ports;
  for (const PortRef& hop : routing.path_of(victim)) {
    if (!topo.is_switch(hop.node)) continue;
    const int pn = g.port_node(hop);
    if (pn < 0) continue;
    if (victim_paused_at(pn)) start_ports.push_back(pn);
  }
  if (g.path_churned()) {
    // Routing reconverged mid-episode: the evidence was (partly) gathered
    // on a path that path_of no longer answers with. Union in the paused
    // ports of the collection contract's switches so the causality trace
    // starts from the hops the victim actually traversed.
    std::unordered_set<NodeId> contract(g.contract_switches().begin(),
                                        g.contract_switches().end());
    std::unordered_set<int> seen(start_ports.begin(), start_ports.end());
    for (int pn = 0; pn < static_cast<int>(g.port_count()); ++pn) {
      if (contract.count(g.port(pn).node) == 0) continue;
      if (seen.count(pn) > 0) continue;
      if (victim_paused_at(pn)) start_ports.push_back(pn);
    }
  }

  if (start_ports.empty()) {
    // No PFC on the victim path: traditional contention diagnosis. Find the
    // victim-path port with the strongest contention (§3.5.2 last case).
    int best = -1;
    double best_w = 0;
    for (const PortRef& hop : routing.path_of(victim)) {
      const int pn = g.port_node(hop);
      if (pn < 0) continue;
      for (const auto& e : g.port_flows(pn)) {
        if (e.weight > best_w) {
          best_w = e.weight;
          best = pn;
        }
      }
    }
    if (best < 0) return res;  // nothing observable
    const ContentionVerdict v = analyze_contention(g, best, cfg, vf);
    if (!v.has_contention) return res;
    res.type = AnomalyType::kNormalContention;
    res.initial_port = g.port(best);
    res.root_cause_flows = v.contributors;
    res.narrative = "no PFC spreading; flow contention at " +
                    net::to_string(res.initial_port);
    return res;
  }

  // Trace PFC causality from every paused victim-path port.
  Tracer tracer{g, cfg, {}, {}, {}, {}, {}, {}};
  for (const int p : start_ports) tracer.dfs(p);
  for (const int p : tracer.order) res.spreading_path.push_back(g.port(p));

  // Flows paused at 2+ spreading ports propagate the PFC.
  {
    std::unordered_set<int> on_path(tracer.order.begin(), tracer.order.end());
    for (std::size_t fn = 0; fn < g.flow_count(); ++fn) {
      int cnt = 0;
      for (const auto& e : g.flow_ports(static_cast<int>(fn))) {
        if (e.weight > 0 && on_path.count(e.to)) ++cnt;
      }
      if (cnt >= 2) res.spreading_flows.push_back(g.flow(static_cast<int>(fn)));
    }
  }

  if (!tracer.loops.empty()) {
    // ---- Deadlock (Table 2 rows 2-4) ----
    const std::vector<int>& loop = tracer.loops.front();
    const std::unordered_set<int> in_loop(loop.begin(), loop.end());
    for (const int p : loop) res.loop_ports.push_back(g.port(p));

    // An initiator outside the loop reveals itself as a loop port with an
    // out-edge leaving the loop; walk every such branch to its terminals.
    std::vector<int> outside_terminals;
    for (const int p : loop) {
      double strongest = 0;
      for (const auto& e : g.port_out(p)) {
        strongest = std::max(strongest, e.weight);
      }
      for (const auto& e : g.port_out(p)) {
        if (in_loop.count(e.to)) continue;
        if (e.weight < 0.05 * strongest) continue;
        // Walk from e.to to a terminal (strongest-edge-first, loop-free).
        int cur = e.to;
        std::unordered_set<int> seen;
        while (cur >= 0 && !seen.count(cur)) {
          seen.insert(cur);
          if (g.port_out_degree(cur) == 0) break;
          int next = -1;
          double bw = -1;
          for (const auto& e2 : g.port_out(cur)) {
            if (e2.weight > bw && !seen.count(e2.to) && !in_loop.count(e2.to)) {
              bw = e2.weight;
              next = e2.to;
            }
          }
          cur = next;
        }
        if (cur >= 0 && g.port_out_degree(cur) == 0) {
          outside_terminals.push_back(cur);
        }
      }
    }

    // Evidence priority, mirroring the linear-path classification:
    //  1. a PAUSED outside terminal received PAUSE from its peer device —
    //     initiator-out-of-loop by injection (decisive);
    //  2. otherwise compare contention mass: if an outside terminal's
    //     contention dominates every loop port's, the initiator sits
    //     outside the loop; else the strongest-contended loop port is the
    //     in-loop initiator.
    // For locating the initiator the victim's own contention counts too —
    // the queue composition is evidence regardless of who complained (the
    // victim is only excluded from the *reported* root causes).
    auto contention_mass = [&](int pn) {
      double mass = 0;
      for (const auto& e : g.port_flows(pn)) {
        if (e.weight > 0) mass += e.weight;
      }
      return mass;
    };
    int injected_terminal = -1;
    bool injected_peer_is_host = false;
    int best_outside = -1;
    double best_outside_mass = 0;
    for (const int t : outside_terminals) {
      const auto& info = g.port_info(t);
      if (info.paused_num > 0 || info.paused_at_collection) {
        // A paused terminal facing a host pinpoints the injector; one
        // facing a switch only marks where the trace ended — keep it as a
        // fallback but never let it shadow a host-facing terminal.
        const PortRef p = topo.peer(g.port(t));
        const bool is_host = p.valid() && topo.is_host(p.node);
        if (injected_terminal < 0 || (is_host && !injected_peer_is_host)) {
          injected_terminal = t;
          injected_peer_is_host = is_host;
        }
      }
      const double m = contention_mass(t);
      if (m > best_outside_mass) {
        best_outside_mass = m;
        best_outside = t;
      }
    }
    int best_in_loop = -1;
    double best_in_loop_mass = 0;
    for (const int p : loop) {
      const double m = contention_mass(p);
      if (m > best_in_loop_mass) {
        best_in_loop_mass = m;
        best_in_loop = p;
      }
    }

    if (injected_terminal >= 0) {
      res.type = AnomalyType::kOutOfLoopDeadlockInjection;
      res.initial_port = g.port(injected_terminal);
      const PortRef peer = topo.peer(res.initial_port);
      res.injecting_peer = peer.valid() ? peer.node : net::kInvalidNode;
    } else if (best_outside >= 0 &&
               best_outside_mass >=
                   std::max(cfg.min_contention, 0.5 * best_in_loop_mass)) {
      // Table 2's out-of-loop signature is structural (a loop port with
      // out-degree > 1 and a path to a contended terminal); the mass check
      // only guards against faint side branches. Loop links also carry
      // innocent transit traffic that piles up during the lock, so the
      // outside initiator need not strictly dominate the loop's own mass.
      const ContentionVerdict v = analyze_contention(g, best_outside, cfg, vf);
      res.type = AnomalyType::kOutOfLoopDeadlockContention;
      res.initial_port = g.port(best_outside);
      res.root_cause_flows = v.contributors;
    } else if (best_in_loop >= 0) {
      const ContentionVerdict v = analyze_contention(g, best_in_loop, cfg, vf);
      res.type = AnomalyType::kInLoopDeadlock;
      res.initial_port = g.port(best_in_loop);
      res.root_cause_flows = v.contributors;
    } else {
      res.type = AnomalyType::kInLoopDeadlock;  // loop with no contention data
    }
    res.narrative = "CBD loop of " + std::to_string(loop.size()) +
                    " ports; " + std::string(to_string(res.type));
    return res;
  }

  // ---- No loop: linear spreading path (Table 2 rows 1 & 5) ----
  // Inspect terminals: contention => micro-burst incast backpressure;
  // no contention with a host peer => host PFC injection (storm). A
  // no-contention terminal whose peer is another switch means the trace is
  // incomplete (e.g. victim-only collection) and is used only as a last
  // resort.
  // Classify terminals in evidence order:
  //  1. a terminal that is itself PFC-paused received PAUSE frames from
  //     its peer device — decisive injection evidence (PFC storm), no
  //     matter what incidental contention shares other queues;
  //  2. otherwise, the strongest terminal with material flow contention
  //     is the initial congestion point (micro-burst incast);
  //  3. otherwise the trace ended prematurely (e.g. victim-only
  //     collection) — reported as injection behind the last traced port,
  //     which is exactly the baseline's documented failure mode.
  int paused_terminal = -1;
  double paused_score = -1;
  int contention_terminal = -1;
  ContentionVerdict contention_v;
  double contention_score = -1;
  int contention_tier = -1;
  int fallback_terminal = -1;
  double fallback_score = -1;
  for (const int t : tracer.terminals) {
    const auto& info = g.port_info(t);
    const bool paused = info.paused_num > 0 || info.paused_at_collection;
    const double score = info.qdepth_avg + info.paused_num;
    if (paused) {
      // Decisive injection evidence requires the PAUSE source to be an
      // edge: only a host NIC can inject PFC that no upstream telemetry
      // explains. A paused terminal whose peer is another SWITCH means the
      // trace stopped mid-fabric (off-contract hop, or a pause cascade
      // seeded by a flap-stalled port) — that is incomplete-trace
      // evidence and must not outrank a real injector.
      const PortRef peer = topo.peer(g.port(t));
      if (peer.valid() && topo.is_host(peer.node)) {
        if (score > paused_score) {
          paused_score = score;
          paused_terminal = t;
        }
      } else if (score > fallback_score) {
        fallback_score = score;
        fallback_terminal = t;
      }
      continue;
    }
    const ContentionVerdict v = analyze_contention(g, t, cfg, vf);
    if (v.has_contention) {
      // Rank initial-congestion candidates by how much waiting their
      // contenders caused, not by raw queue depth — a deep but
      // single-flow queue is not the contention point.
      double mass = 0;
      for (const auto& e : g.port_flows(t)) {
        if (e.to != vf && e.weight > 0) mass += e.weight;
      }
      // Signature tier (signature_rank only): 2 = the Table-2 incast shape
      // — a server-facing egress whose congested queue was built by burst
      // -rate senders or by many-to-one fan-in (at the bottleneck the
      // per-flow goodput is the bottleneck's share, so a genuine incast
      // can fail the rate test while the fan-in is unmistakable); 1 =
      // server-facing contention without either; 0 = mid-fabric
      // contention. With the flag off every terminal scores tier 0 and
      // the comparison reduces to the original pure-mass argmax.
      int tier = 0;
      if (cfg.signature_rank) {
        const PortRef peer = topo.peer(g.port(t));
        if (peer.valid() && topo.is_host(peer.node)) {
          int fan_in = 0;
          for (const auto& e : g.port_flows(t)) {
            if (e.to != vf) ++fan_in;
          }
          tier = (v.any_burst || fan_in >= 3) ? 2 : 1;
        }
      }
      if (tier > contention_tier ||
          (tier == contention_tier && mass > contention_score)) {
        contention_score = mass;
        contention_terminal = t;
        contention_tier = tier;
        contention_v = v;
      }
    } else if (score > fallback_score) {
      fallback_score = score;
      fallback_terminal = t;
    }
  }

  if (paused_terminal >= 0) {
    res.type = AnomalyType::kPfcStorm;
    res.initial_port = g.port(paused_terminal);
    const PortRef peer = topo.peer(res.initial_port);
    res.injecting_peer = peer.valid() ? peer.node : net::kInvalidNode;
    res.narrative = "PFC storm injected behind " +
                    net::to_string(res.initial_port);
  } else if (contention_terminal >= 0) {
    res.type = AnomalyType::kMicroBurstIncast;
    res.initial_port = g.port(contention_terminal);
    res.root_cause_flows = contention_v.contributors;
    res.narrative = "PFC backpressure from flow contention at " +
                    net::to_string(res.initial_port);
  } else if (fallback_terminal >= 0) {
    res.type = AnomalyType::kPfcStorm;
    res.initial_port = g.port(fallback_terminal);
    const PortRef peer = topo.peer(res.initial_port);
    res.injecting_peer = peer.valid() ? peer.node : net::kInvalidNode;
    res.narrative = "PFC spreading traced to " +
                    net::to_string(res.initial_port) +
                    " (no contention observed beyond this point)";
  }
  return res;
}

namespace {

/// Does the (a, b) link lie on the victim's forwarding path? Returns the
/// switch-side egress PortRef of the earlier (closer-to-source) endpoint —
/// the serialization point an operator would be sent to. path_of lists the
/// egress hops src-host-first; `dst_host` closes the final hop.
struct OnPathLink {
  bool found = false;
  PortRef port;
};

OnPathLink link_on_victim_path(NodeId a, NodeId b,
                               const std::vector<PortRef>& path,
                               NodeId dst_host, const net::Topology& topo) {
  OnPathLink r;
  for (std::size_t i = 0; i < path.size(); ++i) {
    const NodeId u = path[i].node;
    const NodeId v = i + 1 < path.size() ? path[i + 1].node : dst_host;
    if ((u == a && v == b) || (u == b && v == a)) {
      r.found = true;
      // The first hop leaves the source host NIC; report the switch end.
      r.port = topo.is_switch(u) ? path[i] : topo.peer(path[i]);
      return r;
    }
  }
  return r;
}

int distinct_sources(const std::vector<FiveTuple>& flows) {
  std::set<std::uint32_t> srcs;
  for (const FiveTuple& f : flows) srcs.insert(f.src_ip);
  return static_cast<int>(srcs.size());
}

/// Saturating signature strength in [base, max]: 0 evidence scores the
/// base, evidence >> scale approaches the max. Monotone by construction.
double signature_strength(double evidence, double scale,
                          const FleetSignatureConfig& cfg) {
  const double sat = evidence / (evidence + scale);
  return cfg.base_confidence +
         (cfg.max_confidence - cfg.base_confidence) * sat;
}

/// Trimmed rate rendering for narratives ("25 Gbps", not "25.000000").
std::string fmt_gbps(double gbps) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", gbps);
  return buf;
}

}  // namespace

DiagnosisResult refine_fleet_verdict(DiagnosisResult dx,
                                     const FleetEvidence& evidence,
                                     const net::Topology& topo,
                                     const net::Routing& routing,
                                     const net::FiveTuple& victim,
                                     const FleetSignatureConfig& cfg) {
  if (evidence.empty()) return dx;
  // A CBD loop is structural evidence no health counter can explain away.
  if (is_deadlock(dx.type)) return dx;

  const std::vector<PortRef> path = routing.path_of(victim);
  const NodeId dst_host = net::Topology::node_of_ip(victim.dst_ip);
  const auto traced_to = [&](const LinkCounterEvidence& l) {
    return dx.initial_port.valid() && (dx.initial_port.node == l.node_a ||
                                       dx.initial_port.node == l.node_b);
  };
  const bool congestion_shaped = dx.type == AnomalyType::kMicroBurstIncast ||
                                 dx.type == AnomalyType::kNormalContention;
  const int fan_in = distinct_sources(dx.root_cause_flows);

  // ---- Row: degraded link (FCS errors + retransmits, no fan-in) ----
  // Go-back-N repair traffic builds congestion provenance on the path; the
  // giveaway is the erroring MAC register plus sender retransmissions where
  // no believable incast exists. An incast verdict with real fan-in that is
  // NOT traced to the erroring link stays an incast.
  {
    const LinkCounterEvidence* best = nullptr;
    PortRef best_port;
    for (const LinkCounterEvidence& l : evidence.links) {
      if (l.crc_errors < cfg.min_crc_errors) continue;
      const OnPathLink hit =
          link_on_victim_path(l.node_a, l.node_b, path, dst_host, topo);
      if (!hit.found) continue;
      if (best == nullptr || l.crc_errors > best->crc_errors) {
        best = &l;
        best_port = hit.port;
      }
    }
    if (best != nullptr && evidence.sender_retransmissions > 0) {
      const bool believable_incast =
          dx.type == AnomalyType::kMicroBurstIncast &&
          fan_in >= cfg.incast_min_sources && !traced_to(*best);
      if (!believable_incast) {
        const double ev = static_cast<double>(best->crc_errors) +
                          static_cast<double>(evidence.sender_retransmissions);
        dx.type = AnomalyType::kDegradedLink;
        dx.initial_port = best_port;
        dx.injecting_peer = net::kInvalidNode;
        dx.root_cause_flows.clear();
        dx.narrative =
            "degraded link at " + net::to_string(dx.initial_port) + ": " +
            std::to_string(best->crc_errors) + " FCS errors, " +
            std::to_string(evidence.sender_retransmissions) +
            " sender retransmits, no matching incast fan-in";
        dx.confidence *= signature_strength(ev, 16.0, cfg);
        return dx;
      }
    }
  }

  // ---- Reduced-rate link census (rows: oversubscription, mismatch) ----
  std::size_t tier_reduced = 0;
  std::size_t lone_reduced = 0;
  const LinkCounterEvidence* tier_on_path = nullptr;
  PortRef tier_port;
  const LinkCounterEvidence* lone_on_path = nullptr;
  PortRef lone_port;
  double tier_slow = 0;
  for (const LinkCounterEvidence& l : evidence.links) {
    if (!l.reduced(cfg.reduced_rate_ratio)) continue;
    const OnPathLink hit =
        link_on_victim_path(l.node_a, l.node_b, path, dst_host, topo);
    if (l.oversub_tier) {
      ++tier_reduced;
      tier_slow += static_cast<double>(l.slow_serializations);
      if (hit.found && tier_on_path == nullptr) {
        tier_on_path = &l;
        tier_port = hit.port;
      }
    } else {
      ++lone_reduced;
      if (hit.found && lone_on_path == nullptr) {
        lone_on_path = &l;
        lone_port = hit.port;
      }
    }
  }

  // ---- Row: oversubscribed down-link tier ----
  // Several sibling down-links share the reduction; the victim crossed one,
  // and the verdict shows the sustained multi-flow contention a capacity
  // shortfall produces (or traced straight to a reduced link).
  if (tier_on_path != nullptr && tier_reduced >= 2 &&
      (congestion_shaped || traced_to(*tier_on_path))) {
    dx.type = AnomalyType::kOversubscribedDownlink;
    dx.initial_port = tier_port;
    dx.injecting_peer = net::kInvalidNode;
    dx.narrative =
        "oversubscribed down-links: " + std::to_string(tier_reduced) +
        " sibling links at " +
        fmt_gbps(tier_on_path->actual_gbps) + "/" +
        fmt_gbps(tier_on_path->nominal_gbps) +
        " Gbps; victim crosses " + net::to_string(dx.initial_port);
    dx.confidence *= signature_strength(tier_slow, 64.0, cfg);
    return dx;
  }

  // ---- Row: link-speed mismatch ----
  // Exactly one lone reduced link fabric-wide, on the victim path, clean
  // FCS, and frames actually observed serializing slow — the stable
  // single-port bottleneck.
  if (lone_on_path != nullptr && lone_reduced == 1 &&
      lone_on_path->crc_errors < cfg.min_crc_errors &&
      lone_on_path->slow_serializations > 0) {
    const double deficit =
        1.0 - lone_on_path->actual_gbps /
                  std::max(lone_on_path->nominal_gbps, 1e-9);
    const double ev =
        static_cast<double>(lone_on_path->slow_serializations) * deficit;
    dx.type = AnomalyType::kLinkSpeedMismatch;
    dx.initial_port = lone_port;
    dx.injecting_peer = net::kInvalidNode;
    dx.root_cause_flows.clear();
    dx.narrative =
        "link-speed mismatch at " + net::to_string(dx.initial_port) +
        ": negotiated " + fmt_gbps(lone_on_path->actual_gbps) +
        " Gbps in a " + fmt_gbps(lone_on_path->nominal_gbps) +
        " Gbps fabric (" +
        std::to_string(lone_on_path->slow_serializations) +
        " slow serializations, clean FCS)";
    dx.confidence *= signature_strength(ev, 32.0, cfg);
    return dx;
  }

  // ---- Row: host PCIe bottleneck (pure victim, no paused upstream) ----
  // Detection fired, yet no victim-path port ever paused (the no-PFC
  // verdicts) while the destination NIC's DMA drain gauge shows backlog:
  // the receiver host itself is the bottleneck. A congestion-shaped
  // incast verdict also yields — but only to an overwhelming backlog
  // (>= min_drain_backlog_ns, orders of magnitude beyond any switch
  // queue's delay): the drain FIFO can only back up while arrival
  // exceeds the DMA cap, i.e. while the PCIe ceiling — not the fabric —
  // is the binding constraint. A genuine incast toward a healthy host
  // throttles arrival below the cap and never grows such a backlog.
  for (const HostCounterEvidence& h : evidence.hosts) {
    if (h.host != dst_host) continue;
    if (h.drain_delayed_pkts < cfg.min_drain_delayed) continue;
    const bool quiet_fabric = dx.type == AnomalyType::kNone ||
                              dx.type == AnomalyType::kNormalContention;
    // A fallback storm verdict (PFC spreading observed, but provenance
    // found neither a contention terminal nor an injecting HOST — a storm
    // blamed on a switch peer just means tracing ran out of collected
    // evidence) carries no root cause of its own; a dominating backlog
    // explains it. A storm with an identified host injector is never
    // rewritten.
    const bool rootless =
        dx.type == AnomalyType::kMicroBurstIncast ||
        (dx.type == AnomalyType::kPfcStorm &&
         (dx.injecting_peer == net::kInvalidNode ||
          !topo.is_host(dx.injecting_peer)));
    const bool backlog_dominates =
        rootless && h.max_drain_backlog_ns >= cfg.min_drain_backlog_ns;
    if (!quiet_fabric && !backlog_dominates) continue;
    dx.type = AnomalyType::kHostPcieBottleneck;
    dx.injecting_peer = dst_host;
    if (!path.empty()) dx.initial_port = path.back();
    dx.root_cause_flows.clear();
    dx.narrative =
        "host PCIe bottleneck at node " + std::to_string(dst_host) + ": " +
        std::to_string(h.drain_delayed_pkts) +
        " frames waited on the DMA drain (max backlog " +
        std::to_string(h.max_drain_backlog_ns) +
        (quiet_fabric ? " ns), no upstream port paused"
                      : " ns), dwarfing the observed fabric contention");
    dx.confidence *=
        signature_strength(static_cast<double>(h.drain_delayed_pkts),
                           64.0, cfg);
    return dx;
  }

  return dx;
}

double collection_confidence(double coverage, std::uint32_t failed_collections,
                             std::uint32_t stale_epochs_rejected,
                             std::uint32_t repolls,
                             const ConfidenceDiscounts& discounts) {
  double c = std::min(std::max(coverage, 0.0), 1.0);
  // Each failure class discounts multiplicatively: evidence that the
  // substrate misbehaved makes every part of the verdict less trustworthy,
  // but no single class can zero it out on its own (the verdict is still
  // best-effort, not absent). Re-polls that eventually succeeded cost the
  // least — the data arrived, just late. Loops (not pow()) keep the result
  // bit-reproducible across libm implementations.
  for (std::uint32_t i = 0; i < failed_collections; ++i) {
    c *= discounts.failed_collection;
  }
  for (std::uint32_t i = 0; i < stale_epochs_rejected; ++i) {
    c *= discounts.stale_epoch;
  }
  for (std::uint32_t i = 0; i < repolls; ++i) c *= discounts.repoll;
  return c;
}

}  // namespace hawkeye::diagnosis
