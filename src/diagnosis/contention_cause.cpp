#include "diagnosis/contention_cause.hpp"

#include <algorithm>
#include <set>

namespace hawkeye::diagnosis {

using net::NodeId;
using net::PortId;
using net::PortRef;
using provenance::ProvenanceGraph;

namespace {

/// ECMP siblings of (sw, port): every port that shares an equal-cost
/// candidate set with it for some destination. A host-facing port has no
/// siblings (its candidate sets are singletons).
std::set<PortId> ecmp_siblings(const net::Routing& routing,
                               const net::Topology& topo, NodeId sw,
                               PortId port) {
  std::set<PortId> sibs;
  for (const NodeId dst : topo.hosts()) {
    const auto& cands = routing.candidates(sw, dst);
    if (cands.size() < 2) continue;
    if (std::find(cands.begin(), cands.end(), port) == cands.end()) continue;
    sibs.insert(cands.begin(), cands.end());
  }
  return sibs;
}

}  // namespace

ContentionCauseReport analyze_contention_cause(
    const ProvenanceGraph& g, const net::Topology& topo,
    const net::Routing& routing, const DiagnosisResult& dx,
    const ContentionCauseConfig& cfg) {
  ContentionCauseReport rep;
  if (!dx.initial_port.valid()) return rep;
  const int pn = g.port_node(dx.initial_port);
  if (pn < 0) return rep;

  // --- ECMP imbalance ratio across the congested port's siblings ---
  const auto sibs = ecmp_siblings(routing, topo, dx.initial_port.node,
                                  dx.initial_port.port);
  if (sibs.size() >= 2) {
    double total = 0;
    double self = 0;
    int counted = 0;
    for (const PortId p : sibs) {
      const int n = g.port_node({dx.initial_port.node, p});
      const double pkts =
          n >= 0 ? static_cast<double>(g.port_info(n).pkt_cnt) : 0.0;
      total += pkts;
      ++counted;
      if (p == dx.initial_port.port) self = pkts;
    }
    const double mean = counted > 0 ? total / counted : 0.0;
    rep.ecmp_imbalance_ratio = mean > 0 ? self / mean : 1.0;
  }

  // --- Source fan-in and elephant share among the contributors ---
  std::set<std::uint32_t> sources;
  for (const auto& f : dx.root_cause_flows) sources.insert(f.src_ip);
  rep.distinct_sources = static_cast<int>(sources.size());

  double mass = 0;
  double top = 0;
  for (const auto& e : g.port_flows(pn)) {
    if (e.weight > 0) {
      mass += e.weight;
      top = std::max(top, e.weight);
    }
  }
  const double top_share = mass > 0 ? top / mass : 0.0;

  if (rep.ecmp_imbalance_ratio >= cfg.imbalance_threshold) {
    rep.cause = ContentionCause::kEcmpImbalance;
    rep.narrative =
        "hash skew: the congested uplink carries " +
        std::to_string(rep.ecmp_imbalance_ratio).substr(0, 4) +
        "x its fair share of the ECMP group";
  } else if (rep.distinct_sources >= cfg.incast_min_sources) {
    rep.cause = ContentionCause::kIncast;
    rep.narrative = std::to_string(rep.distinct_sources) +
                    " sources converge on " + net::to_string(dx.initial_port);
  } else if (top_share >= cfg.elephant_share &&
             !dx.root_cause_flows.empty()) {
    rep.cause = ContentionCause::kElephant;
    rep.narrative = "flow " + dx.root_cause_flows.front().to_string() +
                    " dominates the queue";
  } else if (!dx.root_cause_flows.empty()) {
    rep.cause = ContentionCause::kIncast;  // generic multi-flow contention
    rep.narrative = "flow contention at " + net::to_string(dx.initial_port);
  }
  return rep;
}

}  // namespace hawkeye::diagnosis
