#include "diagnosis/resolution.hpp"

#include <algorithm>

namespace hawkeye::diagnosis {

using net::NodeId;
using net::PortId;
using net::PortRef;

std::vector<CbdSuggestion> cbd_break_suggestions(
    const std::vector<PortRef>& loop_ports, const net::Routing& routing,
    const net::Topology& topo) {
  std::vector<CbdSuggestion> out;
  for (const auto& ov : routing.overrides()) {
    const PortRef forced{ov.sw, ov.port};
    if (std::find(loop_ports.begin(), loop_ports.end(), forced) ==
        loop_ports.end()) {
      continue;  // this override does not feed the cycle
    }
    CbdSuggestion s;
    s.override_entry = ov;
    // A valley route steers off every shortest path (e.g. agg -> edge ->
    // agg for a remote destination) — the classic CBD-creating
    // misconfiguration (§2.1).
    const auto& cands = routing.candidates(ov.sw, ov.dst);
    s.valley_route =
        std::find(cands.begin(), cands.end(), ov.port) == cands.end();
    s.reason = std::string(topo.name(ov.sw)) + ": traffic to H" +
               std::to_string(ov.dst) + " forced onto loop port " +
               net::to_string(forced) +
               (s.valley_route ? " (valley route, off every shortest path)"
                               : "");
    out.push_back(std::move(s));
  }
  return out;
}

namespace {

/// Can any destination's forwarding place traffic on loop segment
/// i -> i+1 (entering at loop_ports[i] and continuing out loop_ports[i+1])?
bool segment_carryable(const std::vector<PortRef>& loop, std::size_t i,
                       const net::Routing& routing,
                       const net::Topology& topo) {
  const PortRef cur = loop[i];
  const PortRef nxt = loop[(i + 1) % loop.size()];
  if (topo.peer(cur).node != nxt.node) return false;  // not even adjacent
  for (const NodeId dst : topo.hosts()) {
    // Would some flow to dst leave `cur.node` via `cur.port`?
    bool via_cur = false;
    bool via_nxt = false;
    for (const auto& ov : routing.overrides()) {
      if (ov.sw == cur.node && ov.dst == dst && ov.port == cur.port) {
        via_cur = true;
      }
      if (ov.sw == nxt.node && ov.dst == dst && ov.port == nxt.port) {
        via_nxt = true;
      }
    }
    const auto& c0 = routing.candidates(cur.node, dst);
    const auto& c1 = routing.candidates(nxt.node, dst);
    const bool ov0 = [&] {
      for (const auto& ov : routing.overrides()) {
        if (ov.sw == cur.node && ov.dst == dst) return true;
      }
      return false;
    }();
    const bool ov1 = [&] {
      for (const auto& ov : routing.overrides()) {
        if (ov.sw == nxt.node && ov.dst == dst) return true;
      }
      return false;
    }();
    if (!ov0 && std::find(c0.begin(), c0.end(), cur.port) != c0.end()) {
      via_cur = true;  // some ECMP hash choice takes this port
    }
    if (!ov1 && std::find(c1.begin(), c1.end(), nxt.port) != c1.end()) {
      via_nxt = true;
    }
    if (via_cur && via_nxt) return true;
  }
  return false;
}

}  // namespace

bool verify_cbd_broken(const std::vector<PortRef>& loop_ports,
                       net::Routing routing_copy,
                       const std::vector<CbdSuggestion>& suggestions,
                       const net::Topology& topo) {
  for (const CbdSuggestion& s : suggestions) {
    routing_copy.remove_override(s.override_entry.sw, s.override_entry.dst);
  }
  // The cycle survives only if every segment can still carry traffic that
  // waits on the next; one broken segment kills the buffer dependency.
  for (std::size_t i = 0; i < loop_ports.size(); ++i) {
    if (!segment_carryable(loop_ports, i, routing_copy, topo)) return true;
  }
  return false;
}

}  // namespace hawkeye::diagnosis
