#include "diagnosis/analyzer.hpp"

#include <cstdio>

namespace hawkeye::diagnosis {

AnalysisReport Analyzer::analyze(const collect::Episode& episode) const {
  AnalysisReport rep;
  rep.graph = provenance::build_provenance(episode, topo_, cfg_.builder);
  rep.dx = diagnose(rep.graph, topo_, routing_, episode.victim,
                    cfg_.diagnosis);

  const bool contention_rooted =
      rep.dx.type == AnomalyType::kMicroBurstIncast ||
      rep.dx.type == AnomalyType::kOutOfLoopDeadlockContention ||
      rep.dx.type == AnomalyType::kInLoopDeadlock ||
      rep.dx.type == AnomalyType::kNormalContention;
  if (contention_rooted) {
    rep.cause =
        analyze_contention_cause(rep.graph, topo_, routing_, rep.dx, cfg_.cause);
  }
  if (!rep.dx.loop_ports.empty()) {
    rep.cbd_suggestions =
        cbd_break_suggestions(rep.dx.loop_ports, routing_, topo_);
  }

  // --- operator-facing summary ---
  char buf[256];
  std::snprintf(buf, sizeof(buf), "victim %s: %s\n",
                episode.victim.to_string().c_str(),
                std::string(to_string(rep.dx.type)).c_str());
  rep.summary = buf;
  if (!rep.dx.narrative.empty()) {
    rep.summary += "  " + rep.dx.narrative + "\n";
  }
  if (rep.dx.initial_port.valid()) {
    rep.summary +=
        "  initial congestion: " + net::to_string(rep.dx.initial_port) + "\n";
  }
  if (rep.dx.injecting_peer != net::kInvalidNode) {
    std::snprintf(buf, sizeof(buf), "  PFC injected by device %d (%s)\n",
                  rep.dx.injecting_peer,
                  topo_.name(rep.dx.injecting_peer).c_str());
    rep.summary += buf;
  }
  for (const auto& f : rep.dx.root_cause_flows) {
    rep.summary += "  root-cause flow " + f.to_string() + "\n";
  }
  if (contention_rooted && rep.cause.cause != ContentionCause::kUnknown) {
    rep.summary += "  contention cause: " +
                   std::string(to_string(rep.cause.cause)) + " (" +
                   rep.cause.narrative + ")\n";
  }
  if (!rep.dx.loop_ports.empty()) {
    rep.summary += "  CBD loop:";
    for (const auto& p : rep.dx.loop_ports) {
      rep.summary += " " + net::to_string(p);
    }
    rep.summary += "\n";
  }
  for (const auto& s : rep.cbd_suggestions) {
    rep.summary += "  fix: " + s.reason + "\n";
  }
  for (const auto& f : rep.dx.spreading_flows) {
    rep.summary += "  spreading flow " + f.to_string() + "\n";
  }
  return rep;
}

}  // namespace hawkeye::diagnosis
