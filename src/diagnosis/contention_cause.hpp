#pragma once

#include <string_view>
#include <vector>

#include "diagnosis/diagnosis.hpp"
#include "net/routing.hpp"
#include "provenance/graph.hpp"

namespace hawkeye::diagnosis {

struct ContentionCauseReport {
  ContentionCause cause = ContentionCause::kUnknown;
  /// max/mean traffic ratio across the ECMP-equivalent sibling ports of
  /// the congested egress (1.0 = perfectly balanced).
  double ecmp_imbalance_ratio = 1.0;
  /// Distinct sources among the contributing flows.
  int distinct_sources = 0;
  std::string narrative;
};

struct ContentionCauseConfig {
  /// At least this many distinct sources for the incast verdict.
  int incast_min_sources = 3;
  /// Imbalance ratio above which the skew itself is the cause.
  double imbalance_threshold = 1.8;
  /// A contributor carrying at least this share of the contention mass is
  /// an elephant.
  double elephant_share = 0.7;
};

/// Classify why the initial congestion port of `dx` was contended, using
/// the provenance graph's meters (for the imbalance ratio) and the
/// root-cause flows' tuples/volumes.
ContentionCauseReport analyze_contention_cause(
    const provenance::ProvenanceGraph& g, const net::Topology& topo,
    const net::Routing& routing, const DiagnosisResult& dx,
    const ContentionCauseConfig& cfg = {});

}  // namespace hawkeye::diagnosis
