#pragma once

#include <string>

#include "collect/episode.hpp"
#include "diagnosis/contention_cause.hpp"
#include "diagnosis/diagnosis.hpp"
#include "diagnosis/resolution.hpp"
#include "provenance/builder.hpp"

namespace hawkeye::diagnosis {

/// Everything the analyzer derives from one diagnosis episode.
struct AnalysisReport {
  provenance::ProvenanceGraph graph;
  DiagnosisResult dx;
  /// Fine-grained cause when the root is flow contention.
  ContentionCauseReport cause;
  /// Routing misconfigurations implicated in a detected CBD (empty unless
  /// a deadlock with a known routing state was analyzed).
  std::vector<CbdSuggestion> cbd_suggestions;
  /// Human-readable multi-line summary for operators.
  std::string summary;
};

/// The offline analyzer (paper Figure 2, right side): provenance graph
/// construction (Algorithm 1), signature diagnosis (Algorithm 2),
/// contention-cause classification and CBD resolution advice in one call.
/// This is the one-stop public entry point; the individual stages remain
/// available for callers that need only part of the pipeline.
class Analyzer {
 public:
  struct Config {
    provenance::BuilderConfig builder;
    DiagnosisConfig diagnosis;
    ContentionCauseConfig cause;
  };

  Analyzer(const net::Topology& topo, const net::Routing& routing,
           Config cfg = {})
      : topo_(topo), routing_(routing), cfg_(cfg) {}

  AnalysisReport analyze(const collect::Episode& episode) const;

 private:
  const net::Topology& topo_;
  const net::Routing& routing_;
  Config cfg_;
};

}  // namespace hawkeye::diagnosis
