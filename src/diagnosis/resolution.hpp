#pragma once

#include <string>
#include <vector>

#include "net/routing.hpp"
#include "net/topology.hpp"

namespace hawkeye::diagnosis {

/// Deadlock resolution advice (paper §3.5.2: "The PFC spreading causality
/// of HAWKEYE also enables analysis on circular buffer dependency for
/// deadlock prevention and resolution ... Further troubleshooting, such as
/// routing configuration checking, can be conducted").
///
/// Given the CBD cycle a diagnosis reported, cross-check the routing
/// configuration: route overrides that steer traffic out of a loop port
/// are the misconfigurations sustaining the cycle; valley routes (down to
/// an edge and up again) are called out explicitly.
struct CbdSuggestion {
  net::Routing::OverrideInfo override_entry;
  bool valley_route = false;  // forces an up-turn after a down-hop
  std::string reason;
};

std::vector<CbdSuggestion> cbd_break_suggestions(
    const std::vector<net::PortRef>& loop_ports, const net::Routing& routing,
    const net::Topology& topo);

/// True if, after removing the suggested overrides from a copy of the
/// routing state, no destination's forwarding can traverse two consecutive
/// loop ports any more (the cycle is broken).
bool verify_cbd_broken(const std::vector<net::PortRef>& loop_ports,
                       net::Routing routing_copy,
                       const std::vector<CbdSuggestion>& suggestions,
                       const net::Topology& topo);

}  // namespace hawkeye::diagnosis
