#pragma once

#include <string_view>

namespace hawkeye::diagnosis {

/// The representative RDMA NPA cases of paper §2.1 / Table 2. This is the
/// shared vocabulary between the scenario crafters (ground truth), the
/// signature matcher and the evaluation harness.
enum class AnomalyType {
  kNone = 0,
  kMicroBurstIncast,            // PFC backpressure by flow contention
  kPfcStorm,                    // cascading PFC from host injection
  kInLoopDeadlock,              // CBD + initiator inside the loop
  kOutOfLoopDeadlockContention, // CBD + contention initiator outside loop
  kOutOfLoopDeadlockInjection,  // CBD + host PFC injection outside loop
  kNormalContention,            // plain queue contention, no PFC
};

constexpr std::string_view to_string(AnomalyType t) {
  switch (t) {
    case AnomalyType::kNone: return "none";
    case AnomalyType::kMicroBurstIncast: return "micro-burst-incast";
    case AnomalyType::kPfcStorm: return "pfc-storm";
    case AnomalyType::kInLoopDeadlock: return "in-loop-deadlock";
    case AnomalyType::kOutOfLoopDeadlockContention:
      return "out-of-loop-deadlock-contention";
    case AnomalyType::kOutOfLoopDeadlockInjection:
      return "out-of-loop-deadlock-injection";
    case AnomalyType::kNormalContention: return "normal-contention";
  }
  return "?";
}

/// Finer-grained classification of a flow-contention root cause
/// (paper §3.5.2: "incast bursts can be identified by analyzing the
/// contributing flows' paths and throughput, and load imbalance can be
/// located by calculating ECMP imbalance ratio").
enum class ContentionCause {
  kUnknown = 0,
  kIncast,         // many sources converging on one destination port
  kEcmpImbalance,  // hash skew: one equal-cost uplink hot, siblings idle
  kElephant,       // a single long-lived high-rate flow dominates
};

constexpr std::string_view to_string(ContentionCause c) {
  switch (c) {
    case ContentionCause::kUnknown: return "unknown";
    case ContentionCause::kIncast: return "incast";
    case ContentionCause::kEcmpImbalance: return "ecmp-imbalance";
    case ContentionCause::kElephant: return "elephant-flow";
  }
  return "?";
}

/// Both deadlock signatures describe the same anomaly family; diagnosis is
/// scored per exact type, but several helpers want the family.
constexpr bool is_deadlock(AnomalyType t) {
  return t == AnomalyType::kInLoopDeadlock ||
         t == AnomalyType::kOutOfLoopDeadlockContention ||
         t == AnomalyType::kOutOfLoopDeadlockInjection;
}

constexpr bool is_pfc_related(AnomalyType t) {
  return t != AnomalyType::kNone && t != AnomalyType::kNormalContention;
}

}  // namespace hawkeye::diagnosis
