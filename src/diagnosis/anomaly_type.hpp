#pragma once

#include <string_view>

namespace hawkeye::diagnosis {

/// The representative RDMA NPA cases of paper §2.1 / Table 2. This is the
/// shared vocabulary between the scenario crafters (ground truth), the
/// signature matcher and the evaluation harness.
enum class AnomalyType {
  kNone = 0,
  kMicroBurstIncast,            // PFC backpressure by flow contention
  kPfcStorm,                    // cascading PFC from host injection
  kInLoopDeadlock,              // CBD + initiator inside the loop
  kOutOfLoopDeadlockContention, // CBD + contention initiator outside loop
  kOutOfLoopDeadlockInjection,  // CBD + host PFC injection outside loop
  kNormalContention,            // plain queue contention, no PFC

  // Fleet-ops fault classes (silent-failure taxonomy): anomalies whose
  // congestion symptoms mimic the Table 2 rows above but whose root cause
  // is a degraded component, not traffic. Separated from the provenance
  // verdicts by counter-level evidence (FleetEvidence in diagnosis.hpp).
  kDegradedLink,            // BER/CRC loss: congestion provenance, no incast
  kLinkSpeedMismatch,       // one slow-negotiated link in a fast fabric
  kHostPcieBottleneck,      // receiver DMA drain cap: victim, nobody paused
  kOversubscribedDownlink,  // tier-wide down-link capacity reduction
};

constexpr std::string_view to_string(AnomalyType t) {
  switch (t) {
    case AnomalyType::kNone: return "none";
    case AnomalyType::kMicroBurstIncast: return "micro-burst-incast";
    case AnomalyType::kPfcStorm: return "pfc-storm";
    case AnomalyType::kInLoopDeadlock: return "in-loop-deadlock";
    case AnomalyType::kOutOfLoopDeadlockContention:
      return "out-of-loop-deadlock-contention";
    case AnomalyType::kOutOfLoopDeadlockInjection:
      return "out-of-loop-deadlock-injection";
    case AnomalyType::kNormalContention: return "normal-contention";
    case AnomalyType::kDegradedLink: return "degraded-link";
    case AnomalyType::kLinkSpeedMismatch: return "link-speed-mismatch";
    case AnomalyType::kHostPcieBottleneck: return "host-pcie-bottleneck";
    case AnomalyType::kOversubscribedDownlink:
      return "oversubscribed-downlink";
  }
  return "?";
}

/// Finer-grained classification of a flow-contention root cause
/// (paper §3.5.2: "incast bursts can be identified by analyzing the
/// contributing flows' paths and throughput, and load imbalance can be
/// located by calculating ECMP imbalance ratio").
enum class ContentionCause {
  kUnknown = 0,
  kIncast,         // many sources converging on one destination port
  kEcmpImbalance,  // hash skew: one equal-cost uplink hot, siblings idle
  kElephant,       // a single long-lived high-rate flow dominates
};

constexpr std::string_view to_string(ContentionCause c) {
  switch (c) {
    case ContentionCause::kUnknown: return "unknown";
    case ContentionCause::kIncast: return "incast";
    case ContentionCause::kEcmpImbalance: return "ecmp-imbalance";
    case ContentionCause::kElephant: return "elephant-flow";
  }
  return "?";
}

/// Both deadlock signatures describe the same anomaly family; diagnosis is
/// scored per exact type, but several helpers want the family.
constexpr bool is_deadlock(AnomalyType t) {
  return t == AnomalyType::kInLoopDeadlock ||
         t == AnomalyType::kOutOfLoopDeadlockContention ||
         t == AnomalyType::kOutOfLoopDeadlockInjection;
}

/// Fleet-ops fault classes: component degradation diagnosed from counter
/// evidence layered on top of the provenance verdict.
constexpr bool is_fleet_fault(AnomalyType t) {
  return t == AnomalyType::kDegradedLink ||
         t == AnomalyType::kLinkSpeedMismatch ||
         t == AnomalyType::kHostPcieBottleneck ||
         t == AnomalyType::kOversubscribedDownlink;
}

constexpr bool is_pfc_related(AnomalyType t) {
  // The PCIe-bound host is the one verdict defined by the *absence* of
  // PFC anywhere upstream; the other fleet classes surface through PFC
  // backpressure like the classic Table 2 rows.
  return t != AnomalyType::kNone && t != AnomalyType::kNormalContention &&
         t != AnomalyType::kHostPcieBottleneck;
}

}  // namespace hawkeye::diagnosis
