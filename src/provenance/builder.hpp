#pragma once

#include "collect/episode.hpp"
#include "net/topology.hpp"
#include "provenance/graph.hpp"
#include "sim/time.hpp"

namespace hawkeye::provenance {

struct BuilderConfig {
  /// Epoch duration used by the queue replay (must match the telemetry
  /// configuration of the collecting switches).
  sim::Time epoch_ns = sim::Time{1} << 20;
  /// Build from "anomaly epochs" only — epochs in which any collected port
  /// saw PFC-paused packets. Falls back to all epochs when none did (the
  /// normal-contention case). Disabling this reproduces the long-epoch
  /// event-conflation failure mode described in §4.2.
  bool filter_anomaly_epochs = true;
  /// Port-level edges below this fraction of the strongest sibling edge
  /// are pruned (uncongested downstream ports carry no causality).
  double min_rel_edge_weight = 0.05;
  /// Downstream ports need at least this average queue depth (packets) to
  /// be considered congested.
  double min_qdepth_pkts = 0.5;
};

/// Algorithm 1: construct the heterogeneous wait-for provenance graph from
/// the telemetry reports of one diagnosis episode.
ProvenanceGraph build_provenance(const collect::Episode& episode,
                                 const net::Topology& topo,
                                 const BuilderConfig& cfg = {});

}  // namespace hawkeye::provenance
