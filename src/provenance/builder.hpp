#pragma once

#include "collect/episode.hpp"
#include "net/topology.hpp"
#include "provenance/graph.hpp"
#include "sim/time.hpp"

namespace hawkeye::provenance {

struct BuilderConfig {
  /// Epoch duration used by the queue replay (must match the telemetry
  /// configuration of the collecting switches).
  sim::Time epoch_ns = sim::Time{1} << 20;
  /// Build from "anomaly epochs" only — epochs in which any collected port
  /// saw PFC-paused packets. Falls back to all epochs when none did (the
  /// normal-contention case). Disabling this reproduces the long-epoch
  /// event-conflation failure mode described in §4.2.
  bool filter_anomaly_epochs = true;
  /// Fabric-scale evidence calibration: when > 0, anomaly epochs are
  /// further restricted to those ending within this many ns before the
  /// episode's trigger. On a large busy fabric PFC pause activity is near
  /// -continuous somewhere, so "any epoch with a pause" stops being a
  /// filter at all — the graph then aggregates every transient hot spot
  /// the telemetry rings ever saw, and a long-dead background event can
  /// out-mass the anomaly that actually raised the trigger. Scoping to the
  /// trigger keeps only evidence that can explain it (same reasoning as
  /// the no-PFC fallback horizon below). If scoping would empty the set,
  /// the unscoped anomaly epochs are kept (old behaviour beats no
  /// evidence). 0 (the default) disables scoping entirely: epoch
  /// selection is exactly the paper's pause-activity filter.
  sim::Time trigger_scope_ns = 0;
  /// Port-level edges below this fraction of the strongest sibling edge
  /// are pruned (uncongested downstream ports carry no causality).
  double min_rel_edge_weight = 0.05;
  /// Downstream ports need at least this average queue depth (packets) to
  /// be considered congested.
  double min_qdepth_pkts = 0.5;
};

/// Algorithm 1: construct the heterogeneous wait-for provenance graph from
/// the telemetry reports of one diagnosis episode.
ProvenanceGraph build_provenance(const collect::Episode& episode,
                                 const net::Topology& topo,
                                 const BuilderConfig& cfg = {});

}  // namespace hawkeye::provenance
