#include "provenance/builder.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <unordered_map>

namespace hawkeye::provenance {

namespace {

using collect::Episode;
using net::FiveTuple;
using net::NodeId;
using net::PortId;
using net::PortRef;
using telemetry::EpochRecord;
using telemetry::FlowRecord;
using telemetry::SwitchTelemetryReport;

/// Epochs with any PFC pause activity anywhere in the episode, identified
/// by their wall-clock start (unique, unlike the 8-bit epoch ID).
std::set<sim::Time> anomaly_epoch_starts(const Episode& ep) {
  std::set<sim::Time> starts;
  for (const auto& [sw, rep] : ep.reports) {
    for (const EpochRecord& er : rep.epochs) {
      for (const auto& pr : er.ports) {
        if (pr.paused_cnt > 0) {
          starts.insert(er.start);
          break;
        }
      }
    }
  }
  return starts;
}

struct PortAgg {
  double paused = 0;
  double qdepth_sum = 0;
  std::uint64_t pkt_cnt = 0;
  bool frozen = false;  // PFC status register showed "paused" at collection
  std::int64_t standing_pkts = 0;  // instantaneous occupancy at collection
  double qdepth_avg() const {
    return pkt_cnt == 0 ? 0.0 : qdepth_sum / static_cast<double>(pkt_cnt);
  }
  /// Pause evidence for causality edges. A fully frozen port (deadlock)
  /// sees no enqueues and thus no paused counts; the status register is
  /// the paper's answer (Figure 3 "Port Status") and is weighted like a
  /// standing backlog.
  double paused_evidence() const { return paused + (frozen ? 100.0 : 0.0); }
};

/// One flow's presence at one egress port within one epoch (replay input).
struct ReplayFlow {
  int flow_node = -1;
  std::uint32_t contention_pkts = 0;  // pkt_cnt - paused_cnt
  double qdepth_sum = 0;              // Σ queue depth over those enqueues
};

/// Queue replay + contribution (Algorithm 1, ReplayQueue/Contribution).
///
/// Packets of each flow are spaced evenly over the epoch; each replayed
/// packet waits on the packets ahead of it in the reconstructed queue.
/// The collected telemetry stores, per flow, the packet count and the sum
/// of queue depths seen at enqueue, so the queue's composition during the
/// congested part of the epoch is estimated by each flow's *congestion
/// mass* m_j = Σ qdepth(pkt) — packets enqueued into a deep queue carry
/// weight, idle-period packets carry none. With even spreading the wait
/// matrix collapses to the closed form
///
///   w(f_i -> f_j) = D * qshare_j          qshare_j = m_j / Σ m
///   Contrb[f_j]   = Σ_i w(f_i -> f_j) − Σ_k w(f_j -> f_k)
///                 = D * (F * qshare_j − 1)
///
/// i.e. flows with an above-average share of the congested queue are
/// contention contributors (positive), the rest are victims (negative) —
/// the §3.5.1 semantics. Temporal smearing within an epoch is inherent
/// (and is the long-epoch precision loss the paper reports in §4.2).
std::unordered_map<int, double> replay_contribution(
    const std::vector<ReplayFlow>& flows) {
  std::unordered_map<int, double> contrib;
  double total_pkts = 0;
  double total_mass = 0;
  double participants = 0;
  for (const ReplayFlow& f : flows) {
    total_pkts += f.contention_pkts;
    total_mass += f.qdepth_sum;
    if (f.qdepth_sum > 0) participants += 1;
  }
  if (total_pkts <= 0 || total_mass <= 0 || participants < 2) return contrib;
  const double d = total_mass / total_pkts;  // avg depth over the epoch
  for (const ReplayFlow& f : flows) {
    const double qshare = f.qdepth_sum / total_mass;
    contrib[f.flow_node] += d * (participants * qshare - 1.0);
  }
  return contrib;
}

}  // namespace

ProvenanceGraph build_provenance(const Episode& ep, const net::Topology& topo,
                                 const BuilderConfig& cfg) {
  ProvenanceGraph g;
  // Carry the episode's coverage contract into the graph: under routing
  // churn the diagnosis must scan these hops (the path the evidence was
  // actually collected on), not only whatever path_of answers later.
  g.set_collection_contract(ep.expected_switches, ep.path_churned);

  std::set<sim::Time> active = anomaly_epoch_starts(ep);
  bool use_all = !cfg.filter_anomaly_epochs;
  if (!active.empty() && !use_all && cfg.trigger_scope_ns > 0) {
    // Fabric-scale scoping (see BuilderConfig): keep only anomaly epochs
    // that can explain the trigger — epochs ending within the scope before
    // it, up to and including the epoch the trigger itself landed in.
    // Later epochs are dropped too: the merged rings of re-triggered
    // episodes reach far past the first detection, and on a busy fabric
    // they hold whatever unrelated hot spot flared up AFTER the detected
    // anomaly ended (the victim re-triggers on it, the operator is still
    // asking about the original complaint).
    const sim::Time horizon = ep.triggered_at - cfg.trigger_scope_ns;
    std::set<sim::Time> recent;
    for (const sim::Time start : active) {
      if (start <= ep.triggered_at && start + cfg.epoch_ns >= horizon) {
        recent.insert(start);
      }
    }
    if (!recent.empty()) active.swap(recent);
  }
  if (active.empty() && cfg.filter_anomaly_epochs) {
    // No PFC anywhere (plain contention): use the epochs immediately
    // preceding the detection trigger — the contention that raised the
    // victim's RTT is there, stale epochs would pollute the analysis.
    const sim::Time horizon = ep.triggered_at - 4 * cfg.epoch_ns;
    for (const auto& [sw, rep] : ep.reports) {
      for (const EpochRecord& er : rep.epochs) {
        if (er.start + cfg.epoch_ns >= horizon) active.insert(er.start);
      }
    }
    if (active.empty()) use_all = true;
  }
  auto epoch_selected = [&](const EpochRecord& er) {
    return use_all || active.count(er.start) > 0;
  };

  // ---- Aggregate port stats and meters over the selected epochs ----
  std::map<PortRef, PortAgg> port_agg;
  // meter keyed by (downstream switch, in_port, out_port)
  std::map<std::tuple<NodeId, PortId, PortId>, std::uint64_t> meter;
  std::map<std::pair<NodeId, PortId>, std::uint64_t> meter_in_sum;

  for (const auto& [sw, rep] : ep.reports) {
    for (const EpochRecord& er : rep.epochs) {
      if (!epoch_selected(er)) continue;
      for (const auto& pr : er.ports) {
        PortAgg& a = port_agg[{sw, pr.port}];
        a.paused += pr.paused_cnt;
        a.qdepth_sum += static_cast<double>(pr.qdepth_pkts_sum);
        a.pkt_cnt += pr.pkt_cnt;
      }
      for (const auto& m : er.meters) {
        meter[{sw, m.in_port, m.out_port}] += m.bytes;
        meter_in_sum[{sw, m.in_port}] += m.bytes;
      }
    }
    for (const auto& ps : rep.port_status) {
      PortAgg& a = port_agg[{sw, ps.port}];
      if (ps.paused_now) a.frozen = true;
      a.standing_pkts = std::max(a.standing_pkts, ps.queue_pkts);
    }
  }

  // ---- Port nodes (Algorithm 1 lines 2–5) ----
  for (const auto& [pref, agg] : port_agg) {
    g.add_port(pref,
               {agg.paused_evidence(), agg.qdepth_avg(), agg.pkt_cnt, agg.frozen});
  }

  // ---- Port-level provenance (lines 6–9) ----
  for (const auto& [pref, agg] : port_agg) {
    if (agg.paused_evidence() <= 0) continue;  // only paused ports wait
    const PortRef peer = topo.peer(pref);
    if (!peer.valid() || !topo.is_switch(peer.node)) continue;
    if (!ep.has_report(peer.node)) continue;

    const auto sum_it = meter_in_sum.find({peer.node, peer.port});
    if (sum_it == meter_in_sum.end() || sum_it->second == 0) continue;
    const double sum_meter = static_cast<double>(sum_it->second);

    struct Cand {
      PortRef to;
      double w;
      bool paused;
    };
    std::vector<Cand> cands;
    double max_w = 0;
    for (PortId out = 0; out < topo.port_count(peer.node); ++out) {
      const auto m_it = meter.find({peer.node, peer.port, out});
      if (m_it == meter.end() || m_it->second == 0) continue;
      const PortRef pj{peer.node, out};
      const auto pa = port_agg.find(pj);
      // Congestion magnitude of the downstream port: enqueue-time average
      // depth, or the standing occupancy at collection — a frozen deadlock
      // queue sees no enqueues, so only the snapshot reveals its backlog.
      double qd = 0;
      double paused_j = 0;
      if (pa != port_agg.end()) {
        qd = std::max(pa->second.qdepth_avg(),
                      static_cast<double>(pa->second.standing_pkts));
        paused_j = pa->second.paused_evidence();
      }
      // A downstream port contributes causality only if congested: queue
      // buildup or pause activity of its own.
      if (qd < cfg.min_qdepth_pkts && paused_j <= 0) continue;
      const double w = agg.paused_evidence() *
                       (static_cast<double>(m_it->second) / sum_meter) *
                       std::max(qd, 0.5);
      cands.push_back({pj, w, paused_j > 0});
      max_w = std::max(max_w, w);
    }
    const int from = g.port_node(pref);
    for (const Cand& c : cands) {
      // Edges into paused ports are never pruned: PFC causality continues
      // through them no matter how little traffic the meter saw.
      if (!c.paused && c.w < cfg.min_rel_edge_weight * max_w) continue;
      const int to = g.add_port(c.to);
      g.add_port_edge(from, to, c.w);
    }
  }

  // ---- Flow nodes, flow->port edges, port->flow contention edges ----
  // Replay populations are aggregated over every selected epoch before the
  // contribution is computed once per port: a burst whose tail spills into
  // an extra epoch must not collect a per-epoch "low participant" penalty.
  for (const auto& [sw, rep] : ep.reports) {
    std::map<PortId, std::map<int, ReplayFlow>> by_port;
    auto accumulate = [&](const FlowRecord& fr) {
      const int fn = g.add_flow(fr.flow);
      g.flow_info(fn).pkt_cnt += fr.pkt_cnt;
      g.flow_info(fn).epochs_seen += 1;
      if (fr.egress_port == net::kInvalidPort) return;
      if (fr.paused_cnt > 0) {
        const int pn = g.add_port({sw, fr.egress_port});
        g.add_flow_port_edge(fn, pn, fr.paused_cnt);
      }
      const std::uint32_t contention =
          fr.pkt_cnt > fr.paused_cnt ? fr.pkt_cnt - fr.paused_cnt : 0;
      if (contention > 0) {
        ReplayFlow& rf = by_port[fr.egress_port][fn];
        rf.flow_node = fn;
        rf.contention_pkts += contention;
        rf.qdepth_sum += static_cast<double>(fr.qdepth_pkts_sum);
      }
    };
    for (const EpochRecord& er : rep.epochs) {
      if (!epoch_selected(er)) continue;
      for (const FlowRecord& fr : er.flows) accumulate(fr);
    }
    // Hash-collision evictions were shipped to the controller with their
    // epoch tag; fold the ones from selected epochs back in.
    for (const FlowRecord& fr : rep.evicted) {
      if (use_all || active.count(fr.epoch_start) > 0) accumulate(fr);
    }
    for (auto& [port, flows] : by_port) {
      std::vector<ReplayFlow> population;
      population.reserve(flows.size());
      for (auto& [fn, rf] : flows) population.push_back(rf);
      auto contrib = replay_contribution(population);
      const int pn = g.add_port({sw, port});
      for (const auto& [fn, c] : contrib) {
        if (c != 0.0) g.add_port_flow_edge(pn, fn, c);
      }
    }
  }

  return g;
}

}  // namespace hawkeye::provenance
