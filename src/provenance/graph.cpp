#include "provenance/graph.hpp"

#include <cstdio>

namespace hawkeye::provenance {

int ProvenanceGraph::add_port(const net::PortRef& p, const PortInfo& info) {
  if (const auto it = port_idx_.find(p); it != port_idx_.end()) {
    return it->second;
  }
  const int idx = static_cast<int>(ports_.size());
  ports_.push_back(p);
  port_info_.push_back(info);
  port_idx_[p] = idx;
  pp_out_.emplace_back();
  pf_out_.emplace_back();
  return idx;
}

int ProvenanceGraph::add_flow(const net::FiveTuple& f) {
  if (const auto it = flow_idx_.find(f); it != flow_idx_.end()) {
    return it->second;
  }
  const int idx = static_cast<int>(flows_.size());
  flows_.push_back(f);
  flow_info_.emplace_back();
  flow_idx_[f] = idx;
  fp_out_.emplace_back();
  return idx;
}

int ProvenanceGraph::port_node(const net::PortRef& p) const {
  const auto it = port_idx_.find(p);
  return it == port_idx_.end() ? -1 : it->second;
}

int ProvenanceGraph::flow_node(const net::FiveTuple& f) const {
  const auto it = flow_idx_.find(f);
  return it == flow_idx_.end() ? -1 : it->second;
}

void ProvenanceGraph::add_port_edge(int from, int to, double w) {
  for (Edge& e : pp_out_[static_cast<size_t>(from)]) {
    if (e.to == to) {
      e.weight += w;
      return;
    }
  }
  pp_out_[static_cast<size_t>(from)].push_back({to, w});
}

void ProvenanceGraph::add_flow_port_edge(int flow, int port, double w) {
  for (Edge& e : fp_out_[static_cast<size_t>(flow)]) {
    if (e.to == port) {
      e.weight += w;
      return;
    }
  }
  fp_out_[static_cast<size_t>(flow)].push_back({port, w});
}

void ProvenanceGraph::add_port_flow_edge(int port, int flow, double w) {
  for (Edge& e : pf_out_[static_cast<size_t>(port)]) {
    if (e.to == flow) {
      e.weight += w;
      return;
    }
  }
  pf_out_[static_cast<size_t>(port)].push_back({flow, w});
}

bool ProvenanceGraph::has_port_level_edges() const {
  for (const auto& edges : pp_out_) {
    if (!edges.empty()) return true;
  }
  return false;
}

std::string ProvenanceGraph::to_string() const {
  std::string out;
  char buf[160];
  out += "provenance graph:\n";
  for (std::size_t i = 0; i < ports_.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "  port %-12s paused=%.0f qdepth=%.1f\n",
                  net::to_string(ports_[i]).c_str(), port_info_[i].paused_num,
                  port_info_[i].qdepth_avg);
    out += buf;
    for (const Edge& e : pp_out_[i]) {
      std::snprintf(buf, sizeof(buf), "    --PFC--> %-12s w=%.1f\n",
                    net::to_string(ports_[static_cast<size_t>(e.to)]).c_str(),
                    e.weight);
      out += buf;
    }
    for (const Edge& e : pf_out_[i]) {
      std::snprintf(buf, sizeof(buf), "    --cntn-> flow %-22s w=%+.2f%s\n",
                    flows_[static_cast<size_t>(e.to)].to_string().c_str(),
                    e.weight, e.weight > 0 ? "  [contributor]" : "");
      out += buf;
    }
  }
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    if (fp_out_[i].empty()) continue;
    std::snprintf(buf, sizeof(buf), "  flow %s\n",
                  flows_[i].to_string().c_str());
    out += buf;
    for (const Edge& e : fp_out_[i]) {
      std::snprintf(buf, sizeof(buf), "    --paused-at--> %-12s w=%.0f\n",
                    net::to_string(ports_[static_cast<size_t>(e.to)]).c_str(),
                    e.weight);
      out += buf;
    }
  }
  return out;
}

}  // namespace hawkeye::provenance
