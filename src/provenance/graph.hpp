#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/types.hpp"

namespace hawkeye::provenance {

/// Heterogeneous wait-for provenance graph (paper §3.5.1). Two node kinds:
/// ports (switch egress queues) and flows. Three edge kinds:
///  * port->port  : PFC causality — a paused port waits for downstream
///                  congested ports to drain (weight: Algorithm 1 line 8);
///  * flow->port  : the flow is PFC-paused at the port (weight: paused
///                  packet count);
///  * port->flow  : the port waits for contending flows (weight: the flow's
///                  net contention contribution; negative => victim).
class ProvenanceGraph {
 public:
  struct PortInfo {
    double paused_num = 0;   // PFC pause evidence (paused packets + status)
    double qdepth_avg = 0;   // average queue depth (packets) at enqueue
    std::uint64_t pkt_cnt = 0;
    bool paused_at_collection = false;  // PFC status register snapshot
  };
  struct FlowInfo {
    std::uint64_t pkt_cnt = 0;
    int epochs_seen = 0;
  };
  struct Edge {
    int to = -1;
    double weight = 0;
  };

  int add_port(const net::PortRef& p) { return add_port(p, PortInfo{}); }
  int add_port(const net::PortRef& p, const PortInfo& info);
  int add_flow(const net::FiveTuple& f);

  int port_node(const net::PortRef& p) const;
  int flow_node(const net::FiveTuple& f) const;

  void add_port_edge(int from, int to, double w);
  void add_flow_port_edge(int flow, int port, double w);
  void add_port_flow_edge(int port, int flow, double w);

  std::size_t port_count() const { return ports_.size(); }
  std::size_t flow_count() const { return flows_.size(); }
  const net::PortRef& port(int i) const { return ports_[static_cast<size_t>(i)]; }
  const net::FiveTuple& flow(int i) const { return flows_[static_cast<size_t>(i)]; }
  PortInfo& port_info(int i) { return port_info_[static_cast<size_t>(i)]; }
  const PortInfo& port_info(int i) const { return port_info_[static_cast<size_t>(i)]; }
  FlowInfo& flow_info(int i) { return flow_info_[static_cast<size_t>(i)]; }
  const FlowInfo& flow_info(int i) const { return flow_info_[static_cast<size_t>(i)]; }

  /// Port-level out-edges of port node i (PFC causality).
  const std::vector<Edge>& port_out(int i) const {
    return pp_out_[static_cast<size_t>(i)];
  }
  /// out-deg_P in the Table 2 signatures.
  int port_out_degree(int i) const {
    return static_cast<int>(pp_out_[static_cast<size_t>(i)].size());
  }
  /// Flow->port edges of flow node i.
  const std::vector<Edge>& flow_ports(int i) const {
    return fp_out_[static_cast<size_t>(i)];
  }
  /// Port->flow contention edges of port node i (weights signed).
  const std::vector<Edge>& port_flows(int i) const {
    return pf_out_[static_cast<size_t>(i)];
  }

  bool has_port_level_edges() const;

  /// Collection contract the graph was built from: the episode's expected
  /// victim-path switches and whether routing reconverged mid-episode. When
  /// the path churned, diagnosis-time routing may answer with a *different*
  /// (typically the restored) path than the one the evidence was gathered
  /// on — the contract is the churn-safe hop set to scan for victim pause
  /// evidence.
  void set_collection_contract(std::vector<net::NodeId> switches,
                               bool path_churned) {
    contract_switches_ = std::move(switches);
    path_churned_ = path_churned;
  }
  bool path_churned() const { return path_churned_; }
  const std::vector<net::NodeId>& contract_switches() const {
    return contract_switches_;
  }

  /// Human-readable dump used by the Fig 12 case-study bench.
  std::string to_string() const;

 private:
  std::vector<net::PortRef> ports_;
  std::vector<net::FiveTuple> flows_;
  std::vector<PortInfo> port_info_;
  std::vector<FlowInfo> flow_info_;
  std::unordered_map<net::PortRef, int> port_idx_;
  std::unordered_map<net::FiveTuple, int> flow_idx_;
  std::vector<std::vector<Edge>> pp_out_;
  std::vector<std::vector<Edge>> fp_out_;
  std::vector<std::vector<Edge>> pf_out_;
  std::vector<net::NodeId> contract_switches_;
  bool path_churned_ = false;
};

}  // namespace hawkeye::provenance
