#include "net/topology.hpp"

#include <cassert>
#include <stdexcept>

namespace hawkeye::net {

NodeId add_checked(std::vector<NodeKind>& kinds) {
  return static_cast<NodeId>(kinds.size());
}

NodeId Topology::add_node(NodeKind kind, std::string name) {
  const NodeId id = static_cast<NodeId>(kinds_.size());
  kinds_.push_back(kind);
  if (name.empty()) {
    name = (kind == NodeKind::kHost ? "H" : "SW") + std::to_string(id);
  }
  names_.push_back(std::move(name));
  ports_.emplace_back();
  return id;
}

std::size_t Topology::connect(NodeId a, NodeId b, double gbps,
                              sim::Time delay_ns) {
  if (a < 0 || b < 0 || static_cast<size_t>(a) >= kinds_.size() ||
      static_cast<size_t>(b) >= kinds_.size()) {
    throw std::out_of_range("Topology::connect: bad node id");
  }
  const PortId pa = static_cast<PortId>(ports_[static_cast<size_t>(a)].size());
  const PortId pb = static_cast<PortId>(ports_[static_cast<size_t>(b)].size());
  const std::int64_t link_id = static_cast<std::int64_t>(links_.size());
  links_.push_back(LinkSpec{{a, pa}, {b, pb}, gbps, delay_ns});
  ports_[static_cast<size_t>(a)].push_back({{b, pb}, link_id});
  ports_[static_cast<size_t>(b)].push_back({{a, pa}, link_id});
  return static_cast<std::size_t>(link_id);
}

PortRef Topology::peer(NodeId n, PortId port) const {
  if (n < 0 || static_cast<size_t>(n) >= ports_.size()) return {};
  const auto& pl = ports_[static_cast<size_t>(n)];
  if (port < 0 || static_cast<size_t>(port) >= pl.size()) return {};
  return pl[static_cast<size_t>(port)].peer;
}

std::int64_t Topology::link_of(NodeId n, PortId port) const {
  if (n < 0 || static_cast<size_t>(n) >= ports_.size()) return -1;
  const auto& pl = ports_[static_cast<size_t>(n)];
  if (port < 0 || static_cast<size_t>(port) >= pl.size()) return -1;
  return pl[static_cast<size_t>(port)].link_id;
}

PortId Topology::port_towards(NodeId n, NodeId peer_node) const {
  if (n < 0 || static_cast<size_t>(n) >= ports_.size()) return kInvalidPort;
  const auto& pl = ports_[static_cast<size_t>(n)];
  for (std::size_t i = 0; i < pl.size(); ++i) {
    if (pl[i].peer.node == peer_node) return static_cast<PortId>(i);
  }
  return kInvalidPort;
}

std::vector<NodeId> Topology::hosts() const {
  std::vector<NodeId> out;
  for (std::size_t i = 0; i < kinds_.size(); ++i) {
    if (kinds_[i] == NodeKind::kHost) out.push_back(static_cast<NodeId>(i));
  }
  return out;
}

std::vector<NodeId> Topology::switches() const {
  std::vector<NodeId> out;
  for (std::size_t i = 0; i < kinds_.size(); ++i) {
    if (kinds_[i] == NodeKind::kSwitch) out.push_back(static_cast<NodeId>(i));
  }
  return out;
}

FatTree build_fat_tree(int k, double gbps, sim::Time link_delay) {
  if (k < 2 || k % 2 != 0) throw std::invalid_argument("fat-tree k must be even");
  FatTree ft;
  ft.k = k;
  const int half = k / 2;
  const int pods = k;

  // Hosts first so host ids are dense starting at 0.
  for (int pod = 0; pod < pods; ++pod) {
    for (int e = 0; e < half; ++e) {
      for (int h = 0; h < half; ++h) {
        ft.hosts.push_back(ft.topo.add_node(NodeKind::kHost));
      }
    }
  }
  for (int pod = 0; pod < pods; ++pod) {
    for (int e = 0; e < half; ++e) {
      ft.edges.push_back(ft.topo.add_node(
          NodeKind::kSwitch, "Edge" + std::to_string(pod) + "_" + std::to_string(e)));
    }
  }
  for (int pod = 0; pod < pods; ++pod) {
    for (int a = 0; a < half; ++a) {
      ft.aggs.push_back(ft.topo.add_node(
          NodeKind::kSwitch, "Agg" + std::to_string(pod) + "_" + std::to_string(a)));
    }
  }
  for (int c = 0; c < half * half; ++c) {
    ft.cores.push_back(ft.topo.add_node(NodeKind::kSwitch, "Core" + std::to_string(c)));
  }

  // Host <-> edge. Host h of edge (pod, e) is hosts[pod*half*half + e*half + h].
  for (int pod = 0; pod < pods; ++pod) {
    for (int e = 0; e < half; ++e) {
      const NodeId edge = ft.edges[static_cast<size_t>(pod * half + e)];
      for (int h = 0; h < half; ++h) {
        const NodeId host =
            ft.hosts[static_cast<size_t>(pod * half * half + e * half + h)];
        ft.topo.connect(host, edge, gbps, link_delay);
      }
    }
  }
  // Edge <-> agg (full bipartite per pod).
  for (int pod = 0; pod < pods; ++pod) {
    for (int e = 0; e < half; ++e) {
      for (int a = 0; a < half; ++a) {
        ft.topo.connect(ft.edges[static_cast<size_t>(pod * half + e)],
                        ft.aggs[static_cast<size_t>(pod * half + a)], gbps,
                        link_delay);
      }
    }
  }
  // Agg <-> core: agg a in each pod connects to cores [a*half, (a+1)*half).
  for (int pod = 0; pod < pods; ++pod) {
    for (int a = 0; a < half; ++a) {
      for (int c = 0; c < half; ++c) {
        ft.topo.connect(ft.aggs[static_cast<size_t>(pod * half + a)],
                        ft.cores[static_cast<size_t>(a * half + c)], gbps,
                        link_delay);
      }
    }
  }
  return ft;
}

LeafSpine build_leaf_spine(int leaves, int spines, int hosts_per_leaf,
                           double gbps, sim::Time link_delay) {
  if (leaves < 1 || spines < 1 || hosts_per_leaf < 1) {
    throw std::invalid_argument("leaf-spine dimensions must be positive");
  }
  LeafSpine ls;
  for (int l = 0; l < leaves; ++l) {
    for (int h = 0; h < hosts_per_leaf; ++h) {
      ls.hosts.push_back(ls.topo.add_node(NodeKind::kHost));
    }
  }
  for (int l = 0; l < leaves; ++l) {
    ls.leaves.push_back(
        ls.topo.add_node(NodeKind::kSwitch, "Leaf" + std::to_string(l)));
  }
  for (int s = 0; s < spines; ++s) {
    ls.spines.push_back(
        ls.topo.add_node(NodeKind::kSwitch, "Spine" + std::to_string(s)));
  }
  for (int l = 0; l < leaves; ++l) {
    for (int h = 0; h < hosts_per_leaf; ++h) {
      ls.topo.connect(ls.hosts[static_cast<size_t>(l * hosts_per_leaf + h)],
                      ls.leaves[static_cast<size_t>(l)], gbps, link_delay);
    }
    for (int s = 0; s < spines; ++s) {
      ls.topo.connect(ls.leaves[static_cast<size_t>(l)],
                      ls.spines[static_cast<size_t>(s)], gbps, link_delay);
    }
  }
  return ls;
}

}  // namespace hawkeye::net
