#include "net/routing.hpp"

#include <deque>
#include <limits>

namespace hawkeye::net {

Routing::Routing(const Topology& topo) : topo_(topo) { rebuild(); }

void Routing::rebuild() {
  const std::size_t n = topo_.node_count();
  table_.assign(n, {});
  for (auto& row : table_) row.assign(n, {});

  // BFS from every destination host; equal-cost next hops are the
  // neighbours one step closer to the destination.
  for (const NodeId dst : topo_.hosts()) {
    std::vector<int> dist(n, std::numeric_limits<int>::max());
    std::deque<NodeId> q;
    dist[static_cast<size_t>(dst)] = 0;
    q.push_back(dst);
    while (!q.empty()) {
      const NodeId u = q.front();
      q.pop_front();
      for (PortId p = 0; p < topo_.port_count(u); ++p) {
        const PortRef pr = topo_.peer(u, p);
        if (!pr.valid()) continue;
        // Hosts other than the destination never forward transit traffic.
        if (topo_.is_host(u) && u != dst) continue;
        if (dist[static_cast<size_t>(pr.node)] >
            dist[static_cast<size_t>(u)] + 1) {
          dist[static_cast<size_t>(pr.node)] = dist[static_cast<size_t>(u)] + 1;
          q.push_back(pr.node);
        }
      }
    }
    for (const NodeId sw : topo_.switches()) {
      auto& cands = table_[static_cast<size_t>(sw)][static_cast<size_t>(dst)];
      if (dist[static_cast<size_t>(sw)] == std::numeric_limits<int>::max())
        continue;
      for (PortId p = 0; p < topo_.port_count(sw); ++p) {
        const PortRef pr = topo_.peer(sw, p);
        if (!pr.valid()) continue;
        if (topo_.is_host(pr.node) && pr.node != dst) continue;
        if (dist[static_cast<size_t>(pr.node)] ==
            dist[static_cast<size_t>(sw)] - 1) {
          cands.push_back(p);
        }
      }
    }
  }
}

void Routing::add_override(NodeId sw, NodeId dst, PortId port) {
  overrides_[okey(sw, dst)] = port;
}

void Routing::remove_override(NodeId sw, NodeId dst) {
  overrides_.erase(okey(sw, dst));
}

void Routing::clear_overrides() { overrides_.clear(); }

std::vector<Routing::OverrideInfo> Routing::overrides() const {
  std::vector<OverrideInfo> out;
  out.reserve(overrides_.size());
  for (const auto& [key, port] : overrides_) {
    out.push_back({static_cast<NodeId>(key >> 32),
                   static_cast<NodeId>(key & 0xffffffff), port});
  }
  return out;
}

PortId Routing::egress_port(NodeId sw, const FiveTuple& flow) const {
  return egress_port(sw, Topology::node_of_ip(flow.dst_ip), flow.hash());
}

PortId Routing::egress_port(NodeId sw, NodeId dst,
                            std::uint64_t flow_hash) const {
  if (const auto it = overrides_.find(okey(sw, dst)); it != overrides_.end()) {
    return it->second;
  }
  const auto& cands = candidates(sw, dst);
  if (cands.empty()) return kInvalidPort;
  return cands[flow_hash % cands.size()];
}

const std::vector<PortId>& Routing::candidates(NodeId sw, NodeId dst) const {
  if (sw < 0 || dst < 0 || static_cast<size_t>(sw) >= table_.size() ||
      static_cast<size_t>(dst) >= table_.size()) {
    return empty_;
  }
  return table_[static_cast<size_t>(sw)][static_cast<size_t>(dst)];
}

std::vector<PortRef> Routing::path_of(const FiveTuple& flow,
                                      int max_hops) const {
  std::vector<PortRef> path;
  const NodeId src = Topology::node_of_ip(flow.src_ip);
  const NodeId dst = Topology::node_of_ip(flow.dst_ip);
  if (src < 0 || dst < 0) return path;
  // Host NIC egress (hosts have a single uplink port 0).
  path.push_back({src, 0});
  PortRef cur = topo_.peer(src, 0);
  int hops = 0;
  while (cur.valid() && cur.node != dst && ++hops <= max_hops) {
    const PortId out = egress_port(cur.node, dst, flow.hash());
    if (out == kInvalidPort) break;
    path.push_back({cur.node, out});
    cur = topo_.peer(cur.node, out);
  }
  return path;
}

std::vector<NodeId> Routing::switches_on_path(const FiveTuple& flow) const {
  std::vector<NodeId> out;
  for (const auto& hop : path_of(flow)) {
    if (topo_.is_switch(hop.node)) out.push_back(hop.node);
  }
  return out;
}

}  // namespace hawkeye::net
