#include "net/routing.hpp"

#include <algorithm>
#include <deque>
#include <limits>

namespace hawkeye::net {

Routing::Routing(const Topology& topo) : topo_(topo) { rebuild(); }

void Routing::rebuild() {
  const std::size_t n = topo_.node_count();
  base_table_.assign(n, {});
  for (auto& row : base_table_) row.assign(n, {});

  // BFS from every destination host; equal-cost next hops are the
  // neighbours one step closer to the destination.
  for (const NodeId dst : topo_.hosts()) {
    std::vector<int> dist(n, std::numeric_limits<int>::max());
    std::deque<NodeId> q;
    dist[static_cast<size_t>(dst)] = 0;
    q.push_back(dst);
    while (!q.empty()) {
      const NodeId u = q.front();
      q.pop_front();
      for (PortId p = 0; p < topo_.port_count(u); ++p) {
        const PortRef pr = topo_.peer(u, p);
        if (!pr.valid()) continue;
        // Hosts other than the destination never forward transit traffic.
        if (topo_.is_host(u) && u != dst) continue;
        if (dist[static_cast<size_t>(pr.node)] >
            dist[static_cast<size_t>(u)] + 1) {
          dist[static_cast<size_t>(pr.node)] = dist[static_cast<size_t>(u)] + 1;
          q.push_back(pr.node);
        }
      }
    }
    for (const NodeId sw : topo_.switches()) {
      auto& cands =
          base_table_[static_cast<size_t>(sw)][static_cast<size_t>(dst)];
      if (dist[static_cast<size_t>(sw)] == std::numeric_limits<int>::max())
        continue;
      for (PortId p = 0; p < topo_.port_count(sw); ++p) {
        const PortRef pr = topo_.peer(sw, p);
        if (!pr.valid()) continue;
        if (topo_.is_host(pr.node) && pr.node != dst) continue;
        if (dist[static_cast<size_t>(pr.node)] ==
            dist[static_cast<size_t>(sw)] - 1) {
          cands.push_back(p);
        }
      }
    }
  }
  // The live table starts as a copy of the pristine one; any ports disabled
  // before the rebuild stay disabled afterwards (and count as a mutation,
  // since paths may differ from the pre-rebuild table).
  table_ = base_table_;
  if (!disabled_.empty()) {
    for (const std::int64_t key : disabled_) {
      apply_disabled(static_cast<NodeId>(key >> 32),
                     static_cast<PortId>(key & 0xffffffff));
    }
    ++epoch_;
  }
}

void Routing::apply_disabled(NodeId sw, PortId port) {
  for (auto& cands : table_[static_cast<size_t>(sw)]) {
    const auto it = std::find(cands.begin(), cands.end(), port);
    // A port is only withdrawn where an ECMP alternative exists. With no
    // alternative (e.g. a core's single downlink into a pod) the route is
    // kept: traffic keeps forwarding into the dead link and is dropped
    // there as an injected kLinkDown loss — never re-counted as a kData
    // routing drop, which the losslessness accounting treats as a model
    // bug.
    if (it != cands.end() && cands.size() > 1) cands.erase(it);
  }
}

bool Routing::disable_port(NodeId sw, PortId port) {
  if (sw < 0 || static_cast<size_t>(sw) >= table_.size()) return false;
  if (!disabled_.insert(pkey(sw, port)).second) return false;
  apply_disabled(sw, port);
  ++epoch_;
  return true;
}

bool Routing::enable_port(NodeId sw, PortId port) {
  if (sw < 0 || static_cast<size_t>(sw) >= table_.size()) return false;
  if (disabled_.erase(pkey(sw, port)) == 0) return false;
  const auto& base_row = base_table_[static_cast<size_t>(sw)];
  auto& live_row = table_[static_cast<size_t>(sw)];
  for (std::size_t dst = 0; dst < base_row.size(); ++dst) {
    const auto& base = base_row[dst];
    if (std::find(base.begin(), base.end(), port) == base.end()) continue;
    auto& live = live_row[dst];
    // Candidates were built in ascending port order; re-insert in place so
    // the hash -> port mapping returns to its pre-flap value exactly.
    const auto pos = std::lower_bound(live.begin(), live.end(), port);
    if (pos == live.end() || *pos != port) live.insert(pos, port);
  }
  ++epoch_;
  return true;
}

void Routing::add_override(NodeId sw, NodeId dst, PortId port) {
  overrides_[okey(sw, dst)] = port;
}

void Routing::remove_override(NodeId sw, NodeId dst) {
  overrides_.erase(okey(sw, dst));
}

void Routing::clear_overrides() { overrides_.clear(); }

std::vector<Routing::OverrideInfo> Routing::overrides() const {
  std::vector<OverrideInfo> out;
  out.reserve(overrides_.size());
  for (const auto& [key, port] : overrides_) {
    out.push_back({static_cast<NodeId>(key >> 32),
                   static_cast<NodeId>(key & 0xffffffff), port});
  }
  return out;
}

PortId Routing::egress_port(NodeId sw, const FiveTuple& flow) const {
  return egress_port(sw, Topology::node_of_ip(flow.dst_ip), flow.hash());
}

PortId Routing::egress_port(NodeId sw, NodeId dst,
                            std::uint64_t flow_hash) const {
  if (const auto it = overrides_.find(okey(sw, dst)); it != overrides_.end()) {
    return it->second;
  }
  const auto& cands = candidates(sw, dst);
  if (cands.empty()) return kInvalidPort;
  return cands[flow_hash % cands.size()];
}

const std::vector<PortId>& Routing::candidates(NodeId sw, NodeId dst) const {
  if (sw < 0 || dst < 0 || static_cast<size_t>(sw) >= table_.size() ||
      static_cast<size_t>(dst) >= table_.size()) {
    return empty_;
  }
  return table_[static_cast<size_t>(sw)][static_cast<size_t>(dst)];
}

std::vector<PortRef> Routing::path_of(const FiveTuple& flow,
                                      int max_hops) const {
  std::vector<PortRef> path;
  const NodeId src = Topology::node_of_ip(flow.src_ip);
  const NodeId dst = Topology::node_of_ip(flow.dst_ip);
  if (src < 0 || dst < 0) return path;
  // Host NIC egress (hosts have a single uplink port 0).
  path.push_back({src, 0});
  PortRef cur = topo_.peer(src, 0);
  int hops = 0;
  while (cur.valid() && cur.node != dst && ++hops <= max_hops) {
    const PortId out = egress_port(cur.node, dst, flow.hash());
    if (out == kInvalidPort) break;
    path.push_back({cur.node, out});
    cur = topo_.peer(cur.node, out);
  }
  return path;
}

std::vector<NodeId> Routing::switches_on_path(const FiveTuple& flow) const {
  std::vector<NodeId> out;
  for (const auto& hop : path_of(flow)) {
    if (topo_.is_switch(hop.node)) out.push_back(hop.node);
  }
  return out;
}

}  // namespace hawkeye::net
