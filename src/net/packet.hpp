#pragma once

#include <cstdint>
#include <string>

#include "net/types.hpp"
#include "sim/time.hpp"

namespace hawkeye::net {

/// Wire priorities. RoCEv2 data rides lossless classes subject to
/// per-priority PFC (802.1Qbb supports 8; this model exposes classes
/// 3..3+kMaxDataClasses-1); acknowledgements, CNPs and Hawkeye polling
/// packets share a control class that PFC never pauses (the paper assigns
/// polling packets "the same priority as control packets (e.g., CNP)").
enum class TrafficClass : std::uint8_t {
  kControl = 0,
  kData = 3,  // first lossless data class
};

inline constexpr int kMaxDataClasses = 4;

/// Index of a data class within the per-port queue array; -1 for control.
constexpr int data_class_index(TrafficClass tc) {
  return static_cast<int>(tc) - static_cast<int>(TrafficClass::kData);
}
constexpr bool is_data_class(TrafficClass tc) {
  const int i = data_class_index(tc);
  return i >= 0 && i < kMaxDataClasses;
}
constexpr TrafficClass data_class(int index) {
  return static_cast<TrafficClass>(static_cast<int>(TrafficClass::kData) +
                                   index);
}

enum class PacketKind : std::uint8_t {
  kData,     // RoCEv2 payload segment
  kAck,      // per-packet acknowledgement carrying the echoed tx timestamp
  kCnp,      // DCQCN congestion notification
  kPfc,      // 802.1Qbb PAUSE/RESUME frame (link-local, never forwarded)
  kNack,     // out-of-order notification: go-back-N from the carried seq
  kPolling,  // Hawkeye diagnosis polling packet (Figure 5 format)
  kReport,   // controller -> analyzer telemetry report (accounting only)
};

/// Hawkeye polling flag values (paper Table 1).
enum class PollingFlag : std::uint8_t {
  kUseless = 0b00,      // useless tracing — switches drop the packet
  kVictimPath = 0b01,   // (default) trace along the victim flow path
  kPfcCausality = 0b10, // trace along PFC causality only
  kBoth = 0b11,         // trace along both
};

inline bool traces_victim_path(PollingFlag f) {
  return (static_cast<std::uint8_t>(f) & 0b01) != 0;
}
inline bool traces_pfc_causality(PollingFlag f) {
  return (static_cast<std::uint8_t>(f) & 0b10) != 0;
}

/// One simulated packet. A single struct covers every kind; the unused
/// per-kind fields stay at their defaults. Packets are value types — each
/// hop holds its own copy, mirroring how real switches buffer frames.
struct Packet {
  PacketKind kind = PacketKind::kData;
  TrafficClass tclass = TrafficClass::kData;
  std::int32_t size_bytes = 0;

  // --- data / ack / cnp ---
  FiveTuple flow;                 // the transport flow this packet belongs to
  std::uint64_t flow_id = 0;      // simulator-side flow handle
  std::uint32_t seq = 0;          // segment index within the flow
  bool last_of_flow = false;
  bool ecn_ce = false;            // CE mark set by congested egress queues
  sim::Time tx_time = 0;          // sender timestamp, echoed by the ACK

  // --- pfc ---
  std::uint8_t pfc_priority = 0;  // paused traffic class
  std::uint32_t pause_quanta = 0; // 0 => RESUME; else pause duration quanta

  // --- polling (Figure 5: flag + victim 5-tuple) ---
  PollingFlag poll_flag = PollingFlag::kUseless;
  FiveTuple victim;               // the complained-about flow
  std::uint64_t probe_id = 0;     // diagnosis episode identifier
  std::int32_t poll_hops = 0;     // TTL-style safety bound

  // --- report (controller -> analyzer, for overhead accounting) ---
  std::int32_t report_switch = kInvalidNode;

  std::string to_string() const;
};

/// Canonical on-wire sizes (bytes).
inline constexpr std::int32_t kMtuBytes = 1000;        // data segment payload
inline constexpr std::int32_t kHeaderBytes = 48;       // Eth+IP+UDP+BTH
inline constexpr std::int32_t kAckBytes = 64;
inline constexpr std::int32_t kCnpBytes = 64;
inline constexpr std::int32_t kNackBytes = 64;
inline constexpr std::int32_t kPfcFrameBytes = 64;
inline constexpr std::int32_t kPollingBytes = 64;      // flag + 5-tuple + pad
inline constexpr std::int32_t kReportMtuBytes = 1500;  // report batching MTU

/// 802.1Qbb: one pause quantum = 512 bit times. At 100 Gbps that is 5.12 ns.
inline constexpr double kPauseQuantumBits = 512.0;

Packet make_data_packet(const FiveTuple& flow, std::uint64_t flow_id,
                        std::uint32_t seq, std::int32_t payload_bytes,
                        bool last, sim::Time now);
Packet make_ack(const Packet& data, sim::Time now);
Packet make_cnp(const Packet& data);
/// NACK asking the sender to resume from `expected_seq` (go-back-N).
Packet make_nack(const Packet& data, std::uint32_t expected_seq);
Packet make_pfc(std::uint8_t priority, std::uint32_t quanta);
Packet make_polling(const FiveTuple& victim, std::uint64_t probe_id,
                    PollingFlag flag);

}  // namespace hawkeye::net
