#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace hawkeye::net {

/// Node identifier: hosts and switches share one id space.
using NodeId = std::int32_t;
/// Port index local to a device.
using PortId = std::int32_t;

inline constexpr NodeId kInvalidNode = -1;
inline constexpr PortId kInvalidPort = -1;

/// A (switch, port) pair — the unit the provenance graph reasons about.
struct PortRef {
  NodeId node = kInvalidNode;
  PortId port = kInvalidPort;

  bool valid() const { return node >= 0 && port >= 0; }
  friend bool operator==(const PortRef&, const PortRef&) = default;
  friend auto operator<=>(const PortRef&, const PortRef&) = default;
};

/// RoCEv2 flow key. Addresses are synthetic node-scoped integers; the
/// telemetry layer hashes and XOR-matches the tuple exactly as the paper's
/// P4 flow table does.
struct FiveTuple {
  std::uint32_t src_ip = 0;
  std::uint32_t dst_ip = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t protocol = 17;  // RoCEv2 rides UDP (dst port 4791)

  friend bool operator==(const FiveTuple&, const FiveTuple&) = default;
  friend auto operator<=>(const FiveTuple&, const FiveTuple&) = default;

  bool empty() const { return src_ip == 0 && dst_ip == 0; }

  /// FNV-1a over the tuple bytes — the hash the switch flow tables use for
  /// slot indexing and the ECMP path selector reuses for determinism.
  ///
  /// Audited (PR 1): this is a proper byte-mixing hash, not a naive
  /// XOR/sum, so telemetry::TelemetryEngine's `hash() % flow_slots`
  /// bucketing sees well-spread low bits — tests/net_test.cpp
  /// (FiveTupleTest.HashSpreadsAcrossFlowTableSlots) keeps that true.
  /// Do NOT change the mixing: ECMP uses this value, so any change
  /// re-routes every flow and breaks bit-for-bit reproducibility of the
  /// paper figures against recorded runs.
  std::uint64_t hash() const {
    std::uint64_t h = 1469598103934665603ULL;
    auto mix = [&h](std::uint64_t v, int bytes) {
      for (int i = 0; i < bytes; ++i) {
        h ^= (v >> (8 * i)) & 0xff;
        h *= 1099511628211ULL;
      }
    };
    mix(src_ip, 4);
    mix(dst_ip, 4);
    mix(src_port, 2);
    mix(dst_port, 2);
    mix(protocol, 1);
    return h;
  }

  std::string to_string() const;
};

std::string to_string(const PortRef& p);

}  // namespace hawkeye::net

template <>
struct std::hash<hawkeye::net::FiveTuple> {
  std::size_t operator()(const hawkeye::net::FiveTuple& t) const noexcept {
    return static_cast<std::size_t>(t.hash());
  }
};

template <>
struct std::hash<hawkeye::net::PortRef> {
  std::size_t operator()(const hawkeye::net::PortRef& p) const noexcept {
    return std::hash<std::int64_t>()((static_cast<std::int64_t>(p.node) << 16) ^ p.port);
  }
};
