#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/types.hpp"
#include "sim/time.hpp"

namespace hawkeye::net {

enum class NodeKind : std::uint8_t { kHost, kSwitch };

/// One duplex link between two (node, port) endpoints.
struct LinkSpec {
  PortRef a;
  PortRef b;
  double gbps = 100.0;
  sim::Time delay_ns = 2'000;  // paper setup: 2 us per link
};

/// Static network graph: node kinds, links, and port-level adjacency.
/// The simulator wires `Device` objects onto this graph; routing, the
/// Hawkeye analyzer (Algorithm 1/2 take the topology N as input) and the
/// evaluation ground truth all read it.
class Topology {
 public:
  NodeId add_node(NodeKind kind, std::string name = {});

  /// Connects the next free port on `a` to the next free port on `b`.
  /// Returns the link id.
  std::size_t connect(NodeId a, NodeId b, double gbps = 100.0,
                      sim::Time delay_ns = 2'000);

  std::size_t node_count() const { return kinds_.size(); }
  NodeKind kind(NodeId n) const { return kinds_[static_cast<size_t>(n)]; }
  bool is_host(NodeId n) const { return kind(n) == NodeKind::kHost; }
  bool is_switch(NodeId n) const { return kind(n) == NodeKind::kSwitch; }
  const std::string& name(NodeId n) const { return names_[static_cast<size_t>(n)]; }

  std::int32_t port_count(NodeId n) const {
    return static_cast<std::int32_t>(ports_[static_cast<size_t>(n)].size());
  }

  /// Peer endpoint of (n, port); invalid PortRef if the port is unwired.
  PortRef peer(NodeId n, PortId port) const;
  PortRef peer(const PortRef& p) const { return peer(p.node, p.port); }

  /// Link id carrying (n, port); -1 if unwired.
  std::int64_t link_of(NodeId n, PortId port) const;
  const LinkSpec& link(std::size_t id) const { return links_[id]; }
  std::size_t link_count() const { return links_.size(); }

  /// The port on `n` that faces `peer_node`; kInvalidPort if not adjacent.
  PortId port_towards(NodeId n, NodeId peer_node) const;

  std::vector<NodeId> hosts() const;
  std::vector<NodeId> switches() const;

  /// Synthetic IPv4-style address of a host (node id + 1, so 0 stays "no ip").
  static std::uint32_t ip_of(NodeId host) { return static_cast<std::uint32_t>(host) + 1; }
  static NodeId node_of_ip(std::uint32_t ip) { return static_cast<NodeId>(ip) - 1; }

 private:
  struct PortWire {
    PortRef peer;
    std::int64_t link_id = -1;
  };

  std::vector<NodeKind> kinds_;
  std::vector<std::string> names_;
  std::vector<std::vector<PortWire>> ports_;
  std::vector<LinkSpec> links_;
};

/// Fat-tree (k pods) per Al-Fares/Clos; k=4 gives the paper's 20-switch,
/// 16-host simulation fabric. Hosts are added first (ids 0..), then edge,
/// aggregation and core switches.
struct FatTree {
  int k = 0;
  Topology topo;
  std::vector<NodeId> hosts;
  std::vector<NodeId> edges;
  std::vector<NodeId> aggs;
  std::vector<NodeId> cores;
};

FatTree build_fat_tree(int k, double gbps = 100.0, sim::Time link_delay = 2'000);

/// Two-tier leaf-spine fabric: every leaf connects to every spine.
struct LeafSpine {
  Topology topo;
  std::vector<NodeId> hosts;
  std::vector<NodeId> leaves;
  std::vector<NodeId> spines;
};

LeafSpine build_leaf_spine(int leaves, int spines, int hosts_per_leaf,
                           double gbps = 100.0, sim::Time link_delay = 2'000);

}  // namespace hawkeye::net
