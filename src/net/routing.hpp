#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/topology.hpp"
#include "net/types.hpp"

namespace hawkeye::net {

/// ECMP routing tables computed by per-destination BFS over the topology.
/// Each switch maps a destination host to the set of equal-cost egress
/// ports; a flow picks one deterministically by tuple hash. Route
/// *overrides* model the routing misconfigurations the paper uses to craft
/// cyclic buffer dependencies (§4.1: "simulate routing misconfigurations to
/// trigger the initiator-in/out-of-loop deadlocks").
class Routing {
 public:
  explicit Routing(const Topology& topo);

  /// Recompute the ECMP tables from scratch (overrides are preserved).
  void rebuild();

  /// Force `sw` to send traffic destined to host `dst` out of `port`.
  void add_override(NodeId sw, NodeId dst, PortId port);
  void remove_override(NodeId sw, NodeId dst);
  void clear_overrides();

  struct OverrideInfo {
    NodeId sw;
    NodeId dst;
    PortId port;
  };
  /// Snapshot of the installed overrides (for configuration audit).
  std::vector<OverrideInfo> overrides() const;

  /// Egress port on `sw` for `flow`; kInvalidPort if unroutable.
  PortId egress_port(NodeId sw, const FiveTuple& flow) const;

  /// Egress port toward destination host `dst` for a flow with this hash.
  PortId egress_port(NodeId sw, NodeId dst, std::uint64_t flow_hash) const;

  /// All equal-cost candidate ports (before override/hash selection).
  const std::vector<PortId>& candidates(NodeId sw, NodeId dst) const;

  /// Full forwarding path of a flow from src host to dst host, as the list
  /// of egress PortRefs taken (first entry is the host NIC port). Follows
  /// overrides; stops (truncated) if a loop longer than `max_hops` arises.
  std::vector<PortRef> path_of(const FiveTuple& flow, int max_hops = 64) const;

  /// Switches a flow traverses, in order.
  std::vector<NodeId> switches_on_path(const FiveTuple& flow) const;

  const Topology& topo() const { return topo_; }

 private:
  const Topology& topo_;
  // table_[sw][dst] -> candidate ports. Dense vectors for speed.
  std::vector<std::vector<std::vector<PortId>>> table_;
  std::unordered_map<std::int64_t, PortId> overrides_;  // key: sw<<32 | dst
  std::vector<PortId> empty_;

  static std::int64_t okey(NodeId sw, NodeId dst) {
    return (static_cast<std::int64_t>(sw) << 32) | static_cast<std::uint32_t>(dst);
  }
};

}  // namespace hawkeye::net
