#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/topology.hpp"
#include "net/types.hpp"

namespace hawkeye::net {

/// ECMP routing tables computed by per-destination BFS over the topology.
/// Each switch maps a destination host to the set of equal-cost egress
/// ports; a flow picks one deterministically by tuple hash. Route
/// *overrides* model the routing misconfigurations the paper uses to craft
/// cyclic buffer dependencies (§4.1: "simulate routing misconfigurations to
/// trigger the initiator-in/out-of-loop deadlocks").
///
/// Reconvergence model: a port can be taken out of (and put back into) the
/// ECMP candidate sets of its switch without a global rebuild —
/// disable_port / enable_port are the hooks the fault layer drives after an
/// injected link flap's hold-down timer expires. Every candidate-set
/// mutation bumps `epoch()`, so path-sensitive caches (detection-agent
/// baselines, episode expected-hop sets) can detect that `path_of` answers
/// from different moments are not comparable. Overrides are deliberately
/// NOT affected by disabled ports: they model pinned static routes, which
/// real fabrics keep forwarding into a dead port (that black hole is a
/// diagnosable anomaly, not a model bug).
class Routing {
 public:
  explicit Routing(const Topology& topo);

  /// Recompute the ECMP tables from scratch. Overrides are preserved, and
  /// so is the disabled-port set (a rebuild re-applies it).
  void rebuild();

  /// Force `sw` to send traffic destined to host `dst` out of `port`.
  void add_override(NodeId sw, NodeId dst, PortId port);
  void remove_override(NodeId sw, NodeId dst);
  void clear_overrides();

  struct OverrideInfo {
    NodeId sw;
    NodeId dst;
    PortId port;
  };
  /// Snapshot of the installed overrides (for configuration audit).
  std::vector<OverrideInfo> overrides() const;

  /// Remove `port` from every ECMP candidate set on `sw` (link declared
  /// dead after hold-down). Candidate sets where the port is the ONLY
  /// member are left intact — with no alternative the switch keeps its
  /// (black-holed) route, so injected-outage losses stay attributed to the
  /// dead link instead of surfacing as routing drops. Returns true if the
  /// port was live before; a repeat call is a no-op and does not bump the
  /// epoch.
  bool disable_port(NodeId sw, PortId port);

  /// Restore `port` into every candidate set it originally belonged to
  /// (link back up after hold-down). Candidate order is restored exactly —
  /// ports re-enter in ascending-port position — so a disable/enable cycle
  /// leaves the table byte-identical to the pristine one.
  bool enable_port(NodeId sw, PortId port);

  bool port_disabled(NodeId sw, PortId port) const {
    return disabled_.count(pkey(sw, port)) > 0;
  }

  /// Monotone counter of candidate-set mutations (disable/enable/rebuild
  /// while ports are disabled). Two `path_of` answers are comparable only
  /// when taken at the same epoch. 0 = pristine table, never mutated.
  std::uint64_t epoch() const { return epoch_; }

  /// Egress port on `sw` for `flow`; kInvalidPort if unroutable.
  PortId egress_port(NodeId sw, const FiveTuple& flow) const;

  /// Egress port toward destination host `dst` for a flow with this hash.
  PortId egress_port(NodeId sw, NodeId dst, std::uint64_t flow_hash) const;

  /// All equal-cost candidate ports (before override/hash selection).
  const std::vector<PortId>& candidates(NodeId sw, NodeId dst) const;

  /// Full forwarding path of a flow from src host to dst host, as the list
  /// of egress PortRefs taken (first entry is the host NIC port). Follows
  /// overrides; stops (truncated) if a loop longer than `max_hops` arises.
  std::vector<PortRef> path_of(const FiveTuple& flow, int max_hops = 64) const;

  /// Switches a flow traverses, in order.
  std::vector<NodeId> switches_on_path(const FiveTuple& flow) const;

  const Topology& topo() const { return topo_; }

 private:
  const Topology& topo_;
  // table_[sw][dst] -> live candidate ports (disabled ports removed).
  std::vector<std::vector<std::vector<PortId>>> table_;
  // Pristine candidates as computed by the BFS; enable_port restores from
  // here so flap-heal cycles cannot drift the table.
  std::vector<std::vector<std::vector<PortId>>> base_table_;
  std::unordered_map<std::int64_t, PortId> overrides_;  // key: sw<<32 | dst
  std::unordered_set<std::int64_t> disabled_;           // key: sw<<32 | port
  std::uint64_t epoch_ = 0;
  std::vector<PortId> empty_;

  void apply_disabled(NodeId sw, PortId port);

  static std::int64_t okey(NodeId sw, NodeId dst) {
    return (static_cast<std::int64_t>(sw) << 32) | static_cast<std::uint32_t>(dst);
  }
  static std::int64_t pkey(NodeId sw, PortId port) {
    return (static_cast<std::int64_t>(sw) << 32) | static_cast<std::uint32_t>(port);
  }
};

}  // namespace hawkeye::net
