#include "net/packet.hpp"

#include <cstdio>

namespace hawkeye::net {

Packet make_data_packet(const FiveTuple& flow, std::uint64_t flow_id,
                        std::uint32_t seq, std::int32_t payload_bytes,
                        bool last, sim::Time now) {
  Packet p;
  p.kind = PacketKind::kData;
  p.tclass = TrafficClass::kData;
  p.size_bytes = payload_bytes + kHeaderBytes;
  p.flow = flow;
  p.flow_id = flow_id;
  p.seq = seq;
  p.last_of_flow = last;
  p.tx_time = now;
  return p;
}

Packet make_ack(const Packet& data, sim::Time now) {
  (void)now;
  Packet p;
  p.kind = PacketKind::kAck;
  p.tclass = TrafficClass::kControl;
  p.size_bytes = kAckBytes;
  // ACK travels the reverse tuple.
  p.flow.src_ip = data.flow.dst_ip;
  p.flow.dst_ip = data.flow.src_ip;
  p.flow.src_port = data.flow.dst_port;
  p.flow.dst_port = data.flow.src_port;
  p.flow.protocol = data.flow.protocol;
  p.flow_id = data.flow_id;
  p.seq = data.seq;
  p.last_of_flow = data.last_of_flow;
  p.tx_time = data.tx_time;  // echoed timestamp for RTT measurement
  return p;
}

Packet make_cnp(const Packet& data) {
  Packet p;
  p.kind = PacketKind::kCnp;
  p.tclass = TrafficClass::kControl;
  p.size_bytes = kCnpBytes;
  p.flow.src_ip = data.flow.dst_ip;
  p.flow.dst_ip = data.flow.src_ip;
  p.flow.src_port = data.flow.dst_port;
  p.flow.dst_port = data.flow.src_port;
  p.flow.protocol = data.flow.protocol;
  p.flow_id = data.flow_id;
  return p;
}

Packet make_nack(const Packet& data, std::uint32_t expected_seq) {
  Packet p = make_cnp(data);  // same reverse-tuple control shell
  p.kind = PacketKind::kNack;
  p.size_bytes = kNackBytes;
  p.seq = expected_seq;
  return p;
}

Packet make_pfc(std::uint8_t priority, std::uint32_t quanta) {
  Packet p;
  p.kind = PacketKind::kPfc;
  p.tclass = TrafficClass::kControl;
  p.size_bytes = kPfcFrameBytes;
  p.pfc_priority = priority;
  p.pause_quanta = quanta;
  return p;
}

Packet make_polling(const FiveTuple& victim, std::uint64_t probe_id,
                    PollingFlag flag) {
  Packet p;
  p.kind = PacketKind::kPolling;
  p.tclass = TrafficClass::kControl;
  p.size_bytes = kPollingBytes;
  p.victim = victim;
  p.probe_id = probe_id;
  p.poll_flag = flag;
  return p;
}

std::string Packet::to_string() const {
  char buf[128];
  const char* kind_name[] = {"DATA", "ACK",  "CNP",  "PFC",
                             "NACK", "POLL", "REPORT"};
  std::snprintf(buf, sizeof(buf), "[%s %s seq=%u %dB]",
                kind_name[static_cast<int>(kind)], flow.to_string().c_str(),
                seq, size_bytes);
  return buf;
}

}  // namespace hawkeye::net
