#include "net/types.hpp"

#include <cstdio>

namespace hawkeye::net {

std::string FiveTuple::to_string() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%u:%u>%u:%u/%u", src_ip, src_port, dst_ip,
                dst_port, protocol);
  return buf;
}

std::string to_string(const PortRef& p) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "SW%d.P%d", p.node, p.port);
  return buf;
}

}  // namespace hawkeye::net
