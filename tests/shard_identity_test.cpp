// Shard-identity suite (PR 6): N-shard execution must be BITWISE identical
// to 1-shard execution.
//
// The sharded simulator (sim::Simulator::configure_shards) promises that
// partitioning the run onto N device calendars with conservative-lookahead
// rounds and deterministic mailbox merges is a pure execution-strategy
// change: the canonical (time, seq) event order — and therefore every
// observable — is exactly the single-calendar order. This suite enforces
// that promise end-to-end through the full pipeline (workload -> fabric ->
// telemetry -> collection -> provenance -> diagnosis) by comparing the
// canonical RunResult line (eval/canonical.hpp, %.17g — string equality is
// bit equality) across shard counts {2, 4, 8} against the 1-shard run, for
// every paper scenario x seed cell, under three config families:
//
//   fault-free        — the golden-trace regime;
//   collection faults — 10% polling loss + DMA faults + re-poll healing
//                       (stresses defer_control episode commits and the
//                       stateless counter-hash fault draws);
//   flap + reconverge — a mid-path link flap train with a 50 us hold-down
//                       (stresses control-shard routing mutation, cross-
//                       shard on_port_withdrawn flushes, and PFC release).
//
// shards=8 on a k=4 fabric deliberately leaves four device shards empty
// (there are only four pods); identity must survive empty calendars too.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "eval/canonical.hpp"
#include "eval/runner.hpp"
#include "fault/fault.hpp"

namespace hawkeye::eval {
namespace {

using diagnosis::AnomalyType;

constexpr AnomalyType kScenarios[] = {
    AnomalyType::kMicroBurstIncast,
    AnomalyType::kPfcStorm,
    AnomalyType::kInLoopDeadlock,
    AnomalyType::kOutOfLoopDeadlockContention,
    AnomalyType::kOutOfLoopDeadlockInjection,
    AnomalyType::kNormalContention,
};
constexpr std::uint64_t kSeeds[] = {1, 3, 7};
constexpr int kShardCounts[] = {2, 4, 8};

enum class Family { kFaultFree, kCollectionFaults, kFlapReconverge };

const char* to_string(Family f) {
  switch (f) {
    case Family::kFaultFree: return "fault_free";
    case Family::kCollectionFaults: return "collection_faults";
    case Family::kFlapReconverge: return "flap_reconverge";
  }
  return "?";
}

RunConfig cell_config(AnomalyType scenario, std::uint64_t seed, Family fam) {
  RunConfig cfg;
  cfg.scenario = scenario;
  cfg.seed = seed;
  switch (fam) {
    case Family::kFaultFree:
      break;
    case Family::kCollectionFaults: {
      // The bench_robustness regime: lossy polling plus flaky DMA, which
      // exercises coverage checks, capped-backoff re-polls and targeted
      // re-snapshots — all control-shard machinery when sharded.
      fault::FaultPlan plan = fault::FaultPlan::uniform_poll_loss(0.10, seed);
      fault::DmaFaultSpec dma;
      dma.sw = net::kInvalidNode;  // every switch
      dma.fail_prob = 0.05;
      dma.stale_prob = 0.05;
      plan.dma_faults.push_back(dma);
      cfg.faults = plan;
      break;
    }
    case Family::kFlapReconverge: {
      // The bench_path_churn regime: a victim-path flap train with a
      // hold-down, so routing withdraws/restores ports mid-run and the
      // stalled-FIFO flush crosses shard boundaries.
      fault::LinkFlapSpec flap;  // unbound: runner pins it to the victim path
      flap.start = sim::us(100);
      flap.down_ns = sim::us(100);
      flap.period_ns = sim::us(500);
      flap.jitter = 0.5;
      flap.holddown_ns = sim::us(50);
      fault::FaultPlan plan;
      plan.seed = seed;
      plan.link_flaps.push_back(flap);
      cfg.faults = plan;
      break;
    }
  }
  return cfg;
}

class ShardIdentity
    : public ::testing::TestWithParam<
          std::tuple<AnomalyType, std::uint64_t, Family>> {};

TEST_P(ShardIdentity, NShardBitwiseEqualsOneShard) {
  const auto [scenario, seed, fam] = GetParam();
  RunConfig cfg = cell_config(scenario, seed, fam);

  cfg.shards = 1;
  const std::string baseline =
      canonical_line(scenario, seed, run_one(cfg));

  for (const int shards : kShardCounts) {
    cfg.shards = shards;
    const std::string sharded = canonical_line(scenario, seed, run_one(cfg));
    EXPECT_EQ(sharded, baseline)
        << "shards=" << shards << " family=" << to_string(fam)
        << " diverged from the single-calendar run — the conservative "
           "lookahead or the mailbox merge broke canonical order.";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cells, ShardIdentity,
    ::testing::Combine(::testing::ValuesIn(kScenarios),
                       ::testing::ValuesIn(kSeeds),
                       ::testing::Values(Family::kFaultFree,
                                         Family::kCollectionFaults,
                                         Family::kFlapReconverge)),
    [](const ::testing::TestParamInfo<ShardIdentity::ParamType>& info) {
      std::string name(diagnosis::to_string(std::get<0>(info.param)));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_s" + std::to_string(std::get<1>(info.param)) + "_" +
             to_string(std::get<2>(info.param));
    });

}  // namespace
}  // namespace hawkeye::eval
