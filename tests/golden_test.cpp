// Golden-trace regression suite (PR 4; k=8 tier added in PR 6).
//
// Every scenario x seed cell runs the full pipeline (workload -> fabric ->
// telemetry -> collection -> provenance -> diagnosis) and canonicalises the
// RunResult into one text line (eval/canonical.hpp — the same serialization
// the shard-identity suite pins); the lines are checked against committed
// fixtures under tests/golden/. With the reconvergence knobs at their
// defaults (hold-down 0 = frozen routing) a behaviour-preserving change must
// reproduce every fixture byte-for-byte — any drift in verdicts, drop
// counters, fault-epoch truth or event counts fails loudly with a diff-able
// message instead of silently shifting the paper figures.
//
// Two fixture tiers: the seed's k=4 fabric (run_results.txt, single-shard
// exactly as PR 4 pinned it) and a k=8 fabric (run_results_k8.txt) that runs
// under 8 shards — the sharded path is bitwise-identical to single-shard
// (shard_identity_test.cpp), so these cells double as a standing regression
// that the parallel simulator reproduces pinned bytes on a bigger fabric.
//
// Refreshing fixtures after an INTENTIONAL behaviour change:
//   HAWKEYE_UPDATE_GOLDEN=1 ./build/tests/hawkeye_golden_test
// then review the textual diff like any other code change.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <tuple>

#include "eval/canonical.hpp"
#include "eval/runner.hpp"

#ifndef HAWKEYE_GOLDEN_DIR
#error "HAWKEYE_GOLDEN_DIR must point at the committed fixture directory"
#endif

namespace hawkeye::eval {
namespace {

using diagnosis::AnomalyType;

constexpr AnomalyType kScenarios[] = {
    AnomalyType::kMicroBurstIncast,
    AnomalyType::kPfcStorm,
    AnomalyType::kInLoopDeadlock,
    AnomalyType::kOutOfLoopDeadlockContention,
    AnomalyType::kOutOfLoopDeadlockInjection,
    AnomalyType::kNormalContention,
};
constexpr std::uint64_t kSeeds[] = {1, 3, 7};
constexpr int kFabrics[] = {4, 8};

std::string golden_path(int k) {
  return std::string(HAWKEYE_GOLDEN_DIR) +
         (k == 4 ? "/run_results.txt"
                 : "/run_results_k" + std::to_string(k) + ".txt");
}

RunResult run_cell(int k, AnomalyType scenario, std::uint64_t seed) {
  RunConfig cfg;
  cfg.scenario = scenario;
  cfg.seed = seed;
  cfg.fat_tree_k = k;
  // k=8 cells run sharded: identical bytes by the shard-identity guarantee,
  // and the golden suite then continuously re-proves that guarantee against
  // committed fixtures on a fabric with real pod boundaries.
  if (k == 8) cfg.shards = 8;
  return run_one(cfg);
}

bool update_mode() {
  const char* env = std::getenv("HAWKEYE_UPDATE_GOLDEN");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

/// key -> full line per fabric, loaded once; empty if a fixture is missing.
const std::map<std::string, std::string>& fixture_lines(int k) {
  static const std::map<int, std::map<std::string, std::string>> by_k = [] {
    std::map<int, std::map<std::string, std::string>> all;
    for (const int k : kFabrics) {
      std::map<std::string, std::string>& m = all[k];
      std::ifstream in(golden_path(k));
      std::string line;
      while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#') continue;
        m[line.substr(0, line.find(' '))] = line;
      }
    }
    return all;
  }();
  return by_k.at(k);
}

class GoldenTrace
    : public ::testing::TestWithParam<
          std::tuple<int, AnomalyType, std::uint64_t>> {};

TEST_P(GoldenTrace, RunResultMatchesFixture) {
  const auto [k, scenario, seed] = GetParam();
  if (update_mode()) GTEST_SKIP() << "fixture regeneration run";
  const auto& fixtures = fixture_lines(k);
  ASSERT_FALSE(fixtures.empty())
      << "no fixtures at " << golden_path(k)
      << " — regenerate with HAWKEYE_UPDATE_GOLDEN=1";
  const RunResult r = run_cell(k, scenario, seed);
  const std::string key = canonical_cell_key(scenario, seed);
  const auto it = fixtures.find(key);
  ASSERT_NE(it, fixtures.end()) << "no fixture line for " << key;
  EXPECT_EQ(canonical_line(scenario, seed, r), it->second)
      << "RunResult drifted from the committed golden trace. If the change "
         "is intentional, regenerate: HAWKEYE_UPDATE_GOLDEN=1 "
         "./hawkeye_golden_test, and review the fixture diff.";
}

std::string cell_name(
    const ::testing::TestParamInfo<GoldenTrace::ParamType>& info) {
  std::string name(diagnosis::to_string(std::get<1>(info.param)));
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  name += "_s" + std::to_string(std::get<2>(info.param));
  if (std::get<0>(info.param) != 4) {
    name = "k" + std::to_string(std::get<0>(info.param)) + "_" + name;
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(Cells, GoldenTrace,
                         ::testing::Combine(::testing::Values(4),
                                            ::testing::ValuesIn(kScenarios),
                                            ::testing::ValuesIn(kSeeds)),
                         cell_name);
INSTANTIATE_TEST_SUITE_P(CellsK8, GoldenTrace,
                         ::testing::Combine(::testing::Values(8),
                                            ::testing::ValuesIn(kScenarios),
                                            ::testing::ValuesIn(kSeeds)),
                         cell_name);

/// Not a check: when HAWKEYE_UPDATE_GOLDEN is set, rewrite the fixture
/// files from the current build. Runs last so a regeneration pass is one
/// command.
TEST(GoldenTraceUpdate, RegenerateFixturesWhenRequested) {
  if (!update_mode()) GTEST_SKIP() << "set HAWKEYE_UPDATE_GOLDEN=1 to rewrite";
  for (const int k : kFabrics) {
    std::ofstream out(golden_path(k), std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << golden_path(k);
    // k=4 keeps the PR 4 header verbatim so a no-drift regeneration leaves
    // the file byte-identical.
    if (k == 4) {
      out << "# Golden RunResult traces — regenerate with "
             "HAWKEYE_UPDATE_GOLDEN=1 ./hawkeye_golden_test\n";
    } else {
      out << "# Golden RunResult traces (fat-tree k=" << k
          << ", run sharded) — regenerate with "
             "HAWKEYE_UPDATE_GOLDEN=1 ./hawkeye_golden_test\n";
    }
    for (const AnomalyType scenario : kScenarios) {
      for (const std::uint64_t seed : kSeeds) {
        out << canonical_line(scenario, seed, run_cell(k, scenario, seed))
            << "\n";
      }
    }
  }
}

}  // namespace
}  // namespace hawkeye::eval
