// Golden-trace regression suite (PR 4).
//
// Every scenario x seed cell runs the full pipeline (workload -> fabric ->
// telemetry -> collection -> provenance -> diagnosis) and canonicalises the
// RunResult into one text line; the lines are pinned against committed
// fixtures under tests/golden/. With the reconvergence knobs at their
// defaults (hold-down 0 = frozen routing) a behaviour-preserving change must
// reproduce every fixture byte-for-byte — any drift in verdicts, drop
// counters, fault-epoch truth or event counts fails loudly with a diff-able
// message instead of silently shifting the paper figures.
//
// Refreshing fixtures after an INTENTIONAL behaviour change:
//   HAWKEYE_UPDATE_GOLDEN=1 ./build/tests/hawkeye_golden_test
// then review the textual diff like any other code change.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "eval/runner.hpp"

#ifndef HAWKEYE_GOLDEN_DIR
#error "HAWKEYE_GOLDEN_DIR must point at the committed fixture directory"
#endif

namespace hawkeye::eval {
namespace {

using diagnosis::AnomalyType;

constexpr AnomalyType kScenarios[] = {
    AnomalyType::kMicroBurstIncast,
    AnomalyType::kPfcStorm,
    AnomalyType::kInLoopDeadlock,
    AnomalyType::kOutOfLoopDeadlockContention,
    AnomalyType::kOutOfLoopDeadlockInjection,
    AnomalyType::kNormalContention,
};
constexpr std::uint64_t kSeeds[] = {1, 3, 7};

std::string golden_path() {
  return std::string(HAWKEYE_GOLDEN_DIR) + "/run_results.txt";
}

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string cell_key(AnomalyType scenario, std::uint64_t seed) {
  std::ostringstream os;
  os << diagnosis::to_string(scenario) << "/s" << seed;
  return os.str();
}

/// One canonical line per run. Every field is either integral or printed
/// with %.17g (round-trip exact for IEEE doubles), so equality here IS
/// bit-equality of the underlying result.
std::string canonical_line(AnomalyType scenario, std::uint64_t seed,
                           const RunResult& r) {
  std::ostringstream os;
  os << cell_key(scenario, seed)                                  //
     << " verdict=" << diagnosis::to_string(r.dx.type)            //
     << " triggered=" << r.triggered                              //
     << " tp=" << r.tp << " fp=" << r.fp << " fn=" << r.fn        //
     << " confidence=" << fmt_double(r.confidence)                //
     << " coverage=" << fmt_double(r.collection_coverage)         //
     << " causal_coverage=" << fmt_double(r.causal_coverage)      //
     << " degraded=" << r.degraded                                //
     << " drops=" << r.drops                                      //
     << " polling_drops=" << r.polling_drops                      //
     << " link_down_drops=" << r.link_down_drops                  //
     << " pfc_loss_drops=" << r.pfc_loss_drops                    //
     << " dataplane_fault=" << r.dataplane_fault_fired            //
     << " fault_on_victim_path=" << r.fault_on_victim_path        //
     << " first_fault_at=" << r.first_fault_at                    //
     << " last_fault_at=" << r.last_fault_at                      //
     << " routing_epochs=" << r.routing_epochs                    //
     << " path_churned=" << r.path_churned                        //
     << " detection_latency=" << r.detection_latency              //
     << " collected=" << r.collected_switches                     //
     << " telemetry_bytes=" << r.telemetry_bytes                  //
     << " report_packets=" << r.report_packets                    //
     << " sim_events=" << r.sim_events;
  return os.str();
}

RunResult run_cell(AnomalyType scenario, std::uint64_t seed) {
  RunConfig cfg;
  cfg.scenario = scenario;
  cfg.seed = seed;
  return run_one(cfg);
}

bool update_mode() {
  const char* env = std::getenv("HAWKEYE_UPDATE_GOLDEN");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

/// key -> full line, loaded once; empty map if the fixture is missing.
const std::map<std::string, std::string>& fixture_lines() {
  static const std::map<std::string, std::string> lines = [] {
    std::map<std::string, std::string> m;
    std::ifstream in(golden_path());
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty() || line[0] == '#') continue;
      const auto sp = line.find(' ');
      m[line.substr(0, sp)] = line;
    }
    return m;
  }();
  return lines;
}

class GoldenTrace
    : public ::testing::TestWithParam<std::tuple<AnomalyType, std::uint64_t>> {
};

TEST_P(GoldenTrace, RunResultMatchesFixture) {
  const auto [scenario, seed] = GetParam();
  if (update_mode()) GTEST_SKIP() << "fixture regeneration run";
  const auto& fixtures = fixture_lines();
  ASSERT_FALSE(fixtures.empty())
      << "no fixtures at " << golden_path()
      << " — regenerate with HAWKEYE_UPDATE_GOLDEN=1";
  const RunResult r = run_cell(scenario, seed);
  const std::string key = cell_key(scenario, seed);
  const auto it = fixtures.find(key);
  ASSERT_NE(it, fixtures.end()) << "no fixture line for " << key;
  EXPECT_EQ(canonical_line(scenario, seed, r), it->second)
      << "RunResult drifted from the committed golden trace. If the change "
         "is intentional, regenerate: HAWKEYE_UPDATE_GOLDEN=1 "
         "./hawkeye_golden_test, and review the fixture diff.";
}

INSTANTIATE_TEST_SUITE_P(
    Cells, GoldenTrace,
    ::testing::Combine(::testing::ValuesIn(kScenarios),
                       ::testing::ValuesIn(kSeeds)),
    [](const ::testing::TestParamInfo<GoldenTrace::ParamType>& info) {
      std::string name(diagnosis::to_string(std::get<0>(info.param)));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_s" + std::to_string(std::get<1>(info.param));
    });

/// Not a check: when HAWKEYE_UPDATE_GOLDEN is set, rewrite the fixture file
/// from the current build. Runs last so a regeneration pass is one command.
TEST(GoldenTraceUpdate, RegenerateFixturesWhenRequested) {
  if (!update_mode()) GTEST_SKIP() << "set HAWKEYE_UPDATE_GOLDEN=1 to rewrite";
  std::ofstream out(golden_path(), std::ios::trunc);
  ASSERT_TRUE(out.good()) << "cannot write " << golden_path();
  out << "# Golden RunResult traces — regenerate with "
         "HAWKEYE_UPDATE_GOLDEN=1 ./hawkeye_golden_test\n";
  for (const AnomalyType scenario : kScenarios) {
    for (const std::uint64_t seed : kSeeds) {
      out << canonical_line(scenario, seed, run_cell(scenario, seed)) << "\n";
    }
  }
}

}  // namespace
}  // namespace hawkeye::eval
