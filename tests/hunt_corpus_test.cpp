// Replays every committed counterexample in tests/hunt_corpus/. Each file
// must parse, already be in canonical form, and reproduce its recorded
// verdict class when re-run. A fixed misdiagnosis updates the file's
// expected block in the same PR — corpus files are never silently deleted.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "eval/hunter.hpp"

#ifndef HAWKEYE_HUNT_CORPUS_DIR
#error "HAWKEYE_HUNT_CORPUS_DIR must point at the committed corpus"
#endif

namespace hawkeye::eval {
namespace {

namespace fs = std::filesystem;

std::vector<fs::path> corpus_files() {
  std::vector<fs::path> files;
  const fs::path dir{HAWKEYE_HUNT_CORPUS_DIR};
  if (fs::exists(dir)) {
    for (const auto& e : fs::directory_iterator(dir)) {
      if (e.path().extension() == ".txt") files.push_back(e.path());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string slurp(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(HuntCorpusTest, CorpusIsCommitted) {
  // The seed campaign of this corpus found real cases; the directory must
  // never be emptied out from under the replay suite.
  EXPECT_GE(corpus_files().size(), 5u);
}

TEST(HuntCorpusTest, EveryCaseParsesCanonicallyAndReplays) {
  for (const fs::path& p : corpus_files()) {
    SCOPED_TRACE(p.filename().string());
    const std::string bytes = slurp(p);
    HuntCase c;
    ASSERT_NO_THROW(c = parse_case(bytes)) << "corpus file fails to parse";
    EXPECT_EQ(serialize_case(c), bytes) << "corpus file not in canonical form";
    ASSERT_FALSE(c.expected_class.empty())
        << "corpus file missing its expected block";
    const ReplayOutcome out = replay_case(c);
    EXPECT_TRUE(out.matches_expected) << out.detail;
  }
}

}  // namespace
}  // namespace hawkeye::eval
