#include <gtest/gtest.h>

#include "eval/testbed.hpp"

namespace hawkeye::device {
namespace {

using eval::Testbed;

Testbed::Options plain() {
  Testbed::Options o;
  o.install_hawkeye = false;
  return o;
}

TEST(HostTest, FlowCompletesAtLineRate) {
  Testbed tb(plain());
  const net::NodeId src = tb.ft.hosts[0];
  const net::NodeId dst = tb.ft.hosts[15];  // cross-pod, 5 switch hops
  tb.add_flow({src, dst, 100, 4791, 1'000'000, sim::us(1), true, 0});
  tb.run_for(sim::ms(2));
  const auto& st = tb.host(src).flow_stats()[0];
  ASSERT_TRUE(st.complete());
  // 1 MB at 100 Gbps is 80 us of serialization plus ~25 us path RTT.
  EXPECT_LT(st.fct(), sim::us(200));
  EXPECT_GT(st.fct(), sim::us(80));
  EXPECT_EQ(st.pkts_sent, 1000u);
  EXPECT_EQ(st.pkts_acked, 1000u);
  EXPECT_EQ(tb.net.data_drops(), 0u);
}

TEST(HostTest, MinRttMatchesUnloadedPath) {
  Testbed tb(plain());
  tb.add_flow({tb.ft.hosts[0], tb.ft.hosts[15], 100, 4791, 200'000,
               sim::us(1), true, 0});
  tb.run_for(sim::ms(1));
  const auto& st = tb.host(tb.ft.hosts[0]).flow_stats()[0];
  // 6 links each way, 2 us propagation each: >= 24 us; the data direction
  // adds store-and-forward serialization (~0.08 us/hop at 100G).
  EXPECT_GE(st.min_rtt, sim::us(24));
  EXPECT_LE(st.min_rtt, sim::us(40));
}

TEST(HostTest, RateCapThrottlesFlow) {
  Testbed tb(plain());
  tb.add_flow({tb.ft.hosts[0], tb.ft.hosts[3], 100, 4791, 1'000'000,
               sim::us(1), false, 10.0});  // 10 Gbps cap
  tb.run_for(sim::ms(2));
  const auto& st = tb.host(tb.ft.hosts[0]).flow_stats()[0];
  ASSERT_TRUE(st.complete());
  // 1 MB at 10 Gbps = 800 us minimum.
  EXPECT_GE(st.fct(), sim::us(780));
}

TEST(HostTest, PfcInjectionPausesUplinkTraffic) {
  Testbed tb(plain());
  const net::NodeId sink = tb.ft.hosts[1];
  const net::NodeId src = tb.ft.hosts[5];
  tb.add_flow({src, sink, 100, 4791, 5'000'000, sim::us(1), true, 0});
  // Sink floods PAUSE frames for 500 us starting at 100 us.
  tb.host(sink).inject_pfc(sim::us(100), sim::us(600), sim::us(50), 65535);
  tb.run_for(sim::ms(2));
  const auto& st = tb.host(src).flow_stats()[0];
  ASSERT_TRUE(st.complete());
  // 5 MB at line rate would take ~400 us; the 500 us storm must stall it.
  EXPECT_GT(st.fct(), sim::us(550));
  EXPECT_GT(st.max_rtt, 3 * st.min_rtt);
  EXPECT_GT(tb.host(sink).pfc_frames_injected(), 5u);
}

TEST(SwitchTest, IncastGeneratesPfcWithoutDrops) {
  Testbed tb(plain());
  const net::NodeId sink = tb.ft.hosts[0];
  // Four line-rate senders from other pods overwhelm the sink's ToR port.
  for (int i = 0; i < 4; ++i) {
    tb.add_flow({tb.ft.hosts[static_cast<size_t>(4 + 3 * i)], sink,
                 static_cast<std::uint16_t>(100 + i), 4791, 500'000,
                 sim::us(1), false, 0});
  }
  tb.run_for(sim::ms(3));
  std::uint64_t pauses = 0;
  for (const net::NodeId sw : tb.ft.topo.switches()) {
    pauses += tb.switch_at(sw).pause_frames_sent();
  }
  EXPECT_GT(pauses, 0u) << "4:1 incast must trip Xoff";
  EXPECT_EQ(tb.net.data_drops(), 0u) << "PFC keeps the fabric lossless";
  for (const net::NodeId h : tb.ft.hosts) {
    for (const auto& st : tb.host(h).flow_stats()) {
      EXPECT_TRUE(st.complete()) << "incast drains after the burst";
    }
  }
}

// Losslessness property: no drops across a sweep of offered loads.
class LosslessSweep : public ::testing::TestWithParam<int> {};

TEST_P(LosslessSweep, NeverDropsUnderIncast) {
  Testbed tb(plain());
  const int senders = GetParam();
  const net::NodeId sink = tb.ft.hosts[2];
  for (int i = 0; i < senders; ++i) {
    tb.add_flow({tb.ft.hosts[static_cast<size_t>(4 + i)], sink,
                 static_cast<std::uint16_t>(100 + i), 4791, 300'000,
                 sim::us(1 + i), false, 0});
  }
  tb.run_for(sim::ms(3));
  EXPECT_EQ(tb.net.data_drops(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Senders, LosslessSweep, ::testing::Values(2, 4, 6, 8));

TEST(SwitchTest, PauseFrameFreezesEgressUntilResume) {
  Testbed tb(plain());
  const net::NodeId sw_id = tb.ft.edges[0];
  auto& sw = tb.switch_at(sw_id);
  // Deliver a PAUSE frame on port 0 (as if the attached host sent it).
  tb.simu.schedule(100, [&] {
    sw.receive(net::make_pfc(3, 65535), 0);
  });
  tb.simu.run_until(sim::us(1));
  EXPECT_TRUE(sw.egress_paused(0));
  // 65535 quanta at 100 Gbps = 335 us; expires on its own.
  tb.simu.run_until(sim::us(400));
  EXPECT_FALSE(sw.egress_paused(0));
}

TEST(SwitchTest, ResumeUnfreezesImmediately) {
  Testbed tb(plain());
  auto& sw = tb.switch_at(tb.ft.edges[0]);
  tb.simu.schedule(100, [&] { sw.receive(net::make_pfc(3, 65535), 0); });
  tb.simu.schedule(200, [&] { sw.receive(net::make_pfc(3, 0), 0); });
  tb.simu.run_until(sim::us(1));
  EXPECT_FALSE(sw.egress_paused(0));
}

TEST(DcqcnTest, EcnFeedbackTamesPersistentContention) {
  // Two long cc-enabled flows share one egress: DCQCN should bring the
  // aggregate near the bottleneck rate without deep standing queues.
  Testbed::Options o = plain();
  o.switch_cfg.pfc_xoff_bytes = 8 * 1024 * 1024;  // keep PFC out of the test
  o.switch_cfg.pfc_xon_bytes = 4 * 1024 * 1024;
  Testbed tb(o);
  const net::NodeId sink = tb.ft.hosts[0];
  tb.add_flow({tb.ft.hosts[4], sink, 100, 4791, 8'000'000, 0, true, 0});
  tb.add_flow({tb.ft.hosts[8], sink, 200, 4791, 8'000'000, 0, true, 0});
  tb.run_for(sim::ms(3));
  const net::NodeId tor = tb.ft.topo.peer(sink, 0).node;
  const net::PortId to_sink = tb.ft.topo.port_towards(tor, sink);
  // After convergence the shared queue is bounded (ECN marks did their job).
  EXPECT_LT(tb.switch_at(tor).queue_bytes(to_sink), 2'000'000);
  EXPECT_EQ(tb.net.data_drops(), 0u);
}

TEST(NetworkTest, DataHopAccountingCountsSwitchTraversals) {
  Testbed tb(plain());
  tb.add_flow({tb.ft.hosts[0], tb.ft.hosts[1], 100, 4791, 100'000, 0, true, 0});
  tb.run_for(sim::ms(1));
  // 100 packets through exactly 1 switch (same ToR) = 100 packet-hops.
  EXPECT_EQ(tb.net.data_hops(), 100u);
}

}  // namespace
}  // namespace hawkeye::device

namespace hawkeye::device {
namespace {

TEST(MultiClassPfcTest, PauseIsolatesPerPriority) {
  // Two lossless classes; a class-0 PFC storm at the sink must stall the
  // class-0 flow while the class-1 flow to the same host runs to
  // completion through the very same ports (802.1Qbb per-priority pause).
  eval::Testbed::Options o;
  o.install_hawkeye = false;
  o.switch_cfg.data_classes = 2;
  eval::Testbed tb(o);
  const net::NodeId sink = tb.ft.hosts[1];
  FlowSpec f0{tb.ft.hosts[5], sink, 100, 4791, 3'000'000, sim::us(1), true,
              30.0, net::TrafficClass::kData};
  FlowSpec f1 = f0;
  f1.src = tb.ft.hosts[9];
  f1.src_port = 200;
  f1.tclass = net::data_class(1);
  tb.add_flow(f0);
  tb.add_flow(f1);
  tb.host(sink).inject_pfc(sim::us(100), sim::us(900), sim::us(50), 65535,
                           /*data_class=*/0);
  tb.run_for(sim::ms(3));

  const FlowStats* s0 = tb.stats_of(device::tuple_of(f0));
  const FlowStats* s1 = tb.stats_of(device::tuple_of(f1));
  ASSERT_NE(s0, nullptr);
  ASSERT_NE(s1, nullptr);
  ASSERT_TRUE(s1->complete());
  // 3 MB at 30 G is ~800 us; class 1 is unaffected by the storm.
  EXPECT_LT(s1->fct(), sim::us(1000));
  EXPECT_LT(s1->max_rtt, 3 * s1->min_rtt);
  // Class 0 lost ~800 us to the storm.
  ASSERT_TRUE(s0->complete());
  EXPECT_GT(s0->fct(), sim::us(1500));
}

TEST(MultiClassPfcTest, StrictPriorityBetweenClasses) {
  eval::Testbed::Options o;
  o.install_hawkeye = false;
  o.switch_cfg.data_classes = 2;
  // Disable ECN/PFC interference: deep thresholds.
  o.switch_cfg.pfc_xoff_bytes = 8 * 1024 * 1024;
  o.switch_cfg.pfc_xon_bytes = 4 * 1024 * 1024;
  eval::Testbed tb(o);
  const net::NodeId sink = tb.ft.hosts[0];
  // Both classes offered at line rate into the same egress: the lower
  // class index drains first (strict priority scheduler).
  FlowSpec hi{tb.ft.hosts[4], sink, 100, 4791, 2'000'000, 0, false, 0,
              net::TrafficClass::kData};
  FlowSpec lo{tb.ft.hosts[8], sink, 200, 4791, 2'000'000, 0, false, 0,
              net::data_class(1)};
  tb.add_flow(hi);
  tb.add_flow(lo);
  tb.run_for(sim::ms(3));
  const FlowStats* sh = tb.stats_of(device::tuple_of(hi));
  const FlowStats* sl = tb.stats_of(device::tuple_of(lo));
  ASSERT_TRUE(sh->complete());
  ASSERT_TRUE(sl->complete());
  EXPECT_LT(sh->fct(), sl->fct());
}

}  // namespace
}  // namespace hawkeye::device

namespace hawkeye::device {
namespace {

TEST(LossRecoveryTest, GoBackNRecoversFromBufferExhaustion) {
  // Deliberately misconfigured fabric: a tiny shared buffer with deep PFC
  // thresholds, so the incast DROPS instead of pausing. RoCEv2 go-back-N
  // (NACK + rewind, tail-loss RTO) must still complete every flow.
  eval::Testbed::Options o;
  o.install_hawkeye = false;
  o.switch_cfg.buffer_bytes = 96 * 1024;            // ~96 packets
  o.switch_cfg.pfc_xoff_bytes = 8 * 1024 * 1024;    // PFC never engages
  o.switch_cfg.pfc_xon_bytes = 4 * 1024 * 1024;
  eval::Testbed tb(o);
  const net::NodeId sink = tb.ft.hosts[0];
  for (int i = 0; i < 4; ++i) {
    tb.add_flow({tb.ft.hosts[static_cast<size_t>(4 + 3 * i)], sink,
                 static_cast<std::uint16_t>(100 + i), 4791, 400'000,
                 sim::us(1), false, 0});
  }
  tb.run_for(sim::ms(10));

  EXPECT_GT(tb.net.data_drops(), 0u) << "the test needs actual losses";
  std::uint64_t retx = 0;
  for (const net::NodeId h : tb.ft.hosts) {
    retx += tb.host(h).retransmissions();
    for (const auto& st : tb.host(h).flow_stats()) {
      EXPECT_TRUE(st.complete()) << st.tuple.to_string()
                                 << " must finish despite drops";
    }
  }
  EXPECT_GT(retx, 0u) << "completion must be via retransmission";
}

TEST(LossRecoveryTest, NoRetransmissionsOnLosslessFabric) {
  eval::Testbed::Options o;
  o.install_hawkeye = false;
  eval::Testbed tb(o);
  const net::NodeId sink = tb.ft.hosts[0];
  for (int i = 0; i < 4; ++i) {
    tb.add_flow({tb.ft.hosts[static_cast<size_t>(4 + 3 * i)], sink,
                 static_cast<std::uint16_t>(100 + i), 4791, 400'000,
                 sim::us(1), false, 0});
  }
  tb.run_for(sim::ms(5));
  for (const net::NodeId h : tb.ft.hosts) {
    EXPECT_EQ(tb.host(h).retransmissions(), 0u);
  }
  EXPECT_EQ(tb.net.data_drops(), 0u);
}

}  // namespace
}  // namespace hawkeye::device

namespace hawkeye::device {
namespace {

TEST(TimelyTest, RttGradientTamesPersistentContention) {
  Testbed::Options o = plain();
  o.dcqcn.algo = CcAlgorithm::kTimely;
  o.switch_cfg.pfc_xoff_bytes = 8 * 1024 * 1024;  // isolate CC behaviour
  o.switch_cfg.pfc_xon_bytes = 4 * 1024 * 1024;
  Testbed tb(o);
  const net::NodeId sink = tb.ft.hosts[0];
  tb.add_flow({tb.ft.hosts[4], sink, 100, 4791, 8'000'000, 0, true, 0});
  tb.add_flow({tb.ft.hosts[8], sink, 200, 4791, 8'000'000, 0, true, 0});
  tb.run_for(sim::ms(3));
  const net::NodeId tor = tb.ft.topo.peer(sink, 0).node;
  const net::PortId to_sink = tb.ft.topo.port_towards(tor, sink);
  // The RTT-gradient loop bounds the standing queue like DCQCN does.
  EXPECT_LT(tb.switch_at(tor).queue_bytes(to_sink), 3'000'000);
  EXPECT_EQ(tb.net.data_drops(), 0u);
}

// ---------------------------------------------------------------------------
// PFC pause lifecycle edges: what happens when the RESUME never comes, and
// whether a long-lived pause is re-advertised before its quanta expire.
// These are the exact mechanisms the injected PFC frame loss in
// fault_test.cpp leans on, pinned here at the single-switch level.

TEST(SwitchPfcTest, PausedEgressDrainsOnlyAfterQuantaAgeOut) {
  Testbed tb(plain());
  const net::NodeId sw_id = tb.ft.edges[0];
  auto& sw = tb.switch_at(sw_id);
  const net::PortId host_port = tb.ft.topo.port_towards(sw_id, tb.ft.hosts[0]);
  const net::PortId uplink = tb.ft.topo.port_towards(sw_id, tb.ft.aggs[0]);
  net::FiveTuple t;
  t.src_ip = net::Topology::ip_of(tb.ft.hosts[4]);
  t.dst_ip = net::Topology::ip_of(tb.ft.hosts[0]);
  t.src_port = 5;
  t.dst_port = 4791;

  // The attached host advertises a full pause (65535 quanta at 100G is
  // ~335 us) and then goes silent — the RESUME it would normally send is
  // the frame the fault injector eats in the end-to-end tests.
  tb.simu.schedule(100, [&] { sw.receive(net::make_pfc(3, 65535), host_port); });
  for (int i = 0; i < 10; ++i) {
    tb.simu.schedule(sim::us(1) + i * 100, [&sw, &t, uplink, i] {
      sw.receive(net::make_data_packet(t, 7, static_cast<std::uint32_t>(i),
                                       1000, false, 0),
                 uplink);
    });
  }
  tb.simu.run_until(sim::us(300));
  EXPECT_TRUE(sw.egress_paused(host_port)) << "quanta still running";
  EXPECT_EQ(sw.queue_pkts(host_port), 10) << "no RESUME, nothing may drain";
  tb.simu.run_until(sim::us(400));
  EXPECT_FALSE(sw.egress_paused(host_port))
      << "the pause must age out on its own";
  EXPECT_EQ(sw.queue_pkts(host_port), 0) << "aged-out egress drains fully";
}

TEST(SwitchPfcTest, PauseReAdvertisedWhileIngressHeldBetweenXonAndXoff) {
  Testbed tb(plain());
  const net::NodeId sw_id = tb.ft.edges[0];
  auto& sw = tb.switch_at(sw_id);
  const net::PortId host_port = tb.ft.topo.port_towards(sw_id, tb.ft.hosts[0]);
  const net::PortId uplink = tb.ft.topo.port_towards(sw_id, tb.ft.aggs[0]);
  net::FiveTuple t;
  t.src_ip = net::Topology::ip_of(tb.ft.hosts[4]);
  t.dst_ip = net::Topology::ip_of(tb.ft.hosts[0]);
  t.src_port = 5;
  t.dst_port = 4791;

  // Freeze the egress toward the host, then push the uplink ingress past
  // Xoff (64K): PAUSE #1 goes out of the uplink.
  tb.simu.schedule(100, [&] { sw.receive(net::make_pfc(3, 65535), host_port); });
  for (int i = 0; i < 68; ++i) {
    tb.simu.schedule(sim::us(1) + i * 10, [&sw, &t, uplink, i] {
      sw.receive(net::make_data_packet(t, 7, static_cast<std::uint32_t>(i),
                                       1000, false, 0),
                 uplink);
    });
  }
  // Un-freeze briefly so the ingress drains into the band BETWEEN Xon
  // (32K) and Xoff (64K), then freeze again before it reaches Xon.
  tb.simu.schedule(sim::us(10), [&] { sw.receive(net::make_pfc(3, 0), host_port); });
  tb.simu.schedule(sim::us(11) + 500,
                   [&] { sw.receive(net::make_pfc(3, 65535), host_port); });

  tb.simu.run_until(sim::us(50));
  ASSERT_GT(sw.ingress_bytes(uplink), tb.switch_at(sw_id).config().pfc_xon_bytes)
      << "rig error: drained past Xon, refresh would RESUME instead";
  ASSERT_LT(sw.ingress_bytes(uplink),
            tb.switch_at(sw_id).config().pfc_xoff_bytes)
      << "rig error: ingress never left the Xoff region";
  EXPECT_EQ(sw.pause_frames_sent(), 1u);

  // The advertised pause lasts ~335 us; with pause_refresh_fraction = 0.5
  // the switch must re-advertise around 168 us while still above Xon.
  tb.simu.run_until(sim::us(250));
  EXPECT_GE(sw.pause_frames_sent(), 2u)
      << "held between Xon and Xoff, the pause must be re-advertised "
         "before the upstream's quanta age out";
  for (const auto& ev : tb.net.pfc_trace()) {
    if (ev.node == sw_id && ev.port == uplink) {
      EXPECT_GT(ev.quanta, 0u)
          << "no RESUME may be sent while the ingress sits above Xon";
    }
  }
}

TEST(CcAlgorithmTest, NoneKeepsFixedRate) {
  Testbed::Options o = plain();
  o.dcqcn.algo = CcAlgorithm::kNone;
  o.dcqcn.enabled = false;
  Testbed tb(o);
  tb.add_flow({tb.ft.hosts[0], tb.ft.hosts[3], 100, 4791, 1'000'000,
               sim::us(1), true, 20.0});
  tb.run_for(sim::ms(2));
  const auto& st = tb.host(tb.ft.hosts[0]).flow_stats()[0];
  ASSERT_TRUE(st.complete());
  // 1 MB at a fixed 20 Gbps: ~400 us, CC never changes the rate.
  EXPECT_GE(st.fct(), sim::us(390));
  EXPECT_LE(st.fct(), sim::us(480));
}

}  // namespace
}  // namespace hawkeye::device
