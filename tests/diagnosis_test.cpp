#include <gtest/gtest.h>

#include "diagnosis/diagnosis.hpp"
#include "net/routing.hpp"
#include "net/topology.hpp"
#include "provenance/graph.hpp"

namespace hawkeye::diagnosis {
namespace {

using net::FiveTuple;
using net::NodeId;
using net::PortRef;
using provenance::ProvenanceGraph;

FiveTuple tup(std::uint32_t s, std::uint32_t d, std::uint16_t sp) {
  FiveTuple t;
  t.src_ip = s;
  t.dst_ip = d;
  t.src_port = sp;
  t.dst_port = 4791;
  return t;
}

/// Synthetic-graph fixture on a real fat-tree so the victim path and
/// port/peer relationships are authentic. The victim runs cross-ToR within
/// one pod: src -> E1 -> Agg -> E2 -> dst.
struct SignatureFixture {
  net::FatTree ft = net::build_fat_tree(4);
  net::Routing routing{ft.topo};
  FiveTuple victim;
  std::vector<PortRef> vpath;  // victim's switch egress hops
  ProvenanceGraph g;
  int vf = -1;
  DiagnosisConfig cfg;

  SignatureFixture() {
    victim = tup(net::Topology::ip_of(ft.hosts[0]),
                 net::Topology::ip_of(ft.hosts[2]), 77);
    for (const PortRef& hop : routing.path_of(victim)) {
      if (ft.topo.is_switch(hop.node)) vpath.push_back(hop);
    }
    vf = g.add_flow(victim);
  }

  /// Marks the victim as PFC-paused at its i-th path hop.
  int paused_hop(std::size_t i, double paused = 100) {
    const int pn = g.add_port(vpath.at(i), {paused, 10.0, 1000, false});
    g.add_flow_port_edge(vf, pn, paused);
    return pn;
  }

  /// A congested port with a set of contending flows (positive weights).
  int contention_port(const PortRef& at,
                      const std::vector<std::pair<FiveTuple, double>>& flows,
                      double paused = 0) {
    const int pn = g.add_port(at, {paused, 50.0, 5000, paused > 0});
    for (const auto& [f, w] : flows) {
      g.add_port_flow_edge(pn, g.add_flow(f), w);
    }
    return pn;
  }

  DiagnosisResult run() {
    return diagnose(g, ft.topo, routing, victim, cfg);
  }
};

TEST(SignatureTest, NormalFlowContention) {
  SignatureFixture fx;
  // No port-level edges; contention on a victim-path port.
  fx.contention_port(fx.vpath.back(),
                     {{tup(5, 3, 1), 30.0}, {tup(6, 3, 2), 25.0},
                      {fx.victim, 10.0}});
  const auto dx = fx.run();
  EXPECT_EQ(dx.type, AnomalyType::kNormalContention);
  EXPECT_EQ(dx.root_cause_flows.size(), 2u) << "victim must be excluded";
  EXPECT_EQ(dx.initial_port, fx.vpath.back());
}

TEST(SignatureTest, MicroBurstIncastBackpressure) {
  SignatureFixture fx;
  const int start = fx.paused_hop(0);
  // PFC chain: paused ToR hop waits on the agg hop, which waits on a
  // congested terminal off the victim path (a sibling host port).
  const int midn = fx.g.add_port(fx.vpath[1], {80, 20, 500, false});
  const PortRef term{fx.ft.edges[1], fx.ft.topo.port_towards(
                                          fx.ft.edges[1], fx.ft.hosts[3])};
  const int termn = fx.contention_port(
      term, {{tup(8, 3, 1), 40.0}, {tup(9, 3, 2), 35.0}});
  fx.g.add_port_edge(start, midn, 900.0);
  fx.g.add_port_edge(midn, termn, 800.0);
  const auto dx = fx.run();
  EXPECT_EQ(dx.type, AnomalyType::kMicroBurstIncast);
  EXPECT_EQ(dx.initial_port, term);
  EXPECT_EQ(dx.root_cause_flows.size(), 2u);
  EXPECT_EQ(dx.spreading_path.size(), 3u);
}

TEST(SignatureTest, PfcStormFromHostInjection) {
  SignatureFixture fx;
  const int start = fx.paused_hop(1);
  // Terminal: paused port facing a host, no contention.
  const NodeId tor = fx.ft.edges[1];
  const NodeId host = fx.ft.hosts[2];
  const PortRef term{tor, fx.ft.topo.port_towards(tor, host)};
  const int termn = fx.g.add_port(term, {120, 60, 800, true});
  fx.g.add_port_edge(start, termn, 1500.0);
  const auto dx = fx.run();
  EXPECT_EQ(dx.type, AnomalyType::kPfcStorm);
  EXPECT_EQ(dx.injecting_peer, host);
  EXPECT_EQ(dx.initial_port, term);
}

TEST(SignatureTest, StormWinsOverIncidentalContentionWhenTerminalPaused) {
  SignatureFixture fx;
  const int start = fx.paused_hop(1);
  const NodeId tor = fx.ft.edges[1];
  const NodeId host = fx.ft.hosts[2];
  const PortRef term{tor, fx.ft.topo.port_towards(tor, host)};
  // Paused terminal with *some* contention: injection still dominates.
  const int termn =
      fx.contention_port(term, {{tup(8, 3, 1), 5.0}, {tup(9, 3, 2), 4.0}},
                         /*paused=*/150);
  fx.g.add_port_edge(start, termn, 1500.0);
  const auto dx = fx.run();
  EXPECT_EQ(dx.type, AnomalyType::kPfcStorm);
  EXPECT_EQ(dx.injecting_peer, host);
}

/// Builds the canonical 4-port CBD cycle E1->A1->E2->A2->E1 in pod 0.
struct LoopFixture : SignatureFixture {
  std::vector<PortRef> loop;
  std::vector<int> loop_nodes;

  LoopFixture() {
    const NodeId e1 = ft.edges[0], e2 = ft.edges[1];
    const NodeId a1 = ft.aggs[0], a2 = ft.aggs[1];
    loop = {{e1, ft.topo.port_towards(e1, a1)},
            {a1, ft.topo.port_towards(a1, e2)},
            {e2, ft.topo.port_towards(e2, a2)},
            {a2, ft.topo.port_towards(a2, e1)}};
    for (const PortRef& p : loop) {
      loop_nodes.push_back(g.add_port(p, {100, 30, 1000, true}));
    }
    for (std::size_t i = 0; i < 4; ++i) {
      g.add_port_edge(loop_nodes[i], loop_nodes[(i + 1) % 4], 1000.0);
    }
    // Victim is paused at the first loop port (E1 is its ToR).
    g.add_flow_port_edge(vf, loop_nodes[0], 50);
  }
};

TEST(SignatureTest, InLoopDeadlock) {
  LoopFixture fx;
  // Contention at a loop port: the initiator is inside the CBD.
  fx.g.add_port_flow_edge(fx.loop_nodes[1], fx.g.add_flow(tup(7, 9, 1)), 25.0);
  const auto dx = fx.run();
  EXPECT_EQ(dx.type, AnomalyType::kInLoopDeadlock);
  EXPECT_EQ(dx.loop_ports.size(), 4u);
  ASSERT_EQ(dx.root_cause_flows.size(), 1u);
  EXPECT_EQ(dx.root_cause_flows[0], tup(7, 9, 1));
  EXPECT_EQ(dx.initial_port, fx.loop[1]);
}

TEST(SignatureTest, OutOfLoopDeadlockByContention) {
  LoopFixture fx;
  // A loop port also waits on an out-of-loop congested terminal.
  const NodeId e2 = fx.ft.edges[1];
  const PortRef sink{e2, fx.ft.topo.port_towards(e2, fx.ft.hosts[3])};
  const int sinkn = fx.contention_port(
      sink, {{tup(11, 4, 1), 60.0}, {tup(12, 4, 2), 45.0}});
  fx.g.add_port_edge(fx.loop_nodes[1], sinkn, 900.0);
  const auto dx = fx.run();
  EXPECT_EQ(dx.type, AnomalyType::kOutOfLoopDeadlockContention);
  EXPECT_EQ(dx.initial_port, sink);
  EXPECT_EQ(dx.root_cause_flows.size(), 2u);
  EXPECT_EQ(dx.loop_ports.size(), 4u);
}

TEST(SignatureTest, OutOfLoopDeadlockByInjection) {
  LoopFixture fx;
  const NodeId e2 = fx.ft.edges[1];
  const NodeId host = fx.ft.hosts[3];
  const PortRef sink{e2, fx.ft.topo.port_towards(e2, host)};
  const int sinkn = fx.g.add_port(sink, {140, 70, 900, true});
  fx.g.add_port_edge(fx.loop_nodes[1], sinkn, 900.0);
  const auto dx = fx.run();
  EXPECT_EQ(dx.type, AnomalyType::kOutOfLoopDeadlockInjection);
  EXPECT_EQ(dx.injecting_peer, host);
  EXPECT_EQ(dx.loop_ports.size(), 4u);
}

TEST(SignatureTest, FaintSideBranchDoesNotBreakInLoopVerdict) {
  LoopFixture fx;
  fx.g.add_port_flow_edge(fx.loop_nodes[1], fx.g.add_flow(tup(7, 9, 1)), 25.0);
  // A weak edge (incidental background congestion) off the loop.
  const PortRef side{fx.ft.edges[1],
                     fx.ft.topo.port_towards(fx.ft.edges[1], fx.ft.hosts[3])};
  const int siden = fx.contention_port(side, {{tup(13, 4, 1), 3.0},
                                              {tup(14, 4, 2), 2.0}});
  fx.g.add_port_edge(fx.loop_nodes[1], siden, 50.0);  // << loop edge 1000
  const auto dx = fx.run();
  EXPECT_EQ(dx.type, AnomalyType::kInLoopDeadlock);
}

TEST(SignatureTest, NothingObservableYieldsNone) {
  SignatureFixture fx;
  const auto dx = fx.run();
  EXPECT_EQ(dx.type, AnomalyType::kNone);
  EXPECT_FALSE(dx.detected());
}

TEST(SignatureTest, ContentionFloorFiltersNoise) {
  SignatureFixture fx;
  fx.cfg.min_contention = 1.0;
  // Sub-packet contention weights: below the materiality floor.
  fx.contention_port(fx.vpath.back(), {{tup(5, 3, 1), 0.2},
                                       {tup(6, 3, 2), 0.1}});
  const auto dx = fx.run();
  EXPECT_EQ(dx.type, AnomalyType::kNone);
}

TEST(SignatureTest, SpreadingFlowsArePausedAtTwoHops) {
  SignatureFixture fx;
  const int p0 = fx.paused_hop(0);
  const int p1 = fx.g.add_port(fx.vpath[1], {60, 15, 400, false});
  fx.g.add_port_edge(p0, p1, 500.0);
  const NodeId tor = fx.ft.edges[1];
  const PortRef term{tor, fx.ft.topo.port_towards(tor, fx.ft.hosts[3])};
  const int tn = fx.contention_port(term, {{tup(8, 3, 1), 40.0},
                                           {tup(9, 3, 2), 20.0}});
  fx.g.add_port_edge(p1, tn, 400.0);
  // A spreading flow paused at both chained ports (like F2 in Fig 12a).
  const FiveTuple spreader = tup(10, 3, 9);
  const int sn = fx.g.add_flow(spreader);
  fx.g.add_flow_port_edge(sn, p0, 30);
  fx.g.add_flow_port_edge(sn, p1, 25);
  const auto dx = fx.run();
  ASSERT_EQ(dx.spreading_flows.size(), 1u);
  EXPECT_EQ(dx.spreading_flows[0], spreader);
}

}  // namespace
}  // namespace hawkeye::diagnosis

#include "diagnosis/resolution.hpp"
#include "workload/scenario.hpp"

namespace hawkeye::diagnosis {
namespace {

class CbdResolutionTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CbdResolutionTest, SuggestsAndBreaksCraftedDeadlocks) {
  const net::FatTree ft = net::build_fat_tree(4);
  net::Routing routing(ft.topo);
  sim::Rng rng(GetParam());
  const auto spec = workload::make_scenario(AnomalyType::kInLoopDeadlock, ft,
                                            routing, rng);
  for (const auto& ov : spec.overrides) {
    routing.add_override(ov.sw, ov.dst, ov.port);
  }

  const auto suggestions =
      cbd_break_suggestions(spec.truth.loop_ports, routing, ft.topo);
  ASSERT_FALSE(suggestions.empty());
  // Every suggestion points at one of the crafted misconfigurations.
  for (const auto& s : suggestions) {
    const bool crafted = std::any_of(
        spec.overrides.begin(), spec.overrides.end(),
        [&](const workload::RouteOverride& ov) {
          return ov.sw == s.override_entry.sw && ov.dst == s.override_entry.dst;
        });
    EXPECT_TRUE(crafted) << s.reason;
  }
  // At least one valley route is named (the CBD needs one by construction).
  EXPECT_TRUE(std::any_of(suggestions.begin(), suggestions.end(),
                          [](const CbdSuggestion& s) { return s.valley_route; }));
  // Removing the implicated overrides provably breaks the cycle.
  EXPECT_TRUE(verify_cbd_broken(spec.truth.loop_ports, routing, suggestions,
                                ft.topo));
}

INSTANTIATE_TEST_SUITE_P(Seeds, CbdResolutionTest,
                         ::testing::Values(1ull, 2ull, 3ull, 11ull));

TEST(CbdResolutionTest, IntactLoopIsNotReportedBroken) {
  const net::FatTree ft = net::build_fat_tree(4);
  net::Routing routing(ft.topo);
  sim::Rng rng(5);
  const auto spec = workload::make_scenario(AnomalyType::kInLoopDeadlock, ft,
                                            routing, rng);
  for (const auto& ov : spec.overrides) {
    routing.add_override(ov.sw, ov.dst, ov.port);
  }
  // With no overrides removed, every segment can still carry traffic.
  EXPECT_FALSE(verify_cbd_broken(spec.truth.loop_ports, routing, {}, ft.topo));
}

}  // namespace
}  // namespace hawkeye::diagnosis

#include "diagnosis/analyzer.hpp"
#include "eval/testbed.hpp"

namespace hawkeye::diagnosis {
namespace {

const collect::Episode* victim_episode(eval::Testbed& tb,
                                       const workload::ScenarioSpec& spec) {
  const collect::Episode* best = nullptr;
  for (const auto id : tb.collector.episode_order()) {
    const collect::Episode* cand = tb.collector.episode(id);
    if (cand->victim == spec.victim &&
        cand->triggered_at >= spec.anomaly_start &&
        (best == nullptr || cand->reports.size() > best->reports.size())) {
      best = cand;
    }
  }
  return best;
}

TEST(AnalyzerTest, OneCallDeadlockReportWithFixSuggestions) {
  sim::Rng rng(2);
  workload::ScenarioSpec spec;
  {
    const net::FatTree probe = net::build_fat_tree(4);
    const net::Routing pr(probe.topo);
    spec = workload::make_scenario(AnomalyType::kInLoopDeadlock, probe, pr,
                                   rng);
  }
  eval::Testbed::Options o;
  if (spec.xoff_bytes) o.switch_cfg.pfc_xoff_bytes = *spec.xoff_bytes;
  if (spec.xon_bytes) o.switch_cfg.pfc_xon_bytes = *spec.xon_bytes;
  eval::Testbed tb(o);
  tb.install(spec);
  tb.run_for(spec.duration + sim::us(300));

  const collect::Episode* ep = victim_episode(tb, spec);
  ASSERT_NE(ep, nullptr);
  const Analyzer analyzer(tb.ft.topo, tb.routing);
  const AnalysisReport rep = analyzer.analyze(*ep);

  EXPECT_EQ(rep.dx.type, AnomalyType::kInLoopDeadlock);
  EXPECT_EQ(rep.dx.loop_ports.size(), 4u);
  EXPECT_FALSE(rep.cbd_suggestions.empty())
      << "the analyzer must implicate the crafted route overrides";
  EXPECT_NE(rep.summary.find("in-loop-deadlock"), std::string::npos);
  EXPECT_NE(rep.summary.find("CBD loop"), std::string::npos);
  EXPECT_NE(rep.summary.find("fix:"), std::string::npos);
  EXPECT_TRUE(rep.graph.has_port_level_edges());
}

TEST(AnalyzerTest, SlowReceiverDiagnosedAsInjection) {
  sim::Rng rng(1);
  workload::ScenarioSpec spec;
  {
    const net::FatTree probe = net::build_fat_tree(4);
    const net::Routing pr(probe.topo);
    spec = workload::make_slow_receiver(probe, pr, rng);
  }
  eval::Testbed tb;
  tb.install(spec);
  tb.run_for(spec.duration + sim::us(300));

  const collect::Episode* ep = victim_episode(tb, spec);
  ASSERT_NE(ep, nullptr);
  const Analyzer analyzer(tb.ft.topo, tb.routing);
  const AnalysisReport rep = analyzer.analyze(*ep);
  EXPECT_EQ(rep.dx.type, AnomalyType::kPfcStorm);
  EXPECT_EQ(rep.dx.injecting_peer, spec.truth.injecting_host);
}

}  // namespace
}  // namespace hawkeye::diagnosis
