#include <gtest/gtest.h>

#include "net/packet.hpp"
#include "telemetry/engine.hpp"
#include "telemetry/resource_model.hpp"

namespace hawkeye::telemetry {
namespace {

net::Packet data_pkt(std::uint32_t src, std::uint32_t dst, std::uint16_t sp,
                     std::int32_t payload = 1000) {
  net::FiveTuple t;
  t.src_ip = src;
  t.dst_ip = dst;
  t.src_port = sp;
  t.dst_port = 4791;
  return net::make_data_packet(t, 1, 0, payload, false, 0);
}

TelemetryConfig small_cfg() {
  TelemetryConfig cfg;
  cfg.epoch.epoch_shift = 10;  // 1024 ns epochs for fast tests
  cfg.epoch.index_bits = 2;    // 4-slot ring
  cfg.flow_slots = 64;
  return cfg;
}

// ---------- Epoch indexing ----------

class EpochShiftTest : public ::testing::TestWithParam<int> {};

TEST_P(EpochShiftTest, IndexAndIdRoundTrip) {
  EpochConfig e;
  e.epoch_shift = GetParam();
  e.index_bits = 3;
  const sim::Time epoch = e.epoch_ns();
  // Consecutive epochs get consecutive ring slots (mod ring size).
  for (int k = 0; k < 20; ++k) {
    const sim::Time ts = k * epoch + epoch / 2;
    EXPECT_EQ(e.index_of(ts), k % e.epoch_count());
    EXPECT_EQ(e.epoch_start(ts), k * epoch);
  }
  // The epoch ID changes exactly when the ring wraps.
  EXPECT_NE(e.id_of(0), e.id_of(epoch * e.epoch_count()));
  EXPECT_EQ(e.id_of(0), e.id_of(epoch - 1));
}

INSTANTIATE_TEST_SUITE_P(Shifts, EpochShiftTest,
                         ::testing::Values(10, 17, 18, 19, 20, 21));

TEST(EpochTest, ShiftForApproximateDuration) {
  EXPECT_EQ(epoch_shift_for(sim::us(100)), 17);   // 131 us is closest
  EXPECT_EQ(epoch_shift_for(sim::us(500)), 19);   // 524 us
  EXPECT_EQ(epoch_shift_for(sim::ms(1)), 20);     // 1.05 ms
  EXPECT_EQ(epoch_shift_for(sim::ms(2)), 21);     // 2.1 ms
}

// ---------- Flow & port tables ----------

TEST(TelemetryEngineTest, RecordsFlowAndPortCounters) {
  TelemetryEngine eng(1, 4, small_cfg());
  const auto pkt = data_pkt(1, 2, 100);
  eng.on_enqueue(pkt, 0, 1, 5, false, 100);
  eng.on_enqueue(pkt, 0, 1, 6, false, 200);
  const auto rep = eng.snapshot(300);
  ASSERT_EQ(rep.epochs.size(), 1u);
  ASSERT_EQ(rep.epochs[0].flows.size(), 1u);
  const auto& fr = rep.epochs[0].flows[0];
  EXPECT_EQ(fr.pkt_cnt, 2u);
  EXPECT_EQ(fr.paused_cnt, 0u);
  EXPECT_EQ(fr.qdepth_pkts_sum, 11u);
  EXPECT_EQ(fr.egress_port, 1);
  ASSERT_EQ(rep.epochs[0].ports.size(), 1u);
  EXPECT_EQ(rep.epochs[0].ports[0].pkt_cnt, 2u);
}

TEST(TelemetryEngineTest, PausedPacketsClassifiedAndExcludedFromDepth) {
  TelemetryEngine eng(1, 4, small_cfg());
  const auto pkt = data_pkt(1, 2, 100);
  eng.on_enqueue(pkt, 0, 1, 5, false, 100);
  eng.on_enqueue(pkt, 0, 1, 50, true, 200);  // enqueued while port paused
  const auto rep = eng.snapshot(300);
  const auto& fr = rep.epochs[0].flows[0];
  EXPECT_EQ(fr.pkt_cnt, 2u);
  EXPECT_EQ(fr.paused_cnt, 1u);
  // Contention replay excludes paused enqueues: depth sum only has the 5.
  EXPECT_EQ(fr.qdepth_pkts_sum, 5u);
  // Port-level depth keeps everything (congestion magnitude).
  EXPECT_EQ(rep.epochs[0].ports[0].qdepth_pkts_sum, 55u);
  EXPECT_EQ(rep.epochs[0].ports[0].paused_cnt, 1u);
}

TEST(TelemetryEngineTest, XorMismatchEvictsToController) {
  TelemetryConfig cfg = small_cfg();
  cfg.flow_slots = 1;  // force collisions
  TelemetryEngine eng(1, 4, cfg);
  std::vector<FlowRecord> evicted;
  eng.set_evict_sink([&](const FlowRecord& r) { evicted.push_back(r); });
  eng.on_enqueue(data_pkt(1, 2, 100), 0, 1, 0, false, 100);
  eng.on_enqueue(data_pkt(3, 4, 200), 0, 1, 0, false, 150);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0].flow.src_ip, 1u);
  EXPECT_EQ(evicted[0].pkt_cnt, 1u);
  EXPECT_GE(evicted[0].epoch_start, 0);
  // The slot now belongs to the new flow.
  const auto rep = eng.snapshot(200);
  EXPECT_EQ(rep.epochs[0].flows[0].flow.src_ip, 3u);
}

// Engine-level half of the ring-overwrite guarantee; the collector-level
// half (a DMA delayed past a full ring rotation contributes zero stale
// records to the episode) lives in fault_test.cpp / StaleEpochTest.
TEST(TelemetryEngineTest, EpochWrapAroundResetsSlot) {
  TelemetryConfig cfg = small_cfg();  // 4 epochs x 1024 ns
  TelemetryEngine eng(1, 4, cfg);
  const auto pkt = data_pkt(1, 2, 100);
  eng.on_enqueue(pkt, 0, 1, 0, false, 100);  // epoch 0, id 0
  // Same ring slot, one full ring later: must reset, not accumulate.
  const sim::Time wrap = cfg.epoch.epoch_ns() * cfg.epoch.epoch_count();
  eng.on_enqueue(pkt, 0, 1, 0, false, 100 + wrap);
  const auto rep = eng.snapshot(100 + wrap);
  for (const auto& er : rep.epochs) {
    for (const auto& fr : er.flows) EXPECT_EQ(fr.pkt_cnt, 1u);
  }
}

TEST(TelemetryEngineTest, CausalityMeterTracksPortPairs) {
  TelemetryEngine eng(1, 4, small_cfg());
  eng.on_enqueue(data_pkt(1, 2, 100), 0, 1, 0, false, 100);
  eng.on_enqueue(data_pkt(1, 2, 100), 0, 1, 0, false, 150);
  eng.on_enqueue(data_pkt(3, 4, 300), 2, 1, 0, false, 160);
  const auto cands0 = eng.causal_out_ports(0, 200);
  ASSERT_EQ(cands0.size(), 1u);
  EXPECT_EQ(cands0[0], 1);
  EXPECT_TRUE(eng.causal_out_ports(3, 200).empty());
  const auto rep = eng.snapshot(200);
  // Two meter entries: (0->1) and (2->1).
  ASSERT_EQ(rep.epochs[0].meters.size(), 2u);
}

TEST(TelemetryEngineTest, OneBitMeterSaturatesAtOne) {
  TelemetryConfig cfg = small_cfg();
  cfg.one_bit_meter = true;
  TelemetryEngine eng(1, 4, cfg);
  eng.on_enqueue(data_pkt(1, 2, 100), 0, 1, 0, false, 100);
  eng.on_enqueue(data_pkt(1, 2, 100), 0, 1, 0, false, 150);
  const auto rep = eng.snapshot(200);
  ASSERT_EQ(rep.epochs[0].meters.size(), 1u);
  EXPECT_EQ(rep.epochs[0].meters[0].bytes, 1u);  // presence only (ITSY)
}

TEST(TelemetryEngineTest, PfcStatusRegister) {
  TelemetryEngine eng(1, 4, small_cfg());
  eng.on_pfc_frame(2, 65535, 5000, 100);
  EXPECT_TRUE(eng.port_paused(2, 1000));
  EXPECT_FALSE(eng.port_paused(2, 6000));  // pause aged out
  eng.on_pfc_frame(2, 0, 0, 2000);         // RESUME clears
  EXPECT_FALSE(eng.port_paused(2, 2500));
}

TEST(TelemetryEngineTest, SnapshotExportsPausedPortStatus) {
  TelemetryEngine eng(1, 4, small_cfg());
  eng.on_pfc_frame(3, 65535, sim::ms(10), 100);
  const auto rep = eng.snapshot(1000, [](net::PortId p) {
    return p == 3 ? 42 : 0;
  });
  ASSERT_EQ(rep.port_status.size(), 1u);
  EXPECT_EQ(rep.port_status[0].port, 3);
  EXPECT_TRUE(rep.port_status[0].paused_now);
  EXPECT_EQ(rep.port_status[0].queue_pkts, 42);
}

TEST(TelemetryEngineTest, PortOnlyModeSkipsFlowTables) {
  TelemetryConfig cfg = small_cfg();
  cfg.mode = TelemetryMode::kPortOnly;
  TelemetryEngine eng(1, 4, cfg);
  eng.on_enqueue(data_pkt(1, 2, 100), 0, 1, 3, false, 100);
  const auto rep = eng.snapshot(200);
  EXPECT_TRUE(rep.epochs[0].flows.empty());
  EXPECT_FALSE(rep.epochs[0].ports.empty());
  EXPECT_FALSE(rep.epochs[0].meters.empty());
}

TEST(TelemetryEngineTest, FlowOnlyModeSkipsPortState) {
  TelemetryConfig cfg = small_cfg();
  cfg.mode = TelemetryMode::kFlowOnly;
  TelemetryEngine eng(1, 4, cfg);
  eng.on_enqueue(data_pkt(1, 2, 100), 0, 1, 3, false, 100);
  const auto rep = eng.snapshot(200);
  EXPECT_FALSE(rep.epochs[0].flows.empty());
  EXPECT_TRUE(rep.epochs[0].ports.empty());
  EXPECT_TRUE(rep.epochs[0].meters.empty());
  EXPECT_TRUE(eng.causal_out_ports(0, 200).empty());
}

TEST(TelemetryEngineTest, ZeroSlotsFilteredFromSnapshot) {
  TelemetryEngine eng(1, 64, small_cfg());
  eng.on_enqueue(data_pkt(1, 2, 100), 0, 1, 0, false, 100);
  const auto rep = eng.snapshot(200);
  // 64 ports but only the touched one exported.
  EXPECT_EQ(rep.epochs[0].ports.size(), 1u);
  EXPECT_EQ(rep.epochs[0].flows.size(), 1u);
  // Raw dump is orders of magnitude bigger than the filtered report.
  EXPECT_GT(eng.raw_dump_bytes(), 10 * serialized_bytes(rep));
}

// ---------- Resource model (Fig 13) ----------

TEST(ResourceModelTest, FlowTelemetryScalesWithFlowsAndEpochs) {
  TelemetryConfig a, b, c;
  a.flow_slots = 1024;
  b.flow_slots = 2048;
  c = a;
  c.epoch.index_bits = a.epoch.index_bits + 1;  // double the epochs
  EXPECT_EQ(flow_telemetry_bytes(b), 2 * flow_telemetry_bytes(a));
  EXPECT_EQ(flow_telemetry_bytes(c), 2 * flow_telemetry_bytes(a));
}

TEST(ResourceModelTest, CausalityStructureConstantInFlowCount) {
  TelemetryConfig a, b;
  a.flow_slots = 1024;
  b.flow_slots = 65536;
  EXPECT_EQ(causality_structure_bytes(a, 64), causality_structure_bytes(b, 64));
  EXPECT_EQ(port_telemetry_bytes(a, 64), port_telemetry_bytes(b, 64));
}

TEST(ResourceModelTest, FitsOnTofino) {
  TelemetryConfig cfg;
  cfg.flow_slots = 4096;
  cfg.epoch.index_bits = 2;  // 4 epochs, the paper's hardware configuration
  const auto u = estimate_resources(cfg, 64);
  EXPECT_LT(u.sram_pct, 100.0);
  EXPECT_LT(u.stages_pct, 100.0);
  EXPECT_GT(u.sram_pct, 0.0);
}

}  // namespace
}  // namespace hawkeye::telemetry

#include "telemetry/wire.hpp"

namespace hawkeye::telemetry {
namespace {

SwitchTelemetryReport sample_report() {
  SwitchTelemetryReport rep;
  rep.sw = 17;
  rep.collected_at = 123456;
  EpochRecord e;
  e.epoch_id = 7;
  e.start = 1 << 17;
  FlowRecord fr;
  fr.flow.src_ip = 3;
  fr.flow.dst_ip = 9;
  fr.flow.src_port = 2100;
  fr.flow.dst_port = 4791;
  fr.pkt_cnt = 321;
  fr.paused_cnt = 45;
  fr.qdepth_pkts_sum = 6789;
  fr.egress_port = 2;
  e.flows.push_back(fr);
  PortRecord pr;
  pr.port = 2;
  pr.pkt_cnt = 400;
  pr.paused_cnt = 45;
  pr.qdepth_pkts_sum = 9999;
  pr.tx_bytes = 123456789;
  e.ports.push_back(pr);
  e.meters.push_back({0, 2, 55555});
  rep.epochs.push_back(e);
  rep.port_status.push_back({2, true, 999999, 88});
  FlowRecord ev = fr;
  ev.epoch_start = e.start;
  rep.evicted.push_back(ev);
  return rep;
}

TEST(WireFormatTest, EncodeDecodeRoundTrip) {
  const SwitchTelemetryReport rep = sample_report();
  const auto bytes = wire::encode(rep);
  const auto back = wire::decode(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->sw, rep.sw);
  EXPECT_EQ(back->collected_at, rep.collected_at);
  ASSERT_EQ(back->epochs.size(), 1u);
  EXPECT_EQ(back->epochs[0].epoch_id, 7u);
  ASSERT_EQ(back->epochs[0].flows.size(), 1u);
  EXPECT_EQ(back->epochs[0].flows[0].flow, rep.epochs[0].flows[0].flow);
  EXPECT_EQ(back->epochs[0].flows[0].paused_cnt, 45u);
  ASSERT_EQ(back->epochs[0].ports.size(), 1u);
  EXPECT_EQ(back->epochs[0].ports[0].tx_bytes, 123456789u);
  ASSERT_EQ(back->epochs[0].meters.size(), 1u);
  EXPECT_EQ(back->epochs[0].meters[0].bytes, 55555u);
  ASSERT_EQ(back->port_status.size(), 1u);
  EXPECT_TRUE(back->port_status[0].paused_now);
  EXPECT_EQ(back->port_status[0].queue_pkts, 88);
  ASSERT_EQ(back->evicted.size(), 1u);
  EXPECT_EQ(back->evicted[0].epoch_start, rep.epochs[0].start);
}

TEST(WireFormatTest, RejectsTruncationAnywhere) {
  const auto bytes = wire::encode(sample_report());
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    std::vector<std::uint8_t> trunc(bytes.begin(),
                                    bytes.begin() + static_cast<long>(cut));
    EXPECT_FALSE(wire::decode(trunc).has_value()) << "cut at " << cut;
  }
}

TEST(WireFormatTest, RejectsBadMagicAndTrailingGarbage) {
  auto bytes = wire::encode(sample_report());
  auto bad = bytes;
  bad[0] ^= 0xff;
  EXPECT_FALSE(wire::decode(bad).has_value());
  bytes.push_back(0);
  EXPECT_FALSE(wire::decode(bytes).has_value());
}

TEST(WireFormatTest, SizeTracksAccountingEstimate) {
  // The Fig 9/14 accounting uses per-record constants; the real encoding
  // must stay within ~40% of it so the reported overheads are meaningful.
  const SwitchTelemetryReport rep = sample_report();
  const double est = static_cast<double>(serialized_bytes(rep));
  const double real = static_cast<double>(wire::encode(rep).size());
  EXPECT_GT(real / est, 0.9);
  EXPECT_LT(real / est, 1.1);
}

}  // namespace
}  // namespace hawkeye::telemetry

namespace hawkeye::telemetry {
namespace {

TEST(MergeReportTest, UnionsEpochsAndOrsPortStatus) {
  SwitchTelemetryReport early;
  early.sw = 5;
  early.collected_at = 1000;
  EpochRecord e0;
  e0.epoch_id = 1;
  e0.start = 0;
  e0.meters.push_back({0, 1, 1234});
  early.epochs.push_back(e0);
  early.port_status.push_back({1, false, 0, 10});

  SwitchTelemetryReport late;
  late.sw = 5;
  late.collected_at = 2000;
  EpochRecord e0b = e0;      // same epoch, later view: more meter bytes
  e0b.meters[0].bytes = 2000;
  EpochRecord e1;
  e1.epoch_id = 2;
  e1.start = 1 << 17;
  late.epochs.push_back(e0b);
  late.epochs.push_back(e1);
  late.port_status.push_back({1, true, 9999, 5});

  merge_report(early, late);
  ASSERT_EQ(early.epochs.size(), 2u);
  EXPECT_EQ(early.epochs[0].meters[0].bytes, 2000u) << "later view wins";
  ASSERT_EQ(early.port_status.size(), 1u);
  EXPECT_TRUE(early.port_status[0].paused_now) << "pause status is OR-ed";
  EXPECT_EQ(early.port_status[0].queue_pkts, 10) << "max occupancy kept";
  EXPECT_EQ(early.collected_at, 2000);
}

TEST(MergeReportTest, OlderSnapshotNeverDowngradesEpochs) {
  SwitchTelemetryReport base;
  base.sw = 5;
  base.collected_at = 2000;
  EpochRecord e0;
  e0.epoch_id = 1;
  e0.start = 0;
  e0.meters.push_back({0, 1, 2000});
  base.epochs.push_back(e0);

  SwitchTelemetryReport old_view;
  old_view.sw = 5;
  old_view.collected_at = 1000;
  EpochRecord e0a = e0;
  e0a.meters[0].bytes = 100;
  old_view.epochs.push_back(e0a);

  merge_report(base, old_view);
  EXPECT_EQ(base.epochs[0].meters[0].bytes, 2000u);
  EXPECT_EQ(base.collected_at, 2000);
}

}  // namespace
}  // namespace hawkeye::telemetry
