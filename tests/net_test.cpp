#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "net/packet.hpp"
#include "net/routing.hpp"
#include "net/topology.hpp"
#include "net/types.hpp"

namespace hawkeye::net {
namespace {

FiveTuple tuple(std::uint32_t s, std::uint32_t d, std::uint16_t sp) {
  FiveTuple t;
  t.src_ip = s;
  t.dst_ip = d;
  t.src_port = sp;
  t.dst_port = 4791;
  return t;
}

TEST(FiveTupleTest, EqualityAndHash) {
  const FiveTuple a = tuple(1, 2, 100);
  const FiveTuple b = tuple(1, 2, 100);
  const FiveTuple c = tuple(1, 2, 101);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.hash(), b.hash());
  EXPECT_NE(a.hash(), c.hash());  // FNV over distinct bytes
}

// Collision smoke test for the hash the telemetry flow tables bucket with
// (`hash() % flow_slots`, see telemetry::TelemetryEngine::on_enqueue) and
// ECMP reuses. A naive XOR/sum hash fails this badly: fabric tuples differ
// in only a few low bytes, so both the full 64-bit values and the low-bit
// slot indices must still spread.
TEST(FiveTupleTest, HashSpreadsAcrossFlowTableSlots) {
  // Tuple population shaped like a k=8 fabric workload: 128 hosts all
  // pairs-ish, a few source ports each.
  std::vector<FiveTuple> tuples;
  for (std::uint32_t s = 1; s <= 128; ++s) {
    for (std::uint32_t d = 1; d <= 32; ++d) {
      if (s == d) continue;
      for (std::uint16_t sp = 1000; sp < 1004; ++sp) {
        tuples.push_back(tuple(s, d, sp));
      }
    }
  }
  // Full-width hashes must be collision-free on this population.
  std::set<std::uint64_t> full;
  for (const FiveTuple& t : tuples) full.insert(t.hash());
  EXPECT_EQ(full.size(), tuples.size());

  // Low-bit slot indices (the 4096-slot flow table) must look uniform:
  // the most loaded slot stays within a small factor of the mean.
  constexpr std::uint64_t kSlots = 4096;
  std::vector<int> load(kSlots, 0);
  for (const FiveTuple& t : tuples) ++load[t.hash() % kSlots];
  const double mean =
      static_cast<double>(tuples.size()) / static_cast<double>(kSlots);
  const int worst = *std::max_element(load.begin(), load.end());
  EXPECT_LE(worst, static_cast<int>(mean * 5.0 + 4.0))
      << "flow-table slot skew: worst=" << worst << " mean=" << mean;
  // And single-field increments must not map to adjacent-slot runs.
  const std::uint64_t s0 = tuple(1, 2, 1000).hash() % kSlots;
  const std::uint64_t s1 = tuple(1, 2, 1001).hash() % kSlots;
  const std::uint64_t s2 = tuple(1, 2, 1002).hash() % kSlots;
  EXPECT_FALSE(s1 == s0 + 1 && s2 == s0 + 2);
}

TEST(PacketTest, DataPacketFactory) {
  const Packet p = make_data_packet(tuple(1, 2, 7), 99, 5, 1000, true, 1234);
  EXPECT_EQ(p.kind, PacketKind::kData);
  EXPECT_EQ(p.tclass, TrafficClass::kData);
  EXPECT_EQ(p.size_bytes, 1000 + kHeaderBytes);
  EXPECT_EQ(p.seq, 5u);
  EXPECT_TRUE(p.last_of_flow);
  EXPECT_EQ(p.tx_time, 1234);
}

TEST(PacketTest, AckReversesTupleAndEchoesTimestamp) {
  const Packet d = make_data_packet(tuple(1, 2, 7), 99, 5, 1000, false, 777);
  const Packet a = make_ack(d, 999);
  EXPECT_EQ(a.kind, PacketKind::kAck);
  EXPECT_EQ(a.tclass, TrafficClass::kControl);
  EXPECT_EQ(a.flow.src_ip, 2u);
  EXPECT_EQ(a.flow.dst_ip, 1u);
  EXPECT_EQ(a.tx_time, 777);  // echoed for RTT measurement
  EXPECT_EQ(a.flow_id, 99u);
}

TEST(PacketTest, PfcFrameCarriesQuanta) {
  const Packet pause = make_pfc(3, 65535);
  EXPECT_EQ(pause.kind, PacketKind::kPfc);
  EXPECT_EQ(pause.pause_quanta, 65535u);
  const Packet resume = make_pfc(3, 0);
  EXPECT_EQ(resume.pause_quanta, 0u);
}

TEST(PacketTest, PollingFlagBits) {
  EXPECT_FALSE(traces_victim_path(PollingFlag::kUseless));
  EXPECT_TRUE(traces_victim_path(PollingFlag::kVictimPath));
  EXPECT_FALSE(traces_pfc_causality(PollingFlag::kVictimPath));
  EXPECT_TRUE(traces_pfc_causality(PollingFlag::kPfcCausality));
  EXPECT_TRUE(traces_victim_path(PollingFlag::kBoth));
  EXPECT_TRUE(traces_pfc_causality(PollingFlag::kBoth));
}

TEST(TopologyTest, ConnectWiresBothEnds) {
  Topology topo;
  const NodeId a = topo.add_node(NodeKind::kHost);
  const NodeId b = topo.add_node(NodeKind::kSwitch);
  topo.connect(a, b, 100.0, 2000);
  EXPECT_EQ(topo.peer(a, 0), (PortRef{b, 0}));
  EXPECT_EQ(topo.peer(b, 0), (PortRef{a, 0}));
  EXPECT_EQ(topo.port_towards(a, b), 0);
  EXPECT_EQ(topo.link_of(a, 0), topo.link_of(b, 0));
}

TEST(FatTreeTest, K4HasPaperScale) {
  const FatTree ft = build_fat_tree(4);
  EXPECT_EQ(ft.hosts.size(), 16u);
  EXPECT_EQ(ft.edges.size(), 8u);
  EXPECT_EQ(ft.aggs.size(), 8u);
  EXPECT_EQ(ft.cores.size(), 4u);
  EXPECT_EQ(ft.topo.switches().size(), 20u);  // paper §4.1: 20 switches
  // Links: 16 host-edge + 16 edge-agg + 16 agg-core.
  EXPECT_EQ(ft.topo.link_count(), 48u);
  // Every switch has exactly k=4 ports; hosts one.
  for (const NodeId sw : ft.topo.switches()) {
    EXPECT_EQ(ft.topo.port_count(sw), 4);
  }
  for (const NodeId h : ft.hosts) EXPECT_EQ(ft.topo.port_count(h), 1);
}

class RoutingAllPairs : public ::testing::TestWithParam<int> {};

TEST_P(RoutingAllPairs, EveryPairIsRoutable) {
  const FatTree ft = build_fat_tree(GetParam());
  const Routing routing(ft.topo);
  for (const NodeId s : ft.hosts) {
    for (const NodeId d : ft.hosts) {
      if (s == d) continue;
      const FiveTuple t = tuple(Topology::ip_of(s), Topology::ip_of(d), 99);
      const auto path = routing.path_of(t);
      ASSERT_FALSE(path.empty());
      // Path terminates adjacent to the destination.
      const PortRef last = path.back();
      EXPECT_EQ(ft.topo.peer(last).node, d)
          << "path must end at the destination host";
      // No repeated switch (loop-free under default routing).
      std::set<NodeId> seen;
      for (const auto& hop : path) {
        EXPECT_TRUE(seen.insert(hop.node).second);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, RoutingAllPairs, ::testing::Values(2, 4, 6));

TEST(RoutingTest, EcmpCandidatesMatchFatTreeStructure) {
  const FatTree ft = build_fat_tree(4);
  const Routing routing(ft.topo);
  // An edge switch reaching a host in another pod has k/2 = 2 up-links.
  const NodeId src_edge = ft.edges[0];
  const NodeId far_host = ft.hosts[15];
  EXPECT_EQ(routing.candidates(src_edge, far_host).size(), 2u);
  // Reaching a locally-attached host: exactly one port.
  const NodeId near_host = ft.hosts[0];
  EXPECT_EQ(routing.candidates(src_edge, near_host).size(), 1u);
}

TEST(RoutingTest, PathIsDeterministicPerTuple) {
  const FatTree ft = build_fat_tree(4);
  const Routing routing(ft.topo);
  const FiveTuple t = tuple(Topology::ip_of(ft.hosts[0]),
                            Topology::ip_of(ft.hosts[9]), 321);
  EXPECT_EQ(routing.path_of(t), routing.path_of(t));
}

TEST(RoutingTest, DifferentTuplesCanTakeDifferentPaths) {
  const FatTree ft = build_fat_tree(4);
  const Routing routing(ft.topo);
  std::set<std::vector<PortRef>> paths;
  for (std::uint16_t sp = 0; sp < 64; ++sp) {
    paths.insert(routing.path_of(tuple(Topology::ip_of(ft.hosts[0]),
                                       Topology::ip_of(ft.hosts[9]), sp)));
  }
  EXPECT_GT(paths.size(), 1u) << "ECMP should spread across paths";
}

TEST(RoutingTest, OverrideRedirectsTraffic) {
  const FatTree ft = build_fat_tree(4);
  Routing routing(ft.topo);
  const NodeId sw = ft.edges[0];
  const NodeId dst = ft.hosts[9];
  const PortId forced = ft.topo.port_towards(sw, ft.aggs[1]);
  routing.add_override(sw, dst, forced);
  const FiveTuple t =
      tuple(Topology::ip_of(ft.hosts[0]), Topology::ip_of(dst), 5);
  EXPECT_EQ(routing.egress_port(sw, t), forced);
  routing.clear_overrides();
  // Back to hash-selected candidate.
  const PortId normal = routing.egress_port(sw, t);
  EXPECT_NE(normal, kInvalidPort);
}

TEST(RoutingTest, OverrideLoopIsTruncated) {
  const FatTree ft = build_fat_tree(4);
  Routing routing(ft.topo);
  // Create a two-switch routing loop for some destination.
  const NodeId e0 = ft.edges[0];
  const NodeId a0 = ft.aggs[0];
  const NodeId dst = ft.hosts[9];
  routing.add_override(e0, dst, ft.topo.port_towards(e0, a0));
  routing.add_override(a0, dst, ft.topo.port_towards(a0, e0));
  const FiveTuple t =
      tuple(Topology::ip_of(ft.hosts[0]), Topology::ip_of(dst), 5);
  const auto path = routing.path_of(t, 16);
  EXPECT_LE(path.size(), 18u);  // bounded despite the loop
}

TEST(RoutingTest, OverrideLoopTruncatesAtExactlyMaxHops) {
  const FatTree ft = build_fat_tree(4);
  Routing routing(ft.topo);
  // Two-switch ping-pong: e0 <-> a0 forever for this destination.
  const NodeId e0 = ft.edges[0];
  const NodeId a0 = ft.aggs[0];
  const NodeId dst = ft.hosts[9];
  routing.add_override(e0, dst, ft.topo.port_towards(e0, a0));
  routing.add_override(a0, dst, ft.topo.port_towards(a0, e0));
  const FiveTuple t =
      tuple(Topology::ip_of(ft.hosts[0]), Topology::ip_of(dst), 5);
  // The walk emits the host NIC hop, then one switch hop per iteration
  // while ++hops <= max_hops: exactly max_hops switch entries.
  for (const int max_hops : {1, 2, 7, 16}) {
    EXPECT_EQ(routing.path_of(t, max_hops).size(),
              static_cast<std::size_t>(max_hops) + 1)
        << "max_hops=" << max_hops;
  }
}

TEST(RoutingTest, RebuildPreservesOverrides) {
  const FatTree ft = build_fat_tree(4);
  Routing routing(ft.topo);
  const NodeId sw = ft.edges[0];
  const NodeId dst = ft.hosts[9];
  const PortId forced = ft.topo.port_towards(sw, ft.aggs[1]);
  routing.add_override(sw, dst, forced);
  routing.rebuild();
  const FiveTuple t =
      tuple(Topology::ip_of(ft.hosts[0]), Topology::ip_of(dst), 5);
  EXPECT_EQ(routing.egress_port(sw, t), forced);
  EXPECT_EQ(routing.overrides().size(), 1u);
}

TEST(RoutingTest, DisablePortWithdrawsEcmpCandidate) {
  const FatTree ft = build_fat_tree(4);
  Routing routing(ft.topo);
  const NodeId sw = ft.edges[0];
  const NodeId far_host = ft.hosts[15];
  const auto before = routing.candidates(sw, far_host);
  ASSERT_EQ(before.size(), 2u);
  const PortId dead = before[0];

  EXPECT_EQ(routing.epoch(), 0u);
  EXPECT_TRUE(routing.disable_port(sw, dead));
  EXPECT_TRUE(routing.port_disabled(sw, dead));
  EXPECT_EQ(routing.epoch(), 1u);
  // Withdrawn from EVERY destination's candidate set on this switch...
  for (const NodeId d : ft.hosts) {
    const auto& cands = routing.candidates(sw, d);
    EXPECT_TRUE(std::find(cands.begin(), cands.end(), dead) == cands.end());
  }
  // ...and every flow through sw now hashes onto the surviving uplink.
  for (std::uint16_t sp = 0; sp < 32; ++sp) {
    const FiveTuple t =
        tuple(Topology::ip_of(ft.hosts[0]), Topology::ip_of(far_host), sp);
    EXPECT_EQ(routing.egress_port(sw, t), before[1]);
  }
  // Re-disable is a no-op and does not bump the epoch.
  EXPECT_FALSE(routing.disable_port(sw, dead));
  EXPECT_EQ(routing.epoch(), 1u);
}

TEST(RoutingTest, EnablePortRestoresCandidatesExactly) {
  const FatTree ft = build_fat_tree(4);
  Routing routing(ft.topo);
  const NodeId sw = ft.edges[0];
  // Snapshot the pristine candidate sets for every destination.
  std::vector<std::vector<PortId>> pristine;
  for (const NodeId d : ft.hosts) pristine.push_back(routing.candidates(sw, d));

  const PortId dead = routing.candidates(sw, ft.hosts[15])[0];
  ASSERT_TRUE(routing.disable_port(sw, dead));
  ASSERT_TRUE(routing.enable_port(sw, dead));
  EXPECT_FALSE(routing.port_disabled(sw, dead));
  EXPECT_EQ(routing.epoch(), 2u);  // one bump per mutation

  // Byte-identical restore: order included, so the hash -> port mapping of
  // every flow returns to its pre-flap value.
  std::size_t i = 0;
  for (const NodeId d : ft.hosts) {
    EXPECT_EQ(routing.candidates(sw, d), pristine[i++]) << "dst " << d;
  }
  // Enabling a port that was never disabled: no-op, no epoch bump.
  EXPECT_FALSE(routing.enable_port(sw, dead));
  EXPECT_EQ(routing.epoch(), 2u);
}

TEST(RoutingTest, DisableNeverEmptiesACandidateSet) {
  const FatTree ft = build_fat_tree(4);
  Routing routing(ft.topo);
  // A core reaches each pod through exactly one downlink: no ECMP
  // alternative, so the (black-holed) route is kept rather than leaving
  // the destination unroutable.
  const NodeId core = ft.cores[0];
  const auto before = routing.candidates(core, ft.hosts[0]);
  ASSERT_EQ(before.size(), 1u);
  EXPECT_TRUE(routing.disable_port(core, before[0]));
  EXPECT_EQ(routing.candidates(core, ft.hosts[0]), before);
  EXPECT_TRUE(routing.port_disabled(core, before[0]));
  // The flap heal must still round-trip cleanly.
  EXPECT_TRUE(routing.enable_port(core, before[0]));
  EXPECT_EQ(routing.candidates(core, ft.hosts[0]), before);
}

TEST(RoutingTest, OverridesBypassDisabledPorts) {
  // Overrides model pinned static routes: they keep forwarding into a dead
  // port (the black hole IS the anomaly), so disable_port must not touch
  // them.
  const FatTree ft = build_fat_tree(4);
  Routing routing(ft.topo);
  const NodeId sw = ft.edges[0];
  const NodeId dst = ft.hosts[9];
  const PortId forced = ft.topo.port_towards(sw, ft.aggs[0]);
  routing.add_override(sw, dst, forced);
  routing.disable_port(sw, forced);
  const FiveTuple t =
      tuple(Topology::ip_of(ft.hosts[0]), Topology::ip_of(dst), 5);
  EXPECT_EQ(routing.egress_port(sw, t), forced);
}

TEST(RoutingTest, RebuildReappliesDisabledPorts) {
  const FatTree ft = build_fat_tree(4);
  Routing routing(ft.topo);
  const NodeId sw = ft.edges[0];
  const PortId dead = routing.candidates(sw, ft.hosts[15])[0];
  routing.disable_port(sw, dead);
  const std::uint64_t epoch_before = routing.epoch();
  routing.rebuild();
  EXPECT_GT(routing.epoch(), epoch_before);  // rebuild-with-disabled mutates
  EXPECT_TRUE(routing.port_disabled(sw, dead));
  const auto& cands = routing.candidates(sw, ft.hosts[15]);
  EXPECT_TRUE(std::find(cands.begin(), cands.end(), dead) == cands.end());
}

TEST(RoutingTest, SwitchesOnPathAreSwitchesOnly) {
  const FatTree ft = build_fat_tree(4);
  const Routing routing(ft.topo);
  const FiveTuple t = tuple(Topology::ip_of(ft.hosts[0]),
                            Topology::ip_of(ft.hosts[15]), 4);
  for (const NodeId n : routing.switches_on_path(t)) {
    EXPECT_TRUE(ft.topo.is_switch(n));
  }
  EXPECT_EQ(routing.switches_on_path(t).size(), 5u);  // edge-agg-core-agg-edge
}

}  // namespace
}  // namespace hawkeye::net

namespace hawkeye::net {
namespace {

TEST(LeafSpineTest, StructureAndRoutability) {
  const LeafSpine ls = build_leaf_spine(4, 2, 3);
  EXPECT_EQ(ls.hosts.size(), 12u);
  EXPECT_EQ(ls.leaves.size(), 4u);
  EXPECT_EQ(ls.spines.size(), 2u);
  EXPECT_EQ(ls.topo.link_count(), 12u + 8u);
  const Routing routing(ls.topo);
  for (const NodeId s : ls.hosts) {
    for (const NodeId d : ls.hosts) {
      if (s == d) continue;
      FiveTuple t;
      t.src_ip = Topology::ip_of(s);
      t.dst_ip = Topology::ip_of(d);
      t.src_port = 9;
      t.dst_port = 4791;
      const auto path = routing.path_of(t);
      ASSERT_FALSE(path.empty());
      EXPECT_EQ(ls.topo.peer(path.back()).node, d);
    }
  }
  // A cross-leaf destination has one ECMP candidate per spine.
  EXPECT_EQ(routing.candidates(ls.leaves[0], ls.hosts[11]).size(), 2u);
}

TEST(LeafSpineTest, RejectsBadDimensions) {
  EXPECT_THROW(build_leaf_spine(0, 2, 3), std::invalid_argument);
  EXPECT_THROW(build_leaf_spine(2, 0, 3), std::invalid_argument);
}

}  // namespace
}  // namespace hawkeye::net
