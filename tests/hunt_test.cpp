// eval::hunter — verdict classification rules and campaign determinism.
// The hunter's contract: same (seed, budget, tau) ⇒ byte-identical campaign
// log, finds, and corpus files, regardless of thread count or batch split.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "eval/hunter.hpp"

namespace hawkeye::eval {
namespace {

namespace fs = std::filesystem;
using diagnosis::AnomalyType;

RunResult base_result(AnomalyType truth) {
  RunResult r;
  r.truth_type = truth;
  r.triggered = true;
  r.confidence = 1.0;
  return r;
}

TEST(HuntClassifyTest, ObjectiveOrdering) {
  EXPECT_LT(severity(HuntVerdictClass::kCorrect),
            severity(HuntVerdictClass::kMissedTrigger));
  EXPECT_LT(severity(HuntVerdictClass::kMissedTrigger),
            severity(HuntVerdictClass::kWrongLowConfidence));
  EXPECT_LT(severity(HuntVerdictClass::kWrongLowConfidence),
            severity(HuntVerdictClass::kSilentWrong));
  EXPECT_EQ(severity(HuntVerdictClass::kExcused), 0);
}

TEST(HuntClassifyTest, CorrectAndMissedAndWrong) {
  RunResult r = base_result(AnomalyType::kPfcStorm);
  r.tp = true;
  EXPECT_EQ(classify_verdict(r), HuntVerdictClass::kCorrect);

  r = base_result(AnomalyType::kPfcStorm);
  r.fn = true;
  EXPECT_EQ(classify_verdict(r), HuntVerdictClass::kMissedTrigger);
  r.degraded = true;  // substrate was hit: miss is attributed
  EXPECT_EQ(classify_verdict(r), HuntVerdictClass::kExcused);

  r = base_result(AnomalyType::kPfcStorm);
  r.fp = true;
  r.confidence = 0.95;
  r.dx.type = AnomalyType::kMicroBurstIncast;
  EXPECT_EQ(classify_verdict(r), HuntVerdictClass::kSilentWrong);
  r.confidence = 0.5;
  EXPECT_EQ(classify_verdict(r), HuntVerdictClass::kWrongLowConfidence);
  EXPECT_EQ(classify_verdict(r, /*tau=*/0.4), HuntVerdictClass::kSilentWrong)
      << "tau moves the silent/low-confidence boundary";
}

TEST(HuntClassifyTest, WrongVerdictExcusedByVictimPathFault) {
  RunResult r = base_result(AnomalyType::kNormalContention);
  r.fp = true;
  r.confidence = 0.95;
  r.dx.type = AnomalyType::kPfcStorm;
  r.dataplane_fault_fired = true;
  EXPECT_EQ(classify_verdict(r), HuntVerdictClass::kSilentWrong)
      << "off-victim-path faults excuse nothing";
  r.fault_on_victim_path = true;
  EXPECT_EQ(classify_verdict(r), HuntVerdictClass::kExcused);
}

TEST(HuntClassifyTest, VerdictNamingInjectedDefectIsNotWrong) {
  // The campaign injected a degraded cable on top of a crafted storm and
  // the diagnosis blamed the cable: attribution ambiguity between two real
  // problems, not a misdiagnosis.
  RunResult r = base_result(AnomalyType::kPfcStorm);
  r.fp = true;
  r.confidence = 0.95;
  r.dx.type = AnomalyType::kDegradedLink;
  r.crc_drops = 12;
  EXPECT_EQ(classify_verdict(r), HuntVerdictClass::kExcused);
  r.crc_drops = 0;  // the cable never fired: now it IS a wrong verdict
  EXPECT_EQ(classify_verdict(r), HuntVerdictClass::kSilentWrong);
}

TEST(HuntClassifyTest, BenignTraceScoring) {
  // run_one scores a quiet benign run fn by convention; only an asserted
  // verdict counts against the diagnosis there.
  RunResult r = base_result(AnomalyType::kNone);
  r.triggered = false;
  r.fn = true;
  EXPECT_EQ(classify_verdict(r), HuntVerdictClass::kCorrect);

  r = base_result(AnomalyType::kNone);
  r.fp = true;
  r.dx.type = AnomalyType::kMicroBurstIncast;
  r.confidence = 0.95;
  EXPECT_EQ(classify_verdict(r), HuntVerdictClass::kSilentWrong);
  r.confidence = 0.2;
  EXPECT_EQ(classify_verdict(r), HuntVerdictClass::kWrongLowConfidence);
}

std::map<std::string, std::string> read_dir(const fs::path& dir) {
  std::map<std::string, std::string> out;
  if (!fs::exists(dir)) return out;
  for (const auto& e : fs::directory_iterator(dir)) {
    std::ifstream in(e.path(), std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    out[e.path().filename().string()] = buf.str();
  }
  return out;
}

TEST(HuntCampaignTest, DeterministicAcrossThreadsAndBatches) {
  // Small but real campaign: enough trials to produce at least one find on
  // this seed, small shrink budget to keep it fast. Identical options up
  // to threads/batch (which by contract change wall-clock only).
  HuntOptions a;
  a.seed = 5;
  a.budget = 6;
  a.batch = 2;
  a.threads = 1;
  a.max_shrink_evals = 4;
  a.corpus_dir = (fs::temp_directory_path() / "hawkeye_hunt_det_a").string();
  HuntOptions b = a;
  b.batch = 5;
  b.threads = 2;
  b.corpus_dir = (fs::temp_directory_path() / "hawkeye_hunt_det_b").string();
  fs::remove_all(a.corpus_dir);
  fs::remove_all(b.corpus_dir);

  const HuntReport ra = run_hunt_campaign(a);
  const HuntReport rb = run_hunt_campaign(b);
  EXPECT_EQ(ra.log, rb.log);
  EXPECT_EQ(ra.trials, rb.trials);
  EXPECT_EQ(ra.evals, rb.evals);
  ASSERT_EQ(ra.finds.size(), rb.finds.size());
  for (std::size_t i = 0; i < ra.finds.size(); ++i) {
    EXPECT_EQ(serialize_case(ra.finds[i].shrunk),
              serialize_case(rb.finds[i].shrunk));
  }
  EXPECT_EQ(read_dir(a.corpus_dir), read_dir(b.corpus_dir));

  // Shrinking only ever simplifies: never more crafted flows than the
  // original, and the shrunk case still reproduces its recorded class.
  for (const HuntFind& f : ra.finds) {
    EXPECT_LE(f.flows_after, f.flows_before);
    EXPECT_FALSE(f.shrunk.expected_class.empty());
  }
  if (!ra.finds.empty()) {
    const ReplayOutcome out = replay_case(ra.finds[0].shrunk, a.tau);
    EXPECT_TRUE(out.matches_expected) << out.detail;
  }
  fs::remove_all(a.corpus_dir);
  fs::remove_all(b.corpus_dir);
}

}  // namespace
}  // namespace hawkeye::eval
