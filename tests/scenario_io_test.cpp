// eval::scenario_io — the hunt-corpus serialization layer. Pins the two
// properties the corpus depends on: serialize∘parse∘serialize is
// byte-identical (canonical form is a fixed point), and a parsed config
// replays bit-for-bit through run_one (the file really is the run).
#include <gtest/gtest.h>

#include "eval/canonical.hpp"
#include "eval/scenario_io.hpp"

namespace hawkeye::eval {
namespace {

using diagnosis::AnomalyType;

HuntCase full_case() {
  // Every serializable axis populated at once: one spec per fault list
  // (same-list windows would overlap), jitter, a full overlay, and the
  // expected block.
  HuntCase c;
  c.cfg.scenario = AnomalyType::kPfcStorm;
  c.cfg.seed = 42;
  c.cfg.method = Method::kVictimOnly;
  c.cfg.epoch_shift = 18;
  c.cfg.epoch_index_bits = 4;
  c.cfg.threshold_factor = 2.5;
  c.cfg.tele_mode = telemetry::TelemetryMode::kPortOnly;
  c.cfg.one_bit_meter = true;
  c.cfg.background_load = 0.15;
  c.cfg.fat_tree_k = 8;
  c.cfg.shards = 4;
  c.cfg.max_repolls = 2;
  c.cfg.fleet_workload = workload::FleetWorkload::kAllToAll;
  c.cfg.fleet_severity = 1.75;
  fault::FaultPlan& fp = c.cfg.faults;
  fp.seed = 99;
  fault::PollFaultSpec poll;
  poll.sw = 3;
  poll.drop_prob = 0.25;
  poll.delay_prob = 0.125;
  poll.delay_ns = sim::us(120);
  poll.start = sim::us(10);
  poll.stop = sim::us(500);
  fp.poll_faults.push_back(poll);
  fault::DmaFaultSpec dma;
  dma.fail_prob = 0.5;
  dma.start = sim::us(100);
  dma.stop = sim::us(200);
  fp.dma_faults.push_back(dma);
  fault::AgentBlackout bo;
  bo.sw = 5;
  bo.start = sim::us(50);
  bo.stop = sim::us(60);
  fp.blackouts.push_back(bo);
  fault::LinkFlapSpec flap;
  flap.start = sim::us(100);
  flap.stop = sim::us(900);
  flap.down_ns = sim::us(30);
  flap.period_ns = sim::us(200);
  flap.jitter = 0.5;
  flap.holddown_ns = sim::us(50);
  fp.link_flaps.push_back(flap);
  fault::PfcFrameFaultSpec pfc;
  pfc.loss_prob = 0.3;
  pfc.affect_resume = false;
  pfc.start = sim::us(20);
  pfc.stop = -1;
  fp.pfc_faults.push_back(pfc);
  fp.rtt_jitter.prob = 0.1;
  fp.rtt_jitter.magnitude = 1.5;
  fault::DegradedLinkSpec deg;
  deg.ber = 1e-6;
  deg.start = 0;
  deg.stop = sim::us(700);
  fp.degraded_links.push_back(deg);
  workload::ScenarioOverlay& ov = c.cfg.overlay;
  ov.drop_flows = {4, 2, 9};
  ov.size_scale = 0.5;
  ov.rate_scale = 2.0;
  ov.arrival_stride_ns = 1000;
  ov.duration_add_ns = sim::us(200);
  ov.fault_rate_scale = 0.5;
  ov.fault_window_scale = 0.75;
  c.expected_class = "silent-wrong";
  c.expected_verdict = AnomalyType::kMicroBurstIncast;
  c.expected_truth = AnomalyType::kPfcStorm;
  c.note = "fixture with\nan embedded newline";
  return c;
}

TEST(ScenarioIoTest, SerializeParseSerializeIsFixedPoint) {
  const HuntCase c = full_case();
  const std::string s1 = serialize_case(c);
  const HuntCase parsed = parse_case(s1);
  const std::string s2 = serialize_case(parsed);
  EXPECT_EQ(s1, s2);
  EXPECT_EQ(parsed.expected_class, "silent-wrong");
  EXPECT_EQ(parsed.expected_verdict, AnomalyType::kMicroBurstIncast);
  EXPECT_EQ(parsed.note, "fixture with an embedded newline")
      << "newlines flatten to spaces on serialize";
  EXPECT_EQ(case_fingerprint(c), case_fingerprint(parsed));
}

TEST(ScenarioIoTest, EveryScenarioTypeRoundTripsAcrossSeeds) {
  // The whole craftable space — classic, fleet, benign — under seeds the
  // golden suite also uses.
  const AnomalyType types[] = {
      AnomalyType::kMicroBurstIncast,
      AnomalyType::kPfcStorm,
      AnomalyType::kInLoopDeadlock,
      AnomalyType::kOutOfLoopDeadlockContention,
      AnomalyType::kOutOfLoopDeadlockInjection,
      AnomalyType::kNormalContention,
      AnomalyType::kDegradedLink,
      AnomalyType::kLinkSpeedMismatch,
      AnomalyType::kHostPcieBottleneck,
      AnomalyType::kOversubscribedDownlink,
      AnomalyType::kNone,
  };
  for (const AnomalyType t : types) {
    for (const std::uint64_t seed : {1ull, 3ull, 7ull}) {
      HuntCase c;
      c.cfg.scenario = t;
      c.cfg.seed = seed;
      const std::string s1 = serialize_case(c);
      const std::string s2 = serialize_case(parse_case(s1));
      EXPECT_EQ(s1, s2) << diagnosis::to_string(t) << " seed " << seed;
    }
  }
}

TEST(ScenarioIoTest, ParsedConfigReplaysBitForBit) {
  // A parsed case must drive run_one to the exact result of the original
  // config — canonical_line equality is bitwise RunResult equality for
  // every scored field. One cell per crafting path: classic, classic with
  // faults + overlay, fleet, benign.
  std::vector<HuntCase> cases;
  {
    HuntCase c;
    c.cfg.scenario = AnomalyType::kMicroBurstIncast;
    c.cfg.seed = 3;
    cases.push_back(c);
  }
  {
    HuntCase c;
    c.cfg.scenario = AnomalyType::kPfcStorm;
    c.cfg.seed = 7;
    c.cfg.faults = fault::FaultPlan::uniform_poll_loss(0.3, 11);
    c.cfg.overlay.drop_flows = {5, 6};
    c.cfg.overlay.size_scale = 2.0;
    c.cfg.overlay.fault_rate_scale = 0.5;
    cases.push_back(c);
  }
  {
    HuntCase c;
    c.cfg.scenario = AnomalyType::kDegradedLink;
    c.cfg.seed = 1;
    c.cfg.fleet_workload = workload::FleetWorkload::kRpcClientServer;
    c.cfg.fleet_severity = 2.0;
    cases.push_back(c);
  }
  {
    HuntCase c;
    c.cfg.scenario = AnomalyType::kNone;
    c.cfg.seed = 1;
    c.cfg.overlay.arrival_stride_ns = 1000;
    cases.push_back(c);
  }
  for (const HuntCase& c : cases) {
    const HuntCase parsed = parse_case(serialize_case(c));
    const RunResult orig = run_one(c.cfg);
    const RunResult replayed = run_one(parsed.cfg);
    EXPECT_EQ(canonical_line(c.cfg.scenario, c.cfg.seed, orig),
              canonical_line(parsed.cfg.scenario, parsed.cfg.seed, replayed))
        << diagnosis::to_string(c.cfg.scenario);
  }
}

TEST(ScenarioIoTest, ParseRejectsDrift) {
  const std::string good = serialize_case(HuntCase{});
  // Bad magic.
  EXPECT_THROW(parse_case("hawkeye-hunt-case v2\nseed=1\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_case(""), std::invalid_argument);
  // Unknown key — format drift must fail loudly, not drop an axis.
  EXPECT_THROW(parse_case(good + "mystery_knob=3\n"), std::invalid_argument);
  EXPECT_THROW(parse_case(good + "faults.poll.0.typo=1\n"),
               std::invalid_argument);
  // Malformed values.
  EXPECT_THROW(parse_case(good + "overlay.size_scale=abc\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_case(good + "one_bit_meter=2\n"), std::invalid_argument);
  EXPECT_THROW(parse_case(good + "scenario=unheard-of\n"),
               std::invalid_argument);
  // Structurally parsable but invalid plans are rejected at parse time.
  EXPECT_THROW(
      parse_case(good +
                 "faults.poll.0.drop_prob=0.5\nfaults.poll.1.drop_prob=0.5\n"),
      std::invalid_argument)
      << "two wildcard whole-run poll specs overlap";
  EXPECT_THROW(parse_case(good + "overlay.size_scale=-1\n"),
               std::invalid_argument);
  // Comments and blank lines are tolerated.
  const HuntCase c = parse_case("# header comment\n\n" + good + "# trailer\n");
  EXPECT_EQ(serialize_case(c), good);
}

TEST(ScenarioIoTest, FingerprintTracksContent) {
  HuntCase a = full_case();
  HuntCase b = full_case();
  EXPECT_EQ(case_fingerprint(a), case_fingerprint(b));
  b.cfg.seed += 1;
  EXPECT_NE(case_fingerprint(a), case_fingerprint(b));
}

}  // namespace
}  // namespace hawkeye::eval
