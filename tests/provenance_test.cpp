#include <gtest/gtest.h>

#include "collect/episode.hpp"
#include "net/topology.hpp"
#include "provenance/builder.hpp"

namespace hawkeye::provenance {
namespace {

using collect::Episode;
using net::FatTree;
using net::FiveTuple;
using net::NodeId;
using net::PortId;
using net::PortRef;
using telemetry::EpochRecord;
using telemetry::FlowRecord;
using telemetry::SwitchTelemetryReport;

FiveTuple tup(std::uint32_t s, std::uint32_t d, std::uint16_t sp) {
  FiveTuple t;
  t.src_ip = s;
  t.dst_ip = d;
  t.src_port = sp;
  t.dst_port = 4791;
  return t;
}

FlowRecord frec(const FiveTuple& f, PortId port, std::uint32_t pkts,
                std::uint32_t paused, std::uint64_t qsum) {
  FlowRecord r;
  r.flow = f;
  r.egress_port = port;
  r.pkt_cnt = pkts;
  r.paused_cnt = paused;
  r.qdepth_pkts_sum = qsum;
  return r;
}

telemetry::PortRecord prec(PortId port, std::uint32_t pkts,
                           std::uint32_t paused, std::uint64_t qsum) {
  telemetry::PortRecord r;
  r.port = port;
  r.pkt_cnt = pkts;
  r.paused_cnt = paused;
  r.qdepth_pkts_sum = qsum;
  return r;
}

/// Fixture: upstream switch A's egress toward downstream B, with B fanning
/// into two of its own egress ports (a congested one and an idle one).
struct ChainFixture {
  FatTree ft = net::build_fat_tree(4);
  NodeId a, b;
  PortId a_to_b, b_in, b_hot, b_cold;
  Episode ep;

  ChainFixture() {
    a = ft.aggs[0];
    b = ft.edges[0];
    a_to_b = ft.topo.port_towards(a, b);
    b_in = ft.topo.peer(a, a_to_b).port;
    b_hot = ft.topo.port_towards(b, ft.hosts[0]);
    b_cold = ft.topo.port_towards(b, ft.hosts[1]);
    ep.probe_id = 1;
    ep.triggered_at = sim::ms(1);
  }

  SwitchTelemetryReport& report(NodeId sw) {
    auto& rep = ep.report_ref(sw);
    rep.sw = sw;
    if (rep.epochs.empty()) {
      rep.epochs.emplace_back();
      rep.epochs[0].epoch_id = 1;
      rep.epochs[0].start = 0;
    }
    return rep;
  }
};

TEST(BuilderTest, PortEdgeWeightFollowsAlgorithm1) {
  ChainFixture fx;
  // A's egress toward B saw 200 paused packets.
  fx.report(fx.a).epochs[0].ports.push_back(prec(fx.a_to_b, 500, 200, 1000));
  // At B: 3/4 of the ingress traffic went to the hot port, 1/4 to cold.
  auto& brep = fx.report(fx.b);
  brep.epochs[0].meters.push_back({fx.b_in, fx.b_hot, 7500});
  brep.epochs[0].meters.push_back({fx.b_in, fx.b_cold, 2500});
  brep.epochs[0].ports.push_back(prec(fx.b_hot, 100, 0, 4000));  // qdepth 40
  brep.epochs[0].ports.push_back(prec(fx.b_cold, 10, 0, 0));     // idle

  const ProvenanceGraph g = build_provenance(fx.ep, fx.ft.topo);
  const int from = g.port_node({fx.a, fx.a_to_b});
  ASSERT_GE(from, 0);
  ASSERT_EQ(g.port_out_degree(from), 1) << "idle sibling must be pruned";
  const auto& e = g.port_out(from)[0];
  EXPECT_EQ(g.port(e.to), (PortRef{fx.b, fx.b_hot}));
  // weight = paused(200) * share(0.75) * qdepth(40) = 6000.
  EXPECT_NEAR(e.weight, 6000.0, 1.0);
}

TEST(BuilderTest, NoEdgeWithoutPauseEvidence) {
  ChainFixture fx;
  fx.report(fx.a).epochs[0].ports.push_back(prec(fx.a_to_b, 500, 0, 1000));
  auto& brep = fx.report(fx.b);
  brep.epochs[0].meters.push_back({fx.b_in, fx.b_hot, 1000});
  brep.epochs[0].ports.push_back(prec(fx.b_hot, 100, 0, 4000));
  // No pause anywhere: the builder falls back to all epochs but the
  // unpaused upstream port still gets no causality edge.
  const ProvenanceGraph g = build_provenance(fx.ep, fx.ft.topo);
  const int from = g.port_node({fx.a, fx.a_to_b});
  ASSERT_GE(from, 0);
  EXPECT_EQ(g.port_out_degree(from), 0);
}

TEST(BuilderTest, FrozenStatusRegisterSubstitutesPausedCounts) {
  ChainFixture fx;
  // No paused packet counts at A (frozen deadlock: nothing enqueued), but
  // the PFC status register shows the port held down at collection.
  fx.report(fx.a).epochs[0].ports.push_back(prec(fx.a_to_b, 10, 0, 0));
  fx.report(fx.a).port_status.push_back({fx.a_to_b, true, sim::ms(2), 55});
  auto& brep = fx.report(fx.b);
  brep.epochs[0].meters.push_back({fx.b_in, fx.b_hot, 1000});
  // Downstream port also frozen with a standing queue only visible in the
  // snapshot occupancy.
  brep.epochs[0].ports.push_back(prec(fx.b_hot, 5, 1, 0));
  brep.port_status.push_back({fx.b_hot, true, sim::ms(2), 80});

  const ProvenanceGraph g = build_provenance(fx.ep, fx.ft.topo);
  const int from = g.port_node({fx.a, fx.a_to_b});
  ASSERT_GE(from, 0);
  EXPECT_TRUE(g.port_info(from).paused_at_collection);
  ASSERT_EQ(g.port_out_degree(from), 1);
  EXPECT_GT(g.port_out(from)[0].weight, 0.0);
}

TEST(BuilderTest, FlowPortEdgesFromPausedCounts) {
  ChainFixture fx;
  const FiveTuple f = tup(1, 2, 100);
  auto& arep = fx.report(fx.a);
  arep.epochs[0].ports.push_back(prec(fx.a_to_b, 100, 40, 0));
  arep.epochs[0].flows.push_back(frec(f, fx.a_to_b, 100, 40, 0));
  const ProvenanceGraph g = build_provenance(fx.ep, fx.ft.topo);
  const int fn = g.flow_node(f);
  ASSERT_GE(fn, 0);
  ASSERT_EQ(g.flow_ports(fn).size(), 1u);
  EXPECT_EQ(g.flow_ports(fn)[0].weight, 40.0);
  EXPECT_EQ(g.port(g.flow_ports(fn)[0].to), (PortRef{fx.a, fx.a_to_b}));
}

TEST(BuilderTest, ContributionSignsSeparateBurstsFromVictims) {
  ChainFixture fx;
  auto& brep = fx.report(fx.b);
  brep.epochs[0].ports.push_back(prec(fx.b_hot, 1300, 1, 30000));
  const FiveTuple burst1 = tup(1, 9, 1);
  const FiveTuple burst2 = tup(2, 9, 2);
  const FiveTuple mouse = tup(3, 9, 3);
  // Bursts own the congested queue's mass; the mouse barely queued.
  brep.epochs[0].flows.push_back(frec(burst1, fx.b_hot, 600, 0, 15000));
  brep.epochs[0].flows.push_back(frec(burst2, fx.b_hot, 600, 0, 14000));
  brep.epochs[0].flows.push_back(frec(mouse, fx.b_hot, 100, 0, 1000));
  const ProvenanceGraph g = build_provenance(fx.ep, fx.ft.topo);
  const int pn = g.port_node({fx.b, fx.b_hot});
  ASSERT_GE(pn, 0);
  double w_b1 = 0, w_b2 = 0, w_m = 0;
  for (const auto& e : g.port_flows(pn)) {
    if (e.to == g.flow_node(burst1)) w_b1 = e.weight;
    if (e.to == g.flow_node(burst2)) w_b2 = e.weight;
    if (e.to == g.flow_node(mouse)) w_m = e.weight;
  }
  EXPECT_GT(w_b1, 0.0);
  EXPECT_GT(w_b2, 0.0);
  EXPECT_LT(w_m, 0.0) << "low-share flows are victims, not contributors";
}

TEST(BuilderTest, SingleFlowIsNotContention) {
  ChainFixture fx;
  auto& brep = fx.report(fx.b);
  brep.epochs[0].ports.push_back(prec(fx.b_hot, 600, 1, 15000));
  brep.epochs[0].flows.push_back(frec(tup(1, 9, 1), fx.b_hot, 600, 0, 15000));
  const ProvenanceGraph g = build_provenance(fx.ep, fx.ft.topo);
  const int pn = g.port_node({fx.b, fx.b_hot});
  ASSERT_GE(pn, 0);
  EXPECT_TRUE(g.port_flows(pn).empty())
      << "a lone flow cannot contend with itself";
}

TEST(BuilderTest, AnomalyEpochFilterDropsPreAnomalyContention) {
  ChainFixture fx;
  auto& brep = fx.report(fx.b);
  // Epoch 0: harmless contention, no pause anywhere (asymmetric shares so
  // the contribution formula yields nonzero weights).
  brep.epochs[0].flows.push_back(frec(tup(1, 9, 1), fx.b_hot, 300, 0, 6000));
  brep.epochs[0].flows.push_back(frec(tup(2, 9, 2), fx.b_hot, 100, 0, 2000));
  brep.epochs[0].ports.push_back(prec(fx.b_hot, 400, 0, 8000));
  // Epoch 1: the anomaly — pause activity at A.
  EpochRecord e1;
  e1.epoch_id = 2;
  e1.start = 1 << 17;
  fx.report(fx.a).epochs.push_back(e1);
  fx.report(fx.a).epochs.back().ports.push_back(
      prec(fx.a_to_b, 100, 60, 500));

  provenance::BuilderConfig cfg;
  const ProvenanceGraph g = build_provenance(fx.ep, fx.ft.topo, cfg);
  // The epoch-0 contention at B must be filtered out.
  const int pn = g.port_node({fx.b, fx.b_hot});
  if (pn >= 0) EXPECT_TRUE(g.port_flows(pn).empty());

  // Disabling the filter (the long-epoch failure mode) lets it back in.
  cfg.filter_anomaly_epochs = false;
  const ProvenanceGraph g2 = build_provenance(fx.ep, fx.ft.topo, cfg);
  const int pn2 = g2.port_node({fx.b, fx.b_hot});
  ASSERT_GE(pn2, 0);
  EXPECT_FALSE(g2.port_flows(pn2).empty());
}

TEST(BuilderTest, EvictedRecordsAreFoldedIn) {
  ChainFixture fx;
  auto& brep = fx.report(fx.b);
  brep.epochs[0].ports.push_back(prec(fx.b_hot, 700, 1, 17000));
  brep.epochs[0].flows.push_back(frec(tup(1, 9, 1), fx.b_hot, 600, 0, 15000));
  // A colliding flow was evicted to the controller mid-epoch.
  FlowRecord ev = frec(tup(2, 9, 2), fx.b_hot, 100, 0, 2000);
  ev.epoch_start = 0;
  brep.evicted.push_back(ev);
  const ProvenanceGraph g = build_provenance(fx.ep, fx.ft.topo);
  EXPECT_GE(g.flow_node(tup(2, 9, 2)), 0);
  const int pn = g.port_node({fx.b, fx.b_hot});
  ASSERT_GE(pn, 0);
  EXPECT_EQ(g.port_flows(pn).size(), 2u) << "evicted flow joins the replay";
}

TEST(GraphTest, EdgeAccumulationAndLookups) {
  ProvenanceGraph g;
  const int p0 = g.add_port({1, 0});
  const int p1 = g.add_port({2, 3});
  EXPECT_EQ(g.add_port(net::PortRef{1, 0}), p0) << "idempotent add";
  g.add_port_edge(p0, p1, 5.0);
  g.add_port_edge(p0, p1, 2.5);
  ASSERT_EQ(g.port_out_degree(p0), 1);
  EXPECT_DOUBLE_EQ(g.port_out(p0)[0].weight, 7.5);
  const int f = g.add_flow(tup(1, 2, 3));
  g.add_flow_port_edge(f, p1, 10);
  g.add_port_flow_edge(p1, f, -2);
  EXPECT_EQ(g.flow_ports(f).size(), 1u);
  EXPECT_EQ(g.port_flows(p1).size(), 1u);
  EXPECT_TRUE(g.has_port_level_edges());
  EXPECT_EQ(g.port_node(net::PortRef{9, 9}), -1);
}

}  // namespace
}  // namespace hawkeye::provenance
