#include <gtest/gtest.h>

#include <vector>

#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace hawkeye::sim {
namespace {

TEST(SimulatorTest, ExecutesInTimeOrder) {
  Simulator simu;
  std::vector<int> order;
  simu.schedule(30, [&] { order.push_back(3); });
  simu.schedule(10, [&] { order.push_back(1); });
  simu.schedule(20, [&] { order.push_back(2); });
  simu.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(simu.now(), 30);
}

TEST(SimulatorTest, TieBreaksByInsertionOrder) {
  Simulator simu;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    simu.schedule(5, [&order, i] { order.push_back(i); });
  }
  simu.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(SimulatorTest, EventsCanScheduleMoreEvents) {
  Simulator simu;
  int fired = 0;
  simu.schedule(1, [&] {
    ++fired;
    simu.schedule(1, [&] {
      ++fired;
      simu.schedule(1, [&] { ++fired; });
    });
  });
  simu.run();
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(simu.now(), 3);
}

TEST(SimulatorTest, RunUntilStopsAtBoundary) {
  Simulator simu;
  int fired = 0;
  simu.schedule(10, [&] { ++fired; });
  simu.schedule(20, [&] { ++fired; });
  simu.schedule(30, [&] { ++fired; });
  simu.run_until(20);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(simu.pending(), 1u);
}

TEST(SimulatorTest, NegativeDelayClampsToNow) {
  Simulator simu;
  Time seen = -1;
  simu.schedule(100, [&] {
    simu.schedule(-50, [&] { seen = simu.now(); });
  });
  simu.run();
  EXPECT_EQ(seen, 100);
}

TEST(SimulatorTest, ScheduleAtPastClampsToNow) {
  Simulator simu;
  Time seen = -1;
  simu.schedule(100, [&] {
    simu.schedule_at(10, [&] { seen = simu.now(); });
  });
  simu.run();
  EXPECT_EQ(seen, 100);
}

TEST(SimulatorTest, CountsExecutedEvents) {
  Simulator simu;
  for (int i = 0; i < 42; ++i) simu.schedule(i, [] {});
  simu.run();
  EXPECT_EQ(simu.executed_events(), 42u);
}

TEST(TimeTest, SerializationMath) {
  // 1000 bytes at 100 Gbps = 80 ns.
  EXPECT_EQ(serialization_ns(1000, 100.0), 80);
  // 64 bytes at 100 Gbps = 5.12 ns (truncated).
  EXPECT_EQ(serialization_ns(64, 100.0), 5);
  EXPECT_EQ(us(3), 3000);
  EXPECT_EQ(ms(2), 2'000'000);
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform_int(0, 1000), b.uniform_int(0, 1000));
  }
}

TEST(RngTest, UniformIntWithinBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(5, 9);
    EXPECT_GE(v, 5);
    EXPECT_LE(v, 9);
  }
}

TEST(RngTest, ExponentialMeanApproximatelyCorrect) {
  Rng rng(3);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(50.0);
  EXPECT_NEAR(sum / n, 50.0, 2.0);
}

}  // namespace
}  // namespace hawkeye::sim
