#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "sim/calendar_queue.hpp"
#include "sim/inline_action.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace hawkeye::sim {
namespace {

TEST(SimulatorTest, ExecutesInTimeOrder) {
  Simulator simu;
  std::vector<int> order;
  simu.schedule(30, [&] { order.push_back(3); });
  simu.schedule(10, [&] { order.push_back(1); });
  simu.schedule(20, [&] { order.push_back(2); });
  simu.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(simu.now(), 30);
}

TEST(SimulatorTest, TieBreaksByInsertionOrder) {
  Simulator simu;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    simu.schedule(5, [&order, i] { order.push_back(i); });
  }
  simu.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(SimulatorTest, EventsCanScheduleMoreEvents) {
  Simulator simu;
  int fired = 0;
  simu.schedule(1, [&] {
    ++fired;
    simu.schedule(1, [&] {
      ++fired;
      simu.schedule(1, [&] { ++fired; });
    });
  });
  simu.run();
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(simu.now(), 3);
}

TEST(SimulatorTest, RunUntilStopsAtBoundary) {
  Simulator simu;
  int fired = 0;
  simu.schedule(10, [&] { ++fired; });
  simu.schedule(20, [&] { ++fired; });
  simu.schedule(30, [&] { ++fired; });
  simu.run_until(20);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(simu.pending(), 1u);
}

TEST(SimulatorTest, NegativeDelayClampsToNow) {
  Simulator simu;
  Time seen = -1;
  simu.schedule(100, [&] {
    simu.schedule(-50, [&] { seen = simu.now(); });
  });
  simu.run();
  EXPECT_EQ(seen, 100);
}

TEST(SimulatorTest, ScheduleAtPastClampsToNow) {
  Simulator simu;
  Time seen = -1;
  simu.schedule(100, [&] {
    simu.schedule_at(10, [&] { seen = simu.now(); });
  });
  simu.run();
  EXPECT_EQ(seen, 100);
}

TEST(SimulatorTest, CountsExecutedEvents) {
  Simulator simu;
  for (int i = 0; i < 42; ++i) simu.schedule(i, [] {});
  simu.run();
  EXPECT_EQ(simu.executed_events(), 42u);
}

/// Callable with the footprint of the packet-arrival closure whose copy
/// constructor is instrumented: the simulator core must move events
/// end-to-end (push, bucket migration, heap sift, dispatch) and never copy
/// them — the seed's const_cast-move-out-of-priority_queue::top() pattern
/// is gone.
struct CopyProbe {
  Simulator* simu;
  int* copies;
  int* fired;
  int hops;

  CopyProbe(Simulator* s, int* c, int* f, int h)
      : simu(s), copies(c), fired(f), hops(h) {}
  CopyProbe(const CopyProbe& o)
      : simu(o.simu), copies(o.copies), fired(o.fired), hops(o.hops) {
    ++*copies;
  }
  CopyProbe(CopyProbe&& o) noexcept = default;

  void operator()() {
    ++*fired;
    if (--hops <= 0) return;
    // Alternate short hops (within a bucket), bucket-crossing hops and
    // far-horizon hops so every storage tier relocates the event.
    const Time delay = hops % 7 == 0 ? ms(2) : (hops % 2 == 0 ? 3 : 700);
    simu->schedule(delay, std::move(*this));
  }
};
static_assert(InlineAction::fits_inline<CopyProbe>(),
              "probe must take the inline path, like the real closures");

TEST(SimulatorTest, EventsAreNeverCopied) {
  int copies = 0;
  int fired = 0;
  Simulator simu;
  for (int i = 0; i < 64; ++i) {
    simu.schedule(i * 37, CopyProbe(&simu, &copies, &fired, 50));
  }
  simu.run();
  EXPECT_EQ(fired, 64 * 50);
  EXPECT_EQ(copies, 0);
}

TEST(InlineActionTest, SmallCapturesStayInline) {
  int x = 0;
  // Pointer-sized captures — the shape of every device closure.
  InlineAction a([&x] { ++x; });
  EXPECT_TRUE(a.is_inline());
  a();
  a();
  EXPECT_EQ(x, 2);
  // Exactly at the inline-budget boundary still qualifies.
  std::array<std::byte, InlineAction::kInlineBytes - sizeof(int*)> pad{};
  InlineAction b([&x, pad] { x += static_cast<int>(pad.size()) ? 1 : 0; });
  EXPECT_TRUE(b.is_inline());
  b();
  EXPECT_EQ(x, 3);
}

TEST(InlineActionTest, OversizeCapturesFallBackToHeapAndStillRun) {
  std::array<std::uint64_t, 16> payload{};  // 128-byte capture
  payload[7] = 41;
  int got = 0;
  InlineAction a([&got, payload] { got = static_cast<int>(payload[7]) + 1; });
  EXPECT_FALSE(a.is_inline());
  InlineAction moved = std::move(a);
  moved();
  EXPECT_EQ(got, 42);
  EXPECT_FALSE(static_cast<bool>(a));  // moved-from is empty
}

TEST(InlineActionTest, AcceptsMoveOnlyCallables) {
  auto p = std::make_unique<int>(7);  // std::function would reject this
  int got = 0;
  InlineAction a([&got, p = std::move(p)] { got = *p; });
  EXPECT_TRUE(a.is_inline());
  InlineAction b = std::move(a);
  b();
  EXPECT_EQ(got, 7);
}

TEST(InlineActionTest, DestroysCallableExactlyOnce) {
  struct DtorCounter {
    int* alive;
    explicit DtorCounter(int* a) : alive(a) { ++*alive; }
    DtorCounter(DtorCounter&& o) noexcept : alive(o.alive) {
      o.alive = nullptr;
    }
    DtorCounter(const DtorCounter&) = delete;
    ~DtorCounter() {
      if (alive != nullptr) --*alive;
    }
    void operator()() {}
  };
  int alive = 0;
  {
    InlineAction a{DtorCounter(&alive)};
    EXPECT_EQ(alive, 1);
    InlineAction b = std::move(a);  // relocate, not duplicate
    InlineAction c = std::move(b);
    EXPECT_EQ(alive, 1);
    c();
  }
  EXPECT_EQ(alive, 0);
}

TEST(CalendarTest, OrderingAcrossBucketBoundaries) {
  // Pseudo-random timestamps spanning thousands of buckets and crossing
  // the wheel horizon (~1.05 ms) must pop in exact (time, seq) order.
  EventCalendar cal;
  std::vector<std::pair<Time, std::uint64_t>> ref;
  std::uint32_t state = 12345;
  for (std::uint64_t seq = 0; seq < 5000; ++seq) {
    state = state * 1664525u + 1013904223u;
    const Time at = static_cast<Time>(state % 3'000'000);
    cal.push(at, seq, [] {});
    ref.emplace_back(at, seq);
  }
  std::sort(ref.begin(), ref.end());
  std::vector<std::pair<Time, std::uint64_t>> got;
  while (cal.prepare_head()) {
    EXPECT_EQ(cal.head().at, ref[got.size()].first);
    EventCalendar::Event ev = cal.pop_head();
    got.emplace_back(ev.at, ev.seq);
  }
  EXPECT_EQ(got, ref);
  EXPECT_TRUE(cal.empty());
}

TEST(CalendarTest, TieBreakByInsertionSeqAcrossBuckets) {
  // Same-timestamp events keep insertion order, including at bucket edges
  // (255|256) and out in the far-overflow tier; interleaving timestamps at
  // insertion must not perturb that.
  Simulator simu;
  const std::vector<Time> times = {255, 256, 511, 131'072, 2'500'000};
  std::vector<std::pair<Time, int>> order;
  for (int round = 0; round < 4; ++round) {
    for (const Time t : times) {
      simu.schedule_at(t, [&order, t, round] { order.emplace_back(t, round); });
    }
  }
  simu.run();
  ASSERT_EQ(order.size(), times.size() * 4);
  std::size_t i = 0;
  for (const Time t : times) {
    for (int round = 0; round < 4; ++round, ++i) {
      EXPECT_EQ(order[i], (std::pair<Time, int>{t, round}))
          << "at index " << i;
    }
  }
}

TEST(CalendarTest, RunUntilBoundarySemantics) {
  Simulator simu;
  int fired = 0;
  simu.schedule_at(100, [&] { ++fired; });
  simu.schedule_at(101, [&] { ++fired; });
  // An event at exactly `until` fires; one past it stays queued.
  simu.run_until(100);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(simu.now(), 100);
  EXPECT_EQ(simu.pending(), 1u);
  // Re-running to the same boundary is a no-op.
  simu.run_until(100);
  EXPECT_EQ(fired, 1);
  // now() tracks the last *executed* event, not the run_until horizon.
  simu.run_until(5000);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(simu.now(), 101);
  EXPECT_TRUE(simu.empty());
}

TEST(CalendarTest, FarHorizonEventsFireInOrder) {
  Simulator simu;
  std::vector<Time> fired;
  const auto rec = [&] { fired.push_back(simu.now()); };
  simu.schedule_at(ms(10), rec);
  simu.schedule_at(50, rec);
  simu.schedule_at(ms(5), [&] {
    fired.push_back(simu.now());
    simu.schedule_at(ms(20), rec);  // far push while draining
  });
  simu.schedule_at(0, rec);
  simu.schedule_at(ms(2), rec);
  simu.run();
  EXPECT_EQ(fired,
            (std::vector<Time>{0, 50, ms(2), ms(5), ms(10), ms(20)}));
}

TEST(CalendarTest, DeterministicAcrossIdenticalRuns) {
  // Two identical self-rescheduling workloads must execute the exact same
  // event sequence — the property the evaluation harness leans on for
  // bit-identical precision/recall (the end-to-end version lives in
  // tests/sweep_test.cpp).
  const auto trace = [] {
    Simulator simu;
    std::vector<std::pair<Time, int>> seq;
    struct Timer {
      Simulator* simu;
      std::vector<std::pair<Time, int>>* seq;
      std::uint32_t state;
      int id, left;
      void operator()() {
        seq->emplace_back(simu->now(), id);
        if (--left <= 0) return;
        state = state * 1664525u + 1013904223u;
        simu->schedule(1 + (state >> 20), std::move(*this));
      }
    };
    for (int i = 0; i < 32; ++i) {
      simu.schedule(i, Timer{&simu, &seq,
                             static_cast<std::uint32_t>(i) * 2654435761u, i,
                             40});
    }
    simu.run();
    return std::pair{seq, simu.executed_events()};
  };
  const auto a = trace();
  const auto b = trace();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
  EXPECT_EQ(a.second, 32u * 40u);
}

TEST(TimeTest, SerializationMath) {
  // 1000 bytes at 100 Gbps = 80 ns.
  EXPECT_EQ(serialization_ns(1000, 100.0), 80);
  // 64 bytes at 100 Gbps = 5.12 ns (truncated).
  EXPECT_EQ(serialization_ns(64, 100.0), 5);
  EXPECT_EQ(us(3), 3000);
  EXPECT_EQ(ms(2), 2'000'000);
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform_int(0, 1000), b.uniform_int(0, 1000));
  }
}

TEST(RngTest, UniformIntWithinBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(5, 9);
    EXPECT_GE(v, 5);
    EXPECT_LE(v, 9);
  }
}

TEST(RngTest, ExponentialMeanApproximatelyCorrect) {
  Rng rng(3);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(50.0);
  EXPECT_NEAR(sum / n, 50.0, 2.0);
}

}  // namespace
}  // namespace hawkeye::sim
