#include <gtest/gtest.h>

#include "baselines/itsy.hpp"
#include "baselines/local_contention.hpp"
#include "baselines/pfc_watchdog.hpp"
#include "diagnosis/contention_cause.hpp"
#include "eval/runner.hpp"
#include "eval/testbed.hpp"
#include "provenance/builder.hpp"
#include "workload/scenario.hpp"

namespace hawkeye::baselines {
namespace {

using eval::Testbed;

/// A crafted trace on a fully-wired testbed, with baseline monitors on.
/// NOTE: `spec` must be declared before `tb` — options() fills it during
/// tb's construction.
struct MonitoredTrace {
  workload::ScenarioSpec spec;
  Testbed tb;
  PfcWatchdog watchdog;
  ItsyDetector itsy;

  MonitoredTrace(diagnosis::AnomalyType type, std::uint64_t seed,
                 sim::Time watchdog_period)
      : tb(options(type, seed)),
        watchdog(tb.net, {watchdog_period, 2}),
        itsy(tb.net, {}) {
    for (const net::NodeId sw : tb.ft.topo.switches()) {
      watchdog.watch(tb.switch_at(sw));
      itsy.watch(tb.switch_at(sw));
    }
    watchdog.start();
    itsy.start();
    tb.install(spec);
    tb.run_for(spec.duration);
  }

  Testbed::Options options(diagnosis::AnomalyType type, std::uint64_t seed) {
    sim::Rng rng(seed);
    const net::FatTree probe = net::build_fat_tree(4);
    const net::Routing pr(probe.topo);
    spec = workload::make_scenario(type, probe, pr, rng);
    Testbed::Options o;
    if (spec.xoff_bytes) o.switch_cfg.pfc_xoff_bytes = *spec.xoff_bytes;
    if (spec.xon_bytes) o.switch_cfg.pfc_xon_bytes = *spec.xon_bytes;
    return o;
  }
};

TEST(PfcWatchdogTest, CatchesPersistentDeadlockPause) {
  MonitoredTrace t(diagnosis::AnomalyType::kInLoopDeadlock, 2, sim::us(50));
  EXPECT_FALSE(t.watchdog.alarms().empty());
  EXPECT_GE(t.watchdog.first_alarm_after(t.spec.anomaly_start), 0);
}

TEST(PfcWatchdogTest, CoarsePeriodMissesTransientIncast) {
  // An incast pause episode lasts well under a millisecond; a production
  // 100 ms polling period cannot observe two consecutive paused polls.
  MonitoredTrace t(diagnosis::AnomalyType::kMicroBurstIncast, 1, sim::ms(100));
  EXPECT_TRUE(t.watchdog.alarms().empty());
}

TEST(PfcWatchdogTest, QuietFabricRaisesNoAlarm) {
  Testbed tb;
  PfcWatchdog wd(tb.net, {sim::us(50), 2});
  for (const net::NodeId sw : tb.ft.topo.switches()) {
    wd.watch(tb.switch_at(sw));
  }
  wd.start();
  tb.add_flow({tb.ft.hosts[0], tb.ft.hosts[15], 1, 4791, 1'000'000, 0, true, 0});
  tb.run_for(sim::ms(2));
  EXPECT_TRUE(wd.alarms().empty());
  EXPECT_GT(wd.polls_performed(), 10u);
}

TEST(ItsyTest, DetectsDeadlockLoop) {
  MonitoredTrace t(diagnosis::AnomalyType::kInLoopDeadlock, 2, sim::ms(100));
  ASSERT_FALSE(t.itsy.loops().empty());
  const auto& loop = t.itsy.loops().front().loop_ports;
  EXPECT_GE(loop.size(), 3u);
  // Every reported loop port is one of the crafted CBD ports.
  for (const auto& p : loop) {
    EXPECT_TRUE(std::find(t.spec.truth.loop_ports.begin(),
                          t.spec.truth.loop_ports.end(),
                          p) != t.spec.truth.loop_ports.end());
  }
}

TEST(ItsyTest, IgnoresNonLoopBackpressure) {
  // The paper's critique: ITSY "ignores non-loop PFC backpressure".
  MonitoredTrace t(diagnosis::AnomalyType::kMicroBurstIncast, 1, sim::ms(100));
  EXPECT_TRUE(t.itsy.loops().empty());
}

TEST(ItsyTest, IgnoresPfcStorms) {
  MonitoredTrace t(diagnosis::AnomalyType::kPfcStorm, 1, sim::ms(100));
  EXPECT_TRUE(t.itsy.loops().empty());
}

TEST(OverheadModelTest, NetSightBytesScaleWithPacketHops) {
  EXPECT_EQ(netsight_telemetry_bytes(1000), 15000);
  EXPECT_EQ(netsight_telemetry_bytes(0), 0);
}

}  // namespace
}  // namespace hawkeye::baselines

namespace hawkeye::diagnosis {
namespace {

TEST(ContentionCauseTest, ClassifiesEcmpImbalance) {
  const net::FatTree ft = net::build_fat_tree(4);
  net::Routing routing(ft.topo);
  sim::Rng rng(1);
  const auto spec = workload::make_ecmp_imbalance(ft, routing, rng);
  eval::Testbed::Options o;
  if (spec.xoff_bytes) o.switch_cfg.pfc_xoff_bytes = *spec.xoff_bytes;
  if (spec.xon_bytes) o.switch_cfg.pfc_xon_bytes = *spec.xon_bytes;
  eval::Testbed tb(o);
  tb.install(spec);
  tb.run_for(spec.duration + sim::us(300));

  const collect::Episode* ep = nullptr;
  for (const auto id : tb.collector.episode_order()) {
    const auto* cand = tb.collector.episode(id);
    if (cand->victim == spec.victim && ep == nullptr) ep = cand;
  }
  ASSERT_NE(ep, nullptr);
  const auto g = provenance::build_provenance(*ep, tb.ft.topo);
  const auto dx = diagnose(g, tb.ft.topo, tb.routing, spec.victim);
  EXPECT_EQ(dx.type, AnomalyType::kNormalContention);
  const auto cause = analyze_contention_cause(g, tb.ft.topo, tb.routing, dx);
  EXPECT_EQ(cause.cause, ContentionCause::kEcmpImbalance);
  EXPECT_GT(cause.ecmp_imbalance_ratio, 1.5);
}

TEST(ContentionCauseTest, ClassifiesIncastFanIn) {
  eval::RunConfig cfg;
  cfg.scenario = AnomalyType::kMicroBurstIncast;
  cfg.seed = 3;
  const auto r = eval::run_one(cfg);
  ASSERT_TRUE(r.tp);
  // The cause analyzer is exercised on the synthetic graph directly in
  // run_one's verbose path; here just sanity-check the fan-in heuristic.
  ContentionCauseConfig ccfg;
  EXPECT_GE(ccfg.incast_min_sources, 2);
}

}  // namespace
}  // namespace hawkeye::diagnosis
