// Fault-injection substrate + self-healing collection pipeline tests.
//
// The scenarios here deliberately break the telemetry path — polling-packet
// loss, switch-CPU DMA failures, agent blackouts, stale (delayed) register
// snapshots — and check that (a) every fault stream is deterministic under a
// fixed FaultPlan, (b) the detection agent's re-poll/backoff loop heals
// transient losses, and (c) unhealable episodes come back explicitly
// degraded instead of silently wrong.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "eval/runner.hpp"
#include "eval/testbed.hpp"
#include "fault/fault.hpp"
#include "net/packet.hpp"
#include "net/topology.hpp"
#include "workload/scenario.hpp"

namespace hawkeye::collect {
namespace {

using eval::Testbed;

net::FiveTuple flow_tuple(net::NodeId src, net::NodeId dst,
                          std::uint16_t sp) {
  net::FiveTuple t;
  t.src_ip = net::Topology::ip_of(src);
  t.dst_ip = net::Topology::ip_of(dst);
  t.src_port = sp;
  t.dst_port = 4791;
  return t;
}

/// Same incast rig as collect_test: cross-pod victim degrades ~200-600 us
/// in, Hawkeye triggers and collects along the victim path.
struct IncastRig {
  Testbed tb;
  net::FiveTuple victim;

  explicit IncastRig(Testbed::Options opts = {}) : tb(opts) {
    const net::NodeId sink = tb.ft.hosts[0];
    const net::NodeId vdst = tb.ft.hosts[1];
    const net::NodeId vsrc = tb.ft.hosts[12];
    victim = flow_tuple(vsrc, vdst, 900);
    tb.add_flow({vsrc, vdst, 900, 4791, 20'000'000, sim::us(1), true, 0});
    for (int i = 0; i < 4; ++i) {
      tb.add_flow({tb.ft.hosts[static_cast<size_t>(4 + 2 * i)], sink,
                   static_cast<std::uint16_t>(2000 + i), 4791, 600'000,
                   sim::us(200), false, 0});
    }
  }

  const Episode* victim_episode() {
    const Episode* ep = nullptr;
    for (const auto id : tb.collector.episode_order()) {
      const Episode* cand = tb.collector.episode(id);
      if (cand->victim == victim && ep == nullptr) ep = cand;
    }
    return ep;
  }
};

// ---------------------------------------------------------------------------
// Determinism

TEST(FaultInjectorTest, SamePlanSameDecisionStream) {
  fault::FaultPlan plan = fault::FaultPlan::uniform_poll_loss(0.3, 42);
  plan.rtt_jitter = {0.5, 2.0};
  fault::FaultInjector a(plan);
  fault::FaultInjector b(plan);
  const net::FiveTuple v = flow_tuple(0, 1, 7);
  for (int i = 0; i < 200; ++i) {
    const auto va = a.on_polling(3, v, i * 100);
    const auto vb = b.on_polling(3, v, i * 100);
    EXPECT_EQ(static_cast<int>(va.action), static_cast<int>(vb.action));
    EXPECT_EQ(a.jitter_rtt(sim::us(10), v, i * 100),
              b.jitter_rtt(sim::us(10), v, i * 100));
  }
  EXPECT_EQ(a.polls_dropped(), b.polls_dropped());
  EXPECT_GT(a.polls_dropped(), 0u);
}

TEST(FaultRunnerTest, FaultEnabledRunsAreDeterministic) {
  eval::RunConfig cfg;
  cfg.scenario = diagnosis::AnomalyType::kMicroBurstIncast;
  cfg.seed = 3;
  cfg.faults = fault::FaultPlan::uniform_poll_loss(0.10, 11);
  const eval::RunResult a = eval::run_one(cfg);
  const eval::RunResult b = eval::run_one(cfg);
  EXPECT_EQ(a.sim_events, b.sim_events);
  EXPECT_EQ(a.polling_drops, b.polling_drops);
  EXPECT_EQ(a.repolls, b.repolls);
  EXPECT_EQ(a.collection_coverage, b.collection_coverage);
  EXPECT_EQ(a.confidence, b.confidence);
  EXPECT_EQ(a.degraded, b.degraded);
  EXPECT_EQ(static_cast<int>(a.dx.type), static_cast<int>(b.dx.type));
  EXPECT_EQ(a.tp, b.tp);
}

TEST(FaultRunnerTest, FaultFreeRunReportsFullHealth) {
  eval::RunConfig cfg;
  cfg.scenario = diagnosis::AnomalyType::kMicroBurstIncast;
  cfg.seed = 1;
  const eval::RunResult r = eval::run_one(cfg);
  ASSERT_TRUE(r.triggered);
  EXPECT_FALSE(r.degraded);
  EXPECT_EQ(r.collection_coverage, 1.0);
  EXPECT_EQ(r.confidence, 1.0);
  EXPECT_EQ(r.dx.confidence, 1.0);
  EXPECT_EQ(r.repolls, 0u);
  EXPECT_EQ(r.failed_collections, 0u);
  EXPECT_EQ(r.stale_epochs, 0u);
}

// ---------------------------------------------------------------------------
// Self-healing re-poll

TEST(SelfHealingTest, TransientPollLossHealsViaRepoll) {
  Testbed::Options opts;
  opts.agent_cfg.max_repolls = 3;
  IncastRig rig(opts);
  // Every polling packet is eaten until 900 us — past the latest possible
  // first trigger — then the fabric heals. The coverage check must notice
  // the silence and re-poll until the victim path is fully covered.
  fault::FaultPlan plan;
  fault::PollFaultSpec drop;
  drop.drop_prob = 1.0;
  drop.stop = sim::us(900);
  plan.poll_faults.push_back(drop);
  rig.tb.install_faults(plan);

  rig.tb.run_for(sim::ms(6));
  const Episode* ep = rig.victim_episode();
  ASSERT_NE(ep, nullptr);
  EXPECT_GE(ep->repolls, 1u) << "healing must have issued a re-poll";
  EXPECT_TRUE(ep->coverage_complete())
      << "after the fault window, retries must recover full coverage";
  EXPECT_FALSE(ep->degraded);
  EXPECT_GT(rig.tb.faults->polls_dropped(), 0u);
}

TEST(SelfHealingTest, ExhaustedRetryBudgetMarksDegraded) {
  Testbed::Options opts;
  opts.agent_cfg.max_repolls = 2;
  IncastRig rig(opts);
  // Black out the first victim-path switch for the whole run: polling
  // packets die there, coverage can never complete, and the budget must
  // end in an explicit degraded flag — not a silent partial episode.
  const auto path = rig.tb.routing.switches_on_path(rig.victim);
  ASSERT_FALSE(path.empty());
  fault::FaultPlan plan;
  fault::AgentBlackout down;
  down.sw = path.front();
  down.start = 0;
  down.stop = sim::ms(100);
  plan.blackouts.push_back(down);
  rig.tb.install_faults(plan);

  rig.tb.run_for(sim::ms(6));
  const Episode* ep = rig.victim_episode();
  ASSERT_NE(ep, nullptr);
  EXPECT_TRUE(ep->degraded);
  EXPECT_LT(ep->coverage(), 1.0);
  EXPECT_GT(rig.tb.faults->blackout_drops(), 0u);
  EXPECT_GT(rig.tb.faults->faults_for(rig.victim), 0u);
  EXPECT_GT(rig.tb.net.polling_drops(), 0u);
  EXPECT_EQ(rig.tb.net.data_drops(), 0u)
      << "collection faults must not leak into the data plane";
}

TEST(SelfHealingTest, DmaFailureCountsFailedCollections) {
  IncastRig rig;
  fault::FaultPlan plan;
  fault::DmaFaultSpec dma;
  dma.fail_prob = 1.0;
  plan.dma_faults.push_back(dma);
  rig.tb.install_faults(plan);

  rig.tb.run_for(sim::ms(2));
  const Episode* ep = rig.victim_episode();
  ASSERT_NE(ep, nullptr);
  EXPECT_GE(ep->failed_collections, 1u);
  EXPECT_TRUE(ep->reports.empty())
      << "a CPU that never finishes the DMA contributes no report";
  EXPECT_GT(rig.tb.faults->dma_failed(), 0u);
}

TEST(FaultInjectorTest, RttJitterCausesSpuriousTriggers) {
  // Healthy traffic never triggers (see DetectionAgentTest); with every
  // RTT sample inflated up to 20x, the detector's own sensor lies and
  // episodes appear anyway.
  Testbed tb;
  fault::FaultPlan plan;
  plan.rtt_jitter = {1.0, 20.0};
  tb.install_faults(plan);
  tb.add_flow({tb.ft.hosts[0], tb.ft.hosts[15], 900, 4791, 2'000'000,
               sim::us(1), true, 0});
  tb.run_for(sim::ms(2));
  EXPECT_FALSE(tb.collector.episode_order().empty());
  EXPECT_GT(tb.faults->rtt_jittered(), 0u);
}

// ---------------------------------------------------------------------------
// Ring-overwrite (stale epoch) rejection through the Collector path.
// Companion of TelemetryEngineTest.EpochWrapAroundResetsSlot: there the
// engine reuses a slot correctly; here a snapshot delayed past a full ring
// rotation must contribute ZERO stale records to the episode.

TEST(StaleEpochTest, LateCollectionYieldsNoStaleRecords) {
  IncastRig rig;
  const auto& ecfg =
      rig.tb.switch_at(rig.tb.ft.topo.switches()[0]).config().telemetry.epoch;
  const sim::Time ring_span = ecfg.epoch_ns() * ecfg.epoch_count();

  // Every DMA completes, but only after the epoch ring has fully rotated
  // (incast + victim traffic keeps churning it the whole time).
  fault::FaultPlan plan;
  fault::DmaFaultSpec dma;
  dma.stale_prob = 1.0;
  dma.extra_delay = 2 * ring_span;
  plan.dma_faults.push_back(dma);
  rig.tb.install_faults(plan);

  rig.tb.run_for(sim::ms(8));
  const Episode* ep = rig.victim_episode();
  ASSERT_NE(ep, nullptr);
  EXPECT_GT(ep->stale_epochs_rejected, 0u)
      << "a ring that rotated under the DMA must shed stale records";
  // Whatever survived the filter genuinely belongs to the episode: nothing
  // newer than the mirror instant plus the collection grace window.
  const sim::Time limit = ep->triggered_at + sim::ms(4) +
                          rig.tb.collector.config().snapshot_delay +
                          ecfg.epoch_ns();
  for (const auto& [sw, rep] : ep->reports) {
    for (const auto& er : rep.epochs) {
      EXPECT_LE(er.start, limit)
          << "sw" << sw << " leaked a post-overwrite epoch into the episode";
    }
    for (const auto& fr : rep.evicted) {
      EXPECT_LE(fr.epoch_start, limit);
    }
  }
  EXPECT_GT(rig.tb.faults->dma_stale(), 0u);
}

// ---------------------------------------------------------------------------
// Bounded caches (agents are long-lived; their per-flow state must not
// grow without bound).

TEST(BoundedStateTest, SwitchAgentDedupCacheStaysBounded) {
  Testbed::Options opts;
  opts.switch_agent_cfg.dedup_cache_cap = 4;
  Testbed tb(opts);
  device::Switch& sw = tb.switch_at(tb.ft.topo.switches()[0]);
  // 40 distinct same-ToR victims (one switch on path each), spaced past the
  // dedup interval so earlier entries are stale by the time the cap bites.
  // Only entries still inside the dedup interval are live dedup state; the
  // bound is cap + those.
  for (int i = 0; i < 40; ++i) {
    tb.simu.schedule(sim::us(600) * (i + 1), [&tb, &sw, i]() {
      net::Packet poll = net::make_polling(
          flow_tuple(tb.ft.hosts[0], tb.ft.hosts[1],
                     static_cast<std::uint16_t>(1000 + i)),
          static_cast<std::uint64_t>(i + 1), net::PollingFlag::kVictimPath);
      tb.switch_agent->on_polling(sw, poll, 0);
    });
  }
  tb.run_for(sim::ms(40));
  EXPECT_LE(tb.switch_agent->dedup_entries(),
            opts.switch_agent_cfg.dedup_cache_cap);
  EXPECT_GT(tb.switch_agent->dedup_entries(), 0u);
}

TEST(BoundedStateTest, BaselineCacheStaysBounded) {
  Testbed::Options opts;
  opts.agent_cfg.baseline_cache_cap = 3;
  Testbed tb(opts);
  for (int i = 0; i < 20; ++i) {
    const auto rtt = tb.agent->baseline_rtt(
        flow_tuple(tb.ft.hosts[0], tb.ft.hosts[15],
                   static_cast<std::uint16_t>(100 + i)));
    EXPECT_GT(rtt, 0);
    EXPECT_LE(tb.agent->baseline_cache_entries(),
              opts.agent_cfg.baseline_cache_cap);
  }
  // Re-query after eviction: recomputation must be value-identical.
  const auto t = flow_tuple(tb.ft.hosts[0], tb.ft.hosts[15], 100);
  const auto first = tb.agent->baseline_rtt(t);
  EXPECT_EQ(first, tb.agent->baseline_rtt(t));
}

TEST(BoundedStateTest, TriggerCacheStaysBounded) {
  // RTT jitter makes every flow trigger; with a tiny cap the trigger-dedup
  // map must prune expired entries instead of growing per victim.
  Testbed::Options opts;
  opts.agent_cfg.trigger_cache_cap = 4;
  Testbed tb(opts);
  fault::FaultPlan plan;
  plan.rtt_jitter = {1.0, 50.0};
  tb.install_faults(plan);
  // Victims appear one at a time, spaced past the dedup interval, so each
  // insert finds the previous entries expired. Concurrently-live victims
  // are irreducible dedup state and sit on top of the cap by design.
  for (int i = 0; i < 12; ++i) {
    tb.add_flow({tb.ft.hosts[static_cast<size_t>(i % 8)], tb.ft.hosts[15],
                 static_cast<std::uint16_t>(3000 + i), 4791, 100'000,
                 sim::us(500) * i + sim::us(5), false, 0});
  }
  tb.run_for(sim::ms(8));
  EXPECT_FALSE(tb.collector.episode_order().empty());
  EXPECT_LE(tb.agent->trigger_cache_entries(),
            opts.agent_cfg.trigger_cache_cap);
}

// ---------------------------------------------------------------------------
// Per-reason drop accounting

TEST(DropAccountingTest, UselessPollingPacketCountsAsPollingDrop) {
  Testbed tb;
  const net::NodeId sw = tb.ft.topo.switches()[0];
  net::Packet poll =
      net::make_polling(flow_tuple(tb.ft.hosts[0], tb.ft.hosts[1], 5), 1,
                        net::PollingFlag::kUseless);
  tb.switch_at(sw).receive(std::move(poll), 0);
  EXPECT_EQ(tb.net.polling_drops(), 1u);
  EXPECT_EQ(tb.net.data_drops(), 0u);
  EXPECT_EQ(tb.net.drops(), 1u) << "legacy aggregate spans all reasons";
}

// ---------------------------------------------------------------------------
// Fault-window sentinel + plan validation. Every spec shares the same
// window convention: [start, stop), stop < 0 => until the end of the run.
// A default-constructed blackout is therefore permanently active — the old
// `stop = 0` default made it silently inert, which is exactly the typo
// validate() now rejects elsewhere.

TEST(FaultPlanTest, DefaultBlackoutCoversWholeRun) {
  fault::FaultPlan plan;
  plan.blackouts.push_back({});  // all defaults: every agent, forever
  ASSERT_EQ(plan.validate(), "");
  fault::FaultInjector inj(plan);
  EXPECT_TRUE(inj.agent_down(0, 0));
  EXPECT_TRUE(inj.agent_down(17, sim::ms(500)));
}

TEST(FaultPlanTest, BlackoutWindowAndWildcardSemantics) {
  fault::FaultPlan plan;
  fault::AgentBlackout b;
  b.sw = 3;
  b.start = sim::us(100);
  b.stop = sim::us(200);
  plan.blackouts.push_back(b);
  fault::FaultInjector inj(plan);
  EXPECT_FALSE(inj.agent_down(3, sim::us(100) - 1));
  EXPECT_TRUE(inj.agent_down(3, sim::us(100)));
  EXPECT_TRUE(inj.agent_down(3, sim::us(200) - 1));
  EXPECT_FALSE(inj.agent_down(3, sim::us(200)))
      << "windows are half-open: [start, stop)";
  EXPECT_FALSE(inj.agent_down(4, sim::us(150)));
}

TEST(FaultPlanTest, ValidateRejectsBadSpecs) {
  const auto broken = [](auto mutate) {
    fault::FaultPlan p;
    mutate(p);
    return p.validate();
  };
  EXPECT_NE(broken([](fault::FaultPlan& p) {
              fault::PollFaultSpec s;
              s.start = sim::us(200);
              s.stop = sim::us(200);  // empty window
              p.poll_faults.push_back(s);
            }),
            "");
  EXPECT_NE(broken([](fault::FaultPlan& p) {
              fault::AgentBlackout b;
              b.start = sim::us(500);
              b.stop = sim::us(100);  // inverted window
              p.blackouts.push_back(b);
            }),
            "");
  EXPECT_NE(broken([](fault::FaultPlan& p) {
              fault::PollFaultSpec s;
              s.drop_prob = 0.8;
              s.delay_prob = 0.5;  // sum > 1
              p.poll_faults.push_back(s);
            }),
            "");
  EXPECT_NE(broken([](fault::FaultPlan& p) {
              fault::DmaFaultSpec s;
              s.fail_prob = -0.1;
              p.dma_faults.push_back(s);
            }),
            "");
  EXPECT_NE(broken([](fault::FaultPlan& p) {
              fault::LinkFlapSpec s;
              s.node_a = 3;  // half-bound: one real endpoint, one wildcard
              p.link_flaps.push_back(s);
            }),
            "");
  EXPECT_NE(broken([](fault::FaultPlan& p) {
              fault::LinkFlapSpec s;
              s.node_a = 3;
              s.node_b = 4;
              s.down_ns = sim::us(50);
              s.period_ns = sim::us(20);  // period shorter than down time
              p.link_flaps.push_back(s);
            }),
            "");
  EXPECT_NE(broken([](fault::FaultPlan& p) {
              fault::LinkFlapSpec s;
              s.node_a = 3;
              s.node_b = 4;
              s.jitter = 1.5;
              p.link_flaps.push_back(s);
            }),
            "");
  EXPECT_NE(broken([](fault::FaultPlan& p) {
              fault::PfcFrameFaultSpec s;
              s.loss_prob = 0.7;
              s.delay_prob = 0.7;  // sum > 1
              p.pfc_faults.push_back(s);
            }),
            "");

  // A fully-loaded but well-formed plan passes.
  fault::FaultPlan ok = fault::FaultPlan::uniform_poll_loss(0.2, 5);
  ok.blackouts.push_back({});
  fault::LinkFlapSpec flap;  // unbound placeholder: valid, inert
  ok.link_flaps.push_back(flap);
  ok.pfc_faults.push_back({});
  EXPECT_EQ(ok.validate(), "");
}

TEST(FaultPlanTest, ValidateRejectsOverlappingWindowsSameSite) {
  // Spec lookup is first-match-wins: a second spec covering the same site
  // in an overlapping window silently never fires. validate() rejects it.
  const auto check = [](auto mutate) {
    fault::FaultPlan p;
    mutate(p);
    return p.validate();
  };

  // Same switch, overlapping bounded windows.
  EXPECT_NE(check([](fault::FaultPlan& p) {
              fault::PollFaultSpec a, b;
              a.sw = 3;
              a.start = sim::us(100);
              a.stop = sim::us(300);
              b.sw = 3;
              b.start = sim::us(200);
              b.stop = sim::us(400);
              p.poll_faults = {a, b};
            }),
            "");
  // Wildcard (every switch) conflicts with any specific switch.
  EXPECT_NE(check([](fault::FaultPlan& p) {
              fault::DmaFaultSpec a, b;
              a.sw = net::kInvalidNode;
              b.sw = 7;
              b.start = sim::us(50);
              b.stop = sim::us(60);
              p.dma_faults = {a, b};
            }),
            "");
  // Unbounded stop (< 0) extends to the end of the run and overlaps any
  // later window on the same site.
  EXPECT_NE(check([](fault::FaultPlan& p) {
              fault::AgentBlackout a, b;
              a.sw = 2;
              a.start = 0;
              a.stop = -1;
              b.sw = 2;
              b.start = sim::ms(5);
              b.stop = sim::ms(6);
              p.blackouts = {a, b};
            }),
            "");
  // Two placeholder flaps bind to the same victim-path link.
  EXPECT_NE(check([](fault::FaultPlan& p) {
              fault::LinkFlapSpec a, b;
              a.stop = sim::us(500);
              b.start = sim::us(100);
              b.stop = sim::us(200);
              p.link_flaps = {a, b};
            }),
            "");
  // PFC: wildcard port aliases every port of the matching sender.
  EXPECT_NE(check([](fault::FaultPlan& p) {
              fault::PfcFrameFaultSpec a, b;
              a.sw = 4;
              a.port = net::kInvalidPort;
              b.sw = 4;
              b.port = 2;
              p.pfc_faults = {a, b};
            }),
            "");
  // Fleet classes use the same rule.
  EXPECT_NE(check([](fault::FaultPlan& p) {
              fault::HostPcieBottleneckSpec a, b;
              a.host = 11;
              b.host = 11;
              p.pcie_bottlenecks = {a, b};
            }),
            "");

  // Adjacent half-open windows ([a,b) then [b,c)) on the same site are
  // disjoint and pass.
  EXPECT_EQ(check([](fault::FaultPlan& p) {
              fault::PollFaultSpec a, b;
              a.sw = 3;
              a.start = sim::us(100);
              a.stop = sim::us(200);
              b.sw = 3;
              b.start = sim::us(200);
              b.stop = sim::us(300);
              p.poll_faults = {a, b};
            }),
            "");
  // Same window on different sites passes.
  EXPECT_EQ(check([](fault::FaultPlan& p) {
              fault::AgentBlackout a, b;
              a.sw = 2;
              b.sw = 3;
              p.blackouts = {a, b};
            }),
            "");
  EXPECT_EQ(check([](fault::FaultPlan& p) {
              fault::PfcFrameFaultSpec a, b;
              a.sw = 4;
              a.port = 1;
              b.sw = 4;
              b.port = 2;
              p.pfc_faults = {a, b};
            }),
            "");
  // Overlapping windows on different links pass.
  EXPECT_EQ(check([](fault::FaultPlan& p) {
              fault::DegradedLinkSpec a, b;
              a.node_a = 1;
              a.node_b = 2;
              a.ber = 1e-6;
              b.node_a = 2;
              b.node_b = 3;
              b.ber = 1e-6;
              p.degraded_links = {a, b};
            }),
            "");
}

TEST(FaultPlanTest, TestbedRejectsOverlappingPlan) {
  Testbed tb;
  fault::FaultPlan plan;
  fault::PollFaultSpec a, b;  // both wildcard, both whole-run
  a.drop_prob = 0.1;
  b.drop_prob = 0.2;
  plan.poll_faults = {a, b};
  EXPECT_THROW(tb.install_faults(plan), std::invalid_argument);
  EXPECT_EQ(tb.faults, nullptr);
}

TEST(FaultPlanTest, TestbedRejectsInvalidPlan) {
  Testbed tb;
  fault::FaultPlan plan;
  fault::AgentBlackout b;
  b.start = sim::us(300);
  b.stop = sim::us(100);
  plan.blackouts.push_back(b);
  EXPECT_THROW(tb.install_faults(plan), std::invalid_argument);
  EXPECT_EQ(tb.faults, nullptr) << "a rejected plan must install nothing";
}

// ---------------------------------------------------------------------------
// Link flaps: precomputed schedule semantics, seeded reproducibility, and
// the end-to-end black-hole behaviour (drops attributed, transmitters
// stalled, no routing reconvergence, flows recover via go-back-N/RTO).

TEST(LinkFlapTest, DeterministicTrainWindows) {
  fault::FaultPlan plan;
  fault::LinkFlapSpec s;
  s.node_a = 2;
  s.node_b = 9;
  s.start = sim::us(100);
  s.stop = sim::us(700);
  s.down_ns = sim::us(50);
  s.period_ns = sim::us(200);
  plan.link_flaps.push_back(s);
  fault::FaultInjector inj(plan);
  EXPECT_TRUE(inj.has_link_faults());
  // Jitter-free train: outages exactly [100,150) [300,350) [500,550) us.
  EXPECT_FALSE(inj.link_down(2, 9, sim::us(100) - 1));
  EXPECT_TRUE(inj.link_down(2, 9, sim::us(100)));
  EXPECT_TRUE(inj.link_down(9, 2, sim::us(150) - 1)) << "endpoint-symmetric";
  EXPECT_FALSE(inj.link_down(2, 9, sim::us(150)));
  EXPECT_TRUE(inj.link_down(2, 9, sim::us(320)));
  EXPECT_TRUE(inj.link_down(2, 9, sim::us(540)));
  EXPECT_FALSE(inj.link_down(2, 9, sim::us(900)));
  EXPECT_FALSE(inj.link_down(3, 9, sim::us(320))) << "other links untouched";
  EXPECT_EQ(inj.link_down_until(2, 9, sim::us(320)), sim::us(350));
  EXPECT_EQ(inj.link_down_until(9, 2, sim::us(501)), sim::us(550));
  EXPECT_EQ(inj.link_down_until(2, 9, sim::us(250)), sim::us(250))
      << "an up link reports `now` (nothing to wait for)";
  // A schedule is a plan, not impact: `fired` only flips when a packet is
  // dropped, a transmitter stalls, or a PFC frame is eaten.
  EXPECT_FALSE(inj.dataplane_fault_fired());
  EXPECT_EQ(inj.first_dataplane_fault(), -1);
}

TEST(LinkFlapTest, SeededTrainIsReproducible) {
  fault::FaultPlan plan;
  plan.seed = 77;
  fault::LinkFlapSpec s;
  s.node_a = 0;
  s.node_b = 1;
  s.down_ns = sim::us(20);
  s.period_ns = sim::us(100);
  s.jitter = 1.0;
  s.stop = sim::ms(2);
  plan.link_flaps.push_back(s);
  fault::FaultInjector a(plan);
  fault::FaultInjector b(plan);
  fault::FaultPlan other = plan;
  other.seed = 78;
  fault::FaultInjector c(other);
  bool diverged = false;
  for (sim::Time t = 0; t < sim::ms(2); t += sim::us(5)) {
    EXPECT_EQ(a.link_down(0, 1, t), b.link_down(0, 1, t)) << "t=" << t;
    diverged = diverged || (a.link_down(0, 1, t) != c.link_down(0, 1, t));
  }
  EXPECT_TRUE(diverged) << "a different seed must shift the jittered train";
}

TEST(LinkFlapTest, FlapBlackholesAndStallsWithoutModelDrops) {
  Testbed::Options opts;
  opts.install_hawkeye = false;
  Testbed tb(opts);
  const net::NodeId src = tb.ft.hosts[0];
  const net::NodeId dst = tb.ft.hosts[15];
  const net::FiveTuple t = flow_tuple(src, dst, 700);
  const auto path = tb.routing.switches_on_path(t);
  ASSERT_GE(path.size(), 2u);
  // One 300 us outage on a middle victim-path link, starting mid-flow.
  fault::FaultPlan plan;
  fault::LinkFlapSpec flap;
  flap.node_a = path[path.size() / 2 - 1];
  flap.node_b = path[path.size() / 2];
  flap.start = sim::us(100);
  flap.down_ns = sim::us(300);
  plan.link_flaps.push_back(flap);
  tb.install_faults(plan);

  tb.add_flow({src, dst, 700, 4791, 2'000'000, sim::us(1), true, 0});
  tb.run_for(sim::ms(12));

  const device::FlowStats* st = tb.stats_of(t);
  ASSERT_NE(st, nullptr);
  EXPECT_TRUE(st->complete())
      << "go-back-N + tail-loss RTO must recover once the link revives";
  // 2 MB at 100G is ~170 us clean; the outage must have cost real time.
  EXPECT_GT(st->fct(), sim::us(400));
  EXPECT_GT(tb.faults->link_drops(), 0u) << "in-flight packets were eaten";
  EXPECT_EQ(tb.net.link_down_drops(), tb.faults->link_drops());
  EXPECT_TRUE(tb.faults->dataplane_fault_fired());
  EXPECT_GE(tb.faults->first_dataplane_fault(), sim::us(100));
  EXPECT_LE(tb.faults->first_dataplane_fault(), sim::us(400));
  EXPECT_GE(tb.faults->last_dataplane_fault(),
            tb.faults->first_dataplane_fault());
  EXPECT_EQ(tb.net.data_drops(), 0u)
      << "flap losses are the experiment, never model (data/headroom) drops";
}

// ---------------------------------------------------------------------------
// PFC frame faults (Mittal et al., SIGCOMM'18: corrupted pause signaling).

TEST(PfcFrameFaultTest, LostResumeFreezesPeerUntilQuantaAgeOut) {
  const auto incast_max_fct = [](bool lose_resumes) {
    Testbed::Options opts;
    opts.install_hawkeye = false;
    Testbed tb(opts);
    if (lose_resumes) {
      fault::FaultPlan plan;
      fault::PfcFrameFaultSpec s;
      s.loss_prob = 1.0;
      s.affect_pause = false;  // PAUSEs fly, every RESUME is eaten
      plan.pfc_faults.push_back(s);
      tb.install_faults(plan);
    }
    const net::NodeId sink = tb.ft.hosts[0];
    for (int i = 0; i < 4; ++i) {
      tb.add_flow({tb.ft.hosts[static_cast<size_t>(4 + 3 * i)], sink,
                   static_cast<std::uint16_t>(100 + i), 4791, 500'000,
                   sim::us(1), false, 0});
    }
    tb.run_for(sim::ms(8));
    sim::Time max_fct = 0;
    for (const net::NodeId h : tb.ft.hosts) {
      for (const auto& st : tb.host(h).flow_stats()) {
        EXPECT_TRUE(st.complete())
            << "quanta age-out must eventually unfreeze every pause";
        max_fct = std::max(max_fct, st.fct());
      }
    }
    EXPECT_EQ(tb.net.data_drops(), 0u);
    if (lose_resumes) {
      EXPECT_GT(tb.faults->pfc_resume_lost(), 0u);
      EXPECT_EQ(tb.faults->pfc_pause_lost(), 0u);
      EXPECT_TRUE(tb.faults->dataplane_fault_fired());
    }
    return max_fct;
  };
  const sim::Time clean = incast_max_fct(false);
  const sim::Time faulty = incast_max_fct(true);
  // Without RESUMEs the upstream stays frozen for the full advertised
  // pause (~335 us at 100G) instead of resuming at Xon — visibly slower.
  EXPECT_GT(faulty, clean);
}

TEST(PfcFrameFaultTest, LostPauseOverflowIsAttributedNotHeadroom) {
  Testbed::Options opts;
  opts.install_hawkeye = false;
  // Tight shared buffer: each ingress crosses Xoff (64K) well before the
  // switch total (512K), so a PAUSE is always attempted before overflow.
  opts.switch_cfg.buffer_bytes = 512 * 1024;
  Testbed tb(opts);
  fault::FaultPlan plan;
  fault::PfcFrameFaultSpec s;
  s.loss_prob = 1.0;
  s.affect_resume = false;  // RESUMEs fly, every PAUSE is eaten
  plan.pfc_faults.push_back(s);
  tb.install_faults(plan);

  const net::NodeId sink = tb.ft.hosts[0];
  for (int i = 0; i < 4; ++i) {
    tb.add_flow({tb.ft.hosts[static_cast<size_t>(4 + 3 * i)], sink,
                 static_cast<std::uint16_t>(100 + i), 4791, 500'000,
                 sim::us(1), false, 0});
  }
  tb.run_for(sim::ms(20));

  EXPECT_GT(tb.faults->pfc_pause_lost(), 0u);
  EXPECT_GT(tb.net.pfc_loss_drops(), 0u)
      << "unheard PAUSEs must overflow the ingress";
  EXPECT_EQ(tb.net.drops(device::DropReason::kHeadroom), 0u)
      << "overflow downstream of an eaten PAUSE is attributed to the "
         "injection, not misfiled as a headroom bug";
  EXPECT_EQ(tb.net.data_drops(), 0u);
  EXPECT_TRUE(tb.faults->dataplane_fault_fired());
  for (const net::NodeId h : tb.ft.hosts) {
    for (const auto& st : tb.host(h).flow_stats()) {
      EXPECT_TRUE(st.complete()) << "go-back-N recovers the induced losses";
    }
  }
}

TEST(PfcFrameFaultTest, DelayedFramesStillArrive) {
  Testbed::Options opts;
  opts.install_hawkeye = false;
  Testbed tb(opts);
  fault::FaultPlan plan;
  fault::PfcFrameFaultSpec s;
  s.delay_prob = 1.0;
  s.delay_ns = sim::us(20);
  plan.pfc_faults.push_back(s);
  tb.install_faults(plan);
  const net::NodeId sink = tb.ft.hosts[0];
  for (int i = 0; i < 4; ++i) {
    tb.add_flow({tb.ft.hosts[static_cast<size_t>(4 + 3 * i)], sink,
                 static_cast<std::uint16_t>(100 + i), 4791, 500'000,
                 sim::us(1), false, 0});
  }
  tb.run_for(sim::ms(8));
  EXPECT_GT(tb.faults->pfc_frames_delayed(), 0u);
  EXPECT_EQ(tb.faults->pfc_pause_lost() + tb.faults->pfc_resume_lost(), 0u);
  // 20 us of extra pause latency overruns Xoff by ~250 KB — far inside the
  // default 32 MB shared buffer, so the fabric stays lossless.
  EXPECT_EQ(tb.net.data_drops(), 0u);
  for (const net::NodeId h : tb.ft.hosts) {
    for (const auto& st : tb.host(h).flow_stats()) {
      EXPECT_TRUE(st.complete());
    }
  }
}

// ---------------------------------------------------------------------------
// Targeted re-poll (Fig 9 metric): healing rounds must pay for the gap,
// not re-traverse the already-covered prefix of the victim path.

TEST(TargetedRepollTest, TargetedRepollCutsPollingBytes) {
  const auto polling_bytes_with = [](bool targeted) {
    Testbed::Options opts;
    opts.agent_cfg.max_repolls = 2;
    opts.agent_cfg.targeted_repoll = targeted;
    IncastRig rig(opts);
    // The LAST victim-path switch is blacked out forever: coverage can
    // never complete, so every retry round fires and the budget ends in a
    // degraded episode either way. Only the re-poll cost differs.
    const auto path = rig.tb.routing.switches_on_path(rig.victim);
    fault::FaultPlan plan;
    fault::AgentBlackout down;
    down.sw = path.back();
    plan.blackouts.push_back(down);  // stop = -1: whole run
    rig.tb.install_faults(plan);
    rig.tb.run_for(sim::ms(6));
    const Episode* ep = rig.victim_episode();
    EXPECT_NE(ep, nullptr);
    if (ep == nullptr) return std::int64_t{0};
    EXPECT_TRUE(ep->degraded);
    EXPECT_EQ(ep->repolls, 2u);
    EXPECT_LT(ep->coverage(), 1.0);
    return ep->polling_bytes;
  };
  const std::int64_t full = polling_bytes_with(false);
  const std::int64_t targeted = polling_bytes_with(true);
  ASSERT_GT(full, 0);
  ASSERT_GT(targeted, 0);
  EXPECT_LT(targeted, full)
      << "a re-poll injected at the first silent hop must cost fewer "
         "in-band bytes than resending the whole victim-path probe";
}

TEST(TargetedRepollTest, CollectMissingOnlySnapshotsUncoveredExpectedHops) {
  Testbed tb;
  const net::NodeId a = tb.ft.topo.switches()[0];
  const net::NodeId b = tb.ft.topo.switches()[1];
  Episode& ep = tb.collector.open_episode(42, flow_tuple(0, 1, 9), 0);
  ep.expected_switches = {a, b};
  tb.collector.collect_from(tb.switch_at(a), 42, tb.simu.now());
  tb.run_for(sim::us(300));  // flush the asynchronous snapshot
  ASSERT_TRUE(ep.has_report(a));
  const std::uint64_t before = tb.collector.snapshot_requests();
  tb.collector.collect_missing(42, tb.simu.now());
  EXPECT_EQ(tb.collector.snapshot_requests(), before + 1)
      << "only the one uncovered expected switch may be re-read";
  tb.run_for(sim::ms(1));
  EXPECT_TRUE(ep.has_report(b));
}

TEST(TargetedRepollTest, CollectMissingWithoutExpectationIsNoOp) {
  Testbed tb;
  tb.collector.open_episode(43, flow_tuple(0, 1, 9), 0);
  const std::uint64_t before = tb.collector.snapshot_requests();
  tb.collector.collect_missing(43, tb.simu.now());
  EXPECT_EQ(tb.collector.snapshot_requests(), before)
      << "no expectation means nothing is missing — a re-poll round must "
         "not degenerate into a full-fabric dump";
}

// ---------------------------------------------------------------------------
// Routing reconvergence under link flaps (PR 4).

TEST(ReconvergenceTest, HolddownWithdrawsAndRestoresPorts) {
  Testbed::Options opts;
  opts.install_hawkeye = false;
  Testbed tb(opts);
  const net::NodeId src = tb.ft.hosts[0];
  const net::NodeId dst = tb.ft.hosts[15];
  const net::FiveTuple t = flow_tuple(src, dst, 700);
  const auto sws = tb.routing.switches_on_path(t);
  ASSERT_EQ(sws.size(), 5u);  // edge-agg-core-agg-edge
  const net::NodeId agg = sws[1];
  const net::NodeId core = sws[2];
  const net::PortId up = tb.ft.topo.port_towards(agg, core);

  // One [100, 400) us outage with a 50 us hold-down: the agg must withdraw
  // its dead uplink at 150 us and restore it at 450 us.
  fault::FaultPlan plan;
  fault::LinkFlapSpec flap;
  flap.node_a = agg;
  flap.node_b = core;
  flap.start = sim::us(100);
  flap.down_ns = sim::us(300);
  flap.holddown_ns = sim::us(50);
  plan.link_flaps.push_back(flap);
  tb.install_faults(plan);
  ASSERT_TRUE(tb.faults->reconvergence_enabled());

  tb.run_for(sim::us(200));
  EXPECT_TRUE(tb.routing.port_disabled(agg, up)) << "withdrawn after hold-down";
  const auto& mid = tb.routing.candidates(agg, dst);
  EXPECT_TRUE(std::find(mid.begin(), mid.end(), up) == mid.end());
  EXPECT_GT(tb.routing.epoch(), 0u);

  tb.run_for(sim::us(600));  // past link-up (400 us) + restore hold-down
  EXPECT_FALSE(tb.routing.port_disabled(agg, up)) << "restored after heal";
  const auto& after = tb.routing.candidates(agg, dst);
  EXPECT_TRUE(std::find(after.begin(), after.end(), up) != after.end());
}

TEST(ReconvergenceTest, OutageShorterThanHolddownNeverReconverges) {
  Testbed::Options opts;
  opts.install_hawkeye = false;
  Testbed tb(opts);
  const net::FiveTuple t = flow_tuple(tb.ft.hosts[0], tb.ft.hosts[15], 700);
  const auto sws = tb.routing.switches_on_path(t);
  fault::FaultPlan plan;
  fault::LinkFlapSpec flap;
  flap.node_a = sws[1];
  flap.node_b = sws[2];
  flap.start = sim::us(100);
  flap.down_ns = sim::us(30);
  flap.holddown_ns = sim::us(50);  // dampening filter: 30 us outage < 50 us
  plan.link_flaps.push_back(flap);
  tb.install_faults(plan);
  tb.run_for(sim::ms(1));
  EXPECT_EQ(tb.routing.epoch(), 0u) << "micro-flap must not churn routing";
}

TEST(ReconvergenceTest, ZeroHolddownKeepsRoutingFrozen) {
  Testbed::Options opts;
  opts.install_hawkeye = false;
  Testbed tb(opts);
  const net::FiveTuple t = flow_tuple(tb.ft.hosts[0], tb.ft.hosts[15], 700);
  const auto sws = tb.routing.switches_on_path(t);
  fault::FaultPlan plan;
  fault::LinkFlapSpec flap;  // default holddown_ns = 0 => PR 3 behaviour
  flap.node_a = sws[1];
  flap.node_b = sws[2];
  flap.start = sim::us(100);
  flap.down_ns = sim::us(300);
  plan.link_flaps.push_back(flap);
  tb.install_faults(plan);
  EXPECT_FALSE(tb.faults->reconvergence_enabled());
  tb.add_flow({tb.ft.hosts[0], tb.ft.hosts[15], 700, 4791, 2'000'000,
               sim::us(1), true, 0});
  tb.run_for(sim::ms(12));
  EXPECT_EQ(tb.routing.epoch(), 0u) << "no hold-down => no routing events";
}

TEST(ReconvergenceTest, ReroutedFlowFinishesFasterThanFrozen) {
  // The same 1 ms outage on the same mid-path link, frozen vs reconverging:
  // the frozen fabric stalls the flow until the link heals, the
  // reconverging one reroutes it after the 50 us hold-down.
  //
  // The ACK stream hashes on the REVERSED tuple, whose byte multiset equals
  // the forward tuple's — so the FNV low bit (and hence every binary ECMP
  // choice) mirrors the data path exactly, and the ACKs would cross the
  // flapped link from the far side, where the last-candidate guard keeps
  // the black-holed route. An override pins the reverse path through the
  // OTHER core so the measurement isolates forward-path reconvergence;
  // the override is installed identically in both modes.
  const auto fct_with_holddown = [](sim::Time holddown) {
    Testbed::Options opts;
    opts.install_hawkeye = false;
    Testbed tb(opts);
    const net::NodeId src = tb.ft.hosts[0];
    const net::NodeId dst = tb.ft.hosts[15];
    const net::FiveTuple t = flow_tuple(src, dst, 700);
    const auto sws = tb.routing.switches_on_path(t);
    EXPECT_EQ(sws.size(), 5u);  // edge-agg-core-agg-edge
    net::NodeId alt_core = -1;
    for (const net::NodeId c : tb.ft.cores) {
      if (c != sws[2] && tb.ft.topo.port_towards(sws[3], c) != net::kInvalidPort) {
        alt_core = c;
        break;
      }
    }
    EXPECT_NE(alt_core, -1);
    tb.routing.add_override(sws[3], src,
                            tb.ft.topo.port_towards(sws[3], alt_core));
    fault::FaultPlan plan;
    fault::LinkFlapSpec flap;
    flap.node_a = sws[1];
    flap.node_b = sws[2];
    flap.start = sim::us(100);
    flap.down_ns = sim::ms(1);
    flap.holddown_ns = holddown;
    plan.link_flaps.push_back(flap);
    tb.install_faults(plan);
    tb.add_flow({src, dst, 700, 4791, 2'000'000, sim::us(1), true, 0});
    tb.run_for(sim::ms(12));
    const device::FlowStats* st = tb.stats_of(t);
    EXPECT_NE(st, nullptr);
    EXPECT_TRUE(st->complete());
    return st->fct();
  };
  const sim::Time frozen = fct_with_holddown(0);
  const sim::Time reconverged = fct_with_holddown(sim::us(50));
  EXPECT_GT(frozen, sim::ms(1)) << "frozen routing waits out the outage";
  EXPECT_LT(reconverged, frozen)
      << "reconvergence must beat waiting for the link to heal";
  EXPECT_LT(reconverged, sim::ms(1));
}

TEST(ReconvergenceTest, FaultFreeRunsStayByteIdenticalWithKnobsPresent) {
  // The reconvergence machinery must be inert without faults: two fault-free
  // runs (and one from a build where the knobs were never touched — proxied
  // by default RunConfig) execute the same event count.
  eval::RunConfig cfg;
  cfg.scenario = diagnosis::AnomalyType::kNormalContention;
  cfg.seed = 7;
  const eval::RunResult a = eval::run_one(cfg);
  const eval::RunResult b = eval::run_one(cfg);
  EXPECT_EQ(a.sim_events, b.sim_events);
  EXPECT_EQ(a.routing_epochs, 0u);
  EXPECT_FALSE(a.path_churned);
  EXPECT_FALSE(a.fault_on_victim_path);
}

// ---------------------------------------------------------------------------
// Victim-path-aware fault attribution (PR 4).

TEST(FaultAttributionTest, FlapHitVictimPathMatchesAdjacency) {
  Testbed::Options opts;
  opts.install_hawkeye = false;
  Testbed tb(opts);
  const net::NodeId src = tb.ft.hosts[0];
  const net::NodeId dst = tb.ft.hosts[15];
  const net::FiveTuple t = flow_tuple(src, dst, 700);
  const auto path = tb.routing.path_of(t);
  const auto sws = tb.routing.switches_on_path(t);
  ASSERT_EQ(sws.size(), 5u);

  // On-path links: host uplink, a middle hop, and the final hop into dst.
  EXPECT_TRUE(eval::flap_hit_victim_path({{src, sws[0]}}, path, dst));
  EXPECT_TRUE(eval::flap_hit_victim_path({{sws[2], sws[1]}}, path, dst))
      << "endpoint order must not matter";
  EXPECT_TRUE(eval::flap_hit_victim_path({{sws[4], dst}}, path, dst));

  // Off-path: a link in a pod the victim never crosses.
  const net::NodeId off_host = tb.ft.hosts[7];
  const net::NodeId off_tor = tb.ft.topo.peer(off_host, 0).node;
  EXPECT_FALSE(eval::flap_hit_victim_path({{off_host, off_tor}}, path, dst));
  // Two on-path SWITCHES that are not adjacent on the path: not a path link.
  EXPECT_FALSE(eval::flap_hit_victim_path({{sws[0], sws[2]}}, path, dst));
  EXPECT_FALSE(eval::flap_hit_victim_path({}, path, dst));
}

TEST(FaultAttributionTest, OffVictimPathFlapIsNotAttributed) {
  // A flap that fires — and genuinely eats traffic — on a link the victim
  // never crosses must NOT excuse a wrong verdict: fault_on_victim_path
  // stays false and the bench scores the run as a real misclassification.
  eval::RunConfig cfg;
  cfg.scenario = diagnosis::AnomalyType::kMicroBurstIncast;
  cfg.seed = 3;
  // Bind the flap explicitly to a host uplink in a far corner of the
  // fabric, then steer a crafted flow over it so the flap bites.
  const net::FatTree probe = net::build_fat_tree(4);
  net::Routing probe_routing(probe.topo);
  sim::Rng rng(cfg.seed);
  workload::ScenarioSpec spec =
      workload::make_scenario(cfg.scenario, probe, probe_routing, rng);
  // The incast victim never touches hosts[10]'s uplink unless it IS one of
  // the crafted endpoints; skip the seed if so (deterministic guard).
  const net::NodeId far_host = probe.hosts[10];
  ASSERT_NE(net::Topology::node_of_ip(spec.victim.src_ip), far_host);
  ASSERT_NE(net::Topology::node_of_ip(spec.victim.dst_ip), far_host);

  fault::LinkFlapSpec flap;
  flap.node_a = far_host;
  flap.node_b = probe.topo.peer(far_host, 0).node;
  flap.start = sim::us(50);
  flap.down_ns = sim::ms(8);  // most of the run: background flows WILL hit it
  cfg.faults.link_flaps.push_back(flap);
  cfg.faults.seed = 5;
  cfg.background_load = 0.3;  // enough churn that the far uplink carries load

  const eval::RunResult r = eval::run_one(cfg);
  ASSERT_GT(r.link_down_drops, 0u)
      << "the far host streams background/crafted traffic over its uplink "
         "during the outage; if this fires the guard below is meaningful";
  EXPECT_TRUE(r.dataplane_fault_fired);
  EXPECT_FALSE(r.fault_on_victim_path)
      << "an off-path flap must not be attributable";
}

TEST(FaultAttributionTest, VictimPathFlapIsAttributed) {
  // The default placeholder binding targets the middle victim-path link, so
  // when it bites, fault_on_victim_path must be set.
  eval::RunConfig cfg;
  cfg.scenario = diagnosis::AnomalyType::kMicroBurstIncast;
  cfg.seed = 1;
  fault::LinkFlapSpec flap;  // unbound => runner binds to victim path
  flap.start = sim::us(100);
  flap.down_ns = sim::us(100);
  flap.period_ns = sim::us(400);
  flap.jitter = 0.5;
  cfg.faults.link_flaps.push_back(flap);
  cfg.faults.seed = 5;
  const eval::RunResult r = eval::run_one(cfg);
  ASSERT_TRUE(r.dataplane_fault_fired);
  EXPECT_TRUE(r.fault_on_victim_path);
}

TEST(DropAccountingTest, NonHawkeyeSwitchDropsPollingAsPolling) {
  Testbed::Options opts;
  opts.install_hawkeye = false;
  Testbed tb(opts);
  const net::NodeId sw = tb.ft.topo.switches()[0];
  net::Packet poll =
      net::make_polling(flow_tuple(tb.ft.hosts[0], tb.ft.hosts[1], 5), 1,
                        net::PollingFlag::kVictimPath);
  tb.switch_at(sw).receive(std::move(poll), 0);
  EXPECT_EQ(tb.net.polling_drops(), 1u);
  EXPECT_EQ(tb.net.data_drops(), 0u);
}

}  // namespace
}  // namespace hawkeye::collect
