// Shard-boundary edge cases (PR 6).
//
// The shard-identity suite pins whole-pipeline bitwise equality; these
// tests isolate the three boundary mechanisms that make it hold:
//
//   1. zero-delay same-time cross-shard sends — legal from every exclusive
//      context (setup and control-shard events), where the canonical
//      class-0 key is assigned directly; and the minimum legal parallel
//      case, a cross-shard send landing exactly AT the lookahead horizon
//      (the round drains strictly below the horizon, so a boundary arrival
//      must fall into the next round, never be lost or run early);
//   2. PFC pause/resume frames crossing a pod (= shard) boundary inside
//      one lookahead window — the pause cascade must freeze and release
//      identically whether its hops are shard-local or mailbox-merged;
//   3. on_port_withdrawn when the withdrawn port's peer lives on another
//      shard — the reconvergence withdraw is a control-shard event, and
//      its stalled-FIFO flush (kLinkDown drops, buffer rewind, PFC
//      release) must produce the 1-shard result even though the flushed
//      link's two endpoints live on different calendars.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>
#include <vector>

#include "eval/testbed.hpp"
#include "fault/fault.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"
#include "workload/scenario.hpp"

namespace hawkeye::eval {
namespace {

// ---------------------------------------------------------------------------
// 1a. Zero-delay same-time cross-shard sends from an exclusive context.

TEST(ShardEdgeTest, ZeroDelaySameTimeCrossShardSendsFromControlEvent) {
  // A control-shard event at t=50 fans out zero-delay sends to both device
  // shards at the SAME timestamp. Control events force their lookahead
  // window sequential, so the children execute inside the window in
  // canonical (parent rank, child index) order — the unsharded order.
  auto drive = [](sim::Simulator& simu, std::vector<int>& order) {
    const int ctl = simu.control_shard();
    simu.with_setup_shard(ctl, [&] {
      simu.schedule_at(50, [&order, &simu] {
        order.push_back(0);
        simu.schedule_on(0, 0, [&order] { order.push_back(1); });
        simu.schedule_on(1, 0, [&order] { order.push_back(2); });
        simu.schedule_on(0, 0, [&order] { order.push_back(3); });
      });
    });
    simu.run();
  };

  std::vector<int> unsharded_order;
  {
    sim::Simulator simu;
    drive(simu, unsharded_order);
  }
  std::vector<int> sharded_order;
  {
    sim::Simulator simu;
    simu.configure_shards(2, 100);
    drive(simu, sharded_order);
    EXPECT_EQ(simu.now(), 50);
  }
  EXPECT_EQ(unsharded_order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(sharded_order, unsharded_order);
}

// ---------------------------------------------------------------------------
// 1b. Same-time cross-shard setup sends: children of the pseudo-root at one
// timestamp spread over every shard still execute in setup-call order as
// far as each shard can observe.

TEST(ShardEdgeTest, SameTimeSetupEventsKeepPerShardCallOrder) {
  // Same-time events on DIFFERENT shards run concurrently (they commute by
  // construction — neither can observe the other inside a round), so the
  // observable contract is per-shard: each shard's stream must equal the
  // unsharded global order projected onto that shard.
  constexpr int kEvents = 8;
  auto drive = [](sim::Simulator& simu, std::vector<int>* per_shard) {
    for (int i = 0; i < kEvents; ++i) {
      const int shard = i % 2;
      simu.with_setup_shard(shard, [&] {
        simu.schedule_at(100, [&per_shard, shard, i] {
          per_shard[shard].push_back(i);
        });
      });
    }
    simu.run();
  };

  std::vector<int> unsharded[2];
  {
    sim::Simulator simu;
    drive(simu, unsharded);
    // Unsharded: one calendar, so the projection is just call order.
    EXPECT_EQ(unsharded[0], (std::vector<int>{0, 2, 4, 6}));
    EXPECT_EQ(unsharded[1], (std::vector<int>{1, 3, 5, 7}));
  }
  std::vector<int> sharded[2];
  {
    sim::Simulator simu;
    simu.configure_shards(2, 100);
    drive(simu, sharded);
  }
  EXPECT_EQ(sharded[0], unsharded[0]);
  EXPECT_EQ(sharded[1], unsharded[1]);
}

// ---------------------------------------------------------------------------
// 1c. A parallel-round cross-shard send landing exactly AT the horizon.

TEST(ShardEdgeTest, CrossShardSendAtExactLookaheadHorizonIsNextRound) {
  // Rounds drain strictly below the horizon (head().at < cap), so an
  // arrival at exactly tmin + lookahead — the minimum legal cross-shard
  // distance — belongs to the NEXT round, ordered after the target shard's
  // own pre-round events at that timestamp (their parent, the setup
  // pseudo-root, ranks below every runtime parent).
  constexpr sim::Time kLookahead = 100;
  auto drive = [](sim::Simulator& simu, std::vector<std::string>& log) {
    simu.with_setup_shard(0, [&] {
      simu.schedule_at(0, [&log, &simu] {
        log.push_back("P@" + std::to_string(simu.now()));
        // Exactly one lookahead ahead, on the other shard.
        simu.schedule_on(1, kLookahead, [&log, &simu] {
          log.push_back("Q@" + std::to_string(simu.now()));
        });
      });
    });
    simu.with_setup_shard(1, [&] {
      simu.schedule_at(kLookahead, [&log, &simu] {
        log.push_back("R@" + std::to_string(simu.now()));
      });
    });
    simu.run();
  };

  std::vector<std::string> unsharded;
  {
    sim::Simulator simu;
    drive(simu, unsharded);
  }
  std::vector<std::string> sharded;
  {
    sim::Simulator simu;
    simu.configure_shards(2, kLookahead);
    drive(simu, sharded);
    EXPECT_EQ(simu.executed_events(), 3u);
  }
  // P alone in round one; R (setup child) before Q (runtime child) at
  // t=100 — and every event is on one thread at a time, so one log vector
  // is safe: rounds are ordered by the pool barrier, and P/R/Q execute in
  // three distinct rounds/windows.
  EXPECT_EQ(unsharded,
            (std::vector<std::string>{"P@0", "R@100", "Q@100"}));
  EXPECT_EQ(sharded, unsharded);
}

// ---------------------------------------------------------------------------
// Device-level fixtures.

net::FiveTuple flow_tuple(net::NodeId src, net::NodeId dst,
                          std::uint16_t sp) {
  net::FiveTuple t;
  t.src_ip = net::Topology::ip_of(src);
  t.dst_ip = net::Topology::ip_of(dst);
  t.src_port = sp;
  t.dst_port = 4791;
  return t;
}

/// Sort key that totally orders a PFC trace: cross-lane same-time order is
/// lane order (not meaningful), so multiset equality under a total key is
/// the right cross-shard-count comparison.
bool pfc_less(const device::PfcEvent& a, const device::PfcEvent& b) {
  return std::tie(a.t, a.node, a.port, a.quanta, a.host_injected) <
         std::tie(b.t, b.node, b.port, b.quanta, b.host_injected);
}

std::vector<device::PfcEvent> sorted_pfc(const device::Network& net) {
  std::vector<device::PfcEvent> tr = net.pfc_trace();
  std::sort(tr.begin(), tr.end(), pfc_less);
  return tr;
}

bool pfc_eq(const std::vector<device::PfcEvent>& a,
            const std::vector<device::PfcEvent>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tie(a[i].t, a[i].node, a[i].port, a[i].quanta,
                 a[i].host_injected) !=
        std::tie(b[i].t, b[i].node, b[i].port, b[i].quanta,
                 b[i].host_injected)) {
      return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// 2. PFC pause/resume crossing a shard boundary inside one lookahead
// window.

TEST(ShardEdgeTest, PfcPauseResumeAcrossShardBoundaryMatchesOneShard) {
  // The PFC-storm scenario drives a pause cascade up through edge -> agg ->
  // core; with the pod partition, the agg->core (and core->agg) PAUSE and
  // RESUME frames are cross-shard sends whose one-hop latency equals the
  // lookahead — i.e. they land in the very next round, the tightest legal
  // window. The cascade must freeze and release bit-identically.
  auto run = [](int shards) {
    Testbed::Options opts;
    opts.shards = shards;
    Testbed tb(opts);
    sim::Rng rng(5);
    tb.install(workload::make_scenario(diagnosis::AnomalyType::kPfcStorm,
                                       tb.ft, tb.routing, rng));
    tb.run_for(sim::ms(5));
    return std::tuple<std::vector<device::PfcEvent>, std::uint64_t,
                      std::uint64_t>{sorted_pfc(tb.net),
                                     tb.simu.executed_events(),
                                     tb.net.drops()};
  };

  const auto [trace1, events1, drops1] = run(1);
  const auto [trace4, events4, drops4] = run(4);

  EXPECT_EQ(events4, events1);
  EXPECT_EQ(drops4, drops1);
  ASSERT_FALSE(trace4.empty());
  EXPECT_TRUE(pfc_eq(trace4, trace1))
      << "PFC trace multiset diverged between 1 and 4 shards";

  // The edge actually fired: at least one PAUSE and one RESUME whose
  // receiving peer lives on a different shard than the sender.
  Testbed::Options opts;
  opts.shards = 4;
  Testbed probe(opts);
  bool cross_pause = false, cross_resume = false;
  for (const device::PfcEvent& ev : trace4) {
    const net::PortRef peer = probe.ft.topo.peer(ev.node, ev.port);
    if (peer.node == net::kInvalidNode) continue;
    if (probe.net.shard_of(ev.node) != probe.net.shard_of(peer.node)) {
      (ev.quanta > 0 ? cross_pause : cross_resume) = true;
    }
  }
  EXPECT_TRUE(cross_pause) << "no PAUSE frame ever crossed a shard boundary";
  EXPECT_TRUE(cross_resume) << "no RESUME frame ever crossed a shard boundary";
}

// ---------------------------------------------------------------------------
// 3. on_port_withdrawn flush when the withdrawn port's peer is on another
// shard.

TEST(ShardEdgeTest, PortWithdrawFlushAcrossShardBoundaryMatchesOneShard) {
  // Pin a reconverging flap to an agg<->core link on an active cross-pod
  // flow's path whose endpoints live on different shards, sized so the
  // link is still down when the hold-down expires: the withdraw event
  // (control shard) must flush the dead port's stalled FIFOs — kLinkDown
  // drops, buffer rewind, PFC release — across the boundary, and the whole
  // run must stay bitwise identical to the single-calendar execution.
  struct Probe {
    std::uint64_t events, drops, link_down, epoch;
    std::vector<device::PfcEvent> trace;
  };
  // Resolve the flapped link once, up front, so both runs pin the same
  // physical link: the victim's agg<->core hop whose endpoints land on
  // different shards under the 2-shard pod map.
  net::NodeId flap_a = net::kInvalidNode, flap_b = net::kInvalidNode;
  {
    Testbed::Options popts;
    popts.shards = 2;
    Testbed probe(popts);
    const net::FiveTuple victim =
        flow_tuple(probe.ft.hosts.front(), probe.ft.hosts.back(), 900);
    for (const net::PortRef& hop : probe.routing.path_of(victim)) {
      const net::PortRef peer = probe.ft.topo.peer(hop);
      if (peer.node == net::kInvalidNode) continue;
      const bool agg_core =
          (std::count(probe.ft.aggs.begin(), probe.ft.aggs.end(),
                      hop.node) > 0 &&
           std::count(probe.ft.cores.begin(), probe.ft.cores.end(),
                      peer.node) > 0) ||
          (std::count(probe.ft.cores.begin(), probe.ft.cores.end(),
                      hop.node) > 0 &&
           std::count(probe.ft.aggs.begin(), probe.ft.aggs.end(),
                      peer.node) > 0);
      if (agg_core &&
          probe.net.shard_of(hop.node) != probe.net.shard_of(peer.node)) {
        flap_a = hop.node;
        flap_b = peer.node;
        break;
      }
    }
    ASSERT_NE(flap_a, net::kInvalidNode)
        << "no cross-shard agg<->core hop on the victim path";
  }

  auto run = [&](int shards) {
    Testbed::Options opts;
    opts.shards = shards;
    Testbed tb(opts);
    const net::NodeId src = tb.ft.hosts.front();
    const net::NodeId dst = tb.ft.hosts.back();  // different pod at k=4

    tb.add_flow({src, dst, 900, 4791, 20'000'000, sim::us(1), true, 0});

    fault::LinkFlapSpec flap;
    flap.node_a = flap_a;
    flap.node_b = flap_b;
    flap.start = sim::us(200);
    flap.down_ns = sim::us(400);  // still down when the hold-down expires
    flap.holddown_ns = sim::us(50);
    fault::FaultPlan plan;
    plan.link_flaps.push_back(flap);
    tb.install_faults(plan);

    tb.run_for(sim::ms(2));
    return Probe{tb.simu.executed_events(), tb.net.drops(),
                 tb.net.drops(device::DropReason::kLinkDown),
                 tb.routing.epoch(), sorted_pfc(tb.net)};
  };

  const Probe one = run(1);
  const Probe two = run(2);

  // The edge fired: reconvergence withdrew (and later restored) the dead
  // port, and the flush blackholed the packets stalled on it.
  EXPECT_GE(one.epoch, 1u) << "hold-down never withdrew the flapped port";
  EXPECT_GT(one.link_down, 0u) << "flush never dropped a stalled packet";

  EXPECT_EQ(two.events, one.events);
  EXPECT_EQ(two.drops, one.drops);
  EXPECT_EQ(two.link_down, one.link_down);
  EXPECT_EQ(two.epoch, one.epoch);
  EXPECT_TRUE(pfc_eq(two.trace, one.trace))
      << "PFC trace multiset diverged between 1 and 2 shards";
}

}  // namespace
}  // namespace hawkeye::eval
