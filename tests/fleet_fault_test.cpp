// Fleet-ops fault classes (PR 7): per-class tests for the silent fleet
// failure modes — degraded (CRC-erroring) links, mis-negotiated link
// speeds, host-side PCIe drain bottlenecks, oversubscribed down-link
// tiers — plus the fabric-scale detection calibration.
//
// Three layers:
//  - plan layer: FaultPlan validation accepts well-formed fleet specs and
//    rejects the typos that would otherwise silently never fire;
//  - signature layer: refine_fleet_verdict's Table-2 decision rules, each
//    row driven directly with synthetic fleet-health counters over a real
//    topology/routing pair;
//  - run layer: every class end-to-end through eval::run_one — the
//    injected defect leaves its truth counters, the verdict names the
//    class (or is explicitly degraded), and the whole trace is
//    deterministic under a fixed seed.
#include <gtest/gtest.h>

#include <stdexcept>

#include "collect/detection_agent.hpp"
#include "diagnosis/diagnosis.hpp"
#include "eval/canonical.hpp"
#include "eval/runner.hpp"
#include "eval/testbed.hpp"
#include "fault/fault.hpp"
#include "net/topology.hpp"
#include "provenance/builder.hpp"

namespace hawkeye {
namespace {

using diagnosis::AnomalyType;
using eval::Testbed;

net::FiveTuple flow_tuple(net::NodeId src, net::NodeId dst,
                          std::uint16_t sp) {
  net::FiveTuple t;
  t.src_ip = net::Topology::ip_of(src);
  t.dst_ip = net::Topology::ip_of(dst);
  t.src_port = sp;
  t.dst_port = 4791;
  return t;
}

// ---------------------------------------------------------------------------
// Plan layer

TEST(FleetPlanTest, FleetSpecsEnableThePlan) {
  fault::FaultPlan plan;
  EXPECT_FALSE(plan.enabled());
  EXPECT_FALSE(plan.fleet_enabled());
  fault::DegradedLinkSpec bad_cable;
  bad_cable.ber = 1e-6;
  plan.degraded_links.push_back(bad_cable);
  EXPECT_TRUE(plan.fleet_enabled());
  EXPECT_TRUE(plan.enabled());
  // Fleet classes live below the telemetry layer: data-plane axes.
  EXPECT_TRUE(plan.dataplane_enabled());
  EXPECT_TRUE(plan.validate().empty()) << plan.validate();
}

TEST(FleetPlanTest, ValidateRejectsMalformedFleetSpecs) {
  {
    fault::FaultPlan plan;
    fault::DegradedLinkSpec s;
    s.ber = -1e-9;  // negative bit-error rate
    plan.degraded_links.push_back(s);
    EXPECT_FALSE(plan.validate().empty());
  }
  {
    fault::FaultPlan plan;
    fault::LinkSpeedMismatchSpec s;
    s.gbps = 0;  // a zero-rate link is an outage, not a mismatch
    plan.speed_mismatches.push_back(s);
    EXPECT_FALSE(plan.validate().empty());
  }
  {
    fault::FaultPlan plan;
    fault::HostPcieBottleneckSpec s;
    s.drain_gbps = -1;
    plan.pcie_bottlenecks.push_back(s);
    EXPECT_FALSE(plan.validate().empty());
  }
  {
    fault::FaultPlan plan;
    fault::OversubscribedDownlinkSpec s;
    s.factor = 1.5;  // "oversubscribed" must reduce capacity
    plan.oversub_downlinks.push_back(s);
    EXPECT_FALSE(plan.validate().empty());
  }
  {
    fault::FaultPlan plan;
    fault::DegradedLinkSpec s;
    s.ber = 1e-6;
    s.start = sim::us(500);
    s.stop = sim::us(100);  // inverted window
    plan.degraded_links.push_back(s);
    EXPECT_FALSE(plan.validate().empty());
  }
}

TEST(FleetPlanTest, TestbedRejectsInvalidFleetPlan) {
  Testbed tb;
  fault::FaultPlan plan;
  fault::DegradedLinkSpec s;
  s.ber = -1;
  plan.degraded_links.push_back(s);
  EXPECT_THROW(tb.install_faults(plan), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Signature layer: refine_fleet_verdict's decision rules, one per Table-2
// row, driven with synthetic counters over a real k=4 fat-tree.

struct SignatureRig {
  Testbed tb;
  net::FiveTuple victim;
  net::PortRef mid_hop;          // a switch-side hop on the victim path
  net::NodeId mid_a, mid_b;      // that link's endpoints

  SignatureRig() {
    victim = flow_tuple(tb.ft.hosts[12], tb.ft.hosts[1], 900);
    const auto path = tb.routing.path_of(victim);
    // Skip the source-host NIC hop; pick a middle switch hop so the link
    // is unambiguously "on the victim path".
    mid_hop = path[path.size() / 2];
    mid_a = mid_hop.node;
    mid_b = tb.ft.topo.peer(mid_hop).node;
  }

  diagnosis::DiagnosisResult congestion_verdict() const {
    diagnosis::DiagnosisResult dx;
    dx.type = AnomalyType::kNormalContention;
    dx.initial_port = mid_hop;
    dx.root_cause_flows = {flow_tuple(tb.ft.hosts[4], tb.ft.hosts[1], 2000)};
    dx.confidence = 1.0;
    return dx;
  }

  diagnosis::DiagnosisResult refine(
      const diagnosis::DiagnosisResult& dx,
      const diagnosis::FleetEvidence& ev) const {
    return diagnosis::refine_fleet_verdict(dx, ev, tb.ft.topo, tb.routing,
                                           victim);
  }
};

TEST(FleetSignatureTest, EmptyEvidenceIsIdentity) {
  SignatureRig rig;
  const auto dx = rig.congestion_verdict();
  const auto out = rig.refine(dx, {});
  EXPECT_EQ(out.type, dx.type);
  EXPECT_EQ(out.confidence, dx.confidence);
}

TEST(FleetSignatureTest, CrcErrorsPlusRetransmitsMeanDegradedLink) {
  SignatureRig rig;
  diagnosis::FleetEvidence ev;
  diagnosis::LinkCounterEvidence link;
  link.node_a = rig.mid_a;
  link.node_b = rig.mid_b;
  link.crc_errors = 40;
  link.nominal_gbps = 100;
  link.actual_gbps = 100;
  ev.links.push_back(link);
  ev.sender_retransmissions = 12;
  const auto out = rig.refine(rig.congestion_verdict(), ev);
  EXPECT_EQ(out.type, AnomalyType::kDegradedLink);
  // Localized to the erroring link, and confidence reflects the rewrite.
  EXPECT_TRUE(out.initial_port.node == rig.mid_a ||
              out.initial_port.node == rig.mid_b);
  EXPECT_GT(out.confidence, 0.0);
  EXPECT_LT(out.confidence, 1.0);
}

TEST(FleetSignatureTest, BelievableIncastSurvivesOffPathCrcNoise) {
  SignatureRig rig;
  // A genuine 4-source incast NOT traced to the erroring link must keep
  // its verdict: the fleet counters explain the path, not the fan-in.
  diagnosis::DiagnosisResult dx;
  dx.type = AnomalyType::kMicroBurstIncast;
  net::PortRef elsewhere;
  elsewhere.node = rig.tb.ft.edges[3];
  elsewhere.port = 0;
  dx.initial_port = elsewhere;
  for (int i = 0; i < 4; ++i) {
    dx.root_cause_flows.push_back(flow_tuple(
        rig.tb.ft.hosts[static_cast<size_t>(4 + i)], rig.tb.ft.hosts[1],
        static_cast<std::uint16_t>(2000 + i)));
  }
  diagnosis::FleetEvidence ev;
  diagnosis::LinkCounterEvidence link;
  link.node_a = rig.mid_a;
  link.node_b = rig.mid_b;
  link.crc_errors = 5;
  link.nominal_gbps = 100;
  link.actual_gbps = 100;
  ev.links.push_back(link);
  ev.sender_retransmissions = 2;
  const auto out = rig.refine(dx, ev);
  EXPECT_EQ(out.type, AnomalyType::kMicroBurstIncast);
}

TEST(FleetSignatureTest, LoneReducedLinkIsSpeedMismatch) {
  SignatureRig rig;
  diagnosis::FleetEvidence ev;
  diagnosis::LinkCounterEvidence link;
  link.node_a = rig.mid_a;
  link.node_b = rig.mid_b;
  link.nominal_gbps = 100;
  link.actual_gbps = 25;  // the 25G optic in a 100G fabric
  link.slow_serializations = 500;
  ev.links.push_back(link);
  const auto out = rig.refine(rig.congestion_verdict(), ev);
  EXPECT_EQ(out.type, AnomalyType::kLinkSpeedMismatch);
}

TEST(FleetSignatureTest, ReducedTierIsOversubscriptionNotMismatch) {
  SignatureRig rig;
  diagnosis::FleetEvidence ev;
  // Three sibling down-links share the tier-wide reduction; the victim
  // crosses one of them.
  for (int i = 0; i < 3; ++i) {
    diagnosis::LinkCounterEvidence link;
    link.node_a = i == 0 ? rig.mid_a : rig.tb.ft.aggs[0];
    link.node_b = i == 0 ? rig.mid_b : rig.tb.ft.edges[static_cast<size_t>(i)];
    link.nominal_gbps = 100;
    link.actual_gbps = 50;
    link.slow_serializations = 200;
    link.oversub_tier = true;
    ev.links.push_back(link);
  }
  const auto out = rig.refine(rig.congestion_verdict(), ev);
  EXPECT_EQ(out.type, AnomalyType::kOversubscribedDownlink);
}

TEST(FleetSignatureTest, DrainBacklogOnQuietFabricIsPcieBottleneck) {
  SignatureRig rig;
  diagnosis::FleetEvidence ev;
  diagnosis::HostCounterEvidence host;
  host.host = net::Topology::node_of_ip(rig.victim.dst_ip);
  host.drain_delayed_pkts = 400;
  host.max_drain_backlog_ns = sim::us(900);
  ev.hosts.push_back(host);
  diagnosis::DiagnosisResult dx;  // detection fired, nothing upstream paused
  dx.type = AnomalyType::kNone;
  const auto out = rig.refine(dx, ev);
  EXPECT_EQ(out.type, AnomalyType::kHostPcieBottleneck);
}

TEST(FleetSignatureTest, DeadlockVerdictIsNeverRewritten) {
  SignatureRig rig;
  diagnosis::FleetEvidence ev;
  diagnosis::LinkCounterEvidence link;
  link.node_a = rig.mid_a;
  link.node_b = rig.mid_b;
  link.crc_errors = 100;
  link.nominal_gbps = 100;
  link.actual_gbps = 25;
  link.slow_serializations = 1000;
  ev.links.push_back(link);
  ev.sender_retransmissions = 50;
  diagnosis::DiagnosisResult dx;
  dx.type = AnomalyType::kInLoopDeadlock;
  dx.loop_ports = {rig.mid_hop};
  const auto out = rig.refine(dx, ev);
  EXPECT_EQ(out.type, AnomalyType::kInLoopDeadlock);
}

// ---------------------------------------------------------------------------
// Run layer: each class end-to-end. The injected defect must leave its own
// truth counters in RunResult, and the verdict must name the class (tp) or
// come back explicitly degraded — never silently wrong (the
// bench_fleet_faults acceptance bar, pinned here per class at unit scale).

eval::RunResult run_class(AnomalyType type, std::uint64_t seed = 1) {
  eval::RunConfig cfg;
  cfg.scenario = type;
  cfg.seed = seed;
  return eval::run_one(cfg);
}

void expect_not_silently_wrong(const eval::RunResult& r) {
  EXPECT_TRUE(r.tp || r.degraded)
      << "verdict=" << diagnosis::to_string(r.dx.type)
      << " tp=" << r.tp << " fp=" << r.fp << " degraded=" << r.degraded;
}

TEST(FleetRunTest, DegradedLinkLeavesCrcTruthAndItsVerdict) {
  const auto r = run_class(AnomalyType::kDegradedLink);
  EXPECT_TRUE(r.triggered);
  EXPECT_GT(r.crc_drops, 0u);          // MAC FCS registers moved
  EXPECT_GT(r.retransmissions, 0u);    // go-back-N repaired the loss
  EXPECT_FALSE(r.fleet_evidence.empty());
  expect_not_silently_wrong(r);
}

TEST(FleetRunTest, SpeedMismatchLeavesSlowSerializationTruth) {
  const auto r = run_class(AnomalyType::kLinkSpeedMismatch);
  EXPECT_TRUE(r.triggered);
  EXPECT_GT(r.rate_limited_pkts, 0u);  // frames serialized below nominal
  EXPECT_EQ(r.crc_drops, 0u);          // clean FCS separates it from class 1
  expect_not_silently_wrong(r);
}

TEST(FleetRunTest, PcieBottleneckLeavesDrainTruth) {
  const auto r = run_class(AnomalyType::kHostPcieBottleneck);
  EXPECT_TRUE(r.triggered);
  EXPECT_GT(r.host_drain_delayed, 0u);  // NIC DMA drain gauge moved
  expect_not_silently_wrong(r);
}

TEST(FleetRunTest, OversubscribedDownlinkLeavesRateTruth) {
  const auto r = run_class(AnomalyType::kOversubscribedDownlink);
  EXPECT_TRUE(r.triggered);
  EXPECT_GT(r.rate_limited_pkts, 0u);
  expect_not_silently_wrong(r);
}

TEST(FleetRunTest, FleetRunsAreDeterministic) {
  const auto a = run_class(AnomalyType::kDegradedLink, 3);
  const auto b = run_class(AnomalyType::kDegradedLink, 3);
  EXPECT_EQ(eval::canonical_line(AnomalyType::kDegradedLink, 3, a),
            eval::canonical_line(AnomalyType::kDegradedLink, 3, b));
}

// ---------------------------------------------------------------------------
// Fabric-scale calibration knobs (PR 7): all three default OFF, so every
// k<=8 trace — and every golden — is byte-identical to the uncalibrated
// pipeline. The headroom term is exercised directly through the detection
// agent's exposed threshold.

TEST(CalibrationTest, ScaleKnobsDefaultOff) {
  EXPECT_EQ(collect::DetectionAgent::Config{}.hop_noise_headroom, 0);
  EXPECT_EQ(provenance::BuilderConfig{}.trigger_scope_ns, 0);
  EXPECT_FALSE(diagnosis::DiagnosisConfig{}.signature_rank);
}

TEST(CalibrationTest, ZeroHeadroomThresholdIsFactorTimesBaseline) {
  Testbed tb;
  const net::FiveTuple v = flow_tuple(tb.ft.hosts[12], tb.ft.hosts[1], 900);
  const sim::Time base = tb.agent->baseline_rtt(v);
  ASSERT_GT(base, 0);
  EXPECT_EQ(tb.agent->trigger_threshold(v),
            static_cast<sim::Time>(3.0 * static_cast<double>(base)));
}

TEST(CalibrationTest, HeadroomAddsPerHopOfTheVictimPath) {
  Testbed::Options opts;
  opts.agent_cfg.hop_noise_headroom = sim::us(1);
  Testbed with(opts);
  Testbed without;
  const net::FiveTuple cross_pod =
      flow_tuple(with.ft.hosts[12], with.ft.hosts[1], 900);
  const net::FiveTuple same_edge =
      flow_tuple(with.ft.hosts[0], with.ft.hosts[1], 901);
  const sim::Time d_cross = with.agent->trigger_threshold(cross_pod) -
                            without.agent->trigger_threshold(cross_pod);
  const sim::Time d_local = with.agent->trigger_threshold(same_edge) -
                            without.agent->trigger_threshold(same_edge);
  // Headroom is per hop: the cross-pod path has strictly more hops than
  // the single-edge path, so its threshold moves strictly more.
  EXPECT_GT(d_local, 0);
  EXPECT_GT(d_cross, d_local);
  EXPECT_EQ(d_local % sim::us(1), 0);
  EXPECT_EQ(d_cross % sim::us(1), 0);
}

}  // namespace
}  // namespace hawkeye
