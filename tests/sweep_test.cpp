#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "eval/runner.hpp"
#include "eval/sweep.hpp"

namespace hawkeye::eval {
namespace {

/// Field-by-field equality over everything a figure bench aggregates,
/// including the full diagnosis. Two results that pass this are
/// interchangeable for every table/plot in the repro.
void expect_identical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.scenario_name, b.scenario_name);
  EXPECT_EQ(a.truth_type, b.truth_type);
  EXPECT_EQ(a.triggered, b.triggered);
  EXPECT_EQ(a.tp, b.tp);
  EXPECT_EQ(a.fp, b.fp);
  EXPECT_EQ(a.fn, b.fn);
  EXPECT_EQ(a.dx.type, b.dx.type);
  EXPECT_EQ(a.dx.root_cause_flows, b.dx.root_cause_flows);
  EXPECT_EQ(a.dx.injecting_peer, b.dx.injecting_peer);
  EXPECT_EQ(a.dx.initial_port, b.dx.initial_port);
  EXPECT_EQ(a.dx.loop_ports, b.dx.loop_ports);
  EXPECT_EQ(a.dx.spreading_path, b.dx.spreading_path);
  EXPECT_EQ(a.dx.spreading_flows, b.dx.spreading_flows);
  EXPECT_EQ(a.dx.narrative, b.dx.narrative);
  EXPECT_EQ(a.telemetry_bytes, b.telemetry_bytes);
  EXPECT_EQ(a.raw_telemetry_bytes, b.raw_telemetry_bytes);
  EXPECT_EQ(a.report_packets, b.report_packets);
  EXPECT_EQ(a.dataplane_report_packets, b.dataplane_report_packets);
  EXPECT_EQ(a.polling_packets, b.polling_packets);
  EXPECT_EQ(a.monitor_bw_bytes, b.monitor_bw_bytes);
  EXPECT_EQ(a.collected_switches, b.collected_switches);
  EXPECT_EQ(a.causal_switches, b.causal_switches);
  EXPECT_EQ(a.causal_coverage, b.causal_coverage);
  EXPECT_EQ(a.detection_latency, b.detection_latency);
  EXPECT_EQ(a.collected, b.collected);
  EXPECT_EQ(a.sim_events, b.sim_events);
  EXPECT_EQ(a.drops, b.drops);
  EXPECT_EQ(a.link_down_drops, b.link_down_drops);
  EXPECT_EQ(a.pfc_pause_lost, b.pfc_pause_lost);
  EXPECT_EQ(a.pfc_resume_lost, b.pfc_resume_lost);
  EXPECT_EQ(a.pfc_frames_delayed, b.pfc_frames_delayed);
  EXPECT_EQ(a.pfc_loss_drops, b.pfc_loss_drops);
  EXPECT_EQ(a.dataplane_fault_fired, b.dataplane_fault_fired);
  EXPECT_EQ(a.first_fault_at, b.first_fault_at);
  EXPECT_EQ(a.last_fault_at, b.last_fault_at);
}

TEST(SweepTest, SeedSweepEnumeratesSeeds) {
  RunConfig cfg;
  cfg.scenario = diagnosis::AnomalyType::kPfcStorm;
  const auto cfgs = seed_sweep(cfg, 4, 10);
  ASSERT_EQ(cfgs.size(), 4u);
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    EXPECT_EQ(cfgs[i].seed, 10 + i);
    EXPECT_EQ(cfgs[i].scenario, diagnosis::AnomalyType::kPfcStorm);
  }
}

TEST(SweepTest, ThreadCountResolution) {
  SweepOptions opts;
  opts.threads = 3;
  EXPECT_EQ(sweep_thread_count(opts, 8), 3);
  EXPECT_EQ(sweep_thread_count(opts, 2), 2);  // never more than jobs
  EXPECT_EQ(sweep_thread_count(opts, 0), 1);
  opts.threads = 0;  // auto: hardware_concurrency, env override
  EXPECT_GE(sweep_thread_count(opts, 64), 1);
}

/// A run that re-runs the same RunConfig must be bit-identical: same
/// executed-event count and the same diagnosis. This is the determinism
/// contract the calendar queue preserves from the seed heap (exact
/// (time, seq) pop order) — any reordering shows up here as a different
/// sim_events / narrative.
TEST(SweepTest, RunOneIsDeterministic) {
  RunConfig cfg;
  cfg.scenario = diagnosis::AnomalyType::kMicroBurstIncast;
  cfg.seed = 7;
  const RunResult a = run_one(cfg);
  const RunResult b = run_one(cfg);
  EXPECT_TRUE(a.triggered);
  EXPECT_GT(a.sim_events, 0u);
  expect_identical(a, b);
}

/// N worker threads must produce bitwise the same result list as one —
/// results land in input-order slots and each run is self-contained, so
/// thread scheduling cannot leak into the figures.
TEST(SweepTest, ParallelMatchesSerial) {
  RunConfig cfg;
  cfg.scenario = diagnosis::AnomalyType::kMicroBurstIncast;
  cfg.background_load = 0.05;
  const std::vector<RunConfig> cfgs = seed_sweep(cfg, 5, 1);

  SweepOptions serial;
  serial.threads = 1;
  SweepOptions parallel;
  parallel.threads = 4;

  const std::vector<RunResult> a = run_sweep(cfgs, serial);
  const std::vector<RunResult> b = run_sweep(cfgs, parallel);
  ASSERT_EQ(a.size(), cfgs.size());
  ASSERT_EQ(b.size(), cfgs.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(testing::Message() << "seed " << cfgs[i].seed);
    expect_identical(a[i], b[i]);
  }
  // Different seeds do produce different traces — the comparison above is
  // not trivially passing on identical runs.
  bool any_diff = false;
  for (std::size_t i = 1; i < a.size(); ++i) {
    if (a[i].sim_events != a[0].sim_events) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(SweepTest, EmptySweepReturnsEmpty) {
  EXPECT_TRUE(run_sweep({}).empty());
}

/// The threshold curve is a filter sweep: raising τ can only shrink the
/// asserted set, and every asserted run at τ_high is also asserted at
/// τ_low. Both counters must therefore be non-increasing in τ, whatever
/// the samples are.
TEST(ConfidenceCurveTest, AssertedCountsAreMonotoneInThreshold) {
  ConfidenceCurve curve;
  // Deterministic spread of (confidence, correct) samples, including
  // exact bucket boundaries and both verdict outcomes.
  for (int i = 0; i <= 20; ++i) {
    const double conf = static_cast<double>(i) / 20.0;
    curve.add(conf, i % 3 != 0);
  }
  ASSERT_EQ(curve.size(), 21u);

  const auto pts = curve.points(10);
  ASSERT_EQ(pts.size(), 11u);
  EXPECT_DOUBLE_EQ(pts.front().threshold, 0.0);
  EXPECT_DOUBLE_EQ(pts.back().threshold, 1.0);
  EXPECT_EQ(pts.front().asserted, 21);  // τ=0 asserts everything
  for (std::size_t i = 1; i < pts.size(); ++i) {
    SCOPED_TRACE(testing::Message() << "threshold " << pts[i].threshold);
    EXPECT_LE(pts[i].asserted, pts[i - 1].asserted);
    EXPECT_LE(pts[i].correct, pts[i - 1].correct);
    EXPECT_LE(pts[i].correct, pts[i].asserted);
  }
}

/// Same property on real runs: the curve built from an actual seed sweep
/// (where confidence comes from the collection-quality discounts) must be
/// monotone too, and an empty tail bucket reports accuracy 1.0 (vacuous).
TEST(ConfidenceCurveTest, CurveFromRealSweepIsMonotone) {
  RunConfig cfg;
  cfg.scenario = diagnosis::AnomalyType::kMicroBurstIncast;
  ConfidenceCurve curve;
  for (const RunResult& r : run_sweep(seed_sweep(cfg, 3, 1))) {
    curve.add(r.confidence, r.tp);
  }
  ASSERT_EQ(curve.size(), 3u);
  const auto pts = curve.points(4);
  ASSERT_EQ(pts.size(), 5u);
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_LE(pts[i].asserted, pts[i - 1].asserted);
    EXPECT_LE(pts[i].correct, pts[i - 1].correct);
  }
  ConfidenceCurve empty;
  const auto ep = empty.points(2);
  ASSERT_EQ(ep.size(), 3u);
  EXPECT_EQ(ep[0].asserted, 0);
  EXPECT_DOUBLE_EQ(ep[0].accuracy(), 1.0);
}

}  // namespace
}  // namespace hawkeye::eval
