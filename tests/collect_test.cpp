#include <gtest/gtest.h>

#include <algorithm>

#include "eval/testbed.hpp"

namespace hawkeye::collect {
namespace {

using eval::Testbed;

net::FiveTuple flow_tuple(net::NodeId src, net::NodeId dst,
                          std::uint16_t sp) {
  net::FiveTuple t;
  t.src_ip = net::Topology::ip_of(src);
  t.dst_ip = net::Topology::ip_of(dst);
  t.src_port = sp;
  t.dst_port = 4791;
  return t;
}

/// Drives an incast so the cross-pod victim degrades and Hawkeye collects.
struct IncastRig {
  Testbed tb;
  net::FiveTuple victim;

  explicit IncastRig(Testbed::Options opts = {}) : tb(opts) {
    const net::NodeId sink = tb.ft.hosts[0];
    const net::NodeId vdst = tb.ft.hosts[1];  // sink's ToR sibling
    const net::NodeId vsrc = tb.ft.hosts[12];
    victim = flow_tuple(vsrc, vdst, 900);
    tb.add_flow({vsrc, vdst, 900, 4791, 20'000'000, sim::us(1), true, 0});
    for (int i = 0; i < 4; ++i) {
      tb.add_flow({tb.ft.hosts[static_cast<size_t>(4 + 2 * i)], sink,
                   static_cast<std::uint16_t>(2000 + i), 4791, 600'000,
                   sim::us(200), false, 0});
    }
  }
};

TEST(DetectionAgentTest, BaselineRttMatchesTopology) {
  Testbed tb;
  // Cross-pod: 6 links each way at 2 us ≈ 24 us + serialization.
  const auto rtt = tb.agent->baseline_rtt(
      flow_tuple(tb.ft.hosts[0], tb.ft.hosts[15], 1));
  EXPECT_GE(rtt, sim::us(24));
  EXPECT_LE(rtt, sim::us(32));
  // Same-ToR: 2 links each way.
  const auto near = tb.agent->baseline_rtt(
      flow_tuple(tb.ft.hosts[0], tb.ft.hosts[1], 1));
  EXPECT_LT(near, rtt);
}

TEST(DetectionAgentTest, TriggersOnRttDegradation) {
  IncastRig rig;
  rig.tb.run_for(sim::ms(2));
  const Episode* ep = nullptr;
  for (const auto id : rig.tb.collector.episode_order()) {
    const Episode* cand = rig.tb.collector.episode(id);
    if (cand->victim == rig.victim) ep = cand;
  }
  ASSERT_NE(ep, nullptr) << "victim's RTT spike must open an episode";
  EXPECT_GE(ep->triggered_at, sim::us(200));
  EXPECT_LE(ep->triggered_at, sim::us(600));
}

TEST(DetectionAgentTest, NoTriggerOnHealthyTraffic) {
  Testbed tb;
  tb.add_flow({tb.ft.hosts[0], tb.ft.hosts[15], 900, 4791, 2'000'000,
               sim::us(1), true, 0});
  tb.run_for(sim::ms(2));
  EXPECT_TRUE(tb.collector.episode_order().empty());
}

TEST(DetectionAgentTest, PerFlowTriggerDedup) {
  IncastRig rig;
  rig.tb.run_for(sim::ms(2));
  int victim_episodes = 0;
  for (const auto id : rig.tb.collector.episode_order()) {
    if (rig.tb.collector.episode(id)->victim == rig.victim) ++victim_episodes;
  }
  // The anomaly lasts < 1 ms; dedup allows at most a couple of re-triggers.
  EXPECT_GE(victim_episodes, 1);
  EXPECT_LE(victim_episodes, 3);
}

TEST(CollectionTest, PollingCoversVictimPath) {
  IncastRig rig;
  rig.tb.run_for(sim::ms(2));
  const Episode* ep = nullptr;
  for (const auto id : rig.tb.collector.episode_order()) {
    const Episode* cand = rig.tb.collector.episode(id);
    if (cand->victim == rig.victim && ep == nullptr) ep = cand;
  }
  ASSERT_NE(ep, nullptr);
  // Every switch on the victim path must be collected (causal coverage).
  for (const net::NodeId sw : rig.tb.routing.switches_on_path(rig.victim)) {
    EXPECT_TRUE(ep->has_report(sw)) << "missing victim-path switch " << sw;
  }
  EXPECT_GT(ep->polling_packets, 0u);
  EXPECT_GT(ep->telemetry_bytes, 0);
  EXPECT_GT(ep->raw_telemetry_bytes, ep->telemetry_bytes);
  EXPECT_GT(ep->dataplane_report_packets, ep->report_packets);
}

TEST(CollectionTest, FullPollingCollectsEverySwitch) {
  Testbed::Options opts;
  opts.agent_cfg.full_polling = true;
  IncastRig rig(opts);
  rig.tb.run_for(sim::ms(2));
  const Episode* ep = nullptr;
  for (const auto id : rig.tb.collector.episode_order()) {
    const Episode* cand = rig.tb.collector.episode(id);
    if (cand->victim == rig.victim && ep == nullptr) ep = cand;
  }
  ASSERT_NE(ep, nullptr);
  EXPECT_EQ(ep->reports.size(), 20u);   // all switches in the k=4 fabric
  EXPECT_EQ(ep->polling_packets, 0u);   // no in-band tracing traffic
}

TEST(CollectionTest, VictimOnlyNeverLeavesVictimPath) {
  Testbed::Options opts;
  opts.switch_agent_cfg.trace_pfc_causality = false;
  IncastRig rig(opts);
  rig.tb.run_for(sim::ms(2));
  const Episode* ep = nullptr;
  for (const auto id : rig.tb.collector.episode_order()) {
    const Episode* cand = rig.tb.collector.episode(id);
    if (cand->victim == rig.victim && ep == nullptr) ep = cand;
  }
  ASSERT_NE(ep, nullptr);
  const auto path = rig.tb.routing.switches_on_path(rig.victim);
  for (const auto& [sw, rep] : ep->reports) {
    EXPECT_TRUE(std::find(path.begin(), path.end(), sw) != path.end())
        << "victim-only collected off-path switch " << sw;
  }
}

TEST(CollectionTest, CpuPollerLatencyModelScalesWithEpochs) {
  Collector::Config cfg;
  // 40 ms per epoch: 2 epochs -> 80 ms, 4 -> 160... the paper measures
  // 80/120 ms for 2/4 epochs; our linear model keeps the same order.
  EXPECT_EQ(cfg.dma_per_epoch * 2, sim::ms(80));
}

TEST(PollingFlagTest, Table1Semantics) {
  using net::PollingFlag;
  // 00: useless tracing — switches drop it (verified in agent logic).
  EXPECT_FALSE(net::traces_victim_path(PollingFlag::kUseless));
  // 01: default — victim path only.
  EXPECT_TRUE(net::traces_victim_path(PollingFlag::kVictimPath));
  EXPECT_FALSE(net::traces_pfc_causality(PollingFlag::kVictimPath));
  // 10: PFC causality only.
  EXPECT_FALSE(net::traces_victim_path(PollingFlag::kPfcCausality));
  EXPECT_TRUE(net::traces_pfc_causality(PollingFlag::kPfcCausality));
  // 11: both.
  EXPECT_TRUE(net::traces_victim_path(PollingFlag::kBoth));
  EXPECT_TRUE(net::traces_pfc_causality(PollingFlag::kBoth));
}

TEST(StalenessGuardTest, EpochStartingExactlyAtLimitIsKept) {
  // Pins the half-open boundary of the ring-overwrite guard
  // (Collector::do_collect): stale_limit = mirror + snapshot_delay +
  // epoch_ns, and records are rejected only when start > stale_limit. An
  // epoch starting EXACTLY at the limit is the legitimate tail of the
  // grace window and must survive.
  Testbed::Options o;
  o.install_hawkeye = false;
  Testbed tb(o);
  // A capped long-lived flow keeps the first-hop ToR's epoch ring turning
  // with traffic in every epoch.
  tb.add_flow({tb.ft.hosts[0], tb.ft.hosts[15], 900, 4791, 2'000'000, 0,
               false, 10.0});
  auto& sw = tb.switch_at(tb.ft.edges[0]);
  const sim::Time E = sw.config().telemetry.epoch.epoch_ns();
  tb.run_for(10 * E);  // 8-deep ring now holds epochs 2..9

  Collector sync_c;  // no simulator attached: snapshots run synchronously
  sync_c.register_switch(sw);
  Episode& ep =
      sync_c.open_episode(7, flow_tuple(tb.ft.hosts[0], tb.ft.hosts[15], 900),
                          0);
  // Mirror instant chosen so the limit lands exactly on epoch 8's start.
  const sim::Time limit = 8 * E;
  const sim::Time mirror = limit - sync_c.config().snapshot_delay - E;
  ASSERT_GT(mirror, 0);
  sync_c.collect_from(sw, 7, mirror);

  ASSERT_TRUE(ep.has_report(sw.id()));
  bool boundary_epoch_kept = false;
  for (const auto& er : ep.find_report(sw.id())->epochs) {
    EXPECT_LE(er.start, limit) << "guard leaked a post-limit epoch";
    boundary_epoch_kept = boundary_epoch_kept || er.start == limit;
  }
  EXPECT_TRUE(boundary_epoch_kept)
      << "start == stale_limit sits inside the half-open grace window";
  EXPECT_GT(ep.stale_epochs_rejected, 0u)
      << "epoch 9 (start > limit) can only reflect post-mirror traffic";
}

TEST(CollectorTest, SwitchCollectionDeduplicated) {
  Testbed tb;
  auto& sw = tb.switch_at(tb.ft.edges[0]);
  net::FiveTuple v1 = flow_tuple(tb.ft.hosts[0], tb.ft.hosts[5], 1);
  net::FiveTuple v2 = flow_tuple(tb.ft.hosts[1], tb.ft.hosts[6], 2);
  tb.collector.open_episode(1, v1, 100);
  tb.collector.open_episode(2, v2, 200);
  tb.collector.collect_from(sw, 1, 100);
  tb.collector.collect_from(sw, 2, 200);  // within interval: shares snapshot
  tb.simu.run_until(sim::ms(1));  // let the asynchronous CPU reads fire
  EXPECT_EQ(tb.collector.episode(1)->reports.size(), 1u);
  EXPECT_EQ(tb.collector.episode(2)->reports.size(), 1u);
}

}  // namespace
}  // namespace hawkeye::collect

namespace hawkeye::collect {
namespace {

TEST(PollingEdgeTest, UselessFlagCollectsNothing) {
  Testbed tb;
  tb.collector.open_episode(7, flow_tuple(tb.ft.hosts[0], tb.ft.hosts[9], 1),
                            0);
  net::Packet poll = net::make_polling(
      flow_tuple(tb.ft.hosts[0], tb.ft.hosts[9], 1), 7,
      net::PollingFlag::kUseless);
  tb.net.deliver(tb.ft.hosts[0], 0, std::move(poll), 1);
  tb.run_for(sim::ms(1));
  EXPECT_TRUE(tb.collector.episode(7)->reports.empty());
}

TEST(PollingEdgeTest, HopLimitBoundsForwarding) {
  Testbed::Options opts;
  opts.switch_agent_cfg.hop_limit = 1;  // mirror at most one extra hop
  IncastRig rig(opts);
  rig.tb.run_for(sim::ms(2));
  for (const auto id : rig.tb.collector.episode_order()) {
    const Episode* ep = rig.tb.collector.episode(id);
    EXPECT_LE(ep->reports.size(), 2u)
        << "hop limit 1: origin ToR + one forward only";
  }
}

TEST(PollingEdgeTest, EvictedFlowsReachAnalyzerThroughController) {
  // Force constant flow-table collisions: 1-slot tables; the controller
  // store must still carry every displaced record into the report.
  Testbed::Options opts;
  opts.switch_cfg.telemetry.flow_slots = 1;
  IncastRig rig(opts);
  rig.tb.run_for(sim::ms(2));
  bool any_evicted = false;
  for (const auto id : rig.tb.collector.episode_order()) {
    for (const auto& [sw, rep] : rig.tb.collector.episode(id)->reports) {
      any_evicted |= !rep.evicted.empty();
    }
  }
  EXPECT_TRUE(any_evicted);
}

}  // namespace
}  // namespace hawkeye::collect
