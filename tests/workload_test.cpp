#include <gtest/gtest.h>

#include <algorithm>

#include "workload/flow_size.hpp"
#include "workload/scenario.hpp"

namespace hawkeye::workload {
namespace {

using diagnosis::AnomalyType;

TEST(FlowSizeTest, RoceLongtailMatchesPaperQuantiles) {
  const auto dist = FlowSizeDistribution::roce_longtail();
  sim::Rng rng(1);
  int below_10mb = 0, below_100mb = 0, above_100mb = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const auto s = dist.sample(rng);
    ASSERT_GE(s, 1000);
    ASSERT_LE(s, 300'000'000);
    if (s < 10'000'000) ++below_10mb;
    if (s < 100'000'000) ++below_100mb;
    if (s >= 100'000'000) ++above_100mb;
  }
  // Paper §4.1: <80% below 10 MB, <90% below 100 MB, ~10% at 100-300 MB.
  EXPECT_NEAR(below_10mb / static_cast<double>(n), 0.80, 0.02);
  EXPECT_NEAR(below_100mb / static_cast<double>(n), 0.90, 0.02);
  EXPECT_NEAR(above_100mb / static_cast<double>(n), 0.10, 0.02);
}

TEST(FlowSizeTest, MiceOnlyStaysSmall) {
  const auto dist = FlowSizeDistribution::mice_only();
  sim::Rng rng(2);
  for (int i = 0; i < 1000; ++i) EXPECT_LE(dist.sample(rng), 1'000'000);
}

TEST(FlowSizeTest, MalformedBandsRejected) {
  EXPECT_THROW(FlowSizeDistribution({{0.5, 10, 5}}), std::invalid_argument);
  EXPECT_THROW(FlowSizeDistribution({{0.5, 1, 10}}), std::invalid_argument);
  EXPECT_THROW(FlowSizeDistribution({}), std::invalid_argument);
}

TEST(BackgroundTest, LoadScalesArrivalCount) {
  const net::FatTree ft = net::build_fat_tree(4);
  sim::Rng r1(3), r2(3);
  const auto light = background_flows(ft, r1, 0.05, 0, sim::ms(10));
  const auto heavy = background_flows(ft, r2, 0.30, 0, sim::ms(10));
  EXPECT_GT(heavy.size(), 3 * light.size());
  for (const auto& f : heavy) {
    EXPECT_NE(f.src, f.dst);
    EXPECT_GE(f.start, 0);
    EXPECT_LT(f.start, sim::ms(10));
    EXPECT_GT(f.bytes, 0);
  }
}

TEST(BackgroundTest, ZeroLoadMeansNoFlows) {
  const net::FatTree ft = net::build_fat_tree(4);
  sim::Rng rng(4);
  EXPECT_TRUE(background_flows(ft, rng, 0.0, 0, sim::ms(10)).empty());
}

// ---- Path-churn scenario (PR 4) ----

TEST(PathChurnScenarioTest, FlapIsBoundToMidPathLink) {
  const net::FatTree ft = net::build_fat_tree(4);
  const net::Routing routing(ft.topo);
  for (const sim::Time holddown : {sim::Time{0}, sim::us(50)}) {
    sim::Rng rng(5);
    const ScenarioSpec spec =
        make_path_churn(ft, routing, rng, sim::us(500), holddown);
    EXPECT_EQ(spec.type, AnomalyType::kNormalContention);
    EXPECT_EQ(spec.name, holddown > 0 ? "path-churn-reconverge"
                                      : "path-churn-frozen");
    ASSERT_TRUE(spec.faults.has_value());
    ASSERT_EQ(spec.faults->link_flaps.size(), 1u);
    const fault::LinkFlapSpec& lf = spec.faults->link_flaps[0];
    EXPECT_EQ(lf.holddown_ns, holddown);
    EXPECT_EQ(lf.start, spec.anomaly_start);
    EXPECT_EQ(lf.down_ns, sim::us(250));

    // The flap endpoints must be two consecutive switches of the victim's
    // route — the outage genuinely black-holes the victim.
    const std::vector<net::NodeId> sws = routing.switches_on_path(spec.victim);
    ASSERT_GE(sws.size(), 2u);
    bool consecutive = false;
    for (std::size_t i = 0; i + 1 < sws.size(); ++i) {
      if (sws[i] == lf.node_a && sws[i + 1] == lf.node_b) consecutive = true;
    }
    EXPECT_TRUE(consecutive);
  }
}

TEST(PathChurnScenarioTest, SameSeedDiffersOnlyInChurnKnobs) {
  const net::FatTree ft = net::build_fat_tree(4);
  const net::Routing routing(ft.topo);
  sim::Rng r1(9), r2(9);
  const ScenarioSpec frozen = make_path_churn(ft, routing, r1, sim::us(500), 0);
  const ScenarioSpec reconv =
      make_path_churn(ft, routing, r2, sim::us(500), sim::us(50));
  // Identical crafted traffic — the hold-down knob must not perturb the
  // underlying trace, or frozen-vs-reconverge comparisons are apples to
  // oranges.
  ASSERT_EQ(frozen.flows.size(), reconv.flows.size());
  for (std::size_t i = 0; i < frozen.flows.size(); ++i) {
    EXPECT_EQ(frozen.flows[i].src, reconv.flows[i].src);
    EXPECT_EQ(frozen.flows[i].dst, reconv.flows[i].dst);
    EXPECT_EQ(frozen.flows[i].bytes, reconv.flows[i].bytes);
    EXPECT_EQ(frozen.flows[i].start, reconv.flows[i].start);
  }
  EXPECT_EQ(frozen.victim, reconv.victim);
  EXPECT_EQ(frozen.faults->link_flaps[0].node_a,
            reconv.faults->link_flaps[0].node_a);
  EXPECT_EQ(frozen.faults->link_flaps[0].node_b,
            reconv.faults->link_flaps[0].node_b);
  EXPECT_EQ(frozen.faults->seed, reconv.faults->seed);
  EXPECT_EQ(frozen.faults->link_flaps[0].holddown_ns, 0);
  EXPECT_EQ(reconv.faults->link_flaps[0].holddown_ns, sim::us(50));
}

// ---- Scenario crafting invariants, swept over seeds x anomaly types ----

class ScenarioInvariants
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(ScenarioInvariants, WellFormed) {
  const auto type = static_cast<AnomalyType>(std::get<0>(GetParam()));
  const std::uint64_t seed = std::get<1>(GetParam());
  const net::FatTree ft = net::build_fat_tree(4);
  const net::Routing routing(ft.topo);
  sim::Rng rng(seed);
  const ScenarioSpec spec = make_scenario(type, ft, routing, rng);

  EXPECT_EQ(spec.truth.type, type);
  EXPECT_FALSE(spec.flows.empty());
  EXPECT_GT(spec.duration, spec.anomaly_start);

  // The victim tuple corresponds to one of the crafted flows.
  bool victim_found = false;
  for (const auto& f : spec.flows) {
    if (device::tuple_of(f) == spec.victim) victim_found = true;
    EXPECT_TRUE(ft.topo.is_host(f.src));
    EXPECT_TRUE(ft.topo.is_host(f.dst));
    EXPECT_NE(f.src, f.dst);
    EXPECT_GT(f.bytes, 0);
  }
  EXPECT_TRUE(victim_found);

  // Root-cause flows are crafted flows.
  for (const auto& rc : spec.truth.root_cause_flows) {
    const bool found = std::any_of(
        spec.flows.begin(), spec.flows.end(),
        [&](const device::FlowSpec& f) { return device::tuple_of(f) == rc; });
    EXPECT_TRUE(found);
  }

  // Overrides reference existing switch ports, and distinct (switch, dst).
  std::set<std::pair<net::NodeId, net::NodeId>> okeys;
  for (const auto& ov : spec.overrides) {
    EXPECT_TRUE(ft.topo.is_switch(ov.sw));
    EXPECT_GE(ov.port, 0);
    EXPECT_LT(ov.port, ft.topo.port_count(ov.sw));
    EXPECT_TRUE(okeys.insert({ov.sw, ov.dst}).second)
        << "conflicting overrides for one (switch,dst)";
  }

  // Deadlock scenarios carry a valid CBD: consecutive loop egress ports
  // are physically chained (peer of L_i is L_{i+1}'s switch).
  if (diagnosis::is_deadlock(type)) {
    ASSERT_EQ(spec.truth.loop_ports.size(), 4u);
    for (std::size_t i = 0; i < 4; ++i) {
      const net::PortRef cur = spec.truth.loop_ports[i];
      const net::PortRef nxt = spec.truth.loop_ports[(i + 1) % 4];
      EXPECT_EQ(ft.topo.peer(cur).node, nxt.node);
    }
  } else {
    EXPECT_TRUE(spec.truth.loop_ports.empty());
  }

  // Injection scenarios name the injecting host and schedule frames.
  if (type == AnomalyType::kPfcStorm ||
      type == AnomalyType::kOutOfLoopDeadlockInjection) {
    EXPECT_NE(spec.truth.injecting_host, net::kInvalidNode);
    ASSERT_EQ(spec.injections.size(), 1u);
    EXPECT_EQ(spec.injections[0].host, spec.truth.injecting_host);
    EXPECT_LT(spec.injections[0].start, spec.injections[0].stop);
  } else {
    EXPECT_TRUE(spec.injections.empty());
  }

  // Contention-rooted scenarios declare their congestion port(s).
  if (type != AnomalyType::kPfcStorm &&
      type != AnomalyType::kOutOfLoopDeadlockInjection) {
    EXPECT_FALSE(spec.truth.congestion_ports.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(
    TypesAndSeeds, ScenarioInvariants,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 6),
                       ::testing::Values(1ull, 7ull, 23ull, 99ull)));

}  // namespace
}  // namespace hawkeye::workload
