#include <gtest/gtest.h>

#include "baselines/local_contention.hpp"
#include "eval/runner.hpp"

namespace hawkeye::eval {
namespace {

using diagnosis::AnomalyType;

RunConfig base(AnomalyType type, std::uint64_t seed) {
  RunConfig cfg;
  cfg.scenario = type;
  cfg.seed = seed;
  cfg.background_load = 0.1;
  return cfg;
}

// End-to-end: each representative anomaly is detected and its exact type
// plus root causes identified (one trace per type; the Fig 7/8 benches
// sweep many).
class EndToEnd : public ::testing::TestWithParam<int> {};

TEST_P(EndToEnd, HawkeyeDiagnosesCorrectly) {
  const auto type = static_cast<AnomalyType>(GetParam());
  const RunResult r = run_one(base(type, 3));
  EXPECT_TRUE(r.triggered) << "victim degradation must be detected";
  EXPECT_TRUE(r.tp) << "expected " << to_string(type) << ", diagnosed "
                    << to_string(r.dx.type);
  EXPECT_EQ(r.drops, 0u) << "fabric must stay lossless";
  EXPECT_GT(r.causal_coverage, 0.99) << "all causal switches collected";
}

INSTANTIATE_TEST_SUITE_P(AllAnomalies, EndToEnd,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(BaselineBehaviour, VictimOnlyMissesDeadlockLoop) {
  RunConfig cfg = base(AnomalyType::kInLoopDeadlock, 3);
  cfg.method = Method::kVictimOnly;
  const RunResult r = run_one(cfg);
  ASSERT_TRUE(r.triggered);
  // The CBD spans switches off the victim path: collection is incomplete
  // and the deadlock cannot be recognized (paper §4.2).
  EXPECT_LT(r.causal_coverage, 1.0);
  EXPECT_NE(r.dx.type, AnomalyType::kInLoopDeadlock);
}

TEST(BaselineBehaviour, VictimOnlyStillHandlesIncast) {
  RunConfig cfg = base(AnomalyType::kMicroBurstIncast, 3);
  cfg.method = Method::kVictimOnly;
  const RunResult r = run_one(cfg);
  ASSERT_TRUE(r.triggered);
  // The initial congestion point lies on the victim path, so victim-only
  // collection suffices (paper: "the PFC path is exactly the victim path").
  EXPECT_EQ(r.dx.type, AnomalyType::kMicroBurstIncast);
}

TEST(BaselineBehaviour, SpiderMonBlindToPfcAnomalies) {
  RunConfig cfg = base(AnomalyType::kPfcStorm, 3);
  cfg.method = Method::kSpiderMon;
  const RunResult r = run_one(cfg);
  ASSERT_TRUE(r.triggered);
  EXPECT_NE(r.dx.type, AnomalyType::kPfcStorm)
      << "no PFC visibility: cannot name a storm";
  EXPECT_FALSE(r.tp);
}

TEST(BaselineBehaviour, SpiderMonHandlesNormalContention) {
  RunConfig cfg = base(AnomalyType::kNormalContention, 3);
  cfg.method = Method::kSpiderMon;
  const RunResult r = run_one(cfg);
  ASSERT_TRUE(r.triggered);
  EXPECT_EQ(r.dx.type, AnomalyType::kNormalContention);
}

TEST(BaselineBehaviour, FullPollingMatchesHawkeyeAccuracyAtHigherCost) {
  const RunResult hk = run_one(base(AnomalyType::kOutOfLoopDeadlockContention, 2));
  RunConfig cfg = base(AnomalyType::kOutOfLoopDeadlockContention, 2);
  cfg.method = Method::kFullPolling;
  const RunResult fp = run_one(cfg);
  EXPECT_TRUE(hk.tp);
  EXPECT_TRUE(fp.tp);
  EXPECT_EQ(fp.collected_switches, 20u);
  EXPECT_LT(hk.collected_switches, fp.collected_switches);
  EXPECT_LT(hk.telemetry_bytes, fp.telemetry_bytes);
}

TEST(BaselineBehaviour, NetSightOverheadDwarfsHawkeye) {
  const RunResult hk = run_one(base(AnomalyType::kMicroBurstIncast, 3));
  RunConfig cfg = base(AnomalyType::kMicroBurstIncast, 3);
  cfg.method = Method::kNetSight;
  const RunResult ns = run_one(cfg);
  // Per-packet postcards at every hop vs a handful of polled switches.
  EXPECT_GT(ns.telemetry_bytes, 10 * hk.telemetry_bytes);
  EXPECT_GT(ns.monitor_bw_bytes, 100 * hk.monitor_bw_bytes);
}

TEST(TelemetryAblation, PortOnlyFindsPfcPathButNotRootFlows) {
  RunConfig cfg = base(AnomalyType::kMicroBurstIncast, 3);
  cfg.tele_mode = telemetry::TelemetryMode::kPortOnly;
  const RunResult r = run_one(cfg);
  ASSERT_TRUE(r.triggered);
  // Without flow telemetry the burst flows cannot be named.
  EXPECT_TRUE(r.dx.root_cause_flows.empty());
  EXPECT_FALSE(r.tp);
}

TEST(TelemetryAblation, FlowOnlyCannotTracePfc) {
  RunConfig cfg = base(AnomalyType::kInLoopDeadlock, 3);
  cfg.tele_mode = telemetry::TelemetryMode::kFlowOnly;
  const RunResult r = run_one(cfg);
  ASSERT_TRUE(r.triggered);
  EXPECT_NE(r.dx.type, AnomalyType::kInLoopDeadlock)
      << "no port causality: the loop is invisible";
}

TEST(ParameterSensitivity, LongEpochsDegradeStormDiagnosis) {
  // With 2 ms epochs the pre-anomaly contention blip and the injection land
  // in one epoch and can be conflated (§4.2). Only the *shape* is asserted:
  // the small-epoch run must do at least as well as the long-epoch run.
  int ok_small = 0, ok_large = 0;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    RunConfig small = base(AnomalyType::kPfcStorm, seed);
    small.epoch_shift = 17;
    RunConfig large = base(AnomalyType::kPfcStorm, seed);
    large.epoch_shift = 21;
    large.epoch_index_bits = 1;
    ok_small += run_one(small).tp ? 1 : 0;
    ok_large += run_one(large).tp ? 1 : 0;
  }
  EXPECT_GE(ok_small, ok_large);
  EXPECT_GE(ok_small, 2);
}

TEST(PrecisionRecallTest, AccumulatorMath) {
  PrecisionRecall pr;
  RunResult tp, fp, fn;
  tp.tp = true;
  fp.fp = true;
  fn.fn = true;
  pr.add(tp);
  pr.add(tp);
  pr.add(fp);
  pr.add(fn);
  EXPECT_DOUBLE_EQ(pr.precision(), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(pr.recall(), 2.0 / 3.0);
}

}  // namespace
}  // namespace hawkeye::eval

#include "eval/testbed.hpp"
#include "provenance/builder.hpp"

namespace hawkeye::eval {
namespace {

TEST(ConcurrentAnomalies, TwoNonOverlappingNpasDiagnosedIndependently) {
  // Paper §3.4: "HAWKEYE can easily support multiple NPAs concurrently. If
  // two NPAs do not have the path overlap, their telemetry data can be
  // collected and diagnosed independently." Two controlled incidents in
  // separate pods, sequential in time so their spreading paths never mix
  // (the storm_monitor example runs the same construction).
  Testbed tb;
  // Incident 1: host 2 (pod 0) injects PFC for 600 us; tenant A's flow
  // into it stalls.
  const net::NodeId storm_host = tb.ft.hosts[2];
  net::FiveTuple victim_a;
  {
    device::FlowSpec f{tb.ft.hosts[13], storm_host, 100, 4791, 40'000'000,
                       sim::us(10), true, 40.0};
    victim_a = device::tuple_of(f);
    tb.add_flow(f);
  }
  tb.host(storm_host).inject_pfc(sim::us(400), sim::us(1000), sim::us(50),
                                 65535);

  // Incident 2 (t = 1.6 ms, after the storm drained): 4:1 incast into
  // host 10 (pod 2), on top of a standing tenant flow into the same sink.
  // The burst flows are themselves the complaining victims — each stalls
  // behind the shared backpressure.
  tb.add_flow({tb.ft.hosts[5], tb.ft.hosts[10], 200, 4791, 40'000'000,
               sim::us(10), true, 15.0});
  std::vector<net::FiveTuple> burst_tuples;
  for (int i = 0; i < 4; ++i) {
    device::FlowSpec f{tb.ft.hosts[static_cast<size_t>(12 + i)],
                       tb.ft.hosts[10], static_cast<std::uint16_t>(2000 + i),
                       4791, 600'000, sim::us(1600) + i * sim::us(1), false,
                       0};
    burst_tuples.push_back(device::tuple_of(f));
    tb.add_flow(f);
  }
  tb.run_for(sim::ms(3));

  auto diagnose_episode = [&](const collect::Episode& ep) {
    const auto g = provenance::build_provenance(ep, tb.ft.topo);
    return diagnosis::diagnose(g, tb.ft.topo, tb.routing, ep.victim);
  };

  const collect::Episode* storm_ep = nullptr;
  const collect::Episode* incast_ep = nullptr;
  for (const auto id : tb.collector.episode_order()) {
    const collect::Episode* cand = tb.collector.episode(id);
    if (cand->victim == victim_a && cand->triggered_at >= sim::us(400) &&
        storm_ep == nullptr) {
      storm_ep = cand;
    }
    const bool is_burst =
        std::find(burst_tuples.begin(), burst_tuples.end(), cand->victim) !=
        burst_tuples.end();
    if (is_burst && cand->triggered_at >= sim::us(1600) &&
        incast_ep == nullptr) {
      incast_ep = cand;
    }
  }
  ASSERT_NE(storm_ep, nullptr);
  ASSERT_NE(incast_ep, nullptr);

  const auto dx_storm = diagnose_episode(*storm_ep);
  const auto dx_incast = diagnose_episode(*incast_ep);
  EXPECT_EQ(dx_storm.type, diagnosis::AnomalyType::kPfcStorm);
  EXPECT_EQ(dx_storm.injecting_peer, storm_host);
  EXPECT_EQ(dx_incast.type, diagnosis::AnomalyType::kMicroBurstIncast);
  EXPECT_FALSE(dx_incast.root_cause_flows.empty());
}

}  // namespace
}  // namespace hawkeye::eval

namespace hawkeye::eval {
namespace {

/// Property fuzz: random leaf-spine fabrics under random traffic must stay
/// lossless (PFC), deliver everything (up-down routing admits no CBD, so
/// no deadlock), and never acknowledge more than was sent.
class FabricFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FabricFuzz, LosslessCompleteAndConserving) {
  sim::Rng rng(GetParam());
  const int leaves = static_cast<int>(rng.uniform_int(2, 4));
  const int spines = static_cast<int>(rng.uniform_int(1, 2));
  const int hpl = static_cast<int>(rng.uniform_int(2, 3));
  const net::LeafSpine ls = net::build_leaf_spine(leaves, spines, hpl);
  net::Routing routing(ls.topo);
  sim::Simulator simu;
  device::Network network(simu, ls.topo);
  std::vector<std::unique_ptr<device::Switch>> switches;
  std::vector<std::unique_ptr<device::Host>> hosts;
  for (const net::NodeId sw : ls.topo.switches()) {
    switches.push_back(std::make_unique<device::Switch>(
        network, routing, sw, device::SwitchConfig{}));
  }
  for (const net::NodeId h : ls.topo.hosts()) {
    hosts.push_back(std::make_unique<device::Host>(network, h));
  }
  auto host_at = [&](net::NodeId id) -> device::Host& {
    for (auto& h : hosts) {
      if (h->id() == id) return *h;
    }
    throw std::runtime_error("no host");
  };

  const int n_flows = static_cast<int>(rng.uniform_int(5, 12));
  for (int i = 0; i < n_flows; ++i) {
    const auto src = ls.hosts[static_cast<size_t>(
        rng.uniform_int(0, static_cast<int>(ls.hosts.size()) - 1))];
    net::NodeId dst = src;
    while (dst == src) {
      dst = ls.hosts[static_cast<size_t>(
          rng.uniform_int(0, static_cast<int>(ls.hosts.size()) - 1))];
    }
    host_at(src).add_flow({src, dst, static_cast<std::uint16_t>(100 + i),
                           4791, rng.uniform_int(10'000, 500'000),
                           rng.uniform_int(0, sim::us(300)),
                           rng.chance(0.7), 0});
  }
  simu.run_until(sim::ms(10));

  EXPECT_EQ(network.data_drops(), 0u) << "PFC fabric must be lossless";
  for (auto& h : hosts) {
    EXPECT_EQ(h->retransmissions(), 0u);
    for (const auto& st : h->flow_stats()) {
      EXPECT_TRUE(st.complete()) << st.tuple.to_string();
      EXPECT_LE(st.pkts_acked, st.pkts_sent);
      EXPECT_GE(st.fct(), 0);
      EXPECT_GE(st.min_rtt, 2 * 2 * 2000) << "RTT below physical minimum";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FabricFuzz,
                         ::testing::Values(1ull, 2ull, 3ull, 5ull, 8ull,
                                           13ull, 21ull, 34ull));

}  // namespace
}  // namespace hawkeye::eval
