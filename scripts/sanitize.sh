#!/usr/bin/env bash
# Sanitizer CI pass (see ISSUE: CI/tooling satellite).
#
#   scripts/sanitize.sh [asan|tsan|all]
#
# asan: ASan+UBSan build, runs the simulator-core and device tests (the
#       allocation-free event calendar and packet-slab paths).
# tsan: TSan build, runs the parallel sweep-runner tests plus the
#       fault-injection suite (link flaps / PFC frame loss exercise the
#       injector from every sweep worker thread), the reconvergence /
#       fault-attribution suites (routing withdrawal callbacks fire inside
#       sweep workers), the misdiagnosis-hunter campaign (HuntCampaignTest:
#       batched trial evaluation through multi-threaded run_sweep), and the
#       sharded-simulator suites (ShardIdentity /
#       ShardEdge): intra-run parallel rounds drain per-shard calendars
#       from a persistent worker pool, exactly the data-race surface TSan
#       exists for. The golden-trace k=4 suite is deliberately NOT run
#       under TSan: it replays single deterministic simulations with no
#       cross-thread surface, and the plain ctest job already covers it.
#
# Each flavour builds into its own tree (build-asan/, build-tsan/) so the
# default build/ stays sanitizer-free.
set -euo pipefail
cd "$(dirname "$0")/.."

flavour="${1:-all}"

run_asan() {
  cmake -B build-asan -S . -DHAWKEYE_SANITIZE=address \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build-asan -j "$(nproc)" --target hawkeye_tests
  (cd build-asan && ctest --output-on-failure -j "$(nproc)" \
        -R 'SimulatorTest|InlineActionTest|CalendarTest|Switch|Host|Device|Network|FleetRunTest|FleetSignatureTest|ScenarioIoTest|HuntClassifyTest')
}

run_tsan() {
  cmake -B build-tsan -S . -DHAWKEYE_SANITIZE=thread \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build-tsan -j "$(nproc)" \
        --target hawkeye_tests hawkeye_shard_identity_test
  (cd build-tsan && ctest --output-on-failure -j "$(nproc)" \
        -R 'SweepTest|FaultPlanTest|FaultInjectorTest|FaultRunnerTest|LinkFlapTest|PfcFrameFaultTest|TargetedRepollTest|SelfHealingTest|ReconvergenceTest|FaultAttributionTest|ConfidenceCurveTest|FleetPlanTest|FleetRunTest|CalibrationTest|ShardIdentity|ShardEdgeTest|HuntCampaignTest')
}

case "$flavour" in
  asan) run_asan ;;
  tsan) run_tsan ;;
  all)  run_asan; run_tsan ;;
  *) echo "usage: $0 [asan|tsan|all]" >&2; exit 2 ;;
esac
