// Adversarial misdiagnosis hunter (DESIGN.md §15): seeded search over the
// joint scenario/workload/topology/fault configuration space with diagnosis
// correctness as the objective, delta-debugging every failure to a minimal
// replayable counterexample.
//
//   Hunt:   ./hunt_misdiagnosis --seed 1 --budget 200 --corpus out/
//   Replay: ./hunt_misdiagnosis --replay tests/hunt_corpus
//
// Campaigns are fully deterministic in (--seed, --budget): sampling is a
// pure function of (seed, trial index) and evaluation goes through
// eval::run_sweep, so --threads changes wall-clock only. Replay mode is
// the CI gate: it parses every committed corpus file (a parse failure IS a
// failure — format drift must break the build), re-runs it, and exits
// non-zero unless each case reproduces its recorded verdict class.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "eval/hunter.hpp"

using namespace hawkeye;

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--seed N] [--budget N] [--batch N] [--threads N]\n"
      "          [--tau X] [--k K ...] [--shards S ...] [--no-shrink]\n"
      "          [--max-finds N] [--corpus DIR] [--log FILE]\n"
      "       %s --replay FILE-OR-DIR [--tau X] [--explain]\n",
      argv0, argv0);
  return 2;
}

int replay(const std::string& target, double tau, bool explain) {
  namespace fs = std::filesystem;
  std::vector<fs::path> files;
  if (fs::is_directory(target)) {
    for (const auto& e : fs::directory_iterator(target)) {
      if (e.is_regular_file() && e.path().extension() == ".txt") {
        files.push_back(e.path());
      }
    }
    std::sort(files.begin(), files.end());
  } else {
    files.emplace_back(target);
  }
  if (files.empty()) {
    std::fprintf(stderr, "replay: no corpus files in %s\n", target.c_str());
    return 1;
  }
  int failures = 0;
  for (const fs::path& f : files) {
    std::ifstream in(f, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "FAIL %s: unreadable\n", f.string().c_str());
      ++failures;
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    eval::HuntCase hc;
    try {
      hc = eval::parse_case(buf.str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "FAIL %s: parse error: %s\n",
                   f.string().c_str(), e.what());
      ++failures;
      continue;
    }
    // Round-trip gate: a committed file must already be in canonical form,
    // or two camps of "the same" corpus would diff forever.
    if (eval::serialize_case(hc) != buf.str()) {
      std::fprintf(stderr, "FAIL %s: not in canonical form (re-serialize)\n",
                   f.string().c_str());
      ++failures;
      continue;
    }
    const eval::ReplayOutcome out = eval::replay_case(hc, tau);
    if (out.matches_expected) {
      std::printf("ok   %s (%s)\n", f.filename().string().c_str(),
                  hc.expected_class.c_str());
    } else {
      std::fprintf(stderr, "FAIL %s: %s\n", f.filename().string().c_str(),
                   out.detail.c_str());
      ++failures;
    }
    if (explain) {
      const eval::RunResult& r = out.result;
      std::printf("     %s\n     init=%s peer=%d conf=%.3f collected=%zu "
                  "cov=%.2f degraded=%d\n",
                  out.detail.c_str(), net::to_string(r.dx.initial_port).c_str(),
                  r.dx.injecting_peer, r.confidence, r.collected.size(),
                  r.causal_coverage, r.degraded);
      for (const auto& fl : r.dx.root_cause_flows) {
        std::printf("     root %s\n", fl.to_string().c_str());
      }
      if (!r.dx.narrative.empty()) {
        std::printf("     narrative: %s\n", r.dx.narrative.c_str());
      }
    }
  }
  std::printf("replayed %zu case(s), %d failure(s)\n", files.size(),
              failures);
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  eval::HuntOptions opts;
  opts.ks.clear();
  opts.shard_choices.clear();
  std::string log_file;
  std::string replay_target;
  bool explain = false;
  double tau = opts.tau;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", a.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--seed") opts.seed = std::strtoull(next(), nullptr, 10);
    else if (a == "--budget") opts.budget = std::atoi(next());
    else if (a == "--batch") opts.batch = std::atoi(next());
    else if (a == "--threads") opts.threads = std::atoi(next());
    else if (a == "--tau") tau = std::atof(next());
    else if (a == "--k") opts.ks.push_back(std::atoi(next()));
    else if (a == "--shards") opts.shard_choices.push_back(std::atoi(next()));
    else if (a == "--no-shrink") opts.shrink = false;
    else if (a == "--max-finds") opts.max_finds = std::atoi(next());
    else if (a == "--corpus") opts.corpus_dir = next();
    else if (a == "--log") log_file = next();
    else if (a == "--replay") replay_target = next();
    else if (a == "--explain") explain = true;
    else return usage(argv[0]);
  }
  if (!replay_target.empty()) return replay(replay_target, tau, explain);

  opts.tau = tau;
  if (opts.ks.empty()) opts.ks = {4};
  if (opts.shard_choices.empty()) opts.shard_choices = {1};
  if (opts.budget <= 0) return usage(argv[0]);

  const eval::HuntReport rep = eval::run_hunt_campaign(opts);
  std::fputs(rep.log.c_str(), stdout);
  if (!log_file.empty()) {
    std::ofstream out(log_file, std::ios::binary);
    out << rep.log;
  }
  for (const eval::HuntFind& f : rep.finds) {
    std::printf("--- find trial=%d sig=%s shrink_evals=%d flows=%zu->%zu\n",
                f.trial, f.signature.c_str(), f.shrink_evals,
                f.flows_before, f.flows_after);
    std::fputs(eval::serialize_case(f.shrunk).c_str(), stdout);
  }
  return 0;
}
