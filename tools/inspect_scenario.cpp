#include <cstdio>
#include <map>
#include "eval/testbed.hpp"
#include "provenance/builder.hpp"
#include "diagnosis/diagnosis.hpp"
#include "workload/scenario.hpp"
using namespace hawkeye;

int main(int argc, char** argv) {
  int type_i = argc > 1 ? atoi(argv[1]) : 3;
  std::uint64_t seed = argc > 2 ? strtoull(argv[2], nullptr, 10) : 1;
  sim::Rng rng(seed);
  workload::ScenarioSpec spec;
  {
    const net::FatTree probe = net::build_fat_tree(4);
    const net::Routing pr(probe.topo);
    spec = workload::make_scenario((diagnosis::AnomalyType)type_i, probe, pr, rng);
  }
  std::printf("scenario %s anomaly@%.0fus victim=%s\n", spec.name.c_str(),
              spec.anomaly_start/1e3, spec.victim.to_string().c_str());
  for (auto& f : spec.flows)
    std::printf("  flow %d->%d sp=%u bytes=%lld start=%.0fus cap=%.0fG cc=%d\n",
      f.src, f.dst, f.src_port, (long long)f.bytes, f.start/1e3, f.rate_cap_gbps, f.cc_enabled);
  for (auto& o : spec.overrides) std::printf("  override sw%d dst%d -> p%d\n", o.sw, o.dst, o.port);
  for (auto& p : spec.truth.loop_ports) std::printf("  loop port %s\n", net::to_string(p).c_str());

  eval::Testbed::Options opts;
  if (spec.xoff_bytes) opts.switch_cfg.pfc_xoff_bytes = *spec.xoff_bytes;
  if (spec.xon_bytes) opts.switch_cfg.pfc_xon_bytes = *spec.xon_bytes;
  eval::Testbed tb(opts);
  tb.install(spec);
  double load = argc > 3 ? atof(argv[3]) : 0.0;
  sim::Rng brng(seed);
  for (auto& f : workload::background_flows(tb.ft, brng, load, sim::us(5), spec.duration - sim::us(100))) tb.add_flow(f);
  tb.run_for(spec.duration);

  // PFC trace summary
  std::map<std::pair<int,int>, int> pauses;
  for (auto& ev : tb.net.pfc_trace()) if (ev.quanta>0) pauses[{ev.node, ev.port}]++;
  for (auto& [k,c] : pauses) std::printf("  PAUSE by node%d port%d x%d\n", k.first, k.second, c);
  // flow progress
  for (auto h : tb.ft.hosts) for (auto& st : tb.host(h).flow_stats())
    std::printf("  flow %s sent=%u acked=%u fin=%d last_ack=%.0fus\n",
      st.tuple.to_string().c_str(), st.pkts_sent, st.pkts_acked, (int)st.complete(), st.last_ack/1e3);
  // episodes
  for (auto id : tb.collector.episode_order()) {
    auto* ep = tb.collector.episode(id);
    std::printf("  episode victim=%s at %.0fus switches=%zu\n",
      ep->victim.to_string().c_str(), ep->triggered_at/1e3, ep->reports.size());
    if (ep->victim == spec.victim) {
      for (auto& [sw, rep] : ep->reports) {
        std::printf("    report sw%d at %.0fus status:", sw, rep.collected_at/1e3);
        for (auto& ps : rep.port_status)
          std::printf(" P%d%s(q=%lld)", ps.port, ps.paused_now?"*":"", (long long)ps.queue_pkts);
        std::printf("\n");
      }
      auto g = provenance::build_provenance(*ep, tb.ft.topo);
      std::printf("%s", g.to_string().c_str());
      auto dx = diagnosis::diagnose(g, tb.ft.topo, tb.routing, spec.victim);
      std::printf("  DX=%s init=%s peer=%d roots:\n", std::string(to_string(dx.type)).c_str(),
                  net::to_string(dx.initial_port).c_str(), dx.injecting_peer);
      for (auto& f : dx.root_cause_flows) std::printf("    %s\n", f.to_string().c_str());
    }
  }
  return 0;
}
