// Calibrates diagnosis::ConfidenceDiscounts against the robustness sweeps.
//
// Method (recorded in DESIGN.md §10): run every crafted scenario under the
// collection-fault axis (uniform polling loss, the bench_robustness grid)
// plus the data-plane axes (PFC frame loss, victim-path link flaps), label
// each run correct (tp) or incorrect, and grid-search the three per-class
// discounts for the triple that best separates correct from incorrect runs
// by reported confidence:
//   primary:   AUC (Mann-Whitney) of confidence as a correctness ranker
//   tie-break: Brier score (mean squared error of confidence against the
//              correct/incorrect outcome) — AUC is invariant under the
//              monotone rescaling a steeper discount applies, so the
//              ranking ties and Brier picks the best-CALIBRATED triple,
//              the one whose confidence best approximates P(correct)
// subject to the ordering invariant failed < stale < repoll (a snapshot
// that never arrived is worse evidence than one that arrived late, which
// is worse than one that merely needed a retry).
//
//   $ ./calibrate_confidence [seeds-per-point]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "diagnosis/diagnosis.hpp"
#include "eval/runner.hpp"
#include "eval/sweep.hpp"

using namespace hawkeye;

namespace {

struct Sample {
  bool correct = false;
  double coverage = 1.0;
  std::uint32_t failed = 0, stale = 0, repolls = 0;
};

double auc(const std::vector<Sample>& samples,
           const diagnosis::ConfidenceDiscounts& d) {
  // Mann-Whitney U: P(conf(correct) > conf(incorrect)), ties count 0.5.
  double wins = 0;
  std::uint64_t pairs = 0;
  for (const Sample& pos : samples) {
    if (!pos.correct) continue;
    const double cp = diagnosis::collection_confidence(
        pos.coverage, pos.failed, pos.stale, pos.repolls, d);
    for (const Sample& neg : samples) {
      if (neg.correct) continue;
      const double cn = diagnosis::collection_confidence(
          neg.coverage, neg.failed, neg.stale, neg.repolls, d);
      ++pairs;
      if (cp > cn) wins += 1;
      else if (cp == cn) wins += 0.5;
    }
  }
  return pairs == 0 ? 0.5 : wins / static_cast<double>(pairs);
}

double brier(const std::vector<Sample>& samples,
             const diagnosis::ConfidenceDiscounts& d) {
  double sum = 0;
  for (const Sample& s : samples) {
    const double c = diagnosis::collection_confidence(s.coverage, s.failed,
                                                      s.stale, s.repolls, d);
    const double y = s.correct ? 1.0 : 0.0;
    sum += (c - y) * (c - y);
  }
  return samples.empty() ? 1.0 : sum / static_cast<double>(samples.size());
}

}  // namespace

int main(int argc, char** argv) {
  const int seeds = argc > 1 ? std::atoi(argv[1]) : 5;
  const diagnosis::AnomalyType types[] = {
      diagnosis::AnomalyType::kMicroBurstIncast,
      diagnosis::AnomalyType::kPfcStorm,
      diagnosis::AnomalyType::kInLoopDeadlock,
      diagnosis::AnomalyType::kOutOfLoopDeadlockContention,
      diagnosis::AnomalyType::kOutOfLoopDeadlockInjection,
      diagnosis::AnomalyType::kNormalContention,
  };

  std::vector<fault::FaultPlan> plans;
  for (const double rate : {0.05, 0.10, 0.20, 0.30, 0.40}) {
    plans.push_back(fault::FaultPlan::uniform_poll_loss(rate, 1));
  }
  for (const double rate : {0.25, 0.50}) {
    plans.push_back(fault::FaultPlan::uniform_pfc_loss(rate, 1));
  }
  for (const sim::Time period : {sim::us(500), sim::us(250)}) {
    fault::FaultPlan plan;
    fault::LinkFlapSpec flap;  // runner binds it to the victim path
    flap.start = sim::us(100);
    flap.down_ns = sim::us(100);
    flap.period_ns = period;
    flap.jitter = 0.5;
    plan.link_flaps.push_back(flap);
    plans.push_back(plan);
  }

  std::vector<Sample> samples;
  for (const fault::FaultPlan& plan : plans) {
    for (const auto type : types) {
      eval::RunConfig cfg;
      cfg.scenario = type;
      cfg.faults = plan;
      for (const eval::RunResult& r :
           eval::run_sweep(eval::seed_sweep(cfg, seeds))) {
        Sample s;
        s.correct = r.tp;
        s.coverage = r.collection_coverage;
        s.failed = r.failed_collections;
        s.stale = r.stale_epochs;
        s.repolls = r.repolls;
        samples.push_back(s);
      }
    }
  }
  int npos = 0;
  for (const Sample& s : samples) npos += s.correct ? 1 : 0;
  std::printf("%zu runs (%d correct, %zu incorrect)\n", samples.size(), npos,
              samples.size() - static_cast<std::size_t>(npos));

  const double fgrid[] = {0.70, 0.75, 0.80, 0.85, 0.90};
  const double sgrid[] = {0.90, 0.93, 0.95, 0.97};
  const double rgrid[] = {0.95, 0.96, 0.97, 0.98, 0.99};
  diagnosis::ConfidenceDiscounts best;
  double best_auc = -1, best_brier = 2;
  for (const double f : fgrid) {
    for (const double s : sgrid) {
      if (s <= f) continue;  // ordering invariant: failed < stale < repoll
      for (const double r : rgrid) {
        if (r <= s) continue;
        const diagnosis::ConfidenceDiscounts d{f, s, r};
        const double a = auc(samples, d);
        const double b = brier(samples, d);
        if (a > best_auc + 1e-12 ||
            (a > best_auc - 1e-12 && b < best_brier)) {
          best_auc = a;
          best_brier = b;
          best = d;
        }
      }
    }
  }

  const diagnosis::ConfidenceDiscounts current{};
  std::printf("current defaults  f=%.2f s=%.2f r=%.2f  AUC=%.4f brier=%.4f\n",
              current.failed_collection, current.stale_epoch, current.repoll,
              auc(samples, current), brier(samples, current));
  std::printf("best on grid      f=%.2f s=%.2f r=%.2f  AUC=%.4f brier=%.4f\n",
              best.failed_collection, best.stale_epoch, best.repoll, best_auc,
              best_brier);
  return 0;
}
