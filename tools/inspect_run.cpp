#include <cstdio>
#include "eval/runner.hpp"
#include "sim/logger.hpp"
using namespace hawkeye;
int main(int argc, char** argv) {
  eval::RunConfig cfg;
  cfg.scenario = (diagnosis::AnomalyType)(argc > 1 ? atoi(argv[1]) : 1);
  cfg.seed = argc > 2 ? strtoull(argv[2], nullptr, 10) : 1;
  if (argc > 3) cfg.epoch_shift = atoi(argv[3]);
  if (argc > 4) cfg.threshold_factor = atof(argv[4]);
  if (argc > 5) cfg.background_load = atof(argv[5]);
  if (argc > 6) cfg.fleet_workload = (workload::FleetWorkload)atoi(argv[6]);
  if (argc > 7) cfg.fleet_severity = atof(argv[7]);
  if (argc > 8) cfg.fat_tree_k = atoi(argv[8]);
  cfg.verbose = true;
  sim::Logger::level() = sim::LogLevel::kDebug;
  auto r = eval::run_one(cfg);
  std::printf("%s: trig=%d dx=%s tp=%d fp=%d fn=%d sw=%zu cov=%.2f\n",
    r.scenario_name.c_str(), r.triggered, std::string(to_string(r.dx.type)).c_str(),
    r.tp, r.fp, r.fn, r.collected_switches, r.causal_coverage);
  std::printf("init=%s peer=%d\nroots:\n", net::to_string(r.dx.initial_port).c_str(), r.dx.injecting_peer);
  for (auto& f : r.dx.root_cause_flows) std::printf("  %s\n", f.to_string().c_str());
  std::printf("collected:");
  for (auto n : r.collected) std::printf(" %d", n);
  std::printf("\nconf=%.2f crc=%llu retx=%llu ratelim=%llu drain=%llu\n",
    r.confidence, (unsigned long long)r.crc_drops,
    (unsigned long long)r.retransmissions,
    (unsigned long long)r.rate_limited_pkts,
    (unsigned long long)r.host_drain_delayed);
  for (auto& l : r.fleet_evidence.links)
    std::printf("link %d<->%d crc=%llu nom=%.0f act=%.0f slow=%llu oversub=%d\n",
      l.node_a, l.node_b, (unsigned long long)l.crc_errors, l.nominal_gbps,
      l.actual_gbps, (unsigned long long)l.slow_serializations, l.oversub_tier);
  for (auto& h : r.fleet_evidence.hosts)
    std::printf("host %d drain_delayed=%llu backlog=%lld\n", h.host,
      (unsigned long long)h.drain_delayed_pkts, (long long)h.max_drain_backlog_ns);
  if (!r.dx.narrative.empty()) std::printf("narrative: %s\n", r.dx.narrative.c_str());
  return 0;
}
