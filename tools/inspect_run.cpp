#include <cstdio>
#include "eval/runner.hpp"
#include "sim/logger.hpp"
using namespace hawkeye;
int main(int argc, char** argv) {
  eval::RunConfig cfg;
  cfg.scenario = (diagnosis::AnomalyType)(argc > 1 ? atoi(argv[1]) : 1);
  cfg.seed = argc > 2 ? strtoull(argv[2], nullptr, 10) : 1;
  if (argc > 3) cfg.epoch_shift = atoi(argv[3]);
  if (argc > 4) cfg.threshold_factor = atof(argv[4]);
  if (argc > 5) cfg.background_load = atof(argv[5]);
  cfg.verbose = true;
  sim::Logger::level() = sim::LogLevel::kDebug;
  auto r = eval::run_one(cfg);
  std::printf("%s: trig=%d dx=%s tp=%d fp=%d fn=%d sw=%zu cov=%.2f\n",
    r.scenario_name.c_str(), r.triggered, std::string(to_string(r.dx.type)).c_str(),
    r.tp, r.fp, r.fn, r.collected_switches, r.causal_coverage);
  std::printf("init=%s peer=%d\nroots:\n", net::to_string(r.dx.initial_port).c_str(), r.dx.injecting_peer);
  for (auto& f : r.dx.root_cause_flows) std::printf("  %s\n", f.to_string().c_str());
  std::printf("collected:");
  for (auto n : r.collected) std::printf(" %d", n);
  std::printf("\n");
  return 0;
}
