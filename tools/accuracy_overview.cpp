// Validation sweep: one line per (anomaly, seed) with the diagnosis
// verdict and scoring — the quick health check used during development.
//   $ ./accuracy_overview [seeds-per-type]
#include <cstdio>
#include "eval/runner.hpp"
using namespace hawkeye;
int main(int argc, char** argv) {
  using diagnosis::AnomalyType;
  int seeds = argc > 1 ? atoi(argv[1]) : 3;
  const AnomalyType types[] = {
    AnomalyType::kMicroBurstIncast, AnomalyType::kPfcStorm,
    AnomalyType::kInLoopDeadlock, AnomalyType::kOutOfLoopDeadlockContention,
    AnomalyType::kOutOfLoopDeadlockInjection, AnomalyType::kNormalContention};
  for (auto t : types) {
    for (std::uint64_t seed = 1; seed <= (std::uint64_t)seeds; ++seed) {
      eval::RunConfig cfg;
      cfg.scenario = t;
      cfg.seed = seed;
      auto r = eval::run_one(cfg);
      std::printf("%-30s seed=%llu trig=%d dx=%-28s tp=%d fp=%d fn=%d sw=%zu cov=%.2f\n",
        r.scenario_name.c_str(), (unsigned long long)seed, r.triggered,
        std::string(to_string(r.dx.type)).c_str(), r.tp, r.fp, r.fn,
        r.collected_switches, r.causal_coverage);
      if (r.fp) {
        std::printf("   reported:");
        for (auto& f : r.dx.root_cause_flows) std::printf(" %s", f.to_string().c_str());
        std::printf("  peer=%d\n", r.dx.injecting_peer);
      }
    }
  }
  return 0;
}
