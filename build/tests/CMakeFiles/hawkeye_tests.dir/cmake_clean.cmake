file(REMOVE_RECURSE
  "CMakeFiles/hawkeye_tests.dir/baselines_test.cpp.o"
  "CMakeFiles/hawkeye_tests.dir/baselines_test.cpp.o.d"
  "CMakeFiles/hawkeye_tests.dir/collect_test.cpp.o"
  "CMakeFiles/hawkeye_tests.dir/collect_test.cpp.o.d"
  "CMakeFiles/hawkeye_tests.dir/device_test.cpp.o"
  "CMakeFiles/hawkeye_tests.dir/device_test.cpp.o.d"
  "CMakeFiles/hawkeye_tests.dir/diagnosis_test.cpp.o"
  "CMakeFiles/hawkeye_tests.dir/diagnosis_test.cpp.o.d"
  "CMakeFiles/hawkeye_tests.dir/integration_test.cpp.o"
  "CMakeFiles/hawkeye_tests.dir/integration_test.cpp.o.d"
  "CMakeFiles/hawkeye_tests.dir/net_test.cpp.o"
  "CMakeFiles/hawkeye_tests.dir/net_test.cpp.o.d"
  "CMakeFiles/hawkeye_tests.dir/provenance_test.cpp.o"
  "CMakeFiles/hawkeye_tests.dir/provenance_test.cpp.o.d"
  "CMakeFiles/hawkeye_tests.dir/sim_test.cpp.o"
  "CMakeFiles/hawkeye_tests.dir/sim_test.cpp.o.d"
  "CMakeFiles/hawkeye_tests.dir/telemetry_test.cpp.o"
  "CMakeFiles/hawkeye_tests.dir/telemetry_test.cpp.o.d"
  "CMakeFiles/hawkeye_tests.dir/workload_test.cpp.o"
  "CMakeFiles/hawkeye_tests.dir/workload_test.cpp.o.d"
  "hawkeye_tests"
  "hawkeye_tests.pdb"
  "hawkeye_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hawkeye_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
