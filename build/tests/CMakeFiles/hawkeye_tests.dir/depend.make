# Empty dependencies file for hawkeye_tests.
# This may be replaced when dependencies are built.
