file(REMOVE_RECURSE
  "CMakeFiles/bench_contention_causes.dir/bench_contention_causes.cpp.o"
  "CMakeFiles/bench_contention_causes.dir/bench_contention_causes.cpp.o.d"
  "bench_contention_causes"
  "bench_contention_causes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_contention_causes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
