# Empty dependencies file for bench_contention_causes.
# This may be replaced when dependencies are built.
