# Empty dependencies file for bench_fig13_resource_usage.
# This may be replaced when dependencies are built.
