file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_resource_usage.dir/bench_fig13_resource_usage.cpp.o"
  "CMakeFiles/bench_fig13_resource_usage.dir/bench_fig13_resource_usage.cpp.o.d"
  "bench_fig13_resource_usage"
  "bench_fig13_resource_usage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_resource_usage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
