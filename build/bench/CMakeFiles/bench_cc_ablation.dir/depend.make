# Empty dependencies file for bench_cc_ablation.
# This may be replaced when dependencies are built.
