file(REMOVE_RECURSE
  "CMakeFiles/bench_cc_ablation.dir/bench_cc_ablation.cpp.o"
  "CMakeFiles/bench_cc_ablation.dir/bench_cc_ablation.cpp.o.d"
  "bench_cc_ablation"
  "bench_cc_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cc_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
