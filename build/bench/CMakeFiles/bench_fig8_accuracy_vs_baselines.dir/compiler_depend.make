# Empty compiler generated dependencies file for bench_fig8_accuracy_vs_baselines.
# This may be replaced when dependencies are built.
