file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_cpu_poller.dir/bench_fig14_cpu_poller.cpp.o"
  "CMakeFiles/bench_fig14_cpu_poller.dir/bench_fig14_cpu_poller.cpp.o.d"
  "bench_fig14_cpu_poller"
  "bench_fig14_cpu_poller.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_cpu_poller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
