# Empty compiler generated dependencies file for bench_fig14_cpu_poller.
# This may be replaced when dependencies are built.
