file(REMOVE_RECURSE
  "CMakeFiles/bench_watchdog_itsy.dir/bench_watchdog_itsy.cpp.o"
  "CMakeFiles/bench_watchdog_itsy.dir/bench_watchdog_itsy.cpp.o.d"
  "bench_watchdog_itsy"
  "bench_watchdog_itsy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_watchdog_itsy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
