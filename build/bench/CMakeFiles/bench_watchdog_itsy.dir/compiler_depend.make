# Empty compiler generated dependencies file for bench_watchdog_itsy.
# This may be replaced when dependencies are built.
