
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig10_telemetry_granularity.cpp" "bench/CMakeFiles/bench_fig10_telemetry_granularity.dir/bench_fig10_telemetry_granularity.cpp.o" "gcc" "bench/CMakeFiles/bench_fig10_telemetry_granularity.dir/bench_fig10_telemetry_granularity.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/hawkeye_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/hawkeye_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/hawkeye_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/diagnosis/CMakeFiles/hawkeye_diagnosis.dir/DependInfo.cmake"
  "/root/repo/build/src/provenance/CMakeFiles/hawkeye_provenance.dir/DependInfo.cmake"
  "/root/repo/build/src/collect/CMakeFiles/hawkeye_collect.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/hawkeye_device.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/hawkeye_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hawkeye_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
