file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_telemetry_granularity.dir/bench_fig10_telemetry_granularity.cpp.o"
  "CMakeFiles/bench_fig10_telemetry_granularity.dir/bench_fig10_telemetry_granularity.cpp.o.d"
  "bench_fig10_telemetry_granularity"
  "bench_fig10_telemetry_granularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_telemetry_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
