# Empty dependencies file for bench_trigger_ablation.
# This may be replaced when dependencies are built.
