file(REMOVE_RECURSE
  "CMakeFiles/bench_trigger_ablation.dir/bench_trigger_ablation.cpp.o"
  "CMakeFiles/bench_trigger_ablation.dir/bench_trigger_ablation.cpp.o.d"
  "bench_trigger_ablation"
  "bench_trigger_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_trigger_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
