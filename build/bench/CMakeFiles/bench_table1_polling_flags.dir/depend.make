# Empty dependencies file for bench_table1_polling_flags.
# This may be replaced when dependencies are built.
