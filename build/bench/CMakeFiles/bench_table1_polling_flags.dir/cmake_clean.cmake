file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_polling_flags.dir/bench_table1_polling_flags.cpp.o"
  "CMakeFiles/bench_table1_polling_flags.dir/bench_table1_polling_flags.cpp.o.d"
  "bench_table1_polling_flags"
  "bench_table1_polling_flags.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_polling_flags.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
