file(REMOVE_RECURSE
  "libhawkeye_collect.a"
)
