
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/collect/collector.cpp" "src/collect/CMakeFiles/hawkeye_collect.dir/collector.cpp.o" "gcc" "src/collect/CMakeFiles/hawkeye_collect.dir/collector.cpp.o.d"
  "/root/repo/src/collect/detection_agent.cpp" "src/collect/CMakeFiles/hawkeye_collect.dir/detection_agent.cpp.o" "gcc" "src/collect/CMakeFiles/hawkeye_collect.dir/detection_agent.cpp.o.d"
  "/root/repo/src/collect/switch_agent.cpp" "src/collect/CMakeFiles/hawkeye_collect.dir/switch_agent.cpp.o" "gcc" "src/collect/CMakeFiles/hawkeye_collect.dir/switch_agent.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/device/CMakeFiles/hawkeye_device.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/hawkeye_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hawkeye_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
