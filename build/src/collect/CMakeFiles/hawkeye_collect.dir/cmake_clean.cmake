file(REMOVE_RECURSE
  "CMakeFiles/hawkeye_collect.dir/collector.cpp.o"
  "CMakeFiles/hawkeye_collect.dir/collector.cpp.o.d"
  "CMakeFiles/hawkeye_collect.dir/detection_agent.cpp.o"
  "CMakeFiles/hawkeye_collect.dir/detection_agent.cpp.o.d"
  "CMakeFiles/hawkeye_collect.dir/switch_agent.cpp.o"
  "CMakeFiles/hawkeye_collect.dir/switch_agent.cpp.o.d"
  "libhawkeye_collect.a"
  "libhawkeye_collect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hawkeye_collect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
