# Empty dependencies file for hawkeye_collect.
# This may be replaced when dependencies are built.
