file(REMOVE_RECURSE
  "CMakeFiles/hawkeye_workload.dir/flow_size.cpp.o"
  "CMakeFiles/hawkeye_workload.dir/flow_size.cpp.o.d"
  "CMakeFiles/hawkeye_workload.dir/scenario.cpp.o"
  "CMakeFiles/hawkeye_workload.dir/scenario.cpp.o.d"
  "libhawkeye_workload.a"
  "libhawkeye_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hawkeye_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
