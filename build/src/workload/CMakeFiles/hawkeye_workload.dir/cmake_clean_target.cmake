file(REMOVE_RECURSE
  "libhawkeye_workload.a"
)
