# Empty dependencies file for hawkeye_workload.
# This may be replaced when dependencies are built.
