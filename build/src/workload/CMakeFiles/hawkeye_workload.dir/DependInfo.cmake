
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/flow_size.cpp" "src/workload/CMakeFiles/hawkeye_workload.dir/flow_size.cpp.o" "gcc" "src/workload/CMakeFiles/hawkeye_workload.dir/flow_size.cpp.o.d"
  "/root/repo/src/workload/scenario.cpp" "src/workload/CMakeFiles/hawkeye_workload.dir/scenario.cpp.o" "gcc" "src/workload/CMakeFiles/hawkeye_workload.dir/scenario.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/device/CMakeFiles/hawkeye_device.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/hawkeye_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hawkeye_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
