file(REMOVE_RECURSE
  "CMakeFiles/hawkeye_eval.dir/runner.cpp.o"
  "CMakeFiles/hawkeye_eval.dir/runner.cpp.o.d"
  "CMakeFiles/hawkeye_eval.dir/testbed.cpp.o"
  "CMakeFiles/hawkeye_eval.dir/testbed.cpp.o.d"
  "libhawkeye_eval.a"
  "libhawkeye_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hawkeye_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
