file(REMOVE_RECURSE
  "libhawkeye_eval.a"
)
