# Empty compiler generated dependencies file for hawkeye_eval.
# This may be replaced when dependencies are built.
