# Empty dependencies file for hawkeye_baselines.
# This may be replaced when dependencies are built.
