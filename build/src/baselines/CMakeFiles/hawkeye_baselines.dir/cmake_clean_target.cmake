file(REMOVE_RECURSE
  "libhawkeye_baselines.a"
)
