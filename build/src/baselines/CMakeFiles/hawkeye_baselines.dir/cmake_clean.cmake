file(REMOVE_RECURSE
  "CMakeFiles/hawkeye_baselines.dir/itsy.cpp.o"
  "CMakeFiles/hawkeye_baselines.dir/itsy.cpp.o.d"
  "CMakeFiles/hawkeye_baselines.dir/local_contention.cpp.o"
  "CMakeFiles/hawkeye_baselines.dir/local_contention.cpp.o.d"
  "CMakeFiles/hawkeye_baselines.dir/pfc_watchdog.cpp.o"
  "CMakeFiles/hawkeye_baselines.dir/pfc_watchdog.cpp.o.d"
  "libhawkeye_baselines.a"
  "libhawkeye_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hawkeye_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
