# Empty dependencies file for hawkeye_diagnosis.
# This may be replaced when dependencies are built.
