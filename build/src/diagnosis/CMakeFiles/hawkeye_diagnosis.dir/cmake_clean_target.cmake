file(REMOVE_RECURSE
  "libhawkeye_diagnosis.a"
)
