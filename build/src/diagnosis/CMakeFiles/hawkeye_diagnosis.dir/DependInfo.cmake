
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/diagnosis/analyzer.cpp" "src/diagnosis/CMakeFiles/hawkeye_diagnosis.dir/analyzer.cpp.o" "gcc" "src/diagnosis/CMakeFiles/hawkeye_diagnosis.dir/analyzer.cpp.o.d"
  "/root/repo/src/diagnosis/contention_cause.cpp" "src/diagnosis/CMakeFiles/hawkeye_diagnosis.dir/contention_cause.cpp.o" "gcc" "src/diagnosis/CMakeFiles/hawkeye_diagnosis.dir/contention_cause.cpp.o.d"
  "/root/repo/src/diagnosis/diagnosis.cpp" "src/diagnosis/CMakeFiles/hawkeye_diagnosis.dir/diagnosis.cpp.o" "gcc" "src/diagnosis/CMakeFiles/hawkeye_diagnosis.dir/diagnosis.cpp.o.d"
  "/root/repo/src/diagnosis/resolution.cpp" "src/diagnosis/CMakeFiles/hawkeye_diagnosis.dir/resolution.cpp.o" "gcc" "src/diagnosis/CMakeFiles/hawkeye_diagnosis.dir/resolution.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/provenance/CMakeFiles/hawkeye_provenance.dir/DependInfo.cmake"
  "/root/repo/build/src/collect/CMakeFiles/hawkeye_collect.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/hawkeye_device.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/hawkeye_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hawkeye_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
