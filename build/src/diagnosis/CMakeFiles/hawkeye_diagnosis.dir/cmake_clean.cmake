file(REMOVE_RECURSE
  "CMakeFiles/hawkeye_diagnosis.dir/analyzer.cpp.o"
  "CMakeFiles/hawkeye_diagnosis.dir/analyzer.cpp.o.d"
  "CMakeFiles/hawkeye_diagnosis.dir/contention_cause.cpp.o"
  "CMakeFiles/hawkeye_diagnosis.dir/contention_cause.cpp.o.d"
  "CMakeFiles/hawkeye_diagnosis.dir/diagnosis.cpp.o"
  "CMakeFiles/hawkeye_diagnosis.dir/diagnosis.cpp.o.d"
  "CMakeFiles/hawkeye_diagnosis.dir/resolution.cpp.o"
  "CMakeFiles/hawkeye_diagnosis.dir/resolution.cpp.o.d"
  "libhawkeye_diagnosis.a"
  "libhawkeye_diagnosis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hawkeye_diagnosis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
