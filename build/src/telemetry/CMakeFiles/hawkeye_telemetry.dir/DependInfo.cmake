
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/telemetry/engine.cpp" "src/telemetry/CMakeFiles/hawkeye_telemetry.dir/engine.cpp.o" "gcc" "src/telemetry/CMakeFiles/hawkeye_telemetry.dir/engine.cpp.o.d"
  "/root/repo/src/telemetry/resource_model.cpp" "src/telemetry/CMakeFiles/hawkeye_telemetry.dir/resource_model.cpp.o" "gcc" "src/telemetry/CMakeFiles/hawkeye_telemetry.dir/resource_model.cpp.o.d"
  "/root/repo/src/telemetry/wire.cpp" "src/telemetry/CMakeFiles/hawkeye_telemetry.dir/wire.cpp.o" "gcc" "src/telemetry/CMakeFiles/hawkeye_telemetry.dir/wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/hawkeye_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
