# Empty dependencies file for hawkeye_telemetry.
# This may be replaced when dependencies are built.
