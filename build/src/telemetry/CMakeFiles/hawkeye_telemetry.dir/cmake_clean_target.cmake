file(REMOVE_RECURSE
  "libhawkeye_telemetry.a"
)
