file(REMOVE_RECURSE
  "CMakeFiles/hawkeye_telemetry.dir/engine.cpp.o"
  "CMakeFiles/hawkeye_telemetry.dir/engine.cpp.o.d"
  "CMakeFiles/hawkeye_telemetry.dir/resource_model.cpp.o"
  "CMakeFiles/hawkeye_telemetry.dir/resource_model.cpp.o.d"
  "CMakeFiles/hawkeye_telemetry.dir/wire.cpp.o"
  "CMakeFiles/hawkeye_telemetry.dir/wire.cpp.o.d"
  "libhawkeye_telemetry.a"
  "libhawkeye_telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hawkeye_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
