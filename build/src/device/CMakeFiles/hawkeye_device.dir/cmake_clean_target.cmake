file(REMOVE_RECURSE
  "libhawkeye_device.a"
)
