file(REMOVE_RECURSE
  "CMakeFiles/hawkeye_device.dir/host.cpp.o"
  "CMakeFiles/hawkeye_device.dir/host.cpp.o.d"
  "CMakeFiles/hawkeye_device.dir/network.cpp.o"
  "CMakeFiles/hawkeye_device.dir/network.cpp.o.d"
  "CMakeFiles/hawkeye_device.dir/switch.cpp.o"
  "CMakeFiles/hawkeye_device.dir/switch.cpp.o.d"
  "libhawkeye_device.a"
  "libhawkeye_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hawkeye_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
