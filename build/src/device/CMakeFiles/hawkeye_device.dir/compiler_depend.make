# Empty compiler generated dependencies file for hawkeye_device.
# This may be replaced when dependencies are built.
