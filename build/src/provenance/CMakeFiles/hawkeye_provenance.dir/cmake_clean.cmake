file(REMOVE_RECURSE
  "CMakeFiles/hawkeye_provenance.dir/builder.cpp.o"
  "CMakeFiles/hawkeye_provenance.dir/builder.cpp.o.d"
  "CMakeFiles/hawkeye_provenance.dir/graph.cpp.o"
  "CMakeFiles/hawkeye_provenance.dir/graph.cpp.o.d"
  "libhawkeye_provenance.a"
  "libhawkeye_provenance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hawkeye_provenance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
