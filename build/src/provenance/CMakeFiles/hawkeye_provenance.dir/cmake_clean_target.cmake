file(REMOVE_RECURSE
  "libhawkeye_provenance.a"
)
