# Empty compiler generated dependencies file for hawkeye_provenance.
# This may be replaced when dependencies are built.
