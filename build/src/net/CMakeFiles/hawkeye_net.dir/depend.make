# Empty dependencies file for hawkeye_net.
# This may be replaced when dependencies are built.
