file(REMOVE_RECURSE
  "libhawkeye_net.a"
)
