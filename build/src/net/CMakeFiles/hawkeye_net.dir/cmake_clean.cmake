file(REMOVE_RECURSE
  "CMakeFiles/hawkeye_net.dir/packet.cpp.o"
  "CMakeFiles/hawkeye_net.dir/packet.cpp.o.d"
  "CMakeFiles/hawkeye_net.dir/routing.cpp.o"
  "CMakeFiles/hawkeye_net.dir/routing.cpp.o.d"
  "CMakeFiles/hawkeye_net.dir/topology.cpp.o"
  "CMakeFiles/hawkeye_net.dir/topology.cpp.o.d"
  "CMakeFiles/hawkeye_net.dir/types.cpp.o"
  "CMakeFiles/hawkeye_net.dir/types.cpp.o.d"
  "libhawkeye_net.a"
  "libhawkeye_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hawkeye_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
