# Empty dependencies file for accuracy_overview.
# This may be replaced when dependencies are built.
