file(REMOVE_RECURSE
  "CMakeFiles/accuracy_overview.dir/accuracy_overview.cpp.o"
  "CMakeFiles/accuracy_overview.dir/accuracy_overview.cpp.o.d"
  "accuracy_overview"
  "accuracy_overview.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accuracy_overview.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
