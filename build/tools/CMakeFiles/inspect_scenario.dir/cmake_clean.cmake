file(REMOVE_RECURSE
  "CMakeFiles/inspect_scenario.dir/inspect_scenario.cpp.o"
  "CMakeFiles/inspect_scenario.dir/inspect_scenario.cpp.o.d"
  "inspect_scenario"
  "inspect_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inspect_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
