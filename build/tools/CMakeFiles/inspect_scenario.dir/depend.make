# Empty dependencies file for inspect_scenario.
# This may be replaced when dependencies are built.
