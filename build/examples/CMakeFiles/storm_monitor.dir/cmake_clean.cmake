file(REMOVE_RECURSE
  "CMakeFiles/storm_monitor.dir/storm_monitor.cpp.o"
  "CMakeFiles/storm_monitor.dir/storm_monitor.cpp.o.d"
  "storm_monitor"
  "storm_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storm_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
