# Empty compiler generated dependencies file for storm_monitor.
# This may be replaced when dependencies are built.
