// Figure 12: case-study provenance graphs for the four typical anomalies
// of §2.1 — (a) PFC backpressure by incast micro-bursts, (b) PFC storm,
// (c) initiator-in-loop deadlock, (d) initiator-out-of-loop deadlock.
// Prints each crafted trace's heterogeneous wait-for graph and diagnosis.
#include "bench_common.hpp"
#include "eval/testbed.hpp"
#include "provenance/builder.hpp"
#include "workload/scenario.hpp"

using namespace hawkeye;
using namespace hawkeye::bench;

namespace {

void case_study(char label, diagnosis::AnomalyType type, std::uint64_t seed) {
  sim::Rng rng(seed);
  workload::ScenarioSpec spec;
  {
    const net::FatTree probe = net::build_fat_tree(4);
    const net::Routing probe_routing(probe.topo);
    spec = workload::make_scenario(type, probe, probe_routing, rng);
  }
  eval::Testbed::Options opts;
  if (spec.xoff_bytes) opts.switch_cfg.pfc_xoff_bytes = *spec.xoff_bytes;
  if (spec.xon_bytes) opts.switch_cfg.pfc_xon_bytes = *spec.xon_bytes;
  eval::Testbed tb(opts);
  tb.install(spec);
  tb.run_for(spec.duration);

  const collect::Episode* ep = nullptr;
  for (const auto id : tb.collector.episode_order()) {
    const collect::Episode* cand = tb.collector.episode(id);
    if (cand->victim == spec.victim &&
        cand->triggered_at >= spec.anomaly_start) {
      if (ep == nullptr || cand->reports.size() > ep->reports.size()) {
        ep = cand;
      }
    }
  }
  std::printf("\n(%c) %s — victim %s\n", label, spec.name.c_str(),
              spec.victim.to_string().c_str());
  if (ep == nullptr) {
    std::printf("  (no episode triggered; try another seed)\n");
    return;
  }
  const auto g = provenance::build_provenance(*ep, tb.ft.topo);
  std::printf("%s", g.to_string().c_str());
  const auto dx = diagnosis::diagnose(g, tb.ft.topo, tb.routing, spec.victim);
  std::printf("  diagnosis: %s\n", std::string(to_string(dx.type)).c_str());
  std::printf("    %s\n", dx.narrative.c_str());
  if (!dx.loop_ports.empty()) {
    std::printf("    CBD loop:");
    for (const auto& p : dx.loop_ports) {
      std::printf(" %s", net::to_string(p).c_str());
    }
    std::printf("\n");
  }
  for (const auto& f : dx.root_cause_flows) {
    std::printf("    root-cause flow: %s\n", f.to_string().c_str());
  }
  if (dx.injecting_peer != net::kInvalidNode) {
    std::printf("    PFC injected by host H%d\n", dx.injecting_peer);
  }
  for (const auto& f : dx.spreading_flows) {
    std::printf("    spreading flow (paused at 2+ hops): %s\n",
                f.to_string().c_str());
  }
  std::printf("    expected: %s\n",
              std::string(to_string(spec.truth.type)).c_str());
}

}  // namespace

int main() {
  print_header("Figure 12", "provenance graphs for the typical anomalies");
  case_study('a', diagnosis::AnomalyType::kMicroBurstIncast, 7);
  case_study('b', diagnosis::AnomalyType::kPfcStorm, 1);
  case_study('c', diagnosis::AnomalyType::kInLoopDeadlock, 1);
  case_study('d', diagnosis::AnomalyType::kOutOfLoopDeadlockInjection, 2);
  return 0;
}
