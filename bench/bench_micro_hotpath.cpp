// Micro-benchmarks of the hot paths: the per-packet telemetry update (the
// software twin of the Tofino egress pipeline), ECMP lookup, the event
// loop, and the per-diagnosis analyzer cost (provenance build + signature
// matching). Not a paper figure; used to keep the simulator fast enough
// for the trace sweeps.
//
// The schedule/dispatch benches compare the current allocation-free core
// (InlineAction + EventCalendar) against a faithful copy of the seed core
// (std::priority_queue<std::function>) on the same workloads, and the
// results are written to BENCH_hotpath.json (override the path with
// HAWKEYE_BENCH_JSON) so the perf trajectory is tracked across PRs.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <cstring>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "diagnosis/diagnosis.hpp"
#include "eval/testbed.hpp"
#include "eval/runner.hpp"
#include "net/routing.hpp"
#include "provenance/builder.hpp"
#include "sim/simulator.hpp"
#include "telemetry/engine.hpp"
#include "workload/scenario.hpp"

using namespace hawkeye;

namespace {

/// Verbatim copy of the seed simulator core (PR 0): one global binary heap
/// of type-erased std::function events. Kept here as the baseline the
/// calendar+SBO core is measured against.
class LegacyHeapSimulator {
 public:
  using Action = std::function<void()>;

  sim::Time now() const { return now_; }
  void schedule(sim::Time delay, Action fn) {
    schedule_at(now_ + (delay < 0 ? 0 : delay), std::move(fn));
  }
  void schedule_at(sim::Time at, Action fn) {
    if (at < now_) at = now_;
    heap_.push(Event{at, next_seq_++, std::move(fn)});
  }
  bool step() {
    if (heap_.empty()) return false;
    Event& ev = const_cast<Event&>(heap_.top());
    now_ = ev.at;
    Action fn = std::move(ev.fn);
    heap_.pop();
    fn();
    ++executed_;
    return true;
  }
  void run() {
    while (step()) {
    }
  }

 private:
  struct Event {
    sim::Time at;
    std::uint64_t seq;
    Action fn;
    bool operator>(const Event& o) const {
      return at != o.at ? at > o.at : seq > o.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, std::greater<>> heap_;
  sim::Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

/// The schedule+dispatch workload both cores run: `n` self-rescheduling
/// timers with the capture footprint of the real packet-arrival closure
/// (four words — pointer, pointer, slot, port), hopping the delay mix the
/// fabric actually schedules: 80–1103 ns serialization + propagation hops
/// (MTU at 100 Gbps ≈ 123 ns; per-link delay 1000 ns) with ~1.6% of
/// events arming a 3 ms retransmit-timeout-like far delay. `timers` is the
/// pending-event population — k=8 traces hold tens of thousands of
/// in-flight packets, which is where the global heap's O(log n) sift
/// thrashes the cache. Each timer fires `hops` times.
template <typename Sim>
std::uint64_t pump_events(Sim& simu, int timers, int hops) {
  std::uint64_t fired = 0;
  struct Timer {
    Sim* simu;
    std::uint64_t* fired;
    std::uint32_t state;
    std::int32_t left;
    void operator()() {
      ++*fired;
      if (--left <= 0) return;
      state = state * 1664525u + 1013904223u;  // LCG: deterministic delays
      sim::Time delay = 80 + (state >> 22);    // 80 .. 1103 ns hop
      if ((state & 63u) == 0) delay = 3'000'000;  // RTO-like far event
      simu->schedule(delay, *this);
    }
  };
  for (int i = 0; i < timers; ++i) {
    simu.schedule(i, Timer{&simu, &fired,
                           static_cast<std::uint32_t>(i) * 2654435761u, hops});
  }
  simu.run();
  return fired;
}

void BM_ScheduleDispatchLegacyHeap(benchmark::State& state) {
  const int timers = static_cast<int>(state.range(0));
  for (auto _ : state) {
    LegacyHeapSimulator simu;
    benchmark::DoNotOptimize(pump_events(simu, timers, 64));
  }
  state.SetItemsProcessed(state.iterations() * timers * 64);
}
BENCHMARK(BM_ScheduleDispatchLegacyHeap)->Arg(1000)->Arg(20000)->Arg(100000);

void BM_ScheduleDispatchCalendar(benchmark::State& state) {
  const int timers = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator simu;
    benchmark::DoNotOptimize(pump_events(simu, timers, 64));
  }
  state.SetItemsProcessed(state.iterations() * timers * 64);
}
BENCHMARK(BM_ScheduleDispatchCalendar)->Arg(1000)->Arg(20000)->Arg(100000);

net::FiveTuple tup(std::uint32_t s, std::uint32_t d, std::uint16_t sp) {
  net::FiveTuple t;
  t.src_ip = s;
  t.dst_ip = d;
  t.src_port = sp;
  t.dst_port = 4791;
  return t;
}

void BM_FiveTupleHash(benchmark::State& state) {
  const net::FiveTuple t = tup(12, 13, 777);
  for (auto _ : state) benchmark::DoNotOptimize(t.hash());
}
BENCHMARK(BM_FiveTupleHash);

void BM_TelemetryEnqueue(benchmark::State& state) {
  telemetry::TelemetryConfig cfg;
  telemetry::TelemetryEngine eng(1, 64, cfg);
  const net::Packet pkt = net::make_data_packet(tup(1, 2, 3), 1, 0, 1000,
                                                false, 0);
  sim::Time now = 0;
  for (auto _ : state) {
    eng.on_enqueue(pkt, 2, 7, 5, false, now);
    now += 80;
  }
}
BENCHMARK(BM_TelemetryEnqueue);

void BM_TelemetrySnapshot(benchmark::State& state) {
  telemetry::TelemetryConfig cfg;
  telemetry::TelemetryEngine eng(1, 64, cfg);
  sim::Rng rng(1);
  for (int i = 0; i < 5000; ++i) {
    const auto pkt = net::make_data_packet(
        tup(static_cast<std::uint32_t>(rng.uniform_int(1, 16)), 2,
            static_cast<std::uint16_t>(rng.uniform_int(1, 200))),
        1, 0, 1000, false, 0);
    eng.on_enqueue(pkt, 2, 7, 5, false, i * 100);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(eng.snapshot(500'000));
  }
}
BENCHMARK(BM_TelemetrySnapshot);

void BM_EcmpLookup(benchmark::State& state) {
  const net::FatTree ft = net::build_fat_tree(4);
  const net::Routing routing(ft.topo);
  const net::FiveTuple t = tup(net::Topology::ip_of(ft.hosts[0]),
                               net::Topology::ip_of(ft.hosts[15]), 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(routing.egress_port(ft.edges[0], t));
  }
}
BENCHMARK(BM_EcmpLookup);

void BM_SimulatorEventLoop(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator simu;
    int count = 0;
    for (int i = 0; i < 1000; ++i) {
      simu.schedule(i, [&count] { ++count; });
    }
    simu.run();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SimulatorEventLoop);

/// One full diagnosis episode: simulate an incast trace once, then measure
/// the analyzer (graph construction + signature matching) in isolation.
void BM_AnalyzerProvenanceAndDiagnosis(benchmark::State& state) {
  sim::Rng rng(7);
  workload::ScenarioSpec spec;
  {
    const net::FatTree probe = net::build_fat_tree(4);
    const net::Routing pr(probe.topo);
    spec = workload::make_scenario(diagnosis::AnomalyType::kMicroBurstIncast,
                                   probe, pr, rng);
  }
  eval::Testbed tb;
  tb.install(spec);
  tb.run_for(spec.duration);
  const collect::Episode* ep = nullptr;
  for (const auto id : tb.collector.episode_order()) {
    const auto* cand = tb.collector.episode(id);
    if (cand->victim == spec.victim) ep = cand;
  }
  if (ep == nullptr) {
    state.SkipWithError("no episode triggered");
    return;
  }
  for (auto _ : state) {
    const auto g = provenance::build_provenance(*ep, tb.ft.topo);
    benchmark::DoNotOptimize(
        diagnosis::diagnose(g, tb.ft.topo, tb.routing, spec.victim));
  }
}
BENCHMARK(BM_AnalyzerProvenanceAndDiagnosis)->Unit(benchmark::kMicrosecond);

void BM_EndToEndIncastTrace(benchmark::State& state) {
  for (auto _ : state) {
    eval::RunConfig cfg;
    cfg.scenario = diagnosis::AnomalyType::kMicroBurstIncast;
    cfg.seed = 7;
    benchmark::DoNotOptimize(eval::run_one(cfg));
  }
  state.SetLabel("full 2ms fat-tree trace + diagnosis");
}
BENCHMARK(BM_EndToEndIncastTrace)->Unit(benchmark::kMillisecond)
    ->Iterations(3);

/// Per-shard-count wall-clock of the same end-to-end trace. The sharded
/// simulator's output is bitwise identical at every shard count, so this
/// row isolates pure execution-strategy cost: the spread between shard
/// counts is bookkeeping overhead on a single core and parallel speedup on
/// a multi-core host (compare `num_cpus` in the JSON context block).
void BM_EndToEndIncastTraceSharded(benchmark::State& state) {
  for (auto _ : state) {
    eval::RunConfig cfg;
    cfg.scenario = diagnosis::AnomalyType::kMicroBurstIncast;
    cfg.seed = 7;
    cfg.shards = static_cast<int>(state.range(0));
    benchmark::DoNotOptimize(eval::run_one(cfg));
  }
  state.SetLabel("shards=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_EndToEndIncastTraceSharded)
    ->Unit(benchmark::kMillisecond)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Iterations(3);

}  // namespace

// BENCHMARK_MAIN, plus a machine-readable copy of every result in
// BENCH_hotpath.json (HAWKEYE_BENCH_JSON overrides the path) so the
// schedule/dispatch throughput trajectory is tracked across PRs. An
// explicit --benchmark_out on the command line wins over the default.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag;
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0) has_out = true;
  }
  std::string fmt_flag = "--benchmark_out_format=json";
  if (!has_out) {
    const char* json_path = std::getenv("HAWKEYE_BENCH_JSON");
    out_flag = std::string("--benchmark_out=") +
               (json_path != nullptr ? json_path : "BENCH_hotpath.json");
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
