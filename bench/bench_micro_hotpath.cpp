// Micro-benchmarks of the hot paths: the per-packet telemetry update (the
// software twin of the Tofino egress pipeline), ECMP lookup, the event
// loop, and the per-diagnosis analyzer cost (provenance build + signature
// matching). Not a paper figure; used to keep the simulator fast enough
// for the trace sweeps.
#include <benchmark/benchmark.h>

#include "diagnosis/diagnosis.hpp"
#include "eval/testbed.hpp"
#include "eval/runner.hpp"
#include "net/routing.hpp"
#include "provenance/builder.hpp"
#include "sim/simulator.hpp"
#include "telemetry/engine.hpp"
#include "workload/scenario.hpp"

using namespace hawkeye;

namespace {

net::FiveTuple tup(std::uint32_t s, std::uint32_t d, std::uint16_t sp) {
  net::FiveTuple t;
  t.src_ip = s;
  t.dst_ip = d;
  t.src_port = sp;
  t.dst_port = 4791;
  return t;
}

void BM_FiveTupleHash(benchmark::State& state) {
  const net::FiveTuple t = tup(12, 13, 777);
  for (auto _ : state) benchmark::DoNotOptimize(t.hash());
}
BENCHMARK(BM_FiveTupleHash);

void BM_TelemetryEnqueue(benchmark::State& state) {
  telemetry::TelemetryConfig cfg;
  telemetry::TelemetryEngine eng(1, 64, cfg);
  const net::Packet pkt = net::make_data_packet(tup(1, 2, 3), 1, 0, 1000,
                                                false, 0);
  sim::Time now = 0;
  for (auto _ : state) {
    eng.on_enqueue(pkt, 2, 7, 5, false, now);
    now += 80;
  }
}
BENCHMARK(BM_TelemetryEnqueue);

void BM_TelemetrySnapshot(benchmark::State& state) {
  telemetry::TelemetryConfig cfg;
  telemetry::TelemetryEngine eng(1, 64, cfg);
  sim::Rng rng(1);
  for (int i = 0; i < 5000; ++i) {
    const auto pkt = net::make_data_packet(
        tup(static_cast<std::uint32_t>(rng.uniform_int(1, 16)), 2,
            static_cast<std::uint16_t>(rng.uniform_int(1, 200))),
        1, 0, 1000, false, 0);
    eng.on_enqueue(pkt, 2, 7, 5, false, i * 100);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(eng.snapshot(500'000));
  }
}
BENCHMARK(BM_TelemetrySnapshot);

void BM_EcmpLookup(benchmark::State& state) {
  const net::FatTree ft = net::build_fat_tree(4);
  const net::Routing routing(ft.topo);
  const net::FiveTuple t = tup(net::Topology::ip_of(ft.hosts[0]),
                               net::Topology::ip_of(ft.hosts[15]), 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(routing.egress_port(ft.edges[0], t));
  }
}
BENCHMARK(BM_EcmpLookup);

void BM_SimulatorEventLoop(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator simu;
    int count = 0;
    for (int i = 0; i < 1000; ++i) {
      simu.schedule(i, [&count] { ++count; });
    }
    simu.run();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SimulatorEventLoop);

/// One full diagnosis episode: simulate an incast trace once, then measure
/// the analyzer (graph construction + signature matching) in isolation.
void BM_AnalyzerProvenanceAndDiagnosis(benchmark::State& state) {
  sim::Rng rng(7);
  workload::ScenarioSpec spec;
  {
    const net::FatTree probe = net::build_fat_tree(4);
    const net::Routing pr(probe.topo);
    spec = workload::make_scenario(diagnosis::AnomalyType::kMicroBurstIncast,
                                   probe, pr, rng);
  }
  eval::Testbed tb;
  tb.install(spec);
  tb.run_for(spec.duration);
  const collect::Episode* ep = nullptr;
  for (const auto id : tb.collector.episode_order()) {
    const auto* cand = tb.collector.episode(id);
    if (cand->victim == spec.victim) ep = cand;
  }
  if (ep == nullptr) {
    state.SkipWithError("no episode triggered");
    return;
  }
  for (auto _ : state) {
    const auto g = provenance::build_provenance(*ep, tb.ft.topo);
    benchmark::DoNotOptimize(
        diagnosis::diagnose(g, tb.ft.topo, tb.routing, spec.victim));
  }
}
BENCHMARK(BM_AnalyzerProvenanceAndDiagnosis)->Unit(benchmark::kMicrosecond);

void BM_EndToEndIncastTrace(benchmark::State& state) {
  for (auto _ : state) {
    eval::RunConfig cfg;
    cfg.scenario = diagnosis::AnomalyType::kMicroBurstIncast;
    cfg.seed = 7;
    benchmark::DoNotOptimize(eval::run_one(cfg));
  }
  state.SetLabel("full 2ms fat-tree trace + diagnosis");
}
BENCHMARK(BM_EndToEndIncastTrace)->Unit(benchmark::kMillisecond)
    ->Iterations(3);

}  // namespace

BENCHMARK_MAIN();
