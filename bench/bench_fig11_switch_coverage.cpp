// Figure 11: number of switches collected per diagnosis and coverage of
// the causally-relevant switch set, per anomaly, for Hawkeye vs full
// polling vs victim-only.
//
// Expected shape (paper §4.3): full polling always collects 20 switches
// (coverage 1.0 by construction); Hawkeye collects far fewer with ~100%
// causal coverage; victim-only collects the least but its coverage drops
// on deadlocks (the CBD spans switches off the victim path).
#include "bench_common.hpp"

using namespace hawkeye;
using namespace hawkeye::bench;

int main() {
  print_header("Figure 11", "collected-switch count & causal coverage");
  const int n = seeds_per_point();
  const eval::Method methods[] = {eval::Method::kHawkeye,
                                  eval::Method::kFullPolling,
                                  eval::Method::kVictimOnly};

  for (const auto type : all_anomalies()) {
    std::printf("\n--- %s ---\n", std::string(to_string(type)).c_str());
    std::printf("%-14s %-18s %-16s\n", "method", "switches collected",
                "causal coverage");
    for (const auto m : methods) {
      eval::RunConfig cfg;
      cfg.scenario = type;
      cfg.method = m;
      const PointStats st = run_point(cfg, n);
      std::printf("%-14s %-18.1f %-16.2f\n",
                  std::string(to_string(m)).c_str(),
                  st.avg(st.collected_switches), st.avg(st.causal_coverage));
    }
  }
  return 0;
}
