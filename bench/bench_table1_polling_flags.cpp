// Table 1: polling flag specifications — demonstrates each flag's tracing
// behaviour by injecting polling packets directly into a congested fabric
// and counting which switches end up collected.
//
//   00  useless tracing              -> dropped, nothing collected
//   01  trace along victim path      -> victim-path switches
//   10  trace along PFC causality    -> downstream causal switches
//   11  both                         -> union
#include "bench_common.hpp"
#include "eval/testbed.hpp"
#include "workload/scenario.hpp"

using namespace hawkeye;
using namespace hawkeye::bench;

namespace {

std::size_t collected_with_flag(net::PollingFlag flag) {
  sim::Rng rng(7);
  workload::ScenarioSpec spec;
  {
    const net::FatTree probe = net::build_fat_tree(4);
    const net::Routing pr(probe.topo);
    spec = workload::make_scenario(diagnosis::AnomalyType::kMicroBurstIncast,
                                   probe, pr, rng);
  }
  // Disable the built-in agent: we inject the polling packet by hand.
  eval::Testbed::Options opts;
  opts.agent_cfg.threshold_factor = 1e9;
  opts.agent_cfg.min_stall = sim::ms(100);
  eval::Testbed tb(opts);
  tb.install(spec);

  const net::NodeId src = net::Topology::node_of_ip(spec.victim.src_ip);
  tb.collector.open_episode(42, spec.victim, 0);
  tb.simu.schedule_at(spec.anomaly_start + sim::us(60), [&] {
    net::Packet poll = net::make_polling(spec.victim, 42, flag);
    tb.net.deliver(src, 0, std::move(poll), 1);
  });
  tb.run_for(spec.duration);
  const collect::Episode* ep = tb.collector.episode(42);
  return ep == nullptr ? 0 : ep->reports.size();
}

}  // namespace

int main() {
  print_header("Table 1", "polling flag semantics");
  std::printf("%-6s %-38s %s\n", "flag", "meaning", "switches collected");
  struct Row {
    net::PollingFlag flag;
    const char* meaning;
  };
  const Row rows[] = {
      {net::PollingFlag::kUseless, "useless tracing (dropped)"},
      {net::PollingFlag::kVictimPath, "(default) trace along victim path"},
      {net::PollingFlag::kPfcCausality, "trace along PFC causality"},
      {net::PollingFlag::kBoth, "trace both"},
  };
  for (const Row& r : rows) {
    std::printf("%02d     %-38s %zu\n",
                static_cast<int>(r.flag), r.meaning,
                collected_with_flag(r.flag));
  }
  return 0;
}
