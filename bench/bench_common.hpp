#pragma once

// Shared plumbing for the figure/table reproduction benches. Each bench is
// a standalone binary that prints the rows/series of one paper figure.
// Seeds per data point default to a small count so the whole bench suite
// runs in minutes; set HAWKEYE_BENCH_SEEDS=<n> for tighter error bars
// (the paper crafts 100 traces per scenario).

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "eval/runner.hpp"
#include "eval/sweep.hpp"

namespace hawkeye::bench {

inline int seeds_per_point(int def = 3) {
  if (const char* env = std::getenv("HAWKEYE_BENCH_SEEDS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return def;
}

inline const std::vector<diagnosis::AnomalyType>& all_anomalies() {
  static const std::vector<diagnosis::AnomalyType> kAll = {
      diagnosis::AnomalyType::kMicroBurstIncast,
      diagnosis::AnomalyType::kPfcStorm,
      diagnosis::AnomalyType::kInLoopDeadlock,
      diagnosis::AnomalyType::kOutOfLoopDeadlockContention,
      diagnosis::AnomalyType::kOutOfLoopDeadlockInjection,
      diagnosis::AnomalyType::kNormalContention,
  };
  return kAll;
}

/// Aggregate of N trace runs at one parameter point.
struct PointStats {
  eval::PrecisionRecall pr;
  int runs = 0;
  double telemetry_bytes = 0;
  double raw_telemetry_bytes = 0;
  double report_packets = 0;
  double dataplane_report_packets = 0;
  double polling_packets = 0;
  double monitor_bw_bytes = 0;
  double collected_switches = 0;
  double causal_coverage = 0;
  double detection_latency_us = 0;
  double sim_events = 0;

  void add(const eval::RunResult& r) {
    pr.add(r);
    ++runs;
    telemetry_bytes += static_cast<double>(r.telemetry_bytes);
    raw_telemetry_bytes += static_cast<double>(r.raw_telemetry_bytes);
    report_packets += static_cast<double>(r.report_packets);
    dataplane_report_packets +=
        static_cast<double>(r.dataplane_report_packets);
    polling_packets += static_cast<double>(r.polling_packets);
    monitor_bw_bytes += static_cast<double>(r.monitor_bw_bytes);
    collected_switches += static_cast<double>(r.collected_switches);
    sim_events += static_cast<double>(r.sim_events);
    causal_coverage += r.causal_coverage;
    if (r.detection_latency >= 0) {
      detection_latency_us += static_cast<double>(r.detection_latency) / 1e3;
    }
  }
  double avg(double sum) const { return runs == 0 ? 0 : sum / runs; }
};

/// Run one (scenario, config) point over `n` trace seeds. Runs fan out
/// across the sweep runner's thread pool (HAWKEYE_SWEEP_THREADS to pin);
/// results are aggregated in seed order, so the stats are identical to the
/// old serial loop regardless of thread count.
inline PointStats run_point(eval::RunConfig cfg, int n,
                            std::uint64_t seed0 = 1) {
  PointStats st;
  for (const eval::RunResult& r :
       eval::run_sweep(eval::seed_sweep(cfg, n, seed0))) {
    st.add(r);
  }
  return st;
}

inline void print_header(const char* fig, const char* what) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", fig, what);
  std::printf("(shape reproduction on the simulated fabric; see EXPERIMENTS.md)\n");
  std::printf("==============================================================\n");
}

/// Merge `payload` (a JSON value) into the top-level object of the JSON
/// file at `path` under `key`, creating the file if needed. Written for the
/// BENCH_hotpath.json convention: google-benchmark owns the file body and
/// rewrites it wholesale; this helper appends one extra key after it runs.
/// Idempotent — a key previously appended by this helper is replaced, so
/// re-running a bench never duplicates or corrupts the object.
inline bool merge_json_key(const std::string& path, const std::string& key,
                           const std::string& payload) {
  std::string body;
  if (std::FILE* f = std::fopen(path.c_str(), "rb")) {
    char buf[1 << 16];
    std::size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
      body.append(buf, got);
    }
    std::fclose(f);
  }
  const std::string marker = ",\n  \"" + key + "\":";
  const std::size_t prev = body.find(marker);
  if (prev != std::string::npos) {
    // Replacing a key this helper appended earlier: the erased tail runs
    // to end-of-file and takes the root object's closing brace with it,
    // so the remainder is a ready-to-append prefix no matter what
    // character the preceding section ends on (']' for the
    // google-benchmark rows).
    body.erase(prev);
  } else {
    while (!body.empty() &&
           (body.back() == '\n' || body.back() == ' ' ||
            body.back() == '\r' || body.back() == '\t')) {
      body.pop_back();
    }
    if (!body.empty()) {
      if (body.back() != '}') return false;  // not a JSON object; leave it be
      body.pop_back();
    } else {
      body = "{";
    }
  }
  while (!body.empty() && (body.back() == '\n' || body.back() == ' ')) {
    body.pop_back();
  }
  body += ",\n  \"" + key + "\": " + payload + "\n}\n";
  if (body.compare(0, 2, "{,") == 0) body.erase(1, 1);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  return true;
}

inline std::string human_bytes(double b) {
  char buf[32];
  if (b >= 1e9) std::snprintf(buf, sizeof(buf), "%.2f GB", b / 1e9);
  else if (b >= 1e6) std::snprintf(buf, sizeof(buf), "%.2f MB", b / 1e6);
  else if (b >= 1e3) std::snprintf(buf, sizeof(buf), "%.2f KB", b / 1e3);
  else std::snprintf(buf, sizeof(buf), "%.0f B", b);
  return buf;
}

}  // namespace hawkeye::bench
