// Design-choice ablation (paper §3.4): host-side triggering vs switch-side
// triggering. With PFC's cascading congestion, many switches observe the
// same anomaly simultaneously; if each of them opened a diagnosis episode
// (SpiderMon-style switch triggering), the collection effort multiplies.
// Hawkeye's host agent sends one polling packet per complaining flow, and
// per-switch dedup bounds the collections.
#include <set>

#include "bench_common.hpp"
#include "eval/testbed.hpp"
#include "workload/scenario.hpp"

using namespace hawkeye;
using namespace hawkeye::bench;

namespace {

struct TriggerStats {
  int host_episodes = 0;        // episodes the host agents opened
  std::size_t host_collections = 0;   // distinct switches collected
  int switch_triggers = 0;      // switches that would have self-triggered
  std::size_t switch_collections = 0; // collections a switch-triggered
                                      // design would have performed
};

TriggerStats run_case(diagnosis::AnomalyType type, std::uint64_t seed) {
  sim::Rng rng(seed);
  workload::ScenarioSpec spec;
  {
    const net::FatTree probe = net::build_fat_tree(4);
    const net::Routing pr(probe.topo);
    spec = workload::make_scenario(type, probe, pr, rng);
  }
  eval::Testbed::Options opts;
  if (spec.xoff_bytes) opts.switch_cfg.pfc_xoff_bytes = *spec.xoff_bytes;
  if (spec.xon_bytes) opts.switch_cfg.pfc_xon_bytes = *spec.xon_bytes;
  eval::Testbed tb(opts);
  tb.install(spec);
  for (const auto& f : workload::background_flows(
           tb.ft, rng, 0.05, sim::us(5), spec.duration - sim::us(100))) {
    tb.add_flow(f);
  }

  // Model switch-side triggering in parallel: a switch "detects" the
  // anomaly when any of its ports accumulates paused packets; each
  // detecting switch would start its own collection of itself plus its
  // neighbours (the minimum a switch-local diagnoser needs).
  std::set<net::NodeId> self_triggered;
  tb.simu.schedule(sim::us(25), [&tb, &self_triggered]() {
    std::function<void()> scan = [&tb, &self_triggered]() {
      for (const net::NodeId sw : tb.ft.topo.switches()) {
        auto& s = tb.switch_at(sw);
        for (net::PortId p = 0; p < s.port_count(); ++p) {
          if (s.telemetry().recent_paused_count(p, tb.simu.now()) > 0) {
            self_triggered.insert(sw);
          }
        }
      }
    };
    scan();
    for (sim::Time t = sim::us(50); t < sim::ms(2); t += sim::us(50)) {
      tb.simu.schedule(t, scan);
    }
  });

  tb.run_for(spec.duration);

  TriggerStats st;
  std::set<net::NodeId> collected;
  for (const auto id : tb.collector.episode_order()) {
    const collect::Episode* ep = tb.collector.episode(id);
    ++st.host_episodes;
    for (const net::NodeId sw : ep->collected_switches()) collected.insert(sw);
  }
  st.host_collections = collected.size();
  st.switch_triggers = static_cast<int>(self_triggered.size());
  std::size_t sw_collections = 0;
  for (const net::NodeId sw : self_triggered) {
    sw_collections += 1;  // itself
    sw_collections += static_cast<std::size_t>(tb.ft.topo.port_count(sw));
  }
  st.switch_collections = sw_collections;
  return st;
}

}  // namespace

int main() {
  print_header("Extension", "host-triggered vs switch-triggered detection");
  std::printf("%-34s %-10s %-12s %-12s %-14s\n", "anomaly", "episodes",
              "collected", "sw-triggers", "sw-collections");
  for (const auto type : all_anomalies()) {
    const TriggerStats st = run_case(type, 2);
    std::printf("%-34s %-10d %-12zu %-12d %-14zu\n",
                std::string(to_string(type)).c_str(), st.host_episodes,
                st.host_collections, st.switch_triggers,
                st.switch_collections);
  }
  std::printf("\nExpected: on PFC-spreading anomalies many switches observe\n"
              "pause activity and would each self-trigger; the host-side\n"
              "agent opens a handful of episodes whose deduplicated\n"
              "collections cover far fewer switches.\n");
  return 0;
}
