// Figure 14: CPU-poller efficiency — (a) telemetry size reduction from
// zero-value filtering vs a full register dump, (b) report packet count
// reduction from MTU batching vs PHV-limited data-plane export; plus the
// §4.5 poll-latency model (80 ms for 2 epochs, 120 ms for 4).
//
// Expected shape: >80% size reduction in most cases (live flows per epoch
// ≪ 4096 slots) and ~95% packet-count reduction (1500 B MTU vs ~200 B PHV).
#include "bench_common.hpp"
#include "collect/collector.hpp"

using namespace hawkeye;
using namespace hawkeye::bench;

int main() {
  print_header("Figure 14", "controller-assisted collection efficiency");
  const int n = seeds_per_point(2);

  std::printf("%-12s %-34s %-34s\n", "", "(a) telemetry size", "(b) report packets");
  std::printf("%-12s %-12s %-12s %-8s %-12s %-12s %-8s\n", "load",
              "filtered", "raw dump", "saved", "CPU (MTU)", "dataplane",
              "saved");
  for (const double load : {0.05, 0.1, 0.2, 0.3}) {
    PointStats agg;
    for (const auto type :
         {diagnosis::AnomalyType::kMicroBurstIncast,
          diagnosis::AnomalyType::kPfcStorm}) {
      eval::RunConfig cfg;
      cfg.scenario = type;
      cfg.background_load = load;
      cfg.epoch_index_bits = 2;  // the paper's 4-epoch hardware setup
      const PointStats st = run_point(cfg, n);
      agg.runs += st.runs;
      agg.telemetry_bytes += st.telemetry_bytes;
      agg.raw_telemetry_bytes += st.raw_telemetry_bytes;
      agg.report_packets += st.report_packets;
      agg.dataplane_report_packets += st.dataplane_report_packets;
    }
    const double size_saved =
        100.0 * (1.0 - agg.telemetry_bytes /
                           std::max(1.0, agg.raw_telemetry_bytes));
    const double pkt_saved =
        100.0 * (1.0 - agg.report_packets /
                           std::max(1.0, agg.dataplane_report_packets));
    std::printf("%-12.2f %-12s %-12s %5.1f%%   %-12.1f %-12.1f %5.1f%%\n",
                load, human_bytes(agg.avg(agg.telemetry_bytes)).c_str(),
                human_bytes(agg.avg(agg.raw_telemetry_bytes)).c_str(),
                size_saved, agg.avg(agg.report_packets),
                agg.avg(agg.dataplane_report_packets), pkt_saved);
  }

  // §4.5 CPU poll latency model: parallel per-switch DMA reads.
  collect::Collector::Config cc;
  std::printf("\nCPU poll latency (parallel across switches):\n");
  for (const int epochs : {2, 4}) {
    std::printf("  %d epochs x (64 ports, 4096 flows): %lld ms\n", epochs,
                static_cast<long long>(cc.dma_per_epoch * epochs / 1000000));
  }
  return 0;
}
