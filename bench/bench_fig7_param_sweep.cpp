// Figure 7: precision & recall of each anomaly case over epoch sizes and
// detection thresholds. The paper sweeps epochs 100 us – 2 ms and
// thresholds 200% – 500% of RTT; epochs are demarcated by timestamp bits,
// so the sizes are powers of two (2^17 ns ≈ 131 us ... 2^21 ns ≈ 2.1 ms).
//
// Expected shape (paper §4.2): precision ≈ 1 at fine epochs and degrades
// as the epoch grows (contributor smearing, event conflation); recall stays
// ≈ 1 across thresholds because the host agent catches every degradation.
#include "bench_common.hpp"

using namespace hawkeye;
using namespace hawkeye::bench;

int main() {
  print_header("Figure 7", "precision & recall vs epoch size x threshold");
  const int n = seeds_per_point();
  const int shifts[] = {17, 19, 21};        // ~131 us, ~524 us, ~2.1 ms
  const double thresholds[] = {2.0, 3.0, 5.0};  // 200%, 300%, 500% RTT

  for (const auto type : all_anomalies()) {
    std::printf("\n--- %s ---\n", std::string(to_string(type)).c_str());
    std::printf("%-10s %-12s %-10s %-8s %-8s\n", "epoch", "threshold",
                "precision", "recall", "traces");
    for (const int shift : shifts) {
      for (const double thr : thresholds) {
        eval::RunConfig cfg;
        cfg.scenario = type;
        cfg.epoch_shift = shift;
        // Keep the telemetry window ~1 ms regardless of the epoch size.
        cfg.epoch_index_bits = shift >= 20 ? 1 : (20 - shift);
        cfg.threshold_factor = thr;
        // Busier fabric than the defaults: long epochs then conflate
        // stale background contention with the anomaly (§4.2).
        cfg.background_load = 0.15;
        const PointStats st = run_point(cfg, n);
        std::printf("%6.0f us   %5.0f%% RTT   %-10.2f %-8.2f %d\n",
                    static_cast<double>(sim::Time{1} << shift) / 1e3,
                    thr * 100, st.pr.precision(), st.pr.recall(), st.runs);
      }
    }
  }
  return 0;
}
