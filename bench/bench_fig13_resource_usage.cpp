// Figure 13: (a) Tofino hardware resource usage of the Hawkeye P4 program
// (static model — see DESIGN.md substitutions); (b) switch memory usage vs
// the number of epochs and the maximum flow count per epoch.
//
// Expected shape (paper §4.5): everything fits comfortably on Tofino; the
// PFC causality structure and port-level telemetry are small and constant
// (bounded by the port count) while flow telemetry grows O(#flows·#epochs).
#include "bench_common.hpp"
#include "telemetry/resource_model.hpp"

using namespace hawkeye;
using namespace hawkeye::bench;
using telemetry::TelemetryConfig;

int main() {
  print_header("Figure 13", "switch hardware resource usage");

  // (a) Resource table for the paper's hardware configuration:
  // 64 ports, 4096 flow slots, 4 epochs.
  TelemetryConfig hw;
  hw.flow_slots = 4096;
  hw.epoch.epoch_shift = 20;
  hw.epoch.index_bits = 2;
  const auto u = telemetry::estimate_resources(hw, 64);
  std::printf("\n(a) Tofino resource usage (64 ports, 4096 flows x 4 epochs)\n");
  std::printf("    %-22s %6.1f %%\n", "SRAM", u.sram_pct);
  std::printf("    %-22s %6.1f %%\n", "TCAM", u.tcam_pct);
  std::printf("    %-22s %6.1f %%\n", "PHV", u.phv_pct);
  std::printf("    %-22s %6.1f %%\n", "MAU stages", u.stages_pct);
  std::printf("    %-22s %6.1f %%\n", "VLIW instructions", u.vliw_pct);
  std::printf("    %-22s %6.1f %%\n", "hash distribution", u.hash_bits_pct);

  // (b) Memory scaling.
  std::printf("\n(b) switch memory vs #epochs and max flows per epoch\n");
  std::printf("    %-8s %-8s %-14s %-14s %-14s %-12s\n", "epochs", "flows",
              "flow telem", "port telem", "causality", "total");
  for (const int index_bits : {1, 2, 3}) {
    for (const std::uint32_t flows : {1024u, 2048u, 4096u, 8192u}) {
      TelemetryConfig cfg;
      cfg.flow_slots = flows;
      cfg.epoch.index_bits = index_bits;
      std::printf("    %-8d %-8u %-14s %-14s %-14s %-12s\n",
                  1 << index_bits, flows,
                  human_bytes(static_cast<double>(
                                  telemetry::flow_telemetry_bytes(cfg)))
                      .c_str(),
                  human_bytes(static_cast<double>(
                                  telemetry::port_telemetry_bytes(cfg, 64)))
                      .c_str(),
                  human_bytes(static_cast<double>(
                                  telemetry::causality_structure_bytes(cfg, 64)))
                      .c_str(),
                  human_bytes(static_cast<double>(
                                  telemetry::total_switch_memory_bytes(cfg, 64)))
                      .c_str());
    }
  }
  std::printf("\nNote: causality + port telemetry are bounded by the port\n"
              "count; only the flow telemetry grows with the flow budget.\n");
  return 0;
}
