// Figure 10: diagnosis effectiveness of different telemetry granularities
// over mixed anomalies — full Hawkeye telemetry vs port-level-only vs
// flow-level-only (§4.3 "Telemetry logging effectiveness").
//
// Expected shape: port-only finds the PFC path but cannot name root-cause
// flows; flow-only cannot trace PFC at all; both show much lower precision
// than the combined telemetry. A 1-bit ITSY-style meter ablation is also
// reported (DESIGN.md design-choice ablation).
#include "bench_common.hpp"

using namespace hawkeye;
using namespace hawkeye::bench;

int main() {
  print_header("Figure 10", "telemetry granularity ablation");
  const int n = seeds_per_point();

  struct Mode {
    const char* name;
    telemetry::TelemetryMode mode;
    bool one_bit;
  };
  const Mode modes[] = {
      {"hawkeye-full", telemetry::TelemetryMode::kFull, false},
      {"port-only", telemetry::TelemetryMode::kPortOnly, false},
      {"flow-only", telemetry::TelemetryMode::kFlowOnly, false},
      {"1-bit-meter", telemetry::TelemetryMode::kFull, true},
  };

  std::printf("%-14s %-10s %-8s   (mixed over all six anomaly cases)\n",
              "telemetry", "precision", "recall");
  for (const Mode& m : modes) {
    eval::PrecisionRecall pr;
    for (const auto type : all_anomalies()) {
      eval::RunConfig cfg;
      cfg.scenario = type;
      cfg.tele_mode = m.mode;
      cfg.one_bit_meter = m.one_bit;
      const PointStats st = run_point(cfg, n);
      pr.tp += st.pr.tp;
      pr.fp += st.pr.fp;
      pr.fn += st.pr.fn;
    }
    std::printf("%-14s %-10.2f %-8.2f\n", m.name, pr.precision(), pr.recall());
  }
  return 0;
}
