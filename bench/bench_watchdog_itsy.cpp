// Extension experiment (paper §2.3's critique of existing PFC tooling):
// the industrial PFC watchdog and ITSY-style in-data-plane loop probing
// against Hawkeye, per anomaly type.
//
// Expected shape:
//  * the watchdog alarms on persistent pause (storms, deadlocks) but its
//    detection degrades with the polling period, it misses transient
//    incast pauses, and it never names a victim, a loop or a root cause;
//  * ITSY detects exactly the deadlock loops (and only those) with no
//    root-cause attribution;
//  * Hawkeye names the anomaly type and the culprits in every case.
#include "bench_common.hpp"
#include "baselines/itsy.hpp"
#include "baselines/pfc_watchdog.hpp"
#include "eval/testbed.hpp"
#include "workload/scenario.hpp"

using namespace hawkeye;
using namespace hawkeye::bench;

namespace {

struct CaseResult {
  int watchdog_alarms = 0;
  double watchdog_latency_us = -1;
  bool itsy_loop = false;
  std::uint64_t sim_events = 0;
};

CaseResult run_case(diagnosis::AnomalyType type, std::uint64_t seed,
                    sim::Time watchdog_period) {
  sim::Rng rng(seed);
  workload::ScenarioSpec spec;
  {
    const net::FatTree probe = net::build_fat_tree(4);
    const net::Routing pr(probe.topo);
    spec = workload::make_scenario(type, probe, pr, rng);
  }
  eval::Testbed::Options opts;
  if (spec.xoff_bytes) opts.switch_cfg.pfc_xoff_bytes = *spec.xoff_bytes;
  if (spec.xon_bytes) opts.switch_cfg.pfc_xon_bytes = *spec.xon_bytes;
  eval::Testbed tb(opts);
  tb.install(spec);

  baselines::PfcWatchdog::Config wcfg;
  wcfg.poll_period = watchdog_period;
  baselines::PfcWatchdog watchdog(tb.net, wcfg);
  baselines::ItsyDetector itsy(tb.net, {});
  for (const net::NodeId sw : tb.ft.topo.switches()) {
    watchdog.watch(tb.switch_at(sw));
    itsy.watch(tb.switch_at(sw));
  }
  watchdog.start();
  itsy.start();
  tb.run_for(spec.duration);

  CaseResult r;
  r.watchdog_alarms = static_cast<int>(watchdog.alarms().size());
  const sim::Time first = watchdog.first_alarm_after(spec.anomaly_start);
  if (first >= 0) {
    r.watchdog_latency_us =
        static_cast<double>(first - spec.anomaly_start) / 1e3;
  }
  r.itsy_loop = !itsy.loops().empty();
  r.sim_events = tb.simu.executed_events();
  return r;
}

}  // namespace

int main() {
  print_header("Extension", "PFC watchdog & ITSY vs Hawkeye");
  std::printf("%-34s %-12s %-8s %-14s %-10s\n", "anomaly", "wd period",
              "alarms", "wd latency", "ITSY loop");
  for (const auto type : all_anomalies()) {
    for (const sim::Time period : {sim::us(50), sim::us(400), sim::ms(100)}) {
      const CaseResult r = run_case(type, 2, period);
      char lat[24];
      if (r.watchdog_latency_us >= 0) {
        std::snprintf(lat, sizeof(lat), "%.0f us", r.watchdog_latency_us);
      } else {
        std::snprintf(lat, sizeof(lat), "missed");
      }
      std::printf("%-34s %8.0f us  %-8d %-14s %-10s\n",
                  std::string(to_string(type)).c_str(),
                  static_cast<double>(period) / 1e3, r.watchdog_alarms, lat,
                  r.itsy_loop ? "yes" : "no");
    }
  }
  std::printf("\nNeither tool reports victims or root causes; Hawkeye's full\n"
              "diagnosis of the same traces is shown in Figures 7/8/12.\n");
  return 0;
}
