// Extension experiment: fabric-scale behaviour. The paper's NS-3 setup is
// a k=4 fat-tree (20 switches); this sweep grows the fabric to k=6/8
// (45/80 switches) and checks that Hawkeye's collection stays *local* —
// the collected-switch count tracks the anomaly's causal footprint, not
// the fabric size — while diagnosis quality holds.
#include "bench_common.hpp"

using namespace hawkeye;
using namespace hawkeye::bench;

int main() {
  print_header("Extension", "fabric scale sweep (fat-tree k)");
  const int n = seeds_per_point(2);
  std::printf("%-4s %-9s %-7s %-34s %-10s %-8s %-11s %-10s\n", "k",
              "switches", "hosts", "anomaly", "precision", "recall",
              "collected", "Mevents");
  for (const int k : {4, 6, 8}) {
    for (const auto type : {diagnosis::AnomalyType::kMicroBurstIncast,
                            diagnosis::AnomalyType::kInLoopDeadlock}) {
      eval::RunConfig cfg;
      cfg.scenario = type;
      cfg.fat_tree_k = k;
      cfg.background_load = 0.05;
      const PointStats st = run_point(cfg, n);
      std::printf("%-4d %-9d %-7d %-34s %-10.2f %-8.2f %-11.1f %-10.2f\n", k,
                  k * k + k * k / 4, k * k * k / 4,
                  std::string(to_string(type)).c_str(), st.pr.precision(),
                  st.pr.recall(), st.avg(st.collected_switches),
                  st.avg(st.sim_events) / 1e6);
    }
  }
  std::printf("\nExpected: collected-switch counts stay near the causal set\n"
              "size (victim path + loop) at every scale; accuracy holds.\n");
  return 0;
}
