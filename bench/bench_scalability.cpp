// Extension experiment: fabric-scale behaviour + intra-run shard scaling.
//
// Fabric axis: the paper's NS-3 setup is a k=4 fat-tree (20 switches); this
// sweep grows the fabric to k=6/8 (45/80 switches) and checks that
// Hawkeye's collection stays *local* — the collected-switch count tracks
// the anomaly's causal footprint, not the fabric size — while diagnosis
// quality holds.
//
// Shard axis (PR 6): each (k, anomaly) point reruns under the sharded
// simulator (`--shards 1,2,4,8`), reporting wall-clock AND events/sec per
// cell plus the simulator's phase decomposition (parallel drain vs serial
// merge vs sequential windows), so shard-scaling efficiency is visible in
// the JSON trajectory. Results append under a "scalability" key in
// BENCH_hotpath.json (HAWKEYE_BENCH_JSON overrides the path).
//
// `--k16` (or HAWKEYE_BENCH_K16=1) adds the headline k=16 cells: the
// microburst-incast scenario at shards 1 vs 8 (576 switches, tens of
// millions of events). Off by default — a k=16 run takes minutes.
#include <chrono>
#include <cstring>
#include <thread>

#include "bench_common.hpp"

using namespace hawkeye;
using namespace hawkeye::bench;

namespace {

struct Cell {
  int k = 4;
  int shards = 1;
  diagnosis::AnomalyType anomaly;
  int seeds = 1;
  double wall_s = 0;
  double events = 0;
  double precision = 0;
  double recall = 0;
  double collected = 0;
  sim::Simulator::ShardStats st;  // summed over the cell's runs

  double events_per_sec() const { return wall_s > 0 ? events / wall_s : 0; }
  /// What the run would cost with `shards` real cores: the worker drain and
  /// mailbox flush divide across shards, everything else (rank merge,
  /// sequential windows, setup/analysis) stays as measured. Meaningful only
  /// when measured on a single core, where drain_seconds is the full serial
  /// drain cost time-sliced across the workers.
  double projected_wall_s() const {
    if (shards <= 1) return wall_s;
    const double parallel = st.drain_seconds + st.flush_seconds;
    return wall_s - parallel * (1.0 - 1.0 / shards);
  }
};

Cell run_cell(int k, int shards, diagnosis::AnomalyType anomaly, int seeds) {
  Cell c;
  c.k = k;
  c.shards = shards;
  c.anomaly = anomaly;
  c.seeds = seeds;
  eval::RunConfig cfg;
  cfg.scenario = anomaly;
  cfg.fat_tree_k = k;
  cfg.background_load = k >= 16 ? 0.1 : 0.05;
  cfg.shards = shards;
  const auto t0 = std::chrono::steady_clock::now();
  PointStats st;
  for (int i = 0; i < seeds; ++i) {
    // Serial seed loop (not run_point's sweep pool): each cell's wall-clock
    // must measure exactly one run at a time or the per-shard timing is
    // meaningless.
    cfg.seed = 1 + static_cast<std::uint64_t>(i) * 2;
    const eval::RunResult r = eval::run_one(cfg);
    st.add(r);
    c.st.parallel_rounds += r.shard_stats.parallel_rounds;
    c.st.sequential_windows += r.shard_stats.sequential_windows;
    c.st.sequential_events += r.shard_stats.sequential_events;
    c.st.merged_records += r.shard_stats.merged_records;
    c.st.deferred_schedules += r.shard_stats.deferred_schedules;
    c.st.drain_seconds += r.shard_stats.drain_seconds;
    c.st.round_max_seconds += r.shard_stats.round_max_seconds;
    c.st.barrier_seconds += r.shard_stats.barrier_seconds;
    c.st.merge_seconds += r.shard_stats.merge_seconds;
    c.st.flush_seconds += r.shard_stats.flush_seconds;
    c.st.sequential_seconds += r.shard_stats.sequential_seconds;
  }
  c.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  c.events = st.sim_events;
  c.precision = st.pr.precision();
  c.recall = st.pr.recall();
  c.collected = st.avg(st.collected_switches);
  return c;
}

std::string json_cell(const Cell& c, double wall_1shard) {
  char buf[1024];
  std::string s;
  std::snprintf(buf, sizeof(buf),
                "{\"k\": %d, \"shards\": %d, \"anomaly\": \"%s\", "
                "\"seeds\": %d, \"wall_s\": %.3f, \"events\": %.0f, "
                "\"events_per_sec\": %.0f, \"precision\": %.3f, "
                "\"recall\": %.3f",
                c.k, c.shards, std::string(to_string(c.anomaly)).c_str(),
                c.seeds, c.wall_s, c.events, c.events_per_sec(), c.precision,
                c.recall);
  s += buf;
  if (c.shards > 1) {
    std::snprintf(
        buf, sizeof(buf),
        ", \"drain_s\": %.3f, \"round_max_s\": %.3f, \"merge_s\": %.3f, "
        "\"flush_s\": %.3f, \"seq_s\": %.3f, \"parallel_rounds\": %llu, "
        "\"sequential_events\": %llu, \"merged_records\": %llu, "
        "\"deferred_schedules\": %llu",
        c.st.drain_seconds, c.st.round_max_seconds, c.st.merge_seconds,
        c.st.flush_seconds, c.st.sequential_seconds,
        static_cast<unsigned long long>(c.st.parallel_rounds),
        static_cast<unsigned long long>(c.st.sequential_events),
        static_cast<unsigned long long>(c.st.merged_records),
        static_cast<unsigned long long>(c.st.deferred_schedules));
    s += buf;
    if (wall_1shard > 0) {
      std::snprintf(buf, sizeof(buf),
                    ", \"measured_speedup_vs_1shard\": %.3f, "
                    "\"projected_wall_s\": %.3f, "
                    "\"projected_speedup_vs_1shard\": %.3f",
                    wall_1shard / c.wall_s, c.projected_wall_s(),
                    wall_1shard / c.projected_wall_s());
      s += buf;
    }
  }
  s += "}";
  return s;
}

std::vector<int> parse_list(const char* arg) {
  std::vector<int> out;
  for (const char* p = arg; *p != '\0';) {
    out.push_back(std::atoi(p));
    while (*p != '\0' && *p != ',') ++p;
    if (*p == ',') ++p;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<int> ks = {4, 6, 8};
  std::vector<int> shard_counts = {1};
  bool k16 = std::getenv("HAWKEYE_BENCH_K16") != nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--k") == 0 && i + 1 < argc) {
      ks = parse_list(argv[++i]);
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shard_counts = parse_list(argv[++i]);
    } else if (std::strcmp(argv[i], "--k16") == 0) {
      k16 = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--k 4,6,8] [--shards 1,2,4,8] [--k16]\n",
                   argv[0]);
      return 2;
    }
  }

  print_header("Extension", "fabric scale sweep (fat-tree k x shards)");
  const int n = seeds_per_point(2);
  const unsigned host_cpus = std::thread::hardware_concurrency();
  std::printf("host_cpus=%u (wall-clock speedup from sharding needs >1)\n\n",
              host_cpus);
  std::printf("%-4s %-7s %-34s %-10s %-8s %-11s %-9s %-8s %-8s\n", "k",
              "shards", "anomaly", "precision", "recall", "collected",
              "Mevents", "wall-s", "Mev/s");

  std::vector<Cell> cells;
  // wall_s of the shards=1 cell for each (k, anomaly), for speedup ratios.
  auto base_wall = [&cells](int k, diagnosis::AnomalyType a) {
    for (const Cell& c : cells) {
      if (c.k == k && c.shards == 1 && c.anomaly == a) return c.wall_s;
    }
    return 0.0;
  };

  for (const int k : ks) {
    for (const auto type : {diagnosis::AnomalyType::kMicroBurstIncast,
                            diagnosis::AnomalyType::kInLoopDeadlock}) {
      for (const int s : shard_counts) {
        const Cell c = run_cell(k, s, type, n);
        std::printf(
            "%-4d %-7d %-34s %-10.2f %-8.2f %-11.1f %-9.2f %-8.2f %-8.2f\n",
            c.k, c.shards, std::string(to_string(type)).c_str(), c.precision,
            c.recall, c.collected, c.events / 1e6, c.wall_s,
            c.events_per_sec() / 1e6);
        cells.push_back(c);
      }
    }
  }

  if (k16) {
    std::printf("\nk=16 headline (576 switches, microburst incast):\n");
    for (const int s : {1, 8}) {
      const Cell c = run_cell(16, s, diagnosis::AnomalyType::kMicroBurstIncast,
                              /*seeds=*/1);
      std::printf(
          "%-4d %-7d %-34s %-10.2f %-8.2f %-11.1f %-9.2f %-8.2f %-8.2f\n",
          c.k, c.shards,
          std::string(to_string(diagnosis::AnomalyType::kMicroBurstIncast))
              .c_str(),
          c.precision, c.recall, c.collected, c.events / 1e6, c.wall_s,
          c.events_per_sec() / 1e6);
      if (c.shards > 1) {
        const double w1 = base_wall(16, c.anomaly);
        std::printf("     drain=%.2fs merge=%.2fs flush=%.2fs seq=%.2fs "
                    "rounds=%llu; measured %.2fx vs 1 shard",
                    c.st.drain_seconds, c.st.merge_seconds, c.st.flush_seconds,
                    c.st.sequential_seconds,
                    static_cast<unsigned long long>(c.st.parallel_rounds),
                    w1 > 0 ? w1 / c.wall_s : 0.0);
        if (w1 > 0) {
          std::printf(", projected %.2fx with %d cores",
                      w1 / c.projected_wall_s(), c.shards);
        }
        std::printf("\n");
      }
      cells.push_back(c);
    }
  }

  // Append the whole table under a "scalability" key next to the
  // google-benchmark rows bench_micro_hotpath writes.
  const char* env_path = std::getenv("HAWKEYE_BENCH_JSON");
  const std::string path =
      env_path != nullptr ? env_path : "BENCH_hotpath.json";
  std::string payload = "{\n    \"host_cpus\": " + std::to_string(host_cpus) +
                        ",\n    \"note\": \"projected_* extrapolates the "
                        "measured phase decomposition to a host with >= "
                        "shards cores: worker drain + mailbox flush divide "
                        "by shard count, merge/sequential/setup stay as "
                        "measured; on a 1-cpu host the measured speedup "
                        "reflects cache locality only\"";
  payload += ",\n    \"cells\": [";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    payload += (i == 0 ? "\n      " : ",\n      ");
    payload += json_cell(cells[i], base_wall(cells[i].k, cells[i].anomaly));
  }
  payload += "\n    ]\n  }";
  if (merge_json_key(path, "scalability", payload)) {
    std::printf("\nwrote \"scalability\" into %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "\nfailed to update %s\n", path.c_str());
  }

  std::printf("\nExpected: collected-switch counts stay near the causal set\n"
              "size (victim path + loop) at every scale; accuracy holds;\n"
              "sharded cells match 1-shard output bitwise (identity suite).\n");
  return 0;
}
