// Extension experiment: fabric-scale behaviour. The paper's NS-3 setup is
// a k=4 fat-tree (20 switches); this sweep grows the fabric to k=6/8
// (45/80 switches) and checks that Hawkeye's collection stays *local* —
// the collected-switch count tracks the anomaly's causal footprint, not
// the fabric size — while diagnosis quality holds. Also reports wall-clock
// and simulated-events/sec per point, the number the allocation-free event
// calendar is tracked against (see BENCH_hotpath.json for the micro view).
#include <chrono>

#include "bench_common.hpp"

using namespace hawkeye;
using namespace hawkeye::bench;

int main() {
  print_header("Extension", "fabric scale sweep (fat-tree k)");
  const int n = seeds_per_point(2);
  std::printf("%-4s %-9s %-7s %-34s %-10s %-8s %-11s %-9s %-8s %-8s\n", "k",
              "switches", "hosts", "anomaly", "precision", "recall",
              "collected", "Mevents", "wall-s", "Mev/s");
  for (const int k : {4, 6, 8}) {
    for (const auto type : {diagnosis::AnomalyType::kMicroBurstIncast,
                            diagnosis::AnomalyType::kInLoopDeadlock}) {
      eval::RunConfig cfg;
      cfg.scenario = type;
      cfg.fat_tree_k = k;
      cfg.background_load = 0.05;
      const auto t0 = std::chrono::steady_clock::now();
      const PointStats st = run_point(cfg, n);
      const double wall =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      std::printf(
          "%-4d %-9d %-7d %-34s %-10.2f %-8.2f %-11.1f %-9.2f %-8.2f %-8.2f\n",
          k, k * k + k * k / 4, k * k * k / 4,
          std::string(to_string(type)).c_str(), st.pr.precision(),
          st.pr.recall(), st.avg(st.collected_switches),
          st.avg(st.sim_events) / 1e6, wall,
          wall > 0 ? st.sim_events / 1e6 / wall : 0.0);
    }
  }
  std::printf("\nExpected: collected-switch counts stay near the causal set\n"
              "size (victim path + loop) at every scale; accuracy holds.\n");
  return 0;
}
